package main

import (
	"context"
	"flag"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/route"
)

// routeCmd runs the fleet front door: a consistent-hashing session router
// over a set of `pmwcm serve` replicas. Session ids pin their replica
// through a fixed virtual-node ring, so any router instance (the router
// is stateless and restartable) agrees on every placement; requests to a
// down replica fail fast with a typed 503 + Retry-After, and transcripts
// stay readable through the shared blob store (-store-url).
func routeCmd(args []string) error {
	fs := flag.NewFlagSet("route", flag.ContinueOnError)
	addr := fs.String("addr", ":9100", "listen address")
	replicas := fs.String("replicas", "", "comma-separated replica set: name=url,... (names are hash-ring keys and store namespaces; keep them stable)")
	storeURL := fs.String("store-url", "", "shared blob-store base URL (a `pmwcm store` endpoint): serves transcripts of sessions on down replicas from their last checkpoint")
	timeout := fs.Duration("timeout", 15*time.Second, "per-request forwarding timeout")
	retryAfter := fs.Duration("retry-after", 2*time.Second, "Retry-After value on replica-down 503s, and the passive-health cool-down")
	logLevel := fs.String("log-level", "info", "request/startup log level (debug, info, warn, error)")
	logFormat := fs.String("log-format", "text", "log output format (text, json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	reps, err := route.ParseReplicas(*replicas)
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	rt, err := route.New(reps, route.Options{
		Timeout:    *timeout,
		RetryAfter: *retryAfter,
		CoolDown:   *retryAfter,
		StoreURL:   *storeURL,
		Metrics:    reg,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: obs.Middleware(reg, rt.Handler(), obs.MiddlewareOptions{Logger: logger})}
	logger.Info("router listening", "addr", ln.Addr().String(),
		"replicas", len(reps), "store_url", *storeURL, "version", obs.Version().String())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}
