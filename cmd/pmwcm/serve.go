package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/dataio"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/mech"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/sample"
	"repro/internal/service"
	"repro/internal/universe"
	"repro/internal/xeval"
)

// buildLogger constructs the serve command's slog logger from the
// -log-level and -log-format flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (have debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("unknown -log-format %q (have text, json)", format)
	}
	return slog.New(h), nil
}

// serveCmd starts the interactive query-serving subsystem: it loads (or
// synthesizes) a private dataset over a labeled-grid universe, then serves
// the session-based HTTP/JSON API of internal/service until interrupted.
// Observability is always on: every request is counted and logged through
// internal/obs, and GET /metrics exposes the registry.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8787", "listen address")

	// Universe shape (must match the data's columns: dim features + label).
	dim := fs.Int("dim", 2, "number of feature columns")
	levels := fs.Int("levels", 3, "grid levels per feature coordinate")
	labels := fs.Int("labels", 3, "grid levels for the label")
	featR := fs.Float64("featradius", 1.0, "feature ball radius")
	labelR := fs.Float64("labelradius", 1.0, "label range half-width")

	// Data: a CSV path, or a synthetic skewed sample when omitted.
	dataPath := fs.String("data", "", "CSV of private records (features..., label); empty = synthesize")
	header := fs.Bool("header", false, "input CSV has a header row")
	rows := fs.Int("rows", 200000, "synthetic dataset size (when -data is empty)")
	skew := fs.Float64("skew", 1.3, "synthetic population skew exponent")

	// Default session budget; analysts can override per session.
	eps := fs.Float64("eps", 1.0, "default session privacy budget ε")
	delta := fs.Float64("delta", 1e-6, "default session privacy budget δ")
	alpha := fs.Float64("alpha", 0.05, "default excess-risk accuracy target α")
	beta := fs.Float64("beta", 0.05, "default failure probability β")
	k := fs.Int("k", 100, "default per-session query cap K")
	tBudget := fs.Int("tbudget", 12, "default MW update horizon (0 = paper worst case)")
	scale := fs.Float64("s", 2, "default loss-family scale bound S")

	oracleName := fs.String("oracle", "noisygd", "single-query oracle (noisygd, netexp, outputperturb, glmreduce, laplace-linear, nonprivate)")
	engine := fs.String("engine", "", "default evaluation engine per session (dense, factored, auto; empty = dense)")
	accountant := fs.String("accountant", "", "default privacy accountant per session ("+strings.Join(mech.AccountantNames(), ", ")+"; empty = "+mech.DefaultAccountant+")")
	workers := fs.Int("workers", runtime.NumCPU(), "xeval workers per universe-sized computation (intra-query parallelism)")
	maxSessions := fs.Int("maxsessions", 64, "maximum concurrently open sessions")
	maxK := fs.Int("maxk", 100000, "maximum per-session query cap an analyst may request")
	seed := fs.Int64("seed", 1, "random seed for all mechanism noise")
	stateDir := fs.String("state-dir", "", "session state directory: sessions checkpoint on every budget spend and on shutdown, and are restored on startup (empty = memory only; budget state dies with the process)")
	wal := fs.Bool("wal", true, "write-ahead-log write path: per-session logs with group-committed fsyncs instead of a full snapshot per budget spend (default on when -state-dir is set; -wal=false opts back into snapshot-per-spend)")
	commitWindow := fs.Duration("commit-window", 0, "upper bound on how long a group-commit batch stays open while commits keep arriving (0 = 2ms; only with -wal)")
	compactEvery := fs.Int("compact-every", 0, "fold a session's WAL into its snapshot after this many records (0 = 256; only with -wal)")
	faultPlan := fs.String("fault-plan", "", "DEV ONLY: deterministic fault-injection plan for the durability write path (chaos drills; e.g. 'error@40,torn@90:7' or 'seed=7,window=400,faults=3,modes=error+torn'); requires -state-dir")
	logLevel := fs.String("log-level", "info", "request/startup log level (debug, info, warn, error)")
	logFormat := fs.String("log-format", "text", "log output format (text, json)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}

	g, err := universe.NewLabeledGrid(*dim, *levels, *featR, *labels, *labelR)
	if err != nil {
		return err
	}
	src := sample.New(*seed)

	var data *dataset.Dataset
	if *dataPath != "" {
		var in io.Reader = os.Stdin
		if *dataPath != "-" {
			f, err := os.Open(*dataPath)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		if data, err = dataio.LoadCSV(in, g, *header); err != nil {
			return err
		}
	} else {
		pop, err := dataset.Skewed(g, *skew)
		if err != nil {
			return err
		}
		data = dataset.SampleFrom(src.Split(), pop, *rows)
	}

	oracle, err := service.OracleByName(*oracleName, *workers)
	if err != nil {
		return err
	}
	// -state-dir makes sessions durable: with the same flags (dataset,
	// seed, oracle) a restarted server restores every session and continues
	// it bit-identically; recovery refuses a state directory whose manifest
	// fingerprints a different dataset.
	var store *persist.Store
	if *stateDir != "" {
		fsys := fault.OS
		if *faultPlan != "" {
			plan, err := fault.ParsePlan(*faultPlan)
			if err != nil {
				return err
			}
			fsys = fault.Wrap(fault.OS, plan)
			logger.Warn("fault injection ACTIVE on the durability write path (dev only)", "plan", *faultPlan)
		}
		if store, err = persist.OpenFS(*stateDir, fsys); err != nil {
			return err
		}
	} else if *faultPlan != "" {
		return fmt.Errorf("-fault-plan requires -state-dir")
	}
	// WAL mode defaults on, but only means something with a state
	// directory: without one it silently stays off, unless the operator
	// explicitly asked for it — then refuse rather than serve a weaker
	// durability mode than requested.
	if store == nil {
		walSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "wal" {
				walSet = true
			}
		})
		if *wal && walSet {
			return fmt.Errorf("-wal requires -state-dir")
		}
		*wal = false
	}
	// The metrics registry observes everything but perturbs nothing: the
	// served answers are bit-identical with or without it. The xeval
	// observer feeds universe-sweep durations labeled by worker count.
	reg := obs.NewRegistry()
	xeval.SetObserver(func(chunks, workers int, seconds float64) {
		reg.Histogram("pmwcm_xeval_sweep_seconds",
			"Universe-sweep duration in seconds, by effective worker count.",
			obs.DefBuckets, obs.Labels{"workers": strconv.Itoa(workers)}).Observe(seconds)
	})
	defer xeval.SetObserver(nil)

	mgr, err := service.New(service.Config{
		Data:   data,
		Source: src.Split(),
		Oracle: oracle,
		Defaults: service.SessionParams{
			Eps: *eps, Delta: *delta,
			Alpha: *alpha, Beta: *beta,
			K: *k, TBudget: *tBudget, S: *scale,
			Workers:    *workers,
			Accountant: *accountant,
			Engine:     *engine,
		},
		Limits:       service.Limits{MaxSessions: *maxSessions, MaxK: *maxK},
		Store:        store,
		Metrics:      reg,
		WAL:          *wal,
		CommitWindow: *commitWindow,
		CompactEvery: *compactEvery,
	})
	if err != nil {
		return err
	}
	logger.Info("starting", "version", obs.Version().String())
	if store != nil {
		logger.Info("state directory opened", "dir", store.Dir(), "restored_live_sessions", mgr.OpenSessions(), "wal", *wal)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	handler := obs.Middleware(reg, service.NewHandler(mgr), obs.MiddlewareOptions{
		Logger:      logger,
		SessionInfo: mgr.SessionAccountant,
	})
	srv := &http.Server{Handler: handler}
	logger.Info("listening",
		"addr", ln.Addr().String(), "n", data.N(), "universe", g.String(),
		"oracle", oracle.Name(), "accountant", mgr.Defaults().Accountant, "workers", *workers,
		"eps", *eps, "delta", *delta, "alpha", *alpha, "k", *k)

	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// suspend every session — with -state-dir each live session is
	// checkpointed for the next start to resume.
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		mgr.Shutdown()
		return err
	case sig := <-sigCh:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := srv.Shutdown(ctx)
		mgr.Shutdown()
		return err
	}
}
