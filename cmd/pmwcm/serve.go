package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/dataio"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/mech"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/sample"
	"repro/internal/service"
	"repro/internal/universe"
	"repro/internal/xeval"
)

// buildLogger constructs the serve command's slog logger from the
// -log-level and -log-format flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (have debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("unknown -log-format %q (have text, json)", format)
	}
	return slog.New(h), nil
}

// serveCmd starts the interactive query-serving subsystem: it loads (or
// synthesizes) a private dataset over a labeled-grid universe, then serves
// the session-based HTTP/JSON API of internal/service until interrupted.
// Observability is always on: every request is counted and logged through
// internal/obs, and GET /metrics exposes the registry.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8787", "listen address")

	// Universe shape (must match the data's columns: dim features + label).
	dim := fs.Int("dim", 2, "number of feature columns")
	levels := fs.Int("levels", 3, "grid levels per feature coordinate")
	labels := fs.Int("labels", 3, "grid levels for the label")
	featR := fs.Float64("featradius", 1.0, "feature ball radius")
	labelR := fs.Float64("labelradius", 1.0, "label range half-width")

	// Data: a CSV path, or a synthetic skewed sample when omitted.
	dataPath := fs.String("data", "", "CSV of private records (features..., label); empty = synthesize")
	header := fs.Bool("header", false, "input CSV has a header row")
	rows := fs.Int("rows", 200000, "synthetic dataset size (when -data is empty)")
	skew := fs.Float64("skew", 1.3, "synthetic population skew exponent")

	// Default session budget; analysts can override per session.
	eps := fs.Float64("eps", 1.0, "default session privacy budget ε")
	delta := fs.Float64("delta", 1e-6, "default session privacy budget δ")
	alpha := fs.Float64("alpha", 0.05, "default excess-risk accuracy target α")
	beta := fs.Float64("beta", 0.05, "default failure probability β")
	k := fs.Int("k", 100, "default per-session query cap K")
	tBudget := fs.Int("tbudget", 12, "default MW update horizon (0 = paper worst case)")
	scale := fs.Float64("s", 2, "default loss-family scale bound S")

	oracleName := fs.String("oracle", "noisygd", "single-query oracle (noisygd, netexp, outputperturb, glmreduce, laplace-linear, nonprivate)")
	engine := fs.String("engine", "", "default evaluation engine per session (dense, factored, auto; empty = dense)")
	accountant := fs.String("accountant", "", "default privacy accountant per session ("+strings.Join(mech.AccountantNames(), ", ")+"; empty = "+mech.DefaultAccountant+")")
	workers := fs.Int("workers", runtime.NumCPU(), "xeval workers per universe-sized computation (intra-query parallelism)")
	maxSessions := fs.Int("maxsessions", 64, "maximum concurrently open sessions")
	maxK := fs.Int("maxk", 100000, "maximum per-session query cap an analyst may request")
	seed := fs.Int64("seed", 1, "random seed for all mechanism noise")
	stateDir := fs.String("state-dir", "", "session state directory: sessions checkpoint on every budget spend and on shutdown, and are restored on startup (empty = memory only; budget state dies with the process)")
	storeURL := fs.String("store-url", "", "remote blob-store base URL (a `pmwcm store` endpoint, e.g. http://host:9099/v1/stores/r1): sessions checkpoint over HTTP with fingerprint-verified loads instead of a local -state-dir; mutually exclusive with -state-dir, implies -wal=false")
	maxResident := fs.Int("max-resident", 0, "cap on live sessions held in memory: past it the least-recently-used sessions are evicted to the store and paged back in on their next touch (0 = unlimited; requires -state-dir or -store-url)")
	idleTTL := fs.Duration("idle-ttl", 0, "evict live sessions untouched for this long (0 = never; requires -state-dir or -store-url)")
	wal := fs.Bool("wal", true, "write-ahead-log write path: per-session logs with group-committed fsyncs instead of a full snapshot per budget spend (default on when -state-dir is set; -wal=false opts back into snapshot-per-spend)")
	commitWindow := fs.Duration("commit-window", 0, "upper bound on how long a group-commit batch stays open while commits keep arriving (0 = 2ms; only with -wal)")
	compactEvery := fs.Int("compact-every", 0, "fold a session's WAL into its snapshot after this many records (0 = 256; only with -wal)")
	faultPlan := fs.String("fault-plan", "", "DEV ONLY: deterministic fault-injection plan for the durability write path (chaos drills; e.g. 'error@40,torn@90:7' or 'seed=7,window=400,faults=3,modes=error+torn'); requires -state-dir")
	logLevel := fs.String("log-level", "info", "request/startup log level (debug, info, warn, error)")
	logFormat := fs.String("log-format", "text", "log output format (text, json)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}

	g, err := universe.NewLabeledGrid(*dim, *levels, *featR, *labels, *labelR)
	if err != nil {
		return err
	}
	src := sample.New(*seed)

	var data *dataset.Dataset
	if *dataPath != "" {
		var in io.Reader = os.Stdin
		if *dataPath != "-" {
			f, err := os.Open(*dataPath)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		if data, err = dataio.LoadCSV(in, g, *header); err != nil {
			return err
		}
	} else {
		pop, err := dataset.Skewed(g, *skew)
		if err != nil {
			return err
		}
		data = dataset.SampleFrom(src.Split(), pop, *rows)
	}

	oracle, err := service.OracleByName(*oracleName, *workers)
	if err != nil {
		return err
	}
	// -state-dir makes sessions durable: with the same flags (dataset,
	// seed, oracle) a restarted server restores every session and continues
	// it bit-identically; recovery refuses a state directory whose manifest
	// fingerprints a different dataset. -store-url does the same through a
	// remote `pmwcm store` blob endpoint — the fleet deployment, where
	// replicas keep no local state. The backend variable (not the concrete
	// *persist.Store) goes into the config, so a nil *Store can never hide
	// inside a non-nil interface.
	var backend persist.Backend
	if *stateDir != "" && *storeURL != "" {
		return fmt.Errorf("-state-dir and -store-url are mutually exclusive (one durable home per replica)")
	}
	if *stateDir != "" {
		fsys := fault.OS
		if *faultPlan != "" {
			plan, err := fault.ParsePlan(*faultPlan)
			if err != nil {
				return err
			}
			fsys = fault.Wrap(fault.OS, plan)
			logger.Warn("fault injection ACTIVE on the durability write path (dev only)", "plan", *faultPlan)
		}
		store, err := persist.OpenFS(*stateDir, fsys)
		if err != nil {
			return err
		}
		backend = store
	} else if *storeURL != "" {
		if *faultPlan != "" {
			return fmt.Errorf("-fault-plan requires -state-dir (the store process owns the remote write path; pass it there)")
		}
		remote, err := persist.OpenRemote(*storeURL, persist.RemoteOptions{})
		if err != nil {
			return err
		}
		backend = remote
	} else if *faultPlan != "" {
		return fmt.Errorf("-fault-plan requires -state-dir")
	}
	// WAL mode defaults on, but only means something with a state
	// directory: without one it silently stays off, unless the operator
	// explicitly asked for it — then refuse rather than serve a weaker
	// durability mode than requested. The remote backend has no
	// per-session log (every checkpoint is one atomic blob PUT), so
	// -store-url always runs snapshot checkpoints.
	if *stateDir == "" {
		walSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "wal" {
				walSet = true
			}
		})
		if *wal && walSet {
			if *storeURL != "" {
				return fmt.Errorf("-wal is not supported with -store-url (the remote store has no per-session log; snapshot checkpoints are used)")
			}
			return fmt.Errorf("-wal requires -state-dir")
		}
		*wal = false
	}
	if (*maxResident > 0 || *idleTTL > 0) && backend == nil {
		return fmt.Errorf("-max-resident/-idle-ttl require a durable store (-state-dir or -store-url): an evicted session must have somewhere to live")
	}
	// The metrics registry observes everything but perturbs nothing: the
	// served answers are bit-identical with or without it. The xeval
	// observer feeds universe-sweep durations labeled by worker count.
	reg := obs.NewRegistry()
	xeval.SetObserver(func(chunks, workers int, seconds float64) {
		reg.Histogram("pmwcm_xeval_sweep_seconds",
			"Universe-sweep duration in seconds, by effective worker count.",
			obs.DefBuckets, obs.Labels{"workers": strconv.Itoa(workers)}).Observe(seconds)
	})
	defer xeval.SetObserver(nil)

	mgr, err := service.New(service.Config{
		Data:   data,
		Source: src.Split(),
		Oracle: oracle,
		Defaults: service.SessionParams{
			Eps: *eps, Delta: *delta,
			Alpha: *alpha, Beta: *beta,
			K: *k, TBudget: *tBudget, S: *scale,
			Workers:    *workers,
			Accountant: *accountant,
			Engine:     *engine,
		},
		Limits:       service.Limits{MaxSessions: *maxSessions, MaxK: *maxK},
		Store:        backend,
		Metrics:      reg,
		WAL:          *wal,
		CommitWindow: *commitWindow,
		CompactEvery: *compactEvery,
		MaxResident:  *maxResident,
		IdleTTL:      *idleTTL,
	})
	if err != nil {
		return err
	}
	logger.Info("starting", "version", obs.Version().String())
	if backend != nil {
		logger.Info("durable store opened", "location", backend.Location(),
			"restored_live_sessions", mgr.OpenSessions(), "wal", *wal,
			"max_resident", *maxResident, "idle_ttl", idleTTL.String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	handler := obs.Middleware(reg, service.NewHandler(mgr), obs.MiddlewareOptions{
		Logger:      logger,
		SessionInfo: mgr.SessionAccountant,
	})
	srv := &http.Server{Handler: handler}
	logger.Info("listening",
		"addr", ln.Addr().String(), "n", data.N(), "universe", g.String(),
		"oracle", oracle.Name(), "accountant", mgr.Defaults().Accountant, "workers", *workers,
		"eps", *eps, "delta", *delta, "alpha", *alpha, "k", *k)

	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// suspend every session — with -state-dir each live session is
	// checkpointed for the next start to resume.
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		mgr.Shutdown()
		return err
	case sig := <-sigCh:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := srv.Shutdown(ctx)
		mgr.Shutdown()
		return err
	}
}
