// Command pmwcm runs the reproduction experiments for "Private
// Multiplicative Weights Beyond Linear Queries" (Ullman, PODS 2015).
//
// Usage:
//
//	pmwcm list                 # show all experiments
//	pmwcm run all              # run every experiment
//	pmwcm run T1.LIN F2.SV     # run selected experiments
//	pmwcm run -quick -seed 7 all
//	pmwcm run -csv T1.LIN      # emit CSV instead of an aligned table
//	pmwcm serve -addr :8787    # serve the interactive query API
//	pmwcm serve -state-dir st  # …with durable sessions across restarts
//	pmwcm loadtest -duration 5 # drive a running serve with a load scenario
//	pmwcm version              # print the build's version and VCS revision
//
// Each experiment prints a table plus the paper's predicted shape. The
// serve subcommand hosts the session-based HTTP/JSON query API of
// internal/service; with -state-dir every session checkpoints its budget
// state through internal/persist and survives restarts, and every serve
// exposes metrics on GET /metrics plus structured request logs
// (-log-level, -log-format) through internal/obs. The loadtest
// subcommand replays a configurable workload mix (internal/loadgen)
// against a running serve and emits a latency/throughput/cache-hit JSON
// report — CI runs it as the load smoke gate, with -check-metrics
// asserting the server's own counters agree with the client report. See
// DESIGN.md for the package inventory and README.md for a worked curl
// session, the serve operations guide, and the loadtest guide.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/expts"
	"repro/internal/mech"
	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range expts.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		fmt.Printf("\naccountants: %s (default %s)\n",
			strings.Join(mech.AccountantNames(), ", "), mech.DefaultAccountant)
	case "run":
		if err := runCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pmwcm:", err)
			os.Exit(1)
		}
	case "synth":
		if err := synthCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pmwcm:", err)
			os.Exit(1)
		}
	case "serve":
		if err := serveCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pmwcm:", err)
			os.Exit(1)
		}
	case "loadtest":
		if err := loadtestCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pmwcm:", err)
			os.Exit(1)
		}
	case "store":
		if err := storeCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pmwcm:", err)
			os.Exit(1)
		}
	case "route":
		if err := routeCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pmwcm:", err)
			os.Exit(1)
		}
	case "version", "-version", "--version":
		fmt.Println(obs.Version().String())
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pmwcm: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pmwcm list
  pmwcm run [-seed N] [-quick] [-csv] [-workers W] [-accountant NAME] (all | ID...)
  pmwcm synth [-in data.csv] [-out synth.csv] [-dim D] [-levels L] [-labels M]
              [-eps E] [-delta D] [-alpha A] [-queries K] [-rows N] [-seed S]
  pmwcm serve [-addr :8787] [-data data.csv] [-dim D] [-levels L] [-labels M]
              [-eps E] [-delta D] [-alpha A] [-k K] [-oracle NAME]
              [-accountant NAME] [-workers W] [-maxsessions N] [-seed S]
              [-state-dir DIR | -store-url http://h:9099/v1/stores/NAME]
              [-wal=false] [-commit-window D] [-max-resident N] [-idle-ttl D]
              [-log-level info] [-log-format text|json]
  pmwcm loadtest [-url http://127.0.0.1:8787] [-urls u1,u2,...] [-scenario file.json]
              [-mode closed|open|churn] [-duration SEC] [-sessions N]
              [-concurrency C] [-rate R] [-batch B] [-hot RATIO]
              [-hotkeys H] [-accountants a,b] [-k K] [-out report.json]
              [-min-hits N] [-max-5xx N] [-check-metrics] [-metrics-urls u1,u2,...]
  pmwcm store [-addr :9099] -dir DIR
  pmwcm route [-addr :9100] -replicas r1=http://h1:8787,r2=http://h2:8787
              [-store-url http://h:9099] [-timeout D] [-retry-after D]
              [-log-level info] [-log-format text|json]
  pmwcm version`)
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed for the experiment sweep")
	quick := fs.Bool("quick", false, "reduced sweeps (for smoke testing)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	workers := fs.Int("workers", runtime.NumCPU(), "xeval workers per universe-sized computation")
	accountant := fs.String("accountant", "", "privacy accountant ("+strings.Join(mech.AccountantNames(), ", ")+"; empty = "+mech.DefaultAccountant+")")
	engine := fs.String("engine", "", "core evaluation engine (dense, factored, auto; empty = dense)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ids := fs.Args()
	if len(ids) == 0 {
		return fmt.Errorf("no experiments named; try 'pmwcm run all'")
	}
	var selected []expts.Experiment
	if len(ids) == 1 && ids[0] == "all" {
		selected = expts.All()
	} else {
		for _, id := range ids {
			e, ok := expts.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (see 'pmwcm list')", id)
			}
			selected = append(selected, e)
		}
	}
	cfg := expts.RunConfig{Seed: *seed, Quick: *quick, Workers: *workers, Accountant: *accountant, Engine: *engine}
	for _, e := range selected {
		tbl, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *csv {
			if err := tbl.CSV(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		} else if err := tbl.Write(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
