package main

import (
	"context"
	"encoding/json"
	"flag"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/persist"
)

// storeCmd runs the fleet blob store: the durable home for serve replicas
// started with -store-url. One store process holds every replica's state
// under per-replica namespaces; replicas speak the persist.Remote
// protocol against it (atomic PUTs, fingerprint-verified GETs). The
// store is plain blob storage — it never decodes session state, so a
// fleet can mix replica versions as long as the envelope schema allows.
func storeCmd(args []string) error {
	fs := flag.NewFlagSet("store", flag.ContinueOnError)
	addr := fs.String("addr", ":9099", "listen address")
	dir := fs.String("dir", "", "blob root directory (one subdirectory per namespace)")
	faultPlan := fs.String("fault-plan", "", "DEV ONLY: deterministic fault-injection plan for blob writes (chaos drills)")
	logLevel := fs.String("log-level", "info", "request/startup log level (debug, info, warn, error)")
	logFormat := fs.String("log-format", "text", "log output format (text, json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}

	fsys := fault.OS
	if *faultPlan != "" {
		plan, err := fault.ParsePlan(*faultPlan)
		if err != nil {
			return err
		}
		fsys = fault.Wrap(fault.OS, plan)
		logger.Warn("fault injection ACTIVE on the blob write path (dev only)", "plan", *faultPlan)
	}
	bs, err := persist.NewBlobServer(*dir, fsys)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	bs.Instrument(reg)

	mux := http.NewServeMux()
	mux.Handle("/v1/stores/", bs.Handler())
	mux.Handle("GET /metrics", obs.MetricsHandler(reg))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "root": bs.Root()})
	})
	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(obs.Version())
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: obs.Middleware(reg, mux, obs.MiddlewareOptions{Logger: logger})}
	logger.Info("blob store listening", "addr", ln.Addr().String(), "root", bs.Root(), "version", obs.Version().String())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}
