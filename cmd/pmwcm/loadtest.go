package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/loadgen"
)

// loadtestCmd drives a running `pmwcm serve` endpoint with a workload
// scenario (internal/loadgen) and writes the measured JSON report. The
// -min-hits and -max-5xx flags turn the run into a gate: CI uses them to
// assert the cache-aware read path actually serves hits and the server
// never faults under load.
func loadtestCmd(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8787", "serve endpoint base URL")
	urls := fs.String("urls", "", "comma-separated endpoint base URLs; sessions are assigned round-robin (overrides -url)")
	metricsURLs := fs.String("metrics-urls", "", "comma-separated /metrics endpoints to scrape and sum for the server-side view (default: the base URLs; point this at the replicas when driving a router)")
	scenarioPath := fs.String("scenario", "", "JSON scenario file (flags below override its fields when set)")
	name := fs.String("name", "", "scenario label in the report")
	mode := fs.String("mode", "", "arrival process: closed (default) or open")
	duration := fs.Float64("duration", 0, "measured run length in seconds (default 5)")
	sessions := fs.Int("sessions", 0, "session fan-out (default 1)")
	concurrency := fs.Int("concurrency", 0, "closed-loop workers per session (default 2)")
	rate := fs.Float64("rate", 0, "open-loop arrivals per second (default 50)")
	batch := fs.Int("batch", 0, "batch size; >1 uses the queries:batch endpoint (default 1)")
	hot := fs.Float64("hot", -1, "hot-key repeat ratio in [0,1] (default 0.8; 0 = all-cold workload)")
	hotKeys := fs.Int("hotkeys", 0, "hot-key set size (default 8)")
	distinct := fs.Bool("distinct", false, "miss-heavy generator: every query is a genuinely new loss, so nothing is ever cached and the mechanism keeps updating")
	accountants := fs.String("accountants", "", "comma-separated per-session accountants, round-robin (empty = server default)")
	k := fs.Int("k", 0, "per-session query cap K to request (0 = server default)")
	seed := fs.Int64("seed", 0, "query-stream seed (default 1)")
	out := fs.String("out", "-", "report destination ('-' = stdout)")
	minHits := fs.Int("min-hits", 0, "fail unless the run served at least this many cache hits")
	max5xx := fs.Int("max-5xx", -1, "fail if the run saw more than this many HTTP 5xx responses (-1 = no gate; with -check-metrics the server's own 5xx counter is gated too)")
	checkMetrics := fs.Bool("check-metrics", false, "fail unless the server's /metrics counter deltas agree with this report (requires the run to be the server's only query traffic)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sc loadgen.Scenario
	if *scenarioPath != "" {
		raw, err := os.ReadFile(*scenarioPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, &sc); err != nil {
			return fmt.Errorf("loadtest: parsing scenario %s: %w", *scenarioPath, err)
		}
	}
	urlSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "url" {
			urlSet = true
		}
	})
	if sc.BaseURL == "" || urlSet {
		sc.BaseURL = *url
	}
	if *urls != "" {
		sc.BaseURLs = splitComma(*urls)
	}
	if *metricsURLs != "" {
		sc.MetricsURLs = splitComma(*metricsURLs)
	}
	if *name != "" {
		sc.Name = *name
	}
	if *mode != "" {
		sc.Mode = *mode
	}
	if *duration > 0 {
		sc.DurationSec = *duration
	}
	if *sessions > 0 {
		sc.Sessions = *sessions
	}
	if *concurrency > 0 {
		sc.Concurrency = *concurrency
	}
	if *rate > 0 {
		sc.Rate = *rate
	}
	if *batch > 0 {
		sc.BatchSize = *batch
	}
	if *hot == 0 {
		// The scenario layer reads negative as "explicitly all cold"
		// (plain 0 would be indistinguishable from an omitted field).
		sc.HotRatio = -1
	} else if *hot > 0 {
		sc.HotRatio = *hot
	}
	if *hotKeys > 0 {
		sc.HotKeys = *hotKeys
	}
	if *distinct {
		sc.Distinct = true
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *accountants != "" {
		sc.Accountants = splitComma(*accountants)
	}
	if *k > 0 {
		if sc.SessionParams == nil {
			sc.SessionParams = map[string]any{}
		}
		sc.SessionParams["k"] = *k
	}

	rep, err := (&loadgen.Runner{}).Run(context.Background(), sc)
	if err != nil {
		return err
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if *out == "-" {
		fmt.Println(string(enc))
	} else {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pmwcm loadtest: wrote %s\n", *out)
	}
	fmt.Fprintf(os.Stderr, "pmwcm loadtest: %d req (%.0f rps), %d queries (%.0f qps), hit rate %.1f%%, p50 %.2fms p99 %.2fms, 5xx %d\n",
		rep.Requests, rep.ThroughputRPS, rep.Queries, rep.ThroughputQPS,
		100*rep.CacheHitRate, rep.Latency.P50, rep.Latency.P99, rep.Status5xx)
	if s := rep.Server; s != nil && s.Supported {
		fmt.Fprintf(os.Stderr, "pmwcm loadtest: server metrics: %d queries (%d hits, %d tops, %d bottoms), 5xx %d\n",
			s.Queries, s.CacheHits, s.Tops, s.Bottoms, s.Status5xx)
	}
	if rep.Scenario.Mode == "churn" {
		fmt.Fprintf(os.Stderr, "pmwcm loadtest: churn: %d sessions created, %d resumed, %d closed, %d lifecycle errors\n",
			rep.SessionsCreated, rep.SessionsResumed, rep.SessionsClosed, rep.ChurnErrors)
	}

	if *minHits > 0 && rep.CacheHits < *minHits {
		return fmt.Errorf("loadtest gate: %d cache hits < required %d", rep.CacheHits, *minHits)
	}
	if *max5xx >= 0 {
		worst := rep.Status5xx
		if *checkMetrics && rep.Server != nil && rep.Server.Supported && rep.Server.Status5xx > worst {
			// The server's own counter sees faults on requests the client
			// never tallied (cut-offs, transport errors).
			worst = rep.Server.Status5xx
		}
		if worst > *max5xx {
			return fmt.Errorf("loadtest gate: %d HTTP 5xx responses > allowed %d", worst, *max5xx)
		}
	}
	if *checkMetrics {
		if err := rep.CheckServerConsistency(); err != nil {
			return fmt.Errorf("loadtest gate: %w", err)
		}
		fmt.Fprintln(os.Stderr, "pmwcm loadtest: server metrics consistent with client report")
	}
	return nil
}

// splitComma splits a comma-separated flag, dropping empty entries.
func splitComma(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}
