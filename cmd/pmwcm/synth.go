package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/convex"
	"repro/internal/core"
	"repro/internal/dataio"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/sample"
	"repro/internal/universe"
	"repro/internal/workload"
)

// synthCmd trains the PMW hypothesis on a query workload under the
// requested (ε, δ) budget and writes a differentially private synthetic
// dataset as CSV.
//
// Two universe shapes are supported. The default is a labeled grid fed
// from a numeric CSV of records (featureDim feature columns plus one label
// column), trained on random halfspace counting queries. With -hypercube D
// the universe is the ±1/√D product hypercube instead — factorable, so
// with -engine factored (or auto) D can exceed the dense-enumeration limit
// (up to 52): training on width-w marginal or parity workloads then never
// materializes the 2^D universe, and memory stays proportional to the
// query supports, not |X|.
func synthCmd(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ContinueOnError)
	inPath := fs.String("in", "-", "input CSV of records (features..., label); '-' = stdin")
	outPath := fs.String("out", "-", "output CSV of synthetic records; '-' = stdout")
	dim := fs.Int("dim", 2, "number of feature columns (grid mode)")
	levels := fs.Int("levels", 3, "grid levels per feature coordinate")
	labels := fs.Int("labels", 3, "grid levels for the label")
	featR := fs.Float64("featradius", 1.0, "feature ball radius")
	labelR := fs.Float64("labelradius", 1.0, "label range half-width")
	hyper := fs.Int("hypercube", 0, "use the ±1/√D product hypercube of this dimension instead of a labeled grid (≤ 52; pair with -engine factored past d = 22)")
	gen := fs.Int("gen", 0, "generate this many uniform random input rows instead of reading -in (hypercube mode)")
	wl := fs.String("workload", "halfspace", "training workload: halfspace, marginal, parity")
	width := fs.Int("width", 2, "marginal/parity width")
	engine := fs.String("engine", "", "evaluation engine: dense, factored, auto (empty = dense)")
	eps := fs.Float64("eps", 1.0, "privacy budget ε")
	delta := fs.Float64("delta", 1e-6, "privacy budget δ")
	alpha := fs.Float64("alpha", 0.01, "excess-risk accuracy target per training query")
	queries := fs.Int("queries", 100, "number of training queries")
	rows := fs.Int("rows", 10000, "number of synthetic rows to release")
	tBudget := fs.Int("tbudget", 15, "MW update horizon (0 = paper worst case)")
	seed := fs.Int64("seed", 1, "random seed")
	header := fs.Bool("header", false, "input CSV has a header row")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var u universe.Universe
	if *hyper > 0 {
		h, err := universe.NewProductHypercube(*hyper)
		if err != nil {
			return err
		}
		u = h
	} else {
		g, err := universe.NewLabeledGrid(*dim, *levels, *featR, *labels, *labelR)
		if err != nil {
			return err
		}
		u = g
	}

	src := sample.New(*seed)
	var data *dataset.Dataset
	if *gen > 0 {
		if *hyper <= 0 {
			return fmt.Errorf("-gen requires -hypercube")
		}
		genSrc := src.Split()
		rws := make([]int, *gen)
		for i := range rws {
			rws[i] = genSrc.Intn(u.Size())
		}
		var err error
		if data, err = dataset.New(u, rws); err != nil {
			return err
		}
	} else {
		var in io.Reader = os.Stdin
		if *inPath != "-" {
			f, err := os.Open(*inPath)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		var err error
		if data, err = dataio.LoadCSV(in, u, *header); err != nil {
			return err
		}
	}

	srv, err := core.New(core.Config{
		Eps: *eps, Delta: *delta,
		Alpha: *alpha, Beta: 0.05,
		K: *queries, S: 1,
		Oracle:  erm.LaplaceLinear{},
		TBudget: *tBudget,
		Engine:  *engine,
	}, data, src.Split())
	if err != nil {
		return err
	}

	var train []*convex.LinearQuery
	switch *wl {
	case "halfspace":
		train, err = workload.Halfspaces(src.Split(), u, *queries)
	case "marginal":
		train, err = workload.Marginals(u.Dim(), *width, *queries)
	case "parity":
		train, err = workload.RandomParities(src.Split(), u.Dim(), *width, *queries)
	default:
		err = fmt.Errorf("unknown -workload %q (have halfspace, marginal, parity)", *wl)
	}
	if err != nil {
		return err
	}
	for _, q := range train {
		if _, err := srv.Answer(q); err == core.ErrHalted {
			break
		} else if err != nil {
			return err
		}
	}

	synth, err := srv.SyntheticRows(src.Split(), *rows)
	if err != nil {
		return err
	}
	var out io.Writer = os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	cols := make([]string, u.Dim())
	for i := range cols {
		cols[i] = fmt.Sprintf("x%d", i)
	}
	if g, ok := u.(*universe.LabeledGrid); ok {
		cols[g.Dim()-1] = "y"
	}
	if err := dataio.StoreCSV(out, synth, cols); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pmwcm synth: %d input rows → %d synthetic rows; engine %s; %d/%d MW updates; privacy ≤ (ε=%.3g, δ=%.3g)\n",
		data.N(), synth.N(), srv.EngineName(), srv.Updates(), srv.Params().T, srv.Privacy().Eps, srv.Privacy().Delta)
	return nil
}
