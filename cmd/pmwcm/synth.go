package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/dataio"
	"repro/internal/erm"
	"repro/internal/sample"
	"repro/internal/universe"
	"repro/internal/workload"
)

// synthCmd reads a numeric CSV of labeled records (featureDim feature
// columns plus one label column), trains the PMW hypothesis on a workload
// of random halfspace counting queries under the requested (ε, δ) budget,
// and writes a differentially private synthetic dataset as CSV.
func synthCmd(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ContinueOnError)
	inPath := fs.String("in", "-", "input CSV of records (features..., label); '-' = stdin")
	outPath := fs.String("out", "-", "output CSV of synthetic records; '-' = stdout")
	dim := fs.Int("dim", 2, "number of feature columns")
	levels := fs.Int("levels", 3, "grid levels per feature coordinate")
	labels := fs.Int("labels", 3, "grid levels for the label")
	featR := fs.Float64("featradius", 1.0, "feature ball radius")
	labelR := fs.Float64("labelradius", 1.0, "label range half-width")
	eps := fs.Float64("eps", 1.0, "privacy budget ε")
	delta := fs.Float64("delta", 1e-6, "privacy budget δ")
	alpha := fs.Float64("alpha", 0.01, "excess-risk accuracy target per training query")
	queries := fs.Int("queries", 100, "number of random halfspace training queries")
	rows := fs.Int("rows", 10000, "number of synthetic rows to release")
	tBudget := fs.Int("tbudget", 15, "MW update horizon (0 = paper worst case)")
	seed := fs.Int64("seed", 1, "random seed")
	header := fs.Bool("header", false, "input CSV has a header row")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := universe.NewLabeledGrid(*dim, *levels, *featR, *labels, *labelR)
	if err != nil {
		return err
	}

	var in io.Reader = os.Stdin
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	data, err := dataio.LoadCSV(in, g, *header)
	if err != nil {
		return err
	}

	src := sample.New(*seed)
	srv, err := core.New(core.Config{
		Eps: *eps, Delta: *delta,
		Alpha: *alpha, Beta: 0.05,
		K: *queries, S: 1,
		Oracle:  erm.LaplaceLinear{},
		TBudget: *tBudget,
	}, data, src.Split())
	if err != nil {
		return err
	}
	train, err := workload.Halfspaces(src.Split(), g, *queries)
	if err != nil {
		return err
	}
	for _, q := range train {
		if _, err := srv.Answer(q); err == core.ErrHalted {
			break
		} else if err != nil {
			return err
		}
	}

	synth, err := srv.SyntheticRows(src.Split(), *rows)
	if err != nil {
		return err
	}
	var out io.Writer = os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	cols := make([]string, g.Dim())
	for i := 0; i < g.FeatureDim(); i++ {
		cols[i] = fmt.Sprintf("x%d", i)
	}
	cols[g.Dim()-1] = "y"
	if err := dataio.StoreCSV(out, synth, cols); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pmwcm synth: %d input rows → %d synthetic rows; %d/%d MW updates; privacy ≤ (ε=%.3g, δ=%.3g)\n",
		data.N(), synth.N(), srv.Updates(), srv.Params().T, srv.Privacy().Eps, srv.Privacy().Delta)
	return nil
}
