// Command benchdiff is the perf-regression gate: it compares the ns/op of
// two `go test -json` benchmark result files (a committed baseline and the
// current run) and fails when a gated package's benchmark regressed beyond
// the threshold.
//
// Usage:
//
//	go run ./scripts/benchdiff -baseline BENCH_micro_baseline.json -current bench_micro_current.json
//	go run ./scripts/benchdiff -baseline old.json -current new.json -gate ''   # report-only
//
// Only packages in -gate (default: the accountant, convex-kernel, and
// persistence micro-benchmarks, which sit on the serving hot path and run
// long enough to be stable) can fail the build; everything else — including the
// wall-clock-noisy Table1 end-to-end benchmarks — is report-only.
// Benchmarks present in only one file are reported, never failed: new
// benchmarks must not need a baseline update to land, and CPU-count name
// suffixes ("-8") are stripped so baselines port across machines.
//
// The committed baseline is regenerated with `scripts/bench.sh micro`;
// regenerate it when the benchmark protocol or the reference hardware
// changes, and say so in the commit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of `go test -json` events benchdiff reads.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// result is one benchmark's aggregated timing.
type result struct {
	pkg   string
	nsPer float64
	runs  int
}

// procSuffix matches the trailing "-<GOMAXPROCS>" Go appends to benchmark
// names; stripping it lets a 1-core baseline compare against an 8-core run.
var procSuffix = regexp.MustCompile(`-\d+$`)

// nsPerOp scans a benchmark-output field list for the value preceding an
// "ns/op" unit.
func nsPerOp(fields []string) (float64, bool) {
	for i, f := range fields {
		if f == "ns/op" && i > 0 {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			return v, err == nil
		}
	}
	return 0, false
}

// parse reads a go test -json file into benchmark name → result, averaging
// repeated runs (-count > 1). test2json often splits one benchmark across
// two output events — the name first, the "<iterations> <value> ns/op"
// line after — so a name without a result is held pending per package
// until its result line arrives.
func parse(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]result{}
	pending := map[string]string{} // package → benchmark name awaiting results
	record := func(pkg, name string, nsPer float64) {
		r := out[name]
		r.pkg = pkg
		r.nsPer = (r.nsPer*float64(r.runs) + nsPer) / float64(r.runs+1)
		r.runs++
		out[name] = r
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue // tolerate non-JSON noise (plain `go test -bench` logs)
		}
		if ev.Action != "output" {
			continue
		}
		fields := strings.Fields(ev.Output)
		if len(fields) == 0 {
			continue
		}
		if strings.HasPrefix(ev.Output, "Benchmark") && fields[0] != "Benchmark" {
			name := procSuffix.ReplaceAllString(fields[0], "")
			if ns, ok := nsPerOp(fields); ok {
				// Single-line form: name and results in one write.
				delete(pending, ev.Package)
				record(ev.Package, name, ns)
			} else {
				pending[ev.Package] = name
			}
			continue
		}
		if name := pending[ev.Package]; name != "" {
			if ns, ok := nsPerOp(fields); ok {
				delete(pending, ev.Package)
				record(ev.Package, name, ns)
			}
		}
	}
	return out, sc.Err()
}

func main() {
	baseline := flag.String("baseline", "", "committed go test -json baseline file")
	current := flag.String("current", "", "go test -json file of the current run")
	threshold := flag.Float64("threshold", 1.25, "max allowed current/baseline ns/op ratio in gated packages (1.25 = +25%)")
	gate := flag.String("gate", "repro/internal/mech,repro/internal/convex,repro/internal/vecmath,repro/internal/persist", "comma-separated packages whose regressions fail the build ('' = report-only)")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -current are required")
		os.Exit(2)
	}

	base, err := parse(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: reading baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := parse(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: reading current: %v\n", err)
		os.Exit(2)
	}

	gated := map[string]bool{}
	for _, p := range strings.Split(*gate, ",") {
		if p != "" {
			gated[p] = true
		}
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	fmt.Printf("%-60s %14s %14s %9s  %s\n", "benchmark", "baseline ns/op", "current ns/op", "delta", "status")
	for _, name := range names {
		c := cur[name]
		b, ok := base[name]
		if !ok {
			fmt.Printf("%-60s %14s %14.1f %9s  new (no baseline)\n", name, "-", c.nsPer, "-")
			continue
		}
		ratio := c.nsPer / b.nsPer
		delta := fmt.Sprintf("%+.1f%%", 100*(ratio-1))
		status := "ok"
		switch {
		case !gated[c.pkg]:
			status = "report-only"
		case ratio > *threshold:
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f → %.1f ns/op (%s, limit %+.0f%%)", name, b.nsPer, c.nsPer, delta, 100*(*threshold-1)))
		}
		fmt.Printf("%-60s %14.1f %14.1f %9s  %s\n", name, b.nsPer, c.nsPer, delta, status)
	}
	for name := range base {
		if _, ok := cur[name]; !ok {
			fmt.Printf("%-60s removed (in baseline, not in current run)\n", name)
		}
	}

	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d gated regression(s) beyond %.0f%%:\n", len(regressions), 100*(*threshold-1))
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Println("\nbenchdiff: no gated regressions")
}
