#!/usr/bin/env bash
# doccheck.sh — the repo's documentation gate, run in CI.
#
#   1. gofmt -l         : no unformatted files
#   2. go vet ./...     : no vet diagnostics
#   3. doccheck         : every internal package has a package doc comment,
#                         and every exported symbol in internal/obs,
#                         internal/persist, internal/route,
#                         internal/service,
#                         internal/universe, internal/vecmath,
#                         internal/xeval, internal/fault, and
#                         internal/fault/drill has a doc comment (the
#                         serving + persistence + observability surface is
#                         the repo's operational API, the universe/kernel/
#                         engine substrate is what every new sweep builds
#                         on, and the fault seam is load-bearing for every
#                         durability claim, so all are held to the
#                         strictest standard; internal/route joins them
#                         as the fleet's availability seam)
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: unformatted files:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...

pkgdoc_args=()
for d in internal/*/; do
    case "$d" in
        internal/obs/|internal/persist/|internal/route/|internal/service/) ;; # strict-checked below
        internal/universe/|internal/vecmath/|internal/xeval/) ;; # strict-checked below
        internal/fault/) ;; # strict-checked below (with its nested drill package)
        *) pkgdoc_args+=(-pkgdoc "${d%/}") ;;
    esac
done
go run ./scripts/doccheck "${pkgdoc_args[@]}" \
    internal/obs internal/persist internal/route internal/service \
    internal/universe internal/vecmath internal/xeval \
    internal/fault internal/fault/drill

echo "doccheck: OK"
