#!/usr/bin/env sh
# bench.sh — run the repo's benchmarks and archive the results as JSON so
# the performance trajectory is tracked PR over PR.
#
# Usage:
#   scripts/bench.sh                  # full sweep, writes BENCH_<date>.json
#   BENCHTIME=10x scripts/bench.sh    # override iteration count
#   BENCH=GradOn scripts/bench.sh     # restrict to matching benchmarks
#
# The output file is `go test -json` events (one JSON object per line);
# benchmark result lines live in the "Output" fields of events whose
# Action is "output". Compare runs with e.g.
#   jq -r 'select(.Action=="output") | .Output' BENCH_2026-07-27.json | grep Benchmark
#
# The sweep covers the xeval/mw/convex kernels AND the privacy-accounting
# micro-benchmarks (BenchmarkAccountant* in internal/mech): per-spend
# overhead and Total() latency per accountant, which sit on the serving hot
# path (one Spend per ⊤ answer, one Total per status read). Restrict with
#   BENCH=Accountant scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
BENCH="${BENCH:-.}"
OUT="BENCH_$(date +%F).json"

echo "bench: pattern=$BENCH benchtime=$BENCHTIME -> $OUT" >&2
go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -json ./... > "$OUT"

# Human-readable summary to stderr.
grep -o '"Output":"Benchmark[^"]*"' "$OUT" \
	| sed -e 's/^"Output":"//' -e 's/"$//' -e 's/\\t/\t/g' -e 's/\\n$//' >&2 || true
echo "bench: wrote $OUT" >&2
