#!/usr/bin/env sh
# bench.sh — run the repo's benchmarks and archive the results as JSON so
# the performance trajectory is tracked PR over PR.
#
# Usage:
#   scripts/bench.sh                  # full sweep, writes BENCH_<date>.json
#   BENCHTIME=10x scripts/bench.sh    # override iteration count
#   BENCH=GradOn scripts/bench.sh     # restrict to matching benchmarks
#
# The output file is `go test -json` events (one JSON object per line);
# benchmark result lines live in the "Output" fields of events whose
# Action is "output". Compare runs with e.g.
#   jq -r 'select(.Action=="output") | .Output' BENCH_2026-07-27.json | grep Benchmark
#
# The sweep covers the xeval/mw/convex kernels AND the privacy-accounting
# micro-benchmarks (BenchmarkAccountant* in internal/mech): per-spend
# overhead and Total() latency per accountant, which sit on the serving hot
# path (one Spend per ⊤ answer, one Total per status read). Restrict with
#   BENCH=Accountant scripts/bench.sh
#
# Micro mode — the CI perf-regression gate's protocol:
#   scripts/bench.sh micro              # writes BENCH_micro_baseline.json
#   OUT=bench_micro_current.json scripts/bench.sh micro
# runs only the mech + convex + vecmath + persist micro-benchmarks at a
# time-based
# -benchtime (default 0.2s), long enough per benchmark that ns/op is
# stable; compare runs with `go run ./scripts/benchdiff`. Regenerate (and
# commit) the baseline when the protocol or the reference hardware changes.
#
# The first line of every output file is a meta event recording goos,
# goarch, the CPU model, and the vecmath sweep sizes (the |X| grid the
# block-kernel benchmarks cover), so archived results identify the machine
# and universe scale they were measured on. benchdiff ignores it (its
# Action is "meta", not "output").
set -eu

cd "$(dirname "$0")/.."

MODE="${1:-full}"
BENCH="${BENCH:-.}"
if [ "$MODE" = "micro" ]; then
	BENCHTIME="${BENCHTIME:-0.2s}"
	OUT="${OUT:-BENCH_micro_baseline.json}"
	PKGS="./internal/mech ./internal/convex ./internal/vecmath ./internal/persist"
else
	BENCHTIME="${BENCHTIME:-1x}"
	OUT="${OUT:-BENCH_$(date +%F).json}"
	PKGS="./..."
fi

CPU="$(awk -F': ' '/model name/{print $2; exit}' /proc/cpuinfo 2>/dev/null || true)"
[ -n "$CPU" ] || CPU="$(uname -m)"

echo "bench: mode=$MODE pattern=$BENCH benchtime=$BENCHTIME -> $OUT" >&2
printf '{"Action":"meta","Mode":"%s","Benchtime":"%s","GOOS":"%s","GOARCH":"%s","CPU":"%s","UniverseSizes":[1024,65536,1048576]}\n' \
	"$MODE" "$BENCHTIME" "$(go env GOOS)" "$(go env GOARCH)" "$CPU" > "$OUT"
# shellcheck disable=SC2086 # PKGS is a deliberate word list
go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -json $PKGS >> "$OUT"

# Human-readable summary to stderr.
grep -o '"Output":"Benchmark[^"]*"' "$OUT" \
	| sed -e 's/^"Output":"//' -e 's/"$//' -e 's/\\t/\t/g' -e 's/\\n$//' >&2 || true
echo "bench: wrote $OUT" >&2
