#!/usr/bin/env bash
# covgate.sh — per-file statement-coverage gate for the durability core.
#
#   covgate.sh <coverprofile> <min-percent> <file>...
#
# Aggregates the profile per file (deduplicating blocks across the test
# binaries that appended to it: a block counts as covered if ANY binary
# covered it) and fails if a named file falls below the threshold. The
# named files are matched by suffix, so callers pass repo-relative paths
# like internal/persist/wal.go.
#
# CI gates the durability core (wal.go, committer.go, backend.go) and
# the routing core (route.go) — files where an untested branch is a
# durability or availability bug waiting for a crash schedule to find it.
#
# Appended profiles carry one "mode:" header per test binary, so header
# lines are skipped wherever they appear, and a profile with no data
# lines at all fails loudly — an empty profile gating nothing must never
# read as a pass.
set -euo pipefail

if [[ $# -lt 3 ]]; then
    echo "usage: covgate.sh <coverprofile> <min-percent> <file>..." >&2
    exit 2
fi
profile=$1
min=$2
shift 2

if [[ ! -s "$profile" ]]; then
    echo "covgate: $profile: missing or empty coverage profile" >&2
    exit 1
fi
if ! grep -qv '^mode:' "$profile"; then
    echo "covgate: $profile: no coverage data (only mode headers)" >&2
    exit 1
fi

fail=0
for want in "$@"; do
    line=$(awk -v want="$want" '
        /^mode:/ { next }
        {
            key = $1
            stmts[key] = $2
            if ($3 > 0) hit[key] = 1
        }
        END {
            for (k in stmts) {
                split(k, parts, ":")
                fn = parts[1]
                if (substr(fn, length(fn) - length(want) + 1) != want) continue
                total += stmts[k]
                if (k in hit) cov += stmts[k]
            }
            if (total == 0) { print "MISSING"; exit }
            printf "%.1f %d %d\n", 100 * cov / total, cov, total
        }' "$profile")
    if [[ "$line" == "MISSING" || -z "$line" ]]; then
        echo "covgate: $want: no coverage data in $profile" >&2
        fail=1
        continue
    fi
    read -r pct cov total <<<"$line"
    ok="OK"
    if awk -v p="$pct" -v m="$min" 'BEGIN { exit !(p < m) }'; then
        ok="FAIL (< ${min}%)"
        fail=1
    fi
    printf "covgate: %-40s %6s%% (%s/%s statements)  %s\n" "$want" "$pct" "$cov" "$total" "$ok"
done
exit $fail
