#!/usr/bin/env bash
# waithealthz.sh — poll an endpoint's /healthz until it answers 200.
#
#   waithealthz.sh BASE_URL [TRIES]
#
# Polls every 0.2s, TRIES times (default 50 → 10s). Exits 0 the moment
# the endpoint is healthy, 1 with a diagnostic if it never comes up —
# shared by every CI job that boots a pmwcm process instead of each
# repeating its own curl loop.
set -euo pipefail

if [[ $# -lt 1 ]]; then
    echo "usage: waithealthz.sh BASE_URL [TRIES]" >&2
    exit 2
fi
base=${1%/}
tries=${2:-50}

for ((i = 0; i < tries; i++)); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then
        exit 0
    fi
    sleep 0.2
done
echo "waithealthz: $base not healthy after $tries tries" >&2
exit 1
