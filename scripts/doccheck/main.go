// Command doccheck enforces the repo's documentation invariants:
//
//  1. every package under the given directories has a package-level doc
//     comment on some file;
//  2. in directories passed with a trailing "...strict" marker removed —
//     i.e. every directory listed on the command line — every *exported*
//     top-level symbol (type, function, method, const, var) has a doc
//     comment.
//
// Usage: doccheck [-pkgdoc dir]... dir...
//
// Positional dirs get the full exported-symbol check; -pkgdoc dirs (may
// repeat) only need package doc comments. scripts/doccheck.sh wires this
// into CI.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	var pkgdocOnly multiFlag
	flag.Var(&pkgdocOnly, "pkgdoc", "directory that only needs a package doc comment (repeatable)")
	flag.Parse()
	if flag.NArg() == 0 && len(pkgdocOnly) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck [-pkgdoc dir]... dir...")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range pkgdocOnly {
		problems = append(problems, checkDir(dir, false)...)
	}
	for _, dir := range flag.Args() {
		problems = append(problems, checkDir(dir, true)...)
	}
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// checkDir parses one directory (non-recursive, skipping _test files) and
// returns its documentation problems.
func checkDir(dir string, exported bool) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", dir, err)}
	}
	var problems []string
	for name, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package doc comment", dir, name))
		}
		if !exported {
			continue
		}
		for path, f := range pkg.Files {
			problems = append(problems, checkFile(fset, filepath.Base(path), f)...)
		}
	}
	return problems
}

// checkFile reports exported top-level declarations without doc comments.
func checkFile(fset *token.FileSet, file string, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, what, name string) {
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			file, fset.Position(pos).Line, what, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || methodOfUnexported(d) {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc comment on the group (or a per-spec comment,
					// including a trailing line comment) suffices for
					// const/var blocks.
					if groupDoc || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(s.Pos(), "const/var", n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// methodOfUnexported reports whether d is a method on an unexported
// receiver type — internal machinery whose docs are the type's business.
func methodOfUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && !id.IsExported()
}
