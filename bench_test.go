// Package repro's top-level benchmarks regenerate every table and figure of
// the paper (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
// for paper-vs-measured results). Each benchmark runs its experiment
// end-to-end per iteration and reports, alongside ns/op, the headline
// metric of the experiment as a custom unit so `go test -bench=.` output
// doubles as a results table.
//
// Run a single experiment's bench with e.g.
//
//	go test -bench=BenchmarkTable1Linear -benchtime=1x
package repro

import (
	"strconv"
	"testing"

	"repro/internal/expts"
)

// runExperiment executes the experiment once per bench iteration and
// reports the value found at (row, col) of the produced table as metric.
func runExperiment(b *testing.B, id string, metricCol string, metricName string) {
	b.Helper()
	e, ok := expts.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var last float64
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(expts.RunConfig{Seed: int64(1 + i), Quick: true})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if v, ok := lastValue(tbl, metricCol); ok {
			last = v
		}
	}
	if metricName != "" {
		b.ReportMetric(last, metricName)
	}
}

// lastValue extracts the named column's value from the last row.
func lastValue(t *expts.Table, col string) (float64, bool) {
	idx := -1
	for i, c := range t.Columns {
		if c == col {
			idx = i
			break
		}
	}
	if idx < 0 || len(t.Rows) == 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(t.Rows[len(t.Rows)-1][idx], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// BenchmarkTable1Linear regenerates Table 1 row 1 (linear queries): PMW
// stays pinned near α while per-query Laplace composition degrades ~√k.
func BenchmarkTable1Linear(b *testing.B) {
	runExperiment(b, "T1.LIN", "pmw", "pmw-max-excess")
}

// BenchmarkTable1Lipschitz regenerates Table 1 row 2 (Lipschitz, d-bounded
// CM queries): PMW with the NoisyGD oracle vs composition across n and k.
func BenchmarkTable1Lipschitz(b *testing.B) {
	runExperiment(b, "T1.LIP", "pmw", "pmw-max-excess")
}

// BenchmarkTable1GLM regenerates Table 1 row 3 (unconstrained GLMs): the
// GLM-reduction oracle is ~flat in dimension, the generic oracle grows.
func BenchmarkTable1GLM(b *testing.B) {
	runExperiment(b, "T1.GLM", "glmreduce", "glm-excess")
}

// BenchmarkTable1StronglyConvex regenerates Table 1 row 4 (σ-strongly
// convex losses): error decreases as σ grows.
func BenchmarkTable1StronglyConvex(b *testing.B) {
	runExperiment(b, "T1.SC", "pmw+outputperturb", "pmw-max-excess")
}

// BenchmarkFig1AccuracyGame regenerates Figure 1 / Definition 2.4: the
// empirical success rate of the accuracy game vs n.
func BenchmarkFig1AccuracyGame(b *testing.B) {
	runExperiment(b, "F1.ACC", "success_rate", "success-rate")
}

// BenchmarkFig2SparseVector regenerates Figure 2 / Theorem 3.1: sparse
// vector decision accuracy vs n.
func BenchmarkFig2SparseVector(b *testing.B) {
	runExperiment(b, "F2.SV", "top_rate", "top-rate")
}

// BenchmarkFig3Internals regenerates Figure 3's internal invariants:
// per-update progress, potential decay, update budget.
func BenchmarkFig3Internals(b *testing.B) {
	runExperiment(b, "F3.ALG", "progress", "last-progress")
}

// BenchmarkFig4Composition regenerates Figure 4 / Theorem 3.10: basic vs
// strong composition totals plus an empirical adjacent-dataset check.
func BenchmarkFig4Composition(b *testing.B) {
	runExperiment(b, "F4.COMP", "advanced_eps", "advanced-eps")
}

// BenchmarkAblationEta sweeps the MW learning rate (ablation A1).
func BenchmarkAblationEta(b *testing.B) {
	runExperiment(b, "A1.ETA", "max_excess", "max-excess")
}

// BenchmarkAblationUpdateVector compares the dual-certificate update with a
// naive loss-gap update (ablation A2).
func BenchmarkAblationUpdateVector(b *testing.B) {
	runExperiment(b, "A2.DUAL", "worst_excess", "final-worst-excess")
}

// BenchmarkAblationOracle sweeps the oracle quality (ablation A3).
func BenchmarkAblationOracle(b *testing.B) {
	runExperiment(b, "A3.ORACLE", "max_excess", "max-excess")
}

// BenchmarkHR10Lineage checks the CM generalization against HR10's linear
// PMW, MWEM, and composition on a pure linear-query workload (X1.HR10).
func BenchmarkHR10Lineage(b *testing.B) {
	runExperiment(b, "X1.HR10", "worst_answer_err", "comp-worst-err")
}

// BenchmarkAdaptiveGeneralization reproduces the §1.3 adaptive-data-
// analysis connection: private answers curb the analyst's overfitting
// (X2.ADAPT).
func BenchmarkAdaptiveGeneralization(b *testing.B) {
	runExperiment(b, "X2.ADAPT", "gap_private", "private-gap")
}

// BenchmarkOfflineVariant compares the online Figure-3 algorithm with the
// offline MWEM-style batch variant (X3.OFFLINE).
func BenchmarkOfflineVariant(b *testing.B) {
	runExperiment(b, "X3.OFFLINE", "max_excess", "offline-max-excess")
}
