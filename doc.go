// Package repro is a from-scratch Go reproduction of Jonathan Ullman,
// "Private Multiplicative Weights Beyond Linear Queries" (PODS 2015,
// arXiv:1407.1571): a differentially private mechanism answering
// exponentially many convex-minimization queries on one sensitive dataset.
//
// The root package holds the benchmark harness (bench_test.go), one
// benchmark per paper table/figure; the implementation lives under
// internal/ (see DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results).
package repro
