// Package repro is a from-scratch Go reproduction of Jonathan Ullman,
// "Private Multiplicative Weights Beyond Linear Queries" (PODS 2015,
// arXiv:1407.1571): a differentially private mechanism answering
// exponentially many convex-minimization queries on one sensitive dataset.
//
// The root package holds the benchmark harness (bench_test.go), one
// benchmark per paper table/figure; the implementation lives under
// internal/ (see DESIGN.md for the system inventory). The pmwcm command
// runs the batch experiments and serves the interactive query API
// (internal/service); README.md has the quickstart for both.
package repro
