// Package repro is a from-scratch Go reproduction of Jonathan Ullman,
// "Private Multiplicative Weights Beyond Linear Queries" (PODS 2015,
// arXiv:1407.1571): a differentially private mechanism answering
// exponentially many convex-minimization queries on one sensitive dataset.
//
// The root package holds the benchmark harness (bench_test.go), one
// benchmark per paper table/figure; the implementation lives under
// internal/ (see DESIGN.md for the system inventory). Beyond the batch
// reproduction, the repo has grown the operational layers a long-running
// deployment needs: internal/service hosts the paper's interactive
// protocol as a concurrent session server (`pmwcm serve`, HTTP/JSON),
// internal/mech's pluggable accountants select the composition calculus
// per session ("basic", "advanced" DRV10, "zcdp"), internal/xeval runs
// every universe-sized computation chunk-parallel with bit-identical
// results for any worker count, and internal/persist gives sessions
// durable snapshot/restore state (`pmwcm serve -state-dir`) — a restored
// session continues bit-identically to an uninterrupted one. The serving
// read path is cache-aware and batched: repeats of an answered query are
// re-released from a per-session answer cache as zero-spend
// post-processing, batches answer many specs per round trip with one
// checkpoint, and internal/loadgen (`pmwcm loadtest`) measures the
// result — latency, throughput, cache-hit rate — as the CI load gate.
//
// The pmwcm command runs the batch experiments (`run`, `list`), releases
// synthetic data (`synth`), serves the interactive query API (`serve`),
// and drives load scenarios against it (`loadtest`); README.md has the
// quickstart for each, the serve operations guide, and the loadtest
// guide.
package repro
