// Package expts is the experiment harness that regenerates the paper's
// Table 1 and figure-level claims empirically. Each experiment is a named,
// seeded, self-contained procedure that produces a formatted table plus a
// note stating the paper's expectation, so EXPERIMENTS.md can record
// paper-vs-measured side by side. See DESIGN.md §4 for the experiment
// index.
package expts

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table with a headline and notes.
type Table struct {
	// Name is the experiment id (e.g. "T1.LIN").
	Name string
	// Title is a one-line description.
	Title string
	// PaperClaim states what shape the paper predicts.
	PaperClaim string
	// Columns are the header cells.
	Columns []string
	// Rows hold formatted cells; each row must match len(Columns).
	Rows [][]string
	// Notes carries free-form observations appended by the run.
	Notes []string
}

// Add appends a row, converting values with %v/%.4g as appropriate.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends an observation line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Write renders the table as aligned text.
func (t *Table) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s — %s ==\n", t.Name, t.Title); err != nil {
		return err
	}
	if t.PaperClaim != "" {
		if _, err := fmt.Fprintf(w, "paper: %s\n", t.PaperClaim); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV renders the table as comma-separated values (cells containing commas
// are quoted).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
