package expts

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/erm"
	"repro/internal/mech"
	"repro/internal/sample"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

// hr10Comparison checks that the paper's CM generalization specializes
// correctly: on a pure linear-query workload, online PMW-for-CM (with the
// Laplace linear oracle), Hardt–Rothblum's original online PMW, and
// offline MWEM all land in the same accuracy regime, far ahead of
// independent Laplace answering.
func hr10Comparison() Experiment {
	return Experiment{
		ID:    "X1.HR10",
		Title: "lineage check: PMW-for-CM vs HR10 linear PMW vs MWEM vs composition",
		PaperClaim: "the CM algorithm degenerates to (a noisier flavor of) HR10's linear PMW " +
			"on linear queries (§1.2); both beat per-query composition at large k",
		Run: func(cfg RunConfig) (*Table, error) {
			g, err := stdGrid()
			if err != nil {
				return nil, err
			}
			k := 40000
			if cfg.Quick {
				k = 8000
			}
			n := 30000
			eps, delta := 1.0, 1e-6
			t := &Table{
				Name:  "X1.HR10",
				Title: fmt.Sprintf("worst excess risk / answer error over k=%d linear queries (n=%d, ε=1)", k, n),
				PaperClaim: "hr10-pmw and mwem (native answer-unit mechanisms) are the most " +
					"accurate; cm-pmw pays a quadratic embedding penalty but still beats " +
					"composition at large k",
				Columns: []string{"method", "worst_excess", "worst_answer_err", "updates"},
			}
			src := sample.New(cfg.Seed)
			data, _, err := sampleData(src, g, 1.2, n)
			if err != nil {
				return nil, err
			}
			d := data.Histogram()
			queries, err := workload.Halfspaces(src.Split(), g, k)
			if err != nil {
				return nil, err
			}
			truth := make([]float64, k)
			for i, q := range queries {
				truth[i] = q.ExactMinimize(d)[0]
			}
			// worst excess = max (ans−truth)²/2, worst answer err = max |ans−truth|.
			report := func(method string, answers []float64, updates int) (float64, float64) {
				var we, wa float64
				for i, a := range answers {
					if math.IsNaN(a) {
						continue
					}
					diff := math.Abs(a - truth[i])
					if diff > wa {
						wa = diff
					}
					if e := diff * diff / 2; e > we {
						we = e
					}
				}
				t.Add(method, we, wa, updates)
				return we, wa
			}

			// (a) CM generalization with the Laplace linear oracle, at the
			// excess-risk target its theory speaks (α here is excess).
			cmSrv, err := core.New(core.Config{
				Workers: cfg.Workers, Accountant: cfg.Accountant, Engine: cfg.Engine,
				Eps: eps, Delta: delta,
				Alpha: 0.12, Beta: 0.05, K: k, S: 1,
				Oracle: erm.LaplaceLinear{}, TBudget: 10,
			}, data, src.Split())
			if err != nil {
				return nil, err
			}
			cmAns := make([]float64, k)
			for i := range cmAns {
				cmAns[i] = math.NaN()
			}
			for i, q := range queries {
				theta, err := cmSrv.Answer(q)
				if err == core.ErrHalted {
					break
				}
				if err != nil {
					return nil, err
				}
				cmAns[i] = theta[0]
			}
			cmWorst, _ := report("cm-pmw", cmAns, cmSrv.Updates())

			// (b) HR10's linear PMW (answer-unit target 0.1).
			hrSrv, err := core.NewLinearPMW(core.LinearPMWConfig{
				Workers: cfg.Workers, Accountant: cfg.Accountant,
				Eps: eps, Delta: delta, Alpha: 0.1, K: k, TBudget: 60,
			}, data, src.Split())
			if err != nil {
				return nil, err
			}
			hrAns := make([]float64, k)
			for i := range hrAns {
				hrAns[i] = math.NaN()
			}
			for i, q := range queries {
				ans, err := hrSrv.Answer(q)
				if err == core.ErrHalted {
					break
				}
				if err != nil {
					return nil, err
				}
				hrAns[i] = ans
			}
			hrWorst, _ := report("hr10-pmw", hrAns, hrSrv.Updates())

			// (c) Offline MWEM on the same workload.
			mwemRes, err := core.MWEM(core.MWEMConfig{Eps: eps, Delta: delta, Rounds: 20}, data, src.Split(), queries)
			if err != nil {
				return nil, err
			}
			mwemWorst, _ := report("mwem", mwemRes.Answers, len(mwemRes.Selected))

			// (d) Per-query Laplace under strong composition.
			eps0, _, err := mech.SplitBudget(eps, delta, k)
			if err != nil {
				return nil, err
			}
			csrc := src.Split()
			compAns := make([]float64, k)
			for i := range queries {
				compAns[i] = vecmath.Clamp(truth[i]+csrc.Laplace(1/(float64(n)*eps0)), 0, 1)
			}
			compWorst, _ := report("composition", compAns, 0)

			if cmWorst < compWorst && hrWorst < compWorst && mwemWorst < compWorst {
				t.Note("MATCH: all PMW-family mechanisms beat composition at k=%d", k)
			} else {
				t.Note("composition still competitive at k=%d (crossover is n-dependent; full mode uses larger k)", k)
			}
			t.Note("cm-pmw's answer error reflects the quadratic embedding: excess α maps to answer error √(2α)")
			return t, nil
		},
	}
}
