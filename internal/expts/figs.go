package expts

import (
	"fmt"

	"repro/internal/accuracy"
	"repro/internal/core"
	"repro/internal/erm"
	"repro/internal/histogram"
	"repro/internal/mech"
	"repro/internal/mw"
	"repro/internal/sample"
	"repro/internal/sparse"
)

// fig1AccuracyGame reproduces Figure 1 / Definition 2.4: the empirical
// (α, β)-accuracy of the mechanism against a greedy adaptive adversary, as
// a function of n.
func fig1AccuracyGame() Experiment {
	return Experiment{
		ID:    "F1.ACC",
		Title: "sample accuracy game: success rate vs n against a greedy adversary",
		PaperClaim: "Pr[max_j err ≤ α] ≥ 1−β once n exceeds Theorem 3.8's bound; " +
			"success rate rises toward 1 as n grows",
		Run: func(cfg RunConfig) (*Table, error) {
			g, err := stdGrid()
			if err != nil {
				return nil, err
			}
			ns := []int{500, 5000, 50000}
			runs := 12
			if cfg.Quick {
				ns = []int{500, 50000}
				runs = 6
			}
			alpha := 0.1
			k := 40
			t := &Table{
				Name:       "F1.ACC",
				Title:      fmt.Sprintf("fraction of games with max excess ≤ α=%.2g (k=%d greedy linear queries)", alpha, k),
				PaperClaim: "success rate increasing in n, → 1",
				Columns:    []string{"n", "success_rate", "mean_max_err", "halted_frac"},
			}
			src := sample.New(cfg.Seed)
			for _, n := range ns {
				var success, halted int
				var sumMax float64
				for r := 0; r < runs; r++ {
					data, _, err := sampleData(src.Split(), g, 1.2, n)
					if err != nil {
						return nil, err
					}
					pool, err := linearWorkload(src.Split(), g, k)
					if err != nil {
						return nil, err
					}
					adv, err := accuracy.NewGreedy(pool, data.Histogram(), histogram.Uniform(g), 200)
					if err != nil {
						return nil, err
					}
					srv, err := core.New(core.Config{
						Workers: cfg.Workers, Accountant: cfg.Accountant, Engine: cfg.Engine,
						Eps: 1, Delta: 1e-6, Alpha: alpha, Beta: 0.05,
						K: k, S: 1, Oracle: erm.LaplaceLinear{}, TBudget: 12,
					}, data, src.Split())
					if err != nil {
						return nil, err
					}
					res, err := accuracy.RunGame(srv, adv, data, accuracy.GameConfig{K: k})
					if err != nil {
						return nil, err
					}
					sumMax += res.MaxErr
					if res.HaltedEarly {
						halted++
					} else if res.MaxErr <= alpha {
						success++
					}
				}
				t.Add(n, float64(success)/float64(runs), sumMax/float64(runs), float64(halted)/float64(runs))
			}
			return t, nil
		},
	}
}

// fig2SparseVector reproduces Figure 2 / Theorem 3.1: the ThresholdGame
// correctness rates of the online sparse vector algorithm as n grows
// (sensitivity 3S/n shrinks).
func fig2SparseVector() Experiment {
	return Experiment{
		ID:    "F2.SV",
		Title: "ThresholdGame: sparse-vector correctness rates vs n",
		PaperClaim: "for n ≥ 256·S·√(T·log(2/δ)·log(4k/β))/(εα), above-threshold queries " +
			"answer ⊤ and below-half queries answer ⊥ w.p. ≥ 1−β",
		Run: func(cfg RunConfig) (*Table, error) {
			alpha := 0.1
			scfg := sparse.Config{T: 8, K: 500, Alpha: alpha, Eps: 1, Delta: 1e-6}
			ns := []int{200, 2000, 20000, 200000}
			runs := 60
			if cfg.Quick {
				ns = []int{200, 20000}
				runs = 20
			}
			t := &Table{
				Name:       "F2.SV",
				Title:      "per-query decision accuracy of SV (T=8, k=500, α=0.1, ε=1)",
				PaperClaim: "both rates → 1 as n grows; theorem bound n* marks the guarantee",
				Columns:    []string{"n", "top_rate", "bottom_rate"},
			}
			nStar := sparse.MinDatasetSize(1, scfg, 0.05)
			t.Note("Theorem 3.1 sample bound n* = %d (constants are worst-case)", nStar)
			src := sample.New(cfg.Seed)
			for _, n := range ns {
				c := scfg
				c.Sensitivity = 3.0 / float64(n)
				var topOK, topTotal, botOK, botTotal int
				for r := 0; r < runs; r++ {
					sv, err := sparse.New(c, src.Split())
					if err != nil {
						return nil, err
					}
					for q := 0; q < 40 && !sv.Halted(); q++ {
						above := q%8 == 7
						var v float64
						if above {
							v = alpha * 1.1
						} else {
							v = alpha * 0.4
						}
						top, err := sv.Query(v)
						if err != nil {
							return nil, err
						}
						if above {
							topTotal++
							if top {
								topOK++
							}
						} else {
							botTotal++
							if !top {
								botOK++
							}
						}
					}
				}
				t.Add(n, float64(topOK)/float64(topTotal), float64(botOK)/float64(botTotal))
			}
			return t, nil
		},
	}
}

// fig3AlgorithmInternals validates Figure 3's moving parts: update count
// stays under the budget T, per-update progress exceeds α/4 (Claim 3.6),
// and the KL potential decreases monotonically (Lemma 3.4's mechanism).
func fig3AlgorithmInternals() Experiment {
	return Experiment{
		ID:    "F3.ALG",
		Title: "Figure 3 internals: update count, per-update progress, potential decay",
		PaperClaim: "updates ≤ T = 64S²log|X|/α²; every update has ⟨u_t, D̂t−D⟩ > α/4 " +
			"(Claim 3.6); KL(D‖D̂t) decreases (Lemma 3.4 proof)",
		Run: func(cfg RunConfig) (*Table, error) {
			g, err := stdGrid()
			if err != nil {
				return nil, err
			}
			k := 150
			if cfg.Quick {
				k = 60
			}
			alpha := 0.05
			src := sample.New(cfg.Seed)
			data, _, err := sampleData(src.Split(), g, 1.5, 100000)
			if err != nil {
				return nil, err
			}
			pool, err := linearWorkload(src.Split(), g, k)
			if err != nil {
				return nil, err
			}
			adv, err := accuracy.NewGreedy(pool, data.Histogram(), histogram.Uniform(g), 200)
			if err != nil {
				return nil, err
			}
			ccfg := core.Config{
				Workers: cfg.Workers, Accountant: cfg.Accountant, Engine: cfg.Engine,
				Eps: 1, Delta: 1e-6, Alpha: alpha, Beta: 0.05,
				K: k, S: 1, Oracle: erm.LaplaceLinear{}, TBudget: 25, Trace: true,
			}
			srv, err := core.New(ccfg, data, src.Split())
			if err != nil {
				return nil, err
			}
			if _, err := accuracy.RunGame(srv, adv, data, accuracy.GameConfig{K: k}); err != nil {
				return nil, err
			}
			t := &Table{
				Name:       "F3.ALG",
				Title:      fmt.Sprintf("per-update trace (α=%.2g, α/4=%.3g, T budget=%d)", alpha, alpha/4, srv.Params().T),
				PaperClaim: "progress > α/4 per update; potential decreasing; updates ≤ T",
				Columns:    []string{"update", "query", "true_err", "progress", "potential"},
			}
			traces := srv.Traces()
			prevPot := -1.0
			var monotone = true
			var progressOK int
			for _, tr := range traces {
				t.Add(tr.UpdateIndex, tr.QueryIndex, tr.TrueErr, tr.Progress, tr.Potential)
				if prevPot >= 0 && tr.Potential > prevPot+1e-9 {
					monotone = false
				}
				prevPot = tr.Potential
				if tr.Progress > alpha/4 {
					progressOK++
				}
			}
			t.Note("updates used: %d of budget %d (paper worst-case T would be %d)",
				srv.Updates(), srv.Params().T, mw.UpdateBudget(1, alpha, g.Size()))
			if len(traces) > 0 {
				t.Note("updates with progress > α/4: %d/%d; potential monotone: %v",
					progressOK, len(traces), monotone)
			}
			return t, nil
		},
	}
}

// fig4Composition reproduces Figure 4 / Theorem 3.10: the privacy cost of
// T-fold adaptive composition under the basic vs strong rule, plus an
// empirical adjacent-dataset check of the sparse-vector bit.
func fig4Composition() Experiment {
	return Experiment{
		ID:    "F4.COMP",
		Title: "T-fold composition: basic vs strong (Thm 3.10) ε totals; empirical DP check",
		PaperClaim: "strong composition gives ε ≈ √(2T·ln(1/δ′))·ε₀ + 2Tε₀² ≪ T·ε₀; the " +
			"paper's split schedule keeps T calls within (ε, δ)",
		Run: func(cfg RunConfig) (*Table, error) {
			t := &Table{
				Name:       "F4.COMP",
				Title:      "total ε of T mechanisms at ε₀ = SplitBudget(1, 1e-6, T)",
				PaperClaim: "advanced ≤ 1 (target), basic grows like √T·advanced",
				Columns:    []string{"T", "eps0", "basic_eps", "advanced_eps"},
			}
			for _, T := range []int{10, 100, 1000} {
				eps0, delta0, err := mech.SplitBudget(1, 1e-6, T)
				if err != nil {
					return nil, err
				}
				basic := mech.BasicComposition(eps0, delta0, T)
				adv, err := mech.AdvancedComposition(eps0, delta0, T, 0.5e-6)
				if err != nil {
					return nil, err
				}
				t.Add(T, eps0, basic.Eps, adv.Eps)
			}

			// Empirical adjacent-dataset check of the SV first-answer bit at a
			// borderline query value.
			runs := 30000
			if cfg.Quick {
				runs = 6000
			}
			scfg := sparse.Config{T: 1, K: 1, Alpha: 0.2, Eps: 0.5, Delta: 1e-6, Sensitivity: 0.01}
			mk := func(value float64) func(int64) string {
				return func(seed int64) string {
					sv, err := sparse.New(scfg, sample.New(seed))
					if err != nil {
						return "err"
					}
					top, err := sv.Query(value)
					if err != nil {
						return "err"
					}
					if top {
						return "T"
					}
					return "F"
				}
			}
			v := 0.75 * scfg.Alpha
			est, err := accuracy.EstimateDP(runs, 0.02, mk(v), mk(v+scfg.Sensitivity))
			if err != nil {
				return nil, err
			}
			t.Note("empirical SV bit log-ratio on adjacent inputs: %.3f (mechanism ε=%.2g; sampling noise included)",
				est.WorstLogRatio, scfg.Eps)
			return t, nil
		},
	}
}
