package expts

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		Name:       "X",
		Title:      "demo",
		PaperClaim: "claim",
		Columns:    []string{"a", "bbbb"},
	}
	tbl.Add(1, 2.5)
	tbl.Add("x", 0.333333333)
	tbl.Note("observed %d", 7)
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== X — demo ==", "paper: claim", "a", "bbbb", "0.3333", "note: observed 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b"}}
	tbl.Add("x,y", 1)
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",1\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	wantIDs := []string{
		"A1.ETA", "A2.DUAL", "A3.ORACLE",
		"F1.ACC", "F2.SV", "F3.ALG", "F4.COMP",
		"T1.GLM", "T1.LIN", "T1.LIP", "T1.SC",
		"X1.HR10", "X2.ADAPT", "X3.OFFLINE",
	}
	if len(all) != len(wantIDs) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(wantIDs))
	}
	for i, e := range all {
		if e.ID != wantIDs[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, wantIDs[i])
		}
		if e.Title == "" || e.PaperClaim == "" || e.Run == nil {
			t.Errorf("experiment %s incompletely specified", e.ID)
		}
	}
	if _, ok := ByID("T1.LIN"); !ok {
		t.Error("ByID failed for T1.LIN")
	}
	if _, ok := ByID("NOPE"); ok {
		t.Error("ByID found a ghost")
	}
}

// Smoke-run every experiment in Quick mode: it must complete without error
// and produce a non-empty table. Shape assertions live with the benches and
// EXPERIMENTS.md; this test pins the plumbing.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(RunConfig{Seed: 1, Quick: true})
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			var buf bytes.Buffer
			if err := tbl.Write(&buf); err != nil {
				t.Fatal(err)
			}
			t.Log("\n" + buf.String())
		})
	}
}
