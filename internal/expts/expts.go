package expts

import (
	"math"
	"sort"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/histogram"
	"repro/internal/optimize"
	"repro/internal/sample"
	"repro/internal/universe"
	"repro/internal/workload"
)

// RunConfig is shared by all experiments.
type RunConfig struct {
	// Seed pins all randomness.
	Seed int64
	// Quick shrinks sweeps and repetition counts for CI/bench use.
	Quick bool
	// Workers sets the xeval worker count for universe-sized computations
	// (0 = all CPUs). Results are worker-count independent; experiments
	// stay reproducible for a given seed regardless of parallelism.
	Workers int
	// Accountant names the privacy-accounting strategy every core.Server
	// the experiments build composes spends under ("" = "advanced", the
	// paper's DRV10 accounting — see internal/mech's registry). Unlike
	// Workers this changes derived horizons: "zcdp" sessions sustain more
	// MW updates at the same budget when oracles are Gaussian-based.
	Accountant string
	// Engine selects the core evaluation engine for every server the
	// experiments build ("" = dense; see core.Config.Engine). The bundled
	// experiments run on small universes where dense is the right choice;
	// the knob exists so the same harness can exercise the factored path.
	Engine string
}

// Experiment is one reproducible experiment.
type Experiment struct {
	// ID matches DESIGN.md's experiment index (e.g. "T1.LIN").
	ID string
	// Title is a one-line description.
	Title string
	// PaperClaim states the shape the paper predicts.
	PaperClaim string
	// Run executes the experiment.
	Run func(cfg RunConfig) (*Table, error)
}

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	es := []Experiment{
		table1Linear(),
		table1Lipschitz(),
		table1GLM(),
		table1StronglyConvex(),
		fig1AccuracyGame(),
		fig2SparseVector(),
		fig3AlgorithmInternals(),
		fig4Composition(),
		ablationEta(),
		ablationUpdateVector(),
		ablationOracle(),
		hr10Comparison(),
		adaptiveGeneralization(),
		offlineComparison(),
	}
	sort.Slice(es, func(i, j int) bool { return es[i].ID < es[j].ID })
	return es
}

// ByID finds an experiment by its ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------------------
// shared workload builders

// stdGrid is the default labeled universe: 2 features on a 3-level grid in
// the unit ball, 3 labels in [−1, 1]; |X| = 27.
func stdGrid() (*universe.LabeledGrid, error) {
	return universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
}

// linearWorkload builds k random halfspace counting queries over u
// (workload.Halfspaces upcast to the Loss interface).
func linearWorkload(src *sample.Source, u universe.Universe, k int) ([]convex.Loss, error) {
	qs, err := workload.Halfspaces(src, u, k)
	if err != nil {
		return nil, err
	}
	return workload.AsLosses(qs), nil
}

// squaredWorkload builds k random-target squared-loss CM queries over a
// labeled grid ("predict attribute ⟨a, x⟩ from the features").
func squaredWorkload(src *sample.Source, g *universe.LabeledGrid, k int) ([]convex.Loss, error) {
	return workload.Regressions(src, g, k)
}

// randomLabeledPoints builds a sampled labeled universe in high ambient
// dimension: `count` unit-sphere feature vectors in R^dim with ±1 labels
// drawn from a sharp logistic model around a hidden direction (sharpness =
// the logit multiplier). The record layout is (features..., label), the
// convention every GLM loss in convex uses.
func randomLabeledPoints(src *sample.Source, dim, count int, sharpness float64) (*universe.Points, error) {
	hidden := src.UnitVec(dim)
	pts := make([][]float64, count)
	for i := range pts {
		f := src.UnitVec(dim)
		p := make([]float64, dim+1)
		copy(p, f)
		var z float64
		for j := range f {
			z += hidden[j] * f[j]
		}
		if src.Bernoulli(1 / (1 + math.Exp(-sharpness*z))) {
			p[dim] = 1
		} else {
			p[dim] = -1
		}
		pts[i] = p
	}
	return universe.NewPoints(pts)
}

// sampleData draws an n-row dataset from a skewed population over u.
func sampleData(src *sample.Source, u universe.Universe, skew float64, n int) (*dataset.Dataset, *histogram.Histogram, error) {
	pop, err := dataset.Skewed(u, skew)
	if err != nil {
		return nil, nil, err
	}
	return dataset.SampleFrom(src, pop, n), pop, nil
}

// maxExcess measures the worst excess risk of per-query answers on d.
func maxExcess(losses []convex.Loss, answers [][]float64, d *histogram.Histogram) (float64, error) {
	var worst float64
	for i, l := range losses {
		if answers[i] == nil {
			continue
		}
		e, err := optimize.Excess(l, answers[i], d, optimize.Options{MaxIters: 800})
		if err != nil {
			return 0, err
		}
		if e > worst {
			worst = e
		}
	}
	return worst, nil
}
