package expts

import (
	"fmt"

	"repro/internal/convex"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/mw"
	"repro/internal/optimize"
	"repro/internal/sample"
	"repro/internal/vecmath"
	"repro/internal/xeval"
)

// ablationEta sweeps the MW learning rate around the paper's choice via the
// TBudget knob (η = √(log|X|/T)/S, so T controls η): too small a T (big η)
// overshoots, too large a T (tiny η) makes each update nearly useless and
// burns the sparse-vector budget.
func ablationEta() Experiment {
	return Experiment{
		ID:    "A1.ETA",
		Title: "ablation: learning rate η (via T) vs accuracy and updates used",
		PaperClaim: "Figure 3 sets η = √(log|X|/T); the proof needs each update to gain " +
			"≥ ηα/4 − η²S²/2 of potential — both very large and very small η waste updates",
		Run: func(cfg RunConfig) (*Table, error) {
			g, err := stdGrid()
			if err != nil {
				return nil, err
			}
			budgets := []int{2, 12, 60, 300}
			if cfg.Quick {
				budgets = []int{2, 12, 60}
			}
			k := 80
			alpha := 0.08
			t := &Table{
				Name:       "A1.ETA",
				Title:      fmt.Sprintf("PMW on k=%d linear queries at α=%.2g, sweeping T (hence η)", k, alpha),
				PaperClaim: "intermediate η best; tiny η (huge T) stalls, huge η (tiny T) halts early",
				Columns:    []string{"T", "eta", "max_excess", "updates", "halted_early"},
			}
			src := sample.New(cfg.Seed)
			data, _, err := sampleData(src.Split(), g, 1.5, 80000)
			if err != nil {
				return nil, err
			}
			d := data.Histogram()
			losses, err := linearWorkload(src.Split(), g, k)
			if err != nil {
				return nil, err
			}
			for _, T := range budgets {
				ccfg := core.Config{
					Workers: cfg.Workers, Accountant: cfg.Accountant, Engine: cfg.Engine,
					Eps: 1, Delta: 1e-6, Alpha: alpha, Beta: 0.05,
					K: k, S: 1, Oracle: erm.LaplaceLinear{}, TBudget: T,
				}
				ans, srv, err := runPMW(ccfg, data, src.Split(), losses)
				if err != nil {
					return nil, err
				}
				e, err := maxExcess(losses, ans, d)
				if err != nil {
					return nil, err
				}
				// "halted early" = ran out of ⊤ budget before the stream
				// ended (seeing all k queries also sets Halted, which is
				// the normal end of the run).
				early := srv.Answered() < k
				t.Add(T, srv.Params().Eta, e, srv.Updates(), fmt.Sprintf("%v", early))
			}
			return t, nil
		},
	}
}

// ablationUpdateVector compares the paper's dual-certificate update vector
// (Claim 3.5) against a naive alternative — the per-record loss gap
// ℓ(θt; x) − ℓ(θ̂t; x) — in a controlled MW loop without privacy noise.
// The dual certificate guarantees ⟨u_t, D̂t − D⟩ ≥ ℓ_D(θ̂t) − ℓ_D(θt) > 0;
// the loss-gap vector carries no such guarantee and converges more slowly
// (or not at all).
func ablationUpdateVector() Experiment {
	return Experiment{
		ID:    "A2.DUAL",
		Title: "ablation: dual-certificate update vector vs naive loss-gap vector",
		PaperClaim: "Claim 3.5's u_t(x) = ⟨θt−θ̂t, ∇ℓ_x(θ̂t)⟩ makes guaranteed progress; " +
			"without the first-order-optimality argument the update can stall",
		Run: func(cfg RunConfig) (*Table, error) {
			g, err := stdGrid()
			if err != nil {
				return nil, err
			}
			rounds := 40
			if cfg.Quick {
				rounds = 20
			}
			src := sample.New(cfg.Seed)
			data, _, err := sampleData(src.Split(), g, 1.5, 50000)
			if err != nil {
				return nil, err
			}
			d := data.Histogram()
			losses, err := squaredWorkload(src.Split(), g, 25)
			if err != nil {
				return nil, err
			}
			s := convex.ScaleBound(losses[0])

			type rule struct {
				name string
				vec  func(l convex.Loss, theta, thetaHat []float64) []float64
			}
			eng := xeval.New(cfg.Workers)
			dual := rule{"dual-certificate", func(l convex.Loss, theta, thetaHat []float64) []float64 {
				dir := vecmath.Sub(theta, thetaHat)
				u := make([]float64, g.Size())
				convex.DirGradOn(eng, l, u, dir, thetaHat, g)
				for i := range u {
					u[i] = vecmath.Clamp(u[i], -s, s)
				}
				return u
			}}
			lossGap := rule{"loss-gap", func(l convex.Loss, theta, thetaHat []float64) []float64 {
				u := make([]float64, g.Size())
				buf := make([]float64, g.Dim())
				for i := 0; i < g.Size(); i++ {
					x := g.PointInto(i, buf)
					u[i] = vecmath.Clamp(l.Value(theta, x)-l.Value(thetaHat, x), -s, s)
				}
				return u
			}}
			// A genuinely certificate-free rule: penalize records by the
			// hypothesis answer's raw loss. It ignores where the private
			// answer points, so it has no progress guarantee.
			hypLoss := rule{"hypothesis-loss", func(l convex.Loss, _, thetaHat []float64) []float64 {
				u := make([]float64, g.Size())
				buf := make([]float64, g.Dim())
				for i := 0; i < g.Size(); i++ {
					u[i] = vecmath.Clamp(l.Value(thetaHat, g.PointInto(i, buf)), -s, s)
				}
				return u
			}}

			t := &Table{
				Name:  "A2.DUAL",
				Title: fmt.Sprintf("noiseless MW loop, %d rounds, worst query error by round", rounds),
				PaperClaim: "dual-certificate drives worst error down with a guarantee; loss-gap " +
					"tracks it only because it is the certificate's first-order Taylor " +
					"approximation; a certificate-free rule stalls",
				Columns: []string{"rule", "round", "worst_excess"},
			}
			for _, r := range []rule{dual, lossGap, hypLoss} {
				state, err := mw.New(g, mw.Eta(s, rounds, g.Size()), s)
				if err != nil {
					return nil, err
				}
				for round := 1; round <= rounds; round++ {
					hyp := state.Histogram()
					// Pick the pool query the hypothesis answers worst
					// (noiseless selection isolates the update rule).
					var worst float64
					var worstIdx int
					var worstThetaHat []float64
					for i, l := range losses {
						res, err := optimize.Minimize(l, hyp, optimize.Options{MaxIters: 300})
						if err != nil {
							return nil, err
						}
						e, err := optimize.Excess(l, res.Theta, d, optimize.Options{MaxIters: 300})
						if err != nil {
							return nil, err
						}
						if e >= worst {
							worst, worstIdx, worstThetaHat = e, i, res.Theta
						}
					}
					if round == rounds || round == 1 || round%10 == 0 {
						t.Add(r.name, round, worst)
					}
					l := losses[worstIdx]
					// Noiseless "oracle": the true minimizer on D.
					res, err := optimize.Minimize(l, d, optimize.Options{MaxIters: 300})
					if err != nil {
						return nil, err
					}
					if err := state.Update(r.vec(l, res.Theta, worstThetaHat)); err != nil {
						return nil, err
					}
				}
			}
			return t, nil
		},
	}
}

// biasedOracle answers with the exact minimizer perturbed by a
// fixed-magnitude random direction — a dial on the oracle's accuracy
// contract α₀ with everything else held fixed. It is NOT differentially
// private; the ablation isolates the *accuracy* assumption (2) of §3.3,
// not the privacy one.
type biasedOracle struct {
	bias float64
}

func (o biasedOracle) Name() string { return fmt.Sprintf("biased(%g)", o.bias) }

func (o biasedOracle) Answer(src *sample.Source, l convex.Loss, data *dataset.Dataset, _, _ float64) ([]float64, error) {
	res, err := optimize.Minimize(l, data.Histogram(), optimize.Options{MaxIters: 600})
	if err != nil {
		return nil, err
	}
	if o.bias == 0 {
		return res.Theta, nil
	}
	dir := src.UnitVec(l.Domain().Dim())
	return l.Domain().Project(vecmath.AddScaled(vecmath.Copy(res.Theta), o.bias, dir)), nil
}

// ablationOracle sweeps the single-query oracle's accuracy: the end-to-end
// guarantee needs (α₀ = α/4)-accurate oracle answers (assumption (2) of
// §3.3). An inaccurate oracle hurts twice — its answers are released
// directly on ⊤ queries, and they corrupt the dual-certificate direction
// θt − θ̂t of the MW update.
func ablationOracle() Experiment {
	return Experiment{
		ID:    "A3.ORACLE",
		Title: "ablation: oracle answer bias vs end-to-end error",
		PaperClaim: "Theorem 3.8 requires an (α/4, β₀)-accurate oracle; degrading the " +
			"oracle degrades the final guarantee roughly linearly in the bias",
		Run: func(cfg RunConfig) (*Table, error) {
			g, err := stdGrid()
			if err != nil {
				return nil, err
			}
			biases := []float64{0, 0.2, 0.5, 1.0}
			if cfg.Quick {
				biases = []float64{0, 0.5}
			}
			k := 30
			src := sample.New(cfg.Seed)
			pop, err := dataset.LinearModel(src.Split(), g, []float64{0.7, -0.5}, 0.15, 30000)
			if err != nil {
				return nil, err
			}
			data := dataset.SampleFrom(src.Split(), pop, 40000)
			d := data.Histogram()
			losses, err := squaredWorkload(src.Split(), g, k)
			if err != nil {
				return nil, err
			}
			s := convex.ScaleBound(losses[0])
			t := &Table{
				Name:       "A3.ORACLE",
				Title:      fmt.Sprintf("PMW on k=%d squared queries, sweeping the oracle's θ-space bias", k),
				PaperClaim: "max excess grows with oracle bias (both released answers and updates degrade)",
				Columns:    []string{"oracle_bias", "max_excess", "updates"},
			}
			for _, bias := range biases {
				ccfg := core.Config{
					Workers: cfg.Workers, Accountant: cfg.Accountant, Engine: cfg.Engine,
					Eps: 1, Delta: 1e-6, Alpha: 0.05, Beta: 0.05,
					K: k, S: s, Oracle: biasedOracle{bias: bias}, TBudget: 14,
				}
				ans, srv, err := runPMW(ccfg, data, src.Split(), losses)
				if err != nil {
					return nil, err
				}
				e, err := maxExcess(losses, ans, d)
				if err != nil {
					return nil, err
				}
				t.Add(bias, e, srv.Updates())
			}
			return t, nil
		},
	}
}
