package expts

import (
	"fmt"

	"repro/internal/convex"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/histogram"
	"repro/internal/sample"
	"repro/internal/universe"
)

// adaptiveGeneralization reproduces the §1.3 connection between
// differential privacy and generalization in adaptive data analysis
// ([DFH+15, HU14, BSSU15]): an analyst who sees exact sample answers can
// craft a final query that chases the sample's noise (large
// sample-vs-population gap), while an analyst restricted to a DP
// transcript cannot.
func adaptiveGeneralization() Experiment {
	return Experiment{
		ID:    "X2.ADAPT",
		Title: "adaptive data analysis (§1.3): overfitting gap, exact vs private answers",
		PaperClaim: "DP mechanisms bound the information the transcript leaks about the " +
			"sample, so the adaptively crafted final query generalizes; exact answers " +
			"allow a gap ~ the full sampling noise",
		Run: func(cfg RunConfig) (*Table, error) {
			dim := 10
			u, err := universe.NewHypercube(dim)
			if err != nil {
				return nil, err
			}
			pop := histogram.Uniform(u) // every coordinate query ≡ 1/2
			ns := []int{100, 400, 1600}
			trials := 20
			if cfg.Quick {
				ns = []int{100, 400}
				trials = 8
			}
			t := &Table{
				Name:       "X2.ADAPT",
				Title:      fmt.Sprintf("mean final-query sample-vs-population gap over %d trials (%d probes)", trials, dim),
				PaperClaim: "exact gap ≈ sampling noise ~ 1/√n; private gap ≪ exact gap",
				Columns:    []string{"n", "gap_exact", "gap_private"},
			}
			src := sample.New(cfg.Seed)
			for _, n := range ns {
				var gapExact, gapPrivate float64
				for trial := 0; trial < trials; trial++ {
					tsrc := src.Split()
					data := dataset.SampleFrom(tsrc, pop, n)
					d := data.Histogram()
					probes := make([]*convex.LinearQuery, dim)
					for j := range probes {
						j := j
						probes[j], err = convex.NewLinearQuery(fmt.Sprintf("x%d", j), func(x []float64) float64 {
							if x[j] > 0 {
								return 1
							}
							return 0
						})
						if err != nil {
							return nil, err
						}
					}
					// Exact analyst: sees the raw sample answers.
					exactSigns := make([]float64, dim)
					for j, q := range probes {
						exactSigns[j] = signOf(q.ExactMinimize(d)[0] - 0.5)
					}
					// Private analyst: sees PMW answers.
					srv, err := core.New(core.Config{
						Workers: cfg.Workers, Accountant: cfg.Accountant, Engine: cfg.Engine,
						Eps: 0.5, Delta: 1e-6, Alpha: 0.2, Beta: 0.05,
						K: dim, S: 1, Oracle: erm.LaplaceLinear{}, TBudget: 4,
					}, data, tsrc.Split())
					if err != nil {
						return nil, err
					}
					privSigns := make([]float64, dim)
					for j, q := range probes {
						theta, err := srv.Answer(q)
						if err == core.ErrHalted {
							privSigns[j] = 1 // prior answer 1/2 → sign +1
							continue
						}
						if err != nil {
							return nil, err
						}
						privSigns[j] = signOf(theta[0] - 0.5)
					}
					gapExact += overfitGap(d, dim, exactSigns)
					gapPrivate += overfitGap(d, dim, privSigns)
				}
				t.Add(n, gapExact/float64(trials), gapPrivate/float64(trials))
			}
			t.Note("population value of the crafted query is exactly 1/2 by symmetry; the gap is pure overfitting")
			return t, nil
		},
	}
}

// overfitGap evaluates the noise-chasing final query: the per-record
// fraction of coordinates agreeing with the observed deviation signs. Its
// population mean is 1/2; its sample mean exceeds 1/2 by the amount of
// sampling noise the analyst reconstructed.
func overfitGap(d *histogram.Histogram, dim int, signs []float64) float64 {
	var mean float64
	buf := make([]float64, d.U.Dim())
	for i, p := range d.P {
		if p == 0 {
			continue
		}
		x := d.U.PointInto(i, buf)
		var agree float64
		for j := 0; j < dim; j++ {
			if x[j]*signs[j] > 0 {
				agree++
			}
		}
		mean += p * agree / float64(dim)
	}
	return mean - 0.5
}

func signOf(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}
