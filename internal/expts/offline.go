package expts

import (
	"fmt"

	"repro/internal/convex"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/sample"
)

// offlineComparison compares the online algorithm (Figure 3) with the
// offline batch variant sketched in §1.2 ([GHRU11, GRU12, HLM12] style):
// the offline algorithm sees all k losses up front and each round privately
// selects the globally worst-answered one, so it should use its update
// budget at least as effectively as the online algorithm, which must react
// to whatever order the analyst chooses.
func offlineComparison() Experiment {
	return Experiment{
		ID:    "X3.OFFLINE",
		Title: "online (Fig. 3) vs offline (MWEM-style) PMW for CM queries",
		PaperClaim: "the offline variant's exponential-mechanism selection targets the " +
			"globally worst query per round; with equal budgets it matches or beats the " +
			"online algorithm on a fixed workload",
		Run: func(cfg RunConfig) (*Table, error) {
			g, err := stdGrid()
			if err != nil {
				return nil, err
			}
			k := 40
			rounds := 10
			if cfg.Quick {
				k = 20
				rounds = 6
			}
			eps, delta := 1.0, 1e-6
			t := &Table{
				Name:       "X3.OFFLINE",
				Title:      fmt.Sprintf("max excess over k=%d squared-loss queries (ε=1, %d updates each)", k, rounds),
				PaperClaim: "offline ≤ online (global selection uses updates better)",
				Columns:    []string{"variant", "max_excess", "updates"},
			}
			src := sample.New(cfg.Seed)
			pop, err := dataset.LinearModel(src.Split(), g, []float64{0.7, -0.5}, 0.15, 30000)
			if err != nil {
				return nil, err
			}
			data := dataset.SampleFrom(src.Split(), pop, 40000)
			d := data.Histogram()
			losses, err := squaredWorkload(src.Split(), g, k)
			if err != nil {
				return nil, err
			}
			s := convex.ScaleBound(losses[0])
			oracle := erm.NoisyGD{Iters: 40}

			// Online run.
			onlineCfg := core.Config{
				Workers: cfg.Workers, Accountant: cfg.Accountant, Engine: cfg.Engine,
				Eps: eps, Delta: delta, Alpha: 0.05, Beta: 0.05,
				K: k, S: s, Oracle: oracle, TBudget: rounds,
			}
			onlineAns, srv, err := runPMW(onlineCfg, data, src.Split(), losses)
			if err != nil {
				return nil, err
			}
			onlineErr, err := maxExcess(losses, onlineAns, d)
			if err != nil {
				return nil, err
			}
			t.Add("online", onlineErr, srv.Updates())

			// Offline run with the same number of rounds.
			res, err := core.AnswerOffline(core.OfflineConfig{
				Workers: cfg.Workers, Accountant: cfg.Accountant,
				Eps: eps, Delta: delta, Rounds: rounds, S: s, Oracle: oracle,
			}, data, src.Split(), losses)
			if err != nil {
				return nil, err
			}
			offlineErr, err := maxExcess(losses, res.Answers, d)
			if err != nil {
				return nil, err
			}
			t.Add("offline", offlineErr, len(res.Selected))

			if offlineErr <= onlineErr*1.25 {
				t.Note("MATCH: offline within 1.25× of online (%.4g vs %.4g)", offlineErr, onlineErr)
			} else {
				t.Note("offline worse than online on this seed (%.4g vs %.4g)", offlineErr, onlineErr)
			}
			return t, nil
		},
	}
}
