package expts

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/convex"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/optimize"
	"repro/internal/sample"
)

// runPMW answers every loss through an online PMW server, returning
// per-query answers (nil after a halt).
func runPMW(cfg core.Config, data *dataset.Dataset, src *sample.Source, losses []convex.Loss) ([][]float64, *core.Server, error) {
	srv, err := core.New(cfg, data, src)
	if err != nil {
		return nil, nil, err
	}
	answers := make([][]float64, len(losses))
	for i, l := range losses {
		theta, err := srv.Answer(l)
		if err == core.ErrHalted {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		answers[i] = theta
	}
	return answers, srv, nil
}

// runComposition answers every loss through the per-query baseline.
func runComposition(oracle erm.Oracle, eps, delta float64, data *dataset.Dataset, src *sample.Source, losses []convex.Loss) ([][]float64, error) {
	c, err := baseline.NewComposition(oracle, eps, delta, len(losses))
	if err != nil {
		return nil, err
	}
	answers := make([][]float64, len(losses))
	for i, l := range losses {
		theta, err := c.Answer(src, l, data)
		if err != nil {
			return nil, err
		}
		answers[i] = theta
	}
	return answers, nil
}

// table1Linear reproduces Table 1 row 1 (linear queries): PMW's max error
// stays nearly flat in k while independent Laplace answering degrades like
// √k, so PMW wins once k is large.
func table1Linear() Experiment {
	return Experiment{
		ID:    "T1.LIN",
		Title: "linear queries: PMW vs per-query Laplace composition, sweeping k",
		PaperClaim: "n for PMW grows like √(log|X|)·log k (HR10) vs √k for composition; " +
			"at fixed n, composition error grows ~√k while PMW stays ~flat",
		Run: func(cfg RunConfig) (*Table, error) {
			g, err := stdGrid()
			if err != nil {
				return nil, err
			}
			// Linear queries are cheap for composition (sensitivity 1/n), so
			// the crossover sits at large k: composition's max error grows
			// like √k·log k / n while PMW is pinned near its target α
			// independent of k. Linear queries have closed-form solves, so
			// tens of thousands of queries are affordable here.
			ks := []int{100, 3000, 30000}
			if cfg.Quick {
				ks = []int{100, 8000}
			}
			n := 30000
			eps, delta := 1.0, 1e-6
			alpha := 0.1
			t := &Table{
				Name:       "T1.LIN",
				Title:      fmt.Sprintf("max excess risk over k linear queries (n=%d, ε=1, α=%.2g)", n, alpha),
				PaperClaim: "composition degrades ~√k·log k; PMW pinned near α; crossover at large k",
				Columns:    []string{"k", "pmw", "composition", "exact", "pmw_updates"},
			}
			src := sample.New(cfg.Seed)
			data, _, err := sampleData(src, g, 1.2, n)
			if err != nil {
				return nil, err
			}
			d := data.Histogram()
			var pmwErrs, compErrs []float64
			for _, k := range ks {
				losses, err := linearWorkload(src.Split(), g, k)
				if err != nil {
					return nil, err
				}
				pmwCfg := core.Config{
					Workers: cfg.Workers, Accountant: cfg.Accountant, Engine: cfg.Engine,
					Eps: eps, Delta: delta, Alpha: alpha, Beta: 0.05,
					K: k, S: 1, Oracle: erm.LaplaceLinear{}, TBudget: 6,
				}
				pmwAns, srv, err := runPMW(pmwCfg, data, src.Split(), losses)
				if err != nil {
					return nil, err
				}
				pmwErr, err := maxExcess(losses, pmwAns, d)
				if err != nil {
					return nil, err
				}
				compAns, err := runComposition(erm.LaplaceLinear{}, eps, delta, data, src.Split(), losses)
				if err != nil {
					return nil, err
				}
				compErr, err := maxExcess(losses, compAns, d)
				if err != nil {
					return nil, err
				}
				exact := baseline.Exact{}
				exAns := make([][]float64, len(losses))
				for i, l := range losses {
					exAns[i], err = exact.Answer(l, data)
					if err != nil {
						return nil, err
					}
				}
				exErr, err := maxExcess(losses, exAns, d)
				if err != nil {
					return nil, err
				}
				t.Add(k, pmwErr, compErr, exErr, srv.Updates())
				pmwErrs = append(pmwErrs, pmwErr)
				compErrs = append(compErrs, compErr)
			}
			last := len(ks) - 1
			growthComp := compErrs[last] / math.Max(compErrs[0], 1e-9)
			growthPMW := math.Max(pmwErrs[last], 1e-9) / math.Max(pmwErrs[0], 1e-9)
			t.Note("composition error growth k=%d→%d: ×%.2f; pmw growth: ×%.2f", ks[0], ks[last], growthComp, growthPMW)
			if compErrs[last] > pmwErrs[last] {
				t.Note("MATCH: PMW beats composition at k=%d", ks[last])
			} else {
				t.Note("MISMATCH: composition beat PMW at k=%d (crossover sits at larger k for this n)", ks[last])
			}
			return t, nil
		},
	}
}

// table1Lipschitz reproduces Table 1 row 2 (Lipschitz, d-bounded CM
// queries): PMW with the NoisyGD oracle vs per-query composition, sweeping
// n and k.
func table1Lipschitz() Experiment {
	return Experiment{
		ID:    "T1.LIP",
		Title: "Lipschitz d-bounded CM queries: PMW(NoisyGD) vs composition, sweeping n and k",
		PaperClaim: "n = Õ(max{√d·√log|X|, log k·√log|X|}/α²·ε) for PMW vs Õ(√k·√d/αε) " +
			"for composition: at fixed n, error decreases in n and PMW wins at large k",
		Run: func(cfg RunConfig) (*Table, error) {
			g, err := stdGrid()
			if err != nil {
				return nil, err
			}
			type cell struct{ n, k int }
			sweep := []cell{{8000, 30}, {32000, 30}, {32000, 120}}
			if cfg.Quick {
				sweep = []cell{{8000, 15}, {32000, 15}}
			}
			eps, delta := 1.0, 1e-6
			t := &Table{
				Name:       "T1.LIP",
				Title:      "max excess risk over k squared-loss CM queries (ε=1)",
				PaperClaim: "error decreasing in n; PMW flat in k, composition degrading",
				Columns:    []string{"n", "k", "pmw", "composition", "pmw_updates"},
			}
			src := sample.New(cfg.Seed)
			// Linear-model population so the queries have signal.
			popSrc := src.Split()
			pop, err := dataset.LinearModel(popSrc, g, []float64{0.7, -0.5}, 0.15, 30000)
			if err != nil {
				return nil, err
			}
			oracle := erm.NoisyGD{Iters: 40}
			for _, c := range sweep {
				data := dataset.SampleFrom(src.Split(), pop, c.n)
				d := data.Histogram()
				losses, err := squaredWorkload(src.Split(), g, c.k)
				if err != nil {
					return nil, err
				}
				s := convex.ScaleBound(losses[0])
				pmwCfg := core.Config{
					Workers: cfg.Workers, Accountant: cfg.Accountant, Engine: cfg.Engine,
					Eps: eps, Delta: delta, Alpha: 0.15, Beta: 0.05,
					K: c.k, S: s, Oracle: oracle, TBudget: 10,
				}
				pmwAns, srv, err := runPMW(pmwCfg, data, src.Split(), losses)
				if err != nil {
					return nil, err
				}
				pmwErr, err := maxExcess(losses, pmwAns, d)
				if err != nil {
					return nil, err
				}
				compAns, err := runComposition(oracle, eps, delta, data, src.Split(), losses)
				if err != nil {
					return nil, err
				}
				compErr, err := maxExcess(losses, compAns, d)
				if err != nil {
					return nil, err
				}
				t.Add(c.n, c.k, pmwErr, compErr, srv.Updates())
			}
			return t, nil
		},
	}
}

// table1GLM reproduces Table 1 row 3 (unconstrained GLMs). Theorem 4.3 is a
// statement about the single-query oracle, so this experiment compares
// oracles directly: the GLM-reduction oracle's error is dominated by a
// d-independent reduction term while the generic NoisyGD oracle's noise
// grows with √d, so the generic curve climbs much faster and the two cross
// as d grows.
func table1GLM() Experiment {
	return Experiment{
		ID:    "T1.GLM",
		Title: "UGLM queries: dimension dependence of GLM-reduction vs generic oracle",
		PaperClaim: "JT14 oracle needs n = Õ(1/α²ε) independent of d, vs Õ(√d/αε) for the " +
			"generic oracle: at fixed n, GLM error ~flat in d, generic grows with d",
		Run: func(cfg RunConfig) (*Table, error) {
			// High ambient dimensions are reachable because the universe is
			// a *sampled* set of labeled points (|X| = 1024 regardless of
			// d), exactly the rounding freedom §1.1 grants. Labels follow a
			// sharp logistic model so the optimum is informative.
			dims := []int{8, 32, 64}
			trials := 6
			iters := 300
			if cfg.Quick {
				dims = []int{8, 32}
				trials = 2
				iters = 120
			}
			n := 25000
			eps, delta := 1.0, 1e-6
			m := 8
			t := &Table{
				Name:  "T1.GLM",
				Title: fmt.Sprintf("single-query oracle excess on a logistic query vs ambient dim (n=%d, ε=%g, m=%d)", n, eps, m),
				PaperClaim: "glmreduce pinned at its m-dependent reduction floor (flat in d); " +
					"noisygd grows with d and the curves cross",
				Columns: []string{"d", "|X|", "glmreduce", "noisygd"},
			}
			src := sample.New(cfg.Seed)
			var glmErrs, genErrs []float64
			for _, dim := range dims {
				u, err := randomLabeledPoints(src.Split(), dim, 1024, 8.0)
				if err != nil {
					return nil, err
				}
				data, _, err := sampleData(src.Split(), u, 0.5, n)
				if err != nil {
					return nil, err
				}
				d := data.Histogram()
				ball, err := convex.NewL2Ball(dim, 1)
				if err != nil {
					return nil, err
				}
				lg, err := convex.NewLogistic("logit", ball, 0.0, 0.5, 1.0)
				if err != nil {
					return nil, err
				}
				var errs []float64
				for _, oracle := range []erm.Oracle{
					erm.GLMReduction{ReducedDim: m, Iters: iters},
					erm.NoisyGD{Iters: iters},
				} {
					var total float64
					for r := 0; r < trials; r++ {
						theta, err := oracle.Answer(src.Split(), lg, data, eps, delta)
						if err != nil {
							return nil, err
						}
						e, err := optimize.Excess(lg, theta, d, optimize.Options{MaxIters: 800})
						if err != nil {
							return nil, err
						}
						total += e
					}
					errs = append(errs, total/float64(trials))
				}
				t.Add(dim, u.Size(), errs[0], errs[1])
				glmErrs = append(glmErrs, errs[0])
				genErrs = append(genErrs, errs[1])
			}
			last := len(dims) - 1
			t.Note("growth d=%d→%d: glmreduce ×%.2f, noisygd ×%.2f (paper: flat vs d-driven)",
				dims[0], dims[last],
				glmErrs[last]/math.Max(glmErrs[0], 1e-9),
				genErrs[last]/math.Max(genErrs[0], 1e-9))
			if glmErrs[last] < genErrs[last] {
				t.Note("MATCH: glmreduce overtakes noisygd at d=%d", dims[last])
			} else {
				t.Note("crossover beyond d=%d at this (n, ε); the shape claim is the growth contrast above", dims[last])
			}
			return t, nil
		},
	}
}

// table1StronglyConvex reproduces Table 1 row 4: stronger convexity buys
// accuracy through the output-perturbation oracle.
func table1StronglyConvex() Experiment {
	return Experiment{
		ID:    "T1.SC",
		Title: "σ-strongly convex CM queries: error vs σ with the output-perturbation oracle",
		PaperClaim: "single-query n = Õ(√d/(√σ·α·ε)) (BST14): at fixed n, error decreases " +
			"as σ grows; PMW inherits the improvement",
		Run: func(cfg RunConfig) (*Table, error) {
			g, err := stdGrid()
			if err != nil {
				return nil, err
			}
			sigmas := []float64{0.1, 0.5, 2.0}
			if cfg.Quick {
				sigmas = []float64{0.1, 2.0}
			}
			k := 15
			n := 30000
			eps, delta := 1.0, 1e-6
			t := &Table{
				Name:       "T1.SC",
				Title:      fmt.Sprintf("max excess over k=%d ridge-regularized queries vs σ (n=%d, ε=1)", k, n),
				PaperClaim: "error decreasing in σ",
				Columns:    []string{"sigma_effective", "pmw+outputperturb", "composition"},
			}
			src := sample.New(cfg.Seed)
			popSrc := src.Split()
			pop, err := dataset.LinearModel(popSrc, g, []float64{0.7, -0.5}, 0.15, 30000)
			if err != nil {
				return nil, err
			}
			data := dataset.SampleFrom(src.Split(), pop, n)
			d := data.Histogram()
			base, err := squaredWorkload(src.Split(), g, k)
			if err != nil {
				return nil, err
			}
			oracle := erm.OutputPerturbation{}
			for _, sigma := range sigmas {
				// Ridge-regularize, then renormalize to 1-Lipschitz per the
				// paper's convention (§4.2.3 assumes L = 1 at every σ).
				losses := make([]convex.Loss, len(base))
				for i, b := range base {
					rg, err := convex.NewRegularized(b, sigma)
					if err != nil {
						return nil, err
					}
					norm, err := convex.NewUnitLipschitz(rg)
					if err != nil {
						return nil, err
					}
					losses[i] = norm
				}
				s := convex.ScaleBound(losses[0])
				pmwCfg := core.Config{
					Workers: cfg.Workers, Accountant: cfg.Accountant, Engine: cfg.Engine,
					Eps: eps, Delta: delta, Alpha: 0.15, Beta: 0.05,
					K: k, S: s, Oracle: oracle, TBudget: 8,
				}
				ans, _, err := runPMW(pmwCfg, data, src.Split(), losses)
				if err != nil {
					return nil, err
				}
				pmwErr, err := maxExcess(losses, ans, d)
				if err != nil {
					return nil, err
				}
				compAns, err := runComposition(oracle, eps, delta, data, src.Split(), losses)
				if err != nil {
					return nil, err
				}
				compErr, err := maxExcess(losses, compAns, d)
				if err != nil {
					return nil, err
				}
				t.Add(losses[0].StrongConvexity(), pmwErr, compErr)
			}
			return t, nil
		},
	}
}
