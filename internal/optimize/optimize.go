// Package optimize provides deterministic convex solvers over public
// histograms.
//
// Paper Figure 3 repeatedly computes θ̂t = argmin_θ ℓ(θ; D̂t) where D̂t is
// the *public* hypothesis histogram. This step has no privacy cost, so a
// plain projected-subgradient method suffices; its accuracy tolerance is
// absorbed into the α/4 slack of Claim 3.6 (see DESIGN.md). For σ-strongly
// convex objectives the solver switches to the 1/(σt) step schedule with
// suffix averaging, which converges markedly faster.
package optimize

import (
	"fmt"
	"math"

	"repro/internal/convex"
	"repro/internal/histogram"
	"repro/internal/vecmath"
	"repro/internal/xeval"
)

// Options configures Minimize. The zero value picks sensible defaults.
type Options struct {
	// MaxIters bounds the number of projected-gradient iterations.
	// Default 600.
	MaxIters int
	// Tol stops early when the projected-gradient step moves θ by less
	// than Tol in L2. Default 1e-8.
	Tol float64
	// Init is the starting point; Domain().Center() when nil.
	Init []float64
	// Engine evaluates the per-iteration population values and gradients
	// chunk-parallel over the universe; nil runs serially. Results are
	// identical either way (xeval's reductions are worker-count
	// deterministic).
	Engine *xeval.Engine
}

// Result reports the solver outcome.
type Result struct {
	// Theta is the (approximate) minimizer, inside the domain.
	Theta []float64
	// Value is the objective at Theta.
	Value float64
	// Iters is the number of iterations performed.
	Iters int
	// Converged reports whether the Tol criterion triggered before
	// MaxIters.
	Converged bool
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 600
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	return o
}

// Minimize approximately solves argmin_θ ℓ(θ; h) over the loss's domain
// with projected (sub)gradient descent and Polyak–Ruppert averaging. The
// histogram is treated as public: no noise is added.
func Minimize(l convex.Loss, h *histogram.Histogram, opts Options) (Result, error) {
	opts = opts.withDefaults()
	// Fast path: losses with closed-form minimizers (linear queries,
	// linear forms) skip the iterative solver entirely.
	if es, ok := l.(convex.ExactSolvable); ok {
		if theta := es.ExactMinimize(h); theta != nil {
			return Result{
				Theta:     theta,
				Value:     convex.EvalOn(opts.Engine, l, theta, h),
				Iters:     0,
				Converged: true,
			}, nil
		}
	}
	dom := l.Domain()
	d := dom.Dim()
	theta := opts.Init
	if theta == nil {
		theta = dom.Center()
	} else {
		if len(theta) != d {
			return Result{}, fmt.Errorf("optimize: init dim %d != domain dim %d", len(theta), d)
		}
		theta = dom.Project(theta)
	}

	lip := l.Lipschitz()
	if lip <= 0 {
		lip = 1
	}
	sigma := l.StrongConvexity()
	diam := dom.Diameter()

	grad := make([]float64, d)
	best := vecmath.Copy(theta)
	bestVal := convex.EvalOn(opts.Engine, l, theta, h)
	avg := vecmath.Copy(theta)
	var avgCount float64 = 1

	converged := false
	iters := 0
	for t := 1; t <= opts.MaxIters; t++ {
		iters = t
		convex.GradOn(opts.Engine, l, grad, theta, h)
		var step float64
		if sigma > 0 {
			step = 1 / (sigma * float64(t))
		} else {
			// Classic D/(L√t) schedule for Lipschitz convex objectives.
			step = diam / (lip * math.Sqrt(float64(t)))
		}
		next := dom.Project(vecmath.AddScaled(vecmath.Copy(theta), -step, grad))
		moved := vecmath.Dist2(next, theta)
		theta = next

		// Running average (uniform) — the object with the textbook
		// convergence guarantee for subgradient methods.
		avgCount++
		for i := range avg {
			avg[i] += (theta[i] - avg[i]) / avgCount
		}

		if v := convex.EvalOn(opts.Engine, l, theta, h); v < bestVal {
			bestVal = v
			copy(best, theta)
		}
		if moved < opts.Tol {
			converged = true
			break
		}
	}

	// The averaged iterate sometimes beats the best raw iterate; keep
	// whichever has the lower objective.
	avgProj := dom.Project(avg)
	if v := convex.EvalOn(opts.Engine, l, avgProj, h); v < bestVal {
		bestVal = v
		best = avgProj
	}
	return Result{Theta: best, Value: bestVal, Iters: iters, Converged: converged}, nil
}

// MinValue returns min_θ ℓ(θ; h) via Minimize, for error computations
// err_ℓ(D, θ̂) = ℓ(θ̂; D) − min_θ ℓ(θ; D) (paper Def 2.2).
func MinValue(l convex.Loss, h *histogram.Histogram, opts Options) (float64, error) {
	res, err := Minimize(l, h, opts)
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}

// Excess returns err_ℓ(h, θ̂) = ℓ(θ̂; h) − min_θ ℓ(θ; h), the excess
// empirical risk of answer θ̂ on histogram h (paper Def 2.2). Values are
// clamped at 0 from below to absorb solver slack on the min term.
func Excess(l convex.Loss, theta []float64, h *histogram.Histogram, opts Options) (float64, error) {
	mv, err := MinValue(l, h, opts)
	if err != nil {
		return 0, err
	}
	e := convex.EvalOn(opts.Engine, l, theta, h) - mv
	if e < 0 {
		return 0, nil
	}
	return e, nil
}
