package optimize

import (
	"testing"

	"repro/internal/convex"
	"repro/internal/histogram"
	"repro/internal/universe"
)

func benchSetup(b *testing.B) (convex.Loss, *histogram.Histogram) {
	b.Helper()
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	ball, err := convex.NewL2Ball(2, 1)
	if err != nil {
		b.Fatal(err)
	}
	sq, err := convex.NewSquared("sq", ball, []float64{0, 0, 1}, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	return sq, histogram.Uniform(g)
}

// BenchmarkMinimize measures the public argmin solve of Figure 3's
// θ̂t computation (one per query).
func BenchmarkMinimize(b *testing.B) {
	sq, h := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Minimize(sq, h, Options{MaxIters: 400}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrankWolfe measures the projection-free alternative.
func BenchmarkFrankWolfe(b *testing.B) {
	sq, h := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FrankWolfe(sq, h, Options{MaxIters: 400}); err != nil {
			b.Fatal(err)
		}
	}
}
