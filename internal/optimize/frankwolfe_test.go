package optimize

import (
	"math"
	"testing"

	"repro/internal/convex"
	"repro/internal/histogram"
	"repro/internal/sample"
)

func TestFrankWolfeMatchesPGD(t *testing.T) {
	g := grid(t)
	ball, _ := convex.NewL2Ball(2, 1)
	sq, _ := convex.NewSquared("sq", ball, []float64{0, 0, 1}, 1, 1)
	src := sample.New(1)
	// Random histogram so the optimum is non-trivial.
	p := make([]float64, g.Size())
	var z float64
	for i := range p {
		p[i] = src.Exponential(1)
		z += p[i]
	}
	for i := range p {
		p[i] /= z
	}
	h, err := histogram.FromProbs(g, p)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := FrankWolfe(sq, h, Options{MaxIters: 3000, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	pgd, err := Minimize(sq, h, Options{MaxIters: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fw.Value-pgd.Value) > 1e-4 {
		t.Errorf("FW value %v != PGD value %v", fw.Value, pgd.Value)
	}
	if !ball.Contains(fw.Theta, 1e-9) {
		t.Error("FW left the domain")
	}
}

func TestFrankWolfeLinearObjectiveOneStep(t *testing.T) {
	g := grid(t)
	ball, _ := convex.NewL2Ball(2, 1)
	lf, _ := convex.NewLinearForm("lf", ball, []float64{1, 0, 0}, math.Sqrt2)
	h := histogram.Uniform(g)
	fw, err := FrankWolfe(lf, h, Options{MaxIters: 500, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	exact := lf.ExactMinimize(h)
	if math.Abs(convex.ValueOn(lf, fw.Theta, h)-convex.ValueOn(lf, exact, h)) > 1e-6 {
		t.Errorf("FW on linear objective missed the vertex: %v vs %v", fw.Theta, exact)
	}
}

func TestFrankWolfeValidation(t *testing.T) {
	g := grid(t)
	ball, _ := convex.NewL2Ball(2, 1)
	sq, _ := convex.NewSquared("sq", ball, []float64{0, 0, 1}, 1, 1)
	h := histogram.Uniform(g)
	if _, err := FrankWolfe(sq, h, Options{Init: []float64{1, 2, 3}}); err == nil {
		t.Error("bad init accepted")
	}
	// A domain without an LMO is rejected.
	noLMO := noLMODomain{ball}
	wrapped := domainSwap{inner: sq, dom: noLMO}
	if _, err := FrankWolfe(wrapped, h, Options{}); err == nil {
		t.Error("domain without LMO accepted")
	}
}

// noLMODomain hides the LinearMinimizer implementation of a domain.
type noLMODomain struct{ inner convex.Domain }

func (d noLMODomain) Dim() int                                { return d.inner.Dim() }
func (d noLMODomain) Project(th []float64) []float64          { return d.inner.Project(th) }
func (d noLMODomain) Contains(th []float64, tol float64) bool { return d.inner.Contains(th, tol) }
func (d noLMODomain) Diameter() float64                       { return d.inner.Diameter() }
func (d noLMODomain) Center() []float64                       { return d.inner.Center() }
func (d noLMODomain) String() string                          { return d.inner.String() }

// domainSwap overrides a loss's domain.
type domainSwap struct {
	inner convex.Loss
	dom   convex.Domain
}

func (w domainSwap) Name() string                  { return w.inner.Name() }
func (w domainSwap) Domain() convex.Domain         { return w.dom }
func (w domainSwap) Value(th, x []float64) float64 { return w.inner.Value(th, x) }
func (w domainSwap) Grad(g, th, x []float64)       { w.inner.Grad(g, th, x) }
func (w domainSwap) Lipschitz() float64            { return w.inner.Lipschitz() }
func (w domainSwap) StrongConvexity() float64      { return w.inner.StrongConvexity() }

func TestDomainLinearMinimizers(t *testing.T) {
	ball, _ := convex.NewL2Ball(2, 2)
	s := ball.MinimizeLinear([]float64{3, 4})
	// −R·dir/‖dir‖ = (−1.2, −1.6).
	if math.Abs(s[0]+1.2) > 1e-12 || math.Abs(s[1]+1.6) > 1e-12 {
		t.Errorf("ball LMO = %v", s)
	}
	if got := ball.MinimizeLinear([]float64{0, 0}); got[0] != 0 || got[1] != 0 {
		t.Errorf("ball LMO at 0 = %v", got)
	}
	box, _ := convex.NewBox(2, -1, 3)
	s = box.MinimizeLinear([]float64{1, -1})
	if s[0] != -1 || s[1] != 3 {
		t.Errorf("box LMO = %v", s)
	}
	iv, _ := convex.NewInterval(0, 1)
	if got := iv.MinimizeLinear([]float64{2})[0]; got != 0 {
		t.Errorf("interval LMO = %v", got)
	}
	if got := iv.MinimizeLinear([]float64{-2})[0]; got != 1 {
		t.Errorf("interval LMO = %v", got)
	}
}
