package optimize

import (
	"math"
	"testing"

	"repro/internal/convex"
	"repro/internal/histogram"
	"repro/internal/sample"
	"repro/internal/universe"
	"repro/internal/vecmath"
)

func grid(t *testing.T) *universe.LabeledGrid {
	t.Helper()
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMinimizeSquaredAgainstProbes(t *testing.T) {
	g := grid(t)
	ball, _ := convex.NewL2Ball(2, 1)
	sq, _ := convex.NewSquared("sq", ball, []float64{0, 0, 1}, 1, 1)
	h := histogram.Uniform(g)
	res, err := Minimize(sq, h, Options{MaxIters: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if !ball.Contains(res.Theta, 1e-9) {
		t.Fatal("minimizer outside domain")
	}
	src := sample.New(1)
	for i := 0; i < 500; i++ {
		probe := ball.Project(src.GaussianVec(2, 1))
		if pv := convex.ValueOn(sq, probe, h); pv < res.Value-1e-4 {
			t.Fatalf("probe %v beats solver: %v < %v", probe, pv, res.Value)
		}
	}
}

func TestMinimizeStronglyConvexFast(t *testing.T) {
	g := grid(t)
	ball, _ := convex.NewL2Ball(2, 1)
	sq, _ := convex.NewSquared("sq", ball, []float64{0, 0, 1}, 1, 1)
	rg, _ := convex.NewRegularized(sq, 1.0)
	h := histogram.Uniform(g)
	res, err := Minimize(rg, h, Options{MaxIters: 800})
	if err != nil {
		t.Fatal(err)
	}
	// Strongly convex objective: verify first-order optimality via small
	// gradient at an interior optimum, or projection stationarity.
	grad := convex.GradOn(nil, rg, nil, res.Theta, h)
	moved := vecmath.Dist2(ball.Project(vecmath.AddScaled(vecmath.Copy(res.Theta), -0.1, grad)), res.Theta)
	if moved > 1e-3 {
		t.Errorf("stationarity violated: projected step moves %v", moved)
	}
}

func TestMinimizeLinearQueryClosedForm(t *testing.T) {
	g := grid(t)
	lq, _ := convex.NewLinearQuery("q", func(x []float64) float64 {
		if x[1] > 0 {
			return 1
		}
		return 0
	})
	h := histogram.Uniform(g)
	res, err := Minimize(lq, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 0 || !res.Converged {
		t.Errorf("closed form not used: iters=%d", res.Iters)
	}
	if math.Abs(res.Theta[0]-1.0/3) > 1e-9 {
		t.Errorf("answer = %v, want 1/3", res.Theta[0])
	}
}

func TestMinimizeLinearFormMatchesClosedForm(t *testing.T) {
	g := grid(t)
	ball, _ := convex.NewL2Ball(2, 1)
	lf, _ := convex.NewLinearForm("lf", ball, []float64{0.8, 0.6, 0}, math.Sqrt2)
	src := sample.New(2)
	// Random non-uniform histogram.
	p := make([]float64, g.Size())
	var z float64
	for i := range p {
		p[i] = src.Exponential(1)
		z += p[i]
	}
	for i := range p {
		p[i] /= z
	}
	h, err := histogram.FromProbs(g, p)
	if err != nil {
		t.Fatal(err)
	}
	exact := lf.ExactMinimize(h)
	res, err := Minimize(lf, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if vecmath.Dist2(exact, res.Theta) > 1e-9 {
		t.Errorf("fast path disagreement: %v vs %v", exact, res.Theta)
	}
	// Cross-check against the generic iterative path by wrapping the loss
	// to hide the ExactSolvable interface.
	wrapped := hideExact{lf}
	res2, err := Minimize(wrapped, h, Options{MaxIters: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if convex.ValueOn(lf, res2.Theta, h) > convex.ValueOn(lf, exact, h)+1e-3 {
		t.Errorf("iterative path much worse than closed form: %v vs %v",
			convex.ValueOn(lf, res2.Theta, h), convex.ValueOn(lf, exact, h))
	}
}

// hideExact wraps a loss, deliberately dropping its ExactSolvable
// implementation so tests can exercise the generic solver path.
type hideExact struct{ inner convex.Loss }

func (w hideExact) Name() string                  { return w.inner.Name() }
func (w hideExact) Domain() convex.Domain         { return w.inner.Domain() }
func (w hideExact) Value(th, x []float64) float64 { return w.inner.Value(th, x) }
func (w hideExact) Grad(g, th, x []float64)       { w.inner.Grad(g, th, x) }
func (w hideExact) Lipschitz() float64            { return w.inner.Lipschitz() }
func (w hideExact) StrongConvexity() float64      { return w.inner.StrongConvexity() }

func TestMinimizeInitValidation(t *testing.T) {
	g := grid(t)
	ball, _ := convex.NewL2Ball(2, 1)
	sq, _ := convex.NewSquared("sq", ball, []float64{0, 0, 1}, 1, 1)
	h := histogram.Uniform(g)
	if _, err := Minimize(sq, h, Options{Init: []float64{1, 2, 3}}); err == nil {
		t.Error("wrong-dim init accepted")
	}
	// Out-of-domain init gets projected, not rejected.
	res, err := Minimize(sq, h, Options{Init: []float64{10, 10}, MaxIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !ball.Contains(res.Theta, 1e-9) {
		t.Error("result escaped domain")
	}
}

func TestExcess(t *testing.T) {
	g := grid(t)
	lq, _ := convex.NewLinearQuery("q", func(x []float64) float64 {
		if x[0] > 0 {
			return 1
		}
		return 0
	})
	h := histogram.Uniform(g)
	// At the exact answer the excess is 0.
	e, err := Excess(lq, []float64{1.0 / 3}, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e > 1e-9 {
		t.Errorf("excess at optimum = %v", e)
	}
	// Away from it, excess = (1/2)(θ−q̄)² offset... verify against direct
	// computation.
	theta := []float64{0.9}
	want := convex.ValueOn(lq, theta, h) - convex.ValueOn(lq, []float64{1.0 / 3}, h)
	e, err = Excess(lq, theta, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-want) > 1e-9 {
		t.Errorf("excess = %v, want %v", e, want)
	}
	// Excess is never negative.
	if e < 0 {
		t.Error("negative excess")
	}
}

func TestMinimizeConvergesFlag(t *testing.T) {
	g := grid(t)
	ball, _ := convex.NewL2Ball(2, 1)
	sq, _ := convex.NewSquared("sq", ball, []float64{0, 0, 1}, 1, 1)
	rg, _ := convex.NewRegularized(sq, 2.0)
	h := histogram.Uniform(g)
	res, err := Minimize(rg, h, Options{MaxIters: 5000, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Log("strongly convex solve did not trigger Tol (acceptable but unexpected)")
	}
	if res.Iters == 0 {
		t.Error("no iterations recorded")
	}
}
