package optimize

import (
	"fmt"

	"repro/internal/convex"
	"repro/internal/histogram"
	"repro/internal/vecmath"
)

// FrankWolfe approximately solves argmin_θ ℓ(θ; h) with the projection-free
// conditional-gradient method: each step calls the domain's linear
// minimization oracle instead of a Euclidean projection,
//
//	s_t = argmin_{s∈Θ} ⟨∇ℓ(θ_t; h), s⟩,    θ_{t+1} = (1−γ_t)·θ_t + γ_t·s_t
//
// with the classic γ_t = 2/(t+2) schedule. It is an alternative public
// solver for the θ̂t computation of Figure 3 — useful when the domain has a
// cheap vertex oracle — and a cross-check for the projected-gradient path
// (their outputs must agree; see the tests).
func FrankWolfe(l convex.Loss, h *histogram.Histogram, opts Options) (Result, error) {
	opts = opts.withDefaults()
	dom := l.Domain()
	lmo, ok := dom.(convex.LinearMinimizer)
	if !ok {
		return Result{}, fmt.Errorf("optimize: domain %s has no linear minimization oracle", dom)
	}
	d := dom.Dim()
	theta := opts.Init
	if theta == nil {
		theta = dom.Center()
	} else {
		if len(theta) != d {
			return Result{}, fmt.Errorf("optimize: init dim %d != domain dim %d", len(theta), d)
		}
		theta = dom.Project(theta)
	}
	grad := make([]float64, d)
	best := vecmath.Copy(theta)
	bestVal := convex.EvalOn(opts.Engine, l, theta, h)
	converged := false
	iters := 0
	for t := 0; t < opts.MaxIters; t++ {
		iters = t + 1
		convex.GradOn(opts.Engine, l, grad, theta, h)
		s := lmo.MinimizeLinear(grad)
		// Duality gap ⟨∇, θ − s⟩ certifies optimality; stop when tiny.
		gap := vecmath.Dot(grad, vecmath.Sub(theta, s))
		if gap < opts.Tol {
			converged = true
			break
		}
		gamma := 2 / float64(t+2)
		for i := range theta {
			theta[i] = (1-gamma)*theta[i] + gamma*s[i]
		}
		if v := convex.EvalOn(opts.Engine, l, theta, h); v < bestVal {
			bestVal = v
			copy(best, theta)
		}
	}
	return Result{Theta: best, Value: bestVal, Iters: iters, Converged: converged}, nil
}
