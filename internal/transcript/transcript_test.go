package transcript

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/sample"
	"repro/internal/universe"
	"repro/internal/workload"
)

func TestAppendAndStats(t *testing.T) {
	tr := New(map[string]float64{"eps": 1})
	tr.Append(Event{Query: "a", Top: true, EpsSpent: 0.1, DeltaSpent: 1e-8})
	tr.Append(Event{Query: "b"})
	tr.Append(Event{Query: "c", Top: true, EpsSpent: 0.1, DeltaSpent: 1e-8})
	if tr.Events[0].Index != 1 || tr.Events[2].Index != 3 {
		t.Errorf("indices = %d, %d", tr.Events[0].Index, tr.Events[2].Index)
	}
	if tr.Tops() != 2 {
		t.Errorf("Tops = %d", tr.Tops())
	}
	eps, delta := tr.SpentOracle()
	if math.Abs(eps-0.2) > 1e-12 || math.Abs(delta-2e-8) > 1e-20 {
		t.Errorf("spend = %v, %v", eps, delta)
	}
	if New(nil).Meta == nil {
		t.Error("nil meta not defaulted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := New(map[string]float64{"eps": 1, "alpha": 0.1})
	tr.Append(Event{Query: "q1", Answer: []float64{0.25}, Top: true, EpsSpent: 0.05})
	tr.Append(Event{Query: "q2", Answer: []float64{0.75}})
	tr.HaltedEarly = true
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta["alpha"] != 0.1 || len(got.Events) != 2 || !got.HaltedEarly {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Events[0].Query != "q1" || got.Events[0].Answer[0] != 0.25 || !got.Events[0].Top {
		t.Fatalf("event mangled: %+v", got.Events[0])
	}
	if _, err := ReadJSON(bytes.NewBufferString("{broken")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestRecorderTranscribesServer(t *testing.T) {
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	src := sample.New(1)
	pop, err := dataset.Skewed(g, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.SampleFrom(src, pop, 80000)
	srv, err := core.New(core.Config{
		Eps: 1, Delta: 1e-6, Alpha: 0.03, Beta: 0.05,
		K: 50, S: 1, Oracle: erm.LaplaceLinear{}, TBudget: 10,
	}, data, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(srv)
	qs, err := workload.Halfspaces(src.Split(), g, 50)
	if err != nil {
		t.Fatal(err)
	}
	var answered int
	for _, q := range qs {
		if _, err := rec.Answer(q); err != nil {
			break
		}
		answered++
	}
	tr := rec.T
	if len(tr.Events) != answered {
		t.Fatalf("%d events for %d answers", len(tr.Events), answered)
	}
	if tr.Tops() != srv.Updates() {
		t.Errorf("transcript tops %d != server updates %d", tr.Tops(), srv.Updates())
	}
	// Per-event spend equals ε₀ for tops, 0 otherwise.
	p := srv.Params()
	for _, e := range tr.Events {
		if e.Top && e.EpsSpent != p.Eps0 {
			t.Errorf("top event spend = %v, want %v", e.EpsSpent, p.Eps0)
		}
		if !e.Top && e.EpsSpent != 0 {
			t.Errorf("bottom event spent %v", e.EpsSpent)
		}
	}
	// Metadata mirrors the derived parameters.
	if tr.Meta["T"] != float64(p.T) || tr.Meta["eps0"] != p.Eps0 {
		t.Error("metadata wrong")
	}
	// The transcript round-trips.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tops() != tr.Tops() {
		t.Error("round-trip changed tops")
	}
}

func TestRecorderRecordsHalt(t *testing.T) {
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	src := sample.New(2)
	pop, err := dataset.Skewed(g, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.SampleFrom(src, pop, 80000)
	srv, err := core.New(core.Config{
		Eps: 1, Delta: 1e-6, Alpha: 0.01, Beta: 0.05,
		K: 100, S: 1, Oracle: erm.LaplaceLinear{}, TBudget: 1,
	}, data, src.Split())
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(srv)
	qs, err := workload.Halfspaces(src.Split(), g, 100)
	if err != nil {
		t.Fatal(err)
	}
	halted := false
	for _, q := range qs {
		if _, err := rec.Answer(q); err == core.ErrHalted {
			halted = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !halted {
		t.Skip("no halt on this seed")
	}
	if !rec.T.HaltedEarly {
		t.Error("halt not transcribed")
	}
}
