// Package transcript records the analyst/mechanism interaction of the
// accuracy game (paper Figure 1) as a serializable audit artifact: which
// queries were asked, what was answered, which queries crossed the sparse
// vector threshold (and therefore spent oracle budget), and the cumulative
// privacy spend. Transcripts serialize to JSON for offline inspection and
// regression comparison.
//
// Recording is pure observation: a Recorder wraps a core.Server behind the
// same Answer interface the games use, so experiments can be transcribed
// without touching the mechanism.
package transcript

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/convex"
	"repro/internal/core"
)

// Event is one query/answer exchange.
type Event struct {
	// Index is the 1-based position in the interaction.
	Index int `json:"index"`
	// Query is the loss function's name.
	Query string `json:"query"`
	// Answer is the released parameter vector.
	Answer []float64 `json:"answer"`
	// Top reports whether the query triggered an oracle call and MW
	// update (spending budget) rather than being answered from the public
	// hypothesis.
	Top bool `json:"top"`
	// EpsSpent and DeltaSpent are this event's incremental budget cost
	// (zero for ⊥ answers — the sparse-vector budget is accounted up
	// front, not per query).
	EpsSpent   float64 `json:"eps_spent"`
	DeltaSpent float64 `json:"delta_spent"`
	// RhoSpent is the event's zCDP cost when the oracle certifies one
	// (Gaussian-noise oracles); zero otherwise.
	RhoSpent float64 `json:"rho_spent,omitempty"`
	// CumEps and CumDelta are the mechanism's composed privacy bound after
	// this event under the session's accountant — the audit trail of
	// cumulative spend, not a per-event increment.
	CumEps   float64 `json:"cum_eps"`
	CumDelta float64 `json:"cum_delta"`
	// CacheKey is the query's canonical spec key (convex.CanonicalKey)
	// when the exchange was driven from a serialized Spec. It lets an
	// answer cache be rebuilt from the transcript alone: re-releasing a
	// recorded answer for the same canonical query is pure post-processing
	// and spends nothing. Empty for exchanges recorded from bare Loss
	// values (the experiment games).
	CacheKey string `json:"cache_key,omitempty"`
}

// Transcript is a complete recorded interaction.
type Transcript struct {
	// Accountant records the accounting mode the run composed spends
	// under ("basic", "advanced", "zcdp").
	Accountant string `json:"accountant,omitempty"`
	// Meta carries run-level parameters (ε, δ, α, K, …).
	Meta map[string]float64 `json:"meta"`
	// Events are the exchanges in order.
	Events []Event `json:"events"`
	// HaltedEarly reports whether the mechanism stopped before the
	// analyst did.
	HaltedEarly bool `json:"halted_early"`
}

// New returns an empty transcript with the given metadata.
func New(meta map[string]float64) *Transcript {
	if meta == nil {
		meta = map[string]float64{}
	}
	return &Transcript{Meta: meta}
}

// Append records one event, assigning its index.
func (t *Transcript) Append(e Event) {
	e.Index = len(t.Events) + 1
	t.Events = append(t.Events, e)
}

// Tops returns the number of budget-spending exchanges.
func (t *Transcript) Tops() int {
	var n int
	for _, e := range t.Events {
		if e.Top {
			n++
		}
	}
	return n
}

// SpentOracle returns the cumulative oracle budget recorded (basic
// composition over the per-event spends; the mechanism's own accounting
// uses strong composition and is tighter).
func (t *Transcript) SpentOracle() (eps, delta float64) {
	for _, e := range t.Events {
		eps += e.EpsSpent
		delta += e.DeltaSpent
	}
	return eps, delta
}

// WriteJSON serializes the transcript.
func (t *Transcript) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON deserializes a transcript.
func ReadJSON(r io.Reader) (*Transcript, error) {
	var t Transcript
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("transcript: decode: %w", err)
	}
	return &t, nil
}

// Recorder wraps a core.Server, transcribing every exchange. It satisfies
// the same Answer contract the accuracy games consume.
type Recorder struct {
	Srv *core.Server
	T   *Transcript
}

// NewRecorder builds a recorder around srv with metadata taken from the
// server's derived parameters.
func NewRecorder(srv *core.Server) *Recorder {
	p := srv.Params()
	t := New(map[string]float64{
		"T":           float64(p.T),
		"eta":         p.Eta,
		"eps0":        p.Eps0,
		"delta0":      p.Delta0,
		"alpha0":      p.Alpha0,
		"sensitivity": p.Sensitivity,
	})
	t.Accountant = srv.AccountantName()
	return &Recorder{Srv: srv, T: t}
}

// Answer forwards to the server and records the exchange. A halt is
// recorded on the transcript and returned unchanged.
func (r *Recorder) Answer(l convex.Loss) ([]float64, error) {
	return r.AnswerKeyed(l, "")
}

// AnswerKeyed records like Answer and stamps the event with the query's
// canonical cache key (convex.CanonicalKey of the spec that named l), so
// answer caches can be rebuilt from the transcript after a restore. An
// empty key records a plain event.
func (r *Recorder) AnswerKeyed(l convex.Loss, cacheKey string) ([]float64, error) {
	before := r.Srv.Updates()
	theta, err := r.Srv.Answer(l)
	if err != nil {
		if err == core.ErrHalted {
			r.T.HaltedEarly = true
		}
		return nil, err
	}
	top := r.Srv.Updates() > before
	ev := Event{Query: l.Name(), Answer: append([]float64(nil), theta...), Top: top, CacheKey: cacheKey}
	if top {
		cost := r.Srv.CallCost()
		ev.EpsSpent = cost.Eps
		ev.DeltaSpent = cost.Delta
		ev.RhoSpent = cost.Rho
	}
	priv := r.Srv.Privacy()
	ev.CumEps, ev.CumDelta = priv.Eps, priv.Delta
	r.T.Append(ev)
	return theta, nil
}
