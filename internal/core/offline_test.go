package core

import (
	"math"
	"testing"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/optimize"
	"repro/internal/sample"
	"repro/internal/universe"
)

// pointIndicator is the linear query "is the record exactly universe
// element idx".
func pointIndicator(t *testing.T, g *universe.LabeledGrid, idx int) convex.Loss {
	t.Helper()
	target := g.Point(idx)
	lq, err := convex.NewLinearQuery("indicator", func(x []float64) float64 {
		for i := range target {
			if math.Abs(x[i]-target[i]) > 1e-9 {
				return 0
			}
		}
		return 1
	})
	if err != nil {
		t.Fatal(err)
	}
	return lq
}

func validOfflineConfig() OfflineConfig {
	return OfflineConfig{
		Eps: 1, Delta: 1e-6,
		Rounds: 8,
		S:      1,
		Oracle: erm.LaplaceLinear{},
	}
}

func TestOfflineValidation(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 1000, 1)
	src := sample.New(1)
	pool := linearPool(t, g, 3, 2)
	mutations := []func(*OfflineConfig){
		func(c *OfflineConfig) { c.Eps = 0 },
		func(c *OfflineConfig) { c.Delta = 0 },
		func(c *OfflineConfig) { c.Rounds = 0 },
		func(c *OfflineConfig) { c.S = 0 },
		func(c *OfflineConfig) { c.Oracle = nil },
	}
	for i, m := range mutations {
		cfg := validOfflineConfig()
		m(&cfg)
		if _, err := AnswerOffline(cfg, data, src, pool); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := AnswerOffline(validOfflineConfig(), data, src, nil); err == nil {
		t.Error("empty query set accepted")
	}
	cfg := validOfflineConfig()
	cfg.S = 0.1
	if _, err := AnswerOffline(cfg, data, src, pool); err == nil {
		t.Error("oversized queries accepted")
	}
}

func TestOfflineEndToEnd(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 60000, 3)
	pool := linearPool(t, g, 30, 4)
	cfg := validOfflineConfig()
	cfg.Rounds = 10
	res, err := AnswerOffline(cfg, data, sample.New(5), pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != len(pool) {
		t.Fatalf("answers = %d, want %d", len(res.Answers), len(pool))
	}
	if len(res.Selected) != cfg.Rounds {
		t.Fatalf("selected = %d, want %d", len(res.Selected), cfg.Rounds)
	}
	for _, idx := range res.Selected {
		if idx < 0 || idx >= len(pool) {
			t.Fatalf("selected index %d out of range", idx)
		}
	}
	if err := res.Hypothesis.Validate(); err != nil {
		t.Fatalf("hypothesis invalid: %v", err)
	}
	d := data.Histogram()
	var maxErr float64
	for i, l := range pool {
		e, err := optimize.Excess(l, res.Answers[i], d, optimize.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.2 {
		t.Errorf("offline max excess = %v", maxErr)
	}
}

// The offline selector must prefer high-error queries: a pool with one
// drastically misanswered query (under the uniform prior) should see that
// query selected in the first round most of the time.
func TestOfflineSelectsWorstQuery(t *testing.T) {
	g := testGrid(t)
	// Point-mass dataset: query "is x == that point" has uniform-prior
	// answer 1/|X| but true answer 1 — maximal error.
	pm, err := dataset.PointMass(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := sample.New(6)
	data := dataset.SampleFrom(src, pm, 50000)
	pool := linearPool(t, g, 10, 7)
	// Append the point-mass indicator query as index 10.
	pool = append(pool, pointIndicator(t, g, 0))
	cfg := validOfflineConfig()
	cfg.Rounds = 1
	var hits int
	trials := 10
	for i := 0; i < trials; i++ {
		res, err := AnswerOffline(cfg, data, sample.New(int64(100+i)), pool)
		if err != nil {
			t.Fatal(err)
		}
		if res.Selected[0] == 10 {
			hits++
		}
	}
	if hits < trials/2 {
		t.Errorf("worst query selected only %d/%d times", hits, trials)
	}
}
