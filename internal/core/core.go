// Package core implements the paper's primary contribution: Online Private
// Multiplicative Weights for convex-minimization queries (Figure 3 of
// Ullman, "Private Multiplicative Weights Beyond Linear Queries", PODS
// 2015).
//
// The Server answers an adaptively chosen online sequence of CM queries
// ℓ¹, …, ℓᵏ on a private dataset D under (ε, δ)-differential privacy. It
// maintains a public hypothesis histogram D̂t (starting uniform) and, per
// query ℓ:
//
//  1. computes the sensitive value q(D) = err_ℓ(D, D̂t) — how badly the
//     hypothesis's minimizer performs on the true data — and feeds it to
//     the online sparse vector algorithm (internal/sparse);
//
//  2. on ⊥ ("hypothesis already accurate"), answers with the public
//     minimizer argmin_θ ℓ(θ; D̂t), spending no further privacy budget;
//
//  3. on ⊤, asks the single-query oracle A′ (internal/erm) for a private
//     approximate minimizer θt, answers with it, and performs one
//     multiplicative-weights update with the dual-certificate vector
//
//     u_t(x) = ⟨θt − θ̂t, ∇ℓ_x(θ̂t)⟩,    θ̂t = argmin_θ ℓ(θ; D̂t),
//
//     the paper's key novelty (Claim 3.5): first-order optimality converts
//     "D̂t answers the CM query badly" into a linear query on which D̂t is
//     also inaccurate, so the standard MW regret argument (Lemma 3.4) caps
//     the number of updates at T = 64·S²·log|X|/α².
//
// Privacy (Theorem 3.9): SV gets (ε/2, δ/2); the ≤ T oracle calls get
// (ε/2, δ/2) via the strong-composition schedule of Theorem 3.10. Accuracy
// (Theorem 3.8): every query is answered with excess risk ≤ α provided n
// exceeds both the oracle's requirement and the sparse-vector bound.
//
// Composition is pluggable: Config.Accountant selects a mech.Accountant
// (the DRV10 default reproduces Theorem 3.9's accounting exactly; "zcdp"
// composes Gaussian-noise oracle spends in ρ and certifies a strictly
// larger update horizon T from the same budget). The per-oracle-call noise
// level always follows Theorem 3.10's schedule at the *requested* horizon,
// so ⊤-answer accuracy is independent of the accounting in force; an
// extended horizon does run the sparse vector over more epochs, whose
// threshold noise grows ~√T within its fixed (ε/2, δ/2) slice — the same
// trade a larger TBudget makes, surfaced here by the accountant instead of
// the operator.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/histogram"
	"repro/internal/mech"
	"repro/internal/mw"
	"repro/internal/optimize"
	"repro/internal/sample"
	"repro/internal/sparse"
	"repro/internal/universe"
	"repro/internal/vecmath"
	"repro/internal/xeval"
)

// Config parameterizes the online PMW server.
type Config struct {
	// Eps, Delta is the total privacy budget of the whole interaction.
	Eps, Delta float64
	// Alpha is the target excess-risk accuracy; Beta the failure
	// probability (Beta is used only for parameter bookkeeping).
	Alpha, Beta float64
	// K is the maximum number of queries the analyst may ask.
	K int
	// S is the scale parameter of the loss family:
	// max |⟨θ−θ′, ∇ℓ_x(θ)⟩| ≤ S for every ℓ in the family. Use
	// convex.ScaleBound on a representative loss.
	S float64
	// Oracle is the single-query algorithm A′.
	Oracle erm.Oracle
	// TBudget overrides the paper's worst-case update horizon
	// T = 64·S²·log|X|/α² when positive. The paper's constant is safe but
	// astronomically conservative; practical deployments (HLM12's MWEM
	// experiments) run with far smaller T, which increases η and the
	// per-call budget ε₀ while keeping the composition-based privacy
	// accounting exactly valid. Worst-case accuracy guarantees then hold
	// only for the overridden horizon.
	TBudget int
	// SolverIters bounds the public argmin solves (default 400).
	SolverIters int
	// Workers sets the xeval worker count for every universe-sized
	// computation the server performs (public argmin solves, the err_ℓ
	// query value, the Claim-3.5 certificate, MW materialization).
	// 0 selects runtime.NumCPU(); negative values are rejected with
	// ErrInvalidWorkers. The answers released are bit-identical for every
	// worker count (xeval's reductions are deterministic), so this knob
	// never touches the privacy analysis.
	Workers int
	// Accountant names the privacy-accounting strategy from the
	// internal/mech registry ("basic", "advanced", "zcdp"; empty selects
	// "advanced", the DRV10 strong composition the paper's Theorem 3.9
	// uses). The accountant owns the whole interaction budget: the
	// sparse-vector slice is reserved through it, the oracle-call horizon
	// is however many calls at Figure 3's per-call noise level it
	// certifies, and every ⊤ spend is recorded with the tightest cost the
	// oracle declares (Gaussian oracles report zCDP ρ). Unknown names are
	// rejected with a mech.ErrUnknownAccountant-wrapped error (HTTP 400).
	Accountant string
	// AccountantParams optionally carries accountant-specific JSON
	// parameters (e.g. {"delta_prime": …} for "advanced").
	AccountantParams json.RawMessage
	// Engine selects the evaluation engine: "dense" enumerates the whole
	// universe (the default, always correct, rejected with a typed
	// universe-too-large error past 2^22 elements), "factored" exploits
	// product structure to answer junta-supported losses without ever
	// materializing X (requires a universe.Factored universe and losses
	// with declared support), and "auto" picks dense when the universe fits
	// and factored otherwise. Empty means "dense".
	Engine string
	// Trace enables per-update diagnostics (costs extra computation and
	// reads the private data for *reporting only*; leave off outside
	// experiments). Trace requires the dense engine: the diagnostics
	// compare full histograms.
	Trace bool
}

// Engine names accepted by Config.Engine.
const (
	EngineDense    = "dense"
	EngineFactored = "factored"
	EngineAuto     = "auto"
)

// ErrUnknownEngine is returned (wrapped) by New for an unrecognized
// Config.Engine. The HTTP layer maps it to 400.
var ErrUnknownEngine = errors.New("core: unknown engine (want dense, factored, or auto)")

// ErrNeedsFactored is returned (wrapped) by New when the factored engine
// is requested over a universe without product structure.
var ErrNeedsFactored = errors.New("core: factored engine requires a product-structured universe")

// ErrNeedsSupport is returned (wrapped) by Answer when the factored engine
// receives a loss without a declared coordinate support.
var ErrNeedsSupport = errors.New("core: factored engine requires a loss with declared coordinate support")

// validate rejects malformed configurations.
func (c Config) validate() error {
	if err := (mech.Params{Eps: c.Eps, Delta: c.Delta}).Validate(); err != nil {
		return err
	}
	if c.Delta == 0 {
		return fmt.Errorf("core: the algorithm requires delta > 0 (Theorem 3.8)")
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("core: alpha %v must be in (0, 1]", c.Alpha)
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		return fmt.Errorf("core: beta %v must be in (0, 1)", c.Beta)
	}
	if c.K < 1 {
		return fmt.Errorf("core: K %d must be ≥ 1", c.K)
	}
	if c.S <= 0 {
		return fmt.Errorf("core: scale S %v must be positive", c.S)
	}
	if c.Oracle == nil {
		return fmt.Errorf("core: nil oracle")
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: workers %d: %w", c.Workers, ErrInvalidWorkers)
	}
	switch c.Engine {
	case "", EngineDense, EngineFactored, EngineAuto:
	default:
		return fmt.Errorf("%w: %q", ErrUnknownEngine, c.Engine)
	}
	return nil
}

// resolveEngine maps Config.Engine to the engine actually run over u.
// The dense engine is the only place the universe is enumerated end to end,
// so it carries the size guard: past universe.DenseLimit it is rejected
// with a typed universe-too-large error instead of attempting the
// allocation.
func resolveEngine(name string, u universe.Universe) (string, error) {
	factored := func() (string, error) {
		if _, ok := u.(universe.Factored); !ok {
			return "", fmt.Errorf("%w (universe %s)", ErrNeedsFactored, u.String())
		}
		return EngineFactored, nil
	}
	switch name {
	case "", EngineDense:
		if err := universe.EnsureDense(u); err != nil {
			return "", fmt.Errorf("core: dense engine: %w", err)
		}
		return EngineDense, nil
	case EngineFactored:
		return factored()
	default: // EngineAuto; validate() rejected everything else
		if universe.EnsureDense(u) == nil {
			return EngineDense, nil
		}
		return factored()
	}
}

// ErrInvalidWorkers is returned (wrapped) by New for a negative
// Config.Workers. The HTTP layer maps it to 400.
var ErrInvalidWorkers = errors.New("core: workers must be ≥ 0 (0 = all CPUs)")

// Params are the derived algorithm parameters of Figure 3.
type Params struct {
	// T is the update budget 64·S²·log|X|/α².
	T int
	// Eta is the MW learning rate.
	Eta float64
	// Eps0, Delta0 is the per-oracle-call budget.
	Eps0, Delta0 float64
	// Alpha0 = α/4 is the oracle accuracy target; Beta0 = β/(2T) its
	// failure probability.
	Alpha0, Beta0 float64
	// Sensitivity is the sparse-vector query sensitivity 3S/n.
	Sensitivity float64
}

// UpdateTrace records one MW update, for the Figure-3 internals experiment.
// All fields except QueryIndex/UpdateIndex read the private data and exist
// purely for diagnostics.
type UpdateTrace struct {
	QueryIndex  int     // j: which analyst query triggered the update
	UpdateIndex int     // t: 1-based update counter
	TrueErr     float64 // err_ℓ(D, D̂t) before the update
	Progress    float64 // ⟨u_t, D̂t − D⟩ (Claim 3.6 says > α/4 whp)
	Potential   float64 // KL(D ‖ D̂t) before the update
}

// ErrHalted is returned by Answer once the server has stopped (sparse
// vector exhausted its T tops or saw K queries).
var ErrHalted = errors.New("core: server has halted")

// Server is one interactive run of online PMW for CM queries. Not safe for
// concurrent use: the analyst protocol is inherently sequential.
type Server struct {
	cfg    Config
	params Params
	engine string // resolved engine name: EngineDense or EngineFactored
	data   *dataset.Dataset
	hist   *histogram.Histogram // private histogram of data (dense engine only)
	src    *sample.Source
	sv     *sparse.SV
	state  *mw.State         // dense engine
	fu     universe.Factored // factored engine: the product universe
	fstate *mw.FactoredState // factored engine
	eng    *xeval.Engine
	acct   mech.Accountant
	// callCost is the oracle's declared cost of one (ε₀, δ₀) call — what
	// each ⊤ answer spends on the accountant.
	callCost mech.Cost

	answered int
	traces   []UpdateTrace
}

// New constructs a server for the given private dataset.
func New(cfg Config, data *dataset.Dataset, src *sample.Source) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if data == nil || data.N() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if src == nil {
		return nil, fmt.Errorf("core: nil random source")
	}
	engine, err := resolveEngine(cfg.Engine, data.U)
	if err != nil {
		return nil, err
	}
	if engine == EngineFactored && cfg.Trace {
		return nil, fmt.Errorf("core: Trace requires the dense engine (diagnostics compare full histograms)")
	}
	xsize := data.U.Size()
	// The MW regret bound caps useful updates at 64·S²·log|X|/α²; the
	// requested horizon is that bound or the practical TBudget override.
	tMW := mw.UpdateBudget(cfg.S, cfg.Alpha, xsize)
	tReq := tMW
	if cfg.TBudget > 0 {
		tReq = cfg.TBudget
	}
	// The accountant owns the whole (ε, δ) interaction budget; the sparse
	// vector's (ε/2, δ/2) slice (Theorem 3.9) is reserved through it and
	// composed linearly with the oracle calls.
	acct, err := mech.NewAccountant(cfg.Accountant, mech.Params{Eps: cfg.Eps, Delta: cfg.Delta}, cfg.AccountantParams)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := acct.Reserve(mech.Params{Eps: cfg.Eps / 2, Delta: cfg.Delta / 2}); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Per-oracle-call noise contract: the paper's Theorem-3.10 schedule at
	// the requested horizon. This fixes each answer's noise level (hence
	// per-answer accuracy) independent of the accounting in force.
	eps0, delta0, err := mech.SplitBudget(cfg.Eps/2, cfg.Delta/2, tReq)
	if err != nil {
		return nil, err
	}
	// The update horizon is however many calls of the oracle's declared
	// per-call cost the accountant certifies within the oracle slice:
	// exactly tReq for "advanced" (the schedule inverts its own MaxCalls),
	// strictly more under "zcdp" with Gaussian-noise oracles, and fewer
	// when the accounting is loose for this regime. Extensions beyond the
	// request are capped at the MW regret bound and the query cap K —
	// updates past either can never be spent.
	callCost := erm.CostOf(cfg.Oracle, eps0, delta0)
	T, err := acct.MaxCalls(callCost)
	if err != nil {
		return nil, fmt.Errorf("core: accountant %q: %w", acct.Name(), err)
	}
	if T > tReq {
		if T > tMW {
			T = tMW
		}
		if T > cfg.K {
			T = cfg.K
		}
		if T < tReq {
			T = tReq
		}
	}
	eta := mw.Eta(cfg.S, T, xsize)
	p := Params{
		T:           T,
		Eta:         eta,
		Eps0:        eps0,
		Delta0:      delta0,
		Alpha0:      cfg.Alpha / 4,
		Beta0:       cfg.Beta / (2 * float64(T)),
		Sensitivity: 3 * cfg.S / float64(data.N()),
	}
	sv, err := sparse.New(svConfig(cfg, p), src.Split())
	if err != nil {
		return nil, err
	}
	// validate() rejected negatives; xeval.New maps 0 to runtime.NumCPU().
	eng := xeval.New(cfg.Workers)
	srv := &Server{
		cfg:      cfg,
		params:   p,
		engine:   engine,
		data:     data,
		src:      src,
		sv:       sv,
		eng:      eng,
		acct:     acct,
		callCost: callCost,
	}
	if engine == EngineFactored {
		fu := data.U.(universe.Factored) // resolveEngine checked the assertion
		fstate, err := mw.NewFactored(fu, eta, cfg.S)
		if err != nil {
			return nil, err
		}
		srv.fu, srv.fstate = fu, fstate
	} else {
		state, err := mw.New(data.U, eta, cfg.S)
		if err != nil {
			return nil, err
		}
		state.SetEngine(eng)
		srv.state = state
		srv.hist = data.Histogram()
	}
	return srv, nil
}

// svConfig is the sparse-vector configuration Figure 3 derives from the
// server configuration: the (ε/2, δ/2) slice over the certified horizon.
// Restore re-derives it through the same function, so a restored SV runs
// under exactly the parameters the original did.
func svConfig(cfg Config, p Params) sparse.Config {
	return sparse.Config{
		T:           p.T,
		K:           cfg.K,
		Alpha:       cfg.Alpha,
		Eps:         cfg.Eps / 2,
		Delta:       cfg.Delta / 2,
		Sensitivity: p.Sensitivity,
	}
}

// Engine returns the server's universe-expectation engine.
func (s *Server) Engine() *xeval.Engine { return s.eng }

// EngineName returns the resolved evaluation engine in force: EngineDense
// or EngineFactored ("auto" and "" resolve at construction).
func (s *Server) EngineName() string { return s.engine }

// Params returns the derived Figure-3 parameters.
func (s *Server) Params() Params { return s.params }

// Halted reports whether the server has stopped answering.
func (s *Server) Halted() bool { return s.sv.Halted() }

// Updates returns the number of MW updates performed so far (t−1 in the
// paper's indexing).
func (s *Server) Updates() int {
	if s.fstate != nil {
		return s.fstate.Updates()
	}
	return s.state.Updates()
}

// Answered returns the number of queries answered so far.
func (s *Server) Answered() int { return s.answered }

// Hypothesis returns the current public hypothesis D̂t. Per the paper's
// §4.3 remark, this doubles as a differentially private synthetic dataset:
// it is a post-processing of the mechanism's private interactions. Under
// the factored engine the full histogram cannot be materialized (the
// universe exceeds the dense limit) and Hypothesis returns nil; use
// SupportHypothesis for marginals or SyntheticRows for a row-level release.
func (s *Server) Hypothesis() *histogram.Histogram {
	if s.fstate != nil {
		return nil
	}
	return s.state.Histogram().Clone()
}

// SupportHypothesis returns the hypothesis's exact marginal distribution
// over the sub-cube spanned by the given coordinates — the factored
// engine's public view of D̂t, computed without enumerating the universe.
// Only available under the factored engine.
func (s *Server) SupportHypothesis(coords []int) (*histogram.Histogram, error) {
	if s.fstate == nil {
		return nil, fmt.Errorf("core: SupportHypothesis requires the factored engine (use Hypothesis)")
	}
	return s.fstate.SupportHistogram(coords)
}

// FactoredFootprint reports the factored hypothesis's materialized junta
// components and total table cells — the memory the representation pays
// for, independent of |X|. Zeros under the dense engine.
func (s *Server) FactoredFootprint() (groups, cells int) {
	if s.fstate == nil {
		return 0, 0
	}
	return s.fstate.Components()
}

// SyntheticRows samples m records from the current hypothesis — a
// row-level synthetic dataset release (§4.3: "our algorithm indeed can be
// modified to output a synthetic dataset"). The sampling is pure
// post-processing of the private hypothesis, so it carries no additional
// privacy cost.
func (s *Server) SyntheticRows(src *sample.Source, m int) (*dataset.Dataset, error) {
	if m < 1 {
		return nil, fmt.Errorf("core: synthetic size %d must be ≥ 1", m)
	}
	if src == nil {
		return nil, fmt.Errorf("core: nil random source")
	}
	if s.fstate != nil {
		return dataset.New(s.data.U, s.fstate.SampleRows(src, m))
	}
	rows := s.state.Histogram().SampleRows(src, m)
	return dataset.New(s.data.U, rows)
}

// Traces returns the per-update diagnostics collected so far (empty unless
// Config.Trace).
func (s *Server) Traces() []UpdateTrace { return s.traces }

// Privacy returns the server's total (ε, δ) guarantee under the session's
// accountant: the reserved SV slice plus the composed bound over the
// oracle calls actually made.
func (s *Server) Privacy() mech.Params { return s.acct.Total() }

// Remaining returns the unspent budget under the accountant's calculus,
// clamped at zero componentwise.
func (s *Server) Remaining() mech.Params { return s.acct.Remaining() }

// AccountantName returns the accounting mode in force.
func (s *Server) AccountantName() string { return s.acct.Name() }

// CallCost returns the oracle's declared per-call cost — what one more ⊤
// answer spends (Gaussian oracles certify a zCDP ρ alongside (ε₀, δ₀)).
func (s *Server) CallCost() mech.Cost { return s.callCost }

// publicMin solves argmin_θ ℓ(θ; D̂t) on the public hypothesis.
func (s *Server) publicMin(l convex.Loss) ([]float64, error) {
	iters := s.cfg.SolverIters
	if iters <= 0 {
		iters = 400
	}
	res, err := optimize.Minimize(l, s.state.Histogram(), optimize.Options{MaxIters: iters, Engine: s.eng})
	if err != nil {
		return nil, err
	}
	return res.Theta, nil
}

// privateErr computes the sensitive SV query value
// q(D) = err_ℓ(D, D̂t) = ℓ_D(θ̂t) − min_θ ℓ_D(θ), given θ̂t.
func (s *Server) privateErr(l convex.Loss, thetaHat []float64) (float64, error) {
	iters := s.cfg.SolverIters
	if iters <= 0 {
		iters = 400
	}
	minD, err := optimize.MinValue(l, s.hist, optimize.Options{MaxIters: iters, Engine: s.eng})
	if err != nil {
		return 0, err
	}
	e := convex.EvalOn(s.eng, l, thetaHat, s.hist) - minD
	if e < 0 {
		e = 0
	}
	return e, nil
}

// Answer processes the analyst's next loss function and returns the
// private answer θ̂ʲ. It returns ErrHalted once the server has stopped.
func (s *Server) Answer(l convex.Loss) ([]float64, error) {
	if s.Halted() {
		return nil, ErrHalted
	}
	if got := convex.ScaleBound(l); got > s.cfg.S+1e-9 {
		return nil, fmt.Errorf("core: query scale bound %v exceeds configured S = %v", got, s.cfg.S)
	}
	if s.engine == EngineFactored {
		return s.answerFactored(l)
	}

	// θ̂t: public minimizer on the current hypothesis.
	thetaHat, err := s.publicMin(l)
	if err != nil {
		return nil, err
	}
	// Sensitive query value for SV.
	qval, err := s.privateErr(l, thetaHat)
	if err != nil {
		return nil, err
	}
	top, err := s.sv.Query(qval)
	if err != nil {
		if err == sparse.ErrHalted {
			return nil, ErrHalted
		}
		return nil, err
	}
	s.answered++
	if !top {
		return thetaHat, nil
	}

	// ⊤: private single-query solve, then MW update.
	theta, err := s.cfg.Oracle.Answer(s.src, l, s.data, s.params.Eps0, s.params.Delta0)
	if err != nil {
		return nil, fmt.Errorf("core: oracle %q failed: %w", s.cfg.Oracle.Name(), err)
	}
	if err := s.acct.Spend(s.callCost); err != nil {
		// Unreachable for validated costs (callCost is fixed at New and
		// checked there via MaxCalls); if it ever fires, fail loudly — the
		// ledger and the released interaction have desynchronized.
		return nil, fmt.Errorf("core: recording oracle spend: %w", err)
	}
	// Defensive post-processing: an oracle returning a point outside Θ
	// would break the scale bound on the MW update vector (|u_t| ≤ S needs
	// θt, θ̂t ∈ Θ). Projection is free — it is post-processing of an
	// already-private answer.
	if dom := l.Domain(); len(theta) != dom.Dim() {
		return nil, fmt.Errorf("core: oracle %q returned dimension %d, want %d",
			s.cfg.Oracle.Name(), len(theta), dom.Dim())
	} else if !dom.Contains(theta, 1e-9) {
		theta = dom.Project(theta)
	}

	if err := s.update(l, theta, thetaHat, qval); err != nil {
		return nil, err
	}
	return theta, nil
}

// answerFactored is the factored engine's Answer: the same Figure-3
// protocol, run entirely on the loss's declared support sub-cube. A loss
// supported on coordinates C takes identical values on the embedded
// sub-universe (universe.SupportUniverse pins non-support coordinates, the
// loss never reads them), so the dense minimization and evaluation
// machinery runs unchanged over |C|-many coordinates instead of |X|
// elements — the released answers follow the exact definitions of the
// dense path.
func (s *Server) answerFactored(l convex.Loss) ([]float64, error) {
	coords, ok := convex.SupportOf(l)
	if !ok {
		return nil, fmt.Errorf("%w: loss %q declares none", ErrNeedsSupport, l.Name())
	}
	subU, err := universe.SupportUniverse(s.fu, coords)
	if err != nil {
		return nil, fmt.Errorf("core: factored engine: %w", err)
	}
	iters := s.cfg.SolverIters
	if iters <= 0 {
		iters = 400
	}
	opts := optimize.Options{MaxIters: iters, Engine: s.eng}

	// θ̂t: public minimizer on the hypothesis's support marginal. The
	// marginal weights E[x ∈ cell] match the dense hypothesis exactly
	// (product form is exact under junta updates), so this is the same
	// argmin the dense path solves.
	hyp, err := s.fstate.SupportHistogram(coords)
	if err != nil {
		return nil, err
	}
	hyp.U = subU // one materialization of the sub-cube for the whole answer
	res, err := optimize.Minimize(l, hyp, opts)
	if err != nil {
		return nil, err
	}
	thetaHat := res.Theta

	// Sensitive query value for SV, on the data's support marginal:
	// ℓ_D(θ) = Σ_cell P_D(cell)·ℓ_cell(θ) because the loss reads only the
	// support coordinates, so err_ℓ(D, D̂t) is unchanged from its dense
	// definition.
	dataHist, err := s.supportData(coords, subU)
	if err != nil {
		return nil, err
	}
	minD, err := optimize.MinValue(l, dataHist, opts)
	if err != nil {
		return nil, err
	}
	qval := convex.EvalOn(s.eng, l, thetaHat, dataHist) - minD
	if qval < 0 {
		qval = 0
	}
	top, err := s.sv.Query(qval)
	if err != nil {
		if err == sparse.ErrHalted {
			return nil, ErrHalted
		}
		return nil, err
	}
	s.answered++
	if !top {
		return thetaHat, nil
	}

	// ⊤: private single-query solve, then the MW update on the support.
	theta, err := s.cfg.Oracle.Answer(s.src, l, s.data, s.params.Eps0, s.params.Delta0)
	if err != nil {
		return nil, fmt.Errorf("core: oracle %q failed: %w", s.cfg.Oracle.Name(), err)
	}
	if err := s.acct.Spend(s.callCost); err != nil {
		return nil, fmt.Errorf("core: recording oracle spend: %w", err)
	}
	if dom := l.Domain(); len(theta) != dom.Dim() {
		return nil, fmt.Errorf("core: oracle %q returned dimension %d, want %d",
			s.cfg.Oracle.Name(), len(theta), dom.Dim())
	} else if !dom.Contains(theta, 1e-9) {
		theta = dom.Project(theta)
	}

	// Claim-3.5 certificate over the sub-cube, in the SupportIndex layout
	// FactoredState.Update expects (SupportUniverse enumerates the same
	// order).
	uvec := make([]float64, subU.Size())
	convex.DirGradOn(s.eng, l, uvec, vecmath.Sub(theta, thetaHat), thetaHat, subU)
	s.eng.ForEach(subU.Size(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := uvec[i]
			if v > s.cfg.S && v <= s.cfg.S*(1+1e-12) {
				uvec[i] = s.cfg.S
			} else if v < -s.cfg.S && v >= -s.cfg.S*(1+1e-12) {
				uvec[i] = -s.cfg.S
			}
		}
	})
	if err := s.fstate.Update(coords, uvec); err != nil {
		return nil, fmt.Errorf("core: factored MW update: %w", err)
	}
	return theta, nil
}

// supportData returns the private dataset's exact marginal histogram over
// the support sub-cube: each row contributes to the cell its support
// coordinates project to. O(n·dim), never enumerating the universe.
func (s *Server) supportData(coords []int, subU universe.Universe) (*histogram.Histogram, error) {
	counts := make([]int, subU.Size())
	buf := make([]int, s.fu.Dim())
	for _, r := range s.data.Rows {
		counts[universe.ProjectIndex(s.fu, coords, r, buf)]++
	}
	return histogram.FromCounts(subU, counts)
}

// update applies the dual-certificate MW step of Figure 3. The certificate
// u_t(x) = ⟨θt − θ̂t, ∇ℓ_x(θ̂t)⟩ is computed chunk-parallel on the server's
// engine via the loss's DirGradBatch kernel.
func (s *Server) update(l convex.Loss, theta, thetaHat []float64, qval float64) error {
	u := s.data.U
	dir := vecmath.Sub(theta, thetaHat)
	uvec := make([]float64, u.Size())
	convex.DirGradOn(s.eng, l, uvec, dir, thetaHat, u)
	s.eng.ForEach(u.Size(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := uvec[i]
			// Clamp tiny overshoot of the certified scale bound; anything
			// larger is a real contract violation that mw.Update will
			// reject.
			if v > s.cfg.S && v <= s.cfg.S*(1+1e-12) {
				uvec[i] = s.cfg.S
			} else if v < -s.cfg.S && v >= -s.cfg.S*(1+1e-12) {
				uvec[i] = -s.cfg.S
			}
		}
	})

	if s.cfg.Trace {
		prog := vecmath.Dot(uvec, vecmath.Sub(s.state.Histogram().P, s.hist.P))
		s.traces = append(s.traces, UpdateTrace{
			QueryIndex:  s.answered,
			UpdateIndex: s.state.Updates() + 1,
			TrueErr:     qval,
			Progress:    prog,
			Potential:   clampKL(s.state.Potential(s.hist)),
		})
	}
	return s.state.Update(uvec)
}

// clampKL guards +Inf potentials (empty hypothesis support) for traces.
func clampKL(v float64) float64 {
	if math.IsInf(v, 1) {
		return math.MaxFloat64
	}
	return v
}

// MinDatasetSize returns Theorem 3.8's sample-size requirement
// n ≥ 4096·S²·√(log|X|·log(4/δ))·log(8k/β) / (ε·α²), excluding the
// oracle's own n′ requirement (which depends on the oracle).
func MinDatasetSize(cfg Config, universeSize int) int {
	n := 4096 * cfg.S * cfg.S *
		math.Sqrt(math.Log(float64(universeSize))*math.Log(4/cfg.Delta)) *
		math.Log(8*float64(cfg.K)/cfg.Beta) /
		(cfg.Eps * cfg.Alpha * cfg.Alpha)
	return int(n) + 1
}
