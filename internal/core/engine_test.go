package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/sample"
	"repro/internal/universe"
)

// Engine tests: the factored engine must agree with dense to 1e-12 on every
// registry loss kind that declares a support, stay bit-deterministic across
// worker counts, survive snapshot/restore, and handle d = 30 universes the
// dense engine rejects.

// hypercubeData builds a deterministic dataset of n rows over the ±1/√d
// product hypercube.
func hypercubeData(t *testing.T, d, n int, seed int64) (*universe.Product, *dataset.Dataset) {
	t.Helper()
	f, err := universe.NewProductHypercube(d)
	if err != nil {
		t.Fatal(err)
	}
	src := sample.New(seed)
	rows := make([]int, n)
	for i := range rows {
		rows[i] = src.Intn(f.Size())
	}
	data, err := dataset.New(f, rows)
	if err != nil {
		t.Fatal(err)
	}
	return f, data
}

// supportedSpecs covers every registry loss kind with a declared coordinate
// support (halfspace, marginal, parity, positive), several instances each.
func supportedSpecs(t *testing.T, d int) []convex.Spec {
	t.Helper()
	raw := func(v any) json.RawMessage {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	w := make([]float64, d)
	w[1], w[4] = 0.8, -0.6
	return []convex.Spec{
		{Kind: "marginal", Params: raw(map[string]any{"coords": []int{0, 2}})},
		{Kind: "marginal", Params: raw(map[string]any{"coords": []int{1, 3, 5}, "signs": []int{1, -1, 1}})},
		{Kind: "parity", Params: raw(map[string]any{"coords": []int{0, 1}})},
		{Kind: "parity", Params: raw(map[string]any{"coords": []int{2, 4, 6}})},
		{Kind: "positive", Params: raw(map[string]any{"coord": 3})},
		{Kind: "positive", Params: raw(map[string]any{"coord": d - 1})},
		{Kind: "halfspace", Params: raw(map[string]any{"w": w, "threshold": 0.05})},
	}
}

func engineConfig(engine string, workers int) Config {
	return Config{
		Eps: 1, Delta: 1e-6,
		Alpha: 0.05, Beta: 0.05,
		K: 40, S: 1,
		Oracle:  erm.LaplaceLinear{},
		TBudget: 10,
		Workers: workers,
		Engine:  engine,
	}
}

// runEngine answers every spec on a fresh server and returns the answers
// (nil entry when the server halted first).
func runEngine(t *testing.T, engine string, workers int, seed int64) ([][]float64, *Server) {
	t.Helper()
	f, data := hypercubeData(t, 10, 400, 11)
	srv, err := New(engineConfig(engine, workers), data, sample.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	var answers [][]float64
	for _, spec := range supportedSpecs(t, f.Dim()) {
		l, err := convex.Build(f, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		ans, err := srv.Answer(l)
		if err == ErrHalted {
			answers = append(answers, nil)
			continue
		}
		if err != nil {
			t.Fatalf("%s (%s): %v", spec.Kind, engine, err)
		}
		answers = append(answers, ans)
	}
	return answers, srv
}

// TestCrossEngineEquivalence pins the factored engine to the dense engine
// at 1e-12 on every supported registry kind: same dataset, same seed, same
// query sequence.
func TestCrossEngineEquivalence(t *testing.T) {
	dense, dsrv := runEngine(t, EngineDense, 0, 7)
	fact, fsrv := runEngine(t, EngineFactored, 0, 7)
	if len(dense) != len(fact) {
		t.Fatalf("answer counts differ: %d vs %d", len(dense), len(fact))
	}
	for i := range dense {
		if (dense[i] == nil) != (fact[i] == nil) {
			t.Fatalf("query %d: halting behavior diverged (dense %v, factored %v)", i, dense[i], fact[i])
		}
		for j := range dense[i] {
			if math.Abs(dense[i][j]-fact[i][j]) > 1e-12 {
				t.Fatalf("query %d[%d]: dense %v factored %v", i, j, dense[i][j], fact[i][j])
			}
		}
	}
	if dsrv.Updates() != fsrv.Updates() {
		t.Fatalf("update counts diverged: dense %d factored %d", dsrv.Updates(), fsrv.Updates())
	}
	if fsrv.Updates() == 0 {
		t.Fatal("fixture exercised no MW updates — the equivalence check is vacuous")
	}
	if dsrv.EngineName() != EngineDense || fsrv.EngineName() != EngineFactored {
		t.Fatalf("engine names: %q, %q", dsrv.EngineName(), fsrv.EngineName())
	}
}

// TestEngineBitDeterminism requires byte-identical answers for any worker
// count, per engine — the factored path inherits xeval's determinism
// contract.
func TestEngineBitDeterminism(t *testing.T) {
	for _, engine := range []string{EngineDense, EngineFactored} {
		base, _ := runEngine(t, engine, 1, 13)
		for _, workers := range []int{2, 7} {
			got, _ := runEngine(t, engine, workers, 13)
			if len(got) != len(base) {
				t.Fatalf("%s workers=%d: answer count %d != %d", engine, workers, len(got), len(base))
			}
			for i := range base {
				for j := range base[i] {
					if math.Float64bits(base[i][j]) != math.Float64bits(got[i][j]) {
						t.Fatalf("%s workers=%d query %d[%d]: %v != %v",
							engine, workers, i, j, got[i][j], base[i][j])
					}
				}
			}
		}
	}
}

// TestFactoredSnapshotRoundTrip interrupts a factored interaction mid-way,
// serializes the snapshot through JSON, restores, and requires the restored
// server to continue bit-identically to the uninterrupted one.
func TestFactoredSnapshotRoundTrip(t *testing.T) {
	f, data := hypercubeData(t, 10, 400, 11)
	cfg := engineConfig(EngineFactored, 0)
	specs := supportedSpecs(t, f.Dim())
	cont, err := New(cfg, data, sample.New(23))
	if err != nil {
		t.Fatal(err)
	}
	half := len(specs) / 2
	for _, spec := range specs[:half] {
		l, err := convex.Build(f, spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cont.Answer(l); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := json.Marshal(cont.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.MWF == nil {
		t.Fatal("factored snapshot lost its MWF state through JSON")
	}
	rest, err := Restore(cfg, data, &snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs[half:] {
		l, err := convex.Build(f, spec)
		if err != nil {
			t.Fatal(err)
		}
		a, errA := cont.Answer(l)
		b, errB := rest.Answer(l)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: errors diverged: %v vs %v", spec.Kind, errA, errB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: answers diverged: %v vs %v", spec.Kind, a, b)
		}
	}
	if !reflect.DeepEqual(cont.Snapshot(), rest.Snapshot()) {
		t.Fatal("final snapshots diverged")
	}

	// A factored snapshot cannot be grafted onto a dense configuration.
	if _, err := Restore(engineConfig(EngineDense, 0), data, &snap); err == nil {
		t.Fatal("factored snapshot accepted by dense configuration")
	}
}

// TestEngineResolution covers the Config.Engine contract: auto selection,
// typed rejections, and the dense size guard.
func TestEngineResolution(t *testing.T) {
	_, small := hypercubeData(t, 10, 50, 3)
	f30, err := universe.NewProductHypercube(30)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]int, 50)
	src := sample.New(4)
	for i := range rows {
		rows[i] = src.Intn(f30.Size())
	}
	large, err := dataset.New(f30, rows)
	if err != nil {
		t.Fatal(err)
	}

	// auto: dense while the universe fits, factored past the limit.
	srv, err := New(engineConfig(EngineAuto, 0), small, sample.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if srv.EngineName() != EngineDense {
		t.Fatalf("auto on 2^10: engine %q", srv.EngineName())
	}
	srv, err = New(engineConfig(EngineAuto, 0), large, sample.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if srv.EngineName() != EngineFactored {
		t.Fatalf("auto on 2^30: engine %q", srv.EngineName())
	}

	// dense at d = 30: typed universe-too-large rejection, not an OOM.
	if _, err := New(engineConfig(EngineDense, 0), large, sample.New(1)); !errors.Is(err, universe.ErrTooLarge) {
		t.Fatalf("dense on 2^30: %v", err)
	}

	// Unknown engine name.
	if _, err := New(engineConfig("sparse", 0), small, sample.New(1)); !errors.Is(err, ErrUnknownEngine) {
		t.Fatalf("unknown engine: %v", err)
	}

	// Factored over a universe without product structure.
	pts, err := universe.NewPoints([][]float64{{0, 0}, {1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	pdata, err := dataset.New(pts, []int{0, 1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(engineConfig(EngineFactored, 0), pdata, sample.New(1)); !errors.Is(err, ErrNeedsFactored) {
		t.Fatalf("factored on explicit points: %v", err)
	}

	// Trace needs the dense engine.
	cfg := engineConfig(EngineFactored, 0)
	cfg.Trace = true
	if _, err := New(cfg, small, sample.New(1)); err == nil {
		t.Fatal("Trace accepted under the factored engine")
	}

	// A loss without declared support is rejected with the typed error.
	fsrv, err := New(engineConfig(EngineFactored, 0), small, sample.New(1))
	if err != nil {
		t.Fatal(err)
	}
	q, err := convex.NewLinearQuery("opaque", func(x []float64) float64 {
		if x[0] > 0 {
			return 1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fsrv.Answer(q); !errors.Is(err, ErrNeedsSupport) {
		t.Fatalf("unsupported loss: %v", err)
	}
}

// TestFactoredLargeDInteraction runs the whole protocol at d = 30 — far
// past dense materialization — and checks the release surfaces.
func TestFactoredLargeDInteraction(t *testing.T) {
	f, data := hypercubeData(t, 30, 500, 9)
	srv, err := New(engineConfig(EngineFactored, 0), data, sample.New(17))
	if err != nil {
		t.Fatal(err)
	}
	raw := func(v any) json.RawMessage {
		b, _ := json.Marshal(v)
		return b
	}
	for i := 0; i < 8; i++ {
		spec := convex.Spec{Kind: "marginal", Params: raw(map[string]any{"coords": []int{i, i + 10, i + 20}})}
		l, err := convex.Build(f, spec)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := srv.Answer(l)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(ans) != 1 || ans[0] < 0 || ans[0] > 1 {
			t.Fatalf("query %d: answer %v outside [0, 1]", i, ans)
		}
	}
	if h := srv.Hypothesis(); h != nil {
		t.Fatal("Hypothesis materialized a 2^30 universe")
	}
	marg, err := srv.SupportHypothesis([]int{0, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	var mass float64
	for _, p := range marg.P {
		mass += p
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Fatalf("support marginal mass %v", mass)
	}
	groups, cells := srv.FactoredFootprint()
	if groups == 0 || cells == 0 || cells > mw30FootprintCap {
		t.Fatalf("factored footprint: %d groups, %d cells", groups, cells)
	}
	synth, err := srv.SyntheticRows(sample.New(5), 200)
	if err != nil {
		t.Fatal(err)
	}
	if synth.N() != 200 {
		t.Fatalf("synthetic rows: %d", synth.N())
	}
	for j, r := range synth.Rows {
		if r < 0 || r >= f.Size() {
			t.Fatalf("synthetic row %d = %d outside the universe", j, r)
		}
	}
}

// mw30FootprintCap bounds the d = 30 interaction's materialized cells: the
// memory must track the query supports, not the 2^30 universe.
const mw30FootprintCap = 1 << 12

// ExampleServer_EngineName documents auto resolution.
func ExampleServer_EngineName() {
	f, _ := universe.NewProductHypercube(30)
	src := sample.New(1)
	rows := make([]int, 100)
	for i := range rows {
		rows[i] = src.Intn(f.Size())
	}
	data, _ := dataset.New(f, rows)
	srv, _ := New(Config{
		Eps: 1, Delta: 1e-6, Alpha: 0.05, Beta: 0.05,
		K: 10, S: 1, Oracle: erm.LaplaceLinear{}, TBudget: 5,
		Engine: EngineAuto,
	}, data, sample.New(2))
	fmt.Println(srv.EngineName())
	// Output: factored
}
