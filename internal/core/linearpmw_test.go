package core

import (
	"math"
	"testing"

	"repro/internal/convex"
	"repro/internal/erm"
	"repro/internal/sample"
	"repro/internal/universe"
	"repro/internal/vecmath"
)

// linearQueryPool builds k typed linear queries (not wrapped in the Loss
// interface) for the HR10 path.
func linearQueryPool(t *testing.T, g *universe.LabeledGrid, k int, seed int64) []*convex.LinearQuery {
	t.Helper()
	src := sample.New(seed)
	out := make([]*convex.LinearQuery, 0, k)
	for i := 0; i < k; i++ {
		w := src.UnitVec(g.Dim())
		thresh := (src.Float64() - 0.5) * 0.5
		lq, err := convex.NewLinearQuery("lin", func(x []float64) float64 {
			var s float64
			for j := range w {
				s += w[j] * x[j]
			}
			if s >= thresh {
				return 1
			}
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, lq)
	}
	return out
}

func TestLinearPMWValidation(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 1000, 1)
	src := sample.New(1)
	bad := []LinearPMWConfig{
		{Eps: 0, Delta: 1e-6, Alpha: 0.1, K: 10},
		{Eps: 1, Delta: 0, Alpha: 0.1, K: 10},
		{Eps: 1, Delta: 1e-6, Alpha: 0, K: 10},
		{Eps: 1, Delta: 1e-6, Alpha: 2, K: 10},
		{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 0},
	}
	for i, cfg := range bad {
		if _, err := NewLinearPMW(cfg, data, src); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	good := LinearPMWConfig{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 10}
	if _, err := NewLinearPMW(good, data, src); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if _, err := NewLinearPMW(good, nil, src); err == nil {
		t.Error("nil data accepted")
	}
	if _, err := NewLinearPMW(good, data, nil); err == nil {
		t.Error("nil source accepted")
	}
}

// End-to-end HR10: every released answer is within α of the truth (in
// answer units) at sufficient n.
func TestLinearPMWEndToEnd(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 200000, 2)
	// TBudget ≥ K: each query triggers at most one update, so the server
	// cannot run out of tops; η is then small enough for steady progress.
	cfg := LinearPMWConfig{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 100, TBudget: 120}
	srv, err := NewLinearPMW(cfg, data, sample.New(3))
	if err != nil {
		t.Fatal(err)
	}
	pool := linearQueryPool(t, g, 100, 4)
	d := data.Histogram()
	var worst float64
	for _, q := range pool {
		ans, err := srv.Answer(q)
		if err != nil {
			t.Fatalf("halted after %d: %v", srv.Answered(), err)
		}
		truth := q.ExactMinimize(d)[0]
		if e := math.Abs(ans - truth); e > worst {
			worst = e
		}
	}
	if worst > cfg.Alpha {
		t.Errorf("worst answer error %v > α = %v", worst, cfg.Alpha)
	}
	if srv.Updates() > 120 {
		t.Errorf("updates %d exceed budget", srv.Updates())
	}
	if err := srv.Hypothesis().Validate(); err != nil {
		t.Fatal(err)
	}
}

// The CM generalization with the LaplaceLinear oracle must match the HR10
// specialization's behaviour on the same workload (comparable worst error).
func TestLinearPMWMatchesCMGeneralization(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 200000, 5)
	d := data.Histogram()
	k := 80
	pool := linearQueryPool(t, g, k, 6)

	hr, err := NewLinearPMW(LinearPMWConfig{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: k, TBudget: 100}, data, sample.New(7))
	if err != nil {
		t.Fatal(err)
	}
	var hrWorst float64
	for _, q := range pool {
		ans, err := hr.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(ans - q.ExactMinimize(d)[0]); e > hrWorst {
			hrWorst = e
		}
	}

	// Matching excess-risk target: answer error a corresponds to excess
	// a²/2 for the quadratic embedding.
	cm, err := New(Config{
		Eps: 1, Delta: 1e-6, Alpha: 0.1 * 0.1 / 2, Beta: 0.05,
		K: k, S: 1, Oracle: erm.LaplaceLinear{}, TBudget: 100,
	}, data, sample.New(8))
	if err != nil {
		t.Fatal(err)
	}
	var cmWorst float64
	for _, q := range pool {
		theta, err := cm.Answer(q)
		if err == ErrHalted {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(theta[0] - q.ExactMinimize(d)[0]); e > cmWorst {
			cmWorst = e
		}
	}
	// Same order of magnitude: neither mechanism more than 4× worse.
	if hrWorst > 4*cmWorst+0.02 && cmWorst > 0 {
		t.Errorf("HR10 (%v) far worse than CM generalization (%v)", hrWorst, cmWorst)
	}
	if cmWorst > 4*hrWorst+0.02 && hrWorst > 0 {
		t.Errorf("CM generalization (%v) far worse than HR10 (%v)", cmWorst, hrWorst)
	}
}

func TestLinearPMWHalts(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 200000, 9)
	cfg := LinearPMWConfig{Eps: 1, Delta: 1e-6, Alpha: 0.01, K: 100, TBudget: 2}
	srv, err := NewLinearPMW(cfg, data, sample.New(10))
	if err != nil {
		t.Fatal(err)
	}
	pool := linearQueryPool(t, g, 100, 11)
	halted := false
	for _, q := range pool {
		if _, err := srv.Answer(q); err == ErrHalted {
			halted = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !halted {
		t.Skip("budget survived on this seed")
	}
	if _, err := srv.Answer(pool[0]); err != ErrHalted {
		t.Errorf("err = %v, want ErrHalted", err)
	}
}

func TestMWEMValidation(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 1000, 12)
	src := sample.New(12)
	pool := linearQueryPool(t, g, 3, 13)
	if _, err := MWEM(MWEMConfig{Eps: 1, Rounds: 0}, data, src, pool); err == nil {
		t.Error("rounds=0 accepted")
	}
	if _, err := MWEM(MWEMConfig{Eps: 0, Rounds: 5}, data, src, pool); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := MWEM(MWEMConfig{Eps: 1, Rounds: 5}, data, src, nil); err == nil {
		t.Error("no queries accepted")
	}
	if _, err := MWEM(MWEMConfig{Eps: 1, Rounds: 5}, nil, src, pool); err == nil {
		t.Error("nil data accepted")
	}
}

// Classic MWEM end-to-end under PURE differential privacy (δ = 0).
func TestMWEMPureDPEndToEnd(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 100000, 14)
	pool := linearQueryPool(t, g, 40, 15)
	res, err := MWEM(MWEMConfig{Eps: 1, Delta: 0, Rounds: 10}, data, sample.New(16), pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != len(pool) || len(res.Selected) != 10 {
		t.Fatalf("result shape wrong: %d answers, %d selected", len(res.Answers), len(res.Selected))
	}
	if err := res.Hypothesis.Validate(); err != nil {
		t.Fatal(err)
	}
	d := data.Histogram()
	var worst float64
	for i, q := range pool {
		truth := q.ExactMinimize(d)[0]
		if e := math.Abs(res.Answers[i] - truth); e > worst {
			worst = e
		}
	}
	if worst > 0.12 {
		t.Errorf("MWEM worst answer error = %v", worst)
	}
	// The hypothesis must beat the uniform prior on the workload.
	uni := 0.0
	for _, q := range pool {
		var hypAns, uniAns, truth float64
		truth = q.ExactMinimize(d)[0]
		qv := make([]float64, g.Size())
		for j := range qv {
			qv[j] = q.Predicate(g.Point(j))
		}
		hypAns = vecmath.Dot(qv, res.Hypothesis.P)
		uniAns = vecmath.Mean(qv)
		if math.Abs(uniAns-truth) > uni {
			uni = math.Abs(uniAns - truth)
		}
		_ = hypAns
	}
	if worst >= uni && uni > 0.05 {
		t.Errorf("MWEM (%v) no better than uniform prior (%v)", worst, uni)
	}
}

// MWEM under approximate DP gets a bigger per-round budget and therefore at
// least comparable accuracy.
func TestMWEMApproxDPBudget(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 100000, 17)
	pool := linearQueryPool(t, g, 30, 18)
	res, err := MWEM(MWEMConfig{Eps: 1, Delta: 1e-6, Rounds: 10}, data, sample.New(19), pool)
	if err != nil {
		t.Fatal(err)
	}
	d := data.Histogram()
	var worst float64
	for i, q := range pool {
		if e := math.Abs(res.Answers[i] - q.ExactMinimize(d)[0]); e > worst {
			worst = e
		}
	}
	if worst > 0.12 {
		t.Errorf("approx-DP MWEM worst error = %v", worst)
	}
}
