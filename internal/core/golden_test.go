package core

import (
	"math"
	"testing"

	"repro/internal/erm"
	"repro/internal/sample"
)

// TestGoldenDefaultAccountant freezes the released values of a fixed-seed
// run captured on the pre-accountant implementation (which hardwired the
// DRV10 SplitBudget schedule into core.New). The default ("advanced")
// accountant must reproduce every released θ, the derived parameters, and
// the reported privacy bound bit-identically: accounting became pluggable
// without perturbing a single released byte.
func TestGoldenDefaultAccountant(t *testing.T) {
	wantAnswers := [][]float64{
		{math.Float64frombits(0xbfdc99980d01a5ec), math.Float64frombits(0xbfec741d3976a48d)},
		{math.Float64frombits(0x3fb14e9f42eb731d), math.Float64frombits(0xbfd2d4adbd0ab550)},
		{math.Float64frombits(0x3fe40c51a34c65ce), math.Float64frombits(0xbfe140102aa8de69)},
		{math.Float64frombits(0x3fea36cfcf59dde3), math.Float64frombits(0x3fe0d17efe95080e)},
		{math.Float64frombits(0xbfdcc3104ece4442), math.Float64frombits(0x3fec69296661976a)},
		{math.Float64frombits(0x3fe3cc01d28e5ae9), math.Float64frombits(0x3fe5ae59a7bd4c84)},
	}
	const (
		wantT      = 6
		wantEta    = 0x1.7b7843276136fp-02
		wantEps0   = 0x1.2f43be29e706ep-06
		wantDelta0 = 0x1.65e9f80f29211p-25
		wantPrivE  = 0x1.349b4b3b9d6a8p-01
		wantPrivD  = 0x1.a905d69200d74p-21
	)

	g := testGrid(t)
	data := skewedData(t, g, 60000, 1)
	cfg := Config{
		Eps: 1, Delta: 1e-6,
		Alpha: 0.05, Beta: 0.05,
		K: 8, S: 2,
		Oracle:  erm.NoisyGD{},
		TBudget: 6,
		// Accountant left empty: the default must be "advanced".
	}
	// Explicitly naming "advanced" must be indistinguishable from the
	// default; run both and require identical releases.
	for _, name := range []string{"", "advanced"} {
		cfg.Accountant = name
		srv, err := New(cfg, data, sample.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if got := srv.AccountantName(); got != "advanced" {
			t.Fatalf("accountant %q = %q, want advanced", name, got)
		}
		p := srv.Params()
		if p.T != wantT || p.Eta != wantEta || p.Eps0 != wantEps0 || p.Delta0 != wantDelta0 {
			t.Fatalf("params drifted: T=%d Eta=%x Eps0=%x Delta0=%x", p.T, p.Eta, p.Eps0, p.Delta0)
		}
		for i, l := range squaredPool(t, g, len(wantAnswers), 3) {
			theta, err := srv.Answer(l)
			if err != nil {
				t.Fatalf("answer %d: %v", i, err)
			}
			for j := range theta {
				if theta[j] != wantAnswers[i][j] {
					t.Errorf("accountant %q answer %d[%d] = %x, want %x", name, i, j, theta[j], wantAnswers[i][j])
				}
			}
		}
		priv := srv.Privacy()
		if priv.Eps != wantPrivE || priv.Delta != wantPrivD {
			t.Errorf("accountant %q privacy = (%x, %x), want (%x, %x)", name, priv.Eps, priv.Delta, wantPrivE, wantPrivD)
		}
		if srv.Updates() != 1 || srv.Answered() != len(wantAnswers) {
			t.Errorf("accountant %q updates=%d answered=%d", name, srv.Updates(), srv.Answered())
		}
	}
}
