package core

import (
	"encoding/json"
	"testing"

	"repro/internal/convex"
	"repro/internal/erm"
	"repro/internal/sample"
)

// snapCycle serializes a server's snapshot through JSON — the same codec
// the persistence layer uses — and restores it into a fresh server.
func snapCycle(t *testing.T, srv *Server, cfg Config) *Server {
	t.Helper()
	raw, err := json.Marshal(srv.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	data := srv.data
	back, err := Restore(cfg, data, &snap)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

// TestSnapshotRestoreBitIdentical is the golden invariant of the
// persistence layer, per accountant: a server snapshotted mid-stream (JSON
// round trip included) and restored answers the remaining query sequence
// bit-identically — same released vectors, same ⊥/⊤ pattern, same budget
// spend and remaining budget, same halt point — as the uninterrupted run.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 60000, 1)
	queries := append(squaredPool(t, g, 5, 3), linearPool(t, g, 5, 9)...)
	for _, acct := range []string{"basic", "advanced", "zcdp"} {
		for _, cut := range []int{1, 4, 7} {
			t.Run(acct, func(t *testing.T) {
				cfg := Config{
					Eps: 1, Delta: 1e-6,
					Alpha: 0.05, Beta: 0.05,
					K: len(queries), S: 2,
					Oracle:     erm.NoisyGD{},
					TBudget:    4,
					Accountant: acct,
				}
				ref, err := New(cfg, data, sample.New(7))
				if err != nil {
					t.Fatal(err)
				}
				cutSrv, err := New(cfg, data, sample.New(7))
				if err != nil {
					t.Fatal(err)
				}

				answer := func(srv *Server, l convex.Loss) ([]float64, error) {
					theta, err := srv.Answer(l)
					if err != nil && err != ErrHalted {
						t.Fatal(err)
					}
					return theta, err
				}
				for i := 0; i < cut; i++ {
					a, err1 := answer(ref, queries[i])
					b, err2 := answer(cutSrv, queries[i])
					if err1 != err2 {
						t.Fatalf("prefix %d: errors %v vs %v", i, err1, err2)
					}
					for j := range a {
						if a[j] != b[j] {
							t.Fatalf("prefix %d diverged before the snapshot", i)
						}
					}
				}

				restored := snapCycle(t, cutSrv, cfg)
				if restored.Params() != ref.Params() {
					t.Fatalf("restored params %+v != %+v", restored.Params(), ref.Params())
				}
				for i := cut; i < len(queries); i++ {
					a, err1 := answer(ref, queries[i])
					b, err2 := answer(restored, queries[i])
					if err1 != err2 {
						t.Fatalf("query %d after restore: errors %v vs %v", i, err1, err2)
					}
					if len(a) != len(b) {
						t.Fatalf("query %d after restore: lengths %d vs %d", i, len(a), len(b))
					}
					for j := range a {
						if a[j] != b[j] {
							t.Fatalf("query %d[%d] after restore: %x != %x", i, j, b[j], a[j])
						}
					}
				}
				if restored.Privacy() != ref.Privacy() {
					t.Errorf("privacy %+v != %+v", restored.Privacy(), ref.Privacy())
				}
				if restored.Remaining() != ref.Remaining() {
					t.Errorf("remaining %+v != %+v", restored.Remaining(), ref.Remaining())
				}
				if restored.Updates() != ref.Updates() || restored.Answered() != ref.Answered() || restored.Halted() != ref.Halted() {
					t.Errorf("counters %d/%d/%v != %d/%d/%v",
						restored.Updates(), restored.Answered(), restored.Halted(),
						ref.Updates(), ref.Answered(), ref.Halted())
				}
			})
		}
	}
}

// TestRestoreRejectsDrift checks a snapshot cannot be grafted onto a
// different configuration or dataset: the re-derived parameters differ and
// Restore refuses.
func TestRestoreRejectsDrift(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 60000, 1)
	cfg := Config{
		Eps: 1, Delta: 1e-6, Alpha: 0.05, Beta: 0.05,
		K: 6, S: 2, Oracle: erm.NoisyGD{}, TBudget: 4,
	}
	srv, err := New(cfg, data, sample.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range squaredPool(t, g, 2, 3) {
		if _, err := srv.Answer(l); err != nil {
			t.Fatal(err)
		}
	}
	snap := srv.Snapshot()

	if _, err := Restore(cfg, data, snap); err != nil {
		t.Fatalf("faithful restore rejected: %v", err)
	}
	bad := cfg
	bad.Eps = 2
	if _, err := Restore(bad, data, snap); err == nil {
		t.Error("budget drift accepted")
	}
	bad = cfg
	bad.TBudget = 8
	if _, err := Restore(bad, data, snap); err == nil {
		t.Error("horizon drift accepted")
	}
	bad = cfg
	bad.Accountant = "zcdp"
	if _, err := Restore(bad, data, snap); err == nil {
		t.Error("accountant drift accepted")
	}
	otherData := skewedData(t, g, 50000, 2)
	if _, err := Restore(cfg, otherData, snap); err == nil {
		t.Error("dataset-size drift accepted")
	}
	snap2 := *snap
	snap2.Answered = cfg.K + 1
	if _, err := Restore(cfg, data, &snap2); err == nil {
		t.Error("out-of-range answered accepted")
	}
	if _, err := Restore(cfg, data, nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}
