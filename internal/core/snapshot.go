package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/mech"
	"repro/internal/mw"
	"repro/internal/sample"
	"repro/internal/sparse"
)

// snapshot.go is the durability boundary of the mechanism: everything a
// Server accumulates during an interaction — and nothing it can re-derive —
// captured in one serializable value. The contract, pinned by golden tests,
// is bit-identity: a Server restored from a Snapshot answers every future
// query with exactly the bytes the uninterrupted Server would have
// released, spends exactly the same budget, and halts at the same point.
// That holds because each component snapshot is exact (log-space MW
// weights, the SV's pending noisy threshold, the accountant's streaming
// ledger) and because all randomness replays from recorded sample.State
// stream positions.
//
// A Snapshot deliberately excludes the configuration and the private
// dataset: both belong to the operator and are re-supplied at restore,
// which lets Restore *verify* them (re-deriving the Figure-3 parameters
// and comparing) instead of trusting a file to define the privacy budget.
// Diagnostic traces (Config.Trace) are also not part of the snapshot —
// they are experiment output, not mechanism state.

// Snapshot is the complete mutable state of a Server mid-interaction.
type Snapshot struct {
	// Params are the derived Figure-3 parameters at snapshot time, recorded
	// so Restore can detect configuration or dataset drift: a restore whose
	// re-derived parameters differ is refused.
	Params Params `json:"params"`
	// Answered is the query counter.
	Answered int `json:"answered"`
	// Src is the oracle-noise stream position.
	Src sample.State `json:"src"`
	// SV is the sparse-vector run (counters, pending threshold, its own
	// noise stream).
	SV sparse.Export `json:"sv"`
	// MW is the multiplicative-weights hypothesis (log-weight vector).
	// Dense engine only; zero-valued under the factored engine.
	MW mw.Export `json:"mw"`
	// MWF is the product-form hypothesis of the factored engine (per-junta
	// log-weight tables). Nil under the dense engine, so dense snapshots
	// serialize byte-identically to before the field existed.
	MWF *mw.FactoredExport `json:"mwf,omitempty"`
	// Accountant is the privacy ledger.
	Accountant mech.AccountantState `json:"accountant"`
}

// Snapshot captures the server's current state. The server is unaffected;
// the caller owns serialization (internal/persist wraps snapshots in
// versioned envelopes).
func (s *Server) Snapshot() *Snapshot {
	snap := &Snapshot{
		Params:     s.params,
		Answered:   s.answered,
		Src:        s.src.State(),
		SV:         s.sv.Export(),
		Accountant: s.acct.Export(),
	}
	if s.fstate != nil {
		ex := s.fstate.Export()
		snap.MWF = &ex
	} else {
		snap.MW = s.state.Export()
	}
	return snap
}

// Restore reconstructs a mid-interaction Server from cfg, the private
// dataset, and a snapshot. cfg and data must be the ones the original
// server was built from: Restore re-runs New's full derivation (parameter
// validation, accountant construction, horizon certification) and refuses
// the snapshot if the re-derived parameters differ from the recorded ones,
// so a changed budget, oracle, TBudget, or dataset universe cannot be
// silently grafted onto old state. The restored server continues the
// interaction bit-identically to the uninterrupted original.
func Restore(cfg Config, data *dataset.Dataset, snap *Snapshot) (*Server, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	// New performs every construction-time check and derivation; the
	// throwaway source (and the SV draw it feeds) is fully replaced by the
	// recorded stream states below.
	srv, err := New(cfg, data, sample.New(0))
	if err != nil {
		return nil, err
	}
	if srv.params != snap.Params {
		return nil, fmt.Errorf("core: snapshot parameters %+v do not match re-derived %+v (configuration or dataset drift)", snap.Params, srv.params)
	}
	if snap.Answered < 0 || snap.Answered > cfg.K {
		return nil, fmt.Errorf("core: snapshot answered %d outside [0, %d]", snap.Answered, cfg.K)
	}
	sv, err := sparse.FromExport(svConfig(cfg, srv.params), snap.SV)
	if err != nil {
		return nil, err
	}
	if srv.fstate != nil {
		// Factored engine: the snapshot must carry the product-form
		// hypothesis, and its parameters must match the re-derivation.
		if snap.MWF == nil {
			return nil, fmt.Errorf("core: snapshot has no factored MW state but the configuration resolves to the factored engine")
		}
		fst, err := mw.FactoredFromExport(srv.fu, *snap.MWF)
		if err != nil {
			return nil, err
		}
		if fst.Eta() != srv.params.Eta || fst.Scale() != cfg.S {
			return nil, fmt.Errorf("core: snapshot MW parameters (η=%v, S=%v) do not match derived (η=%v, S=%v)",
				fst.Eta(), fst.Scale(), srv.params.Eta, cfg.S)
		}
		srv.fstate = fst
	} else {
		if snap.MWF != nil {
			return nil, fmt.Errorf("core: snapshot carries factored MW state but the configuration resolves to the dense engine")
		}
		st, err := mw.FromExport(data.U, snap.MW)
		if err != nil {
			return nil, err
		}
		if st.Eta() != srv.params.Eta || st.Scale() != cfg.S {
			return nil, fmt.Errorf("core: snapshot MW parameters (η=%v, S=%v) do not match derived (η=%v, S=%v)",
				st.Eta(), st.Scale(), srv.params.Eta, cfg.S)
		}
		srv.state = st.SetEngine(srv.eng)
	}
	if err := srv.acct.Restore(snap.Accountant); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	src, err := sample.FromState(snap.Src)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	srv.src = src
	srv.sv = sv
	srv.answered = snap.Answered
	return srv, nil
}
