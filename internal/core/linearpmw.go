package core

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/histogram"
	"repro/internal/mech"
	"repro/internal/mw"
	"repro/internal/sample"
	"repro/internal/sparse"
	"repro/internal/vecmath"
	"repro/internal/xeval"
)

// LinearPMW is Hardt–Rothblum's original online private multiplicative
// weights mechanism for *linear* queries (FOCS 2010) — the algorithm the
// paper generalizes. It is included both as the natural specialization
// (experiments check that the CM generalization matches its behaviour on
// linear workloads) and as a direct, faster path for counting queries.
//
// Per query q : X → [0, 1]:
//
//  1. compute the hypothesis answer â = ⟨q, D̂t⟩ and the true answer
//     a = ⟨q, D⟩; feed the discrepancy |a − â| (sensitivity 1/n) to the
//     numeric sparse vector algorithm;
//  2. on ⊥, answer â (no privacy cost);
//  3. on ⊤, receive a fresh Laplace release ã of the true answer, answer
//     ã, and update the hypothesis multiplicatively: penalize records with
//     q(x) = 1 when â > ã and reward them when â < ã.
type LinearPMW struct {
	cfg   LinearPMWConfig
	data  *dataset.Dataset
	hist  *histogram.Histogram
	nsv   *sparse.NumericSV
	state *mw.State
	eng   *xeval.Engine
	acct  mech.Accountant

	answered int
}

// LinearPMWConfig parameterizes LinearPMW.
type LinearPMWConfig struct {
	// Eps, Delta is the total privacy budget.
	Eps, Delta float64
	// Alpha is the per-answer error target (in answer units, not excess
	// risk: |released − true| ≲ α).
	Alpha float64
	// K caps the number of queries.
	K int
	// TBudget overrides the update horizon (default: the paper's
	// 16·log|X|/α², the linear-query specialization of Figure 3's T with
	// S = 1 and the α/2 update threshold measured in answer units).
	TBudget int
	// Workers sets the xeval worker count (0 = all CPUs, negative
	// rejected; see core.Config.Workers).
	Workers int
	// Accountant names the accounting strategy tracking the run's spends
	// (see core.Config.Accountant). The HR10 mechanism is Laplace-based
	// (pure-DP spends), so "zcdp" converts via ρ = ε²/2 and offers no
	// advantage here; the NumericSV schedule fixes the released values for
	// every accountant.
	Accountant string
	// AccountantParams optionally carries accountant-specific JSON params.
	AccountantParams json.RawMessage
}

func (c LinearPMWConfig) validate() error {
	if err := (mech.Params{Eps: c.Eps, Delta: c.Delta}).Validate(); err != nil {
		return err
	}
	if c.Delta == 0 {
		return fmt.Errorf("core: LinearPMW requires delta > 0")
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("core: alpha %v must be in (0, 1]", c.Alpha)
	}
	if c.K < 1 {
		return fmt.Errorf("core: K %d must be ≥ 1", c.K)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: workers %d: %w", c.Workers, ErrInvalidWorkers)
	}
	return nil
}

// NewLinearPMW constructs the HR10 server over the given private dataset.
func NewLinearPMW(cfg LinearPMWConfig, data *dataset.Dataset, src *sample.Source) (*LinearPMW, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if data == nil || data.N() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if src == nil {
		return nil, fmt.Errorf("core: nil random source")
	}
	xsize := data.U.Size()
	T := mw.UpdateBudget(1, cfg.Alpha, xsize)
	if cfg.TBudget > 0 {
		T = cfg.TBudget
	}
	nsv, err := sparse.NewNumeric(sparse.Config{
		T:           T,
		K:           cfg.K,
		Alpha:       cfg.Alpha,
		Eps:         cfg.Eps,
		Delta:       cfg.Delta,
		Sensitivity: 1 / float64(data.N()),
	}, src.Split())
	if err != nil {
		return nil, err
	}
	// validate() rejected negatives; xeval.New maps 0 to runtime.NumCPU().
	eng := xeval.New(cfg.Workers)
	state, err := mw.New(data.U, mw.Eta(1, T, xsize), 1)
	if err != nil {
		return nil, err
	}
	state.SetEngine(eng)
	// The threshold half of NumericSV does its own internal accounting
	// ((ε/2, δ/2) slice, Theorem 3.1); the T numeric releases are recorded
	// individually as pure-DP spends.
	acct, err := mech.NewAccountant(cfg.Accountant, mech.Params{Eps: cfg.Eps, Delta: cfg.Delta}, cfg.AccountantParams)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := acct.Reserve(mech.Params{Eps: cfg.Eps / 2, Delta: cfg.Delta / 2}); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &LinearPMW{
		cfg:   cfg,
		data:  data,
		hist:  data.Histogram(),
		nsv:   nsv,
		state: state,
		eng:   eng,
		acct:  acct,
	}, nil
}

// Answer releases a private answer to the linear query. It returns
// ErrHalted once the update or query budget is exhausted.
func (p *LinearPMW) Answer(q *convex.LinearQuery) (float64, error) {
	if p.nsv.Halted() {
		return 0, ErrHalted
	}
	u := p.data.U
	qvec := make([]float64, u.Size())
	// Materialize the query vector chunk-parallel; range violations fold
	// into a NaN sentinel so the (cold) error path can stay serial.
	bad, _ := p.eng.Max(u.Size(), func(lo, hi int) float64 {
		buf := make([]float64, u.Dim())
		worst := 0.0
		for i := lo; i < hi; i++ {
			v := q.Predicate(u.PointInto(i, buf))
			if v < 0 || v > 1 {
				worst = math.Inf(1)
			}
			qvec[i] = v
		}
		return worst
	})
	if math.IsInf(bad, 1) {
		buf := make([]float64, u.Dim())
		for i := 0; i < u.Size(); i++ {
			if v := q.Predicate(u.PointInto(i, buf)); v < 0 || v > 1 {
				return 0, fmt.Errorf("core: predicate value %v outside [0,1]", v)
			}
		}
	}
	hyp := p.state.Histogram()
	hypAns := vecmath.Dot(qvec, hyp.P)
	trueAns := vecmath.Dot(qvec, p.hist.P)
	disc := trueAns - hypAns
	abs := disc
	if abs < 0 {
		abs = -abs
	}
	top, noisy, err := p.nsv.Query(abs, trueAns)
	if err != nil {
		if err == sparse.ErrHalted {
			return 0, ErrHalted
		}
		return 0, err
	}
	p.answered++
	if !top {
		return hypAns, nil
	}
	if err := p.acct.Spend(mech.PureCost(p.nsv.ReleaseEps())); err != nil {
		return 0, fmt.Errorf("core: recording release spend: %w", err)
	}
	noisy = vecmath.Clamp(noisy, 0, 1)
	// MW update: penalty on q's support when the hypothesis over-answers.
	uvec := qvec
	if hypAns < noisy {
		uvec = vecmath.Scale(-1, qvec)
	}
	if err := p.state.Update(uvec); err != nil {
		return 0, err
	}
	return noisy, nil
}

// Halted reports whether the server has stopped.
func (p *LinearPMW) Halted() bool { return p.nsv.Halted() }

// Privacy returns the composed (ε, δ) bound of the interaction so far
// under the run's accountant: the threshold slice plus the recorded
// numeric releases.
func (p *LinearPMW) Privacy() mech.Params { return p.acct.Total() }

// AccountantName returns the accounting mode in force.
func (p *LinearPMW) AccountantName() string { return p.acct.Name() }

// Updates returns the number of MW updates performed.
func (p *LinearPMW) Updates() int { return p.state.Updates() }

// Answered returns the number of queries answered.
func (p *LinearPMW) Answered() int { return p.answered }

// Hypothesis returns a copy of the current public hypothesis.
func (p *LinearPMW) Hypothesis() *histogram.Histogram { return p.state.Histogram().Clone() }

// MWEMConfig parameterizes the classic offline MWEM algorithm of
// Hardt–Ligett–McSherry (NIPS 2012) for linear queries: per round, the
// exponential mechanism selects the worst-answered query, the Laplace
// mechanism releases its answer, and the hypothesis takes one MW step
// toward matching it.
type MWEMConfig struct {
	// Eps, Delta is the total privacy budget (Delta may be 0: MWEM can
	// run under pure DP with basic composition).
	Eps, Delta float64
	// Rounds is the number of select-measure-update rounds.
	Rounds int
}

// MWEMResult bundles MWEM's outputs.
type MWEMResult struct {
	// Answers[i] answers queries[i] on the final hypothesis.
	Answers []float64
	// Hypothesis is the final public histogram.
	Hypothesis *histogram.Histogram
	// Selected records the chosen query index per round.
	Selected []int
}

// MWEM runs classic MWEM on a known set of linear queries.
func MWEM(cfg MWEMConfig, data *dataset.Dataset, src *sample.Source, queries []*convex.LinearQuery) (*MWEMResult, error) {
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("core: rounds %d must be ≥ 1", cfg.Rounds)
	}
	if err := (mech.Params{Eps: cfg.Eps, Delta: cfg.Delta}).Validate(); err != nil {
		return nil, err
	}
	if data == nil || data.N() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: no queries")
	}
	u := data.U
	// Pure-DP budget split: 2·Rounds mechanisms under basic composition
	// when Delta = 0, strong composition otherwise.
	var eps0 float64
	if cfg.Delta == 0 {
		eps0 = cfg.Eps / float64(2*cfg.Rounds)
	} else {
		var err error
		eps0, _, err = mech.SplitBudget(cfg.Eps, cfg.Delta, 2*cfg.Rounds)
		if err != nil {
			return nil, err
		}
	}
	sens := 1 / float64(data.N())

	// Precompute query vectors.
	qvecs := make([][]float64, len(queries))
	for i, q := range queries {
		qv := make([]float64, u.Size())
		for j := range qv {
			v := q.Predicate(u.Point(j))
			if v < 0 || v > 1 {
				return nil, fmt.Errorf("core: predicate value %v outside [0,1]", v)
			}
			qv[j] = v
		}
		qvecs[i] = qv
	}
	priv := data.Histogram()
	state, err := mw.New(u, mw.Eta(1, cfg.Rounds, u.Size()), 1)
	if err != nil {
		return nil, err
	}
	selected := make([]int, 0, cfg.Rounds)
	for round := 0; round < cfg.Rounds; round++ {
		hyp := state.Histogram()
		scores := make([]float64, len(queries))
		for i, qv := range qvecs {
			d := vecmath.Dot(qv, priv.P) - vecmath.Dot(qv, hyp.P)
			if d < 0 {
				d = -d
			}
			scores[i] = d
		}
		idx, err := mech.Exponential(src, scores, sens, eps0)
		if err != nil {
			return nil, err
		}
		selected = append(selected, idx)
		noisy, err := mech.Laplace(src, vecmath.Dot(qvecs[idx], priv.P), sens, eps0)
		if err != nil {
			return nil, err
		}
		noisy = vecmath.Clamp(noisy, 0, 1)
		uvec := qvecs[idx]
		if vecmath.Dot(qvecs[idx], hyp.P) < noisy {
			uvec = vecmath.Scale(-1, qvecs[idx])
		}
		if err := state.Update(uvec); err != nil {
			return nil, err
		}
	}
	final := state.Histogram()
	answers := make([]float64, len(queries))
	for i, qv := range qvecs {
		answers[i] = vecmath.Dot(qv, final.P)
	}
	return &MWEMResult{Answers: answers, Hypothesis: final.Clone(), Selected: selected}, nil
}
