package core

import (
	"testing"

	"repro/internal/erm"
	"repro/internal/optimize"
	"repro/internal/sample"
)

// TestPaperConstantsEndToEnd runs the algorithm with the paper's exact
// worst-case parameter schedule (no TBudget override): T = 64·S²·log|X|/α²
// and the corresponding η, ε₀, δ₀. The required dataset size is then large
// (Theorem 3.8), but the computation only depends on |X|, so sampling a
// large synthetic dataset is cheap. This is the one test that exercises
// the exact Figure-3 configuration rather than the practical MWEM-style
// override.
func TestPaperConstantsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-constants run skipped in -short mode")
	}
	g := testGrid(t)
	cfg := Config{
		Eps: 1, Delta: 1e-6,
		Alpha: 0.125, Beta: 0.05,
		K: 60, S: 1,
		Oracle: erm.LaplaceLinear{},
		// TBudget = 0: the paper's schedule.
	}
	// Theorem 3.8's own n requirement is ≈ 4096·√(log|X|·log(4/δ))·log(8k/β)/(ε·α²),
	// in the millions; the binding constraint for *this* workload is the
	// sparse-vector noise (2Δ/ε₀ ≤ α/4), which n = 600 000 satisfies.
	n := 600000
	data := skewedData(t, g, n, 1)
	srv, err := New(cfg, data, sample.New(2))
	if err != nil {
		t.Fatal(err)
	}
	p := srv.Params()
	if p.T < 1000 {
		t.Fatalf("paper T = %d suspiciously small", p.T)
	}
	pool := linearPool(t, g, cfg.K, 3)
	d := data.Histogram()
	var worst float64
	for _, l := range pool {
		theta, err := srv.Answer(l)
		if err != nil {
			t.Fatalf("halted under paper constants after %d answers: %v", srv.Answered(), err)
		}
		e, err := optimize.Excess(l, theta, d, optimize.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if e > worst {
			worst = e
		}
	}
	if worst > cfg.Alpha {
		t.Errorf("max excess %v > α = %v under the paper's own schedule", worst, cfg.Alpha)
	}
	if srv.Updates() >= p.T {
		t.Errorf("updates %d reached the worst-case budget %d", srv.Updates(), p.T)
	}
	t.Logf("paper constants: T=%d η=%.3g ε₀=%.3g; updates used %d; max excess %.4f",
		p.T, p.Eta, p.Eps0, srv.Updates(), worst)
}
