package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/histogram"
	"repro/internal/optimize"
	"repro/internal/sample"
	"repro/internal/vecmath"
)

// failingOracle errors on every call.
type failingOracle struct{}

func (failingOracle) Name() string { return "failing" }
func (failingOracle) Answer(*sample.Source, convex.Loss, *dataset.Dataset, float64, float64) ([]float64, error) {
	return nil, fmt.Errorf("oracle exploded")
}

// escapingOracle returns a far out-of-domain point.
type escapingOracle struct{}

func (escapingOracle) Name() string { return "escaping" }
func (escapingOracle) Answer(_ *sample.Source, l convex.Loss, _ *dataset.Dataset, _, _ float64) ([]float64, error) {
	out := make([]float64, l.Domain().Dim())
	vecmath.Fill(out, 100)
	return out, nil
}

// wrongDimOracle returns a vector of the wrong dimension.
type wrongDimOracle struct{}

func (wrongDimOracle) Name() string { return "wrongdim" }
func (wrongDimOracle) Answer(_ *sample.Source, l convex.Loss, _ *dataset.Dataset, _, _ float64) ([]float64, error) {
	return make([]float64, l.Domain().Dim()+3), nil
}

// driveToTop asks hard queries until the oracle is invoked; returns the
// first error encountered.
func driveToTop(t *testing.T, srv *Server, pool []convex.Loss) error {
	t.Helper()
	for _, l := range pool {
		if _, err := srv.Answer(l); err != nil {
			return err
		}
	}
	return nil
}

func TestOracleFailurePropagates(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 60000, 40)
	cfg := validConfig()
	cfg.Alpha = 0.02 // force a ⊤ quickly
	cfg.Oracle = failingOracle{}
	srv, err := New(cfg, data, sample.New(41))
	if err != nil {
		t.Fatal(err)
	}
	pool := linearPool(t, g, 40, 42)
	err = driveToTop(t, srv, pool)
	if err == nil {
		t.Skip("no query crossed the threshold on this seed")
	}
	if !strings.Contains(err.Error(), "oracle") {
		t.Errorf("error does not identify the oracle: %v", err)
	}
}

// An oracle that escapes the domain must not break the server: the answer
// gets projected and the MW update stays within its scale bound.
func TestEscapingOracleIsProjected(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 60000, 43)
	cfg := validConfig()
	cfg.Alpha = 0.02
	cfg.Oracle = escapingOracle{}
	srv, err := New(cfg, data, sample.New(44))
	if err != nil {
		t.Fatal(err)
	}
	pool := linearPool(t, g, 40, 45)
	sawUpdate := false
	for _, l := range pool {
		theta, err := srv.Answer(l)
		if err == ErrHalted {
			break
		}
		if err != nil {
			t.Fatalf("server failed on escaping oracle: %v", err)
		}
		if !l.Domain().Contains(theta, 1e-6) {
			t.Fatalf("answer escaped domain: %v", theta)
		}
		if srv.Updates() > 0 {
			sawUpdate = true
		}
	}
	if !sawUpdate {
		t.Skip("no updates on this seed")
	}
}

func TestWrongDimensionOracleRejected(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 60000, 46)
	cfg := validConfig()
	cfg.Alpha = 0.02
	cfg.Oracle = wrongDimOracle{}
	srv, err := New(cfg, data, sample.New(47))
	if err != nil {
		t.Fatal(err)
	}
	pool := linearPool(t, g, 40, 48)
	err = driveToTop(t, srv, pool)
	if err == nil {
		t.Skip("no query crossed the threshold on this seed")
	}
	if !strings.Contains(err.Error(), "dimension") {
		t.Errorf("error does not mention the dimension: %v", err)
	}
}

func TestSyntheticRows(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 100000, 49)
	cfg := validConfig()
	cfg.Alpha = 0.02
	srv, err := New(cfg, data, sample.New(50))
	if err != nil {
		t.Fatal(err)
	}
	pool := linearPool(t, g, 60, 51)
	for _, l := range pool {
		if _, err := srv.Answer(l); err != nil {
			break
		}
	}
	if _, err := srv.SyntheticRows(sample.New(1), 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := srv.SyntheticRows(nil, 10); err == nil {
		t.Error("nil source accepted")
	}
	synth, err := srv.SyntheticRows(sample.New(52), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if synth.N() != 50000 {
		t.Fatalf("synthetic size = %d", synth.N())
	}
	// The synthetic dataset approximates the hypothesis, and the hypothesis
	// approximates the data on the exercised queries: compare the synthetic
	// dataset's query answers to the true ones.
	d := data.Histogram()
	sd := synth.Histogram()
	var worstSynth, worstUniform float64
	for _, l := range pool[:20] {
		lq := l.(*convex.LinearQuery)
		truth := lq.ExactMinimize(d)[0]
		if e := math.Abs(lq.ExactMinimize(sd)[0] - truth); e > worstSynth {
			worstSynth = e
		}
		// Uniform baseline for context.
		uni := 0.0
		for i := 0; i < g.Size(); i++ {
			uni += lq.Predicate(g.Point(i))
		}
		uni /= float64(g.Size())
		if e := math.Abs(uni - truth); e > worstUniform {
			worstUniform = e
		}
	}
	if srv.Updates() > 0 && worstSynth >= worstUniform {
		t.Errorf("synthetic data (%v) no better than uniform (%v) after %d updates",
			worstSynth, worstUniform, srv.Updates())
	}
}

// Exhaustive verification of the paper's §3.4.2 sensitivity bound: over a
// tiny universe and ALL adjacent dataset pairs, the sparse-vector query
// err_ℓ(D, D̂) moves by at most 3S/n.
func TestErrSensitivityExhaustive(t *testing.T) {
	g := testGrid(t)
	src := sample.New(53)
	// Small n so we can enumerate all (j, v) replacements exactly.
	n := 6
	rows := make([]int, n)
	for i := range rows {
		rows[i] = src.Intn(g.Size())
	}
	data, err := dataset.New(g, rows)
	if err != nil {
		t.Fatal(err)
	}
	losses := squaredPool(t, g, 5, 54)
	// The public hypothesis D̂ is fixed while D varies over neighbours;
	// use the uniform histogram (the algorithm's starting hypothesis).
	hyp := histogram.Uniform(g)
	for _, l := range losses {
		s := convex.ScaleBound(l)
		bound := 3*s/float64(n) + 1e-9
		// err_ℓ(D, D̂): evaluate D̂'s minimizer on D, minus D's optimum.
		thetaHat, err := optimize.Minimize(l, hyp, optimize.Options{MaxIters: 600})
		if err != nil {
			t.Fatal(err)
		}
		errOf := func(d *dataset.Dataset) float64 {
			hh := d.Histogram()
			minD, err := optimize.MinValue(l, hh, optimize.Options{MaxIters: 600})
			if err != nil {
				t.Fatal(err)
			}
			e := convex.ValueOn(l, thetaHat.Theta, hh) - minD
			if e < 0 {
				e = 0
			}
			return e
		}
		base := errOf(data)
		for j := 0; j < n; j++ {
			for v := 0; v < g.Size(); v += 3 { // stride keeps runtime sane
				adj := data.Adjacent(j, v)
				if diff := math.Abs(errOf(adj) - base); diff > bound {
					t.Fatalf("loss %s: |Δerr| = %v > 3S/n = %v (j=%d v=%d)", l.Name(), diff, bound, j, v)
				}
			}
		}
	}
}
