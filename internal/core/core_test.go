package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/histogram"
	"repro/internal/mw"
	"repro/internal/optimize"
	"repro/internal/sample"
	"repro/internal/universe"
	"repro/internal/xeval"
)

// fixtures ----------------------------------------------------------------

func testGrid(t *testing.T) *universe.LabeledGrid {
	t.Helper()
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// linearPool builds k distinct threshold linear queries over the grid.
func linearPool(t *testing.T, g *universe.LabeledGrid, k int, seed int64) []convex.Loss {
	t.Helper()
	src := sample.New(seed)
	pool := make([]convex.Loss, 0, k)
	for i := 0; i < k; i++ {
		w := src.UnitVec(g.Dim())
		thresh := (src.Float64() - 0.5) * 0.5
		lq, err := convex.NewLinearQuery("lin", func(x []float64) float64 {
			var s float64
			for j := range w {
				s += w[j] * x[j]
			}
			if s >= thresh {
				return 1
			}
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, lq)
	}
	return pool
}

// squaredPool builds k squared-loss CM queries with random target
// directions ("predict attribute ⟨a, x⟩ from the features").
func squaredPool(t *testing.T, g *universe.LabeledGrid, k int, seed int64) []convex.Loss {
	t.Helper()
	src := sample.New(seed)
	ball, err := convex.NewL2Ball(g.FeatureDim(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Bounds over the grid: features within unit ball, labels within ±1,
	// so |⟨a, x⟩| ≤ ‖x_full‖ ≤ √2.
	pool := make([]convex.Loss, 0, k)
	for i := 0; i < k; i++ {
		a := src.UnitVec(g.Dim())
		sq, err := convex.NewSquared("sq", ball, a, 1.0, math.Sqrt2)
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, sq)
	}
	return pool
}

func skewedData(t *testing.T, g *universe.LabeledGrid, n int, seed int64) *dataset.Dataset {
	t.Helper()
	src := sample.New(seed)
	pop, err := dataset.Skewed(g, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	return dataset.SampleFrom(src, pop, n)
}

func validConfig() Config {
	return Config{
		Eps: 1, Delta: 1e-6,
		Alpha: 0.15, Beta: 0.05,
		K: 100, S: 1,
		Oracle:  erm.LaplaceLinear{},
		TBudget: 10,
	}
}

// tests --------------------------------------------------------------------

func TestConfigValidation(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 100, 1)
	src := sample.New(1)
	mutations := []func(*Config){
		func(c *Config) { c.Eps = 0 },
		func(c *Config) { c.Delta = 0 },
		func(c *Config) { c.Delta = 1 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1.5 },
		func(c *Config) { c.Beta = 0 },
		func(c *Config) { c.Beta = 1 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.S = 0 },
		func(c *Config) { c.Oracle = nil },
	}
	for i, m := range mutations {
		cfg := validConfig()
		m(&cfg)
		if _, err := New(cfg, data, src); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := New(validConfig(), nil, src); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := New(validConfig(), data, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := New(validConfig(), data, src); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestParamsMatchPaperFormulas(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 1000, 2)
	cfg := validConfig()
	cfg.TBudget = 0 // paper default
	s, err := New(cfg, data, sample.New(3))
	if err != nil {
		t.Fatal(err)
	}
	p := s.Params()
	wantT := int(math.Ceil(64 * cfg.S * cfg.S * math.Log(float64(g.Size())) / (cfg.Alpha * cfg.Alpha)))
	if p.T != wantT {
		t.Errorf("T = %d, want %d", p.T, wantT)
	}
	wantEta := math.Sqrt(math.Log(float64(g.Size()))/float64(wantT)) / cfg.S
	if math.Abs(p.Eta-wantEta) > 1e-12 {
		t.Errorf("eta = %v, want %v", p.Eta, wantEta)
	}
	if p.Alpha0 != cfg.Alpha/4 {
		t.Errorf("alpha0 = %v", p.Alpha0)
	}
	if math.Abs(p.Beta0-cfg.Beta/(2*float64(wantT))) > 1e-15 {
		t.Errorf("beta0 = %v", p.Beta0)
	}
	if math.Abs(p.Sensitivity-3*cfg.S/float64(data.N())) > 1e-15 {
		t.Errorf("sensitivity = %v", p.Sensitivity)
	}
	// With the override, T changes and eta follows.
	cfg.TBudget = 7
	s2, err := New(cfg, data, sample.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Params().T != 7 {
		t.Errorf("override T = %d", s2.Params().T)
	}
}

// End-to-end on linear queries (the HR10 special case): every answer's
// excess risk stays below α, the server never halts early, and the final
// hypothesis approximates the data on the query family.
func TestLinearQueriesEndToEnd(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 60000, 4)
	cfg := validConfig()
	cfg.K = 60
	srv, err := New(cfg, data, sample.New(5))
	if err != nil {
		t.Fatal(err)
	}
	pool := linearPool(t, g, 60, 6)
	d := data.Histogram()
	var maxErr float64
	for _, l := range pool {
		theta, err := srv.Answer(l)
		if err != nil {
			t.Fatalf("server halted early after %d answers: %v", srv.Answered(), err)
		}
		e, err := optimize.Excess(l, theta, d, optimize.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if e > maxErr {
			maxErr = e
		}
	}
	if maxErr > cfg.Alpha {
		t.Errorf("max excess risk = %v > α = %v", maxErr, cfg.Alpha)
	}
	if srv.Updates() > srv.Params().T {
		t.Errorf("updates %d exceeded budget %d", srv.Updates(), srv.Params().T)
	}
	if srv.Answered() != 60 {
		t.Errorf("answered = %d", srv.Answered())
	}
}

// End-to-end on genuine (non-linear) CM queries with the NoisyGD oracle.
func TestCMQueriesEndToEnd(t *testing.T) {
	g := testGrid(t)
	src := sample.New(7)
	pop, err := dataset.LinearModel(src, g, []float64{0.7, -0.5}, 0.15, 30000)
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.SampleFrom(src, pop, 40000)
	pool := squaredPool(t, g, 25, 8)
	cfg := Config{
		Eps: 1, Delta: 1e-6,
		Alpha: 0.2, Beta: 0.05,
		K: 25, S: convex.ScaleBound(pool[0]),
		Oracle:  erm.NoisyGD{Iters: 40},
		TBudget: 12,
	}
	srv, err := New(cfg, data, sample.New(9))
	if err != nil {
		t.Fatal(err)
	}
	d := data.Histogram()
	var maxErr float64
	for _, l := range pool {
		theta, err := srv.Answer(l)
		if err != nil {
			t.Fatalf("halted early: %v", err)
		}
		if !l.Domain().Contains(theta, 1e-6) {
			t.Fatalf("answer outside domain")
		}
		e, err := optimize.Excess(l, theta, d, optimize.Options{MaxIters: 1200})
		if err != nil {
			t.Fatal(err)
		}
		if e > maxErr {
			maxErr = e
		}
	}
	if maxErr > cfg.Alpha {
		t.Errorf("max excess risk = %v > α = %v", maxErr, cfg.Alpha)
	}
}

func TestScaleBoundRejected(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 1000, 10)
	cfg := validConfig()
	cfg.S = 0.5 // smaller than the linear query's S = 1
	srv, err := New(cfg, data, sample.New(11))
	if err != nil {
		t.Fatal(err)
	}
	pool := linearPool(t, g, 1, 12)
	if _, err := srv.Answer(pool[0]); err == nil {
		t.Error("oversized query accepted")
	}
}

// With a tiny update budget and many hard queries, the server must halt
// and keep returning ErrHalted.
func TestHaltAfterBudgetExhausted(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 60000, 13)
	cfg := validConfig()
	cfg.TBudget = 2
	cfg.Alpha = 0.02 // hard target → most queries trigger updates
	srv, err := New(cfg, data, sample.New(14))
	if err != nil {
		t.Fatal(err)
	}
	pool := linearPool(t, g, 50, 15)
	halted := false
	for _, l := range pool {
		if _, err := srv.Answer(l); err == ErrHalted {
			halted = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !halted {
		t.Skip("budget never exhausted on this seed — acceptable, covered by other seeds")
	}
	if _, err := srv.Answer(pool[0]); err != ErrHalted {
		t.Errorf("after halt: err = %v, want ErrHalted", err)
	}
}

func TestKQueryLimit(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 60000, 16)
	cfg := validConfig()
	cfg.K = 3
	srv, err := New(cfg, data, sample.New(17))
	if err != nil {
		t.Fatal(err)
	}
	pool := linearPool(t, g, 5, 18)
	for i := 0; i < 3; i++ {
		if _, err := srv.Answer(pool[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !srv.Halted() {
		t.Error("not halted after K queries")
	}
	if _, err := srv.Answer(pool[3]); err != ErrHalted {
		t.Errorf("err = %v, want ErrHalted", err)
	}
}

// Trace diagnostics: when updates happen, the recorded per-update progress
// must exceed α/4 − α₀ = 0 in the vast majority of cases (Claim 3.6 says
// > α/4 whp; we assert positivity, which a sign bug in the dual
// certificate would break).
func TestTraceProgressPositive(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 60000, 19)
	cfg := validConfig()
	cfg.Trace = true
	cfg.Alpha = 0.05 // force several updates
	srv, err := New(cfg, data, sample.New(20))
	if err != nil {
		t.Fatal(err)
	}
	pool := linearPool(t, g, 80, 21)
	for _, l := range pool {
		if _, err := srv.Answer(l); err != nil {
			break
		}
	}
	traces := srv.Traces()
	if len(traces) == 0 {
		t.Skip("no updates triggered on this seed")
	}
	var nonpos int
	for i, tr := range traces {
		if tr.UpdateIndex != i+1 {
			t.Errorf("trace %d has UpdateIndex %d", i, tr.UpdateIndex)
		}
		if tr.Progress <= 0 {
			nonpos++
		}
		if tr.Potential < 0 {
			t.Errorf("negative potential %v", tr.Potential)
		}
	}
	if nonpos > len(traces)/4 {
		t.Errorf("%d/%d updates had non-positive progress ⟨u,D̂−D⟩", nonpos, len(traces))
	}
}

// The hypothesis must improve over the uniform prior: after a run, the
// final histogram answers the query pool better than uniform does.
func TestHypothesisImproves(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 60000, 22)
	cfg := validConfig()
	cfg.Alpha = 0.05
	srv, err := New(cfg, data, sample.New(23))
	if err != nil {
		t.Fatal(err)
	}
	pool := linearPool(t, g, 60, 24)
	for _, l := range pool {
		if _, err := srv.Answer(l); err != nil {
			break
		}
	}
	if srv.Updates() == 0 {
		t.Skip("no updates on this seed")
	}
	hyp := srv.Hypothesis()
	if err := hyp.Validate(); err != nil {
		t.Fatalf("hypothesis invalid: %v", err)
	}
	uni := histogram.Uniform(g)
	d := data.Histogram()
	var hypWorst, uniWorst float64
	for _, l := range pool {
		he, err := dbErr(l, d, hyp)
		if err != nil {
			t.Fatal(err)
		}
		ue, err := dbErr(l, d, uni)
		if err != nil {
			t.Fatal(err)
		}
		if he > hypWorst {
			hypWorst = he
		}
		if ue > uniWorst {
			uniWorst = ue
		}
	}
	if hypWorst >= uniWorst {
		t.Errorf("hypothesis worst error %v not better than uniform %v", hypWorst, uniWorst)
	}
}

func dbErr(l convex.Loss, d, dPrime *histogram.Histogram) (float64, error) {
	res, err := optimize.Minimize(l, dPrime, optimize.Options{})
	if err != nil {
		return 0, err
	}
	return optimize.Excess(l, res.Theta, d, optimize.Options{})
}

// Privacy accounting: the reported guarantee never exceeds the configured
// budget.
func TestPrivacyWithinBudget(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 60000, 25)
	cfg := validConfig()
	cfg.Alpha = 0.05
	srv, err := New(cfg, data, sample.New(26))
	if err != nil {
		t.Fatal(err)
	}
	pool := linearPool(t, g, 40, 27)
	for _, l := range pool {
		if _, err := srv.Answer(l); err != nil {
			break
		}
	}
	p := srv.Privacy()
	if p.Eps > cfg.Eps+1e-9 {
		t.Errorf("reported eps %v exceeds budget %v", p.Eps, cfg.Eps)
	}
	if p.Delta > cfg.Delta+1e-15 {
		t.Errorf("reported delta %v exceeds budget %v", p.Delta, cfg.Delta)
	}
}

func TestMinDatasetSizeShape(t *testing.T) {
	cfg := validConfig()
	n1 := MinDatasetSize(cfg, 256)
	if n1 <= 0 {
		t.Fatal("non-positive n")
	}
	// Halving α quadruples n.
	cfg2 := cfg
	cfg2.Alpha = cfg.Alpha / 2
	ratio := float64(MinDatasetSize(cfg2, 256)) / float64(n1)
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("n ratio for α/2 = %v, want ~4", ratio)
	}
	// n depends only polylogarithmically on k: k ×1000 grows n by
	// log(8k/β) ratio.
	cfg3 := cfg
	cfg3.K = cfg.K * 1000
	ratio = float64(MinDatasetSize(cfg3, 256)) / float64(n1)
	if ratio > 3 {
		t.Errorf("n ratio for k×1000 = %v, want small (polylog)", ratio)
	}
}

// Determinism: equal seeds give equal transcripts.
func TestServerDeterministic(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 30000, 28)
	pool := linearPool(t, g, 20, 29)
	run := func() []float64 {
		srv, err := New(validConfig(), data, sample.New(30))
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, l := range pool {
			theta, err := srv.Answer(l)
			if err != nil {
				break
			}
			out = append(out, theta[0])
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("answer %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// mw parameter coherence: the server's η and T honour the regret bound
// relationship the accuracy proof needs (2S√(log|X|/T) = α/4 at the paper's
// T).
func TestPaperTGivesQuarterAlphaRegret(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 1000, 31)
	cfg := validConfig()
	cfg.TBudget = 0
	srv, err := New(cfg, data, sample.New(32))
	if err != nil {
		t.Fatal(err)
	}
	rb := mw.RegretBound(cfg.S, srv.Params().T, g.Size())
	if rb > cfg.Alpha/4+1e-9 {
		t.Errorf("regret bound at paper T = %v, want ≤ α/4 = %v", rb, cfg.Alpha/4)
	}
}

// TestWorkersValidation checks the -workers bug-net: negative worker
// counts are rejected with the typed error at every constructor that
// accepts the knob, while 0 (= all CPUs) and positive values pass.
func TestWorkersValidation(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 100, 41)
	src := sample.New(41)
	cfg := validConfig()
	cfg.Workers = -1
	if _, err := New(cfg, data, src); !errors.Is(err, ErrInvalidWorkers) {
		t.Errorf("New(workers=-1) err = %v, want ErrInvalidWorkers", err)
	}
	for _, w := range []int{0, 1, 8} {
		cfg := validConfig()
		cfg.Workers = w
		if _, err := New(cfg, data, src); err != nil {
			t.Errorf("New(workers=%d): %v", w, err)
		}
	}
	if _, err := NewLinearPMW(LinearPMWConfig{Eps: 1, Delta: 1e-6, Alpha: 0.2, K: 5, Workers: -3}, data, src); !errors.Is(err, ErrInvalidWorkers) {
		t.Error("NewLinearPMW accepted negative workers")
	}
	off := OfflineConfig{Eps: 1, Delta: 1e-6, Rounds: 2, S: 1, Oracle: erm.LaplaceLinear{}, Workers: -2}
	if _, err := AnswerOffline(off, data, src, linearPool(t, g, 2, 42)); !errors.Is(err, ErrInvalidWorkers) {
		t.Error("AnswerOffline accepted negative workers")
	}
}

// TestServerDeterministicAcrossWorkers is the engine's end-to-end
// acceptance test at the algorithm level: with the same seed, a serial
// server and an 8-worker server must release the same answers on the
// same CM-query stream — parallelism is invisible to the analyst.
func TestServerDeterministicAcrossWorkers(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 30000, 43)
	pool := squaredPool(t, g, 12, 44)
	run := func(workers int) [][]float64 {
		cfg := Config{
			Eps: 1, Delta: 1e-6,
			Alpha: 0.2, Beta: 0.05,
			K: 20, S: convex.ScaleBound(pool[0]),
			Oracle:  erm.NoisyGD{Iters: 8, Engine: xeval.New(workers)},
			TBudget: 4,
			Workers: workers,
		}
		srv, err := New(cfg, data, sample.New(45))
		if err != nil {
			t.Fatal(err)
		}
		var out [][]float64
		for _, l := range pool {
			theta, err := srv.Answer(l)
			if err != nil {
				break
			}
			out = append(out, theta)
		}
		return out
	}
	serial, parallel := run(1), run(8)
	if len(serial) == 0 || len(serial) != len(parallel) {
		t.Fatalf("answer counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		for j := range serial[i] {
			if d := math.Abs(serial[i][j] - parallel[i][j]); d > 1e-12 {
				t.Errorf("answer %d[%d]: serial %v vs 8 workers %v (Δ=%g)",
					i, j, serial[i][j], parallel[i][j], d)
			}
		}
	}
}
