package core

import (
	"errors"
	"testing"

	"repro/internal/convex"
	"repro/internal/erm"
	"repro/internal/mech"
	"repro/internal/sample"
)

// acctConfig is the fixed (ε, δ, α) configuration the accountant
// comparisons run at; only cfg.Accountant varies.
func acctConfig() Config {
	return Config{
		Eps: 1, Delta: 1e-6,
		Alpha: 0.05, Beta: 0.05,
		K: 500, S: 2,
		Oracle:  erm.NoisyGD{},
		TBudget: 12,
	}
}

// TestZCDPAdmitsMoreUpdates is the core-level accounting-tightness check:
// at identical (ε, δ, α) and identical per-call noise (Params.Eps0/Delta0
// come from the same Theorem-3.10 schedule), the zcdp accountant certifies
// a strictly larger MW update horizon than the default advanced accounting
// for a Gaussian-noise oracle.
func TestZCDPAdmitsMoreUpdates(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 60000, 1)

	cfg := acctConfig()
	adv, err := New(cfg, data, sample.New(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Accountant = "zcdp"
	zc, err := New(cfg, data, sample.New(7))
	if err != nil {
		t.Fatal(err)
	}

	pa, pz := adv.Params(), zc.Params()
	if pa.T != 12 {
		t.Fatalf("advanced T = %d, want the requested 12", pa.T)
	}
	if pz.T <= pa.T {
		t.Fatalf("zcdp T = %d, want strictly more than advanced %d", pz.T, pa.T)
	}
	if pz.T > cfg.K {
		t.Errorf("zcdp T = %d exceeds the query cap %d it can never spend", pz.T, cfg.K)
	}
	// The per-call noise contract is shared: same schedule, same accuracy
	// per answer.
	if pz.Eps0 != pa.Eps0 || pz.Delta0 != pa.Delta0 {
		t.Errorf("per-call budgets differ: (%v, %v) vs (%v, %v)", pz.Eps0, pz.Delta0, pa.Eps0, pa.Delta0)
	}
	t.Logf("update horizon at (ε=%g, δ=%g, α=%g): advanced=%d zcdp=%d (%.1f×)",
		cfg.Eps, cfg.Delta, cfg.Alpha, pa.T, pz.T, float64(pz.T)/float64(pa.T))

	// The zcdp session actually runs, spends ρ, and reports a total within
	// budget.
	for i, l := range squaredPool(t, g, 4, 3) {
		if _, err := zc.Answer(l); err != nil {
			t.Fatalf("zcdp answer %d: %v", i, err)
		}
	}
	priv := zc.Privacy()
	if priv.Eps > cfg.Eps+1e-9 || priv.Delta > cfg.Delta+1e-15 {
		t.Errorf("zcdp privacy %+v exceeds budget", priv)
	}
	rem := zc.Remaining()
	if rem.Eps <= 0 {
		t.Errorf("zcdp remaining eps %v not positive after 4 queries", rem.Eps)
	}
	if zc.CallCost().Rho <= 0 {
		t.Errorf("NoisyGD call cost carries no ρ certificate: %+v", zc.CallCost())
	}
}

// TestAccountantHorizonOrdering pins the three accountants' horizons in
// the paper's large-T regime (no TBudget override): loose accounting
// affords fewer calls at Figure 3's per-call noise level, tight accounting
// at least as many.
func TestAccountantHorizonOrdering(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 60000, 1)
	cfg := acctConfig()
	cfg.TBudget = 0 // paper worst-case schedule: T in the thousands
	cfg.Alpha = 0.125

	horizon := map[string]int{}
	for _, name := range []string{"basic", "advanced", "zcdp"} {
		cfg.Accountant = name
		srv, err := New(cfg, data, sample.New(7))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		horizon[name] = srv.Params().T
	}
	if !(horizon["basic"] < horizon["advanced"]) {
		t.Errorf("want basic < advanced in the large-T regime, got %v", horizon)
	}
	if horizon["zcdp"] < horizon["advanced"] {
		t.Errorf("want zcdp ≥ advanced, got %v", horizon)
	}
	t.Logf("paper-schedule horizons: %v", horizon)
}

// TestUnknownAccountantIsTyped checks the registry error surfaces through
// core.New as mech.ErrUnknownAccountant (the HTTP layer maps it to 400).
func TestUnknownAccountantIsTyped(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 1000, 1)
	cfg := acctConfig()
	cfg.Accountant = "renyi"
	if _, err := New(cfg, data, sample.New(1)); !errors.Is(err, mech.ErrUnknownAccountant) {
		t.Errorf("error = %v, want ErrUnknownAccountant", err)
	}
}

// TestOfflineAndLinearPMWLedger checks the offline and HR10 variants
// thread their spends through the accountant: the recorded composition is
// reported and stays within the schedule guarantee.
func TestOfflineAndLinearPMWLedger(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 60000, 1)

	res, err := AnswerOffline(OfflineConfig{
		Eps: 1, Delta: 1e-6, Rounds: 3, S: 2,
		Oracle: erm.NoisyGD{Iters: 16},
	}, data, sample.New(5), squaredPool(t, g, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accountant != "advanced" {
		t.Errorf("offline accountant = %q", res.Accountant)
	}
	if res.Accounted.Eps <= 0 || res.Accounted.Eps > 1+1e-9 {
		t.Errorf("offline accounted eps = %v", res.Accounted.Eps)
	}

	lp, err := NewLinearPMW(LinearPMWConfig{
		Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 20, TBudget: 8,
		Accountant: "zcdp",
	}, data, sample.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if lp.AccountantName() != "zcdp" {
		t.Errorf("linear accountant = %q", lp.AccountantName())
	}
	answered := 0
	for _, l := range linearPool(t, g, 10, 4) {
		if _, err := lp.Answer(l.(*convex.LinearQuery)); err != nil {
			if errors.Is(err, ErrHalted) {
				break // update budget exhausted: expected on skewed data
			}
			t.Fatal(err)
		}
		answered++
	}
	if answered == 0 {
		t.Fatal("no linear queries answered")
	}
	priv := lp.Privacy()
	if priv.Eps <= 0.5 || priv.Eps > 1+1e-9 {
		t.Errorf("linear PMW accounted eps = %v, want in (0.5, 1]", priv.Eps)
	}
	if priv.Delta > 1e-6+1e-15 {
		t.Errorf("linear PMW accounted delta = %v", priv.Delta)
	}
}
