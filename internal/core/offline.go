package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/histogram"
	"repro/internal/mech"
	"repro/internal/mw"
	"repro/internal/optimize"
	"repro/internal/sample"
	"repro/internal/vecmath"
	"repro/internal/xeval"
)

// OfflineConfig parameterizes the offline (batch) variant of PMW for CM
// queries, in the style of the offline PMW / MWEM line of work
// ([GHRU11, GRU12, HLM12]) that paper §1.2 sketches: all k losses are known
// up front, each round privately selects the query the hypothesis answers
// worst (exponential mechanism), asks the oracle for that query's private
// answer, and applies the same dual-certificate MW update as the online
// algorithm. After Rounds rounds, every query is answered from the final
// public hypothesis.
type OfflineConfig struct {
	// Eps, Delta is the total privacy budget.
	Eps, Delta float64
	// Rounds is the number of select-and-update rounds T.
	Rounds int
	// S is the loss family's scale parameter.
	S float64
	// Oracle is the single-query algorithm A′.
	Oracle erm.Oracle
	// SolverIters bounds the public/private argmin solves (default 400).
	SolverIters int
	// Workers sets the xeval worker count (0 = all CPUs, negative
	// rejected; see core.Config.Workers).
	Workers int
	// Accountant names the accounting strategy used to track the run's
	// spends (see core.Config.Accountant). The offline schedule itself is
	// fixed — 2·Rounds mechanisms under the Theorem-3.10 split, so the
	// (Eps, Delta) guarantee holds for every accountant — but the recorded
	// composition (OfflineResult.Accounted) is tighter under "zcdp" when
	// the oracle is Gaussian-based.
	Accountant string
	// AccountantParams optionally carries accountant-specific JSON params.
	AccountantParams json.RawMessage
}

func (c OfflineConfig) validate() error {
	if err := (mech.Params{Eps: c.Eps, Delta: c.Delta}).Validate(); err != nil {
		return err
	}
	if c.Delta == 0 {
		return fmt.Errorf("core: offline variant requires delta > 0")
	}
	if c.Rounds < 1 {
		return fmt.Errorf("core: rounds %d must be ≥ 1", c.Rounds)
	}
	if c.S <= 0 {
		return fmt.Errorf("core: scale S %v must be positive", c.S)
	}
	if c.Oracle == nil {
		return fmt.Errorf("core: nil oracle")
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: workers %d: %w", c.Workers, ErrInvalidWorkers)
	}
	return nil
}

// OfflineResult bundles the offline run's outputs.
type OfflineResult struct {
	// Answers[i] answers losses[i], computed on the final hypothesis.
	Answers [][]float64
	// Hypothesis is the final public histogram — a DP synthetic dataset.
	Hypothesis *histogram.Histogram
	// Selected records which loss index was chosen in each round.
	Selected []int
	// Accountant is the accounting mode; Accounted the composed (ε, δ)
	// bound of the recorded spends under it. The schedule guarantee
	// (cfg.Eps, cfg.Delta) holds regardless.
	Accountant string
	Accounted  mech.Params
}

// AnswerOffline runs the offline PMW-for-CM algorithm on a known query set.
func AnswerOffline(cfg OfflineConfig, data *dataset.Dataset, src *sample.Source, losses []convex.Loss) (*OfflineResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if data == nil || data.N() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if len(losses) == 0 {
		return nil, fmt.Errorf("core: no queries")
	}
	for _, l := range losses {
		if got := convex.ScaleBound(l); got > cfg.S+1e-9 {
			return nil, fmt.Errorf("core: query %q scale bound %v exceeds S = %v", l.Name(), got, cfg.S)
		}
	}
	iters := cfg.SolverIters
	if iters <= 0 {
		iters = 400
	}

	// 2 mechanisms per round (selection + oracle) under strong composition.
	eps0, delta0, err := mech.SplitBudget(cfg.Eps, cfg.Delta, 2*cfg.Rounds)
	if err != nil {
		return nil, err
	}
	// Every privacy spend goes through an Accountant: the schedule above
	// fixes the per-call budgets, the accountant records what each
	// mechanism actually certifies (exponential selections are pure-DP,
	// Gaussian oracles declare ρ) and reports the composed total.
	acct, err := mech.NewAccountant(cfg.Accountant, mech.Params{Eps: cfg.Eps, Delta: cfg.Delta}, cfg.AccountantParams)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	oracleCost := erm.CostOf(cfg.Oracle, eps0, delta0)

	// validate() rejected negatives; xeval.New maps 0 to runtime.NumCPU().
	eng := xeval.New(cfg.Workers)
	xsize := data.U.Size()
	state, err := mw.New(data.U, mw.Eta(cfg.S, cfg.Rounds, xsize), cfg.S)
	if err != nil {
		return nil, err
	}
	state.SetEngine(eng)
	priv := data.Histogram()
	sens := 3 * cfg.S / float64(data.N())

	selected := make([]int, 0, cfg.Rounds)
	for round := 0; round < cfg.Rounds; round++ {
		hyp := state.Histogram()
		// Score every query by how badly the hypothesis answers it.
		scores := make([]float64, len(losses))
		thetaHats := make([][]float64, len(losses))
		for i, l := range losses {
			res, err := optimize.Minimize(l, hyp, optimize.Options{MaxIters: iters, Engine: eng})
			if err != nil {
				return nil, err
			}
			thetaHats[i] = res.Theta
			minD, err := optimize.MinValue(l, priv, optimize.Options{MaxIters: iters, Engine: eng})
			if err != nil {
				return nil, err
			}
			e := convex.EvalOn(eng, l, res.Theta, priv) - minD
			if e < 0 {
				e = 0
			}
			scores[i] = e
		}
		idx, err := mech.Exponential(src, scores, sens, eps0)
		if err != nil {
			return nil, err
		}
		if err := acct.Spend(mech.PureCost(eps0)); err != nil {
			return nil, err
		}
		selected = append(selected, idx)

		l := losses[idx]
		theta, err := cfg.Oracle.Answer(src, l, data, eps0, delta0)
		if err != nil {
			return nil, err
		}
		if err := acct.Spend(oracleCost); err != nil {
			return nil, err
		}
		// Dual-certificate update, identical to the online path.
		dir := vecmath.Sub(theta, thetaHats[idx])
		uvec := make([]float64, xsize)
		convex.DirGradOn(eng, l, uvec, dir, thetaHats[idx], data.U)
		eng.ForEach(xsize, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				uvec[i] = vecmath.Clamp(uvec[i], -cfg.S, cfg.S)
			}
		})
		if err := state.Update(uvec); err != nil {
			return nil, err
		}
	}

	final := state.Histogram()
	answers := make([][]float64, len(losses))
	for i, l := range losses {
		res, err := optimize.Minimize(l, final, optimize.Options{MaxIters: iters, Engine: eng})
		if err != nil {
			return nil, err
		}
		answers[i] = res.Theta
	}
	return &OfflineResult{
		Answers:    answers,
		Hypothesis: final.Clone(),
		Selected:   selected,
		Accountant: acct.Name(),
		Accounted:  acct.Total(),
	}, nil
}
