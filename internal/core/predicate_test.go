package core

import (
	"testing"

	"repro/internal/convex"
	"repro/internal/sample"
)

// badPredicateQuery returns a linear query whose predicate violates the
// [0, 1] contract.
func badPredicateQuery(t *testing.T) *convex.LinearQuery {
	t.Helper()
	q, err := convex.NewLinearQuery("bad", func(x []float64) float64 { return 2 })
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestLinearPMWRejectsBadPredicate(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 10000, 70)
	srv, err := NewLinearPMW(LinearPMWConfig{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 10}, data, sample.New(71))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Answer(badPredicateQuery(t)); err == nil {
		t.Error("predicate outside [0,1] accepted")
	}
}

func TestMWEMRejectsBadPredicate(t *testing.T) {
	g := testGrid(t)
	data := skewedData(t, g, 10000, 72)
	_, err := MWEM(MWEMConfig{Eps: 1, Rounds: 3}, data, sample.New(73), []*convex.LinearQuery{badPredicateQuery(t)})
	if err == nil {
		t.Error("predicate outside [0,1] accepted")
	}
}
