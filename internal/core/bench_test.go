package core

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/erm"
	"repro/internal/sample"
	"repro/internal/universe"
	"repro/internal/workload"
)

// BenchmarkAnswerByUniverseSize measures the per-query cost of the online
// server as the universe grows — paper §4.3's complexity discussion: each
// iteration is poly(n, d) except the histogram update, which costs Θ(|X|),
// so per-query time must scale linearly in |X| (and the paper proves the
// exponential dependence on d is inherent). Run with
// `go test -bench=AnswerByUniverseSize ./internal/core/`.
func BenchmarkAnswerByUniverseSize(b *testing.B) {
	for _, d := range []int{6, 8, 10, 12} {
		d := d
		b.Run(fmt.Sprintf("X=2^%d", d), func(b *testing.B) {
			u, err := universe.NewHypercube(d)
			if err != nil {
				b.Fatal(err)
			}
			src := sample.New(1)
			pop, err := dataset.Skewed(u, 1.2)
			if err != nil {
				b.Fatal(err)
			}
			data := dataset.SampleFrom(src, pop, 20000)
			srv, err := New(Config{
				Eps: 1, Delta: 1e-6, Alpha: 0.02, Beta: 0.05,
				K: 1 << 30, S: 1, Oracle: erm.LaplaceLinear{}, TBudget: 1 << 20,
			}, data, src.Split())
			if err != nil {
				b.Fatal(err)
			}
			qs, err := workload.Halfspaces(src.Split(), u, 64)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := srv.Answer(qs[i%len(qs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
