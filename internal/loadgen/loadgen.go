// Package loadgen is the repo's workload generator: it drives a running
// `pmwcm serve` endpoint over plain HTTP with configurable scenario mixes
// and measures what the read path actually delivers — latency
// distribution, throughput, cache-hit rate, and failure counts — as a
// machine-readable JSON report.
//
// Why it exists: the serving subsystem's performance claims (zero-spend
// answer cache, batched queries, narrowed lock hold) are about behavior
// under traffic, which unit tests and micro-benchmarks cannot observe. A
// scenario describes a reproducible workload — open- or closed-loop
// arrivals, hot-key repeat ratios, batch sizes, multi-session fan-out,
// per-session accountants — and Run executes it against the HTTP API the
// way real analysts would, from outside the process. The emitted Report is
// the data source for the CI load smoke job (which asserts a nonzero
// cache-hit rate and zero server faults) and for operator capacity
// planning.
//
// The generator is deliberately a pure HTTP client: it imports no serving
// internals, so it measures the same surface an analyst sees, and it can
// be pointed at any deployment.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Scenario is one reproducible workload description. Zero fields take the
// defaults documented per field (applied by Run via normalized).
type Scenario struct {
	// Name labels the scenario in the report.
	Name string `json:"name,omitempty"`
	// BaseURL is the serve endpoint, e.g. "http://127.0.0.1:8787".
	BaseURL string `json:"base_url"`
	// BaseURLs optionally fans the workload out over several endpoints
	// (replicas, or routers): sessions are assigned round-robin and every
	// request for a session goes to its own endpoint. When set it
	// supersedes BaseURL.
	BaseURLs []string `json:"base_urls,omitempty"`
	// MetricsURLs optionally names the endpoints whose /metrics are
	// scraped and SUMMED for the server-side view (default: the base
	// URLs). A fleet run drives the router but scrapes the replicas —
	// the router forwards queries, the replicas count them.
	MetricsURLs []string `json:"metrics_urls,omitempty"`
	// Mode selects the arrival process: "closed" (default) keeps
	// Concurrency workers per session in a request→response loop — load
	// tracks service capacity; "open" issues arrivals at a fixed Rate per
	// second regardless of completions — load tracks the offered rate, the
	// honest model for latency under overload; "churn" cycles session
	// lifetimes (create → query burst → idle → resume → maybe close, see
	// Churn) — load tracks the eviction/page-in path, not steady state.
	Mode string `json:"mode,omitempty"`
	// Churn tunes mode "churn"; nil takes every default.
	Churn *ChurnConfig `json:"churn,omitempty"`
	// DurationSec is the measured run length in seconds (default 5).
	DurationSec float64 `json:"duration_sec,omitempty"`
	// Sessions is the session fan-out (default 1). Each session is created
	// at start and closed at the end of the run.
	Sessions int `json:"sessions,omitempty"`
	// Accountants optionally assigns privacy accountants to sessions,
	// round-robin ("basic", "advanced", "zcdp"); empty uses the server
	// default.
	Accountants []string `json:"accountants,omitempty"`
	// SessionParams carries extra session-creation fields verbatim (e.g.
	// {"k": 1000, "tbudget": 8}).
	SessionParams map[string]any `json:"session_params,omitempty"`
	// Concurrency is the closed-loop worker count per session (default 2).
	Concurrency int `json:"concurrency,omitempty"`
	// Rate is the open-loop total arrival rate in requests/sec (default
	// 50); MaxInFlight caps outstanding open-loop requests (default 256).
	Rate        float64 `json:"rate,omitempty"`
	MaxInFlight int     `json:"max_in_flight,omitempty"`
	// BatchSize > 1 sends batches of that many queries through the
	// queries:batch endpoint; 0 or 1 sends single queries (default 1).
	BatchSize int `json:"batch_size,omitempty"`
	// HotRatio is the probability a generated query repeats one of HotKeys
	// hot specs (default 0.8 over 8 keys) — the cache-hit dial. The
	// remainder are cold: unique specs that always reach the mechanism.
	// Zero (or omitted) takes the default; any negative value means an
	// explicitly all-cold workload (`pmwcm loadtest -hot 0` maps to it).
	HotRatio float64 `json:"hot_ratio,omitempty"`
	HotKeys  int     `json:"hot_keys,omitempty"`
	// Distinct makes every generated query a genuinely new loss — rotating
	// kinds with widely spaced parameters instead of the nearly identical
	// cold tail — so the mechanism keeps updating and a miss-heavy run
	// sustains ⊤ answers, the write path's worst case. It overrides
	// HotRatio: no query ever repeats, so the cache never hits.
	Distinct bool `json:"distinct,omitempty"`
	// Seed makes the generated query stream reproducible (default 1).
	Seed int64 `json:"seed,omitempty"`
}

// ChurnConfig shapes mode "churn": each of Sessions workers loops through
// whole session lifetimes instead of querying one long-lived session.
// The idle gaps are what make it a scale-out workload — against a server
// running -idle-ttl they force evictions, and the resume bursts force
// page-ins, all measured from the outside.
type ChurnConfig struct {
	// QueriesPerBurst is the number of requests per activity burst
	// (default 4).
	QueriesPerBurst int `json:"queries_per_burst,omitempty"`
	// IdleSec is the pause between bursts (default 0.5) — set it above the
	// server's -idle-ttl to guarantee evictions between bursts.
	IdleSec float64 `json:"idle_sec,omitempty"`
	// Resumes is how many idle→burst cycles follow the first burst
	// (default 1).
	Resumes int `json:"resumes,omitempty"`
	// CloseRatio is the probability a session is closed at the end of its
	// cycle (default 0.5); the rest are abandoned for the server's idle
	// janitor to evict. Negative means explicitly never close.
	CloseRatio float64 `json:"close_ratio,omitempty"`
}

// normalized fills the documented defaults.
func (sc Scenario) normalized() Scenario {
	if sc.Mode == "" {
		sc.Mode = "closed"
	}
	if sc.DurationSec <= 0 {
		sc.DurationSec = 5
	}
	if sc.Sessions <= 0 {
		sc.Sessions = 1
	}
	if sc.Concurrency <= 0 {
		sc.Concurrency = 2
	}
	if sc.Rate <= 0 {
		sc.Rate = 50
	}
	if sc.MaxInFlight <= 0 {
		sc.MaxInFlight = 256
	}
	if sc.BatchSize <= 0 {
		sc.BatchSize = 1
	}
	switch {
	case sc.HotRatio < 0:
		sc.HotRatio = 0 // explicit all-cold
	case sc.HotRatio == 0 || sc.HotRatio > 1:
		sc.HotRatio = 0.8
	}
	if sc.HotKeys <= 0 {
		sc.HotKeys = 8
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.Mode == "churn" {
		c := ChurnConfig{}
		if sc.Churn != nil {
			c = *sc.Churn
		}
		if c.QueriesPerBurst <= 0 {
			c.QueriesPerBurst = 4
		}
		if c.IdleSec <= 0 {
			c.IdleSec = 0.5
		}
		if c.Resumes <= 0 {
			c.Resumes = 1
		}
		switch {
		case c.CloseRatio < 0:
			c.CloseRatio = 0 // explicitly never close
		case c.CloseRatio == 0 || c.CloseRatio > 1:
			c.CloseRatio = 0.5
		}
		sc.Churn = &c
	}
	return sc
}

// bases returns the effective endpoint list (BaseURLs, else BaseURL),
// trailing slashes trimmed.
func (sc *Scenario) bases() []string {
	urls := sc.BaseURLs
	if len(urls) == 0 {
		urls = []string{sc.BaseURL}
	}
	out := make([]string, len(urls))
	for i, u := range urls {
		out[i] = strings.TrimRight(u, "/")
	}
	return out
}

// Validate rejects scenarios Run cannot execute.
func (sc Scenario) Validate() error {
	if sc.BaseURL == "" && len(sc.BaseURLs) == 0 {
		return fmt.Errorf("loadgen: scenario needs a base_url (or base_urls)")
	}
	switch sc.Mode {
	case "", "closed", "open", "churn":
	default:
		return fmt.Errorf("loadgen: unknown mode %q (have closed, open, churn)", sc.Mode)
	}
	return nil
}

// spec is the client-side mirror of a query spec; loadgen speaks JSON, not
// internal types.
type spec struct {
	Kind   string          `json:"kind"`
	Params json.RawMessage `json:"params,omitempty"`
}

// hotSpec deterministically maps hot-key index h to a query spec. The
// catalog rotates universe-shape-independent kinds so a scenario works
// against any labeled-grid deployment.
func hotSpec(h int) spec {
	switch h % 4 {
	case 0:
		return spec{Kind: "logistic", Params: json.RawMessage(fmt.Sprintf(`{"temp":%g}`, 0.3+0.05*float64(h)))}
	case 1:
		return spec{Kind: "hinge", Params: json.RawMessage(fmt.Sprintf(`{"width":%g}`, 1+0.1*float64(h)))}
	case 2:
		return spec{Kind: "huber", Params: json.RawMessage(fmt.Sprintf(`{"delta":%g}`, 0.3+0.02*float64(h)))}
	default:
		// The margin keeps every hot key a distinct canonical spec.
		return spec{Kind: "logistic", Params: json.RawMessage(fmt.Sprintf(`{"margin":%g}`, 0.01*float64(h)))}
	}
}

// distinctSpec maps the run-wide sequence number n to a genuinely
// different loss: the kind rotates and the leading parameter moves in
// large steps, so consecutive queries keep perturbing the mechanism
// instead of collapsing into ⊥ agreement the way the nearly identical
// cold tail does, and the 1e-9·n term keeps every spec's canonical key
// unique so none is ever served from the cache.
func distinctSpec(n uint64) spec {
	v := math.Mod(0.05*float64(n), 1.4) + float64(n)*1e-9
	switch n % 3 {
	case 0:
		return spec{Kind: "logistic", Params: json.RawMessage(fmt.Sprintf(`{"temp":%.17g}`, 0.2+v))}
	case 1:
		return spec{Kind: "hinge", Params: json.RawMessage(fmt.Sprintf(`{"width":%.17g}`, 0.5+v))}
	default:
		return spec{Kind: "huber", Params: json.RawMessage(fmt.Sprintf(`{"delta":%.17g}`, 0.2+v))}
	}
}

// coldSpec returns a query no prior request can have cached: the full
// run-wide sequence number is embedded at a resolution float64 represents
// exactly (spacing near 0.5 is ~1e-16 ≪ 1e-12) and %.17g round-trips, so
// every cold key is unique for any realistic run length while the
// temperature stays in a loss-friendly range.
func coldSpec(n uint64) spec {
	temp := 0.5 + float64(n)*1e-12
	return spec{Kind: "logistic", Params: json.RawMessage(fmt.Sprintf(`{"temp":%.17g}`, temp))}
}

// generator produces one worker's reproducible query stream.
type generator struct {
	rng  *rand.Rand
	sc   *Scenario
	cold *atomic.Uint64 // shared cold-query sequence
}

func (g *generator) next() spec {
	if g.sc.Distinct {
		return distinctSpec(g.cold.Add(1))
	}
	if g.rng.Float64() < g.sc.HotRatio {
		return hotSpec(g.rng.Intn(g.sc.HotKeys))
	}
	return coldSpec(g.cold.Add(1))
}

func (g *generator) batch() []spec {
	out := make([]spec, g.sc.BatchSize)
	for i := range out {
		out[i] = g.next()
	}
	return out
}

// LatencySummary is the request-latency distribution in milliseconds.
type LatencySummary struct {
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P99  float64 `json:"p99_ms"`
	Max  float64 `json:"max_ms"`
	Mean float64 `json:"mean_ms"`
}

// Report is the measured outcome of a scenario run.
type Report struct {
	// Scenario echoes the normalized scenario that ran.
	Scenario Scenario `json:"scenario"`
	// StartedAt/ElapsedSec frame the measured window.
	StartedAt  time.Time `json:"started_at"`
	ElapsedSec float64   `json:"elapsed_sec"`

	// Requests counts HTTP round trips; Queries counts individual query
	// answers inside them (Requests × batch size, minus failures).
	Requests int `json:"requests"`
	Queries  int `json:"queries"`
	// CacheHits / CacheHitRate measure the zero-spend read path; Tops
	// counts budget-spending answers; Bottoms the ⊥ answers.
	CacheHits    int     `json:"cache_hits"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Tops         int     `json:"tops"`
	Bottoms      int     `json:"bottoms"`
	// Rejected counts budget-exhaustion outcomes (HTTP 429 or the
	// equivalent per-item error); ItemErrors counts other per-item
	// failures.
	Rejected   int `json:"rejected"`
	ItemErrors int `json:"item_errors"`
	// StatusCounts is every HTTP status seen; Status5xx the server-fault
	// subtotal (the CI gate requires zero); TransportErrors counts
	// requests that never produced a status.
	StatusCounts    map[string]int `json:"status_counts"`
	Status5xx       int            `json:"status_5xx"`
	TransportErrors int            `json:"transport_errors"`

	// ThroughputRPS / ThroughputQPS are requests and queries per second of
	// measured wall clock.
	ThroughputRPS float64 `json:"throughput_rps"`
	ThroughputQPS float64 `json:"throughput_qps"`
	// Latency summarizes per-request round-trip times.
	Latency LatencySummary `json:"latency"`
	// Dropped counts open-loop arrivals shed at the MaxInFlight cap —
	// reported, never silent.
	Dropped int `json:"dropped,omitempty"`
	// CutOff counts requests cancelled by the end of the measured window:
	// excluded from every client-side tally above, but possibly completed
	// (and counted) server-side, so the consistency check allows for them.
	CutOff int `json:"cut_off,omitempty"`

	// SessionsCreated/Resumed/Closed count churn-mode lifecycle activity
	// (a resume is an idle→burst cycle against an existing session — the
	// outside view of an eviction/page-in round trip); ChurnErrors counts
	// failed lifecycle operations during a live window.
	SessionsCreated int `json:"sessions_created,omitempty"`
	SessionsResumed int `json:"sessions_resumed,omitempty"`
	SessionsClosed  int `json:"sessions_closed,omitempty"`
	ChurnErrors     int `json:"churn_errors,omitempty"`

	// Server is the server's own /metrics view of the window (counter
	// deltas between the pre- and post-run scrapes); nil when the target
	// does not expose a metrics registry. See CheckServerConsistency.
	Server *ServerMetrics `json:"server,omitempty"`
}

// collector accumulates request outcomes thread-safely.
type collector struct {
	mu        sync.Mutex
	latencies []float64
	report    Report
}

type outcome struct {
	latencyMS float64
	status    int
	transport bool
	skip      bool // request cut off by the end of the measured window
	queries   int
	hits      int
	tops      int
	bottoms   int
	rejected  int
	itemErrs  int
}

func (c *collector) add(o outcome) {
	if o.skip {
		c.mu.Lock()
		c.report.CutOff++
		c.mu.Unlock()
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r := &c.report
	r.Requests++
	if o.transport {
		r.TransportErrors++
	} else {
		key := fmt.Sprintf("%d", o.status)
		r.StatusCounts[key]++
		if o.status >= 500 {
			r.Status5xx++
		}
		if o.status == http.StatusTooManyRequests {
			r.Rejected++
		}
	}
	r.Queries += o.queries
	r.CacheHits += o.hits
	r.Tops += o.tops
	r.Bottoms += o.bottoms
	r.Rejected += o.rejected
	r.ItemErrors += o.itemErrs
	c.latencies = append(c.latencies, o.latencyMS)
}

// churn applies one lifecycle-counter update under the collector lock.
func (c *collector) churn(f func(*Report)) {
	c.mu.Lock()
	f(&c.report)
	c.mu.Unlock()
}

// queryResult mirrors the server's per-query reply fields loadgen reads.
type queryResult struct {
	Top    bool `json:"top"`
	Cached bool `json:"cached"`
}

// batchResponse mirrors the batch endpoint's reply.
type batchResponse struct {
	Results []struct {
		Result *queryResult `json:"result"`
		Error  string       `json:"error"`
	} `json:"results"`
}

// Runner executes scenarios against a serve endpoint.
type Runner struct {
	// Client is the HTTP client (default: 30s timeout).
	Client *http.Client
}

func (r *Runner) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// target is one session pinned to the endpoint that must serve it.
type target struct {
	id   string
	base string
}

// Run executes sc until its duration elapses (or ctx cancels) and returns
// the measured report. In closed/open mode, sessions are created before
// and closed after the measured window (creation failures abort the run);
// churn mode creates and retires its own sessions inside the window.
func (r *Runner) Run(ctx context.Context, sc Scenario) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sc = sc.normalized()
	bases := sc.bases()

	var sessions []target
	if sc.Mode != "churn" {
		sessions = make([]target, sc.Sessions)
		for i := range sessions {
			params := map[string]any{}
			for k, v := range sc.SessionParams {
				params[k] = v
			}
			if len(sc.Accountants) > 0 {
				params["accountant"] = sc.Accountants[i%len(sc.Accountants)]
			}
			base := bases[i%len(bases)]
			id, err := r.createSession(ctx, base, params)
			if err != nil {
				return nil, fmt.Errorf("loadgen: creating session %d/%d: %w", i+1, sc.Sessions, err)
			}
			sessions[i] = target{id: id, base: base}
		}
		defer func() {
			for _, t := range sessions {
				r.closeSession(t.base, t.id)
			}
		}()
	}

	col := &collector{report: Report{
		Scenario:     sc,
		StartedAt:    time.Now(),
		StatusCounts: map[string]int{},
	}}
	// Pre-run scrape, after session creation so only the measured window's
	// query traffic lands between the two snapshots. A failed scrape (no
	// /metrics on the target) leaves Report.Server nil rather than failing
	// the run — consistency gating is opt-in at the CLI.
	metricsURLs := sc.MetricsURLs
	if len(metricsURLs) == 0 {
		metricsURLs = bases
	}
	preScrape, scrapeErr := r.scrapeAll(ctx, metricsURLs)
	runCtx, cancel := context.WithTimeout(ctx, time.Duration(sc.DurationSec*float64(time.Second)))
	defer cancel()
	start := time.Now()
	var cold atomic.Uint64

	switch sc.Mode {
	case "open":
		r.runOpen(runCtx, sessions, &sc, &cold, col)
	case "churn":
		r.runChurn(runCtx, bases, &sc, &cold, col)
	default:
		r.runClosed(runCtx, sessions, &sc, &cold, col)
	}

	elapsed := time.Since(start).Seconds()
	if scrapeErr == nil {
		// Post-run scrape after every worker has joined (and before the
		// deferred session closes, which touch no query counters).
		if postScrape, err := r.scrapeAll(ctx, metricsURLs); err == nil {
			col.report.Server = serverDeltas(preScrape, postScrape)
		}
	}
	rep := &col.report
	rep.ElapsedSec = elapsed
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / elapsed
		rep.ThroughputQPS = float64(rep.Queries) / elapsed
	}
	if rep.Queries > 0 {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(rep.Queries)
	}
	rep.Latency = summarize(col.latencies)
	return rep, nil
}

// runClosed keeps Concurrency workers per session in a request loop until
// ctx expires.
func (r *Runner) runClosed(ctx context.Context, sessions []target, sc *Scenario, cold *atomic.Uint64, col *collector) {
	var wg sync.WaitGroup
	for si, t := range sessions {
		for w := 0; w < sc.Concurrency; w++ {
			wg.Add(1)
			gen := &generator{rng: rand.New(rand.NewSource(sc.Seed + int64(si*1000+w))), sc: sc, cold: cold}
			go func(t target) {
				defer wg.Done()
				for ctx.Err() == nil {
					col.add(r.issue(ctx, t.base, t.id, gen))
				}
			}(t)
		}
	}
	wg.Wait()
}

// runChurn cycles whole session lifetimes: each of Sessions workers
// repeatedly creates a session on its endpoint, bursts queries at it,
// idles long enough for a server-side eviction, resumes (forcing a
// page-in), and then either closes the session or abandons it to the
// server's idle janitor. Lifecycle failures during a live window are
// counted, never silent.
func (r *Runner) runChurn(ctx context.Context, bases []string, sc *Scenario, cold *atomic.Uint64, col *collector) {
	var wg sync.WaitGroup
	for w := 0; w < sc.Sessions; w++ {
		wg.Add(1)
		gen := &generator{rng: rand.New(rand.NewSource(sc.Seed + int64(w))), sc: sc, cold: cold}
		base := bases[w%len(bases)]
		go func(w int) {
			defer wg.Done()
			for n := 0; ctx.Err() == nil; n++ {
				r.churnCycle(ctx, base, sc, gen, col, w*100000+n)
			}
		}(w)
	}
	wg.Wait()
}

// churnCycle runs one session lifetime for a churn worker.
func (r *Runner) churnCycle(ctx context.Context, base string, sc *Scenario, gen *generator, col *collector, n int) {
	params := map[string]any{}
	for k, v := range sc.SessionParams {
		params[k] = v
	}
	if len(sc.Accountants) > 0 {
		params["accountant"] = sc.Accountants[n%len(sc.Accountants)]
	}
	id, err := r.createSession(ctx, base, params)
	if err != nil {
		if ctx.Err() == nil {
			col.churn(func(rep *Report) { rep.ChurnErrors++ })
		}
		return
	}
	col.churn(func(rep *Report) { rep.SessionsCreated++ })
	burst := func() {
		for q := 0; q < sc.Churn.QueriesPerBurst && ctx.Err() == nil; q++ {
			col.add(r.issue(ctx, base, id, gen))
		}
	}
	burst()
	idle := time.Duration(sc.Churn.IdleSec * float64(time.Second))
	for i := 0; i < sc.Churn.Resumes && ctx.Err() == nil; i++ {
		select {
		case <-ctx.Done():
			return
		case <-time.After(idle):
		}
		burst()
		col.churn(func(rep *Report) { rep.SessionsResumed++ })
	}
	if ctx.Err() == nil && gen.rng.Float64() < sc.Churn.CloseRatio {
		if r.closeSession(base, id) {
			col.churn(func(rep *Report) { rep.SessionsClosed++ })
		} else {
			col.churn(func(rep *Report) { rep.ChurnErrors++ })
		}
	}
}

// runOpen issues arrivals at the scenario rate, shedding (and counting)
// arrivals beyond MaxInFlight instead of queueing them — queueing would
// silently convert an open-loop test into a closed-loop one.
func (r *Runner) runOpen(ctx context.Context, sessions []target, sc *Scenario, cold *atomic.Uint64, col *collector) {
	interval := time.Duration(float64(time.Second) / sc.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	sem := make(chan struct{}, sc.MaxInFlight)
	var wg sync.WaitGroup
	var next atomic.Uint64
	var genMu sync.Mutex
	gen := &generator{rng: rand.New(rand.NewSource(sc.Seed)), sc: sc, cold: cold}
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-tick.C:
			select {
			case sem <- struct{}{}:
			default:
				col.mu.Lock()
				col.report.Dropped++
				col.mu.Unlock()
				continue
			}
			t := sessions[int(next.Add(1))%len(sessions)]
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				// The generator is shared across arrival goroutines; its
				// randomness is serialized so the stream stays reproducible.
				genMu.Lock()
				var payload []byte
				var isBatch bool
				payload, isBatch = gen.payload()
				genMu.Unlock()
				col.add(r.send(ctx, t.base, t.id, payload, isBatch))
			}()
		}
	}
}

// payload renders the next request body.
func (g *generator) payload() ([]byte, bool) {
	if g.sc.BatchSize > 1 {
		body, _ := json.Marshal(map[string]any{"queries": g.batch()})
		return body, true
	}
	body, _ := json.Marshal(g.next())
	return body, false
}

// issue generates and sends one request for a closed-loop worker.
func (r *Runner) issue(ctx context.Context, base, session string, gen *generator) outcome {
	payload, isBatch := gen.payload()
	return r.send(ctx, base, session, payload, isBatch)
}

// send performs one query or batch request and classifies the outcome.
func (r *Runner) send(ctx context.Context, base, session string, payload []byte, isBatch bool) outcome {
	url := base + "/v1/sessions/" + session + "/query"
	if isBatch {
		url = base + "/v1/sessions/" + session + "/queries:batch"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return outcome{transport: true}
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := r.client().Do(req)
	lat := time.Since(t0).Seconds() * 1000
	if err != nil {
		if ctx.Err() != nil {
			// The measured window closed mid-request: shutdown, not a
			// failure — excluded from the report entirely.
			return outcome{skip: true}
		}
		return outcome{latencyMS: lat, transport: true}
	}
	defer resp.Body.Close()
	o := outcome{latencyMS: lat, status: resp.StatusCode}
	if resp.StatusCode != http.StatusOK {
		return o
	}
	dec := json.NewDecoder(resp.Body)
	if isBatch {
		var br batchResponse
		if err := dec.Decode(&br); err != nil {
			o.transport = true
			return o
		}
		for _, item := range br.Results {
			switch {
			case item.Result != nil:
				o.queries++
				classify(item.Result, &o)
			case strings.Contains(item.Error, "budget exhausted"):
				o.rejected++
			default:
				o.itemErrs++
			}
		}
		return o
	}
	var qr queryResult
	if err := dec.Decode(&qr); err != nil {
		o.transport = true
		return o
	}
	o.queries++
	classify(&qr, &o)
	return o
}

func classify(qr *queryResult, o *outcome) {
	switch {
	case qr.Cached:
		o.hits++
	case qr.Top:
		o.tops++
	default:
		o.bottoms++
	}
}

// createSession opens one session and returns its id.
func (r *Runner) createSession(ctx context.Context, base string, params map[string]any) (string, error) {
	body, err := json.Marshal(params)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/sessions", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var created struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, created.Error)
	}
	return created.ID, nil
}

// closeSession deletes one session, reporting success. It deliberately
// takes no context: end-of-run cleanup must still run after the measured
// window's context has expired.
func (r *Runner) closeSession(base, id string) bool {
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+id, nil)
	if err != nil {
		return false
	}
	resp, err := r.client().Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// summarize computes the latency distribution.
func summarize(lat []float64) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	pct := func(p float64) float64 {
		idx := int(math.Ceil(p*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return sorted[idx]
	}
	return LatencySummary{
		P50:  pct(0.50),
		P90:  pct(0.90),
		P99:  pct(0.99),
		Max:  sorted[len(sorted)-1],
		Mean: sum / float64(len(sorted)),
	}
}
