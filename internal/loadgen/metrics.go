package loadgen

// metrics.go is loadgen's server-side view: Run scrapes the target's
// GET /metrics?format=json endpoint immediately before and after the
// measured window and reports the counter deltas next to the client-side
// tallies. CheckServerConsistency then cross-checks the two — the server
// cannot under-count what the client observed, and can exceed it only by
// the requests the client gave up on (window cut-offs, transport errors).
// The CI loadtest smoke job runs this as a gate, which makes the metrics
// layer itself a tested artifact rather than write-only telemetry.
//
// Like the rest of the package this file stays a pure HTTP client: it
// decodes the JSON exposition format into mirror structs and imports no
// serving internals.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
)

// metricsSnapshot mirrors the obs JSON exposition shape loadgen reads.
type metricsSnapshot struct {
	Families []struct {
		Name    string `json:"name"`
		Samples []struct {
			Labels map[string]string `json:"labels"`
			Value  float64           `json:"value"`
		} `json:"samples"`
	} `json:"families"`
}

// sum adds the values of every sample of the named family whose labels
// include all of match (nil matches everything).
func (m *metricsSnapshot) sum(name string, match map[string]string) float64 {
	if m == nil {
		return 0
	}
	var total float64
	for _, f := range m.Families {
		if f.Name != name {
			continue
		}
	sample:
		for _, s := range f.Samples {
			for k, v := range match {
				if s.Labels[k] != v {
					continue sample
				}
			}
			total += s.Value
		}
	}
	return total
}

// scrapeMetrics fetches one JSON metrics snapshot. A non-200 (including
// 404 from a server without a metrics registry) is an error the caller
// treats as "server metrics unsupported".
func (r *Runner) scrapeMetrics(ctx context.Context, base string) (*metricsSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics?format=json", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scraping /metrics: status %d", resp.StatusCode)
	}
	var snap metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("loadgen: decoding /metrics: %w", err)
	}
	return &snap, nil
}

// scrapeAll fetches and merges one snapshot per URL. sum() walks every
// family, so concatenating the families makes the merged snapshot report
// fleet-wide totals — the server-side view of a run driven through a
// router is the SUM over its replicas. Any failed scrape fails the whole
// merge: a partial fleet view would silently unbalance the consistency
// check.
func (r *Runner) scrapeAll(ctx context.Context, urls []string) (*metricsSnapshot, error) {
	merged := &metricsSnapshot{}
	for _, u := range urls {
		snap, err := r.scrapeMetrics(ctx, strings.TrimRight(u, "/"))
		if err != nil {
			return nil, err
		}
		merged.Families = append(merged.Families, snap.Families...)
	}
	return merged, nil
}

// ServerMetrics is the server's own view of the measured window: deltas
// of its /metrics counters between the pre- and post-run scrapes.
type ServerMetrics struct {
	// Supported reports that both scrapes succeeded; when false every
	// delta is zero and consistency cannot be checked.
	Supported bool `json:"supported"`
	// Queries/CacheHits/Tops/Bottoms are the answered-query disposition
	// deltas (pmwcm_queries_total).
	Queries   int `json:"queries"`
	CacheHits int `json:"cache_hits"`
	Tops      int `json:"tops"`
	Bottoms   int `json:"bottoms"`
	// Status5xx is the server-fault request delta across all routes
	// (pmwcm_http_requests_total{class="5xx"}).
	Status5xx int `json:"status_5xx"`
}

// delta reads an integer counter movement between two snapshots.
func delta(before, after *metricsSnapshot, name string, match map[string]string) int {
	return int(math.Round(after.sum(name, match) - before.sum(name, match)))
}

// serverDeltas computes the window's ServerMetrics from two scrapes.
func serverDeltas(before, after *metricsSnapshot) *ServerMetrics {
	s := &ServerMetrics{
		Supported: true,
		CacheHits: delta(before, after, "pmwcm_queries_total", map[string]string{"disposition": "hit"}),
		Tops:      delta(before, after, "pmwcm_queries_total", map[string]string{"disposition": "top"}),
		Bottoms:   delta(before, after, "pmwcm_queries_total", map[string]string{"disposition": "bottom"}),
		Status5xx: delta(before, after, "pmwcm_http_requests_total", map[string]string{"class": "5xx"}),
	}
	s.Queries = s.CacheHits + s.Tops + s.Bottoms
	return s
}

// CheckServerConsistency asserts the server's counter deltas agree with
// the client-side report. The client's count is a floor: every answer
// the client decoded was counted by the server first. The ceiling allows
// for requests the server completed but the client never tallied —
// window cut-offs and transport errors, each worth at most one batch of
// queries — so the bound is [client, client + (CutOff+TransportErrors) ×
// BatchSize]. It requires the run to have been the server's only query
// traffic. A nil or unsupported Server is an error: the caller asked for
// a consistency gate the target cannot provide.
func (r *Report) CheckServerConsistency() error {
	s := r.Server
	if s == nil || !s.Supported {
		return fmt.Errorf("loadgen: server metrics unavailable (target has no /metrics registry?)")
	}
	slack := (r.CutOff + r.TransportErrors) * r.Scenario.BatchSize
	check := func(what string, server, client int) error {
		if server < client || server > client+slack {
			return fmt.Errorf("loadgen: server counted %d %s, client %d (allowed slack %d): metrics and report disagree",
				server, what, client, slack)
		}
		return nil
	}
	for _, c := range []struct {
		what           string
		server, client int
	}{
		{"queries", s.Queries, r.Queries},
		{"cache hits", s.CacheHits, r.CacheHits},
		{"tops", s.Tops, r.Tops},
		{"bottoms", s.Bottoms, r.Bottoms},
	} {
		if err := check(c.what, c.server, c.client); err != nil {
			return err
		}
	}
	if s.Status5xx < r.Status5xx {
		return fmt.Errorf("loadgen: server counted %d 5xx responses, client saw %d", s.Status5xx, r.Status5xx)
	}
	return nil
}
