package loadgen

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/service"
	"repro/internal/universe"
)

// TestScenarioDefaults pins the normalized defaults the docs promise.
func TestScenarioDefaults(t *testing.T) {
	sc := Scenario{BaseURL: "http://x"}.normalized()
	if sc.Mode != "closed" || sc.DurationSec != 5 || sc.Sessions != 1 ||
		sc.Concurrency != 2 || sc.BatchSize != 1 || sc.HotRatio != 0.8 ||
		sc.HotKeys != 8 || sc.Seed != 1 {
		t.Fatalf("normalized defaults = %+v", sc)
	}
	// Negative is the explicit all-cold spelling; plain zero (an omitted
	// JSON field) takes the default.
	if got := (Scenario{BaseURL: "http://x", HotRatio: -1}).normalized().HotRatio; got != 0 {
		t.Fatalf("all-cold hot ratio normalized to %v, want 0", got)
	}
	if got := (Scenario{BaseURL: "http://x", HotRatio: 0.3}).normalized().HotRatio; got != 0.3 {
		t.Fatalf("explicit hot ratio normalized to %v, want 0.3", got)
	}
	if err := (Scenario{}).Validate(); err == nil {
		t.Fatal("scenario without base_url validated")
	}
	if err := (Scenario{BaseURLs: []string{"http://x"}}).Validate(); err != nil {
		t.Fatalf("base_urls-only scenario rejected: %v", err)
	}
	if err := (Scenario{BaseURL: "http://x", Mode: "sideways"}).Validate(); err == nil {
		t.Fatal("unknown mode validated")
	}
	// Churn defaults materialize only in churn mode.
	churn := Scenario{BaseURL: "http://x", Mode: "churn"}.normalized()
	if c := churn.Churn; c == nil || c.QueriesPerBurst != 4 || c.IdleSec != 0.5 || c.Resumes != 1 || c.CloseRatio != 0.5 {
		t.Fatalf("churn defaults = %+v", churn.Churn)
	}
	if c := (Scenario{BaseURL: "http://x", Mode: "churn", Churn: &ChurnConfig{CloseRatio: -1}}).normalized().Churn; c.CloseRatio != 0 {
		t.Fatalf("explicit never-close ratio normalized to %v, want 0", c.CloseRatio)
	}
	if (Scenario{BaseURL: "http://x"}).normalized().Churn != nil {
		t.Fatal("closed-mode scenario grew a churn config")
	}
}

// TestGeneratorDeterminism: the same seed yields the same query stream —
// scenarios are reproducible workloads, not noise.
func TestGeneratorDeterminism(t *testing.T) {
	sc := Scenario{BaseURL: "http://x", HotRatio: 0.5, HotKeys: 4, BatchSize: 3}.normalized()
	stream := func() []string {
		var cold atomic.Uint64
		g := &generator{rng: rand.New(rand.NewSource(7)), sc: &sc, cold: &cold}
		var out []string
		for i := 0; i < 50; i++ {
			for _, q := range g.batch() {
				out = append(out, q.Kind+string(q.Params))
			}
		}
		return out
	}
	a, b := stream(), stream()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
	// Hot specs are distinct canonical keys.
	seen := map[string]bool{}
	for h := 0; h < 16; h++ {
		q := hotSpec(h)
		k := q.Kind + string(q.Params)
		if seen[k] {
			t.Fatalf("hot key %d collides on %s", h, k)
		}
		seen[k] = true
	}
	// Cold specs never repeat — including far past the old 100k wrap and
	// never colliding with a hot spec.
	for _, n := range []uint64{1, 2, 99999, 100000, 100001, 200001, 1 << 30, 1<<30 + 1} {
		q := coldSpec(n)
		k := q.Kind + string(q.Params)
		if seen[k] {
			t.Fatalf("cold spec %d collides on %s", n, k)
		}
		seen[k] = true
	}
}

// TestSummarize pins the percentile convention on a known distribution.
func TestSummarize(t *testing.T) {
	lat := make([]float64, 100)
	for i := range lat {
		lat[i] = float64(i + 1) // 1..100 ms
	}
	s := summarize(lat)
	if s.P50 != 50 || s.P90 != 90 || s.P99 != 99 || s.Max != 100 {
		t.Fatalf("summary %+v", s)
	}
	if z := summarize(nil); z != (LatencySummary{}) {
		t.Fatalf("empty summary %+v", z)
	}
}

// startService boots a real serving subsystem on an httptest listener —
// the load generator exercises exactly the HTTP surface production runs,
// including the obs middleware and /metrics registry (withMetrics false
// mimics an older target without a registry).
func startService(t *testing.T, withMetrics bool) *httptest.Server {
	t.Helper()
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	src := sample.New(7)
	pop, err := dataset.Skewed(g, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.SampleFrom(src.Split(), pop, 50000)
	var reg *obs.Registry
	if withMetrics {
		reg = obs.NewRegistry()
	}
	m, err := service.New(service.Config{
		Data:   data,
		Source: src.Split(),
		Defaults: service.SessionParams{
			Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 500, TBudget: 4,
		},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	handler := service.NewHandler(m)
	if withMetrics {
		handler = obs.Middleware(reg, handler, obs.MiddlewareOptions{})
	}
	ts := httptest.NewServer(handler)
	t.Cleanup(func() {
		ts.Close()
		m.Shutdown()
	})
	return ts
}

// TestRunClosedLoop is the in-process load smoke: a short mixed scenario
// against a real handler must complete with traffic, a nonzero cache-hit
// rate, and zero server faults.
func TestRunClosedLoop(t *testing.T) {
	ts := startService(t, true)
	rep, err := (&Runner{}).Run(context.Background(), Scenario{
		BaseURL:     ts.URL,
		DurationSec: 0.4,
		Sessions:    2,
		Concurrency: 2,
		BatchSize:   4,
		HotRatio:    0.8,
		HotKeys:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Queries == 0 {
		t.Fatalf("no traffic measured: %+v", rep)
	}
	if rep.CacheHits == 0 || rep.CacheHitRate <= 0 {
		t.Fatalf("hot-key scenario produced no cache hits: %+v", rep)
	}
	if rep.Status5xx != 0 || rep.TransportErrors != 0 {
		t.Fatalf("server faults under load: %+v", rep)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Fatalf("degenerate latency summary: %+v", rep.Latency)
	}
	if rep.ThroughputQPS <= 0 {
		t.Fatalf("no throughput: %+v", rep)
	}
	// The target exposes /metrics, so the report carries the server's own
	// view of the window and the two must agree — the same cross-check CI
	// runs via `pmwcm loadtest -check-metrics`.
	if rep.Server == nil || !rep.Server.Supported {
		t.Fatalf("server metrics not collected: %+v", rep.Server)
	}
	if rep.Server.Queries == 0 || rep.Server.CacheHits == 0 {
		t.Fatalf("server counted no traffic: %+v", rep.Server)
	}
	if err := rep.CheckServerConsistency(); err != nil {
		t.Fatalf("server/client consistency: %v", err)
	}
}

// TestServerMetricsUnsupported: a target without a metrics registry
// yields a nil Server report, and asking for the consistency gate anyway
// is an explicit error rather than a silent pass.
func TestServerMetricsUnsupported(t *testing.T) {
	ts := startService(t, false)
	rep, err := (&Runner{}).Run(context.Background(), Scenario{
		BaseURL:     ts.URL,
		DurationSec: 0.2,
		HotRatio:    0.9,
		HotKeys:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Server != nil {
		t.Fatalf("server metrics from a target without /metrics: %+v", rep.Server)
	}
	if err := rep.CheckServerConsistency(); err == nil {
		t.Fatal("consistency check passed without server metrics")
	}
}

// TestCheckServerConsistencyBounds pins the slack arithmetic on a
// synthetic report, independent of live traffic.
func TestCheckServerConsistencyBounds(t *testing.T) {
	mk := func(server ServerMetrics) *Report {
		return &Report{
			Scenario: Scenario{BatchSize: 4},
			Queries:  100, CacheHits: 60, Tops: 30, Bottoms: 10,
			CutOff: 2, TransportErrors: 1, // slack = 3 × 4 = 12
			Server: &server,
		}
	}
	ok := ServerMetrics{Supported: true, Queries: 100, CacheHits: 60, Tops: 30, Bottoms: 10}
	if err := mk(ok).CheckServerConsistency(); err != nil {
		t.Fatalf("exact match rejected: %v", err)
	}
	within := ServerMetrics{Supported: true, Queries: 112, CacheHits: 72, Tops: 30, Bottoms: 10}
	if err := mk(within).CheckServerConsistency(); err != nil {
		t.Fatalf("within-slack surplus rejected: %v", err)
	}
	over := ServerMetrics{Supported: true, Queries: 113, CacheHits: 73, Tops: 30, Bottoms: 10}
	if err := mk(over).CheckServerConsistency(); err == nil {
		t.Fatal("over-slack surplus accepted")
	}
	under := ServerMetrics{Supported: true, Queries: 99, CacheHits: 60, Tops: 29, Bottoms: 10}
	if err := mk(under).CheckServerConsistency(); err == nil {
		t.Fatal("server under-count accepted")
	}
	faults := ok
	faults.Status5xx = 0
	rep := mk(faults)
	rep.Status5xx = 1
	if err := rep.CheckServerConsistency(); err == nil {
		t.Fatal("server missing client-observed 5xx accepted")
	}
}

// TestRunChurnMultiTarget drives two replicas at once in churn mode: the
// workload cycles session lifetimes round-robin across the endpoints, and
// the server-side consistency check runs against the SUM of both
// replicas' /metrics — the same shape the fleet CI job uses (drive the
// router, scrape the replicas).
func TestRunChurnMultiTarget(t *testing.T) {
	a, b := startService(t, true), startService(t, true)
	rep, err := (&Runner{}).Run(context.Background(), Scenario{
		BaseURLs:    []string{a.URL, b.URL},
		MetricsURLs: []string{a.URL, b.URL},
		Mode:        "churn",
		DurationSec: 0.8,
		Sessions:    4,
		HotRatio:    0.8,
		HotKeys:     4,
		Churn:       &ChurnConfig{QueriesPerBurst: 3, IdleSec: 0.05, Resumes: 1, CloseRatio: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SessionsCreated == 0 || rep.SessionsResumed == 0 {
		t.Fatalf("churn lifecycle never cycled: %+v", rep)
	}
	if rep.ChurnErrors != 0 {
		t.Fatalf("%d churn lifecycle errors: %+v", rep.ChurnErrors, rep)
	}
	if rep.Queries == 0 {
		t.Fatalf("no traffic measured: %+v", rep)
	}
	if rep.Status5xx != 0 || rep.TransportErrors != 0 {
		t.Fatalf("server faults under churn: %+v", rep)
	}
	if rep.Server == nil || !rep.Server.Supported {
		t.Fatalf("merged server metrics not collected: %+v", rep.Server)
	}
	if err := rep.CheckServerConsistency(); err != nil {
		t.Fatalf("fleet-summed consistency: %v", err)
	}
	// Both replicas saw sessions: round-robin assignment is real fan-out.
	for name, ts := range map[string]*httptest.Server{"a": a, "b": b} {
		snap, err := (&Runner{}).scrapeMetrics(context.Background(), ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		if snap.sum("pmwcm_queries_total", nil) == 0 {
			t.Fatalf("replica %s served no queries", name)
		}
	}
}

// TestRunOpenLoop covers the fixed-rate arrival process, single-query
// endpoint, and multi-accountant fan-out.
func TestRunOpenLoop(t *testing.T) {
	ts := startService(t, true)
	rep, err := (&Runner{}).Run(context.Background(), Scenario{
		BaseURL:     ts.URL,
		Mode:        "open",
		Rate:        200,
		DurationSec: 0.4,
		Sessions:    3,
		Accountants: []string{"advanced", "zcdp"},
		HotRatio:    0.9,
		HotKeys:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatalf("no traffic measured: %+v", rep)
	}
	if rep.Status5xx != 0 {
		t.Fatalf("server faults under load: %+v", rep)
	}
	if rep.CacheHits == 0 {
		t.Fatalf("hot open-loop scenario produced no cache hits: %+v", rep)
	}
}
