// Package workload provides canonical query workloads from the private
// query-release literature, as families of CM queries:
//
//   - width-w marginals (conjunctions) on sign-encoded universes — the
//     workload most of the efficient-release literature the paper cites
//     (§4.3: [GHRU11, HRS12, TUV12, CTUW14]) is about;
//   - parity queries, the hard case for many release algorithms;
//   - random halfspace (threshold) queries;
//   - the regression/classification CM workloads used across the
//     experiments (random-target squared losses, logistic families).
//
// All generators are deterministic given their sample.Source.
package workload

import (
	"fmt"
	"math"

	"repro/internal/convex"
	"repro/internal/sample"
	"repro/internal/universe"
)

// Marginals returns the width-w marginal (conjunction) queries over the
// first featDim coordinates of the universe's records: for each w-subset S
// of coordinates and sign pattern s ∈ {±1}^w,
//
//	q_{S,s}(x) = 1 iff sign(x_j) = s_j for every j ∈ S.
//
// The count is C(featDim, w)·2^w; maxQueries (when > 0) truncates
// deterministically. Records are sign-encoded: a coordinate's sign carries
// the attribute value (as in the hypercube universe {±1/√d}^d).
func Marginals(featDim, w, maxQueries int) ([]*convex.LinearQuery, error) {
	if w < 1 || w > featDim {
		return nil, fmt.Errorf("workload: width %d outside [1, %d]", w, featDim)
	}
	var out []*convex.LinearQuery
	subsets := combinations(featDim, w)
	for _, subset := range subsets {
		for pattern := 0; pattern < 1<<uint(w); pattern++ {
			subset := append([]int(nil), subset...)
			pattern := pattern
			name := fmt.Sprintf("marginal%v/%b", subset, pattern)
			q, err := convex.NewLinearQuery(name, func(x []float64) float64 {
				for bit, j := range subset {
					want := pattern>>uint(bit)&1 == 1
					if (x[j] > 0) != want {
						return 0
					}
				}
				return 1
			})
			if err != nil {
				return nil, err
			}
			out = append(out, q.WithSupport(subset))
			if maxQueries > 0 && len(out) >= maxQueries {
				return out, nil
			}
		}
	}
	return out, nil
}

// combinations enumerates all w-subsets of {0, …, n−1} in lexicographic
// order.
func combinations(n, w int) [][]int {
	var out [][]int
	idx := make([]int, w)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, append([]int(nil), idx...))
		// Advance.
		i := w - 1
		for i >= 0 && idx[i] == n-w+i {
			i--
		}
		if i < 0 {
			return out
		}
		idx[i]++
		for j := i + 1; j < w; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// Parities returns parity queries over sign-encoded records: for each
// subset S in the provided list, q_S(x) = 1 iff ∏_{j∈S} sign(x_j) = +1.
func Parities(subsets [][]int) ([]*convex.LinearQuery, error) {
	out := make([]*convex.LinearQuery, 0, len(subsets))
	for i, subset := range subsets {
		if len(subset) == 0 {
			return nil, fmt.Errorf("workload: parity subset %d is empty", i)
		}
		subset := append([]int(nil), subset...)
		q, err := convex.NewLinearQuery(fmt.Sprintf("parity%v", subset), func(x []float64) float64 {
			neg := false
			for _, j := range subset {
				if x[j] < 0 {
					neg = !neg
				}
			}
			if neg {
				return 0
			}
			return 1
		})
		if err != nil {
			return nil, err
		}
		out = append(out, q.WithSupport(subset))
	}
	return out, nil
}

// RandomParities returns k parity queries over random subsets of
// {0, …, featDim−1} with sizes in [1, maxWidth].
func RandomParities(src *sample.Source, featDim, maxWidth, k int) ([]*convex.LinearQuery, error) {
	if maxWidth < 1 || maxWidth > featDim {
		return nil, fmt.Errorf("workload: maxWidth %d outside [1, %d]", maxWidth, featDim)
	}
	subsets := make([][]int, k)
	for i := range subsets {
		w := 1 + src.Intn(maxWidth)
		perm := src.Perm(featDim)
		subsets[i] = perm[:w]
	}
	return Parities(subsets)
}

// Halfspaces returns k random threshold counting queries
// q(x) = 1{⟨w, x⟩ ≥ t} with w uniform on the sphere and t small.
func Halfspaces(src *sample.Source, u universe.Universe, k int) ([]*convex.LinearQuery, error) {
	out := make([]*convex.LinearQuery, 0, k)
	for i := 0; i < k; i++ {
		w := src.UnitVec(u.Dim())
		thresh := (src.Float64() - 0.5) * 0.5
		q, err := convex.NewLinearQuery(fmt.Sprintf("halfspace%d", i), func(x []float64) float64 {
			var s float64
			for j := range w {
				s += w[j] * x[j]
			}
			if s >= thresh {
				return 1
			}
			return 0
		})
		if err != nil {
			return nil, err
		}
		supp := make([]int, 0, len(w))
		for j, wj := range w {
			if wj != 0 {
				supp = append(supp, j)
			}
		}
		out = append(out, q.WithSupport(supp))
	}
	return out, nil
}

// Regressions returns k random-target squared-loss CM queries over a
// labeled grid: query i asks for the least-squares predictor of the random
// attribute ⟨aᵢ, x⟩ from the features.
func Regressions(src *sample.Source, g *universe.LabeledGrid, k int) ([]convex.Loss, error) {
	ball, err := convex.NewL2Ball(g.FeatureDim(), 1)
	if err != nil {
		return nil, err
	}
	featBound := 1.0
	targetBound := math.Sqrt(2)
	out := make([]convex.Loss, 0, k)
	for i := 0; i < k; i++ {
		a := src.UnitVec(g.Dim())
		sq, err := convex.NewSquared(fmt.Sprintf("regress%d", i), ball, a, featBound, targetBound)
		if err != nil {
			return nil, err
		}
		out = append(out, sq)
	}
	return out, nil
}

// Classifications returns k logistic CM queries with randomized margins
// and temperatures over a labeled grid.
func Classifications(src *sample.Source, g *universe.LabeledGrid, k int) ([]convex.Loss, error) {
	ball, err := convex.NewL2Ball(g.FeatureDim(), 1)
	if err != nil {
		return nil, err
	}
	out := make([]convex.Loss, 0, k)
	for i := 0; i < k; i++ {
		margin := (src.Float64() - 0.5) * 0.4
		temp := 0.3 + src.Float64()*0.7
		lg, err := convex.NewLogistic(fmt.Sprintf("classify%d", i), ball, margin, temp, 1.0)
		if err != nil {
			return nil, err
		}
		out = append(out, lg)
	}
	return out, nil
}

// AsLosses upcasts typed linear queries to the generic Loss interface.
func AsLosses(qs []*convex.LinearQuery) []convex.Loss {
	out := make([]convex.Loss, len(qs))
	for i, q := range qs {
		out[i] = q
	}
	return out
}
