package workload

import (
	"math"
	"testing"

	"repro/internal/histogram"
	"repro/internal/sample"
	"repro/internal/universe"
)

func cube(t *testing.T, d int) *universe.Hypercube {
	t.Helper()
	u, err := universe.NewHypercube(d)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestCombinations(t *testing.T) {
	got := combinations(4, 2)
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("combinations[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
	if got := combinations(3, 3); len(got) != 1 {
		t.Errorf("C(3,3) = %d subsets", len(got))
	}
}

func TestMarginalsCountAndUniformAnswers(t *testing.T) {
	u := cube(t, 4)
	qs, err := Marginals(4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// C(4,2)·2² = 24 queries.
	if len(qs) != 24 {
		t.Fatalf("marginal count = %d, want 24", len(qs))
	}
	// On the uniform hypercube every width-2 marginal has answer 1/4.
	h := histogram.Uniform(u)
	for _, q := range qs {
		if got := q.ExactMinimize(h)[0]; math.Abs(got-0.25) > 1e-9 {
			t.Fatalf("%s uniform answer = %v, want 0.25", q.Name(), got)
		}
	}
	// Truncation.
	qs, err = Marginals(4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 5 {
		t.Errorf("truncated count = %d", len(qs))
	}
	if _, err := Marginals(4, 0, 0); err == nil {
		t.Error("w=0 accepted")
	}
	if _, err := Marginals(4, 5, 0); err == nil {
		t.Error("w>d accepted")
	}
}

func TestMarginalsDistinct(t *testing.T) {
	u := cube(t, 3)
	qs, err := Marginals(3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 3·2 = 6 queries; on a point mass they give distinct answer patterns.
	if len(qs) != 6 {
		t.Fatalf("count = %d", len(qs))
	}
	x := u.Point(5)
	var ones int
	for _, q := range qs {
		if q.Predicate(x) == 1 {
			ones++
		}
	}
	// Exactly one sign pattern matches per coordinate → 3 of 6 fire.
	if ones != 3 {
		t.Errorf("%d marginals fired on a single record, want 3", ones)
	}
}

func TestParities(t *testing.T) {
	u := cube(t, 3)
	qs, err := Parities([][]int{{0}, {0, 1}, {0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	h := histogram.Uniform(u)
	// Uniform hypercube: every parity has answer 1/2.
	for _, q := range qs {
		if got := q.ExactMinimize(h)[0]; math.Abs(got-0.5) > 1e-9 {
			t.Errorf("%s uniform answer = %v, want 0.5", q.Name(), got)
		}
	}
	// Parity value check on a concrete record: all-positive point → +1
	// parity everywhere.
	allPos := -1
	for i := 0; i < u.Size(); i++ {
		pos := true
		for _, v := range u.Point(i) {
			if v < 0 {
				pos = false
				break
			}
		}
		if pos {
			allPos = i
			break
		}
	}
	for _, q := range qs {
		if q.Predicate(u.Point(allPos)) != 1 {
			t.Errorf("%s on all-positive record = 0", q.Name())
		}
	}
	if _, err := Parities([][]int{{}}); err == nil {
		t.Error("empty subset accepted")
	}
}

func TestRandomParities(t *testing.T) {
	src := sample.New(1)
	qs, err := RandomParities(src, 5, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 20 {
		t.Fatalf("count = %d", len(qs))
	}
	if _, err := RandomParities(src, 5, 0, 3); err == nil {
		t.Error("maxWidth=0 accepted")
	}
	if _, err := RandomParities(src, 5, 6, 3); err == nil {
		t.Error("maxWidth>d accepted")
	}
}

func TestHalfspaces(t *testing.T) {
	u := cube(t, 4)
	src := sample.New(2)
	qs, err := Halfspaces(src, u, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 15 {
		t.Fatalf("count = %d", len(qs))
	}
	// Predicates are {0,1}-valued over the whole universe.
	for _, q := range qs {
		for i := 0; i < u.Size(); i++ {
			if v := q.Predicate(u.Point(i)); v != 0 && v != 1 {
				t.Fatalf("%s value %v", q.Name(), v)
			}
		}
	}
}

func TestRegressionsAndClassifications(t *testing.T) {
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	src := sample.New(3)
	rs, err := Regressions(src, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 7 {
		t.Fatalf("regressions = %d", len(rs))
	}
	cs, err := Classifications(src, g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 5 {
		t.Fatalf("classifications = %d", len(cs))
	}
	// All are 1-Lipschitz by construction.
	for _, l := range append(rs, cs...) {
		if l.Lipschitz() > 1+1e-12 {
			t.Errorf("%s Lipschitz = %v", l.Name(), l.Lipschitz())
		}
		if l.Domain().Dim() != 2 {
			t.Errorf("%s domain dim = %d", l.Name(), l.Domain().Dim())
		}
	}
}

func TestAsLosses(t *testing.T) {
	qs, err := Marginals(3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ls := AsLosses(qs)
	if len(ls) != 2 {
		t.Fatalf("len = %d", len(ls))
	}
	if ls[0].Name() != qs[0].Name() {
		t.Error("order not preserved")
	}
}
