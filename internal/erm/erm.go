// Package erm implements differentially private oracles for a *single*
// convex-minimization query — the black box A′ that paper Figure 3 consumes
// and §4.2 instantiates:
//
//   - NoisyGD        — noisy projected gradient descent, the generic
//     Lipschitz/bounded oracle in the style of Bassily–Smith–Thakurta
//     (paper Theorem 4.1);
//   - OutputPerturbation — exact minimization plus calibrated output noise,
//     valid for σ-strongly convex losses in the style of
//     Chaudhuri–Monteleoni–Sarwate (paper Theorem 4.5 regime);
//   - NetExpMech     — exponential mechanism over a public candidate net,
//     a generic fallback for any bounded loss;
//   - GLMReduction   — random-projection reduction for unconstrained
//     generalized linear models in the spirit of Jain–Thakurta (paper
//     Theorem 4.3): optimization happens in a low-dimensional projected
//     space, so error does not grow with the ambient dimension d;
//   - NonPrivate     — the exact minimizer, as an accuracy ceiling for
//     experiments (not DP; refuses to report a privacy guarantee).
//
// Every oracle satisfies the same contract: Answer(src, ℓ, D, ε, δ) is
// (ε, δ)-DP with respect to replacing one row of D, and returns a point of
// the loss's domain. The paper's algorithm only relies on this contract
// (assumptions (2) in §3.3), so oracles are interchangeable; the
// experiments exploit that to reproduce the separate rows of Table 1.
package erm

import (
	"fmt"
	"math"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/mech"
	"repro/internal/optimize"
	"repro/internal/sample"
	"repro/internal/universe"
	"repro/internal/vecmath"
	"repro/internal/xeval"
)

// ensureDenseData guards the oracles whose Answer sweeps the full universe
// histogram: past the dense-enumeration limit they cannot run, and the
// caller should pair the factored engine with a histogram-free oracle
// (LaplaceLinear answers from rows alone).
func ensureDenseData(name string, data *dataset.Dataset) error {
	if err := universe.EnsureDense(data.U); err != nil {
		return fmt.Errorf("erm: oracle %q: %w", name, err)
	}
	return nil
}

// Oracle answers one CM query under (ε, δ)-differential privacy.
type Oracle interface {
	// Name identifies the oracle in reports.
	Name() string
	// Answer returns a private approximate minimizer of l on data.
	Answer(src *sample.Source, l convex.Loss, data *dataset.Dataset, eps, delta float64) ([]float64, error)
}

// CostReporter is implemented by oracles that can declare the privacy cost
// of one Answer invocation in the tightest calculus they certify —
// Gaussian-noise oracles report their zCDP parameter ρ, Laplace- and
// exponential-mechanism-based ones their pure-DP cost — so a
// mech.Accountant can compose spends more tightly than the generic (ε, δ)
// declaration allows. AnswerCost must be deterministic and data-independent
// (it is consulted at planning time, before any data access); for Gaussian
// oracles this holds because ρ = Δ²/(2σ²) cancels the sensitivity: σ is
// calibrated proportionally to Δ, so ρ depends only on (ε, δ) and the
// oracle's internal schedule.
type CostReporter interface {
	AnswerCost(eps, delta float64) mech.Cost
}

// CostOf returns o's declared cost of one Answer(…, eps, delta) call,
// falling back to the generic (ε, δ)-DP declaration for oracles that do
// not report.
func CostOf(o Oracle, eps, delta float64) mech.Cost {
	if r, ok := o.(CostReporter); ok {
		return r.AnswerCost(eps, delta)
	}
	return mech.ApproxCost(eps, delta)
}

// noisyGDCost is the zCDP cost of iters Gaussian-noise gradient steps under
// the (ε, δ) budget-splitting schedule: each step is calibrated at
// (ε₀, δ₀) = SplitBudget(ε, δ, iters) and costs ρ = ε₀²/(4·ln(1.25/δ₀)).
func noisyGDCost(iters int, eps, delta float64) mech.Cost {
	eps0, delta0, err := mech.SplitBudget(eps, delta, iters)
	if err != nil {
		return mech.ApproxCost(eps, delta)
	}
	rho := float64(iters) * eps0 * eps0 / (4 * math.Log(1.25/delta0))
	return mech.Cost{Eps: eps, Delta: delta, Rho: rho}
}

// gradSensitivity returns the L2 sensitivity of the average gradient under
// row replacement: ‖(1/n)(∇ℓ(θ;x) − ∇ℓ(θ;x′))‖ ≤ 2L/n.
func gradSensitivity(l convex.Loss, n int) float64 {
	return 2 * l.Lipschitz() / float64(n)
}

// NoisyGD is noisy projected full-gradient descent: Iters steps of
//
//	θ_{t+1} = Proj_Θ(θ_t − γ_t·(∇ℓ(θ_t; D) + N(0, σ²·I)))
//
// with σ calibrated so the whole run is (ε, δ)-DP via the paper's
// budget-splitting schedule (Theorem 3.10). It returns the projected
// average iterate. The full gradient is computed from the dataset's
// histogram, which is exact and costs O(|X|·d) per step.
type NoisyGD struct {
	// Iters is the number of gradient steps (default 64).
	Iters int
	// Engine evaluates population gradients chunk-parallel over the
	// universe; nil runs serially. Purely a speed knob: xeval's reductions
	// are worker-count deterministic, so the released answer (and hence
	// the privacy analysis) is identical either way.
	Engine *xeval.Engine
}

// Name implements Oracle.
func (o NoisyGD) Name() string { return "noisygd" }

// AnswerCost implements CostReporter: Iters Gaussian releases.
func (o NoisyGD) AnswerCost(eps, delta float64) mech.Cost {
	iters := o.Iters
	if iters <= 0 {
		iters = 64
	}
	return noisyGDCost(iters, eps, delta)
}

// Answer implements Oracle.
func (o NoisyGD) Answer(src *sample.Source, l convex.Loss, data *dataset.Dataset, eps, delta float64) ([]float64, error) {
	iters := o.Iters
	if iters <= 0 {
		iters = 64
	}
	if err := (mech.Params{Eps: eps, Delta: delta}).Validate(); err != nil {
		return nil, err
	}
	if delta == 0 {
		return nil, fmt.Errorf("erm: NoisyGD requires delta > 0")
	}
	eps0, delta0, err := mech.SplitBudget(eps, delta, iters)
	if err != nil {
		return nil, err
	}
	sens := gradSensitivity(l, data.N())
	sigma, err := mech.GaussianSigma(sens, eps0, delta0)
	if err != nil {
		return nil, err
	}

	if err := ensureDenseData(o.Name(), data); err != nil {
		return nil, err
	}
	dom := l.Domain()
	d := dom.Dim()
	h := data.Histogram()
	theta := dom.Center()
	avg := vecmath.Copy(theta)
	grad := make([]float64, d)
	lip := l.Lipschitz()
	sc := l.StrongConvexity()
	diam := dom.Diameter()
	for t := 1; t <= iters; t++ {
		convex.GradOn(o.Engine, l, grad, theta, h)
		for i := range grad {
			grad[i] += src.Gaussian(0, sigma)
		}
		var step float64
		if sc > 0 {
			step = 1 / (sc * float64(t))
		} else {
			step = diam / (lip * math.Sqrt(float64(t)))
		}
		theta = dom.Project(vecmath.AddScaled(vecmath.Copy(theta), -step, grad))
		for i := range avg {
			avg[i] += (theta[i] - avg[i]) / float64(t+1)
		}
	}
	return dom.Project(avg), nil
}

// OutputPerturbation computes the exact empirical minimizer and adds
// Gaussian noise scaled to the minimizer's stability. For a σ-strongly
// convex, L-Lipschitz loss, replacing one of n rows moves the minimizer by
// at most 2L/(σn) in L2 (the classical ERM stability bound), so releasing
// minimizer + N(0, σ²_noise·I) with σ_noise from the Gaussian mechanism at
// that sensitivity is (ε, δ)-DP.
type OutputPerturbation struct {
	// SolverIters bounds the internal exact solve (default 800).
	SolverIters int
	// Engine parallelizes the internal solve (see NoisyGD.Engine).
	Engine *xeval.Engine
}

// Name implements Oracle.
func (o OutputPerturbation) Name() string { return "outputperturb" }

// AnswerCost implements CostReporter: one Gaussian release at the full
// (ε, δ), whose zCDP cost ρ = Δ²/(2σ²) = ε²/(4·ln(1.25/δ)) is
// sensitivity-independent.
func (o OutputPerturbation) AnswerCost(eps, delta float64) mech.Cost {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return mech.ApproxCost(eps, delta)
	}
	return mech.Cost{Eps: eps, Delta: delta, Rho: eps * eps / (4 * math.Log(1.25/delta))}
}

// Answer implements Oracle. It fails when the loss is not strongly convex.
func (o OutputPerturbation) Answer(src *sample.Source, l convex.Loss, data *dataset.Dataset, eps, delta float64) ([]float64, error) {
	sc := l.StrongConvexity()
	if sc <= 0 {
		return nil, fmt.Errorf("erm: OutputPerturbation requires a strongly convex loss, got σ = %v", sc)
	}
	if delta == 0 {
		return nil, fmt.Errorf("erm: OutputPerturbation requires delta > 0")
	}
	iters := o.SolverIters
	if iters <= 0 {
		iters = 800
	}
	if err := ensureDenseData(o.Name(), data); err != nil {
		return nil, err
	}
	res, err := optimize.Minimize(l, data.Histogram(), optimize.Options{MaxIters: iters, Engine: o.Engine})
	if err != nil {
		return nil, err
	}
	sens := 2 * l.Lipschitz() / (sc * float64(data.N()))
	sigma, err := mech.GaussianSigma(sens, eps, delta)
	if err != nil {
		return nil, err
	}
	dom := l.Domain()
	out := vecmath.Copy(res.Theta)
	for i := range out {
		out[i] += src.Gaussian(0, sigma)
	}
	return dom.Project(out), nil
}

// NetExpMech runs the exponential mechanism over a public net of candidate
// parameters: the domain center plus Candidates−1 random domain points
// (drawn from src before any data access, hence data-independent). Scores
// are the negated empirical losses; the score sensitivity is range/n where
// range is the public worst-case spread of per-record loss values over the
// candidate set.
type NetExpMech struct {
	// Candidates is the net size (default 64).
	Candidates int
	// Engine parallelizes the candidate scoring (see NoisyGD.Engine).
	Engine *xeval.Engine
}

// Name implements Oracle.
func (o NetExpMech) Name() string { return "netexp" }

// AnswerCost implements CostReporter: one exponential-mechanism selection,
// which is (ε, 0)-DP regardless of the δ it is offered.
func (o NetExpMech) AnswerCost(eps, _ float64) mech.Cost {
	return mech.PureCost(eps)
}

// Answer implements Oracle.
func (o NetExpMech) Answer(src *sample.Source, l convex.Loss, data *dataset.Dataset, eps, delta float64) ([]float64, error) {
	m := o.Candidates
	if m <= 0 {
		m = 64
	}
	if err := (mech.Params{Eps: eps, Delta: delta}).Validate(); err != nil {
		return nil, err
	}
	dom := l.Domain()
	d := dom.Dim()
	// Public candidate net: center + random points. Drawing before looking
	// at the data keeps the net data-independent.
	net := make([][]float64, 0, m)
	net = append(net, dom.Center())
	for len(net) < m {
		net = append(net, dom.Project(src.GaussianVec(d, dom.Diameter()/2)))
	}

	// Public score-range bound over (candidate, universe record) pairs:
	// one chunk-parallel sweep per candidate collecting per-chunk minima
	// and maxima (min/max reductions are order-independent, so the result
	// is worker-count deterministic).
	u := data.U
	lo, hi := math.Inf(1), math.Inf(-1)
	chunks := xeval.Chunks(u.Size())
	chunkLo := make([]float64, chunks)
	chunkHi := make([]float64, chunks)
	for _, th := range net {
		o.Engine.ForEach(u.Size(), func(clo, chi int) {
			buf := make([]float64, u.Dim())
			cLo, cHi := math.Inf(1), math.Inf(-1)
			for i := clo; i < chi; i++ {
				v := l.Value(th, u.PointInto(i, buf))
				if v < cLo {
					cLo = v
				}
				if v > cHi {
					cHi = v
				}
			}
			c := clo / xeval.ChunkSize
			chunkLo[c], chunkHi[c] = cLo, cHi
		})
		for c := 0; c < chunks; c++ {
			if chunkLo[c] < lo {
				lo = chunkLo[c]
			}
			if chunkHi[c] > hi {
				hi = chunkHi[c]
			}
		}
	}
	rangeB := hi - lo
	if rangeB <= 0 {
		// Constant loss over the net: every candidate is equally good.
		return net[0], nil
	}
	sens := rangeB / float64(data.N())

	if err := ensureDenseData(o.Name(), data); err != nil {
		return nil, err
	}
	h := data.Histogram()
	scores := make([]float64, len(net))
	for i, th := range net {
		scores[i] = -convex.EvalOn(o.Engine, l, th, h)
	}
	idx, err := mech.Exponential(src, scores, sens, eps)
	if err != nil {
		return nil, err
	}
	return vecmath.Copy(net[idx]), nil
}

// NonPrivate returns the exact empirical minimizer with no noise. It is the
// accuracy ceiling in experiments and is NOT differentially private; it
// ignores ε and δ.
type NonPrivate struct {
	// SolverIters bounds the internal solve (default 800).
	SolverIters int
	// Engine parallelizes the internal solve (see NoisyGD.Engine).
	Engine *xeval.Engine
}

// Name implements Oracle.
func (o NonPrivate) Name() string { return "nonprivate" }

// AnswerCost implements CostReporter with the *nominal* budget it is
// offered: NonPrivate is not differentially private (it is the experiment
// ceiling), so its ledger entries are bookkeeping, not a guarantee.
func (o NonPrivate) AnswerCost(eps, delta float64) mech.Cost {
	return mech.ApproxCost(eps, delta)
}

// Answer implements Oracle (ε and δ are ignored).
func (o NonPrivate) Answer(_ *sample.Source, l convex.Loss, data *dataset.Dataset, _, _ float64) ([]float64, error) {
	iters := o.SolverIters
	if iters <= 0 {
		iters = 800
	}
	if err := ensureDenseData(o.Name(), data); err != nil {
		return nil, err
	}
	res, err := optimize.Minimize(l, data.Histogram(), optimize.Options{MaxIters: iters, Engine: o.Engine})
	if err != nil {
		return nil, err
	}
	return res.Theta, nil
}
