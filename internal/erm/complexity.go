package erm

import (
	"math"

	"repro/internal/convex"
)

// SampleComplexity is implemented by oracles that can state their Table-1
// single-query sample requirement: the smallest n at which Answer is
// expected to be α-accurate at privacy ε (with δ polylog factors and
// absolute constants dropped — these are the Õ(·) *shapes* of paper
// Theorems 4.1/4.3/4.5, not calibrated constants; experiments measure the
// true constants empirically).
type SampleComplexity interface {
	// MinN returns the Õ-shape sample requirement for the loss at
	// accuracy alpha and privacy eps.
	MinN(l convex.Loss, alpha, eps float64) int
}

func ceilPos(v float64) int {
	if v < 1 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	return int(math.Ceil(v))
}

// MinN implements Theorem 4.1's shape for the generic Lipschitz oracle:
// n = Õ(√d / (α·ε)).
func (NoisyGD) MinN(l convex.Loss, alpha, eps float64) int {
	d := float64(l.Domain().Dim())
	return ceilPos(math.Sqrt(d) / (alpha * eps))
}

// MinN implements Theorem 4.5's shape for the strongly convex oracle:
// n = Õ(√d / (√σ·α·ε)). Losses without strong convexity get the generic
// shape (σ treated as 1).
func (OutputPerturbation) MinN(l convex.Loss, alpha, eps float64) int {
	d := float64(l.Domain().Dim())
	sigma := l.StrongConvexity()
	if sigma <= 0 {
		sigma = 1
	}
	return ceilPos(math.Sqrt(d) / (math.Sqrt(sigma) * alpha * eps))
}

// MinN for objective perturbation matches the strongly convex shape.
func (ObjectivePerturbation) MinN(l convex.Loss, alpha, eps float64) int {
	return OutputPerturbation{}.MinN(l, alpha, eps)
}

// MinN implements Theorem 4.3's shape for unconstrained GLMs:
// n = Õ(1 / (α²·ε)) — independent of the ambient dimension.
func (GLMReduction) MinN(_ convex.Loss, alpha, eps float64) int {
	return ceilPos(1 / (alpha * alpha * eps))
}

// MinN for the linear-query oracle: an excess-risk target α corresponds
// to answer accuracy √(2α) (quadratic embedding), and the Laplace
// mechanism needs n = O(1/(a·ε)) for answer accuracy a.
func (LaplaceLinear) MinN(_ convex.Loss, alpha, eps float64) int {
	return ceilPos(1 / (math.Sqrt(2*alpha) * eps))
}

// MinN for the net exponential mechanism: the net must be α-fine
// (Ω(α^{-d}) candidates) and the mechanism pays log(net size)/(α·ε), so
// n = Õ(d·log(1/α)/(α·ε)).
func (NetExpMech) MinN(l convex.Loss, alpha, eps float64) int {
	d := float64(l.Domain().Dim())
	return ceilPos(d * math.Log(1/alpha) / (alpha * eps))
}

// Compile-time conformance checks.
var (
	_ SampleComplexity = NoisyGD{}
	_ SampleComplexity = OutputPerturbation{}
	_ SampleComplexity = ObjectivePerturbation{}
	_ SampleComplexity = GLMReduction{}
	_ SampleComplexity = LaplaceLinear{}
	_ SampleComplexity = NetExpMech{}
)
