package erm

import (
	"fmt"
	"math"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/mech"
	"repro/internal/sample"
	"repro/internal/universe"
	"repro/internal/vecmath"
	"repro/internal/xeval"
)

// GLMReduction is the dimension-independent oracle for unconstrained
// generalized linear models, in the spirit of Jain–Thakurta (paper §4.2.2,
// Theorem 4.3).
//
// A GLM's empirical objective depends on θ only through the inner products
// ⟨θ, x_i⟩, so its geometry is effectively low-dimensional. The oracle:
//
//  1. draws a random Johnson–Lindenstrauss matrix G ∈ R^{m×d} with
//     m = ReducedDim (data-independent, so drawing it costs no privacy);
//  2. maps every universe record's features to Gx/√m, which approximately
//     preserves inner products;
//  3. runs noisy projected gradient descent on the projected GLM in R^m —
//     the Gaussian noise now lives in m dimensions, not d, which is the
//     source of the dimension independence;
//  4. maps the solution back as θ = Gᵀθ′/√m and projects onto Θ.
//
// The privacy analysis is the same as NoisyGD's (the projection is a public
// preprocessing of the loss), and the error scales with m instead of the
// ambient d — reproducing Theorem 4.3's qualitative claim.
type GLMReduction struct {
	// ReducedDim is the projected dimension m (default 4).
	ReducedDim int
	// Iters is the number of noisy gradient steps (default 64).
	Iters int
	// Engine evaluates the projected-space population gradients
	// chunk-parallel over the universe; nil runs serially (see
	// NoisyGD.Engine for the determinism contract).
	Engine *xeval.Engine
}

// Name implements Oracle.
func (o GLMReduction) Name() string { return "glmreduce" }

// AnswerCost implements CostReporter: Iters Gaussian releases in the
// reduced space, calibrated exactly as NoisyGD's.
func (o GLMReduction) AnswerCost(eps, delta float64) mech.Cost {
	iters := o.Iters
	if iters <= 0 {
		iters = 64
	}
	return noisyGDCost(iters, eps, delta)
}

// Answer implements Oracle. The loss must implement convex.GLM and its
// domain must be an L2 ball (the unconstrained-GLM setting of §4.2.2).
func (o GLMReduction) Answer(src *sample.Source, l convex.Loss, data *dataset.Dataset, eps, delta float64) ([]float64, error) {
	glm, ok := l.(convex.GLM)
	if !ok {
		return nil, fmt.Errorf("erm: GLMReduction requires a GLM loss, got %T", l)
	}
	ball, ok := l.Domain().(*convex.L2Ball)
	if !ok {
		return nil, fmt.Errorf("erm: GLMReduction requires an L2-ball domain, got %s", l.Domain())
	}
	if delta == 0 {
		return nil, fmt.Errorf("erm: GLMReduction requires delta > 0")
	}
	m := o.ReducedDim
	if m <= 0 {
		m = 4
	}
	d := ball.Dim()
	if m > d {
		m = d
	}
	iters := o.Iters
	if iters <= 0 {
		iters = 64
	}

	// JL matrix G: m×d of N(0,1) entries, scaled by 1/√m.
	g := make([][]float64, m)
	for i := range g {
		g[i] = src.GaussianVec(d, 1)
	}
	scale := 1 / math.Sqrt(float64(m))

	// Projected features for every universe element (public computation).
	// Each projection is clipped back to the original feature-norm bound:
	// without clipping, the *worst-case* projected norm over the universe
	// (which the sensitivity bound must use) exceeds the typical norm by a
	// √(log|X|/m) factor, inflating the noise and silently cancelling the
	// m-vs-d dimension advantage. Clipping is public preprocessing — the
	// loss simply operates on the clipped features.
	u := data.U
	featBound := 0.0
	buf := make([]float64, u.Dim())
	for i := 0; i < u.Size(); i++ {
		x := u.PointInto(i, buf)
		var n2 float64
		for c := 0; c < d; c++ {
			n2 += x[c] * x[c]
		}
		if n := math.Sqrt(n2); n > featBound {
			featBound = n
		}
	}
	if featBound == 0 {
		return ball.Center(), nil
	}
	proj := make([][]float64, u.Size())
	for i := 0; i < u.Size(); i++ {
		x := u.PointInto(i, buf)
		p := make([]float64, m)
		for r := 0; r < m; r++ {
			var s float64
			for c := 0; c < d; c++ {
				s += g[r][c] * x[c]
			}
			p[r] = s * scale
		}
		if n := vecmath.Norm2(p); n > featBound {
			for r := range p {
				p[r] *= featBound / n
			}
		}
		proj[i] = p
	}

	// Noisy projected gradient descent in the reduced space. The reduced
	// domain radius matches the original ball: JL approximately preserves
	// norms, and a slightly misscaled radius only perturbs accuracy, never
	// privacy.
	redBall, err := convex.NewL2Ball(m, ball.Radius())
	if err != nil {
		return nil, err
	}
	// Per-record gradient in reduced space: dv·projᵢ with |dv| bounded by
	// the original loss's profile-derivative bound. Our GLMs certify
	// ‖∇ℓ‖ ≤ Lip with ‖feat‖ ≤ featBound, i.e. |dv| ≤ Lip/featBound, and
	// clipping guarantees ‖proj‖ ≤ featBound, so the reduced Lipschitz
	// constant matches the original one.
	redLip := l.Lipschitz()

	eps0, delta0, err := mech.SplitBudget(eps, delta, iters)
	if err != nil {
		return nil, err
	}
	sens := 2 * redLip / float64(data.N())
	sigma, err := mech.GaussianSigma(sens, eps0, delta0)
	if err != nil {
		return nil, err
	}

	if err := ensureDenseData(o.Name(), data); err != nil {
		return nil, err
	}
	h := data.Histogram()
	theta := redBall.Center()
	avg := vecmath.Copy(theta)
	grad := make([]float64, m)
	diam := redBall.Diameter()
	for t := 1; t <= iters; t++ {
		o.Engine.SumVec(grad, u.Size(), func(clo, chi int, out []float64) {
			buf := make([]float64, u.Dim())
			for i := clo; i < chi; i++ {
				p := h.P[i]
				if p == 0 {
					continue
				}
				x := u.PointInto(i, buf)
				z := vecmath.Dot(theta, proj[i])
				_, dv := glm.Scalar(z, x[len(x)-1])
				pv := p * dv
				for r := 0; r < m; r++ {
					out[r] += pv * proj[i][r]
				}
			}
		})
		for i := range grad {
			grad[i] += src.Gaussian(0, sigma)
		}
		step := diam / (redLip * math.Sqrt(float64(t)))
		theta = redBall.Project(vecmath.AddScaled(vecmath.Copy(theta), -step, grad))
		for i := range avg {
			avg[i] += (theta[i] - avg[i]) / float64(t+1)
		}
	}

	// Map back by public post-processing. The naive adjoint Gᵀθ′/√m has
	// norm inflated by ≈ √(d/m) (GᵀG/m concentrates around I only in
	// expectation), so ball projection would shrink every prediction by
	// that factor and reintroduce a dimension dependence. Instead,
	// reconstruct the parameter that best reproduces the reduced
	// predictor's outputs z′(x) = ⟨θ′, proj(x)⟩ over the *public* universe:
	//
	//	θ = argmin_{θ∈Θ} Σ_{x∈X} (⟨θ, feat(x)⟩ − z′(x))².
	//
	// This uses only θ′ (already private) and public geometry, costs no
	// privacy, and its distortion depends on m, not d.
	targets := make([]float64, u.Size())
	for i := range targets {
		targets[i] = vecmath.Dot(avg, proj[i])
	}
	return fitBallPredictor(ball, u, targets), nil
}

// fitBallPredictor solves the public least-squares reconstruction
// min_{θ∈ball} Σ_x (⟨θ, feat(x)⟩ − target(x))² by projected gradient
// descent on the (public) normal equations.
func fitBallPredictor(ball *convex.L2Ball, u universe.Universe, targets []float64) []float64 {
	d := ball.Dim()
	n := u.Size()
	// Normal-equation pieces: A = Σ x xᵀ / n, b = Σ x·target / n.
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d)
	}
	b := make([]float64, d)
	buf := make([]float64, u.Dim())
	for i := 0; i < n; i++ {
		x := u.PointInto(i, buf)
		t := targets[i] / float64(n)
		for r := 0; r < d; r++ {
			b[r] += x[r] * t
			xr := x[r] / float64(n)
			for c := 0; c < d; c++ {
				a[r][c] += xr * x[c]
			}
		}
	}
	// Lipschitz constant of the gradient = largest eigenvalue of 2A;
	// bound it by twice the trace for a safe step size.
	var tr float64
	for r := 0; r < d; r++ {
		tr += a[r][r]
	}
	step := 1.0
	if tr > 0 {
		step = 1 / (2 * tr)
	}
	theta := ball.Center()
	grad := make([]float64, d)
	for it := 0; it < 200; it++ {
		for r := 0; r < d; r++ {
			g := -2 * b[r]
			for c := 0; c < d; c++ {
				g += 2 * a[r][c] * theta[c]
			}
			grad[r] = g
		}
		theta = ball.Project(vecmath.AddScaled(vecmath.Copy(theta), -step, grad))
	}
	return theta
}
