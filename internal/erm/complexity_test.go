package erm

import (
	"math"
	"testing"

	"repro/internal/convex"
)

func lossInDim(t *testing.T, d int, sigma float64) convex.Loss {
	t.Helper()
	ball, err := convex.NewL2Ball(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	target := make([]float64, d+1)
	target[d] = 1
	sq, err := convex.NewSquared("sq", ball, target, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sigma <= 0 {
		return sq
	}
	rg, err := convex.NewRegularized(sq, sigma)
	if err != nil {
		t.Fatal(err)
	}
	return rg
}

// Table 1 column "n needed for a single query": the oracle shapes must
// scale the way the cited theorems say.
func TestMinNShapes(t *testing.T) {
	alpha, eps := 0.1, 1.0
	l4 := lossInDim(t, 4, 0)
	l16 := lossInDim(t, 16, 0)

	// Theorem 4.1: √d scaling for the generic oracle.
	r := float64(NoisyGD{}.MinN(l16, alpha, eps)) / float64(NoisyGD{}.MinN(l4, alpha, eps))
	if math.Abs(r-2) > 0.1 {
		t.Errorf("NoisyGD d-scaling = %v, want 2 (√(16/4))", r)
	}

	// Theorem 4.3: no d dependence for the GLM oracle.
	if (GLMReduction{}).MinN(l16, alpha, eps) != (GLMReduction{}.MinN(l4, alpha, eps)) {
		t.Error("GLMReduction MinN depends on d")
	}
	// 1/α² scaling.
	r = float64(GLMReduction{}.MinN(l4, alpha/2, eps)) / float64(GLMReduction{}.MinN(l4, alpha, eps))
	if math.Abs(r-4) > 0.2 {
		t.Errorf("GLMReduction α-scaling = %v, want 4", r)
	}

	// Theorem 4.5: 1/√σ improvement for strong convexity.
	weak := lossInDim(t, 4, 0.25)
	strong := lossInDim(t, 4, 4.0)
	r = float64(OutputPerturbation{}.MinN(weak, alpha, eps)) / float64(OutputPerturbation{}.MinN(strong, alpha, eps))
	if math.Abs(r-4) > 0.3 {
		t.Errorf("OutputPerturbation σ-scaling = %v, want 4 (√(4/0.25))", r)
	}
	// σ ≤ 0 falls back to the generic shape.
	if (OutputPerturbation{}).MinN(l4, alpha, eps) != (NoisyGD{}.MinN(l4, alpha, eps)) {
		t.Error("σ=0 fallback wrong")
	}
	// Objective perturbation matches output perturbation.
	if (ObjectivePerturbation{}).MinN(strong, alpha, eps) != (OutputPerturbation{}.MinN(strong, alpha, eps)) {
		t.Error("objective ≠ output shape")
	}

	// Linear oracle: 1/(√α·ε). Use a small α so integer ceiling effects
	// do not mask the ratio.
	aSmall := 1e-3
	r = float64(LaplaceLinear{}.MinN(l4, aSmall/4, eps)) / float64(LaplaceLinear{}.MinN(l4, aSmall, eps))
	if math.Abs(r-2) > 0.2 {
		t.Errorf("LaplaceLinear α-scaling = %v, want 2", r)
	}

	// Net mechanism grows linearly in d.
	r = float64(NetExpMech{}.MinN(l16, alpha, eps)) / float64(NetExpMech{}.MinN(l4, alpha, eps))
	if math.Abs(r-4) > 0.3 {
		t.Errorf("NetExpMech d-scaling = %v, want 4", r)
	}
}

// All shapes scale as 1/ε and are ≥ 1 even at degenerate inputs.
func TestMinNEpsilonScalingAndFloors(t *testing.T) {
	l := lossInDim(t, 4, 0.5)
	oracles := []SampleComplexity{
		NoisyGD{}, OutputPerturbation{}, ObjectivePerturbation{},
		GLMReduction{}, LaplaceLinear{}, NetExpMech{},
	}
	for _, o := range oracles {
		a := o.MinN(l, 0.1, 0.5)
		b := o.MinN(l, 0.1, 1.0)
		if a < b {
			t.Errorf("%T: smaller ε did not need more data (%d vs %d)", o, a, b)
		}
		if o.MinN(l, 1e9, 1e9) < 1 {
			t.Errorf("%T: MinN below 1", o)
		}
		if o.MinN(l, 0, 0) < 1 { // degenerate inputs clamp, never panic
			t.Errorf("%T: degenerate input broke floor", o)
		}
	}
}
