package erm

import (
	"fmt"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/mech"
	"repro/internal/optimize"
	"repro/internal/sample"
	"repro/internal/vecmath"
)

// ObjectivePerturbation is the second classical single-query oracle of
// Chaudhuri–Monteleoni–Sarwate / Kifer–Smith–Thakurta: instead of noising
// the *output*, perturb the *objective* with a random linear term and
// release the exact minimizer of the perturbed problem,
//
//	θ̃ = argmin_{θ∈Θ}  ℓ(θ; D) + ⟨b, θ⟩/n,    b ~ N(0, σ_b²·I).
//
// For σ-strongly convex, L-Lipschitz losses the released minimizer's
// sensitivity analysis reduces to the linear term: replacing one row
// shifts the perturbed objective's gradient by at most 2L/n everywhere, so
// calibrating b's scale to that sensitivity via the Gaussian mechanism
// (σ_b = 2L·√(2 ln(1.25/δ))/ε) gives (ε, δ)-DP. Objective perturbation
// often beats output perturbation in practice because the noise interacts
// with the objective's curvature instead of being added raw.
type ObjectivePerturbation struct {
	// SolverIters bounds the internal solve (default 800).
	SolverIters int
}

// Name implements Oracle.
func (o ObjectivePerturbation) Name() string { return "objperturb" }

// perturbed wraps a loss with the linear tilt ⟨b, θ⟩ (already divided
// by n).
type perturbed struct {
	convex.Loss
	b []float64
}

func (p perturbed) Value(theta, x []float64) float64 {
	return p.Loss.Value(theta, x) + vecmath.Dot(p.b, theta)
}

func (p perturbed) Grad(grad, theta, x []float64) {
	p.Loss.Grad(grad, theta, x)
	for i := range p.b {
		grad[i] += p.b[i]
	}
}

// Lipschitz accounts for the tilt.
func (p perturbed) Lipschitz() float64 {
	return p.Loss.Lipschitz() + vecmath.Norm2(p.b)
}

// Answer implements Oracle. It requires strong convexity (the regime in
// which this simple calibration is valid) and delta > 0.
func (o ObjectivePerturbation) Answer(src *sample.Source, l convex.Loss, data *dataset.Dataset, eps, delta float64) ([]float64, error) {
	if l.StrongConvexity() <= 0 {
		return nil, fmt.Errorf("erm: ObjectivePerturbation requires a strongly convex loss")
	}
	if delta == 0 {
		return nil, fmt.Errorf("erm: ObjectivePerturbation requires delta > 0")
	}
	iters := o.SolverIters
	if iters <= 0 {
		iters = 800
	}
	sigmaB, err := mech.GaussianSigma(2*l.Lipschitz(), eps, delta)
	if err != nil {
		return nil, err
	}
	d := l.Domain().Dim()
	n := float64(data.N())
	b := make([]float64, d)
	for i := range b {
		b[i] = src.Gaussian(0, sigmaB) / n
	}
	if err := ensureDenseData(o.Name(), data); err != nil {
		return nil, err
	}
	res, err := optimize.Minimize(perturbed{Loss: l, b: b}, data.Histogram(), optimize.Options{MaxIters: iters})
	if err != nil {
		return nil, err
	}
	return l.Domain().Project(res.Theta), nil
}
