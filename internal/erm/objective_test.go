package erm

import (
	"testing"

	"repro/internal/convex"
	"repro/internal/sample"
)

func TestObjectivePerturbationValidation(t *testing.T) {
	sq := squaredLoss(t)
	fx := makeFixture(t, 200, 60)
	src := sample.New(1)
	if _, err := (ObjectivePerturbation{}).Answer(src, sq, fx.data, 1, 1e-6); err == nil {
		t.Error("non-strongly-convex loss accepted")
	}
	rg, err := convex.NewRegularized(sq, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (ObjectivePerturbation{}).Answer(src, rg, fx.data, 1, 0); err == nil {
		t.Error("delta=0 accepted")
	}
}

func TestObjectivePerturbationAccuracy(t *testing.T) {
	sq := squaredLoss(t)
	rg, err := convex.NewRegularized(sq, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	fx := makeFixture(t, 4000, 61)
	var worst float64
	for trial := 0; trial < 5; trial++ {
		src := sample.New(int64(400 + trial))
		theta, err := (ObjectivePerturbation{}).Answer(src, rg, fx.data, 1, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if !rg.Domain().Contains(theta, 1e-6) {
			t.Fatalf("answer outside domain: %v", theta)
		}
		if e := excess(t, rg, theta, fx); e > worst {
			worst = e
		}
	}
	if worst > 0.05 {
		t.Errorf("worst excess = %v", worst)
	}
}

// At tiny n, objective perturbation's noise must visibly bite (same guard
// as for the other oracles: a noiseless implementation would match the
// exact minimizer).
func TestObjectivePerturbationNoiseBites(t *testing.T) {
	sq := squaredLoss(t)
	rg, err := convex.NewRegularized(sq, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	fx := makeFixture(t, 25, 62)
	np := NonPrivate{}
	thetaNP, err := np.Answer(sample.New(1), rg, fx.data, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	baseline := excess(t, rg, thetaNP, fx)
	var total float64
	trials := 10
	for i := 0; i < trials; i++ {
		src := sample.New(int64(500 + i))
		theta, err := (ObjectivePerturbation{}).Answer(src, rg, fx.data, 0.2, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		total += excess(t, rg, theta, fx)
	}
	if avg := total / float64(trials); avg <= baseline+1e-9 {
		t.Errorf("objective perturbation at n=25 matched non-private (%v vs %v)", avg, baseline)
	}
}

// Objective and output perturbation answer the same strongly convex query
// in the same accuracy regime (within an order of magnitude) — the paper's
// §4.2.3 treats them interchangeably as "the strongly convex oracle".
func TestObjectiveVsOutputPerturbation(t *testing.T) {
	sq := squaredLoss(t)
	rg, err := convex.NewRegularized(sq, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	fx := makeFixture(t, 1500, 63)
	avg := func(o Oracle) float64 {
		var total float64
		trials := 8
		for i := 0; i < trials; i++ {
			src := sample.New(int64(600 + i))
			theta, err := o.Answer(src, rg, fx.data, 0.5, 1e-6)
			if err != nil {
				t.Fatal(err)
			}
			total += excess(t, rg, theta, fx)
		}
		return total / float64(trials)
	}
	obj := avg(ObjectivePerturbation{})
	out := avg(OutputPerturbation{})
	if obj > 10*out+0.01 || out > 10*obj+0.01 {
		t.Errorf("oracles in different regimes: objective %v, output %v", obj, out)
	}
}
