package erm

import (
	"fmt"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/mech"
	"repro/internal/sample"
	"repro/internal/universe"
	"repro/internal/vecmath"
)

// LaplaceLinear is the oracle for the linear-query special case (paper
// Table 1, row 1): a linear query's exact answer is the predicate mean
// E_D[q(x)] with sensitivity 1/n, so the Laplace mechanism answers it with
// (ε, 0)-DP — exactly the noise Hardt–Rothblum's PMW adds. It only accepts
// convex.LinearQuery losses.
type LaplaceLinear struct{}

// Name implements Oracle.
func (LaplaceLinear) Name() string { return "laplace-linear" }

// AnswerCost implements CostReporter: one Laplace release, (ε, 0)-DP.
func (LaplaceLinear) AnswerCost(eps, _ float64) mech.Cost {
	return mech.PureCost(eps)
}

// Answer implements Oracle. delta is ignored (pure DP).
func (LaplaceLinear) Answer(src *sample.Source, l convex.Loss, data *dataset.Dataset, eps, _ float64) ([]float64, error) {
	lq, ok := l.(*convex.LinearQuery)
	if !ok {
		return nil, fmt.Errorf("erm: LaplaceLinear requires a LinearQuery loss, got %T", l)
	}
	var exact float64
	if data.U.Size() > universe.DenseLimit {
		// Row-sum path for universes too large to histogram: the predicate
		// mean over rows is the same quantity, at O(n) instead of O(|X|).
		// Gated on size because row-order summation rounds differently from
		// cell-order and the dense path's bytes are pinned by golden tests.
		var sum float64
		buf := make([]float64, data.U.Dim())
		for _, r := range data.Rows {
			sum += lq.Predicate(data.U.PointInto(r, buf))
		}
		exact = vecmath.Clamp(sum/float64(data.N()), 0, 1)
	} else {
		exact = lq.ExactMinimize(data.Histogram())[0]
	}
	noisy, err := mech.Laplace(src, exact, 1/float64(data.N()), eps)
	if err != nil {
		return nil, err
	}
	return []float64{vecmath.Clamp(noisy, 0, 1)}, nil
}
