package erm

import (
	"math"
	"testing"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/optimize"
	"repro/internal/sample"
	"repro/internal/universe"
)

// fixture bundles a universe, a loss, and a sampled dataset whose optimum
// is informative (labels follow a linear model).
type fixture struct {
	grid *universe.LabeledGrid
	data *dataset.Dataset
}

func makeFixture(t *testing.T, n int, seed int64) fixture {
	t.Helper()
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	src := sample.New(seed)
	pop, err := dataset.LinearModel(src, g, []float64{0.8, -0.4}, 0.1, 20000)
	if err != nil {
		t.Fatal(err)
	}
	return fixture{grid: g, data: dataset.SampleFrom(src, pop, n)}
}

func squaredLoss(t *testing.T) *convex.Squared {
	t.Helper()
	ball, err := convex.NewL2Ball(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := convex.NewSquared("sq", ball, []float64{0, 0, 1}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return sq
}

// excess computes the excess empirical risk of an oracle answer.
func excess(t *testing.T, l convex.Loss, theta []float64, fx fixture) float64 {
	t.Helper()
	e, err := optimize.Excess(l, theta, fx.data.Histogram(), optimize.Options{MaxIters: 1500})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// Contract test shared by all oracles: answers live in the domain, and at
// large n with generous budget the excess risk is small; shrinking n by 20×
// visibly hurts (except for NonPrivate, which is noiseless).
func TestOracleContracts(t *testing.T) {
	sq := squaredLoss(t)
	rg, err := convex.NewRegularized(sq, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	oracles := []struct {
		o       Oracle
		l       convex.Loss
		alpha   float64 // acceptable excess at n = 4000
		private bool
	}{
		{NoisyGD{Iters: 40}, sq, 0.05, true},
		{OutputPerturbation{}, rg, 0.05, true},
		{NetExpMech{Candidates: 200}, sq, 0.05, true},
		{GLMReduction{ReducedDim: 2, Iters: 40}, sq, 0.08, true},
		{NonPrivate{}, sq, 0.005, false},
	}
	for _, tc := range oracles {
		t.Run(tc.o.Name(), func(t *testing.T) {
			fx := makeFixture(t, 4000, 42)
			var worst float64
			for trial := 0; trial < 5; trial++ {
				src := sample.New(int64(100 + trial))
				theta, err := tc.o.Answer(src, tc.l, fx.data, 1.0, 1e-6)
				if err != nil {
					t.Fatal(err)
				}
				if !tc.l.Domain().Contains(theta, 1e-6) {
					t.Fatalf("answer outside domain: %v", theta)
				}
				if e := excess(t, tc.l, theta, fx); e > worst {
					worst = e
				}
			}
			if worst > tc.alpha {
				t.Errorf("worst excess over trials = %v, want ≤ %v", worst, tc.alpha)
			}
		})
	}
}

// Privacy noise must actually bite: at tiny n and tight ε, private oracle
// answers should be visibly worse than NonPrivate on average.
func TestPrivacyNoiseDegradesSmallN(t *testing.T) {
	sq := squaredLoss(t)
	fx := makeFixture(t, 30, 7)
	np := NonPrivate{}
	srcNP := sample.New(1)
	thetaNP, err := np.Answer(srcNP, sq, fx.data, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	baseline := excess(t, sq, thetaNP, fx)

	o := NoisyGD{Iters: 40}
	var total float64
	trials := 10
	for i := 0; i < trials; i++ {
		src := sample.New(int64(200 + i))
		theta, err := o.Answer(src, sq, fx.data, 0.2, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		total += excess(t, sq, theta, fx)
	}
	avg := total / float64(trials)
	if avg <= baseline+1e-6 {
		t.Errorf("NoisyGD at n=30, ε=0.2 matched non-private baseline (%v vs %v) — noise seems absent", avg, baseline)
	}
}

func TestNoisyGDValidation(t *testing.T) {
	sq := squaredLoss(t)
	fx := makeFixture(t, 100, 3)
	src := sample.New(1)
	if _, err := (NoisyGD{}).Answer(src, sq, fx.data, 0, 1e-6); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := (NoisyGD{}).Answer(src, sq, fx.data, 1, 0); err == nil {
		t.Error("delta=0 accepted")
	}
}

func TestOutputPerturbationRequiresStrongConvexity(t *testing.T) {
	sq := squaredLoss(t)
	fx := makeFixture(t, 100, 4)
	src := sample.New(1)
	if _, err := (OutputPerturbation{}).Answer(src, sq, fx.data, 1, 1e-6); err == nil {
		t.Error("plain convex loss accepted")
	}
	rg, _ := convex.NewRegularized(sq, 0.5)
	if _, err := (OutputPerturbation{}).Answer(src, rg, fx.data, 1, 0); err == nil {
		t.Error("delta=0 accepted")
	}
}

// Stronger convexity → smaller output noise → better accuracy at fixed n,
// the qualitative content of Theorem 4.5. Following the paper's convention,
// all compared losses are renormalized to Lipschitz constant 1 (otherwise
// the ridge term inflates L with σ and cancels the benefit).
func TestOutputPerturbationImprovesWithSigma(t *testing.T) {
	sq := squaredLoss(t)
	fx := makeFixture(t, 300, 5)
	avgExcess := func(sigma float64) float64 {
		rg, err := convex.NewRegularized(sq, sigma)
		if err != nil {
			t.Fatal(err)
		}
		norm, err := convex.NewUnitLipschitz(rg)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		trials := 12
		for i := 0; i < trials; i++ {
			src := sample.New(int64(300 + i))
			theta, err := (OutputPerturbation{}).Answer(src, norm, fx.data, 0.3, 1e-6)
			if err != nil {
				t.Fatal(err)
			}
			total += excess(t, norm, theta, fx)
		}
		return total / float64(trials)
	}
	weak := avgExcess(0.05)
	strong := avgExcess(2.0)
	if strong >= weak {
		t.Errorf("σ=2 excess (%v) not better than σ=0.05 excess (%v)", strong, weak)
	}
}

func TestNetExpMechPicksGoodCandidate(t *testing.T) {
	sq := squaredLoss(t)
	fx := makeFixture(t, 5000, 6)
	src := sample.New(2)
	theta, err := (NetExpMech{Candidates: 300}).Answer(src, sq, fx.data, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pure DP (δ=0) works for the exponential mechanism.
	if e := excess(t, sq, theta, fx); e > 0.05 {
		t.Errorf("excess = %v", e)
	}
}

func TestGLMReductionRequiresGLM(t *testing.T) {
	fx := makeFixture(t, 100, 8)
	src := sample.New(1)
	lf, err := convex.NewLinearForm("lf", mustBall(t, 2, 1), []float64{1, 0, 0}, math.Sqrt2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (GLMReduction{}).Answer(src, lf, fx.data, 1, 1e-6); err == nil {
		t.Error("non-GLM loss accepted")
	}
	sq := squaredLoss(t)
	if _, err := (GLMReduction{}).Answer(src, sq, fx.data, 1, 0); err == nil {
		t.Error("delta=0 accepted")
	}
}

func mustBall(t *testing.T, d int, r float64) *convex.L2Ball {
	t.Helper()
	b, err := convex.NewL2Ball(d, r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Determinism: same seed, same answer — the reproducibility contract.
func TestOraclesDeterministicPerSeed(t *testing.T) {
	sq := squaredLoss(t)
	fx := makeFixture(t, 500, 9)
	oracles := []Oracle{NoisyGD{Iters: 20}, NetExpMech{Candidates: 50}, GLMReduction{ReducedDim: 2, Iters: 20}}
	for _, o := range oracles {
		a, err := o.Answer(sample.New(77), sq, fx.data, 1, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		b, err := o.Answer(sample.New(77), sq, fx.data, 1, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: nondeterministic at equal seeds", o.Name())
				break
			}
		}
	}
}
