package convex

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/universe"
)

// This file is the loss registry: a name → builder table that lets callers
// outside the process (the serving subsystem, config files, test harnesses)
// name a CM query by kind plus JSON-encoded parameters instead of holding a
// Loss value. Builders receive the (public) universe so they can certify
// feature and target bounds exactly, by enumeration — the same bounds the
// hand-constructed experiment losses use, but computed rather than assumed.
//
// Labeled-record convention (see losses.go): GLM-style kinds read a record
// as (features..., label) and optimize over Θ = the unit L2 ball in feature
// space; linear-query kinds are 1-dimensional with Θ = [0, 1].

// Spec names a registered loss family with JSON-encoded parameters. The
// zero Params builds the family's default instance.
type Spec struct {
	Kind   string          `json:"kind"`
	Params json.RawMessage `json:"params,omitempty"`
}

// Builder constructs a loss instance over the given universe. The universe
// is public information; builders may enumerate it to certify bounds.
type Builder func(u universe.Universe, params json.RawMessage) (Loss, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Builder{}
)

// Register adds a loss kind to the registry. It fails on duplicate or empty
// kinds; safe for concurrent use.
func Register(kind string, b Builder) error {
	if kind == "" || b == nil {
		return fmt.Errorf("convex: Register needs a kind and a builder")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[kind]; dup {
		return fmt.Errorf("convex: loss kind %q already registered", kind)
	}
	registry[kind] = b
	return nil
}

// Kinds returns the registered kind names, sorted.
func Kinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Build constructs the loss named by spec over u.
func Build(u universe.Universe, spec Spec) (Loss, error) {
	regMu.RLock()
	b, ok := registry[spec.Kind]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("convex: unknown loss kind %q (have %v)", spec.Kind, Kinds())
	}
	l, err := b(u, spec.Params)
	if err != nil {
		return nil, fmt.Errorf("convex: building %q: %w", spec.Kind, err)
	}
	return l, nil
}

// decodeParams strictly decodes raw into v, treating empty params as the
// zero value. Unknown fields are rejected so API typos surface as errors
// instead of silently building a default instance.
func decodeParams(raw json.RawMessage, v any) error {
	if len(raw) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// featureDim returns u.Dim()−1 for labeled-record losses, rejecting
// universes too small to carry a label coordinate.
func featureDim(u universe.Universe) (int, error) {
	d := u.Dim() - 1
	if d < 1 {
		return 0, fmt.Errorf("labeled-record loss needs universe dim ≥ 2, got %d", u.Dim())
	}
	return d, nil
}

// featureBound returns the exact max over the universe of ‖x[:d]‖₂.
func featureBound(u universe.Universe, d int) float64 {
	var worst float64
	buf := make([]float64, u.Dim())
	for i := 0; i < u.Size(); i++ {
		p := u.PointInto(i, buf)
		var n2 float64
		for j := 0; j < d; j++ {
			n2 += p[j] * p[j]
		}
		if n2 > worst {
			worst = n2
		}
	}
	return math.Sqrt(worst)
}

// dotBound returns the exact max over the universe of |⟨v, x⟩|.
func dotBound(u universe.Universe, v []float64) float64 {
	var worst float64
	buf := make([]float64, u.Dim())
	for i := 0; i < u.Size(); i++ {
		p := u.PointInto(i, buf)
		var dot float64
		for j := range v {
			dot += v[j] * p[j]
		}
		if a := math.Abs(dot); a > worst {
			worst = a
		}
	}
	return worst
}

// featBall returns the unit L2 ball over feature space together with the
// universe's certified feature bound.
func featBall(u universe.Universe) (*L2Ball, float64, error) {
	d, err := featureDim(u)
	if err != nil {
		return nil, 0, err
	}
	ball, err := NewL2Ball(d, 1)
	if err != nil {
		return nil, 0, err
	}
	fb := featureBound(u, d)
	if fb == 0 {
		return nil, 0, fmt.Errorf("universe features are identically zero")
	}
	return ball, fb, nil
}

// shortName renders a compact instance name kind{params} for transcripts.
func shortName(kind string, raw json.RawMessage) string {
	if len(raw) == 0 {
		return kind
	}
	s := string(raw)
	if len(s) > 48 {
		s = s[:45] + "..."
	}
	return kind + s
}

// checkCoords validates 0 ≤ c < dim for every coordinate index.
func checkCoords(coords []int, dim int) error {
	if len(coords) == 0 {
		return fmt.Errorf("needs at least one coordinate")
	}
	for _, c := range coords {
		if c < 0 || c >= dim {
			return fmt.Errorf("coordinate %d outside universe dim %d", c, dim)
		}
	}
	return nil
}

// The built-in kinds. init registration cannot fail: the table above is
// empty and every kind is distinct.
func init() {
	mustRegister := func(kind string, b Builder) {
		if err := Register(kind, b); err != nil {
			panic(err)
		}
	}

	// squared: least-squares regression of the attribute ⟨target, x⟩ from
	// the features. Default target is the label coordinate.
	mustRegister("squared", func(u universe.Universe, raw json.RawMessage) (Loss, error) {
		var p struct {
			Target []float64 `json:"target"`
		}
		if err := decodeParams(raw, &p); err != nil {
			return nil, err
		}
		ball, fb, err := featBall(u)
		if err != nil {
			return nil, err
		}
		if p.Target == nil {
			p.Target = make([]float64, u.Dim())
			p.Target[u.Dim()-1] = 1
		}
		if len(p.Target) != u.Dim() {
			return nil, fmt.Errorf("target has dim %d, universe dim is %d", len(p.Target), u.Dim())
		}
		tb := dotBound(u, p.Target)
		if tb == 0 {
			tb = 1 // degenerate target; any positive bound is valid
		}
		return NewSquared(shortName("squared", raw), ball, p.Target, fb, tb)
	})

	// logistic: margin classification of the label sign.
	mustRegister("logistic", func(u universe.Universe, raw json.RawMessage) (Loss, error) {
		p := struct {
			Margin float64 `json:"margin"`
			Temp   float64 `json:"temp"`
		}{Temp: 0.5}
		if err := decodeParams(raw, &p); err != nil {
			return nil, err
		}
		ball, fb, err := featBall(u)
		if err != nil {
			return nil, err
		}
		return NewLogistic(shortName("logistic", raw), ball, p.Margin, p.Temp, fb)
	})

	// hinge: smoothed SVM on the label sign.
	mustRegister("hinge", func(u universe.Universe, raw json.RawMessage) (Loss, error) {
		p := struct {
			Width float64 `json:"width"`
		}{Width: 1}
		if err := decodeParams(raw, &p); err != nil {
			return nil, err
		}
		ball, fb, err := featBall(u)
		if err != nil {
			return nil, err
		}
		return NewSmoothedHinge(shortName("hinge", raw), ball, p.Width, fb)
	})

	// huber: robust regression of the label.
	mustRegister("huber", func(u universe.Universe, raw json.RawMessage) (Loss, error) {
		p := struct {
			Delta float64 `json:"delta"`
		}{Delta: 0.5}
		if err := decodeParams(raw, &p); err != nil {
			return nil, err
		}
		ball, fb, err := featBall(u)
		if err != nil {
			return nil, err
		}
		return NewHuber(shortName("huber", raw), ball, p.Delta, fb)
	})

	// pinball: smoothed quantile regression of the label.
	mustRegister("pinball", func(u universe.Universe, raw json.RawMessage) (Loss, error) {
		p := struct {
			Tau    float64 `json:"tau"`
			Smooth float64 `json:"smooth"`
		}{Tau: 0.5, Smooth: 0.1}
		if err := decodeParams(raw, &p); err != nil {
			return nil, err
		}
		ball, fb, err := featBall(u)
		if err != nil {
			return nil, err
		}
		return NewPinball(shortName("pinball", raw), ball, p.Tau, p.Smooth, fb)
	})

	// linear: the affine loss with direction v over the full record (exact
	// minimizer known in closed form — useful as a ground-truth probe).
	mustRegister("linear", func(u universe.Universe, raw json.RawMessage) (Loss, error) {
		var p struct {
			V []float64 `json:"v"`
		}
		if err := decodeParams(raw, &p); err != nil {
			return nil, err
		}
		ball, _, err := featBall(u)
		if err != nil {
			return nil, err
		}
		if len(p.V) != u.Dim() {
			return nil, fmt.Errorf("v has dim %d, universe dim is %d", len(p.V), u.Dim())
		}
		fullBound := featureBound(u, u.Dim())
		if fullBound == 0 {
			return nil, fmt.Errorf("universe points are identically zero")
		}
		return NewLinearForm(shortName("linear", raw), ball, p.V, fullBound)
	})

	// halfspace: the counting query q(x) = 1{⟨w, x⟩ ≥ threshold}.
	mustRegister("halfspace", func(u universe.Universe, raw json.RawMessage) (Loss, error) {
		var p struct {
			W         []float64 `json:"w"`
			Threshold float64   `json:"threshold"`
		}
		if err := decodeParams(raw, &p); err != nil {
			return nil, err
		}
		if len(p.W) != u.Dim() {
			return nil, fmt.Errorf("w has dim %d, universe dim is %d", len(p.W), u.Dim())
		}
		w := append([]float64(nil), p.W...)
		t := p.Threshold
		return NewLinearQuery(shortName("halfspace", raw), func(x []float64) float64 {
			var s float64
			for j := range w {
				s += w[j] * x[j]
			}
			if s >= t {
				return 1
			}
			return 0
		})
	})

	// marginal: conjunction over sign-encoded coordinates; signs[i] gives
	// the required sign (+1/−1) of coordinate coords[i] (default all +1).
	mustRegister("marginal", func(u universe.Universe, raw json.RawMessage) (Loss, error) {
		var p struct {
			Coords []int `json:"coords"`
			Signs  []int `json:"signs"`
		}
		if err := decodeParams(raw, &p); err != nil {
			return nil, err
		}
		if err := checkCoords(p.Coords, u.Dim()); err != nil {
			return nil, err
		}
		if p.Signs == nil {
			p.Signs = make([]int, len(p.Coords))
			for i := range p.Signs {
				p.Signs[i] = 1
			}
		}
		if len(p.Signs) != len(p.Coords) {
			return nil, fmt.Errorf("signs has %d entries, coords %d", len(p.Signs), len(p.Coords))
		}
		coords := append([]int(nil), p.Coords...)
		signs := append([]int(nil), p.Signs...)
		return NewLinearQuery(shortName("marginal", raw), func(x []float64) float64 {
			for i, c := range coords {
				if (x[c] > 0) != (signs[i] > 0) {
					return 0
				}
			}
			return 1
		})
	})

	// parity: q(x) = 1 iff an even number of the named coordinates is
	// negative.
	mustRegister("parity", func(u universe.Universe, raw json.RawMessage) (Loss, error) {
		var p struct {
			Coords []int `json:"coords"`
		}
		if err := decodeParams(raw, &p); err != nil {
			return nil, err
		}
		if err := checkCoords(p.Coords, u.Dim()); err != nil {
			return nil, err
		}
		coords := append([]int(nil), p.Coords...)
		return NewLinearQuery(shortName("parity", raw), func(x []float64) float64 {
			neg := false
			for _, c := range coords {
				if x[c] < 0 {
					neg = !neg
				}
			}
			if neg {
				return 0
			}
			return 1
		})
	})

	// positive: the one-coordinate counting query q(x) = 1{x[coord] > 0}.
	mustRegister("positive", func(u universe.Universe, raw json.RawMessage) (Loss, error) {
		var p struct {
			Coord int `json:"coord"`
		}
		if err := decodeParams(raw, &p); err != nil {
			return nil, err
		}
		if p.Coord < 0 || p.Coord >= u.Dim() {
			return nil, fmt.Errorf("coord %d outside universe dim %d", p.Coord, u.Dim())
		}
		c := p.Coord
		return NewLinearQuery(shortName("positive", raw), func(x []float64) float64 {
			if x[c] > 0 {
				return 1
			}
			return 0
		})
	})
}
