package convex

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/universe"
)

// This file is the loss registry: a name → builder table that lets callers
// outside the process (the serving subsystem, config files, test harnesses)
// name a CM query by kind plus JSON-encoded parameters instead of holding a
// Loss value. Builders receive the (public) universe so they can certify
// feature and target bounds exactly, by enumeration — the same bounds the
// hand-constructed experiment losses use, but computed rather than assumed.
//
// Labeled-record convention (see losses.go): GLM-style kinds read a record
// as (features..., label) and optimize over Θ = the unit L2 ball in feature
// space; linear-query kinds are 1-dimensional with Θ = [0, 1].

// Spec names a registered loss family with JSON-encoded parameters. The
// zero Params builds the family's default instance.
type Spec struct {
	Kind   string          `json:"kind"`
	Params json.RawMessage `json:"params,omitempty"`
}

// Builder constructs a loss instance over the given universe. The universe
// is public information; builders may enumerate it to certify bounds.
type Builder func(u universe.Universe, params json.RawMessage) (Loss, error)

// Registration describes a loss kind completely: how to decode its
// parameters and how to build the loss. Kinds registered this way get full
// canonicalization — CanonicalKey decodes raw params over the
// default-initialized struct Defaults returns, so JSON key reordering and
// elided default fields collapse to one canonical form.
type Registration struct {
	// Defaults returns a pointer to the kind's parameter struct, preloaded
	// with the kind's default values over u (defaults may depend on the
	// universe, e.g. a label-coordinate target).
	Defaults func(u universe.Universe) any
	// Build constructs the loss from params, the value Defaults returned
	// with the spec's raw JSON strictly decoded over it. raw is the
	// original JSON, passed through for compact display names only.
	Build func(u universe.Universe, params any, raw json.RawMessage) (Loss, error)
}

// entry is one registered kind: either a full Registration or a legacy raw
// Builder (no parameter struct; canonicalization falls back to generic
// JSON normalization without default elision).
type entry struct {
	reg    Registration
	legacy Builder
}

var (
	regMu    sync.RWMutex
	registry = map[string]entry{}
)

// Register adds a loss kind with a raw JSON builder. It fails on duplicate
// or empty kinds; safe for concurrent use. Kinds registered this way are
// canonicalized by generic JSON normalization only — prefer RegisterKind,
// which also collapses elided default fields.
func Register(kind string, b Builder) error {
	if kind == "" || b == nil {
		return fmt.Errorf("convex: Register needs a kind and a builder")
	}
	return add(kind, entry{legacy: b})
}

// RegisterKind adds a fully described loss kind. It fails on duplicate or
// empty kinds; safe for concurrent use.
func RegisterKind(kind string, r Registration) error {
	if kind == "" || r.Defaults == nil || r.Build == nil {
		return fmt.Errorf("convex: RegisterKind needs a kind, a defaults factory, and a builder")
	}
	return add(kind, entry{reg: r})
}

func add(kind string, e entry) error {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[kind]; dup {
		return fmt.Errorf("convex: loss kind %q already registered", kind)
	}
	registry[kind] = e
	return nil
}

// Kinds returns the registered kind names, sorted.
func Kinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func lookup(kind string) (entry, bool) {
	regMu.RLock()
	e, ok := registry[kind]
	regMu.RUnlock()
	return e, ok
}

// Build constructs the loss named by spec over u.
func Build(u universe.Universe, spec Spec) (Loss, error) {
	e, ok := lookup(spec.Kind)
	if !ok {
		return nil, fmt.Errorf("convex: unknown loss kind %q (have %v)", spec.Kind, Kinds())
	}
	l, err := build(u, e, spec)
	if err != nil {
		return nil, fmt.Errorf("convex: building %q: %w", spec.Kind, err)
	}
	return l, nil
}

func build(u universe.Universe, e entry, spec Spec) (Loss, error) {
	if e.legacy != nil {
		return e.legacy(u, spec.Params)
	}
	p := e.reg.Defaults(u)
	if err := decodeParams(spec.Params, p); err != nil {
		return nil, err
	}
	return e.reg.Build(u, p, spec.Params)
}

// CanonicalKey maps spec to its canonical cache key: a JSON array
// [kind, params] where params is the kind's parameter struct — defaults
// applied, raw JSON decoded over them, re-marshaled in fixed field order.
// Two specs naming the same loss instance (JSON key reordering, explicit
// default values vs. elided fields) map to the same key; specs with
// distinct parameter values never collide, because the struct marshal is
// injective on parameter values. Kinds registered with a legacy raw
// Builder fall back to generic JSON normalization (sorted object keys, no
// default elision). The key never touches private data — it is a pure
// function of the public spec — so it is safe to record in transcripts and
// serve as a cache index.
func CanonicalKey(u universe.Universe, spec Spec) (string, error) {
	e, ok := lookup(spec.Kind)
	if !ok {
		return "", fmt.Errorf("convex: unknown loss kind %q (have %v)", spec.Kind, Kinds())
	}
	var params any
	if e.legacy != nil {
		if len(spec.Params) > 0 {
			if err := decodeParams(spec.Params, &params); err != nil {
				return "", fmt.Errorf("convex: canonicalizing %q: %w", spec.Kind, err)
			}
		}
	} else {
		p := e.reg.Defaults(u)
		if err := decodeParams(spec.Params, p); err != nil {
			return "", fmt.Errorf("convex: canonicalizing %q: %w", spec.Kind, err)
		}
		params = p
	}
	key, err := json.Marshal([2]any{spec.Kind, params})
	if err != nil {
		return "", fmt.Errorf("convex: canonicalizing %q: %w", spec.Kind, err)
	}
	return string(key), nil
}

// decodeParams strictly decodes raw into v, treating empty params as the
// zero value. Unknown fields are rejected so API typos surface as errors
// instead of silently building a default instance.
func decodeParams(raw json.RawMessage, v any) error {
	if len(raw) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// featureDim returns u.Dim()−1 for labeled-record losses, rejecting
// universes too small to carry a label coordinate.
func featureDim(u universe.Universe) (int, error) {
	d := u.Dim() - 1
	if d < 1 {
		return 0, fmt.Errorf("labeled-record loss needs universe dim ≥ 2, got %d", u.Dim())
	}
	return d, nil
}

// featureBound returns the exact max over the universe of ‖x[:d]‖₂. Past
// the dense-enumeration limit, factored universes compute it coordinate by
// coordinate: coordinates vary independently in a product universe, so the
// max of the separable sum Σ x[j]² is the sum of per-coordinate maxima —
// the same terms, added in the same order, as enumerating a point that
// attains every per-coordinate maximum simultaneously.
func featureBound(u universe.Universe, d int) float64 {
	if f, ok := u.(universe.Factored); ok && u.Size() > universe.DenseLimit {
		var n2 float64
		for j := 0; j < d; j++ {
			var worst float64
			for lv := 0; lv < f.Levels(j); lv++ {
				v := f.CoordValue(j, lv)
				if v*v > worst {
					worst = v * v
				}
			}
			n2 += worst
		}
		return math.Sqrt(n2)
	}
	var worst float64
	buf := make([]float64, u.Dim())
	for i := 0; i < u.Size(); i++ {
		p := u.PointInto(i, buf)
		var n2 float64
		for j := 0; j < d; j++ {
			n2 += p[j] * p[j]
		}
		if n2 > worst {
			worst = n2
		}
	}
	return math.Sqrt(worst)
}

// dotBound returns the exact max over the universe of |⟨v, x⟩|. Past the
// dense-enumeration limit, factored universes again decompose per
// coordinate: max⟨v, x⟩ and min⟨v, x⟩ are each sums of per-coordinate
// extrema of v[j]·x[j], and the bound is the larger of max and −min
// (negation of an IEEE sum is exact, so this matches what enumerating the
// extremal points would produce bit for bit).
func dotBound(u universe.Universe, v []float64) float64 {
	if f, ok := u.(universe.Factored); ok && u.Size() > universe.DenseLimit {
		var hiSum, loSum float64
		for j := range v {
			hiTerm, loTerm := math.Inf(-1), math.Inf(1)
			for lv := 0; lv < f.Levels(j); lv++ {
				t := v[j] * f.CoordValue(j, lv)
				if t > hiTerm {
					hiTerm = t
				}
				if t < loTerm {
					loTerm = t
				}
			}
			hiSum += hiTerm
			loSum += loTerm
		}
		return math.Max(hiSum, -loSum)
	}
	var worst float64
	buf := make([]float64, u.Dim())
	for i := 0; i < u.Size(); i++ {
		p := u.PointInto(i, buf)
		var dot float64
		for j := range v {
			dot += v[j] * p[j]
		}
		if a := math.Abs(dot); a > worst {
			worst = a
		}
	}
	return worst
}

// featBall returns the unit L2 ball over feature space together with the
// universe's certified feature bound.
func featBall(u universe.Universe) (*L2Ball, float64, error) {
	d, err := featureDim(u)
	if err != nil {
		return nil, 0, err
	}
	ball, err := NewL2Ball(d, 1)
	if err != nil {
		return nil, 0, err
	}
	fb := featureBound(u, d)
	if fb == 0 {
		return nil, 0, fmt.Errorf("universe features are identically zero")
	}
	return ball, fb, nil
}

// shortName renders a compact instance name kind{params} for transcripts.
func shortName(kind string, raw json.RawMessage) string {
	if len(raw) == 0 {
		return kind
	}
	s := string(raw)
	if len(s) > 48 {
		s = s[:45] + "..."
	}
	return kind + s
}

// checkCoords validates 0 ≤ c < dim for every coordinate index.
func checkCoords(coords []int, dim int) error {
	if len(coords) == 0 {
		return fmt.Errorf("needs at least one coordinate")
	}
	for _, c := range coords {
		if c < 0 || c >= dim {
			return fmt.Errorf("coordinate %d outside universe dim %d", c, dim)
		}
	}
	return nil
}

// Parameter structs of the built-in kinds. Field order is part of the
// canonical key (CanonicalKey marshals these structs), so reordering
// fields is a cache-key change.

type squaredParams struct {
	Target []float64 `json:"target"`
}

type logisticParams struct {
	Margin float64 `json:"margin"`
	Temp   float64 `json:"temp"`
}

type hingeParams struct {
	Width float64 `json:"width"`
}

type huberParams struct {
	Delta float64 `json:"delta"`
}

type pinballParams struct {
	Tau    float64 `json:"tau"`
	Smooth float64 `json:"smooth"`
}

type linearParams struct {
	V []float64 `json:"v"`
}

type halfspaceParams struct {
	W         []float64 `json:"w"`
	Threshold float64   `json:"threshold"`
}

type marginalParams struct {
	Coords []int `json:"coords"`
	Signs  []int `json:"signs"`
}

type parityParams struct {
	Coords []int `json:"coords"`
}

type positiveParams struct {
	Coord int `json:"coord"`
}

// The built-in kinds. init registration cannot fail: the table above is
// empty and every kind is distinct.
func init() {
	mustRegister := func(kind string, r Registration) {
		if err := RegisterKind(kind, r); err != nil {
			panic(err)
		}
	}

	// squared: least-squares regression of the attribute ⟨target, x⟩ from
	// the features. Default target is the label coordinate.
	mustRegister("squared", Registration{
		Defaults: func(u universe.Universe) any {
			t := make([]float64, u.Dim())
			if u.Dim() > 0 {
				t[u.Dim()-1] = 1
			}
			return &squaredParams{Target: t}
		},
		Build: func(u universe.Universe, params any, raw json.RawMessage) (Loss, error) {
			p := params.(*squaredParams)
			ball, fb, err := featBall(u)
			if err != nil {
				return nil, err
			}
			if p.Target == nil {
				// An explicit {"target": null} nulls out the pre-filled
				// default slice; re-apply the label-coordinate default.
				p.Target = make([]float64, u.Dim())
				p.Target[u.Dim()-1] = 1
			}
			if len(p.Target) != u.Dim() {
				return nil, fmt.Errorf("target has dim %d, universe dim is %d", len(p.Target), u.Dim())
			}
			tb := dotBound(u, p.Target)
			if tb == 0 {
				tb = 1 // degenerate target; any positive bound is valid
			}
			return NewSquared(shortName("squared", raw), ball, p.Target, fb, tb)
		},
	})

	// logistic: margin classification of the label sign.
	mustRegister("logistic", Registration{
		Defaults: func(universe.Universe) any { return &logisticParams{Temp: 0.5} },
		Build: func(u universe.Universe, params any, raw json.RawMessage) (Loss, error) {
			p := params.(*logisticParams)
			ball, fb, err := featBall(u)
			if err != nil {
				return nil, err
			}
			return NewLogistic(shortName("logistic", raw), ball, p.Margin, p.Temp, fb)
		},
	})

	// hinge: smoothed SVM on the label sign.
	mustRegister("hinge", Registration{
		Defaults: func(universe.Universe) any { return &hingeParams{Width: 1} },
		Build: func(u universe.Universe, params any, raw json.RawMessage) (Loss, error) {
			p := params.(*hingeParams)
			ball, fb, err := featBall(u)
			if err != nil {
				return nil, err
			}
			return NewSmoothedHinge(shortName("hinge", raw), ball, p.Width, fb)
		},
	})

	// huber: robust regression of the label.
	mustRegister("huber", Registration{
		Defaults: func(universe.Universe) any { return &huberParams{Delta: 0.5} },
		Build: func(u universe.Universe, params any, raw json.RawMessage) (Loss, error) {
			p := params.(*huberParams)
			ball, fb, err := featBall(u)
			if err != nil {
				return nil, err
			}
			return NewHuber(shortName("huber", raw), ball, p.Delta, fb)
		},
	})

	// pinball: smoothed quantile regression of the label.
	mustRegister("pinball", Registration{
		Defaults: func(universe.Universe) any { return &pinballParams{Tau: 0.5, Smooth: 0.1} },
		Build: func(u universe.Universe, params any, raw json.RawMessage) (Loss, error) {
			p := params.(*pinballParams)
			ball, fb, err := featBall(u)
			if err != nil {
				return nil, err
			}
			return NewPinball(shortName("pinball", raw), ball, p.Tau, p.Smooth, fb)
		},
	})

	// linear: the affine loss with direction v over the full record (exact
	// minimizer known in closed form — useful as a ground-truth probe).
	mustRegister("linear", Registration{
		Defaults: func(universe.Universe) any { return &linearParams{} },
		Build: func(u universe.Universe, params any, raw json.RawMessage) (Loss, error) {
			p := params.(*linearParams)
			ball, _, err := featBall(u)
			if err != nil {
				return nil, err
			}
			if len(p.V) != u.Dim() {
				return nil, fmt.Errorf("v has dim %d, universe dim is %d", len(p.V), u.Dim())
			}
			fullBound := featureBound(u, u.Dim())
			if fullBound == 0 {
				return nil, fmt.Errorf("universe points are identically zero")
			}
			return NewLinearForm(shortName("linear", raw), ball, p.V, fullBound)
		},
	})

	// halfspace: the counting query q(x) = 1{⟨w, x⟩ ≥ threshold}.
	mustRegister("halfspace", Registration{
		Defaults: func(universe.Universe) any { return &halfspaceParams{} },
		Build: func(u universe.Universe, params any, raw json.RawMessage) (Loss, error) {
			p := params.(*halfspaceParams)
			if len(p.W) != u.Dim() {
				return nil, fmt.Errorf("w has dim %d, universe dim is %d", len(p.W), u.Dim())
			}
			w := append([]float64(nil), p.W...)
			t := p.Threshold
			q, err := NewLinearQuery(shortName("halfspace", raw), func(x []float64) float64 {
				var s float64
				for j := range w {
					s += w[j] * x[j]
				}
				if s >= t {
					return 1
				}
				return 0
			})
			if err != nil {
				return nil, err
			}
			// Zero-weight coordinates contribute nothing to ⟨w, x⟩, so the
			// predicate's support is exactly the nonzero entries of w.
			supp := make([]int, 0, len(w))
			for j, wj := range w {
				if wj != 0 {
					supp = append(supp, j)
				}
			}
			return q.WithSupport(supp), nil
		},
	})

	// marginal: conjunction over sign-encoded coordinates; signs[i] gives
	// the required sign (+1/−1) of coordinate coords[i] (default all +1).
	mustRegister("marginal", Registration{
		Defaults: func(universe.Universe) any { return &marginalParams{} },
		Build: func(u universe.Universe, params any, raw json.RawMessage) (Loss, error) {
			p := params.(*marginalParams)
			if err := checkCoords(p.Coords, u.Dim()); err != nil {
				return nil, err
			}
			signs := p.Signs
			if signs == nil {
				signs = make([]int, len(p.Coords))
				for i := range signs {
					signs[i] = 1
				}
			}
			signs = append([]int(nil), signs...)
			if len(signs) != len(p.Coords) {
				return nil, fmt.Errorf("signs has %d entries, coords %d", len(signs), len(p.Coords))
			}
			coords := append([]int(nil), p.Coords...)
			q, err := NewLinearQuery(shortName("marginal", raw), func(x []float64) float64 {
				for i, c := range coords {
					if (x[c] > 0) != (signs[i] > 0) {
						return 0
					}
				}
				return 1
			})
			if err != nil {
				return nil, err
			}
			return q.WithSupport(coords), nil
		},
	})

	// parity: q(x) = 1 iff an even number of the named coordinates is
	// negative.
	mustRegister("parity", Registration{
		Defaults: func(universe.Universe) any { return &parityParams{} },
		Build: func(u universe.Universe, params any, raw json.RawMessage) (Loss, error) {
			p := params.(*parityParams)
			if err := checkCoords(p.Coords, u.Dim()); err != nil {
				return nil, err
			}
			coords := append([]int(nil), p.Coords...)
			q, err := NewLinearQuery(shortName("parity", raw), func(x []float64) float64 {
				neg := false
				for _, c := range coords {
					if x[c] < 0 {
						neg = !neg
					}
				}
				if neg {
					return 0
				}
				return 1
			})
			if err != nil {
				return nil, err
			}
			return q.WithSupport(coords), nil
		},
	})

	// positive: the one-coordinate counting query q(x) = 1{x[coord] > 0}.
	mustRegister("positive", Registration{
		Defaults: func(universe.Universe) any { return &positiveParams{} },
		Build: func(u universe.Universe, params any, raw json.RawMessage) (Loss, error) {
			p := params.(*positiveParams)
			if p.Coord < 0 || p.Coord >= u.Dim() {
				return nil, fmt.Errorf("coord %d outside universe dim %d", p.Coord, u.Dim())
			}
			c := p.Coord
			q, err := NewLinearQuery(shortName("positive", raw), func(x []float64) float64 {
				if x[c] > 0 {
					return 1
				}
				return 0
			})
			if err != nil {
				return nil, err
			}
			return q.WithSupport([]int{c}), nil
		},
	})
}
