// Package convex defines the convex-minimization query model of paper §2.2:
// a CM query is a convex loss ℓ : Θ × X → R over a convex parameter set Θ,
// and its answer on a histogram D is argmin_θ Σ_x D(x)·ℓ(θ; x).
//
// The package provides the Domain and Loss abstractions, a library of loss
// families matching the paper's applications (§4.2): Lipschitz bounded
// losses, generalized linear models, and strongly convex losses, plus the
// embedding of plain linear queries as 1-dimensional CM queries. Every loss
// certifies its own Lipschitz constant, strong-convexity modulus, and the
// paper's scale parameter S = max |⟨θ−θ′, ∇ℓ_x(θ)⟩|.
package convex

import (
	"fmt"
	"math"

	"repro/internal/vecmath"
)

// Domain is a convex parameter set Θ ⊆ R^dim supporting Euclidean
// projection. Implementations are immutable.
type Domain interface {
	// Dim returns the ambient dimension of Θ.
	Dim() int
	// Project returns the Euclidean projection of theta onto Θ (a fresh
	// slice).
	Project(theta []float64) []float64
	// Contains reports whether theta lies in Θ up to tolerance tol.
	Contains(theta []float64, tol float64) bool
	// Diameter returns an upper bound on sup{‖θ−θ′‖₂ : θ, θ′ ∈ Θ}.
	Diameter() float64
	// Center returns an interior starting point for iterative solvers.
	Center() []float64
	// String describes the domain.
	String() string
}

// LinearMinimizer is implemented by domains with a cheap linear
// minimization oracle argmin_{θ∈Θ} ⟨dir, θ⟩ — the primitive projection-free
// (Frank–Wolfe) solvers need.
type LinearMinimizer interface {
	// MinimizeLinear returns a vertex of Θ minimizing ⟨dir, θ⟩.
	MinimizeLinear(dir []float64) []float64
}

// L2Ball is the domain {θ ∈ R^d : ‖θ‖₂ ≤ R} — the paper's "d-bounded"
// restriction with R = 1.
type L2Ball struct {
	d int
	r float64
}

// NewL2Ball constructs the radius-r ball in R^d.
func NewL2Ball(d int, r float64) (*L2Ball, error) {
	if d < 1 {
		return nil, fmt.Errorf("convex: ball dimension %d < 1", d)
	}
	if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return nil, fmt.Errorf("convex: ball radius %v must be positive and finite", r)
	}
	return &L2Ball{d: d, r: r}, nil
}

// Dim returns d.
func (b *L2Ball) Dim() int { return b.d }

// Radius returns R.
func (b *L2Ball) Radius() float64 { return b.r }

// Project clips theta to the ball.
func (b *L2Ball) Project(theta []float64) []float64 {
	return vecmath.ProjectL2Ball(theta, b.r)
}

// Contains reports ‖θ‖ ≤ R + tol.
func (b *L2Ball) Contains(theta []float64, tol float64) bool {
	return len(theta) == b.d && vecmath.Norm2(theta) <= b.r+tol
}

// Diameter returns 2R.
func (b *L2Ball) Diameter() float64 { return 2 * b.r }

// Center returns the origin.
func (b *L2Ball) Center() []float64 { return vecmath.Zeros(b.d) }

// String describes the ball.
func (b *L2Ball) String() string { return fmt.Sprintf("L2Ball(d=%d, r=%g)", b.d, b.r) }

// MinimizeLinear returns −R·dir/‖dir‖ (the ball's supporting point), or
// the center for dir = 0.
func (b *L2Ball) MinimizeLinear(dir []float64) []float64 {
	n := vecmath.Norm2(dir)
	if n == 0 {
		return b.Center()
	}
	return vecmath.Scale(-b.r/n, dir)
}

// Interval is the 1-dimensional domain [lo, hi], used to embed linear
// queries as CM queries.
type Interval struct {
	lo, hi float64
}

// NewInterval constructs [lo, hi] with lo < hi.
func NewInterval(lo, hi float64) (*Interval, error) {
	if !(lo < hi) || math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("convex: invalid interval [%v, %v]", lo, hi)
	}
	return &Interval{lo: lo, hi: hi}, nil
}

// Dim returns 1.
func (iv *Interval) Dim() int { return 1 }

// Project clamps into [lo, hi].
func (iv *Interval) Project(theta []float64) []float64 {
	return []float64{vecmath.Clamp(theta[0], iv.lo, iv.hi)}
}

// Contains reports lo − tol ≤ θ ≤ hi + tol.
func (iv *Interval) Contains(theta []float64, tol float64) bool {
	return len(theta) == 1 && theta[0] >= iv.lo-tol && theta[0] <= iv.hi+tol
}

// Diameter returns hi − lo.
func (iv *Interval) Diameter() float64 { return iv.hi - iv.lo }

// Center returns the midpoint.
func (iv *Interval) Center() []float64 { return []float64{(iv.lo + iv.hi) / 2} }

// Bounds returns (lo, hi).
func (iv *Interval) Bounds() (float64, float64) { return iv.lo, iv.hi }

// String describes the interval.
func (iv *Interval) String() string { return fmt.Sprintf("Interval[%g, %g]", iv.lo, iv.hi) }

// MinimizeLinear returns the endpoint minimizing dir·θ.
func (iv *Interval) MinimizeLinear(dir []float64) []float64 {
	if dir[0] > 0 {
		return []float64{iv.lo}
	}
	return []float64{iv.hi}
}

// Box is the domain [lo, hi]^d.
type Box struct {
	d      int
	lo, hi float64
}

// NewBox constructs [lo, hi]^d.
func NewBox(d int, lo, hi float64) (*Box, error) {
	if d < 1 {
		return nil, fmt.Errorf("convex: box dimension %d < 1", d)
	}
	if !(lo < hi) || math.IsNaN(lo) || math.IsNaN(hi) {
		return nil, fmt.Errorf("convex: invalid box bounds [%v, %v]", lo, hi)
	}
	return &Box{d: d, lo: lo, hi: hi}, nil
}

// Dim returns d.
func (b *Box) Dim() int { return b.d }

// Project clamps coordinatewise.
func (b *Box) Project(theta []float64) []float64 {
	return vecmath.ProjectBox(theta, b.lo, b.hi)
}

// Contains reports coordinatewise membership up to tol.
func (b *Box) Contains(theta []float64, tol float64) bool {
	if len(theta) != b.d {
		return false
	}
	for _, v := range theta {
		if v < b.lo-tol || v > b.hi+tol {
			return false
		}
	}
	return true
}

// Diameter returns (hi−lo)·√d.
func (b *Box) Diameter() float64 { return (b.hi - b.lo) * math.Sqrt(float64(b.d)) }

// Center returns the midpoint in every coordinate.
func (b *Box) Center() []float64 {
	c := make([]float64, b.d)
	vecmath.Fill(c, (b.lo+b.hi)/2)
	return c
}

// String describes the box.
func (b *Box) String() string { return fmt.Sprintf("Box(d=%d, [%g,%g])", b.d, b.lo, b.hi) }

// MinimizeLinear returns the box corner minimizing ⟨dir, θ⟩.
func (b *Box) MinimizeLinear(dir []float64) []float64 {
	out := make([]float64, b.d)
	for i, v := range dir {
		if v > 0 {
			out[i] = b.lo
		} else {
			out[i] = b.hi
		}
	}
	return out
}
