package convex

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/universe"
)

// canonGrid is the canonicalization fixture universe: 2 features + label.
func canonGrid(t testing.TB) universe.Universe {
	t.Helper()
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func key(t testing.TB, u universe.Universe, kind, params string) string {
	t.Helper()
	spec := Spec{Kind: kind}
	if params != "" {
		spec.Params = json.RawMessage(params)
	}
	k, err := CanonicalKey(u, spec)
	if err != nil {
		t.Fatalf("CanonicalKey(%s %s): %v", kind, params, err)
	}
	return k
}

// TestCanonicalKeyEquivalences pins the cache-key contract: JSON key
// reordering and explicit-default-vs-elided fields map to the same key;
// distinct parameter values never collide; distinct kinds never collide.
func TestCanonicalKeyEquivalences(t *testing.T) {
	g := canonGrid(t)
	cases := []struct {
		kind string
		same []string // all must share one canonical key
		diff []string // each must differ from the same-group key
	}{
		{
			kind: "logistic",
			same: []string{"", `{}`, `{"temp":0.5}`, `{"margin":0}`, `{"margin":0,"temp":0.5}`, `{"temp":0.5,"margin":0}`},
			diff: []string{`{"temp":0.6}`, `{"margin":0.1}`, `{"margin":0.1,"temp":0.6}`},
		},
		{
			kind: "squared",
			same: []string{"", `{"target":[0,0,1]}`},
			diff: []string{`{"target":[0,1,0]}`, `{"target":[0,0,0.5]}`},
		},
		{
			kind: "hinge",
			same: []string{"", `{"width":1}`},
			diff: []string{`{"width":2}`},
		},
		{
			kind: "huber",
			same: []string{"", `{"delta":0.5}`},
			diff: []string{`{"delta":0.25}`},
		},
		{
			kind: "pinball",
			same: []string{"", `{"tau":0.5,"smooth":0.1}`, `{"smooth":0.1,"tau":0.5}`, `{"smooth":0.1}`},
			diff: []string{`{"tau":0.9}`, `{"smooth":0.2}`},
		},
		{
			kind: "halfspace",
			same: []string{`{"w":[1,0,0],"threshold":0.5}`, `{"threshold":0.5,"w":[1,0,0]}`},
			diff: []string{`{"w":[1,0,0]}`, `{"w":[0,1,0],"threshold":0.5}`},
		},
		{
			kind: "marginal",
			same: []string{`{"coords":[0,1],"signs":[1,-1]}`, `{"signs":[1,-1],"coords":[0,1]}`},
			diff: []string{`{"coords":[0,1]}`, `{"coords":[1,0],"signs":[1,-1]}`, `{"coords":[0,1],"signs":[-1,1]}`},
		},
		{
			kind: "positive",
			same: []string{"", `{}`, `{"coord":0}`},
			diff: []string{`{"coord":1}`, `{"coord":2}`},
		},
		{
			kind: "parity",
			same: []string{`{"coords":[0,2]}`},
			diff: []string{`{"coords":[2,0]}`, `{"coords":[0,1]}`},
		},
	}
	seen := map[string]string{} // canonical key → "kind params" that produced it
	for _, c := range cases {
		base := key(t, g, c.kind, c.same[0])
		for _, p := range c.same[1:] {
			if got := key(t, g, c.kind, p); got != base {
				t.Errorf("%s: %q canonicalizes to %s, want %s (from %q)", c.kind, p, got, base, c.same[0])
			}
		}
		for _, p := range c.diff {
			if got := key(t, g, c.kind, p); got == base {
				t.Errorf("%s: %q collides with %q on key %s", c.kind, p, c.same[0], base)
			}
		}
		// Cross-kind and cross-params: every distinct group key is globally
		// unique.
		all := append([]string{c.same[0]}, c.diff...)
		for _, p := range all {
			k := key(t, g, c.kind, p)
			if prev, dup := seen[k]; dup {
				t.Errorf("key %s produced by both %q and %s %q", k, prev, c.kind, p)
			}
			seen[k] = c.kind + " " + p
		}
	}
}

// TestCanonicalKeyRandomReorder is the property test: for random parameter
// values, any key-order permutation of the JSON object canonicalizes to
// the same key, and distinct values to distinct keys.
func TestCanonicalKeyRandomReorder(t *testing.T) {
	g := canonGrid(t)
	rng := rand.New(rand.NewSource(42))
	// fields renders a JSON object from name/value pairs in the given order.
	obj := func(names []string, vals map[string]string, perm []int) string {
		parts := make([]string, 0, len(names))
		for _, i := range perm {
			parts = append(parts, fmt.Sprintf("%q:%s", names[i], vals[names[i]]))
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
	seen := map[string]string{}
	for trial := 0; trial < 200; trial++ {
		kind := []string{"logistic", "pinball", "halfspace"}[trial%3]
		var names []string
		vals := map[string]string{}
		switch kind {
		case "logistic":
			names = []string{"margin", "temp"}
			vals["margin"] = fmt.Sprintf("%v", float64(rng.Intn(5))/10)
			vals["temp"] = fmt.Sprintf("%v", 0.1+float64(rng.Intn(9))/10)
		case "pinball":
			names = []string{"tau", "smooth"}
			vals["tau"] = fmt.Sprintf("%v", 0.1+float64(rng.Intn(8))/10)
			vals["smooth"] = fmt.Sprintf("%v", 0.05+float64(rng.Intn(4))/10)
		case "halfspace":
			names = []string{"w", "threshold"}
			vals["w"] = fmt.Sprintf("[%v,%v,%v]", rng.Intn(3), rng.Intn(3), rng.Intn(3))
			vals["threshold"] = fmt.Sprintf("%v", float64(rng.Intn(10))/10)
		}
		identity := make([]int, len(names))
		for i := range identity {
			identity[i] = i
		}
		base := key(t, g, kind, obj(names, vals, identity))
		for p := 0; p < 3; p++ {
			perm := rng.Perm(len(names))
			if got := key(t, g, kind, obj(names, vals, perm)); got != base {
				t.Fatalf("%s: permuted params canonicalize to %s, want %s", kind, got, base)
			}
		}
		// Distinct value tuples must produce distinct keys (same tuple seen
		// twice across trials legitimately repeats its key).
		tuple := kind + "|" + obj(names, vals, identity)
		if prev, dup := seen[base]; dup && prev != tuple {
			t.Fatalf("collision: %s and %s share key %s", prev, tuple, base)
		}
		seen[base] = tuple
	}
}

// TestSquaredNullTargetBuildsDefault pins that an explicit
// {"target": null} — which nulls out the pre-filled default slice during
// decoding — still builds the default label-coordinate instance instead
// of failing the dimension check.
func TestSquaredNullTargetBuildsDefault(t *testing.T) {
	g := canonGrid(t)
	def, err := Build(g, Spec{Kind: "squared"})
	if err != nil {
		t.Fatal(err)
	}
	nul, err := Build(g, Spec{Kind: "squared", Params: json.RawMessage(`{"target":null}`)})
	if err != nil {
		t.Fatalf("explicit null target: %v", err)
	}
	theta := []float64{0.3, -0.2}
	x := []float64{0.5, 0.5, 1}
	if def.Value(theta, x) != nul.Value(theta, x) {
		t.Fatal("null-target instance differs from the default instance")
	}
}

// TestCanonicalKeyErrors pins the failure modes: unknown kinds and
// malformed or unknown-field params are rejected, exactly like Build.
func TestCanonicalKeyErrors(t *testing.T) {
	g := canonGrid(t)
	if _, err := CanonicalKey(g, Spec{Kind: "nope"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, bad := range []string{`{"tempp":0.5}`, `{"temp":`, `[1,2]`} {
		if _, err := CanonicalKey(g, Spec{Kind: "logistic", Params: json.RawMessage(bad)}); err == nil {
			t.Fatalf("malformed params %q accepted", bad)
		}
	}
}

// TestCanonicalKeyLegacyBuilder covers the raw-Builder fallback: generic
// JSON normalization sorts object keys, so reordering still collapses.
func TestCanonicalKeyLegacyBuilder(t *testing.T) {
	g := canonGrid(t)
	if err := Register("canon-legacy-test", func(u universe.Universe, raw json.RawMessage) (Loss, error) {
		return NewLinearQuery(shortName("canon-legacy-test", raw), func(x []float64) float64 {
			if x[0] > 0 {
				return 1
			}
			return 0
		})
	}); err != nil {
		t.Fatal(err)
	}
	a := key(t, g, "canon-legacy-test", `{"a":1,"b":[2,3]}`)
	b := key(t, g, "canon-legacy-test", `{"b":[2,3],"a":1}`)
	if a != b {
		t.Fatalf("legacy normalization differs: %s vs %s", a, b)
	}
	if c := key(t, g, "canon-legacy-test", `{"a":2,"b":[2,3]}`); c == a {
		t.Fatalf("legacy distinct params collide on %s", c)
	}
}

// FuzzCanonicalKey fuzzes raw params: whenever canonicalization succeeds,
// the key must be a well-formed [kind, params] JSON array, and
// re-canonicalizing the embedded params must be a fixed point.
func FuzzCanonicalKey(f *testing.F) {
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		f.Fatal(err)
	}
	kinds := Kinds()
	for _, seed := range []string{"", `{}`, `{"temp":0.7}`, `{"coords":[0,1]}`, `{"w":[1,0,0],"threshold":0.25}`, `{"target":[0,0,1]}`} {
		for i := range kinds {
			f.Add(i, seed)
		}
	}
	f.Fuzz(func(t *testing.T, kindIdx int, raw string) {
		if kindIdx < 0 {
			kindIdx = -kindIdx
		}
		kind := kinds[kindIdx%len(kinds)]
		spec := Spec{Kind: kind}
		if raw != "" {
			spec.Params = json.RawMessage(raw)
		}
		k1, err := CanonicalKey(g, spec)
		if err != nil {
			return // malformed params are allowed to fail
		}
		var arr [2]json.RawMessage
		if err := json.Unmarshal([]byte(k1), &arr); err != nil {
			t.Fatalf("key %q is not a JSON pair: %v", k1, err)
		}
		var gotKind string
		if err := json.Unmarshal(arr[0], &gotKind); err != nil || gotKind != kind {
			t.Fatalf("key %q names kind %q, want %q", k1, gotKind, kind)
		}
		k2, err := CanonicalKey(g, Spec{Kind: kind, Params: arr[1]})
		if err != nil {
			t.Fatalf("canonical params %s of %q fail to re-canonicalize: %v", arr[1], k1, err)
		}
		if k2 != k1 {
			t.Fatalf("canonicalization is not a fixed point: %q → %q", k1, k2)
		}
	})
}
