package convex

import (
	"math"
	"testing"

	"repro/internal/histogram"
	"repro/internal/sample"
	"repro/internal/universe"
	"repro/internal/vecmath"
)

// testGrid builds a small labeled universe shared by loss tests.
func testGrid(t *testing.T) *universe.LabeledGrid {
	t.Helper()
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// allLosses builds one instance of every loss family over the test grid.
func allLosses(t *testing.T) []Loss {
	t.Helper()
	ball, err := NewL2Ball(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := NewSquared("sq", ball, []float64{0, 0, 1}, 1.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := NewLogistic("lg", ball, 0.1, 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSmoothedHinge("sh", ball, 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := NewHuber("hb", ball, 0.3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := NewLinearForm("lf", ball, []float64{0.6, 0, 0.8}, math.Sqrt2)
	if err != nil {
		t.Fatal(err)
	}
	lq, err := NewLinearQuery("lq", func(x []float64) float64 {
		if x[0] > 0 {
			return 1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewRegularized(sq, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := NewPinball("pb", ball, 0.3, 0.1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// zmax = R·featBound = 1 over the unit ball with unit features.
	ps, err := NewPoisson("ps", ball, 1.0, 1.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScaled(hb, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return []Loss{sq, lg, sh, hb, lf, lq, rg, pb, ps, sc}
}

// randomTheta draws a parameter in the loss's domain.
func randomTheta(src *sample.Source, dom Domain) []float64 {
	v := make([]float64, dom.Dim())
	for i := range v {
		v[i] = src.Gaussian(0, 1)
	}
	return dom.Project(v)
}

// TestGradientFiniteDifference checks every loss's analytic gradient against
// central finite differences at random interior points and records.
func TestGradientFiniteDifference(t *testing.T) {
	g := testGrid(t)
	src := sample.New(1)
	const h = 1e-6
	for _, l := range allLosses(t) {
		dom := l.Domain()
		d := dom.Dim()
		grad := make([]float64, d)
		for trial := 0; trial < 40; trial++ {
			// Stay strictly inside the domain so the loss is smooth there.
			theta := vecmath.Scale(0.7, randomTheta(src, dom))
			if _, ok := dom.(*Interval); ok {
				theta = []float64{0.3 + 0.4*src.Float64()}
			}
			x := g.Point(src.Intn(g.Size()))
			if d > len(x) {
				t.Fatalf("%s: domain dim %d exceeds record dim", l.Name(), d)
			}
			l.Grad(grad, theta, x)
			for i := 0; i < d; i++ {
				tp := vecmath.Copy(theta)
				tm := vecmath.Copy(theta)
				tp[i] += h
				tm[i] -= h
				fd := (l.Value(tp, x) - l.Value(tm, x)) / (2 * h)
				if math.Abs(fd-grad[i]) > 1e-4*(1+math.Abs(fd)) {
					t.Errorf("%s: grad[%d] = %v, finite diff %v (θ=%v)", l.Name(), i, grad[i], fd, theta)
				}
			}
		}
	}
}

// TestConvexityAlongSegments verifies midpoint convexity of every loss in θ
// on random segments and records — the defining property of a CM query.
func TestConvexityAlongSegments(t *testing.T) {
	g := testGrid(t)
	src := sample.New(2)
	for _, l := range allLosses(t) {
		dom := l.Domain()
		for trial := 0; trial < 200; trial++ {
			a := randomTheta(src, dom)
			b := randomTheta(src, dom)
			mid := vecmath.Scale(0.5, vecmath.Add(a, b))
			x := g.Point(src.Intn(g.Size()))
			lhs := l.Value(mid, x)
			rhs := (l.Value(a, x) + l.Value(b, x)) / 2
			if lhs > rhs+1e-9 {
				t.Errorf("%s: convexity violated: f(mid)=%v > avg=%v", l.Name(), lhs, rhs)
			}
		}
	}
}

// TestLipschitzCertified verifies the claimed Lipschitz constants against
// empirical gradient norms over the whole universe and many parameters.
func TestLipschitzCertified(t *testing.T) {
	g := testGrid(t)
	src := sample.New(3)
	probes := make([][]float64, 0, 60)
	for _, l := range allLosses(t) {
		dom := l.Domain()
		probes = probes[:0]
		for i := 0; i < 60; i++ {
			probes = append(probes, randomTheta(src, dom))
		}
		worst := CertifyLipschitz(nil, l, g, probes)
		if worst > l.Lipschitz()+1e-9 {
			t.Errorf("%s: empirical gradient norm %v exceeds certified %v", l.Name(), worst, l.Lipschitz())
		}
	}
}

// TestScaleBound verifies S against its definition by brute force:
// |⟨θ−θ′, ∇ℓ_x(θ)⟩| ≤ S over random pairs and all records.
func TestScaleBound(t *testing.T) {
	g := testGrid(t)
	src := sample.New(4)
	for _, l := range allLosses(t) {
		dom := l.Domain()
		s := ScaleBound(l)
		grad := make([]float64, dom.Dim())
		for trial := 0; trial < 100; trial++ {
			a := randomTheta(src, dom)
			b := randomTheta(src, dom)
			x := g.Point(src.Intn(g.Size()))
			l.Grad(grad, a, x)
			if got := math.Abs(vecmath.Dot(vecmath.Sub(a, b), grad)); got > s+1e-9 {
				t.Errorf("%s: |⟨θ−θ′,∇ℓ⟩| = %v > S = %v", l.Name(), got, s)
			}
		}
	}
}

// TestGLMScalarConsistency checks that each GLM's Scalar profile agrees
// with its full Value/Grad through z = ⟨θ, x⟩.
func TestGLMScalarConsistency(t *testing.T) {
	g := testGrid(t)
	src := sample.New(5)
	ball, _ := NewL2Ball(2, 1)
	sq, _ := NewSquared("sq", ball, []float64{0, 0, 1}, 1.0, 1.0)
	lg, _ := NewLogistic("lg", ball, 0, 1, 1.0)
	sh, _ := NewSmoothedHinge("sh", ball, 1, 1.0)
	hb, _ := NewHuber("hb", ball, 0.5, 1.0)
	for _, l := range []GLM{sq, lg, sh, hb} {
		d := l.Domain().Dim()
		grad := make([]float64, d)
		for trial := 0; trial < 50; trial++ {
			theta := randomTheta(src, l.Domain())
			x := g.Point(src.Intn(g.Size()))
			var z float64
			for i := 0; i < d; i++ {
				z += theta[i] * x[i]
			}
			y := x[len(x)-1]
			v, dv := l.Scalar(z, y)
			if got := l.Value(theta, x); math.Abs(got-v) > 1e-9 {
				t.Errorf("%s: Value=%v but Scalar=%v", l.Name(), got, v)
			}
			l.Grad(grad, theta, x)
			// Grad must equal dv·feat(x).
			for i := 0; i < d; i++ {
				if math.Abs(grad[i]-dv*x[i]) > 1e-9 {
					t.Errorf("%s: grad[%d]=%v, want dv·x=%v", l.Name(), i, grad[i], dv*x[i])
				}
			}
		}
	}
}

func TestSquaredValidation(t *testing.T) {
	ball, _ := NewL2Ball(2, 1)
	if _, err := NewSquared("s", ball, []float64{1}, 0, 1); err == nil {
		t.Error("featBound=0 accepted")
	}
	if _, err := NewSquared("s", ball, nil, 1, 1); err == nil {
		t.Error("nil target accepted")
	}
}

func TestLogisticValidation(t *testing.T) {
	ball, _ := NewL2Ball(2, 1)
	if _, err := NewLogistic("l", ball, 0, 0, 1); err == nil {
		t.Error("temp=0 accepted")
	}
	if _, err := NewLogistic("l", ball, 0, 1, 0); err == nil {
		t.Error("featBound=0 accepted")
	}
}

func TestHingeHuberValidation(t *testing.T) {
	ball, _ := NewL2Ball(2, 1)
	if _, err := NewSmoothedHinge("h", ball, 0, 1); err == nil {
		t.Error("width=0 accepted")
	}
	if _, err := NewHuber("h", ball, 0, 1); err == nil {
		t.Error("delta=0 accepted")
	}
}

func TestLinearFormValidation(t *testing.T) {
	ball, _ := NewL2Ball(2, 1)
	if _, err := NewLinearForm("f", ball, []float64{2, 0, 0}, 1); err == nil {
		t.Error("‖v‖>1 accepted")
	}
	if _, err := NewLinearForm("f", ball, []float64{1, 0, 0}, 0); err == nil {
		t.Error("featBound=0 accepted")
	}
}

func TestLinearQueryBasics(t *testing.T) {
	if _, err := NewLinearQuery("q", nil); err == nil {
		t.Error("nil predicate accepted")
	}
	g := testGrid(t)
	lq, _ := NewLinearQuery("q", func(x []float64) float64 {
		if x[0] > 0 {
			return 1
		}
		return 0
	})
	h := histogram.Uniform(g)
	ans := lq.ExactMinimize(h)[0]
	// Fraction of grid points with positive first coordinate = 1/3 (levels
	// {-1,0,1} scaled).
	if math.Abs(ans-1.0/3) > 1e-9 {
		t.Errorf("linear query answer = %v, want 1/3", ans)
	}
	if lq.StrongConvexity() != 1 {
		t.Error("linear query should be 1-strongly convex")
	}
	if got := lq.Predicate(g.Point(0)); got != 0 && got != 1 {
		t.Errorf("Predicate = %v", got)
	}
}

func TestRegularized(t *testing.T) {
	ball, _ := NewL2Ball(2, 1)
	sq, _ := NewSquared("sq", ball, []float64{0, 0, 1}, 1, 1)
	rg, err := NewRegularized(sq, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if rg.StrongConvexity() != 0.7 {
		t.Errorf("sigma = %v", rg.StrongConvexity())
	}
	if rg.Sigma() != 0.7 || rg.Inner() != Loss(sq) {
		t.Error("accessors wrong")
	}
	// Value difference is exactly the ridge term.
	theta := []float64{0.3, -0.4}
	x := []float64{0.1, 0.2, 0.5}
	want := sq.Value(theta, x) + 0.35*(0.09+0.16)
	if got := rg.Value(theta, x); math.Abs(got-want) > 1e-12 {
		t.Errorf("Regularized.Value = %v, want %v", got, want)
	}
	// Lipschitz grows by σ·diam.
	if got := rg.Lipschitz(); math.Abs(got-(1+0.7*2)) > 1e-12 {
		t.Errorf("Lipschitz = %v", got)
	}
	if _, err := NewRegularized(sq, -1); err == nil {
		t.Error("negative sigma accepted")
	}
}

func TestLinearFormExactMinimize(t *testing.T) {
	g := testGrid(t)
	ball, _ := NewL2Ball(2, 1)
	lf, _ := NewLinearForm("lf", ball, []float64{1, 0, 0}, math.Sqrt2)
	h := histogram.Uniform(g)
	theta := lf.ExactMinimize(h)
	if theta == nil {
		t.Fatal("nil minimizer on L2 ball")
	}
	// Verify optimality against many random feasible points.
	src := sample.New(6)
	val := ValueOn(lf, theta, h)
	for i := 0; i < 300; i++ {
		probe := randomTheta(src, ball)
		if pv := ValueOn(lf, probe, h); pv < val-1e-9 {
			t.Fatalf("found better point: %v (%v < %v)", probe, pv, val)
		}
	}
}

func TestValueGradOn(t *testing.T) {
	g := testGrid(t)
	ball, _ := NewL2Ball(2, 1)
	sq, _ := NewSquared("sq", ball, []float64{0, 0, 1}, 1, 1)
	h := histogram.Uniform(g)
	theta := []float64{0.1, 0.2}
	// ValueOn equals the weighted sum by definition.
	var want float64
	for i := 0; i < g.Size(); i++ {
		want += h.P[i] * sq.Value(theta, g.Point(i))
	}
	if got := ValueOn(sq, theta, h); math.Abs(got-want) > 1e-12 {
		t.Errorf("ValueOn = %v, want %v", got, want)
	}
	// GradOn matches finite differences of ValueOn.
	grad := GradOn(nil, sq, nil, theta, h)
	const step = 1e-6
	for i := range theta {
		tp := vecmath.Copy(theta)
		tm := vecmath.Copy(theta)
		tp[i] += step
		tm[i] -= step
		fd := (ValueOn(sq, tp, h) - ValueOn(sq, tm, h)) / (2 * step)
		if math.Abs(fd-grad[i]) > 1e-5 {
			t.Errorf("GradOn[%d] = %v, fd %v", i, grad[i], fd)
		}
	}
}
