package convex

import (
	"sync"

	"repro/internal/universe"
	"repro/internal/vecmath"
	"repro/internal/xeval"
)

// BatchLoss is the optional batched fast path of a loss: kernels that
// evaluate values, weighted gradient sums, and directional gradients over
// a universe index range [lo, hi) in one call, writing into caller-owned
// buffers. The xeval-based expectation paths in loss.go dispatch to these
// kernels when present; every loss family in this package implements them.
//
// Contract shared by all three methods: indexing of out/w is relative to
// lo (out[0] corresponds to universe element lo), buffers are caller-owned
// and may be sub-slices of full-universe vectors, and implementations must
// be safe for concurrent calls on disjoint ranges.
type BatchLoss interface {
	Loss
	// EvalBatch writes ℓ(θ; x_i) into out[i−lo] for every i in [lo, hi).
	EvalBatch(out, theta []float64, u universe.Universe, lo, hi int)
	// GradBatch accumulates Σ_{i∈[lo,hi)} w[i−lo]·∇ℓ(θ; x_i) into grad
	// (which it does not zero).
	GradBatch(grad, theta, w []float64, u universe.Universe, lo, hi int)
	// DirGradBatch writes ⟨dir, ∇ℓ(θ; x_i)⟩ into out[i−lo] for every i in
	// [lo, hi) — the per-element dual-certificate kernel.
	DirGradBatch(out, dir, theta []float64, u universe.Universe, lo, hi int)
}

// chunkBuf pools chunk-sized scratch vectors for the expectation kernels,
// so a solver iterating GradOn/EvalOn thousands of times allocates no
// per-chunk buffers after warmup.
var chunkBuf = sync.Pool{New: func() any {
	s := make([]float64, xeval.ChunkSize)
	return &s
}}

// All range kernels below materialize their chunk's points once via
// xeval.MaterializePoints and then iterate the flat row-major matrix.
// Dense universes turn per-element PointInto copies into one bulk copy;
// implicit product universes amortize the mixed-radix index decode across
// the chunk. The materialized rows are bit-identical to what PointInto
// returns and are visited in the same order, so results are unchanged.

// evalRange dispatches to the loss's EvalBatch kernel or the generic
// per-element fallback.
func evalRange(l Loss, out, theta []float64, u universe.Universe, lo, hi int) {
	if bl, ok := l.(BatchLoss); ok {
		bl.EvalBatch(out, theta, u, lo, hi)
		return
	}
	dim := u.Dim()
	pts, release := xeval.MaterializePoints(u, lo, hi)
	for k := 0; k < hi-lo; k++ {
		out[k] = l.Value(theta, pts[k*dim:(k+1)*dim:(k+1)*dim])
	}
	release()
}

// gradRange dispatches to the loss's GradBatch kernel or the generic
// per-element fallback.
func gradRange(l Loss, grad, theta, w []float64, u universe.Universe, lo, hi int) {
	if bl, ok := l.(BatchLoss); ok {
		bl.GradBatch(grad, theta, w, u, lo, hi)
		return
	}
	g := make([]float64, len(grad))
	dim := u.Dim()
	pts, release := xeval.MaterializePoints(u, lo, hi)
	for k := 0; k < hi-lo; k++ {
		wi := w[k]
		if wi == 0 {
			continue
		}
		l.Grad(g, theta, pts[k*dim:(k+1)*dim:(k+1)*dim])
		for j := range grad {
			grad[j] += wi * g[j]
		}
	}
	release()
}

// dirGradRange dispatches to the loss's DirGradBatch kernel or the generic
// per-element fallback.
func dirGradRange(l Loss, out, dir, theta []float64, u universe.Universe, lo, hi int) {
	if bl, ok := l.(BatchLoss); ok {
		bl.DirGradBatch(out, dir, theta, u, lo, hi)
		return
	}
	g := make([]float64, len(dir))
	dim := u.Dim()
	pts, release := xeval.MaterializePoints(u, lo, hi)
	for k := 0; k < hi-lo; k++ {
		l.Grad(g, theta, pts[k*dim:(k+1)*dim:(k+1)*dim])
		out[k] = vecmath.Dot(dir, g)
	}
	release()
}

// ---------------------------------------------------------------------------
// GLM family kernels
//
// Every GLM loss here has the shape ℓ(θ; x) = profile(⟨θ, feat(x)⟩, y(x))
// with ∇ℓ = profile′·feat(x), so one set of kernels parameterized by the
// label extractor serves squared, logistic, hinge, Huber, pinball and
// Poisson losses.

// glmLabel extracts the profile's second argument from a record.
type glmLabel func(x []float64) float64

// lastCoord is the labeled-record convention: the label is the final
// coordinate.
func lastCoord(x []float64) float64 { return x[len(x)-1] }

func glmEvalRange(l GLM, label glmLabel, out, theta []float64, u universe.Universe, lo, hi int) {
	d := l.Domain().Dim()
	dim := u.Dim()
	pts, release := xeval.MaterializePoints(u, lo, hi)
	for k := 0; k < hi-lo; k++ {
		x := pts[k*dim : (k+1)*dim : (k+1)*dim]
		var z float64
		for j := 0; j < d; j++ {
			z += theta[j] * x[j]
		}
		v, _ := l.Scalar(z, label(x))
		out[k] = v
	}
	release()
}

func glmGradRange(l GLM, label glmLabel, grad, theta, w []float64, u universe.Universe, lo, hi int) {
	d := l.Domain().Dim()
	dim := u.Dim()
	pts, release := xeval.MaterializePoints(u, lo, hi)
	for k := 0; k < hi-lo; k++ {
		wi := w[k]
		if wi == 0 {
			continue
		}
		x := pts[k*dim : (k+1)*dim : (k+1)*dim]
		var z float64
		for j := 0; j < d; j++ {
			z += theta[j] * x[j]
		}
		_, dv := l.Scalar(z, label(x))
		f := wi * dv
		for j := 0; j < d; j++ {
			grad[j] += f * x[j]
		}
	}
	release()
}

func glmDirGradRange(l GLM, label glmLabel, out, dir, theta []float64, u universe.Universe, lo, hi int) {
	d := l.Domain().Dim()
	dim := u.Dim()
	pts, release := xeval.MaterializePoints(u, lo, hi)
	for k := 0; k < hi-lo; k++ {
		x := pts[k*dim : (k+1)*dim : (k+1)*dim]
		var z, dz float64
		for j := 0; j < d; j++ {
			z += theta[j] * x[j]
			dz += dir[j] * x[j]
		}
		_, dv := l.Scalar(z, label(x))
		out[k] = dv * dz
	}
	release()
}

// Squared: the profile's second argument is the target attribute ⟨target, x⟩
// (which reduces to the label coordinate for the default target).
func (l *Squared) targetOf(x []float64) float64 { return vecmath.Dot(l.target, x) }

func (l *Squared) EvalBatch(out, theta []float64, u universe.Universe, lo, hi int) {
	glmEvalRange(l, l.targetOf, out, theta, u, lo, hi)
}

func (l *Squared) GradBatch(grad, theta, w []float64, u universe.Universe, lo, hi int) {
	glmGradRange(l, l.targetOf, grad, theta, w, u, lo, hi)
}

func (l *Squared) DirGradBatch(out, dir, theta []float64, u universe.Universe, lo, hi int) {
	glmDirGradRange(l, l.targetOf, out, dir, theta, u, lo, hi)
}

func (l *Logistic) EvalBatch(out, theta []float64, u universe.Universe, lo, hi int) {
	glmEvalRange(l, lastCoord, out, theta, u, lo, hi)
}

func (l *Logistic) GradBatch(grad, theta, w []float64, u universe.Universe, lo, hi int) {
	glmGradRange(l, lastCoord, grad, theta, w, u, lo, hi)
}

func (l *Logistic) DirGradBatch(out, dir, theta []float64, u universe.Universe, lo, hi int) {
	glmDirGradRange(l, lastCoord, out, dir, theta, u, lo, hi)
}

func (l *SmoothedHinge) EvalBatch(out, theta []float64, u universe.Universe, lo, hi int) {
	glmEvalRange(l, lastCoord, out, theta, u, lo, hi)
}

func (l *SmoothedHinge) GradBatch(grad, theta, w []float64, u universe.Universe, lo, hi int) {
	glmGradRange(l, lastCoord, grad, theta, w, u, lo, hi)
}

func (l *SmoothedHinge) DirGradBatch(out, dir, theta []float64, u universe.Universe, lo, hi int) {
	glmDirGradRange(l, lastCoord, out, dir, theta, u, lo, hi)
}

func (l *Huber) EvalBatch(out, theta []float64, u universe.Universe, lo, hi int) {
	glmEvalRange(l, lastCoord, out, theta, u, lo, hi)
}

func (l *Huber) GradBatch(grad, theta, w []float64, u universe.Universe, lo, hi int) {
	glmGradRange(l, lastCoord, grad, theta, w, u, lo, hi)
}

func (l *Huber) DirGradBatch(out, dir, theta []float64, u universe.Universe, lo, hi int) {
	glmDirGradRange(l, lastCoord, out, dir, theta, u, lo, hi)
}

func (l *Pinball) EvalBatch(out, theta []float64, u universe.Universe, lo, hi int) {
	glmEvalRange(l, lastCoord, out, theta, u, lo, hi)
}

func (l *Pinball) GradBatch(grad, theta, w []float64, u universe.Universe, lo, hi int) {
	glmGradRange(l, lastCoord, grad, theta, w, u, lo, hi)
}

func (l *Pinball) DirGradBatch(out, dir, theta []float64, u universe.Universe, lo, hi int) {
	glmDirGradRange(l, lastCoord, out, dir, theta, u, lo, hi)
}

func (l *Poisson) EvalBatch(out, theta []float64, u universe.Universe, lo, hi int) {
	glmEvalRange(l, lastCoord, out, theta, u, lo, hi)
}

func (l *Poisson) GradBatch(grad, theta, w []float64, u universe.Universe, lo, hi int) {
	glmGradRange(l, lastCoord, grad, theta, w, u, lo, hi)
}

func (l *Poisson) DirGradBatch(out, dir, theta []float64, u universe.Universe, lo, hi int) {
	glmDirGradRange(l, lastCoord, out, dir, theta, u, lo, hi)
}

// ---------------------------------------------------------------------------
// LinearForm kernels: ∇ℓ_x is the θ-independent vector weight(x)·feat(x).

func (l *LinearForm) EvalBatch(out, theta []float64, u universe.Universe, lo, hi int) {
	d := l.dom.Dim()
	dim := u.Dim()
	pts, release := xeval.MaterializePoints(u, lo, hi)
	for k := 0; k < hi-lo; k++ {
		x := pts[k*dim : (k+1)*dim : (k+1)*dim]
		var z float64
		for j := 0; j < d; j++ {
			z += theta[j] * x[j]
		}
		out[k] = l.weight(x) * z
	}
	release()
}

func (l *LinearForm) GradBatch(grad, theta, w []float64, u universe.Universe, lo, hi int) {
	d := l.dom.Dim()
	dim := u.Dim()
	pts, release := xeval.MaterializePoints(u, lo, hi)
	for k := 0; k < hi-lo; k++ {
		wi := w[k]
		if wi == 0 {
			continue
		}
		x := pts[k*dim : (k+1)*dim : (k+1)*dim]
		f := wi * l.weight(x)
		for j := 0; j < d; j++ {
			grad[j] += f * x[j]
		}
	}
	release()
}

func (l *LinearForm) DirGradBatch(out, dir, theta []float64, u universe.Universe, lo, hi int) {
	d := l.dom.Dim()
	dim := u.Dim()
	pts, release := xeval.MaterializePoints(u, lo, hi)
	for k := 0; k < hi-lo; k++ {
		x := pts[k*dim : (k+1)*dim : (k+1)*dim]
		var dz float64
		for j := 0; j < d; j++ {
			dz += dir[j] * x[j]
		}
		out[k] = l.weight(x) * dz
	}
	release()
}

// ---------------------------------------------------------------------------
// LinearQuery kernels: 1-dimensional with ∇ℓ_x = θ − q(x).

func (l *LinearQuery) EvalBatch(out, theta []float64, u universe.Universe, lo, hi int) {
	dim := u.Dim()
	pts, release := xeval.MaterializePoints(u, lo, hi)
	for k := 0; k < hi-lo; k++ {
		r := theta[0] - l.pred(pts[k*dim:(k+1)*dim:(k+1)*dim])
		out[k] = r * r / 2
	}
	release()
}

func (l *LinearQuery) GradBatch(grad, theta, w []float64, u universe.Universe, lo, hi int) {
	dim := u.Dim()
	pts, release := xeval.MaterializePoints(u, lo, hi)
	for k := 0; k < hi-lo; k++ {
		wi := w[k]
		if wi == 0 {
			continue
		}
		grad[0] += wi * (theta[0] - l.pred(pts[k*dim:(k+1)*dim:(k+1)*dim]))
	}
	release()
}

func (l *LinearQuery) DirGradBatch(out, dir, theta []float64, u universe.Universe, lo, hi int) {
	dim := u.Dim()
	pts, release := xeval.MaterializePoints(u, lo, hi)
	for k := 0; k < hi-lo; k++ {
		out[k] = dir[0] * (theta[0] - l.pred(pts[k*dim:(k+1)*dim:(k+1)*dim]))
	}
	release()
}

// ---------------------------------------------------------------------------
// Decorator kernels. Regularized and Scaled delegate to the inner loss's
// kernels (or the generic fallback when the inner loss has none) and apply
// their transformation on top, so registry-built decorated losses keep the
// fast path.

func (l *Regularized) EvalBatch(out, theta []float64, u universe.Universe, lo, hi int) {
	evalRange(l.inner, out, theta, u, lo, hi)
	n := vecmath.Norm2(theta)
	vecmath.AddConst(out[:hi-lo], l.sigma/2*n*n)
}

func (l *Regularized) GradBatch(grad, theta, w []float64, u universe.Universe, lo, hi int) {
	gradRange(l.inner, grad, theta, w, u, lo, hi)
	// The ridge term contributes σ·θ per unit weight: σ·θ·Σw over the range.
	var wsum float64
	for _, wi := range w[:hi-lo] {
		wsum += wi
	}
	vecmath.AddScaled(grad, l.sigma*wsum, theta)
}

func (l *Regularized) DirGradBatch(out, dir, theta []float64, u universe.Universe, lo, hi int) {
	dirGradRange(l.inner, out, dir, theta, u, lo, hi)
	vecmath.AddConst(out[:hi-lo], l.sigma*vecmath.Dot(dir, theta))
}

func (l *Scaled) EvalBatch(out, theta []float64, u universe.Universe, lo, hi int) {
	evalRange(l.inner, out, theta, u, lo, hi)
	vecmath.ScaleInPlace(out[:hi-lo], l.c)
}

func (l *Scaled) GradBatch(grad, theta, w []float64, u universe.Universe, lo, hi int) {
	tmp := make([]float64, len(grad))
	gradRange(l.inner, tmp, theta, w, u, lo, hi)
	vecmath.AddScaled(grad, l.c, tmp)
}

func (l *Scaled) DirGradBatch(out, dir, theta []float64, u universe.Universe, lo, hi int) {
	dirGradRange(l.inner, out, dir, theta, u, lo, hi)
	vecmath.ScaleInPlace(out[:hi-lo], l.c)
}

// Compile-time checks: every loss family ships its batched fast path.
var (
	_ BatchLoss = (*Squared)(nil)
	_ BatchLoss = (*Logistic)(nil)
	_ BatchLoss = (*SmoothedHinge)(nil)
	_ BatchLoss = (*Huber)(nil)
	_ BatchLoss = (*Pinball)(nil)
	_ BatchLoss = (*Poisson)(nil)
	_ BatchLoss = (*LinearForm)(nil)
	_ BatchLoss = (*LinearQuery)(nil)
	_ BatchLoss = (*Regularized)(nil)
	_ BatchLoss = (*Scaled)(nil)
)
