package convex

import (
	"fmt"
	"math"
)

// Pinball is the smoothed quantile-regression loss: the pinball (check)
// profile at quantile level τ, Huber-smoothed in a window of width `smooth`
// around the kink so gradients exist everywhere:
//
//	ρ_τ(r) = τ·r          for r ≥ smooth
//	       = (τ−1)·r      for r ≤ −smooth
//	       = quadratic interpolation in between (matching value and slope)
//
// applied to the residual r = ⟨θ, feat(x)⟩ − y and normalized to be
// 1-Lipschitz. Quantile regression is a standard member of the Lipschitz
// CM-query family the paper targets.
type Pinball struct {
	name   string
	dom    Domain
	tau    float64
	smooth float64
	c      float64
}

// NewPinball constructs a smoothed pinball loss at quantile τ ∈ (0, 1).
func NewPinball(name string, dom Domain, tau, smooth, featBound float64) (*Pinball, error) {
	if tau <= 0 || tau >= 1 {
		return nil, fmt.Errorf("convex: quantile level %v must be in (0,1)", tau)
	}
	if smooth <= 0 || featBound <= 0 {
		return nil, fmt.Errorf("convex: pinball smoothing and featBound must be positive")
	}
	// |ρ′| ≤ max(τ, 1−τ) ≤ 1, so sup‖∇‖ ≤ featBound for c = 1.
	return &Pinball{name: name, dom: dom, tau: tau, smooth: smooth, c: 1 / featBound}, nil
}

// Name returns the instance name.
func (l *Pinball) Name() string { return l.name }

// Domain returns Θ.
func (l *Pinball) Domain() Domain { return l.dom }

// Scalar returns the smoothed pinball profile and its derivative at
// residual z − y.
func (l *Pinball) Scalar(z, y float64) (float64, float64) {
	r := z - y
	s := l.smooth
	tau := l.tau
	switch {
	case r >= s:
		return l.c * (tau * r), l.c * tau
	case r <= -s:
		return l.c * ((tau - 1) * r), l.c * (tau - 1)
	default:
		// Quadratic bridge g(r) = a·r² + b·r with g′(±s) matching the
		// linear slopes: g′(r) = ((τ−(τ−1))/(2s))·r + (τ+(τ−1))/2.
		a := 1 / (4 * s) // (τ − (τ−1)) / (4s)
		b := (2*tau - 1) / 2
		return l.c * (a*r*r + b*r + s/4), l.c * (2*a*r + b)
	}
}

// Value evaluates the loss; the record's last coordinate is the label.
func (l *Pinball) Value(theta, x []float64) float64 {
	d := l.dom.Dim()
	var z float64
	for i := 0; i < d; i++ {
		z += theta[i] * x[i]
	}
	v, _ := l.Scalar(z, x[len(x)-1])
	return v
}

// Grad writes the gradient.
func (l *Pinball) Grad(grad, theta, x []float64) {
	d := l.dom.Dim()
	var z float64
	for i := 0; i < d; i++ {
		z += theta[i] * x[i]
	}
	_, dv := l.Scalar(z, x[len(x)-1])
	for i := 0; i < d; i++ {
		grad[i] = dv * x[i]
	}
}

// Lipschitz returns 1.
func (l *Pinball) Lipschitz() float64 { return 1 }

// StrongConvexity returns 0.
func (l *Pinball) StrongConvexity() float64 { return 0 }

// Poisson is the (clamped) Poisson-regression negative log-likelihood in
// GLM form: profile exp(z) − y·z for a non-negative count label y, with z
// clamped to |z| ≤ zmax so the exponential's derivative — and hence the
// Lipschitz constant — stays bounded over the domain. Normalized to be
// 1-Lipschitz.
type Poisson struct {
	name string
	dom  Domain
	zmax float64
	ymax float64
	c    float64
}

// NewPoisson constructs a Poisson loss. zmax bounds |⟨θ, x⟩| over Θ × X
// (e.g. diam(Θ)/2 · featBound) and ymax bounds the label.
func NewPoisson(name string, dom Domain, zmax, ymax, featBound float64) (*Poisson, error) {
	if zmax <= 0 || ymax <= 0 || featBound <= 0 {
		return nil, fmt.Errorf("convex: poisson bounds must be positive")
	}
	// |profile′| ≤ e^zmax + ymax, chain rule multiplies by featBound.
	c := 1 / ((math.Exp(zmax) + ymax) * featBound)
	return &Poisson{name: name, dom: dom, zmax: zmax, ymax: ymax, c: c}, nil
}

// Name returns the instance name.
func (l *Poisson) Name() string { return l.name }

// Domain returns Θ.
func (l *Poisson) Domain() Domain { return l.dom }

// Scalar returns the profile c·(exp(z̄) − y⁺·z̄) and its derivative in z,
// where z̄ clamps z to [−zmax, zmax] and y⁺ clamps the label to [0, ymax].
// Outside the clamp the profile continues linearly (keeping convexity and
// the Lipschitz bound).
func (l *Poisson) Scalar(z, y float64) (float64, float64) {
	if y < 0 {
		y = 0
	} else if y > l.ymax {
		y = l.ymax
	}
	zc := z
	if zc > l.zmax {
		zc = l.zmax
	} else if zc < -l.zmax {
		zc = -l.zmax
	}
	base := math.Exp(zc) - y*zc
	slope := math.Exp(zc) - y
	// Linear continuation beyond the clamp preserves convexity.
	return l.c * (base + slope*(z-zc)), l.c * slope
}

// Value evaluates the loss; the record's last coordinate is the label.
func (l *Poisson) Value(theta, x []float64) float64 {
	d := l.dom.Dim()
	var z float64
	for i := 0; i < d; i++ {
		z += theta[i] * x[i]
	}
	v, _ := l.Scalar(z, x[len(x)-1])
	return v
}

// Grad writes the gradient.
func (l *Poisson) Grad(grad, theta, x []float64) {
	d := l.dom.Dim()
	var z float64
	for i := 0; i < d; i++ {
		z += theta[i] * x[i]
	}
	_, dv := l.Scalar(z, x[len(x)-1])
	for i := 0; i < d; i++ {
		grad[i] = dv * x[i]
	}
}

// Lipschitz returns 1.
func (l *Poisson) Lipschitz() float64 { return 1 }

// StrongConvexity returns 0.
func (l *Poisson) StrongConvexity() float64 { return 0 }

// Compile-time GLM conformance checks for the extra losses.
var (
	_ GLM = (*Pinball)(nil)
	_ GLM = (*Poisson)(nil)
)
