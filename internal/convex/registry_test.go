package convex

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/universe"
)

// Every registered kind must build its default instance and certify a
// positive, finite Lipschitz bound with a non-trivial domain.
func TestRegistryBuildsDefaults(t *testing.T) {
	g := testGrid(t)
	kinds := Kinds()
	if len(kinds) < 8 {
		t.Fatalf("registry has %d kinds, want ≥ 8: %v", len(kinds), kinds)
	}
	// Kinds whose defaults need explicit parameters.
	params := map[string]string{
		"halfspace": `{"w":[1,0,0]}`,
		"linear":    `{"v":[0,0,1]}`,
		"marginal":  `{"coords":[0]}`,
		"parity":    `{"coords":[0,1]}`,
	}
	for _, kind := range kinds {
		spec := Spec{Kind: kind}
		if p, ok := params[kind]; ok {
			spec.Params = json.RawMessage(p)
		}
		l, err := Build(g, spec)
		if err != nil {
			t.Fatalf("Build(%q): %v", kind, err)
		}
		if l.Lipschitz() <= 0 {
			t.Errorf("%s: Lipschitz %v not positive", kind, l.Lipschitz())
		}
		if l.Domain().Dim() < 1 {
			t.Errorf("%s: empty domain", kind)
		}
		if !strings.HasPrefix(l.Name(), kind) {
			t.Errorf("%s: instance name %q does not carry the kind", kind, l.Name())
		}
		// The serving default S = 2 must cover every registered family.
		if s := ScaleBound(l); s > 2+1e-9 {
			t.Errorf("%s: scale bound %v exceeds the serving default S = 2", kind, s)
		}
	}
}

func TestRegistryRejectsUnknownKind(t *testing.T) {
	if _, err := Build(testGrid(t), Spec{Kind: "nope"}); err == nil {
		t.Fatal("unknown kind built successfully")
	}
}

func TestRegistryRejectsUnknownField(t *testing.T) {
	_, err := Build(testGrid(t), Spec{Kind: "logistic", Params: json.RawMessage(`{"tempp": 0.5}`)})
	if err == nil {
		t.Fatal("typo'd parameter field accepted")
	}
}

func TestRegistryValidatesDimensions(t *testing.T) {
	g := testGrid(t)
	cases := []Spec{
		{Kind: "halfspace", Params: json.RawMessage(`{"w":[1,0]}`)},       // dim 2 ≠ 3
		{Kind: "linear", Params: json.RawMessage(`{"v":[1]}`)},            // dim 1 ≠ 3
		{Kind: "squared", Params: json.RawMessage(`{"target":[1]}`)},      // dim 1 ≠ 3
		{Kind: "marginal", Params: json.RawMessage(`{"coords":[7]}`)},     // coord ≥ dim
		{Kind: "marginal", Params: json.RawMessage(`{"coords":[]}`)},      // empty
		{Kind: "positive", Params: json.RawMessage(`{"coord":-1}`)},       // negative
		{Kind: "parity", Params: json.RawMessage(`{"coords":[0,1,2,9]}`)}, // coord ≥ dim
	}
	for _, spec := range cases {
		if _, err := Build(g, spec); err == nil {
			t.Errorf("Build(%s %s) accepted invalid params", spec.Kind, spec.Params)
		}
	}
}

// The registry's enumerated bounds must be genuine: gradient norms over the
// universe may not exceed the certified Lipschitz constant.
func TestRegistryCertifiesBounds(t *testing.T) {
	g := testGrid(t)
	for _, kind := range []string{"squared", "logistic", "hinge", "huber", "pinball"} {
		l, err := Build(g, Spec{Kind: kind})
		if err != nil {
			t.Fatalf("Build(%q): %v", kind, err)
		}
		probes := [][]float64{l.Domain().Center(), {0.7, -0.7}, {1, 0}, {0, -1}}
		if got, want := CertifyLipschitz(nil, l, g, probes), l.Lipschitz(); got > want+1e-9 {
			t.Errorf("%s: observed gradient norm %v exceeds certified %v", kind, got, want)
		}
	}
}

// Linear-query kinds must produce predicates with the advertised semantics.
func TestRegistryLinearQuerySemantics(t *testing.T) {
	g := testGrid(t)
	l, err := Build(g, Spec{Kind: "positive", Params: json.RawMessage(`{"coord":0}`)})
	if err != nil {
		t.Fatal(err)
	}
	lq, ok := l.(*LinearQuery)
	if !ok {
		t.Fatalf("positive built %T, want *LinearQuery", l)
	}
	for i := 0; i < g.Size(); i++ {
		x := g.Point(i)
		want := 0.0
		if x[0] > 0 {
			want = 1
		}
		if got := lq.Predicate(x); got != want {
			t.Fatalf("positive(x=%v) = %v, want %v", x, got, want)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	if err := Register("squared", func(universe.Universe, json.RawMessage) (Loss, error) {
		return nil, nil
	}); err == nil {
		t.Fatal("duplicate registration succeeded")
	}
	if err := Register("", nil); err == nil {
		t.Fatal("empty registration succeeded")
	}
}
