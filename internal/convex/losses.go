package convex

import (
	"fmt"
	"math"

	"repro/internal/histogram"
	"repro/internal/vecmath"
)

// Record layout convention: losses over labeled examples read a universe
// point vector as (features..., label) with len(features) = Domain().Dim().
// Losses over unlabeled records read the whole vector as the feature tuple.

// Squared is the (rescaled) squared loss of linear regression:
//
//	ℓ(θ; x) = c · (⟨θ, feat(x)⟩ − ⟨target, x⟩)²
//
// where target is a fixed direction over the full record vector. With
// target = e_label this is plain least squares "predict y from features";
// other targets express a family of distinct regression queries ("predict
// attribute ⟨target, x⟩"), which is how the experiments generate k distinct
// CM queries. The constant c is chosen at construction so the loss is
// 1-Lipschitz over Θ × X.
type Squared struct {
	name   string
	dom    Domain
	target []float64
	c      float64
	lip    float64
}

// NewSquared constructs a squared loss. featBound bounds ‖feat(x)‖₂ and
// targetBound bounds |⟨target, x⟩| over the universe; both must be positive.
func NewSquared(name string, dom Domain, target []float64, featBound, targetBound float64) (*Squared, error) {
	if featBound <= 0 || targetBound <= 0 {
		return nil, fmt.Errorf("convex: squared loss bounds must be positive")
	}
	if len(target) == 0 {
		return nil, fmt.Errorf("convex: squared loss needs a target direction")
	}
	// |residual| ≤ R·featBound + targetBound with R = diam/2 for balls;
	// use the domain diameter conservatively: ‖θ‖ ≤ diam(Θ) from center 0
	// is loose but safe for any domain.
	maxResid := dom.Diameter()*featBound + targetBound
	raw := 2 * maxResid * featBound // sup ‖∇‖ for c = 1
	c := 1 / raw
	return &Squared{name: name, dom: dom, target: vecmath.Copy(target), c: c, lip: 1}, nil
}

// Name returns the instance name.
func (l *Squared) Name() string { return l.name }

// Domain returns Θ.
func (l *Squared) Domain() Domain { return l.dom }

// residual returns ⟨θ, feat(x)⟩ − ⟨target, x⟩.
func (l *Squared) residual(theta, x []float64) float64 {
	d := l.dom.Dim()
	var z float64
	for i := 0; i < d; i++ {
		z += theta[i] * x[i]
	}
	return z - vecmath.Dot(l.target, x)
}

// Value returns c·residual².
func (l *Squared) Value(theta, x []float64) float64 {
	r := l.residual(theta, x)
	return l.c * r * r
}

// Grad writes 2c·residual·feat(x).
func (l *Squared) Grad(grad, theta, x []float64) {
	r := l.residual(theta, x)
	d := l.dom.Dim()
	for i := 0; i < d; i++ {
		grad[i] = 2 * l.c * r * x[i]
	}
}

// Lipschitz returns the certified bound (1 by construction).
func (l *Squared) Lipschitz() float64 { return l.lip }

// StrongConvexity returns 0: squared loss is strongly convex only when the
// feature second-moment matrix is full rank, which a single record is not.
func (l *Squared) StrongConvexity() float64 { return 0 }

// Scalar implements GLM when target = e_label: z is the prediction, y the
// label, and the profile is c(z−y)².
func (l *Squared) Scalar(z, y float64) (float64, float64) {
	r := z - y
	return l.c * r * r, 2 * l.c * r
}

// Logistic is the logistic-regression loss in GLM form:
//
//	ℓ(θ; (x, y)) = c · log(1 + exp(−(sign(y)·⟨θ, x⟩ − margin)/temp))
//
// The (margin, temp) pair parameterizes a family of distinct classification
// queries over the same data. c normalizes to 1-Lipschitz.
type Logistic struct {
	name   string
	dom    Domain
	margin float64
	temp   float64
	c      float64
}

// NewLogistic constructs a logistic loss. featBound bounds ‖feat(x)‖₂.
func NewLogistic(name string, dom Domain, margin, temp, featBound float64) (*Logistic, error) {
	if temp <= 0 {
		return nil, fmt.Errorf("convex: logistic temperature must be positive")
	}
	if featBound <= 0 {
		return nil, fmt.Errorf("convex: logistic featBound must be positive")
	}
	// |d/dz| ≤ c/temp · 1 · featBound (sigmoid derivative factor ≤ 1).
	c := temp / featBound
	return &Logistic{name: name, dom: dom, margin: margin, temp: temp, c: c}, nil
}

// Name returns the instance name.
func (l *Logistic) Name() string { return l.name }

// Domain returns Θ.
func (l *Logistic) Domain() Domain { return l.dom }

// labelSign returns ±1 from a record's label coordinate (0 counts as +1).
func labelSign(x []float64) float64 {
	if x[len(x)-1] < 0 {
		return -1
	}
	return 1
}

// Value evaluates the loss.
func (l *Logistic) Value(theta, x []float64) float64 {
	d := l.dom.Dim()
	var z float64
	for i := 0; i < d; i++ {
		z += theta[i] * x[i]
	}
	v, _ := l.Scalar(z, labelSign(x))
	return v
}

// Grad writes the gradient.
func (l *Logistic) Grad(grad, theta, x []float64) {
	d := l.dom.Dim()
	var z float64
	for i := 0; i < d; i++ {
		z += theta[i] * x[i]
	}
	_, dv := l.Scalar(z, labelSign(x))
	for i := 0; i < d; i++ {
		grad[i] = dv * x[i]
	}
}

// Scalar returns the GLM profile c·log(1+exp(−(sign(y)·z − margin)/temp))
// and its derivative in z, where z = ⟨θ, x⟩ and y is the record's label.
func (l *Logistic) Scalar(z, y float64) (float64, float64) {
	s := sign(y)
	m := s * z
	u := -(m - l.margin) / l.temp
	// Stable softplus: log(1+e^u).
	var sp, dsp float64
	if u > 30 {
		sp, dsp = u, 1
	} else if u < -30 {
		sp, dsp = math.Exp(u), math.Exp(u)
	} else {
		e := math.Exp(u)
		sp = math.Log1p(e)
		dsp = e / (1 + e)
	}
	// d/dz = d/dm · s, with d/dm = c·dsp·(−1/temp).
	return l.c * sp, l.c * dsp * (-1 / l.temp) * s
}

// Lipschitz returns 1 (by normalization).
func (l *Logistic) Lipschitz() float64 { return 1 }

// StrongConvexity returns 0.
func (l *Logistic) StrongConvexity() float64 { return 0 }

// SmoothedHinge is the quadratically smoothed hinge loss (smooth SVM):
//
//	profile h(m) = 0            if m ≥ 1
//	             = (1−m)²/2     if 0 < m < 1
//	             = 1/2 − m      if m ≤ 0
//
// applied to the margin m = sign(y)·⟨θ, x⟩/width, scaled to 1-Lipschitz.
type SmoothedHinge struct {
	name  string
	dom   Domain
	width float64
	c     float64
}

// NewSmoothedHinge constructs a smoothed hinge loss with the given margin
// width (> 0). featBound bounds ‖feat(x)‖₂.
func NewSmoothedHinge(name string, dom Domain, width, featBound float64) (*SmoothedHinge, error) {
	if width <= 0 || featBound <= 0 {
		return nil, fmt.Errorf("convex: hinge width and featBound must be positive")
	}
	// |h′| ≤ 1, chain rule gives featBound/width.
	c := width / featBound
	return &SmoothedHinge{name: name, dom: dom, width: width, c: c}, nil
}

// Name returns the instance name.
func (l *SmoothedHinge) Name() string { return l.name }

// Domain returns Θ.
func (l *SmoothedHinge) Domain() Domain { return l.dom }

// Scalar returns the GLM profile value and its derivative in z, where
// z = ⟨θ, x⟩ and y supplies the label sign (margin m = sign(y)·z/width).
func (l *SmoothedHinge) Scalar(z, y float64) (float64, float64) {
	s := sign(y)
	m := s * z / l.width
	var h, dh float64
	switch {
	case m >= 1:
		h, dh = 0, 0
	case m > 0:
		h, dh = (1-m)*(1-m)/2, -(1 - m)
	default:
		h, dh = 0.5-m, -1
	}
	return l.c * h, l.c * dh * s / l.width
}

// Value evaluates the loss.
func (l *SmoothedHinge) Value(theta, x []float64) float64 {
	d := l.dom.Dim()
	var z float64
	for i := 0; i < d; i++ {
		z += theta[i] * x[i]
	}
	v, _ := l.Scalar(z, labelSign(x))
	return v
}

// Grad writes the gradient.
func (l *SmoothedHinge) Grad(grad, theta, x []float64) {
	d := l.dom.Dim()
	var z float64
	for i := 0; i < d; i++ {
		z += theta[i] * x[i]
	}
	_, dv := l.Scalar(z, labelSign(x))
	for i := 0; i < d; i++ {
		grad[i] = dv * x[i]
	}
}

// Lipschitz returns 1.
func (l *SmoothedHinge) Lipschitz() float64 { return 1 }

// StrongConvexity returns 0.
func (l *SmoothedHinge) StrongConvexity() float64 { return 0 }

// Huber is robust regression with the Huber profile ρ_δ applied to the
// residual z − y, normalized to 1-Lipschitz.
type Huber struct {
	name  string
	dom   Domain
	delta float64
	c     float64
}

// NewHuber constructs a Huber loss with transition point delta (> 0).
func NewHuber(name string, dom Domain, delta, featBound float64) (*Huber, error) {
	if delta <= 0 || featBound <= 0 {
		return nil, fmt.Errorf("convex: huber delta and featBound must be positive")
	}
	// |ρ′_δ| ≤ δ, so sup ‖∇‖ ≤ δ·featBound for c = 1.
	c := 1 / (delta * featBound)
	return &Huber{name: name, dom: dom, delta: delta, c: c}, nil
}

// Name returns the instance name.
func (l *Huber) Name() string { return l.name }

// Domain returns Θ.
func (l *Huber) Domain() Domain { return l.dom }

// Scalar returns c·ρ_δ(z − y) and its derivative in z.
func (l *Huber) Scalar(z, y float64) (float64, float64) {
	r := z - y
	if math.Abs(r) <= l.delta {
		return l.c * r * r / 2, l.c * r
	}
	return l.c * (l.delta*math.Abs(r) - l.delta*l.delta/2), l.c * l.delta * sign(r)
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

// Value evaluates the loss; the record's last coordinate is the label.
func (l *Huber) Value(theta, x []float64) float64 {
	d := l.dom.Dim()
	var z float64
	for i := 0; i < d; i++ {
		z += theta[i] * x[i]
	}
	v, _ := l.Scalar(z, x[len(x)-1])
	return v
}

// Grad writes the gradient.
func (l *Huber) Grad(grad, theta, x []float64) {
	d := l.dom.Dim()
	var z float64
	for i := 0; i < d; i++ {
		z += theta[i] * x[i]
	}
	_, dv := l.Scalar(z, x[len(x)-1])
	for i := 0; i < d; i++ {
		grad[i] = dv * x[i]
	}
}

// Lipschitz returns 1.
func (l *Huber) Lipschitz() float64 { return 1 }

// StrongConvexity returns 0.
func (l *Huber) StrongConvexity() float64 { return 0 }

// LinearForm is the affine loss ℓ_v(θ; x) = −⟨θ, x⟩·⟨v, x⟩ / featBound².
// It is convex (affine in θ), 1-Lipschitz, and its exact minimizer over an
// L2 ball has closed form: θ* = R · normalize(E_D[⟨v, x⟩·x]). Experiments
// and tests use it when a ground-truth answer is needed.
type LinearForm struct {
	name string
	dom  Domain
	v    []float64
	c    float64
}

// NewLinearForm constructs the loss with direction v over the full record
// vector. featBound bounds ‖x‖₂ over the universe and ‖v‖₂ must be ≤ 1.
func NewLinearForm(name string, dom Domain, v []float64, featBound float64) (*LinearForm, error) {
	if featBound <= 0 {
		return nil, fmt.Errorf("convex: linear form featBound must be positive")
	}
	if vecmath.Norm2(v) > 1+1e-9 {
		return nil, fmt.Errorf("convex: linear form direction must have norm ≤ 1")
	}
	return &LinearForm{name: name, dom: dom, v: vecmath.Copy(v), c: 1 / (featBound * featBound)}, nil
}

// Name returns the instance name.
func (l *LinearForm) Name() string { return l.name }

// Domain returns Θ.
func (l *LinearForm) Domain() Domain { return l.dom }

// Weight returns the per-record gradient direction −c·⟨v, x⟩·feat(x); the
// gradient is constant in θ.
func (l *LinearForm) weight(x []float64) float64 {
	return -l.c * vecmath.Dot(l.v, x)
}

// Value evaluates the loss.
func (l *LinearForm) Value(theta, x []float64) float64 {
	d := l.dom.Dim()
	var z float64
	for i := 0; i < d; i++ {
		z += theta[i] * x[i]
	}
	return l.weight(x) * z
}

// Grad writes the (θ-independent) gradient.
func (l *LinearForm) Grad(grad, theta, x []float64) {
	w := l.weight(x)
	d := l.dom.Dim()
	for i := 0; i < d; i++ {
		grad[i] = w * x[i]
	}
}

// Lipschitz returns 1.
func (l *LinearForm) Lipschitz() float64 { return 1 }

// StrongConvexity returns 0.
func (l *LinearForm) StrongConvexity() float64 { return 0 }

// ExactMinimize returns the closed-form minimizer over an L2 ball: the
// objective is ⟨w, θ⟩ with w = −c·E_D[⟨v, x⟩·feat(x)], minimized at
// θ* = −R·w/‖w‖ (any point when w = 0; we return the center).
func (l *LinearForm) ExactMinimize(h *histogram.Histogram) []float64 {
	ball, ok := l.dom.(*L2Ball)
	if !ok {
		return nil
	}
	d := l.dom.Dim()
	w := make([]float64, d)
	buf := make([]float64, h.U.Dim())
	for i, p := range h.P {
		if p == 0 {
			continue
		}
		x := h.U.PointInto(i, buf)
		pw := p * l.weight(x)
		for j := 0; j < d; j++ {
			w[j] += pw * x[j]
		}
	}
	n := vecmath.Norm2(w)
	if n == 0 {
		return l.dom.Center()
	}
	return vecmath.Scale(-ball.Radius()/n, w)
}

// LinearQuery embeds a linear (statistical/counting) query as a CM query,
// the special case the paper repeatedly appeals to: Θ = [0, 1] and
//
//	ℓ_q(θ; x) = (θ − q(x))² / 2
//
// whose population minimizer is exactly the query answer E_D[q(x)].
// Predicates must map records into [0, 1].
type LinearQuery struct {
	name    string
	dom     *Interval
	pred    func(x []float64) float64
	support []int
}

// NewLinearQuery wraps a [0,1]-valued predicate as a CM query.
func NewLinearQuery(name string, pred func(x []float64) float64) (*LinearQuery, error) {
	if pred == nil {
		return nil, fmt.Errorf("convex: nil predicate")
	}
	iv, err := NewInterval(0, 1)
	if err != nil {
		return nil, err
	}
	return &LinearQuery{name: name, dom: iv, pred: pred}, nil
}

// Name returns the instance name.
func (l *LinearQuery) Name() string { return l.name }

// Domain returns [0, 1].
func (l *LinearQuery) Domain() Domain { return l.dom }

// Predicate evaluates q(x).
func (l *LinearQuery) Predicate(x []float64) float64 { return l.pred(x) }

// WithSupport declares that the predicate reads only the given record
// coordinates, unlocking factored evaluation over implicit universes. It
// copies coords and returns the receiver for chaining. The declaration is
// the caller's assertion — it is not verified here (the cross-engine
// equivalence tests are the check).
func (l *LinearQuery) WithSupport(coords []int) *LinearQuery {
	l.support = append([]int(nil), coords...)
	return l
}

// Support returns the declared support coordinates, nil when undeclared.
func (l *LinearQuery) Support() []int { return l.support }

// Value returns (θ − q(x))²/2.
func (l *LinearQuery) Value(theta, x []float64) float64 {
	r := theta[0] - l.pred(x)
	return r * r / 2
}

// Grad writes θ − q(x).
func (l *LinearQuery) Grad(grad, theta, x []float64) {
	grad[0] = theta[0] - l.pred(x)
}

// ExactMinimize returns the exact answer E_D[q(x)]: the population loss is
// (1/2)·E(θ−q)², minimized at the mean.
func (l *LinearQuery) ExactMinimize(h *histogram.Histogram) []float64 {
	var mean float64
	buf := make([]float64, h.U.Dim())
	for i, p := range h.P {
		if p == 0 {
			continue
		}
		mean += p * l.pred(h.U.PointInto(i, buf))
	}
	return []float64{vecmath.Clamp(mean, 0, 1)}
}

// Lipschitz returns 1: |θ − q(x)| ≤ 1 on [0,1]×[0,1].
func (l *LinearQuery) Lipschitz() float64 { return 1 }

// StrongConvexity returns 1: the profile is (1/2)(θ−q)², exactly
// 1-strongly convex.
func (l *LinearQuery) StrongConvexity() float64 { return 1 }

// Regularized wraps an inner loss with an L2 ridge term:
//
//	ℓ_σ(θ; x) = ℓ(θ; x) + (σ/2)·‖θ‖₂²
//
// making it σ-strongly convex (paper §4.2.3). The Lipschitz constant grows
// by σ·max‖θ‖ ≤ σ·diam(Θ).
type Regularized struct {
	inner Loss
	sigma float64
}

// NewRegularized wraps inner with ridge coefficient sigma ≥ 0.
func NewRegularized(inner Loss, sigma float64) (*Regularized, error) {
	if sigma < 0 {
		return nil, fmt.Errorf("convex: negative ridge coefficient")
	}
	return &Regularized{inner: inner, sigma: sigma}, nil
}

// Name returns the decorated name.
func (l *Regularized) Name() string {
	return fmt.Sprintf("%s+ridge(%g)", l.inner.Name(), l.sigma)
}

// Domain returns the inner domain.
func (l *Regularized) Domain() Domain { return l.inner.Domain() }

// Value adds the ridge term.
func (l *Regularized) Value(theta, x []float64) float64 {
	n := vecmath.Norm2(theta)
	return l.inner.Value(theta, x) + l.sigma/2*n*n
}

// Grad adds σ·θ.
func (l *Regularized) Grad(grad, theta, x []float64) {
	l.inner.Grad(grad, theta, x)
	for i := range grad {
		grad[i] += l.sigma * theta[i]
	}
}

// Lipschitz returns L_inner + σ·diam(Θ).
func (l *Regularized) Lipschitz() float64 {
	return l.inner.Lipschitz() + l.sigma*l.inner.Domain().Diameter()
}

// StrongConvexity returns σ_inner + σ.
func (l *Regularized) StrongConvexity() float64 {
	return l.inner.StrongConvexity() + l.sigma
}

// Inner returns the wrapped loss.
func (l *Regularized) Inner() Loss { return l.inner }

// Sigma returns the ridge coefficient.
func (l *Regularized) Sigma() float64 { return l.sigma }

// Scaled multiplies a loss by a positive constant c, scaling its Lipschitz
// constant and strong-convexity modulus by c. Its main use is renormalizing
// a Regularized loss back to the paper's 1-Lipschitz convention (§4.2.3
// assumes σ-strongly convex losses that are still 1-Lipschitz): wrap with
// c = 1/Lipschitz.
type Scaled struct {
	inner Loss
	c     float64
}

// NewScaled wraps inner with multiplier c > 0.
func NewScaled(inner Loss, c float64) (*Scaled, error) {
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return nil, fmt.Errorf("convex: scale %v must be positive and finite", c)
	}
	return &Scaled{inner: inner, c: c}, nil
}

// NewUnitLipschitz rescales inner to a certified Lipschitz constant of 1.
func NewUnitLipschitz(inner Loss) (*Scaled, error) {
	l := inner.Lipschitz()
	if l <= 0 {
		return nil, fmt.Errorf("convex: cannot normalize loss with Lipschitz bound %v", l)
	}
	return NewScaled(inner, 1/l)
}

// Name returns the decorated name.
func (l *Scaled) Name() string { return fmt.Sprintf("%s×%g", l.inner.Name(), l.c) }

// Domain returns the inner domain.
func (l *Scaled) Domain() Domain { return l.inner.Domain() }

// Value returns c·ℓ(θ; x).
func (l *Scaled) Value(theta, x []float64) float64 { return l.c * l.inner.Value(theta, x) }

// Grad writes c·∇ℓ.
func (l *Scaled) Grad(grad, theta, x []float64) {
	l.inner.Grad(grad, theta, x)
	for i := range grad {
		grad[i] *= l.c
	}
}

// Lipschitz returns c·L.
func (l *Scaled) Lipschitz() float64 { return l.c * l.inner.Lipschitz() }

// StrongConvexity returns c·σ.
func (l *Scaled) StrongConvexity() float64 { return l.c * l.inner.StrongConvexity() }

// Inner returns the wrapped loss.
func (l *Scaled) Inner() Loss { return l.inner }

// Compile-time GLM conformance checks.
var (
	_ GLM = (*Squared)(nil)
	_ GLM = (*Logistic)(nil)
	_ GLM = (*SmoothedHinge)(nil)
	_ GLM = (*Huber)(nil)
)
