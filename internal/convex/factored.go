package convex

// FactoredLoss is the capability interface of losses that read a record
// only through a declared subset of its coordinates — marginals, parities
// and other junta-style queries. Over an implicit product universe
// (universe.Factored) such a loss's population expectation collapses to a
// weighted sum over the small sub-cube spanned by its support
// (universe.SupportUniverse), which is how the factored engine answers
// queries on universes far past the dense-enumeration limit.
type FactoredLoss interface {
	Loss
	// Support returns the record coordinates the loss reads, or nil when
	// the loss has not declared a support (it must then be treated as
	// reading the whole record). The returned slice is read-only.
	Support() []int
}

// SupportOf returns the declared support of l, looking through the
// Regularized and Scaled decorators: their extra terms depend on θ only,
// never on the record, so a decorated loss inherits the inner support
// unchanged. The second result is false when no support is declared
// anywhere in the chain.
func SupportOf(l Loss) ([]int, bool) {
	for l != nil {
		if fl, ok := l.(FactoredLoss); ok {
			if s := fl.Support(); s != nil {
				return s, true
			}
		}
		w, ok := l.(interface{ Inner() Loss })
		if !ok {
			return nil, false
		}
		l = w.Inner()
	}
	return nil, false
}

// Compile-time check: LinearQuery carries the support declaration.
var _ FactoredLoss = (*LinearQuery)(nil)
