package convex

import (
	"fmt"
	"testing"

	"repro/internal/histogram"
	"repro/internal/universe"
	"repro/internal/xeval"
)

// bench2p16 is the acceptance-criterion workload: a logistic CM query over
// a |X| = 2^16 labeled universe (5 feature coordinates on an 8-level grid
// × 2 labels = 8^5·2 = 65536 records).
func bench2p16(b *testing.B) (*universe.LabeledGrid, Loss, *histogram.Histogram, []float64) {
	b.Helper()
	g, err := universe.NewLabeledGrid(5, 8, 1.0, 2, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	if g.Size() != 1<<16 {
		b.Fatalf("|X| = %d, want 2^16", g.Size())
	}
	l, err := Build(g, Spec{Kind: "logistic"})
	if err != nil {
		b.Fatal(err)
	}
	h := histogram.Uniform(g)
	theta := make([]float64, l.Domain().Dim())
	for i := range theta {
		theta[i] = 0.1 * float64(i+1)
	}
	return g, l, h, theta
}

// BenchmarkGradOn2p16Logistic measures the population-gradient hot path —
// the per-iteration cost of every public argmin solve — serial vs
// parallel. The acceptance criterion for the engine is ≥3× at 8 workers.
func BenchmarkGradOn2p16Logistic(b *testing.B) {
	_, l, h, theta := bench2p16(b)
	grad := make([]float64, l.Domain().Dim())
	for _, workers := range []int{1, 2, 4, 8, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=numcpu"
		}
		e := xeval.New(workers)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				GradOn(e, l, grad, theta, h)
			}
		})
	}
}

// BenchmarkEvalOn2p16Logistic measures the population-loss path.
func BenchmarkEvalOn2p16Logistic(b *testing.B) {
	_, l, h, theta := bench2p16(b)
	for _, workers := range []int{1, 8} {
		e := xeval.New(workers)
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				EvalOn(e, l, theta, h)
			}
		})
	}
}

// BenchmarkDirGradOn2p16Logistic measures the Claim-3.5 certificate
// kernel u_t(x) = ⟨dir, ∇ℓ_x(θ)⟩ over the full universe.
func BenchmarkDirGradOn2p16Logistic(b *testing.B) {
	g, l, _, theta := bench2p16(b)
	dir := make([]float64, l.Domain().Dim())
	for i := range dir {
		dir[i] = 0.05 * float64(i+1)
	}
	out := make([]float64, g.Size())
	for _, workers := range []int{1, 8} {
		e := xeval.New(workers)
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				DirGradOn(e, l, out, dir, theta, g)
			}
		})
	}
}

// BenchmarkGradOnGenericFallback measures the engine without the
// BatchLoss fast path (loss wrapped to hide the kernel methods), isolating
// the speedup attributable to batching alone.
func BenchmarkGradOnGenericFallback(b *testing.B) {
	_, l, h, theta := bench2p16(b)
	hidden := hideBatch{l}
	grad := make([]float64, l.Domain().Dim())
	for _, workers := range []int{1, 8} {
		e := xeval.New(workers)
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				GradOn(e, hidden, grad, theta, h)
			}
		})
	}
}

// hideBatch strips the BatchLoss methods off a loss, forcing the generic
// per-element fallback.
type hideBatch struct{ Loss }
