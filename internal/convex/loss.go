package convex

import (
	"math"

	"repro/internal/histogram"
	"repro/internal/universe"
	"repro/internal/xeval"
)

// Loss is a convex loss function ℓ(θ; x) defining a CM query (paper §2.2).
// The record x is the vector encoding of a universe element. Implementations
// must be deterministic and safe for concurrent use.
type Loss interface {
	// Name identifies the loss instance (used in experiment reports).
	Name() string
	// Domain returns Θ.
	Domain() Domain
	// Value returns ℓ(θ; x).
	Value(theta, x []float64) float64
	// Grad writes ∇_θ ℓ(θ; x) into grad (len = Domain().Dim()).
	Grad(grad, theta, x []float64)
	// Lipschitz returns a certified bound L with ‖∇ℓ_x(θ)‖₂ ≤ L for all
	// θ ∈ Θ and all x in the universe the loss was built for.
	Lipschitz() float64
	// StrongConvexity returns σ ≥ 0 such that ℓ is σ-strongly convex in θ
	// (0 when merely convex).
	StrongConvexity() float64
}

// GLM is implemented by losses of generalized-linear-model form (paper
// §4.2.2): ℓ(θ; (x, y)) depends on θ only through the inner product ⟨θ, x⟩.
// Scalar exposes the 1-dimensional profile, letting the GLM oracle in
// internal/erm work in the reduced space.
type GLM interface {
	Loss
	// Scalar returns ℓ′(z; y) and its derivative in z, where z = ⟨θ, x⟩
	// and y is the record's label.
	Scalar(z, y float64) (value, deriv float64)
}

// ExactSolvable is implemented by losses whose population minimizer has a
// closed form. Solvers use it as a fast path; the generic projected-gradient
// route must agree with it (tested in optimize).
type ExactSolvable interface {
	Loss
	// ExactMinimize returns argmin_θ ℓ(θ; h) exactly.
	ExactMinimize(h *histogram.Histogram) []float64
}

// ScaleBound returns the paper's scale parameter
//
//	S = max_{x, θ, θ′} |⟨θ − θ′, ∇ℓ_x(θ)⟩| ≤ diam(Θ) · Lipschitz(ℓ),
//
// the constant the algorithm's T, η and sensitivity computations use (§3.2).
func ScaleBound(l Loss) float64 {
	return l.Domain().Diameter() * l.Lipschitz()
}

// All universe expectations below run on the xeval engine: fixed chunk
// boundaries over [0, |X|) with pairwise reduction, so for any worker
// count the result is bit-identical to the serial (nil-engine) path.
// Per-chunk work dispatches through the BatchLoss fast path (batch.go)
// when the loss provides one and falls back to per-element Value/Grad
// calls otherwise.

// EvalOn returns the population loss ℓ(θ; D) = Σ_x D(x)·ℓ(θ; x), evaluated
// chunk-parallel on e (nil means serial).
//
// Chunks adapt to the histogram's support: mostly-zero chunks (empirical
// histograms of n ≪ |X| records) evaluate only their nonzero cells, dense
// chunks (MW hypothesis histograms) take the batched kernel. Both paths
// accumulate identical values in identical index order, and the choice
// depends only on the weights, so results stay worker-count deterministic.
func EvalOn(e *xeval.Engine, l Loss, theta []float64, h *histogram.Histogram) float64 {
	u := h.U
	return e.Sum(u.Size(), func(lo, hi int) float64 {
		w := h.P[lo:hi]
		nnz := 0
		for _, wi := range w {
			if wi != 0 {
				nnz++
			}
		}
		if nnz == 0 {
			return 0
		}
		var s float64
		if nnz < (hi-lo)/4 {
			buf := make([]float64, u.Dim())
			for i, wi := range w {
				if wi != 0 {
					s += wi * l.Value(theta, u.PointInto(lo+i, buf))
				}
			}
			return s
		}
		bufp := chunkBuf.Get().(*[]float64)
		out := (*bufp)[:hi-lo]
		evalRange(l, out, theta, u, lo, hi)
		for i, wi := range w {
			if wi != 0 {
				s += wi * out[i]
			}
		}
		chunkBuf.Put(bufp)
		return s
	})
}

// ValueOn returns the population loss ℓ(θ; D) = Σ_x D(x)·ℓ(θ; x) on the
// serial engine. Shorthand for EvalOn(nil, ...).
func ValueOn(l Loss, theta []float64, h *histogram.Histogram) float64 {
	return EvalOn(nil, l, theta, h)
}

// GradOn writes the population gradient ∇ℓ(θ; D) = Σ_x D(x)·∇ℓ_x(θ) into
// grad and returns it (allocating when nil), evaluated chunk-parallel on e
// (nil means serial).
func GradOn(e *xeval.Engine, l Loss, grad, theta []float64, h *histogram.Histogram) []float64 {
	d := l.Domain().Dim()
	if grad == nil {
		grad = make([]float64, d)
	}
	u := h.U
	return e.SumVec(grad, u.Size(), func(lo, hi int, out []float64) {
		w := h.P[lo:hi]
		if allZero(w) {
			return
		}
		gradRange(l, out, theta, w, u, lo, hi)
	})
}

// DirGradOn writes the directional gradients ⟨dir, ∇ℓ_x(θ)⟩ into
// out[i] for every universe element i, chunk-parallel on e. This is the
// dual-certificate vector of paper Claim 3.5 (before clamping to [−S, S]).
func DirGradOn(e *xeval.Engine, l Loss, out, dir, theta []float64, u universe.Universe) {
	e.ForEach(u.Size(), func(lo, hi int) {
		dirGradRange(l, out[lo:hi], dir, theta, u, lo, hi)
	})
}

// CertifyLipschitz empirically verifies the loss's claimed Lipschitz bound
// by evaluating gradient norms at the given probe parameters over the whole
// universe (chunk-parallel on e), returning the largest observed norm.
// Tests compare it against Lipschitz().
func CertifyLipschitz(e *xeval.Engine, l Loss, u universe.Universe, probes [][]float64) float64 {
	d := l.Domain().Dim()
	var worst float64
	for _, th := range probes {
		m, ok := e.Max(u.Size(), func(lo, hi int) float64 {
			g := make([]float64, d)
			buf := make([]float64, u.Dim())
			var w float64
			for i := lo; i < hi; i++ {
				l.Grad(g, th, u.PointInto(i, buf))
				var n2 float64
				for _, v := range g {
					n2 += v * v
				}
				if n2 > w {
					w = n2
				}
			}
			return w
		})
		if ok {
			if n := math.Sqrt(m); n > worst {
				worst = n
			}
		}
	}
	return worst
}

// allZero reports whether every entry of w is zero — the common case for
// chunks of an empirical histogram over a large universe, which lets the
// expectation kernels skip whole chunks.
func allZero(w []float64) bool {
	for _, v := range w {
		if v != 0 {
			return false
		}
	}
	return true
}
