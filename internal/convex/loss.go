package convex

import (
	"math"

	"repro/internal/histogram"
	"repro/internal/universe"
)

// Loss is a convex loss function ℓ(θ; x) defining a CM query (paper §2.2).
// The record x is the vector encoding of a universe element. Implementations
// must be deterministic and safe for concurrent use.
type Loss interface {
	// Name identifies the loss instance (used in experiment reports).
	Name() string
	// Domain returns Θ.
	Domain() Domain
	// Value returns ℓ(θ; x).
	Value(theta, x []float64) float64
	// Grad writes ∇_θ ℓ(θ; x) into grad (len = Domain().Dim()).
	Grad(grad, theta, x []float64)
	// Lipschitz returns a certified bound L with ‖∇ℓ_x(θ)‖₂ ≤ L for all
	// θ ∈ Θ and all x in the universe the loss was built for.
	Lipschitz() float64
	// StrongConvexity returns σ ≥ 0 such that ℓ is σ-strongly convex in θ
	// (0 when merely convex).
	StrongConvexity() float64
}

// GLM is implemented by losses of generalized-linear-model form (paper
// §4.2.2): ℓ(θ; (x, y)) depends on θ only through the inner product ⟨θ, x⟩.
// Scalar exposes the 1-dimensional profile, letting the GLM oracle in
// internal/erm work in the reduced space.
type GLM interface {
	Loss
	// Scalar returns ℓ′(z; y) and its derivative in z, where z = ⟨θ, x⟩
	// and y is the record's label.
	Scalar(z, y float64) (value, deriv float64)
}

// ExactSolvable is implemented by losses whose population minimizer has a
// closed form. Solvers use it as a fast path; the generic projected-gradient
// route must agree with it (tested in optimize).
type ExactSolvable interface {
	Loss
	// ExactMinimize returns argmin_θ ℓ(θ; h) exactly.
	ExactMinimize(h *histogram.Histogram) []float64
}

// ScaleBound returns the paper's scale parameter
//
//	S = max_{x, θ, θ′} |⟨θ − θ′, ∇ℓ_x(θ)⟩| ≤ diam(Θ) · Lipschitz(ℓ),
//
// the constant the algorithm's T, η and sensitivity computations use (§3.2).
func ScaleBound(l Loss) float64 {
	return l.Domain().Diameter() * l.Lipschitz()
}

// ValueOn returns the population loss ℓ(θ; D) = Σ_x D(x)·ℓ(θ; x).
func ValueOn(l Loss, theta []float64, h *histogram.Histogram) float64 {
	var s float64
	for i, p := range h.P {
		if p == 0 {
			continue
		}
		s += p * l.Value(theta, h.U.Point(i))
	}
	return s
}

// GradOn writes the population gradient ∇ℓ(θ; D) = Σ_x D(x)·∇ℓ_x(θ) into
// grad and returns it (allocating when nil).
func GradOn(l Loss, grad, theta []float64, h *histogram.Histogram) []float64 {
	d := l.Domain().Dim()
	if grad == nil {
		grad = make([]float64, d)
	}
	for i := range grad {
		grad[i] = 0
	}
	g := make([]float64, d)
	for i, p := range h.P {
		if p == 0 {
			continue
		}
		l.Grad(g, theta, h.U.Point(i))
		for j := range grad {
			grad[j] += p * g[j]
		}
	}
	return grad
}

// CertifyLipschitz empirically verifies the loss's claimed Lipschitz bound
// by evaluating gradient norms at the given probe parameters over the whole
// universe, returning the largest observed norm. Tests compare it against
// Lipschitz().
func CertifyLipschitz(l Loss, u universe.Universe, probes [][]float64) float64 {
	d := l.Domain().Dim()
	g := make([]float64, d)
	var worst float64
	for _, th := range probes {
		for i := 0; i < u.Size(); i++ {
			l.Grad(g, th, u.Point(i))
			var n2 float64
			for _, v := range g {
				n2 += v * v
			}
			if n := math.Sqrt(n2); n > worst {
				worst = n
			}
		}
	}
	return worst
}
