package convex

import (
	"math"
	"testing"

	"repro/internal/sample"
	"repro/internal/vecmath"
)

func TestL2Ball(t *testing.T) {
	b, err := NewL2Ball(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Dim() != 3 || b.Radius() != 2 || b.Diameter() != 4 {
		t.Fatalf("ball metadata wrong: %v", b)
	}
	if !b.Contains(b.Center(), 0) {
		t.Error("center not contained")
	}
	p := b.Project([]float64{6, 0, 0})
	if !vecmath.ApproxEqual(p, []float64{2, 0, 0}, 1e-12) {
		t.Errorf("Project = %v", p)
	}
	inside := []float64{0.5, 0.5, 0}
	if got := b.Project(inside); !vecmath.ApproxEqual(got, inside, 0) {
		t.Errorf("interior moved: %v", got)
	}
	if b.Contains([]float64{3, 0, 0}, 0.5) {
		t.Error("far point contained")
	}
	if b.Contains([]float64{1, 1}, 0) {
		t.Error("wrong-dim point contained")
	}
}

func TestL2BallValidation(t *testing.T) {
	for _, c := range []struct {
		d int
		r float64
	}{{0, 1}, {2, 0}, {2, -1}, {2, math.NaN()}, {2, math.Inf(1)}} {
		if _, err := NewL2Ball(c.d, c.r); err == nil {
			t.Errorf("NewL2Ball(%d, %v) accepted", c.d, c.r)
		}
	}
}

func TestInterval(t *testing.T) {
	iv, err := NewInterval(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Dim() != 1 || iv.Diameter() != 1 {
		t.Fatal("interval metadata wrong")
	}
	if got := iv.Project([]float64{2})[0]; got != 1 {
		t.Errorf("Project(2) = %v", got)
	}
	if got := iv.Project([]float64{-2})[0]; got != 0 {
		t.Errorf("Project(-2) = %v", got)
	}
	if got := iv.Center()[0]; got != 0.5 {
		t.Errorf("Center = %v", got)
	}
	lo, hi := iv.Bounds()
	if lo != 0 || hi != 1 {
		t.Errorf("Bounds = %v,%v", lo, hi)
	}
	if !iv.Contains([]float64{1}, 0) || iv.Contains([]float64{1.5}, 0.1) {
		t.Error("Contains wrong")
	}
	for _, c := range [][2]float64{{1, 0}, {0, 0}, {math.NaN(), 1}, {0, math.Inf(1)}} {
		if _, err := NewInterval(c[0], c[1]); err == nil {
			t.Errorf("NewInterval(%v,%v) accepted", c[0], c[1])
		}
	}
}

func TestBox(t *testing.T) {
	b, err := NewBox(2, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Diameter()-2*math.Sqrt2) > 1e-12 {
		t.Errorf("Diameter = %v", b.Diameter())
	}
	got := b.Project([]float64{5, -0.5})
	if !vecmath.ApproxEqual(got, []float64{1, -0.5}, 0) {
		t.Errorf("Project = %v", got)
	}
	if !b.Contains([]float64{0, 0}, 0) || b.Contains([]float64{2, 0}, 0) {
		t.Error("Contains wrong")
	}
	if b.Contains([]float64{0}, 0) {
		t.Error("wrong dim contained")
	}
	if _, err := NewBox(0, 0, 1); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := NewBox(2, 1, 0); err == nil {
		t.Error("lo>hi accepted")
	}
}

// Projection properties shared by every domain: idempotence, membership,
// and non-expansiveness toward domain points.
func TestProjectionProperties(t *testing.T) {
	ball, _ := NewL2Ball(4, 1.5)
	box, _ := NewBox(3, -2, 0.5)
	iv, _ := NewInterval(-3, 7)
	doms := []Domain{ball, box, iv}
	src := sample.New(9)
	for _, dom := range doms {
		for trial := 0; trial < 100; trial++ {
			v := make([]float64, dom.Dim())
			for i := range v {
				v[i] = src.Gaussian(0, 4)
			}
			p := dom.Project(v)
			if !dom.Contains(p, 1e-9) {
				t.Fatalf("%s: projection leaves domain: %v", dom, p)
			}
			p2 := dom.Project(p)
			if !vecmath.ApproxEqual(p, p2, 1e-9) {
				t.Fatalf("%s: projection not idempotent", dom)
			}
			// Projection is closer to the center (a domain point) than v is,
			// whenever v is outside.
			c := dom.Center()
			if !dom.Contains(v, 1e-9) {
				if vecmath.Dist2(p, c) > vecmath.Dist2(v, c)+1e-9 {
					t.Fatalf("%s: projection moved away from center", dom)
				}
			}
		}
	}
}
