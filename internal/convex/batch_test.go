package convex

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/histogram"
	"repro/internal/sample"
	"repro/internal/universe"
	"repro/internal/xeval"
)

// registrySpecs returns one buildable spec per registered loss kind over a
// dim-3 labeled universe, so the engine equality tests below sweep the
// whole registry. The test fails if a kind is added without a spec here.
func registrySpecs(t *testing.T) []Spec {
	t.Helper()
	specs := map[string]Spec{
		"squared":   {Kind: "squared"},
		"logistic":  {Kind: "logistic", Params: json.RawMessage(`{"margin":0.1,"temp":0.4}`)},
		"hinge":     {Kind: "hinge", Params: json.RawMessage(`{"width":0.8}`)},
		"huber":     {Kind: "huber", Params: json.RawMessage(`{"delta":0.3}`)},
		"pinball":   {Kind: "pinball", Params: json.RawMessage(`{"tau":0.7,"smooth":0.05}`)},
		"linear":    {Kind: "linear", Params: json.RawMessage(`{"v":[0.5,0.5,0,0.5]}`)},
		"halfspace": {Kind: "halfspace", Params: json.RawMessage(`{"w":[1,-1,0.5,0],"threshold":0.1}`)},
		"marginal":  {Kind: "marginal", Params: json.RawMessage(`{"coords":[0,1],"signs":[1,-1]}`)},
		"parity":    {Kind: "parity", Params: json.RawMessage(`{"coords":[0,2]}`)},
		"positive":  {Kind: "positive", Params: json.RawMessage(`{"coord":1}`)},
	}
	var out []Spec
	for _, kind := range Kinds() {
		sp, ok := specs[kind]
		if !ok {
			t.Fatalf("registered kind %q has no spec in the engine equality tests; add one", kind)
		}
		out = append(out, sp)
	}
	return out
}

// testUniverse is large enough to span several xeval chunks so the
// parallel path genuinely exercises chunk scheduling and reduction.
func testUniverse(t *testing.T) *universe.LabeledGrid {
	t.Helper()
	// 3 features × 14 levels + 2 labels: |X| = 14³·2 = 5488 (> 2 chunks).
	g, err := universe.NewLabeledGrid(3, 14, 1.0, 2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// skewedHistogram builds a non-uniform histogram with some exact zeros, so
// the zero-chunk skip paths run.
func skewedHistogram(g universe.Universe) *histogram.Histogram {
	p := make([]float64, g.Size())
	var sum float64
	for i := range p {
		switch {
		case i%7 == 0:
			p[i] = 0 // exercise the allZero skip
		default:
			p[i] = 1 / float64(1+i%13)
			sum += p[i]
		}
	}
	for i := range p {
		p[i] /= sum
	}
	return &histogram.Histogram{U: g, P: p}
}

// naiveValueOn is the pre-engine reference implementation: a straight
// sequential accumulation with per-element Value calls.
func naiveValueOn(l Loss, theta []float64, h *histogram.Histogram) float64 {
	var s float64
	for i, p := range h.P {
		if p == 0 {
			continue
		}
		s += p * l.Value(theta, h.U.Point(i))
	}
	return s
}

// naiveGradOn is the pre-engine reference population gradient.
func naiveGradOn(l Loss, theta []float64, h *histogram.Histogram) []float64 {
	d := l.Domain().Dim()
	grad := make([]float64, d)
	g := make([]float64, d)
	for i, p := range h.P {
		if p == 0 {
			continue
		}
		l.Grad(g, theta, h.U.Point(i))
		for j := range grad {
			grad[j] += p * g[j]
		}
	}
	return grad
}

// naiveDirGrad is the pre-engine reference certificate vector.
func naiveDirGrad(l Loss, dir, theta []float64, u universe.Universe) []float64 {
	d := l.Domain().Dim()
	out := make([]float64, u.Size())
	g := make([]float64, d)
	for i := 0; i < u.Size(); i++ {
		l.Grad(g, theta, u.Point(i))
		var s float64
		for j := 0; j < d; j++ {
			s += dir[j] * g[j]
		}
		out[i] = s
	}
	return out
}

// probe returns deterministic pseudo-random interior domain points.
func probe(src *sample.Source, l Loss) []float64 {
	d := l.Domain().Dim()
	p := make([]float64, d)
	for i := range p {
		p[i] = 0.8*src.Float64() - 0.4
	}
	return l.Domain().Project(p)
}

// TestEngineMatchesSequentialAllKinds is the acceptance equality test:
// for every registered loss kind, the batched parallel expectation paths
// (8 workers) match the naive sequential reference within 1e-12, and are
// bit-identical across worker counts.
func TestEngineMatchesSequentialAllKinds(t *testing.T) {
	g := testUniverse(t)
	h := skewedHistogram(g)
	src := sample.New(7)
	par := xeval.New(8)
	ser := xeval.New(1)

	for _, sp := range registrySpecs(t) {
		l, err := Build(g, sp)
		if err != nil {
			t.Fatalf("%s: %v", sp.Kind, err)
		}
		// Wrap two kinds in the decorators so their delegating kernels are
		// covered by the same sweep.
		losses := []Loss{l}
		if reg, err := NewRegularized(l, 0.25); err == nil {
			losses = append(losses, reg)
		}
		if sc, err := NewScaled(l, 0.5); err == nil {
			losses = append(losses, sc)
		}
		for _, l := range losses {
			theta := probe(src, l)
			thetaHat := probe(src, l)
			dir := make([]float64, len(theta))
			for i := range dir {
				dir[i] = theta[i] - thetaHat[i]
			}

			wantV := naiveValueOn(l, theta, h)
			gotV := EvalOn(par, l, theta, h)
			if math.Abs(gotV-wantV) > 1e-12 {
				t.Errorf("%s: EvalOn parallel = %v, sequential %v (Δ=%g)", l.Name(), gotV, wantV, gotV-wantV)
			}
			if serV := EvalOn(ser, l, theta, h); serV != gotV {
				t.Errorf("%s: EvalOn differs across worker counts: %v vs %v", l.Name(), serV, gotV)
			}

			wantG := naiveGradOn(l, theta, h)
			gotG := GradOn(par, l, nil, theta, h)
			serG := GradOn(ser, l, nil, theta, h)
			for j := range wantG {
				if math.Abs(gotG[j]-wantG[j]) > 1e-12 {
					t.Errorf("%s: GradOn[%d] parallel = %v, sequential %v", l.Name(), j, gotG[j], wantG[j])
				}
				if gotG[j] != serG[j] {
					t.Errorf("%s: GradOn[%d] differs across worker counts", l.Name(), j)
				}
			}

			wantU := naiveDirGrad(l, dir, thetaHat, g)
			gotU := make([]float64, g.Size())
			DirGradOn(par, l, gotU, dir, thetaHat, g)
			for i := range wantU {
				if math.Abs(gotU[i]-wantU[i]) > 1e-12 {
					t.Errorf("%s: DirGradOn[%d] = %v, want %v", l.Name(), i, gotU[i], wantU[i])
					break
				}
			}
		}
	}
}

// TestEngineOnHypercube repeats the equality check on the §4.3 hypercube
// universe at |X| = 2^14, for a loss with a non-trivial full-record target.
func TestEngineOnHypercube(t *testing.T) {
	if testing.Short() {
		t.Skip("large universe")
	}
	hc, err := universe.NewHypercube(14)
	if err != nil {
		t.Fatal(err)
	}
	dom, err := NewL2Ball(hc.Dim(), 1)
	if err != nil {
		t.Fatal(err)
	}
	target := make([]float64, hc.Dim())
	target[0], target[3] = 0.8, -0.6
	l, err := NewSquared("sq-hc", dom, target, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := sample.New(11)
	h := skewedHistogram(hc)
	theta := probe(src, l)
	want := naiveValueOn(l, theta, h)
	if got := EvalOn(xeval.New(8), l, theta, h); math.Abs(got-want) > 1e-12 {
		t.Errorf("EvalOn = %v, want %v", got, want)
	}
	wantG := naiveGradOn(l, theta, h)
	gotG := GradOn(xeval.New(8), l, nil, theta, h)
	for j := range wantG {
		if math.Abs(gotG[j]-wantG[j]) > 1e-12 {
			t.Errorf("GradOn[%d] = %v, want %v", j, gotG[j], wantG[j])
		}
	}
}

// TestBatchKernelsMatchGenericFallback pins the BatchLoss fast paths to
// the generic per-element kernels directly (not just through the summed
// expectations): per-chunk eval and certificate outputs must agree
// pointwise, and weighted gradient sums must agree for arbitrary weights.
func TestBatchKernelsMatchGenericFallback(t *testing.T) {
	g := testUniverse(t)
	src := sample.New(3)
	for _, sp := range registrySpecs(t) {
		l, err := Build(g, sp)
		if err != nil {
			t.Fatal(err)
		}
		bl, ok := l.(BatchLoss)
		if !ok {
			t.Fatalf("%s: registry loss %T does not implement BatchLoss", sp.Kind, l)
		}
		theta := probe(src, l)
		dir := probe(src, l)
		lo, hi := 5, 1200
		n := hi - lo

		fastV := make([]float64, n)
		bl.EvalBatch(fastV, theta, g, lo, hi)
		buf := make([]float64, g.Dim())
		for i := lo; i < hi; i++ {
			want := l.Value(theta, g.PointInto(i, buf))
			if math.Abs(fastV[i-lo]-want) > 1e-12 {
				t.Errorf("%s: EvalBatch[%d] = %v, Value = %v", sp.Kind, i, fastV[i-lo], want)
				break
			}
		}

		w := make([]float64, n)
		for i := range w {
			w[i] = src.Float64()
			if i%5 == 0 {
				w[i] = 0
			}
		}
		d := l.Domain().Dim()
		fastG := make([]float64, d)
		bl.GradBatch(fastG, theta, w, g, lo, hi)
		slowG := make([]float64, d)
		gbuf := make([]float64, d)
		for i := lo; i < hi; i++ {
			if w[i-lo] == 0 {
				continue
			}
			l.Grad(gbuf, theta, g.PointInto(i, buf))
			for j := 0; j < d; j++ {
				slowG[j] += w[i-lo] * gbuf[j]
			}
		}
		for j := 0; j < d; j++ {
			if math.Abs(fastG[j]-slowG[j]) > 1e-12 {
				t.Errorf("%s: GradBatch[%d] = %v, generic = %v", sp.Kind, j, fastG[j], slowG[j])
			}
		}

		fastU := make([]float64, n)
		bl.DirGradBatch(fastU, dir, theta, g, lo, hi)
		for i := lo; i < hi; i++ {
			l.Grad(gbuf, theta, g.PointInto(i, buf))
			var want float64
			for j := 0; j < d; j++ {
				want += dir[j] * gbuf[j]
			}
			if math.Abs(fastU[i-lo]-want) > 1e-12 {
				t.Errorf("%s: DirGradBatch[%d] = %v, generic = %v", sp.Kind, i, fastU[i-lo], want)
				break
			}
		}
	}
}

// TestEvalOnConcurrentSameLoss drives one loss instance from many
// goroutines at once — the serving pattern (sessions share registry-built
// losses' universe) — so `go test -race` certifies engine + kernel safety.
func TestEvalOnConcurrentSameLoss(t *testing.T) {
	g := testUniverse(t)
	h := skewedHistogram(g)
	l, err := Build(g, Spec{Kind: "logistic"})
	if err != nil {
		t.Fatal(err)
	}
	src := sample.New(5)
	theta := probe(src, l)
	want := EvalOn(nil, l, theta, h)
	done := make(chan float64, 8)
	for k := 0; k < 8; k++ {
		go func() {
			e := xeval.New(4)
			var last float64
			for r := 0; r < 20; r++ {
				last = EvalOn(e, l, theta, h)
			}
			done <- last
		}()
	}
	for k := 0; k < 8; k++ {
		if got := <-done; got != want {
			t.Errorf("concurrent EvalOn = %v, want %v", got, want)
		}
	}
}

// TestEvalOnSparseHistogram covers the sparse-chunk fast path: a
// histogram supported on a handful of cells of a multi-chunk universe
// must produce the same population loss as the dense batched path, for
// every worker count.
func TestEvalOnSparseHistogram(t *testing.T) {
	g := testUniverse(t)
	p := make([]float64, g.Size())
	// 12 support points scattered across chunks: every chunk is far below
	// the nnz < len/4 density threshold.
	idxs := []int{0, 7, 500, 2047, 2048, 2100, 4095, 4096, 4500, 5000, 5400, 5487}
	for _, i := range idxs {
		p[i] = 1 / float64(len(idxs))
	}
	h := &histogram.Histogram{U: g, P: p}
	l, err := Build(g, Spec{Kind: "huber"})
	if err != nil {
		t.Fatal(err)
	}
	theta := probe(sample.New(13), l)
	want := naiveValueOn(l, theta, h)
	for _, w := range []int{1, 8} {
		if got := EvalOn(xeval.New(w), l, theta, h); math.Abs(got-want) > 1e-12 {
			t.Errorf("workers=%d: sparse EvalOn = %v, want %v", w, got, want)
		}
	}
	if a, b := EvalOn(xeval.New(1), l, theta, h), EvalOn(xeval.New(8), l, theta, h); a != b {
		t.Errorf("sparse EvalOn differs across worker counts: %v vs %v", a, b)
	}
}
