package convex

import (
	"math"
	"testing"
)

func TestPinballValidation(t *testing.T) {
	ball, _ := NewL2Ball(2, 1)
	for _, c := range []struct{ tau, smooth, fb float64 }{
		{0, 0.1, 1}, {1, 0.1, 1}, {0.5, 0, 1}, {0.5, 0.1, 0},
	} {
		if _, err := NewPinball("p", ball, c.tau, c.smooth, c.fb); err == nil {
			t.Errorf("NewPinball(%v) accepted", c)
		}
	}
}

// The smoothed pinball profile must be continuous, have continuous
// derivative, and agree with the exact pinball outside the smoothing
// window.
func TestPinballProfileShape(t *testing.T) {
	ball, _ := NewL2Ball(2, 1)
	tau, s := 0.3, 0.1
	pb, err := NewPinball("p", ball, tau, s, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Exact pinball outside the window (up to the 1/featBound scale c=1).
	v, dv := pb.Scalar(0.5, 0) // r = 0.5 ≥ s
	if math.Abs(v-tau*0.5) > 1e-12 || math.Abs(dv-tau) > 1e-12 {
		t.Errorf("right branch: v=%v dv=%v", v, dv)
	}
	v, dv = pb.Scalar(-0.5, 0)
	if math.Abs(v-(1-tau)*0.5) > 1e-12 || math.Abs(dv-(tau-1)) > 1e-12 {
		t.Errorf("left branch: v=%v dv=%v", v, dv)
	}
	// Continuity at ±s.
	for _, r := range []float64{s, -s} {
		vIn, dIn := pb.Scalar(r-1e-9*sign(r), 0)
		vOut, dOut := pb.Scalar(r+1e-9*sign(r), 0)
		if math.Abs(vIn-vOut) > 1e-6 {
			t.Errorf("value jump at r=%v: %v vs %v", r, vIn, vOut)
		}
		if math.Abs(dIn-dOut) > 1e-6 {
			t.Errorf("slope jump at r=%v: %v vs %v", r, dIn, dOut)
		}
	}
	// Minimum at r = argmin: derivative zero inside the window at
	// r* = −b/(2a) = −(2τ−1)·s.
	rstar := -(2*tau - 1) * s
	if _, d := pb.Scalar(rstar, 0); math.Abs(d) > 1e-12 {
		t.Errorf("derivative at smoothed minimum = %v", d)
	}
}

func TestPoissonValidation(t *testing.T) {
	ball, _ := NewL2Ball(2, 1)
	for _, c := range []struct{ zmax, ymax, fb float64 }{
		{0, 1, 1}, {1, 0, 1}, {1, 1, 0},
	} {
		if _, err := NewPoisson("p", ball, c.zmax, c.ymax, c.fb); err == nil {
			t.Errorf("NewPoisson(%v) accepted", c)
		}
	}
}

func TestPoissonProfile(t *testing.T) {
	ball, _ := NewL2Ball(2, 1)
	ps, err := NewPoisson("p", ball, 1.0, 2.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// In the interior: profile = c(e^z − yz), derivative c(e^z − y).
	c := 1 / (math.E + 2.0)
	v, dv := ps.Scalar(0.5, 1)
	if math.Abs(v-c*(math.Exp(0.5)-0.5)) > 1e-12 {
		t.Errorf("v = %v", v)
	}
	if math.Abs(dv-c*(math.Exp(0.5)-1)) > 1e-12 {
		t.Errorf("dv = %v", dv)
	}
	// Beyond the clamp: linear continuation with the boundary slope.
	_, dOut := ps.Scalar(5, 1)
	_, dEdge := ps.Scalar(1, 1)
	if math.Abs(dOut-dEdge) > 1e-12 {
		t.Errorf("slope beyond clamp %v != boundary slope %v", dOut, dEdge)
	}
	// Negative labels clamp to 0; huge labels clamp to ymax.
	vNeg, _ := ps.Scalar(0.5, -3)
	vZero, _ := ps.Scalar(0.5, 0)
	if vNeg != vZero {
		t.Error("negative label not clamped to 0")
	}
	vBig, _ := ps.Scalar(0.5, 100)
	vMax, _ := ps.Scalar(0.5, 2)
	if vBig != vMax {
		t.Error("oversized label not clamped to ymax")
	}
	// Poisson minimum at z = log y for y in range: derivative zero.
	if _, d := ps.Scalar(math.Log(2), 2); math.Abs(d) > 1e-12 {
		t.Errorf("derivative at z=log y is %v", d)
	}
}

func TestScaledProperties(t *testing.T) {
	ball, _ := NewL2Ball(2, 1)
	sq, _ := NewSquared("sq", ball, []float64{0, 0, 1}, 1, 1)
	if _, err := NewScaled(sq, 0); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := NewScaled(sq, math.NaN()); err == nil {
		t.Error("NaN accepted")
	}
	sc, err := NewScaled(sq, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	theta := []float64{0.2, -0.1}
	x := []float64{0.3, 0.4, 0.5}
	if got, want := sc.Value(theta, x), 2.5*sq.Value(theta, x); math.Abs(got-want) > 1e-15 {
		t.Errorf("Value = %v, want %v", got, want)
	}
	if sc.Lipschitz() != 2.5 {
		t.Errorf("Lipschitz = %v", sc.Lipschitz())
	}
	if sc.Inner() != Loss(sq) {
		t.Error("Inner wrong")
	}
	// NewUnitLipschitz round trip.
	norm, err := NewUnitLipschitz(sc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(norm.Lipschitz()-1) > 1e-12 {
		t.Errorf("normalized Lipschitz = %v", norm.Lipschitz())
	}
}
