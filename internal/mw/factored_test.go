package mw

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/sample"
	"repro/internal/universe"
)

// expandSupport embeds a support-indexed penalty into a full-universe
// vector, the bridge between FactoredState.Update and State.Update.
func expandSupport(f universe.Factored, coords []int, u []float64) []float64 {
	full := make([]float64, f.Size())
	buf := make([]int, f.Dim())
	for i := range full {
		full[i] = u[universe.ProjectIndex(f, coords, i, buf)]
	}
	return full
}

// juntaUpdates is a fixed mixed workload: disjoint supports, then
// overlapping ones that force merges, with deterministic penalty values
// in [−S, S].
func juntaUpdates(f universe.Factored, s float64) []struct {
	coords []int
	u      []float64
} {
	specs := [][]int{{0, 2}, {1}, {3, 4}, {2, 3}, {0, 5, 6}, {6}}
	out := make([]struct {
		coords []int
		u      []float64
	}, len(specs))
	for k, coords := range specs {
		n := 1
		for _, c := range coords {
			n *= f.Levels(c)
		}
		u := make([]float64, n)
		for i := range u {
			u[i] = s * math.Sin(float64(3*k+1)*float64(i+1))
		}
		out[k] = struct {
			coords []int
			u      []float64
		}{coords, u}
	}
	return out
}

// TestFactoredMatchesDense drives the dense and factored states through
// the same junta update sequence and compares the materialized hypotheses.
func TestFactoredMatchesDense(t *testing.T) {
	f, err := universe.NewProductHypercube(8)
	if err != nil {
		t.Fatal(err)
	}
	const s = 2.0
	eta := Eta(s, 12, f.Size())
	dense, err := New(f, eta, s)
	if err != nil {
		t.Fatal(err)
	}
	fact, err := NewFactored(f, eta, s)
	if err != nil {
		t.Fatal(err)
	}
	for k, up := range juntaUpdates(f, s) {
		if err := dense.Update(expandSupport(f, up.coords, up.u)); err != nil {
			t.Fatalf("dense update %d: %v", k, err)
		}
		if err := fact.Update(up.coords, up.u); err != nil {
			t.Fatalf("factored update %d: %v", k, err)
		}
	}
	hd := dense.Histogram()
	hf, err := fact.Histogram()
	if err != nil {
		t.Fatal(err)
	}
	for i := range hd.P {
		if math.Abs(hd.P[i]-hf.P[i]) > 1e-12 {
			t.Fatalf("P[%d]: dense %v factored %v", i, hd.P[i], hf.P[i])
		}
	}
	if got := fact.Updates(); got != dense.Updates() {
		t.Fatalf("update counts differ: %d vs %d", got, dense.Updates())
	}
}

// TestFactoredSupportHistogram checks the product-form marginal against
// brute-force marginalization of the dense hypothesis, including supports
// spanning several components and untouched coordinates.
func TestFactoredSupportHistogram(t *testing.T) {
	f, err := universe.NewProductHypercube(8)
	if err != nil {
		t.Fatal(err)
	}
	const s = 2.0
	eta := Eta(s, 12, f.Size())
	dense, _ := New(f, eta, s)
	fact, _ := NewFactored(f, eta, s)
	for _, up := range juntaUpdates(f, s) {
		if err := dense.Update(expandSupport(f, up.coords, up.u)); err != nil {
			t.Fatal(err)
		}
		if err := fact.Update(up.coords, up.u); err != nil {
			t.Fatal(err)
		}
	}
	hd := dense.Histogram()
	buf := make([]int, f.Dim())
	for _, coords := range [][]int{{0}, {7}, {2, 5}, {4, 0, 7}, {1, 3, 6}} {
		hf, err := fact.SupportHistogram(coords)
		if err != nil {
			t.Fatalf("support %v: %v", coords, err)
		}
		n := 1
		for _, c := range coords {
			n *= f.Levels(c)
		}
		want := make([]float64, n)
		for i, p := range hd.P {
			want[universe.ProjectIndex(f, coords, i, buf)] += p
		}
		var total float64
		for i := range want {
			if math.Abs(hf.P[i]-want[i]) > 1e-12 {
				t.Fatalf("support %v cell %d: got %v want %v", coords, i, hf.P[i], want[i])
			}
			total += hf.P[i]
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("support %v: total mass %v", coords, total)
		}
		if hf.U.Size() != n {
			t.Fatalf("support %v: universe size %d want %d", coords, hf.U.Size(), n)
		}
	}
}

// TestFactoredMergeAccounting checks component growth and merge behavior.
func TestFactoredMergeAccounting(t *testing.T) {
	f, err := universe.NewProductHypercube(10)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := NewFactored(f, 0.5, 1)
	upd := func(coords ...int) {
		t.Helper()
		u := make([]float64, 1<<len(coords))
		for i := range u {
			u[i] = 0.25
		}
		if err := st.Update(coords, u); err != nil {
			t.Fatal(err)
		}
	}
	upd(0, 1)
	upd(3, 4)
	if g, c := st.Components(); g != 2 || c != 8 {
		t.Fatalf("after disjoint updates: %d groups %d cells", g, c)
	}
	upd(1, 3) // chains both components into {0,1,3,4}
	if g, c := st.Components(); g != 1 || c != 16 {
		t.Fatalf("after chaining update: %d groups %d cells", g, c)
	}
}

// TestFactoredComponentCap checks that an over-large merge is rejected
// with the typed error and leaves the state untouched.
func TestFactoredComponentCap(t *testing.T) {
	f, err := universe.NewProductHypercube(30)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := NewFactored(f, 0.5, 1)
	small := []float64{0.5, -0.5}
	if err := st.Update([]int{0}, small); err != nil {
		t.Fatal(err)
	}
	before := st.Export()

	coords := make([]int, 21) // 2^21 cells > MaxComponentCells
	u := make([]float64, 1<<21)
	for i := range coords {
		coords[i] = i
	}
	err = st.Update(coords, u)
	if !errors.Is(err, ErrComponentTooLarge) {
		t.Fatalf("want ErrComponentTooLarge, got %v", err)
	}
	if !reflect.DeepEqual(before, st.Export()) {
		t.Fatal("failed update mutated the state")
	}
}

// TestFactoredUpdateValidation exercises the rejection paths.
func TestFactoredUpdateValidation(t *testing.T) {
	f, err := universe.NewProductHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := NewFactored(f, 0.5, 1)
	before := st.Export()
	cases := []struct {
		name   string
		coords []int
		u      []float64
	}{
		{"out of range", []int{6}, []float64{0, 0}},
		{"negative", []int{-1}, []float64{0, 0}},
		{"duplicate", []int{2, 2}, []float64{0, 0, 0, 0}},
		{"wrong length", []int{1}, []float64{0, 0, 0}},
		{"too large", []int{1}, []float64{0, 1.5}},
		{"nan", []int{1}, []float64{0, math.NaN()}},
	}
	for _, c := range cases {
		if err := st.Update(c.coords, c.u); err == nil {
			t.Errorf("%s: update accepted", c.name)
		}
	}
	if !reflect.DeepEqual(before, st.Export()) {
		t.Fatal("rejected updates mutated the state")
	}
	if _, err := NewFactored(f, 0, 1); err == nil {
		t.Error("zero eta accepted")
	}
	if _, err := NewFactored(f, 0.5, math.Inf(1)); err == nil {
		t.Error("infinite scale accepted")
	}
}

// TestFactoredExportRoundTrip checks that a restored state behaves
// bit-identically to the original.
func TestFactoredExportRoundTrip(t *testing.T) {
	f, err := universe.NewProductHypercube(8)
	if err != nil {
		t.Fatal(err)
	}
	const s = 2.0
	st, _ := NewFactored(f, 0.7, s)
	ups := juntaUpdates(f, s)
	for _, up := range ups[:4] {
		if err := st.Update(up.coords, up.u); err != nil {
			t.Fatal(err)
		}
	}
	re, err := FactoredFromExport(f, st.Export())
	if err != nil {
		t.Fatal(err)
	}
	for _, up := range ups[4:] {
		if err := st.Update(up.coords, up.u); err != nil {
			t.Fatal(err)
		}
		if err := re.Update(up.coords, up.u); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(st.Export(), re.Export()) {
		t.Fatal("restored state diverged from original")
	}

	// Invalid snapshots are rejected.
	bad := []FactoredExport{
		{Eta: 0.7, Scale: s, Updates: -1},
		{Eta: 0.7, Scale: s, Comps: []FactoredComponent{{Coords: []int{9}, LogW: []float64{0, 0}}}},
		{Eta: 0.7, Scale: s, Comps: []FactoredComponent{{Coords: []int{1, 0}, LogW: []float64{0, 0, 0, 0}}}},
		{Eta: 0.7, Scale: s, Comps: []FactoredComponent{{Coords: []int{1}, LogW: []float64{0}}}},
		{Eta: 0.7, Scale: s, Comps: []FactoredComponent{{Coords: []int{1}, LogW: []float64{0, math.NaN()}}}},
		{Eta: 0.7, Scale: s, Comps: []FactoredComponent{
			{Coords: []int{1}, LogW: []float64{0, 0}},
			{Coords: []int{1}, LogW: []float64{0, 0}},
		}},
	}
	for i, ex := range bad {
		if _, err := FactoredFromExport(f, ex); err == nil {
			t.Errorf("bad snapshot %d accepted", i)
		}
	}
}

// TestFactoredSampleRows checks determinism, range, and that samples track
// a strongly biased component.
func TestFactoredSampleRows(t *testing.T) {
	f, err := universe.NewProductHypercube(12)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := NewFactored(f, 1, 4)
	// Push coordinate 3 hard toward level 1 (positive sign): penalty −4 on
	// level 1, +4 on level 0 ⇒ weight ratio e^8.
	if err := st.Update([]int{3}, []float64{4, -4}); err != nil {
		t.Fatal(err)
	}
	rows := st.SampleRows(sample.New(42), 2000)
	again := st.SampleRows(sample.New(42), 2000)
	if !reflect.DeepEqual(rows, again) {
		t.Fatal("sampling is not deterministic for a fixed seed")
	}
	ones := 0
	for _, r := range rows {
		if r < 0 || r >= f.Size() {
			t.Fatalf("row %d outside universe", r)
		}
		if r>>3&1 == 1 {
			ones++
		}
	}
	if frac := float64(ones) / float64(len(rows)); frac < 0.99 {
		t.Fatalf("biased coordinate sampled positive only %.3f of the time", frac)
	}
}

// TestFactoredLargeD runs the factored state at d = 30 — far past dense
// materialization — and checks marginals and sampling stay cheap and exact.
func TestFactoredLargeD(t *testing.T) {
	f, err := universe.NewProductHypercube(30)
	if err != nil {
		t.Fatal(err)
	}
	const s = 2.0
	eta := Eta(s, 20, f.Size())
	st, err := NewFactored(f, eta, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, up := range juntaUpdates(f, s) {
		if err := st.Update(up.coords, up.u); err != nil {
			t.Fatal(err)
		}
	}
	h, err := st.SupportHistogram([]int{0, 2, 29})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, p := range h.P {
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("marginal mass %v", total)
	}
	if _, err := st.Histogram(); err == nil {
		t.Fatal("dense materialization at d=30 should be rejected")
	}
	rows := st.SampleRows(sample.New(7), 100)
	for _, r := range rows {
		if r < 0 || r >= f.Size() {
			t.Fatalf("row %d outside universe", r)
		}
	}
}
