package mw

import (
	"testing"
	"testing/quick"

	"repro/internal/sample"
	"repro/internal/universe"
	"repro/internal/vecmath"
)

// Two states fed identical update sequences must agree exactly — MW is
// deterministic given its inputs.
func TestUpdateDeterminism(t *testing.T) {
	u, err := universe.NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		src := sample.New(seed)
		a, _ := New(u, 0.4, 1)
		b, _ := New(u, 0.4, 1)
		for step := 0; step < 20; step++ {
			uv := make([]float64, u.Size())
			for i := range uv {
				uv[i] = 2*src.Float64() - 1
			}
			if err := a.Update(uv); err != nil {
				return false
			}
			if err := b.Update(vecmath.Copy(uv)); err != nil {
				return false
			}
		}
		return vecmath.ApproxEqual(a.Histogram().P, b.Histogram().P, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The hypothesis remains a valid probability distribution after any legal
// update sequence.
func TestHypothesisAlwaysValid(t *testing.T) {
	u, err := universe.NewHypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		src := sample.New(seed)
		st, _ := New(u, 0.1+src.Float64(), 2)
		for step := 0; step < 30; step++ {
			uv := make([]float64, u.Size())
			for i := range uv {
				uv[i] = 2 * (2*src.Float64() - 1)
			}
			if err := st.Update(uv); err != nil {
				return false
			}
			if err := st.Histogram().Validate(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Updating with the zero vector is a no-op on the hypothesis.
func TestZeroUpdateNoOp(t *testing.T) {
	u, err := universe.NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := New(u, 0.5, 1)
	before := vecmath.Copy(st.Histogram().P)
	if err := st.Update(make([]float64, u.Size())); err != nil {
		t.Fatal(err)
	}
	if !vecmath.ApproxEqual(before, st.Histogram().P, 1e-15) {
		t.Error("zero update changed the hypothesis")
	}
	if st.Updates() != 1 {
		t.Error("zero update not counted")
	}
}

// A constant update vector (same penalty everywhere) is also a no-op on
// the distribution — softmax shift invariance.
func TestConstantUpdateNoOp(t *testing.T) {
	u, err := universe.NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := New(u, 0.5, 1)
	uv := make([]float64, u.Size())
	vecmath.Fill(uv, 0.7)
	if err := st.Update(uv); err != nil {
		t.Fatal(err)
	}
	p := st.Histogram().P
	for _, v := range p {
		if v != p[0] {
			t.Fatalf("constant update broke uniformity: %v", p)
		}
	}
}
