package mw

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/histogram"
	"repro/internal/sample"
	"repro/internal/universe"
	"repro/internal/vecmath"
)

// FactoredState is the multiplicative-weights hypothesis in product form,
// for universes too large to materialize (universe.Factored past the dense
// limit). It relies on an exact structural fact: the hypothesis starts as
// the product of independent uniform coordinates, and an update whose
// penalty reads only a few coordinates multiplies the weights by a factor
// depending on those coordinates alone — so after any sequence of
// junta-supported updates the hypothesis is still a product of independent
// distributions over disjoint coordinate groups ("components"), each small
// enough to store explicitly. Every marginal, expectation, and sample the
// algorithm needs then reduces to sums over component tables, with cost
// independent of |X|.
//
// The represented distribution is mathematically identical to what the
// dense State would compute from the same updates (softmax factorizes over
// components), which the cross-engine equivalence tests pin down to 1e-12.
// Not safe for concurrent use.
type FactoredState struct {
	f         universe.Factored
	eta       float64
	s         float64
	updates   int
	comps     []*component
	coordComp []int // coordinate → index into comps, −1 while untouched
}

// component is one junta block: a set of coordinates whose joint
// log-weight table is materialized. Coordinates are sorted ascending and
// the table is indexed in mixed radix with coords[0] fastest-varying
// (universe.SupportIndex convention).
type component struct {
	coords []int
	logW   []float64
}

// MaxComponentCells caps one component's materialized table. Updates whose
// supports would chain components past the cap fail with
// ErrComponentTooLarge rather than exhausting memory: the factored
// representation only pays off while query supports stay small and mostly
// disjoint.
const MaxComponentCells = 1 << 20

// ErrComponentTooLarge reports that an update would merge junta components
// into a table larger than MaxComponentCells. Callers should fall back to
// the dense engine (if the universe permits) or reject the query.
var ErrComponentTooLarge = errors.New("mw: junta component too large")

// NewFactored starts a product-form hypothesis at the uniform histogram
// over f with learning rate eta and update-vector scale bound s.
func NewFactored(f universe.Factored, eta, s float64) (*FactoredState, error) {
	if eta <= 0 || math.IsNaN(eta) || math.IsInf(eta, 0) {
		return nil, fmt.Errorf("mw: eta %v must be positive and finite", eta)
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("mw: scale %v must be positive and finite", s)
	}
	cc := make([]int, f.Dim())
	for i := range cc {
		cc[i] = -1
	}
	return &FactoredState{f: f, eta: eta, s: s, coordComp: cc}, nil
}

// Eta returns the learning rate in use.
func (st *FactoredState) Eta() float64 { return st.eta }

// Scale returns the update-vector scale bound S.
func (st *FactoredState) Scale() float64 { return st.s }

// Updates returns the number of updates applied so far.
func (st *FactoredState) Updates() int { return st.updates }

// Components returns the number of materialized junta components and the
// total number of table cells across them — the memory footprint the
// factored representation actually pays for.
func (st *FactoredState) Components() (groups, cells int) {
	for _, c := range st.comps {
		cells += len(c.logW)
	}
	return len(st.comps), cells
}

// checkCoords validates a support coordinate list against the universe.
func (st *FactoredState) checkCoords(coords []int) error {
	dim := st.f.Dim()
	seen := make(map[int]bool, len(coords))
	for _, c := range coords {
		if c < 0 || c >= dim {
			return fmt.Errorf("mw: support coordinate %d outside [0,%d)", c, dim)
		}
		if seen[c] {
			return fmt.Errorf("mw: duplicate support coordinate %d", c)
		}
		seen[c] = true
	}
	return nil
}

// Update applies one multiplicative-weights step whose penalty reads only
// the given coordinates: u is indexed over their joint level assignments
// in universe.SupportIndex convention (coords[0] fastest-varying, matching
// the enumeration order of universe.SupportUniverse(f, coords)). Entries
// must satisfy |u| ≤ S, as in the dense State.
//
// Components overlapping coords are merged first; if the merged table
// would exceed MaxComponentCells the update fails with an error wrapping
// ErrComponentTooLarge and the hypothesis is left untouched.
func (st *FactoredState) Update(coords []int, u []float64) error {
	if err := st.checkCoords(coords); err != nil {
		return err
	}
	want := 1
	for _, c := range coords {
		want *= st.f.Levels(c)
	}
	if len(u) != want {
		return fmt.Errorf("mw: update length %d != support cube size %d", len(u), want)
	}
	const slack = 1e-9
	for i, v := range u {
		if math.IsNaN(v) || math.Abs(v) > st.s+slack {
			return fmt.Errorf("mw: update entry %d = %v outside [−S, S], S = %v", i, v, st.s)
		}
	}

	// Collect the components the support touches and the merged coordinate
	// set (union of their coordinates and the support's), sorted ascending.
	touched := map[int]bool{}
	coordSet := map[int]bool{}
	for _, c := range coords {
		coordSet[c] = true
		if ci := st.coordComp[c]; ci >= 0 {
			touched[ci] = true
		}
	}
	for ci := range touched {
		for _, c := range st.comps[ci].coords {
			coordSet[c] = true
		}
	}
	merged := make([]int, 0, len(coordSet))
	for c := range coordSet {
		merged = append(merged, c)
	}
	sort.Ints(merged)
	size := 1
	for _, c := range merged {
		size *= st.f.Levels(c)
		if size > MaxComponentCells {
			return fmt.Errorf("mw: update support %v chains components to %d coordinates (> %d cells): %w",
				coords, len(merged), MaxComponentCells, ErrComponentTooLarge)
		}
	}

	// Build the merged table: old components embed additively (the product
	// of their weight tables is the exponential of the sum of their logs),
	// then the penalty is applied and the table re-centered. Re-centering
	// per component is the factored form of the dense State's global
	// re-center: softmax is shift-invariant within a component.
	logW := make([]float64, size)
	pos := make(map[int]int, len(merged))
	for p, c := range merged {
		pos[c] = p
	}
	levels := make([]int, len(merged))
	for ci, old := range st.comps {
		if !touched[ci] {
			continue // iterate in slice order: embedding order is part of the bits
		}
		for cell := 0; cell < size; cell++ {
			universe.SupportLevelsInto(st.f, merged, cell, levels)
			idx := 0
			stride := 1
			for _, c := range old.coords {
				idx += levels[pos[c]] * stride
				stride *= st.f.Levels(c)
			}
			logW[cell] += old.logW[idx]
		}
	}
	m := math.Inf(-1)
	for cell := 0; cell < size; cell++ {
		universe.SupportLevelsInto(st.f, merged, cell, levels)
		idx := 0
		stride := 1
		for _, c := range coords {
			idx += levels[pos[c]] * stride
			stride *= st.f.Levels(c)
		}
		logW[cell] -= st.eta * u[idx]
		if logW[cell] > m {
			m = logW[cell]
		}
	}
	vecmath.AddConst(logW, -m)

	// Commit: drop merged-away components, append the new one, remap.
	if len(touched) > 0 {
		kept := st.comps[:0]
		for ci, c := range st.comps {
			if !touched[ci] {
				kept = append(kept, c)
			}
		}
		st.comps = kept
	}
	st.comps = append(st.comps, &component{coords: merged, logW: logW})
	for ci, c := range st.comps {
		for _, coord := range c.coords {
			st.coordComp[coord] = ci
		}
	}
	st.updates++
	return nil
}

// probs materializes one component's probability table (softmax of its
// log weights).
func (c *component) probs() []float64 {
	p := make([]float64, len(c.logW))
	vecmath.Softmax(p, c.logW)
	return p
}

// marginalOn returns the component's joint marginal over the listed
// positions of coords (incl indexes into coords), as a table in mixed
// radix over those coordinates in incl order.
func (st *FactoredState) marginalOn(c *component, coords []int, incl []int) []float64 {
	n := 1
	for _, p := range incl {
		n *= st.f.Levels(coords[p])
	}
	marg := make([]float64, n)
	probs := c.probs()
	pos := make(map[int]int, len(c.coords))
	for p, coord := range c.coords {
		pos[coord] = p
	}
	levels := make([]int, len(c.coords))
	for cell, pr := range probs {
		universe.SupportLevelsInto(st.f, c.coords, cell, levels)
		idx := 0
		stride := 1
		for _, p := range incl {
			coord := coords[p]
			idx += levels[pos[coord]] * stride
			stride *= st.f.Levels(coord)
		}
		marg[idx] += pr
	}
	return marg
}

// SupportHistogram returns the hypothesis's exact marginal distribution
// over the sub-cube spanned by coords, as a histogram over
// universe.SupportUniverse(f, coords) — ready for the unchanged dense
// minimization and evaluation machinery. Cost is the sub-cube size times
// the touched component tables; the full universe is never enumerated.
func (st *FactoredState) SupportHistogram(coords []int) (*histogram.Histogram, error) {
	sub, err := universe.SupportUniverse(st.f, coords)
	if err != nil {
		return nil, err
	}
	n := sub.Size()

	// Group the support coordinates by owning component; coordinates no
	// update ever touched contribute an exact uniform factor.
	free := 1.0
	byComp := map[int][]int{}
	for p, c := range coords {
		if ci := st.coordComp[c]; ci >= 0 {
			byComp[ci] = append(byComp[ci], p)
		} else {
			free /= float64(st.f.Levels(c))
		}
	}
	type group struct {
		incl []int
		marg []float64
	}
	cis := make([]int, 0, len(byComp))
	for ci := range byComp {
		cis = append(cis, ci)
	}
	sort.Ints(cis) // fixed group order: the product's rounding is part of the result
	groups := make([]group, 0, len(cis))
	for _, ci := range cis {
		incl := byComp[ci]
		groups = append(groups, group{incl: incl, marg: st.marginalOn(st.comps[ci], coords, incl)})
	}

	p := make([]float64, n)
	levels := make([]int, len(coords))
	for i := 0; i < n; i++ {
		universe.SupportLevelsInto(st.f, coords, i, levels)
		v := free
		for _, g := range groups {
			idx := 0
			stride := 1
			for _, pp := range g.incl {
				idx += levels[pp] * stride
				stride *= st.f.Levels(coords[pp])
			}
			v *= g.marg[idx]
		}
		p[i] = v
	}
	return &histogram.Histogram{U: sub, P: p}, nil
}

// SampleRows draws n independent rows (universe element indices) from the
// hypothesis: each component samples its joint cell from its probability
// table, untouched coordinates sample uniform levels. Draw order is fixed
// (components in table order, then free coordinates ascending), so results
// are deterministic given the source.
func (st *FactoredState) SampleRows(src *sample.Source, n int) []int {
	dim := st.f.Dim()
	tables := make([][]float64, len(st.comps))
	for i, c := range st.comps {
		tables[i] = c.probs()
	}
	rows := make([]int, n)
	digits := make([]int, dim)
	levels := make([]int, dim)
	for r := range rows {
		for j := range digits {
			digits[j] = -1
		}
		for i, c := range st.comps {
			cell := src.Categorical(tables[i])
			universe.SupportLevelsInto(st.f, c.coords, cell, levels)
			for k, coord := range c.coords {
				digits[coord] = levels[k]
			}
		}
		for j := 0; j < dim; j++ {
			if digits[j] < 0 {
				digits[j] = src.Intn(st.f.Levels(j))
			}
		}
		rows[r] = universe.ComposeIndex(st.f, digits)
	}
	return rows
}

// Histogram materializes the full hypothesis densely — only meaningful for
// universes within the dense-enumeration limit. The cross-engine
// equivalence tests use it to compare against the dense State.
func (st *FactoredState) Histogram() (*histogram.Histogram, error) {
	if err := universe.EnsureDense(st.f); err != nil {
		return nil, err
	}
	n := st.f.Size()
	free := 1.0
	for j := 0; j < st.f.Dim(); j++ {
		if st.coordComp[j] < 0 {
			free /= float64(st.f.Levels(j))
		}
	}
	tables := make([][]float64, len(st.comps))
	for i, c := range st.comps {
		tables[i] = c.probs()
	}
	p := make([]float64, n)
	buf := make([]int, st.f.Dim())
	for i := 0; i < n; i++ {
		v := free
		for ci, c := range st.comps {
			v *= tables[ci][universe.ProjectIndex(st.f, c.coords, i, buf)]
		}
		p[i] = v
	}
	return &histogram.Histogram{U: st.f, P: p}, nil
}

// FactoredComponent is the serialized form of one junta component.
type FactoredComponent struct {
	Coords []int     `json:"coords"`
	LogW   []float64 `json:"logw"`
}

// FactoredExport is a serializable snapshot of a FactoredState, the
// product-form counterpart of Export. Together with the universe it
// determines the hypothesis exactly.
type FactoredExport struct {
	Eta     float64             `json:"eta"`
	Scale   float64             `json:"scale"`
	Updates int                 `json:"updates"`
	Comps   []FactoredComponent `json:"comps,omitempty"`
}

// Export snapshots the state. All tables are copied.
func (st *FactoredState) Export() FactoredExport {
	ex := FactoredExport{Eta: st.eta, Scale: st.s, Updates: st.updates}
	for _, c := range st.comps {
		ex.Comps = append(ex.Comps, FactoredComponent{
			Coords: append([]int(nil), c.coords...),
			LogW:   append([]float64(nil), c.logW...),
		})
	}
	return ex
}

// FactoredFromExport reconstructs a FactoredState over f from a snapshot.
func FactoredFromExport(f universe.Factored, ex FactoredExport) (*FactoredState, error) {
	st, err := NewFactored(f, ex.Eta, ex.Scale)
	if err != nil {
		return nil, err
	}
	if ex.Updates < 0 {
		return nil, fmt.Errorf("mw: snapshot update count %d is negative", ex.Updates)
	}
	for _, c := range ex.Comps {
		if err := st.checkCoords(c.Coords); err != nil {
			return nil, fmt.Errorf("mw: snapshot component: %w", err)
		}
		if !sort.IntsAreSorted(c.Coords) {
			return nil, fmt.Errorf("mw: snapshot component coords %v not sorted", c.Coords)
		}
		want := 1
		for _, coord := range c.Coords {
			want *= f.Levels(coord)
			if want > MaxComponentCells {
				return nil, fmt.Errorf("mw: snapshot component %v: %w", c.Coords, ErrComponentTooLarge)
			}
		}
		if len(c.LogW) != want {
			return nil, fmt.Errorf("mw: snapshot component %v table length %d != %d", c.Coords, len(c.LogW), want)
		}
		for i, v := range c.LogW {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("mw: snapshot log weight %d = %v is not finite", i, v)
			}
		}
		for _, coord := range c.Coords {
			if st.coordComp[coord] >= 0 {
				return nil, fmt.Errorf("mw: snapshot components overlap at coordinate %d", coord)
			}
			st.coordComp[coord] = len(st.comps)
		}
		st.comps = append(st.comps, &component{
			coords: append([]int(nil), c.Coords...),
			logW:   append([]float64(nil), c.LogW...),
		})
	}
	st.updates = ex.Updates
	return st, nil
}
