package mw

import (
	"encoding/json"
	"testing"

	"repro/internal/universe"
	"repro/internal/xeval"
)

// TestExportRoundTrip checks a restored state materializes the same
// hypothesis and evolves bit-identically under further updates, including
// through a JSON round trip and across engine choices.
func TestExportRoundTrip(t *testing.T) {
	u, err := universe.NewHypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(u, Eta(1, 10, u.Size()), 1)
	if err != nil {
		t.Fatal(err)
	}
	st.SetEngine(xeval.New(2))
	upd := func(k int) []float64 {
		v := make([]float64, u.Size())
		for i := range v {
			v[i] = float64((i*k)%7-3) / 4
		}
		return v
	}
	for k := 1; k <= 4; k++ {
		if err := st.Update(upd(k)); err != nil {
			t.Fatal(err)
		}
	}

	raw, err := json.Marshal(st.Export())
	if err != nil {
		t.Fatal(err)
	}
	var ex Export
	if err := json.Unmarshal(raw, &ex); err != nil {
		t.Fatal(err)
	}
	back, err := FromExport(u, ex)
	if err != nil {
		t.Fatal(err)
	}
	// Different engine on purpose: the hypothesis must not depend on it.
	back.SetEngine(xeval.New(1))

	if back.Updates() != st.Updates() || back.Eta() != st.Eta() || back.Scale() != st.Scale() {
		t.Fatalf("restored scalars differ: %d/%v/%v vs %d/%v/%v",
			back.Updates(), back.Eta(), back.Scale(), st.Updates(), st.Eta(), st.Scale())
	}
	for k := 5; k <= 8; k++ {
		if err := st.Update(upd(k)); err != nil {
			t.Fatal(err)
		}
		if err := back.Update(upd(k)); err != nil {
			t.Fatal(err)
		}
	}
	a, b := st.Histogram().P, back.Histogram().P
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hypothesis diverged at %d: %v != %v", i, a[i], b[i])
		}
	}
}

// TestFromExportValidation checks malformed snapshots are rejected.
func TestFromExportValidation(t *testing.T) {
	u, _ := universe.NewHypercube(3)
	good := Export{Eta: 0.5, Scale: 1, Updates: 2, LogW: make([]float64, u.Size())}
	if _, err := FromExport(u, good); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	cases := map[string]Export{
		"short logW":       {Eta: 0.5, Scale: 1, LogW: make([]float64, 3)},
		"negative updates": {Eta: 0.5, Scale: 1, Updates: -1, LogW: make([]float64, u.Size())},
		"bad eta":          {Eta: 0, Scale: 1, LogW: make([]float64, u.Size())},
		"nan weight":       {Eta: 0.5, Scale: 1, LogW: append(make([]float64, u.Size()-1), nan())},
	}
	for name, ex := range cases {
		if _, err := FromExport(u, ex); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}
