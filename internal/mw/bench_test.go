package mw

import (
	"testing"

	"repro/internal/sample"
	"repro/internal/universe"
)

// BenchmarkUpdate measures one multiplicative-weights step over a
// 2¹⁰-element universe — the inner loop of every PMW round.
func BenchmarkUpdate(b *testing.B) {
	u, err := universe.NewHypercube(10)
	if err != nil {
		b.Fatal(err)
	}
	st, err := New(u, 0.3, 1)
	if err != nil {
		b.Fatal(err)
	}
	src := sample.New(1)
	uv := make([]float64, u.Size())
	for i := range uv {
		uv[i] = 2*src.Float64() - 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Update(uv); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistogram measures hypothesis materialization (softmax over the
// log weights), which runs once per query.
func BenchmarkHistogram(b *testing.B) {
	u, err := universe.NewHypercube(10)
	if err != nil {
		b.Fatal(err)
	}
	st, err := New(u, 0.3, 1)
	if err != nil {
		b.Fatal(err)
	}
	uv := make([]float64, u.Size())
	for i := range uv {
		uv[i] = float64(i%3) - 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Invalidate the cache each iteration so the softmax is measured.
		if err := st.Update(uv); err != nil {
			b.Fatal(err)
		}
		_ = st.Histogram()
	}
}
