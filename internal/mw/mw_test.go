package mw

import (
	"math"
	"testing"

	"repro/internal/histogram"
	"repro/internal/sample"
	"repro/internal/universe"
	"repro/internal/vecmath"
	"repro/internal/xeval"
)

func cube(t *testing.T, d int) *universe.Hypercube {
	t.Helper()
	u, err := universe.NewHypercube(d)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestNewValidation(t *testing.T) {
	u := cube(t, 2)
	if _, err := New(u, 0, 1); err == nil {
		t.Error("eta=0 accepted")
	}
	if _, err := New(u, 0.1, 0); err == nil {
		t.Error("s=0 accepted")
	}
	if _, err := New(u, math.NaN(), 1); err == nil {
		t.Error("NaN eta accepted")
	}
	if _, err := New(u, 0.1, math.Inf(1)); err == nil {
		t.Error("Inf s accepted")
	}
}

func TestStartsUniform(t *testing.T) {
	u := cube(t, 3)
	st, err := New(u, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := st.Histogram()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range h.P {
		if math.Abs(p-1.0/8) > 1e-12 {
			t.Fatalf("initial histogram not uniform: %v", h.P)
		}
	}
	if st.Updates() != 0 {
		t.Error("fresh state has updates")
	}
}

func TestUpdateMovesMassAwayFromPenalty(t *testing.T) {
	u := cube(t, 2)
	st, _ := New(u, 0.5, 1)
	// Penalize element 0 only.
	pen := []float64{1, 0, 0, 0}
	if err := st.Update(pen); err != nil {
		t.Fatal(err)
	}
	h := st.Histogram()
	if h.P[0] >= h.P[1] {
		t.Errorf("penalized mass did not shrink: %v", h.P)
	}
	// Exact value: weights ∝ {e^{−0.5}, 1, 1, 1}.
	z := math.Exp(-0.5) + 3
	if math.Abs(h.P[0]-math.Exp(-0.5)/z) > 1e-12 {
		t.Errorf("P[0] = %v, want %v", h.P[0], math.Exp(-0.5)/z)
	}
	if st.Updates() != 1 {
		t.Errorf("Updates = %d", st.Updates())
	}
}

func TestUpdateValidation(t *testing.T) {
	u := cube(t, 2)
	st, _ := New(u, 0.5, 1)
	if err := st.Update([]float64{1, 2}); err == nil {
		t.Error("wrong length accepted")
	}
	if err := st.Update([]float64{2, 0, 0, 0}); err == nil {
		t.Error("entry > S accepted")
	}
	if err := st.Update([]float64{math.NaN(), 0, 0, 0}); err == nil {
		t.Error("NaN accepted")
	}
	// Boundary value S is fine.
	if err := st.Update([]float64{1, -1, 0, 0}); err != nil {
		t.Errorf("boundary entries rejected: %v", err)
	}
}

func TestHistogramCachedAndInvalidated(t *testing.T) {
	u := cube(t, 1)
	st, _ := New(u, 0.5, 1)
	h1 := st.Histogram()
	h2 := st.Histogram()
	if h1 != h2 {
		t.Error("histogram not cached between updates")
	}
	if err := st.Update([]float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	h3 := st.Histogram()
	if h3 == h1 {
		t.Error("cache not invalidated by update")
	}
}

// Lemma 3.4 (bounded regret): for ANY sequence of update vectors in
// [−S, S]^X and ANY target histogram D,
// (1/T)·Σ ⟨u_t, D̂t − D⟩ ≤ 2S√(log|X|/T).
func TestRegretBoundHolds(t *testing.T) {
	u := cube(t, 4)
	src := sample.New(1)
	for trial := 0; trial < 20; trial++ {
		S := 0.5 + src.Float64()*2
		T := 10 + src.Intn(200)
		eta := Eta(S, T, u.Size())
		st, err := New(u, eta, S)
		if err != nil {
			t.Fatal(err)
		}
		// Random target histogram.
		p := make([]float64, u.Size())
		var z float64
		for i := range p {
			p[i] = src.Exponential(1) + 1e-9
			z += p[i]
		}
		for i := range p {
			p[i] /= z
		}
		d, err := histogram.FromProbs(u, p)
		if err != nil {
			t.Fatal(err)
		}
		var regret float64
		for step := 0; step < T; step++ {
			// Adversarial-ish random update vectors in [−S, S].
			uv := make([]float64, u.Size())
			for i := range uv {
				uv[i] = S * (2*src.Float64() - 1)
			}
			regret += vecmath.Dot(uv, vecmath.Sub(st.Histogram().P, d.P))
			if err := st.Update(uv); err != nil {
				t.Fatal(err)
			}
		}
		bound := RegretBound(S, T, u.Size())
		if regret/float64(T) > bound+1e-9 {
			t.Fatalf("regret %v exceeds bound %v (S=%v T=%d)", regret/float64(T), bound, S, T)
		}
	}
}

// The worst case for MW: the adversary always penalizes exactly where the
// hypothesis overweights relative to a point-mass target. Even then the
// averaged regret respects Lemma 3.4, and the hypothesis converges to the
// target.
func TestGreedyAdversaryConvergesToTarget(t *testing.T) {
	u := cube(t, 4)
	S := 1.0
	T := 400
	st, _ := New(u, Eta(S, T, u.Size()), S)
	target, err := histogram.FromProbs(u, pointMass(u.Size(), 3))
	if err != nil {
		t.Fatal(err)
	}
	var regret float64
	for step := 0; step < T; step++ {
		h := st.Histogram()
		uv := make([]float64, u.Size())
		for i := range uv {
			// Sign of overweight, scaled to S: the best separating vector.
			if h.P[i] > target.P[i] {
				uv[i] = S
			} else if h.P[i] < target.P[i] {
				uv[i] = -S
			}
		}
		regret += vecmath.Dot(uv, vecmath.Sub(h.P, target.P))
		if err := st.Update(uv); err != nil {
			t.Fatal(err)
		}
	}
	if avg := regret / float64(T); avg > RegretBound(S, T, u.Size()) {
		t.Fatalf("greedy adversary regret %v exceeds bound", avg)
	}
	if l1 := st.Histogram().L1(target); l1 > 0.05 {
		t.Errorf("hypothesis did not converge to point mass: L1 = %v", l1)
	}
}

func pointMass(n, idx int) []float64 {
	p := make([]float64, n)
	p[idx] = 1
	return p
}

// Potential decrease: each update with ⟨u, D̂t − D⟩ ≥ γ > 0 decreases
// KL(D ‖ D̂t) by at least η·γ − η²S²/2 (the step of Lemma 3.4's proof).
func TestPotentialDecreasePerUpdate(t *testing.T) {
	u := cube(t, 3)
	src := sample.New(2)
	S := 1.0
	T := 100
	eta := Eta(S, T, u.Size())
	st, _ := New(u, eta, S)
	target, err := histogram.FromProbs(u, pointMass(u.Size(), 1))
	if err != nil {
		t.Fatal(err)
	}
	_ = src
	for step := 0; step < 50; step++ {
		h := st.Histogram()
		uv := make([]float64, u.Size())
		for i := range uv {
			if h.P[i] > target.P[i] {
				uv[i] = S
			} else {
				uv[i] = -S
			}
		}
		gamma := vecmath.Dot(uv, vecmath.Sub(h.P, target.P))
		before := st.Potential(target)
		if err := st.Update(uv); err != nil {
			t.Fatal(err)
		}
		after := st.Potential(target)
		wantDecrease := eta*gamma - eta*eta*S*S/2
		if before-after < wantDecrease-1e-9 {
			t.Fatalf("step %d: potential decreased by %v, want ≥ %v", step, before-after, wantDecrease)
		}
	}
}

// Long runs must not underflow: apply many maximal updates and verify the
// histogram remains valid.
func TestNumericalStabilityLongRun(t *testing.T) {
	u := cube(t, 3)
	st, _ := New(u, 0.9, 1)
	uv := make([]float64, u.Size())
	for i := range uv {
		if i%2 == 0 {
			uv[i] = 1
		} else {
			uv[i] = -1
		}
	}
	for step := 0; step < 5000; step++ {
		if err := st.Update(uv); err != nil {
			t.Fatal(err)
		}
	}
	h := st.Histogram()
	if err := h.Validate(); err != nil {
		t.Fatalf("histogram invalid after long run: %v", err)
	}
	// Odd indices should carry essentially all mass.
	var oddMass float64
	for i := 1; i < len(h.P); i += 2 {
		oddMass += h.P[i]
	}
	if oddMass < 0.999 {
		t.Errorf("odd mass = %v", oddMass)
	}
}

func TestParameterHelpers(t *testing.T) {
	// T = 64 S² log|X| / α².
	got := UpdateBudget(2, 0.5, 256)
	want := int(math.Ceil(64 * 4 * math.Log(256) / 0.25))
	if got != want {
		t.Errorf("UpdateBudget = %d, want %d", got, want)
	}
	if UpdateBudget(0.001, 10, 2) != 1 {
		t.Error("tiny budget should clamp to 1")
	}
	// With the paper's T, the regret bound equals α/4.
	s, alpha := 2.0, 0.5
	T := UpdateBudget(s, alpha, 256)
	if rb := RegretBound(s, T, 256); rb > alpha/4+1e-9 {
		t.Errorf("regret bound at paper's T = %v, want ≤ α/4 = %v", rb, alpha/4)
	}
	// Eta is positive and decreasing in T.
	if Eta(1, 100, 256) <= Eta(1, 400, 256) {
		t.Error("eta not decreasing in T")
	}
	st, _ := New(cube(t, 2), 0.3, 1.5)
	if st.Eta() != 0.3 || st.Scale() != 1.5 {
		t.Error("accessors wrong")
	}
}

// TestStateDeterministicAcrossEngines drives identical update sequences
// through a serial and an 8-worker state: hypotheses must stay
// bit-identical (xeval's chunking and reductions are worker-count
// deterministic), so the engine is a pure speed knob.
func TestStateDeterministicAcrossEngines(t *testing.T) {
	u, err := universe.NewHypercube(12) // 4096 elements: multiple chunks
	if err != nil {
		t.Fatal(err)
	}
	mk := func(workers int) *State {
		st, err := New(u, 0.3, 1)
		if err != nil {
			t.Fatal(err)
		}
		return st.SetEngine(xeval.New(workers))
	}
	serial, parallel := mk(1), mk(8)
	src := sample.New(9)
	for step := 0; step < 5; step++ {
		uv := make([]float64, u.Size())
		for i := range uv {
			uv[i] = 2*src.Float64() - 1
		}
		if err := serial.Update(uv); err != nil {
			t.Fatal(err)
		}
		if err := parallel.Update(uv); err != nil {
			t.Fatal(err)
		}
		hs, hp := serial.Histogram(), parallel.Histogram()
		for i := range hs.P {
			if hs.P[i] != hp.P[i] {
				t.Fatalf("step %d: P[%d] differs: %v vs %v", step, i, hs.P[i], hp.P[i])
			}
		}
	}
	// A rejected update must leave both states untouched and identical.
	bad := make([]float64, u.Size())
	bad[100] = 5 // outside [−S, S]
	if err := serial.Update(bad); err == nil {
		t.Fatal("serial accepted out-of-scale update")
	}
	if err := parallel.Update(bad); err == nil {
		t.Fatal("parallel accepted out-of-scale update")
	}
	hs, hp := serial.Histogram(), parallel.Histogram()
	for i := range hs.P {
		if hs.P[i] != hp.P[i] {
			t.Fatalf("post-reject P[%d] differs", i)
		}
	}
}
