// Package mw implements the multiplicative-weights update rule on
// histograms and its bounded-regret guarantee (paper §3.3, Lemma 3.4).
//
// The hypothesis histogram starts uniform and after each update vector
// u_t ∈ [−S, S]^X becomes
//
//	D̂_{t+1}(x) ∝ D̂_t(x) · exp(−η·u_t(x)).
//
// Sign convention: u_t is a "penalty" — entries where the hypothesis
// overweights relative to the true dataset (⟨u_t, D̂t − D⟩ large) lose
// weight. With this convention the standard KL-potential argument gives
// Lemma 3.4:
//
//	(1/T)·Σ_t ⟨u_t, D̂t − D⟩ ≤ 2S·√(log|X| / T)
//
// for every true histogram D and every sequence of T updates, when
// η = √(log|X|/T)/S. (The paper states the update with exp(+η·u); its u_t
// then carries the opposite sign. We pin the convention that makes the
// dual-certificate vector of Claim 3.5 a penalty, matching the direction
// the accuracy proof actually uses.)
//
// Weights are maintained in log space so that long runs with large η·S
// cannot underflow.
package mw

import (
	"fmt"
	"math"

	"repro/internal/histogram"
	"repro/internal/universe"
	"repro/internal/vecmath"
)

// State is a multiplicative-weights hypothesis over a finite universe.
// Not safe for concurrent use.
type State struct {
	u       universe.Universe
	logW    []float64
	eta     float64
	s       float64
	updates int

	cache *histogram.Histogram // invalidated by Update
}

// Eta returns the paper's learning rate for scale S and horizon T:
// η = √(log|X|/T)/S (the 1/S factor normalizes u_t ∈ [−S, S] so the
// regret constant matches Lemma 3.4 exactly).
func Eta(s float64, T int, universeSize int) float64 {
	return math.Sqrt(math.Log(float64(universeSize))/float64(T)) / s
}

// UpdateBudget returns the paper's update horizon T = 64·S²·log|X| / α²
// (Figure 3), the number of MW updates after which the regret bound
// contradicts per-update progress of α/4.
func UpdateBudget(s, alpha float64, universeSize int) int {
	t := 64 * s * s * math.Log(float64(universeSize)) / (alpha * alpha)
	if t < 1 {
		return 1
	}
	return int(math.Ceil(t))
}

// RegretBound returns Lemma 3.4's right-hand side 2S√(log|X|/T).
func RegretBound(s float64, T int, universeSize int) float64 {
	return 2 * s * math.Sqrt(math.Log(float64(universeSize))/float64(T))
}

// New starts a hypothesis at the uniform histogram with learning rate eta
// and update-vector scale bound s.
func New(u universe.Universe, eta, s float64) (*State, error) {
	if eta <= 0 || math.IsNaN(eta) || math.IsInf(eta, 0) {
		return nil, fmt.Errorf("mw: eta %v must be positive and finite", eta)
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("mw: scale %v must be positive and finite", s)
	}
	return &State{
		u:    u,
		logW: make([]float64, u.Size()),
		eta:  eta,
		s:    s,
	}, nil
}

// Histogram returns the current hypothesis D̂t (cached between updates).
// Callers must not modify the returned histogram.
func (st *State) Histogram() *histogram.Histogram {
	if st.cache == nil {
		p := vecmath.Softmax(nil, st.logW)
		st.cache = &histogram.Histogram{U: st.u, P: p}
	}
	return st.cache
}

// Update applies one multiplicative-weights step with penalty vector u.
// Entries must satisfy |u(x)| ≤ S (up to a small tolerance); the regret
// guarantee is void otherwise, so violations are rejected.
func (st *State) Update(u []float64) error {
	if len(u) != len(st.logW) {
		return fmt.Errorf("mw: update length %d != universe size %d", len(u), len(st.logW))
	}
	const slack = 1e-9
	for i, v := range u {
		if math.IsNaN(v) || math.Abs(v) > st.s+slack {
			return fmt.Errorf("mw: update entry %d = %v outside [−S, S], S = %v", i, v, st.s)
		}
	}
	for i, v := range u {
		st.logW[i] -= st.eta * v
	}
	// Re-center log weights to keep them bounded over long runs; softmax
	// is shift-invariant so this does not change the hypothesis.
	m, _ := vecmath.Max(st.logW)
	for i := range st.logW {
		st.logW[i] -= m
	}
	st.updates++
	st.cache = nil
	return nil
}

// Updates returns the number of updates applied so far.
func (st *State) Updates() int { return st.updates }

// Eta returns the learning rate in use.
func (st *State) Eta() float64 { return st.eta }

// Scale returns the update-vector scale bound S.
func (st *State) Scale() float64 { return st.s }

// Potential returns KL(D ‖ D̂t), the progress potential of the regret
// analysis: it starts at ≤ log|X| (uniform D̂¹) and each update with
// ⟨u_t, D̂t − D⟩ ≥ γ decreases it by at least η·γ − η²S²/2.
func (st *State) Potential(d *histogram.Histogram) float64 {
	return st.Histogram().KL(d)
}
