// Package mw implements the multiplicative-weights update rule on
// histograms and its bounded-regret guarantee (paper §3.3, Lemma 3.4).
//
// The hypothesis histogram starts uniform and after each update vector
// u_t ∈ [−S, S]^X becomes
//
//	D̂_{t+1}(x) ∝ D̂_t(x) · exp(−η·u_t(x)).
//
// Sign convention: u_t is a "penalty" — entries where the hypothesis
// overweights relative to the true dataset (⟨u_t, D̂t − D⟩ large) lose
// weight. With this convention the standard KL-potential argument gives
// Lemma 3.4:
//
//	(1/T)·Σ_t ⟨u_t, D̂t − D⟩ ≤ 2S·√(log|X| / T)
//
// for every true histogram D and every sequence of T updates, when
// η = √(log|X|/T)/S. (The paper states the update with exp(+η·u); its u_t
// then carries the opposite sign. We pin the convention that makes the
// dual-certificate vector of Claim 3.5 a penalty, matching the direction
// the accuracy proof actually uses.)
//
// Weights are maintained in log space so that long runs with large η·S
// cannot underflow.
package mw

import (
	"fmt"
	"math"

	"repro/internal/histogram"
	"repro/internal/universe"
	"repro/internal/vecmath"
	"repro/internal/xeval"
)

// State is a multiplicative-weights hypothesis over a finite universe.
// Not safe for concurrent use.
type State struct {
	u       universe.Universe
	logW    []float64
	eta     float64
	s       float64
	updates int
	eng     *xeval.Engine // chunk-parallel update/materialize; nil = serial

	cache *histogram.Histogram // invalidated by Update
}

// Eta returns the paper's learning rate for scale S and horizon T:
// η = √(log|X|/T)/S (the 1/S factor normalizes u_t ∈ [−S, S] so the
// regret constant matches Lemma 3.4 exactly).
func Eta(s float64, T int, universeSize int) float64 {
	return math.Sqrt(math.Log(float64(universeSize))/float64(T)) / s
}

// UpdateBudget returns the paper's update horizon T = 64·S²·log|X| / α²
// (Figure 3), the number of MW updates after which the regret bound
// contradicts per-update progress of α/4.
func UpdateBudget(s, alpha float64, universeSize int) int {
	t := 64 * s * s * math.Log(float64(universeSize)) / (alpha * alpha)
	if t < 1 {
		return 1
	}
	return int(math.Ceil(t))
}

// RegretBound returns Lemma 3.4's right-hand side 2S√(log|X|/T).
func RegretBound(s float64, T int, universeSize int) float64 {
	return 2 * s * math.Sqrt(math.Log(float64(universeSize))/float64(T))
}

// New starts a hypothesis at the uniform histogram with learning rate eta
// and update-vector scale bound s.
func New(u universe.Universe, eta, s float64) (*State, error) {
	if eta <= 0 || math.IsNaN(eta) || math.IsInf(eta, 0) {
		return nil, fmt.Errorf("mw: eta %v must be positive and finite", eta)
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("mw: scale %v must be positive and finite", s)
	}
	return &State{
		u:    u,
		logW: make([]float64, u.Size()),
		eta:  eta,
		s:    s,
	}, nil
}

// SetEngine installs the xeval engine the state uses for chunk-parallel
// updates and histogram materialization; nil restores serial evaluation.
// The hypothesis is bit-identical for every engine (xeval's chunking and
// reductions are worker-count deterministic), so this is purely a speed
// knob. It returns st for chaining.
func (st *State) SetEngine(e *xeval.Engine) *State {
	st.eng = e
	return st
}

// Histogram returns the current hypothesis D̂t (cached between updates).
// Callers must not modify the returned histogram.
//
// Materialization is the fused softmax kernel: one chunked pass writes
// exp(logW − max) and accumulates the normalizer (vecmath.ExpShiftedSum),
// one chunked pass rescales — both parallel on the state's engine.
func (st *State) Histogram() *histogram.Histogram {
	if st.cache == nil {
		n := len(st.logW)
		m, _ := st.eng.Max(n, func(lo, hi int) float64 {
			c, _ := vecmath.Max(st.logW[lo:hi])
			return c
		})
		p := make([]float64, n)
		z := st.eng.Sum(n, func(lo, hi int) float64 {
			return vecmath.ExpShiftedSum(p[lo:hi], st.logW[lo:hi], m)
		})
		st.eng.ForEach(n, func(lo, hi int) {
			vecmath.ScaleInPlace(p[lo:hi], 1/z)
		})
		st.cache = &histogram.Histogram{U: st.u, P: p}
	}
	return st.cache
}

// Update applies one multiplicative-weights step with penalty vector u.
// Entries must satisfy |u(x)| ≤ S (up to a small tolerance); the regret
// guarantee is void otherwise, so violations are rejected.
func (st *State) Update(u []float64) error {
	n := len(st.logW)
	if len(u) != n {
		return fmt.Errorf("mw: update length %d != universe size %d", len(u), n)
	}
	// Validate before mutating anything: a rejected update must leave the
	// hypothesis untouched. NaN compares false, so fold it into the max as
	// +Inf and locate the offending index only on the (cold) failure path.
	const slack = 1e-9
	worst, _ := st.eng.Max(n, func(lo, hi int) float64 {
		var m float64
		for _, v := range u[lo:hi] {
			if math.IsNaN(v) {
				return math.Inf(1)
			}
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		return m
	})
	if !(worst <= st.s+slack) {
		for i, v := range u {
			if math.IsNaN(v) || math.Abs(v) > st.s+slack {
				return fmt.Errorf("mw: update entry %d = %v outside [−S, S], S = %v", i, v, st.s)
			}
		}
	}
	// Fused step: logW ← logW − η·u while computing the new maximum, then
	// re-center so log weights stay bounded over long runs (softmax is
	// shift-invariant, so this does not change the hypothesis).
	m, _ := st.eng.Max(n, func(lo, hi int) float64 {
		return vecmath.AddScaledMax(st.logW[lo:hi], -st.eta, u[lo:hi])
	})
	st.eng.ForEach(n, func(lo, hi int) {
		vecmath.AddConst(st.logW[lo:hi], -m)
	})
	st.updates++
	st.cache = nil
	return nil
}

// Updates returns the number of updates applied so far.
func (st *State) Updates() int { return st.updates }

// Export is a serializable snapshot of a State: the log-weight vector plus
// the scalars New fixed and the update counter. Together with the universe
// (which the owner re-supplies at restore — it is public data, not state)
// it determines the hypothesis exactly: FromExport yields a State whose
// every future Histogram and Update is bit-identical to the original's.
type Export struct {
	Eta     float64   `json:"eta"`
	Scale   float64   `json:"scale"`
	Updates int       `json:"updates"`
	LogW    []float64 `json:"logw"`
}

// Export snapshots the state. The log weights are copied, so the snapshot
// is immune to further updates.
func (st *State) Export() Export {
	return Export{
		Eta:     st.eta,
		Scale:   st.s,
		Updates: st.updates,
		LogW:    append([]float64(nil), st.logW...),
	}
}

// FromExport reconstructs a State over u from a snapshot. The restored
// state has a nil engine; callers install one with SetEngine (the
// hypothesis is engine-independent, so this choice cannot affect restored
// behavior). The log weights are copied in.
func FromExport(u universe.Universe, ex Export) (*State, error) {
	st, err := New(u, ex.Eta, ex.Scale)
	if err != nil {
		return nil, err
	}
	if len(ex.LogW) != u.Size() {
		return nil, fmt.Errorf("mw: snapshot log-weight length %d != universe size %d", len(ex.LogW), u.Size())
	}
	if ex.Updates < 0 {
		return nil, fmt.Errorf("mw: snapshot update count %d is negative", ex.Updates)
	}
	for i, v := range ex.LogW {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("mw: snapshot log weight %d = %v is not finite", i, v)
		}
	}
	copy(st.logW, ex.LogW)
	st.updates = ex.Updates
	return st, nil
}

// Eta returns the learning rate in use.
func (st *State) Eta() float64 { return st.eta }

// Scale returns the update-vector scale bound S.
func (st *State) Scale() float64 { return st.s }

// Potential returns KL(D ‖ D̂t), the progress potential of the regret
// analysis: it starts at ≤ log|X| (uniform D̂¹) and each update with
// ⟨u_t, D̂t − D⟩ ≥ γ decreases it by at least η·γ − η²S²/2.
func (st *State) Potential(d *histogram.Histogram) float64 {
	return st.Histogram().KL(d)
}
