// Product is the implicit product universe: per-coordinate factor value
// lists only, no stored point matrix, so |X| = Π_j len(factor_j) can be
// astronomically past the dense limit while the universe costs O(Σ_j
// len(factor_j)) memory. Point vectors are synthesized on demand; block
// sweeps decode with an odometer walk.
package universe

import (
	"fmt"
	"math"
)

// Product is a universe X = F_0 × F_1 × ... × F_{d-1} given by explicit
// per-coordinate value lists, indexed in mixed radix with coordinate 0
// fastest-varying (the Factored convention). Nothing of size |X| is ever
// allocated.
type Product struct {
	factors [][]float64
	size    int
	desc    string
}

// MaxProductSize caps Π_j len(factor_j) so that universe sizes always fit
// an int exactly (2^52 keeps every index exactly representable as a
// float64 too, which histogram weights rely on).
const MaxProductSize = 1 << 52

// NewProduct constructs an implicit product universe from per-coordinate
// value lists. Each factor needs ≥ 1 value; the total size must stay ≤
// 2^52. desc is the String() label ("" gets a generic one).
func NewProduct(factors [][]float64, desc string) (*Product, error) {
	if len(factors) == 0 {
		return nil, fmt.Errorf("universe: product needs ≥ 1 factor")
	}
	size := 1
	copied := make([][]float64, len(factors))
	for j, f := range factors {
		if len(f) == 0 {
			return nil, fmt.Errorf("universe: factor %d is empty", j)
		}
		if size > MaxProductSize/len(f) {
			return nil, fmt.Errorf("universe: product size exceeds 2^52")
		}
		size *= len(f)
		copied[j] = append([]float64(nil), f...)
	}
	if desc == "" {
		desc = fmt.Sprintf("product d=%d (|X|=%d)", len(factors), size)
	}
	return &Product{factors: copied, size: size, desc: desc}, nil
}

// NewProductHypercube constructs {±1/√d}^d as an implicit product
// universe. The index convention (bit j of i selects the sign of
// coordinate j, set bit = +1/√d) and the coordinate values are
// bit-identical to NewHypercube, so the two representations agree
// pointwise wherever both exist; d may go far past the dense cap (up to
// 52) because nothing of size 2^d is materialized.
func NewProductHypercube(d int) (*Product, error) {
	if d < 1 || d > 52 {
		return nil, fmt.Errorf("universe: product hypercube dimension %d outside [1,52]", d)
	}
	scale := 1 / math.Sqrt(float64(d))
	factors := make([][]float64, d)
	for j := range factors {
		factors[j] = []float64{-scale, scale}
	}
	size := 1 << uint(d)
	return &Product{
		factors: factors,
		size:    size,
		desc:    fmt.Sprintf("hypercube{±1/√%d}^%d (|X|=%d, implicit)", d, d, size),
	}, nil
}

// Size returns Π_j len(factor_j).
func (p *Product) Size() int { return p.size }

// Dim returns the number of factors.
func (p *Product) Dim() int { return len(p.factors) }

// Point synthesizes element i (allocates; use PointInto in hot loops).
func (p *Product) Point(i int) []float64 {
	return p.PointInto(i, make([]float64, len(p.factors)))
}

// PointInto decodes element i into buf by mixed-radix digit extraction.
func (p *Product) PointInto(i int, buf []float64) []float64 {
	buf = buf[:len(p.factors)]
	for j, f := range p.factors {
		buf[j] = f[i%len(f)]
		i /= len(f)
	}
	return buf
}

// PointsInto implements Block with an odometer walk: the level vector of
// element lo is decoded once, then incremented per element, so the
// amortized cost per point is O(Dim) with no division past the first
// element.
func (p *Product) PointsInto(lo, hi int, buf []float64) {
	d := len(p.factors)
	levels := make([]int, d)
	rem := lo
	for j, f := range p.factors {
		levels[j] = rem % len(f)
		rem /= len(f)
	}
	for i := lo; i < hi; i++ {
		row := buf[(i-lo)*d : (i-lo+1)*d]
		for j, f := range p.factors {
			row[j] = f[levels[j]]
		}
		// Odometer increment: bump coordinate 0, carry into slower digits.
		for j := 0; j < d; j++ {
			levels[j]++
			if levels[j] < len(p.factors[j]) {
				break
			}
			levels[j] = 0
		}
	}
}

// Levels implements Factored.
func (p *Product) Levels(coord int) int { return len(p.factors[coord]) }

// CoordValue implements Factored.
func (p *Product) CoordValue(coord, level int) float64 { return p.factors[coord][level] }

// String describes the universe.
func (p *Product) String() string { return p.desc }
