package universe

import (
	"math"
	"testing"
)

func TestHypercubeBasics(t *testing.T) {
	h, err := NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Size() != 8 {
		t.Fatalf("Size = %d, want 8", h.Size())
	}
	if h.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", h.Dim())
	}
	// Every point has unit norm.
	for i := 0; i < h.Size(); i++ {
		p := h.Point(i)
		var n2 float64
		for _, v := range p {
			n2 += v * v
		}
		if math.Abs(n2-1) > 1e-12 {
			t.Errorf("point %d norm² = %v, want 1", i, n2)
		}
	}
	// All points distinct.
	seen := map[string]bool{}
	for i := 0; i < h.Size(); i++ {
		k := ""
		for _, v := range h.Point(i) {
			if v > 0 {
				k += "+"
			} else {
				k += "-"
			}
		}
		if seen[k] {
			t.Errorf("duplicate point %q", k)
		}
		seen[k] = true
	}
}

func TestHypercubeBounds(t *testing.T) {
	if _, err := NewHypercube(0); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := NewHypercube(21); err == nil {
		t.Error("d=21 accepted")
	}
	if _, err := NewHypercube(1); err != nil {
		t.Errorf("d=1 rejected: %v", err)
	}
}

func TestLabeledGrid(t *testing.T) {
	g, err := NewLabeledGrid(2, 3, 1.0, 2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 3*3*2 {
		t.Fatalf("Size = %d, want 18", g.Size())
	}
	if g.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", g.Dim())
	}
	if g.FeatureDim() != 2 {
		t.Fatalf("FeatureDim = %d", g.FeatureDim())
	}
	// Features inside the ball of radius 1; labels in {-1, +1}.
	for i := 0; i < g.Size(); i++ {
		p := g.Point(i)
		var n2 float64
		for j := 0; j < 2; j++ {
			n2 += p[j] * p[j]
		}
		if n2 > 1+1e-9 {
			t.Errorf("point %d feature norm² = %v > 1", i, n2)
		}
		if y := p[2]; y != -1 && y != 1 {
			t.Errorf("point %d label = %v, want ±1", i, y)
		}
	}
	// All points distinct.
	seen := map[[3]float64]bool{}
	for i := 0; i < g.Size(); i++ {
		p := g.Point(i)
		k := [3]float64{p[0], p[1], p[2]}
		if seen[k] {
			t.Errorf("duplicate point %v", k)
		}
		seen[k] = true
	}
}

func TestLabeledGridValidation(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
	}{
		{"featDim 0", func() error { _, err := NewLabeledGrid(0, 3, 1, 2, 1); return err }},
		{"levels 1", func() error { _, err := NewLabeledGrid(2, 1, 1, 2, 1); return err }},
		{"labels 1", func() error { _, err := NewLabeledGrid(2, 3, 1, 1, 1); return err }},
		{"radius 0", func() error { _, err := NewLabeledGrid(2, 3, 0, 2, 1); return err }},
		{"too big", func() error { _, err := NewLabeledGrid(12, 10, 1, 2, 1); return err }},
	}
	for _, c := range cases {
		if c.fn() == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestGridValues(t *testing.T) {
	vals := gridValues(3)
	want := []float64{-1, 0, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Errorf("gridValues(3)[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
	vals = gridValues(2)
	if vals[0] != -1 || vals[1] != 1 {
		t.Errorf("gridValues(2) = %v", vals)
	}
}

func TestPoints(t *testing.T) {
	p, err := NewPoints([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 2 || p.Dim() != 2 {
		t.Fatalf("Size/Dim = %d/%d", p.Size(), p.Dim())
	}
	if p.Point(1)[0] != 3 {
		t.Errorf("Point(1) = %v", p.Point(1))
	}
	if _, err := NewPoints(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := NewPoints([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged accepted")
	}
	if _, err := NewPoints([][]float64{{}}); err == nil {
		t.Error("zero-dim accepted")
	}
}

func TestNearest(t *testing.T) {
	p, _ := NewPoints([][]float64{{0, 0}, {1, 0}, {0, 1}})
	cases := []struct {
		v    []float64
		want int
	}{
		{[]float64{0.1, 0.1}, 0},
		{[]float64{0.9, -0.1}, 1},
		{[]float64{0.2, 0.9}, 2},
		{[]float64{0, 0}, 0}, // exact hit
	}
	for _, c := range cases {
		if got := Nearest(p, c.v); got != c.want {
			t.Errorf("Nearest(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestNearestTieBreak(t *testing.T) {
	p, _ := NewPoints([][]float64{{-1}, {1}})
	// Equidistant point: tie toward smaller index.
	if got := Nearest(p, []float64{0}); got != 0 {
		t.Errorf("tie break = %d, want 0", got)
	}
}

func TestNearestRoundTrip(t *testing.T) {
	// Every universe point is its own nearest neighbour.
	h, _ := NewHypercube(4)
	for i := 0; i < h.Size(); i++ {
		if got := Nearest(h, h.Point(i)); got != i {
			t.Errorf("Nearest(Point(%d)) = %d", i, got)
		}
	}
}

func TestMaxNorm(t *testing.T) {
	h, _ := NewHypercube(5)
	if got := MaxNorm(h); math.Abs(got-1) > 1e-12 {
		t.Errorf("hypercube MaxNorm = %v, want 1", got)
	}
	p, _ := NewPoints([][]float64{{0, 0}, {3, 4}})
	if got := MaxNorm(p); math.Abs(got-5) > 1e-12 {
		t.Errorf("points MaxNorm = %v, want 5", got)
	}
}

func TestLabeledGridFeatureRadius(t *testing.T) {
	g, err := NewLabeledGrid(3, 2, 0.5, 2, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	maxFeat := 0.0
	for i := 0; i < g.Size(); i++ {
		p := g.Point(i)
		var n2 float64
		for j := 0; j < 3; j++ {
			n2 += p[j] * p[j]
		}
		if n := math.Sqrt(n2); n > maxFeat {
			maxFeat = n
		}
	}
	if math.Abs(maxFeat-0.5) > 1e-9 {
		t.Errorf("max feature norm = %v, want 0.5 (corner)", maxFeat)
	}
}

// TestPointIntoMatchesPoint checks the zero-alloc accessor agrees with
// Point on every element of every universe kind, tolerates oversized
// buffers, and does not allocate.
func TestPointIntoMatchesPoint(t *testing.T) {
	h, _ := NewHypercube(4)
	g, _ := NewLabeledGrid(2, 3, 1.0, 2, 1.0)
	p, _ := NewPoints([][]float64{{1, 2}, {3, 4}, {5, 6}})
	for _, u := range []Universe{h, g, p} {
		buf := make([]float64, u.Dim()+3) // oversized on purpose
		for i := 0; i < u.Size(); i++ {
			got := u.PointInto(i, buf)
			want := u.Point(i)
			if len(got) != u.Dim() {
				t.Fatalf("%s: PointInto(%d) has len %d, want %d", u, i, len(got), u.Dim())
			}
			for j := range want {
				if got[j] != want[j] {
					t.Errorf("%s: PointInto(%d)[%d] = %v, Point = %v", u, i, j, got[j], want[j])
				}
			}
		}
		allocs := testing.AllocsPerRun(100, func() {
			u.PointInto(0, buf)
		})
		if allocs != 0 {
			t.Errorf("%s: PointInto allocates %v per call", u, allocs)
		}
		// Writing through the returned buffer must not corrupt the universe.
		out := u.PointInto(0, buf)
		orig := append([]float64(nil), u.Point(0)...)
		out[0] += 42
		if u.Point(0)[0] != orig[0] {
			t.Errorf("%s: PointInto aliases internal storage", u)
		}
	}
}
