// Package universe defines finite data universes X.
//
// The paper's algorithm maintains a histogram over a finite universe X and
// runs in time poly(|X|) (paper §4.3). Continuous data is handled the way
// the paper prescribes in §1.1: round each point onto a finite grid, which
// changes any Lipschitz loss by at most the rounding radius. This package
// provides the universes used throughout the repo:
//
//   - Hypercube: X = {±1/√d}^d, the canonical universe of §4.3;
//   - LabeledGrid: X = feature-grid × label-grid, for regression and
//     classification losses over labeled examples (x, y);
//   - Points: an explicit list of vectors, for custom workloads.
//
// Every universe enumerates its elements by index 0..Size()-1 and exposes a
// vector encoding of each element. Loss functions consume those vectors.
package universe

import (
	"fmt"
	"math"
)

// Universe is a finite data universe X. Implementations must be immutable
// after construction; Point may return a shared slice that callers must not
// modify.
type Universe interface {
	// Size returns |X|.
	Size() int
	// Point returns the vector encoding of element i, 0 ≤ i < Size().
	Point(i int) []float64
	// PointInto copies the vector encoding of element i into buf (which
	// must have length ≥ Dim()) and returns buf[:Dim()]. It never
	// allocates, making it the accessor of choice inside hot loops: each
	// goroutine of a parallel sweep reuses its own buffer, independent of
	// whether the universe shares or synthesizes its Point slices.
	PointInto(i int, buf []float64) []float64
	// Dim returns the length of every Point vector.
	Dim() int
	// String returns a short human-readable description.
	String() string
}

// Hypercube is the universe {±1/√d}^d from paper §4.3. Every point has unit
// Euclidean norm, so 1-Lipschitz losses over the unit ball automatically
// satisfy the paper's scaling condition with S ≤ 2.
type Hypercube struct {
	d      int
	points [][]float64
}

// NewHypercube constructs the universe {±1/√d}^d with |X| = 2^d elements.
// d must be in [1, 20] to keep |X| enumerable.
func NewHypercube(d int) (*Hypercube, error) {
	if d < 1 || d > 20 {
		return nil, fmt.Errorf("universe: hypercube dimension %d outside [1,20]", d)
	}
	size := 1 << uint(d)
	scale := 1 / math.Sqrt(float64(d))
	points := make([][]float64, size)
	for i := 0; i < size; i++ {
		p := make([]float64, d)
		for j := 0; j < d; j++ {
			if i>>uint(j)&1 == 1 {
				p[j] = scale
			} else {
				p[j] = -scale
			}
		}
		points[i] = p
	}
	return &Hypercube{d: d, points: points}, nil
}

// Size returns 2^d.
func (h *Hypercube) Size() int { return len(h.points) }

// Point returns the i-th sign pattern scaled to the unit sphere.
func (h *Hypercube) Point(i int) []float64 { return h.points[i] }

// PointInto copies element i into buf without allocating.
func (h *Hypercube) PointInto(i int, buf []float64) []float64 {
	buf = buf[:h.d]
	copy(buf, h.points[i])
	return buf
}

// Dim returns d.
func (h *Hypercube) Dim() int { return h.d }

// String describes the universe.
func (h *Hypercube) String() string {
	return fmt.Sprintf("hypercube{±1/√%d}^%d (|X|=%d)", h.d, h.d, h.Size())
}

// LabeledGrid is a universe of labeled examples (x, y): features x range
// over a product grid with levels values per coordinate scaled into the ball
// of radius featRadius, and labels y range over labelLevels values in
// [-labelRadius, labelRadius]. The Point encoding is (x..., y) with
// Dim() = featDim + 1.
type LabeledGrid struct {
	featDim     int
	levels      int
	labelLevels int
	points      [][]float64
}

// NewLabeledGrid constructs a labeled-example universe.
//
//	featDim      — number of feature coordinates d
//	levels       — grid values per feature coordinate (≥ 2)
//	featRadius   — features scaled so ‖x‖₂ ≤ featRadius
//	labelLevels  — number of distinct labels (≥ 2)
//	labelRadius  — labels uniform in [-labelRadius, labelRadius]
//
// |X| = levels^featDim · labelLevels, which must stay ≤ 1<<22.
func NewLabeledGrid(featDim, levels int, featRadius float64, labelLevels int, labelRadius float64) (*LabeledGrid, error) {
	if featDim < 1 {
		return nil, fmt.Errorf("universe: featDim %d < 1", featDim)
	}
	if levels < 2 || labelLevels < 2 {
		return nil, fmt.Errorf("universe: levels %d / labelLevels %d must be ≥ 2", levels, labelLevels)
	}
	if featRadius <= 0 || labelRadius <= 0 {
		return nil, fmt.Errorf("universe: radii must be positive")
	}
	size := labelLevels
	for i := 0; i < featDim; i++ {
		size *= levels
		if size > 1<<22 {
			return nil, fmt.Errorf("universe: labeled grid size exceeds 2^22")
		}
	}
	// Per-coordinate grid values in [-1, 1], then scaled so the all-max
	// corner has norm featRadius (keeping every point inside the ball).
	featVals := gridValues(levels)
	labelVals := gridValues(labelLevels)
	cornerNorm := math.Sqrt(float64(featDim)) // ‖(1,...,1)‖
	featScale := featRadius / cornerNorm
	points := make([][]float64, size)
	for i := 0; i < size; i++ {
		p := make([]float64, featDim+1)
		rem := i
		for j := 0; j < featDim; j++ {
			p[j] = featVals[rem%levels] * featScale
			rem /= levels
		}
		p[featDim] = labelVals[rem] * labelRadius
		points[i] = p
	}
	return &LabeledGrid{featDim: featDim, levels: levels, labelLevels: labelLevels, points: points}, nil
}

// gridValues returns n values evenly spaced in [-1, 1].
func gridValues(n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = -1 + 2*float64(i)/float64(n-1)
	}
	return vals
}

// Size returns |X|.
func (g *LabeledGrid) Size() int { return len(g.points) }

// Point returns element i as (features..., label).
func (g *LabeledGrid) Point(i int) []float64 { return g.points[i] }

// PointInto copies element i into buf without allocating.
func (g *LabeledGrid) PointInto(i int, buf []float64) []float64 {
	buf = buf[:g.featDim+1]
	copy(buf, g.points[i])
	return buf
}

// Dim returns featDim + 1.
func (g *LabeledGrid) Dim() int { return g.featDim + 1 }

// FeatureDim returns the number of feature coordinates (excludes the label).
func (g *LabeledGrid) FeatureDim() int { return g.featDim }

// String describes the universe.
func (g *LabeledGrid) String() string {
	return fmt.Sprintf("labeledgrid d=%d levels=%d labels=%d (|X|=%d)", g.featDim, g.levels, g.labelLevels, g.Size())
}

// Points is an explicit universe given by a list of vectors, all of equal
// dimension.
type Points struct {
	dim    int
	points [][]float64
}

// NewPoints constructs a universe from explicit vectors. The slice is
// retained; callers must not modify it afterwards.
func NewPoints(pts [][]float64) (*Points, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("universe: empty point list")
	}
	dim := len(pts[0])
	if dim == 0 {
		return nil, fmt.Errorf("universe: zero-dimensional points")
	}
	for i, p := range pts {
		if len(p) != dim {
			return nil, fmt.Errorf("universe: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	return &Points{dim: dim, points: pts}, nil
}

// Size returns the number of points.
func (p *Points) Size() int { return len(p.points) }

// Point returns element i.
func (p *Points) Point(i int) []float64 { return p.points[i] }

// PointInto copies element i into buf without allocating.
func (p *Points) PointInto(i int, buf []float64) []float64 {
	buf = buf[:p.dim]
	copy(buf, p.points[i])
	return buf
}

// Dim returns the shared dimension.
func (p *Points) Dim() int { return p.dim }

// String describes the universe.
func (p *Points) String() string {
	return fmt.Sprintf("points dim=%d (|X|=%d)", p.dim, p.Size())
}

// Nearest returns the index of the universe element closest in Euclidean
// distance to v, breaking ties toward the smaller index. This is the
// rounding map of paper §1.1: continuous records are snapped onto X before
// any private computation sees them.
func Nearest(u Universe, v []float64) int {
	best := math.Inf(1)
	bestIdx := 0
	buf := make([]float64, u.Dim())
	for i := 0; i < u.Size(); i++ {
		p := u.PointInto(i, buf)
		var d2 float64
		for j := range p {
			diff := p[j] - v[j]
			d2 += diff * diff
		}
		if d2 < best {
			best = d2
			bestIdx = i
		}
	}
	return bestIdx
}

// MaxNorm returns the largest Euclidean norm over all universe points,
// used to certify Lipschitz/scale constants for loss families.
func MaxNorm(u Universe) float64 {
	var m float64
	buf := make([]float64, u.Dim())
	for i := 0; i < u.Size(); i++ {
		p := u.PointInto(i, buf)
		var n2 float64
		for _, x := range p {
			n2 += x * x
		}
		if n := math.Sqrt(n2); n > m {
			m = n
		}
	}
	return m
}
