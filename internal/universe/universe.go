// Package universe defines finite data universes X.
//
// The paper's algorithm maintains a histogram over a finite universe X and
// runs in time poly(|X|) (paper §4.3). Continuous data is handled the way
// the paper prescribes in §1.1: round each point onto a finite grid, which
// changes any Lipschitz loss by at most the rounding radius. This package
// provides the universes used throughout the repo:
//
//   - Hypercube: X = {±1/√d}^d, the canonical universe of §4.3;
//   - LabeledGrid: X = feature-grid × label-grid, for regression and
//     classification losses over labeled examples (x, y);
//   - Points: an explicit list of vectors, for custom workloads;
//   - Product: an implicit product universe that stores only per-coordinate
//     factors (product.go), for universes far beyond the dense limit.
//
// Every universe enumerates its elements by index 0..Size()-1 and exposes a
// vector encoding of each element. Loss functions consume those vectors.
//
// Two capability interfaces refine Universe: Block (bulk materialization of
// index ranges, the unit of the sweep kernels) and Factored (factored.go:
// product structure exposed coordinate by coordinate, the basis of the
// factored evaluation engine). Dense code paths that must enumerate or
// allocate Θ(|X|) state guard themselves with EnsureDense, so a universe
// past the dense limit is rejected with a typed error instead of an OOM.
package universe

import (
	"errors"
	"fmt"
	"math"
)

// Universe is a finite data universe X. Implementations must be immutable
// after construction; Point may return a shared slice that callers must not
// modify.
type Universe interface {
	// Size returns |X|.
	Size() int
	// Point returns the vector encoding of element i, 0 ≤ i < Size().
	Point(i int) []float64
	// PointInto copies the vector encoding of element i into buf (which
	// must have length ≥ Dim()) and returns buf[:Dim()]. It never
	// allocates, making it the accessor of choice inside hot loops: each
	// goroutine of a parallel sweep reuses its own buffer, independent of
	// whether the universe shares or synthesizes its Point slices.
	PointInto(i int, buf []float64) []float64
	// Dim returns the length of every Point vector.
	Dim() int
	// String returns a short human-readable description.
	String() string
}

// Block is the bulk-materialization capability: universes that can write a
// whole index range of point vectors in one call. Sweep kernels use it to
// turn per-element decode/copy calls into one flat write per chunk — a
// single memmove for densely stored universes, an amortized odometer walk
// for implicit product universes.
type Block interface {
	Universe
	// PointsInto writes elements lo..hi−1 row-major into buf: element
	// lo+k occupies buf[k*Dim() : (k+1)*Dim()]. buf must have length
	// ≥ (hi−lo)·Dim(); the call never allocates.
	PointsInto(lo, hi int, buf []float64)
}

// DenseLimit is the largest universe size the dense evaluation engine will
// enumerate or allocate per-element state for (2^22, the bound the labeled
// grid has always enforced). Code paths that need Θ(|X|) memory or time
// check EnsureDense before committing; the factored engine has no such
// limit.
const DenseLimit = 1 << 22

// ErrTooLarge is the typed "universe too large" failure: a dense Θ(|X|)
// code path was asked to run over a universe past DenseLimit. Callers
// match it with errors.Is to distinguish a capacity rejection (use the
// factored engine) from a genuine fault.
var ErrTooLarge = errors.New("universe too large for dense enumeration")

// EnsureDense returns nil when u is small enough for dense Θ(|X|)
// processing and an ErrTooLarge-wrapped error otherwise. It is the guard
// every dense materialization (histograms, MW log-weight vectors, full
// sweeps) runs before allocating.
func EnsureDense(u Universe) error {
	if u.Size() > DenseLimit {
		return fmt.Errorf("universe: %s has |X| = %d > 2^22: %w", u.String(), u.Size(), ErrTooLarge)
	}
	return nil
}

// Hypercube is the universe {±1/√d}^d from paper §4.3. Every point has unit
// Euclidean norm, so 1-Lipschitz losses over the unit ball automatically
// satisfy the paper's scaling condition with S ≤ 2. All points are backed
// by one flat array (point i at flat[i*d : (i+1)*d]).
type Hypercube struct {
	d     int
	size  int
	scale float64
	flat  []float64
}

// NewHypercube constructs the universe {±1/√d}^d with |X| = 2^d elements,
// materialized densely. d must be in [1, 20] to keep |X| enumerable; use
// NewProductHypercube for the implicit variant beyond that.
func NewHypercube(d int) (*Hypercube, error) {
	if d < 1 || d > 20 {
		return nil, fmt.Errorf("universe: hypercube dimension %d outside [1,20]", d)
	}
	size := 1 << uint(d)
	scale := 1 / math.Sqrt(float64(d))
	flat := make([]float64, size*d)
	for i := 0; i < size; i++ {
		p := flat[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			if i>>uint(j)&1 == 1 {
				p[j] = scale
			} else {
				p[j] = -scale
			}
		}
	}
	return &Hypercube{d: d, size: size, scale: scale, flat: flat}, nil
}

// Size returns 2^d.
func (h *Hypercube) Size() int { return h.size }

// Point returns the i-th sign pattern scaled to the unit sphere.
func (h *Hypercube) Point(i int) []float64 { return h.flat[i*h.d : (i+1)*h.d : (i+1)*h.d] }

// PointInto copies element i into buf without allocating.
func (h *Hypercube) PointInto(i int, buf []float64) []float64 {
	buf = buf[:h.d]
	copy(buf, h.flat[i*h.d:(i+1)*h.d])
	return buf
}

// PointsInto implements Block with one flat copy.
func (h *Hypercube) PointsInto(lo, hi int, buf []float64) {
	copy(buf[:(hi-lo)*h.d], h.flat[lo*h.d:hi*h.d])
}

// Dim returns d.
func (h *Hypercube) Dim() int { return h.d }

// Levels implements Factored: every coordinate is binary.
func (h *Hypercube) Levels(coord int) int { return 2 }

// CoordValue implements Factored: level 1 is +1/√d, level 0 is −1/√d,
// matching bit coord of the element index.
func (h *Hypercube) CoordValue(coord, level int) float64 {
	if level == 1 {
		return h.scale
	}
	return -h.scale
}

// String describes the universe.
func (h *Hypercube) String() string {
	return fmt.Sprintf("hypercube{±1/√%d}^%d (|X|=%d)", h.d, h.d, h.Size())
}

// LabeledGrid is a universe of labeled examples (x, y): features x range
// over a product grid with levels values per coordinate scaled into the ball
// of radius featRadius, and labels y range over labelLevels values in
// [-labelRadius, labelRadius]. The Point encoding is (x..., y) with
// Dim() = featDim + 1. All points are backed by one flat array.
type LabeledGrid struct {
	featDim     int
	levels      int
	labelLevels int
	featVals    []float64 // scaled per-coordinate feature values
	labelVals   []float64 // scaled label values
	flat        []float64
}

// NewLabeledGrid constructs a labeled-example universe.
//
//	featDim      — number of feature coordinates d
//	levels       — grid values per feature coordinate (≥ 2)
//	featRadius   — features scaled so ‖x‖₂ ≤ featRadius
//	labelLevels  — number of distinct labels (≥ 2)
//	labelRadius  — labels uniform in [-labelRadius, labelRadius]
//
// |X| = levels^featDim · labelLevels, which must stay ≤ 2^22.
func NewLabeledGrid(featDim, levels int, featRadius float64, labelLevels int, labelRadius float64) (*LabeledGrid, error) {
	if featDim < 1 {
		return nil, fmt.Errorf("universe: featDim %d < 1", featDim)
	}
	if levels < 2 || labelLevels < 2 {
		return nil, fmt.Errorf("universe: levels %d / labelLevels %d must be ≥ 2", levels, labelLevels)
	}
	if featRadius <= 0 || labelRadius <= 0 {
		return nil, fmt.Errorf("universe: radii must be positive")
	}
	size := labelLevels
	for i := 0; i < featDim; i++ {
		size *= levels
		if size > DenseLimit {
			return nil, fmt.Errorf("universe: labeled grid size exceeds 2^22")
		}
	}
	// Per-coordinate grid values in [-1, 1], then scaled so the all-max
	// corner has norm featRadius (keeping every point inside the ball).
	cornerNorm := math.Sqrt(float64(featDim)) // ‖(1,...,1)‖
	featScale := featRadius / cornerNorm
	featVals := gridValues(levels)
	for i := range featVals {
		featVals[i] *= featScale
	}
	labelVals := gridValues(labelLevels)
	for i := range labelVals {
		labelVals[i] *= labelRadius
	}
	dim := featDim + 1
	flat := make([]float64, size*dim)
	for i := 0; i < size; i++ {
		p := flat[i*dim : (i+1)*dim]
		rem := i
		for j := 0; j < featDim; j++ {
			p[j] = featVals[rem%levels]
			rem /= levels
		}
		p[featDim] = labelVals[rem]
	}
	return &LabeledGrid{
		featDim: featDim, levels: levels, labelLevels: labelLevels,
		featVals: featVals, labelVals: labelVals, flat: flat,
	}, nil
}

// gridValues returns n values evenly spaced in [-1, 1].
func gridValues(n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = -1 + 2*float64(i)/float64(n-1)
	}
	return vals
}

// Size returns |X|.
func (g *LabeledGrid) Size() int { return len(g.flat) / (g.featDim + 1) }

// Point returns element i as (features..., label).
func (g *LabeledGrid) Point(i int) []float64 {
	d := g.featDim + 1
	return g.flat[i*d : (i+1)*d : (i+1)*d]
}

// PointInto copies element i into buf without allocating.
func (g *LabeledGrid) PointInto(i int, buf []float64) []float64 {
	d := g.featDim + 1
	buf = buf[:d]
	copy(buf, g.flat[i*d:(i+1)*d])
	return buf
}

// PointsInto implements Block with one flat copy.
func (g *LabeledGrid) PointsInto(lo, hi int, buf []float64) {
	d := g.featDim + 1
	copy(buf[:(hi-lo)*d], g.flat[lo*d:hi*d])
}

// Dim returns featDim + 1.
func (g *LabeledGrid) Dim() int { return g.featDim + 1 }

// FeatureDim returns the number of feature coordinates (excludes the label).
func (g *LabeledGrid) FeatureDim() int { return g.featDim }

// Levels implements Factored: levels per feature coordinate, labelLevels
// for the final (label) coordinate.
func (g *LabeledGrid) Levels(coord int) int {
	if coord == g.featDim {
		return g.labelLevels
	}
	return g.levels
}

// CoordValue implements Factored, returning exactly the stored grid values
// (feature coordinates share one scaled value list; the label coordinate
// has its own).
func (g *LabeledGrid) CoordValue(coord, level int) float64 {
	if coord == g.featDim {
		return g.labelVals[level]
	}
	return g.featVals[level]
}

// String describes the universe.
func (g *LabeledGrid) String() string {
	return fmt.Sprintf("labeledgrid d=%d levels=%d labels=%d (|X|=%d)", g.featDim, g.levels, g.labelLevels, g.Size())
}

// Points is an explicit universe given by a list of vectors, all of equal
// dimension, copied into one flat backing array at construction.
type Points struct {
	dim  int
	flat []float64
}

// NewPoints constructs a universe from explicit vectors. The vectors are
// copied, so the caller keeps ownership of the input slices.
func NewPoints(pts [][]float64) (*Points, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("universe: empty point list")
	}
	dim := len(pts[0])
	if dim == 0 {
		return nil, fmt.Errorf("universe: zero-dimensional points")
	}
	flat := make([]float64, 0, len(pts)*dim)
	for i, p := range pts {
		if len(p) != dim {
			return nil, fmt.Errorf("universe: point %d has dim %d, want %d", i, len(p), dim)
		}
		flat = append(flat, p...)
	}
	return &Points{dim: dim, flat: flat}, nil
}

// Size returns the number of points.
func (p *Points) Size() int { return len(p.flat) / p.dim }

// Point returns element i.
func (p *Points) Point(i int) []float64 { return p.flat[i*p.dim : (i+1)*p.dim : (i+1)*p.dim] }

// PointInto copies element i into buf without allocating.
func (p *Points) PointInto(i int, buf []float64) []float64 {
	buf = buf[:p.dim]
	copy(buf, p.flat[i*p.dim:(i+1)*p.dim])
	return buf
}

// PointsInto implements Block with one flat copy.
func (p *Points) PointsInto(lo, hi int, buf []float64) {
	copy(buf[:(hi-lo)*p.dim], p.flat[lo*p.dim:hi*p.dim])
}

// Dim returns the shared dimension.
func (p *Points) Dim() int { return p.dim }

// String describes the universe.
func (p *Points) String() string {
	return fmt.Sprintf("points dim=%d (|X|=%d)", p.dim, p.Size())
}

// Nearest returns the index of the universe element closest in Euclidean
// distance to v, breaking ties toward the smaller index. This is the
// rounding map of paper §1.1: continuous records are snapped onto X before
// any private computation sees them. Universes past the dense limit must
// be factored; for those the per-coordinate fast path computes the same
// minimizer without a sweep (squared distance over a product set decomposes
// coordinate by coordinate, and choosing the smallest level on a
// per-coordinate tie yields the smallest tied index).
func Nearest(u Universe, v []float64) int {
	if f, ok := u.(Factored); ok && u.Size() > DenseLimit {
		return nearestFactored(f, v)
	}
	best := math.Inf(1)
	bestIdx := 0
	buf := make([]float64, u.Dim())
	for i := 0; i < u.Size(); i++ {
		p := u.PointInto(i, buf)
		var d2 float64
		for j := range p {
			diff := p[j] - v[j]
			d2 += diff * diff
		}
		if d2 < best {
			best = d2
			bestIdx = i
		}
	}
	return bestIdx
}

// MaxNorm returns the largest Euclidean norm over all universe points,
// used to certify Lipschitz/scale constants for loss families. Past the
// dense limit it requires a Factored universe and maximizes coordinate by
// coordinate (the max of Σⱼ xⱼ² over a product set is the sum of
// per-coordinate maxima).
func MaxNorm(u Universe) float64 {
	if f, ok := u.(Factored); ok && u.Size() > DenseLimit {
		return maxNormFactored(f)
	}
	var m float64
	buf := make([]float64, u.Dim())
	for i := 0; i < u.Size(); i++ {
		p := u.PointInto(i, buf)
		var n2 float64
		for _, x := range p {
			n2 += x * x
		}
		if n := math.Sqrt(n2); n > m {
			m = n
		}
	}
	return m
}
