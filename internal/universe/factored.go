// Factored-universe capability: product structure exposed coordinate by
// coordinate, plus the helpers the factored evaluation engine builds on
// (digit decoding, support sub-universes, and sweep-free Nearest/MaxNorm).
package universe

import (
	"fmt"
	"math"
)

// Factored is the product-structure capability: a universe whose elements
// are exactly the tuples of per-coordinate values, indexed in mixed radix
// with coordinate 0 fastest-varying. Element index i decodes as
//
//	level_j = (i / Π_{k<j} Levels(k)) mod Levels(j)
//	Point(i)[j] = CoordValue(j, level_j)
//
// which matches the stored layouts of Hypercube (bit j of i) and
// LabeledGrid (base-levels digits, label last). The factored engine uses
// this to answer losses supported on few coordinates by enumerating only
// the small sub-cube over those coordinates.
type Factored interface {
	Universe
	// Levels returns the number of distinct values of coordinate coord.
	Levels(coord int) int
	// CoordValue returns the vector value of coordinate coord at the
	// given level, 0 ≤ level < Levels(coord). The returned float must be
	// bit-identical to the corresponding entry of Point vectors.
	CoordValue(coord, level int) float64
}

// DigitsInto decodes element index i of f into per-coordinate levels,
// writing Levels-radix digits (coordinate 0 first) into buf and returning
// buf[:Dim()].
func DigitsInto(f Factored, i int, buf []int) []int {
	d := f.Dim()
	buf = buf[:d]
	for j := 0; j < d; j++ {
		l := f.Levels(j)
		buf[j] = i % l
		i /= l
	}
	return buf
}

// ComposeIndex is the inverse of DigitsInto: it packs per-coordinate
// levels (one per dimension, coordinate 0 fastest-varying) into the
// element index.
func ComposeIndex(f Factored, digits []int) int {
	idx := 0
	stride := 1
	for j := 0; j < f.Dim(); j++ {
		idx += digits[j] * stride
		stride *= f.Levels(j)
	}
	return idx
}

// ProjectIndex returns the sub-cube index (in SupportIndex convention) of
// element i's levels at the given coordinates. buf is scratch of length ≥
// Dim().
func ProjectIndex(f Factored, coords []int, i int, buf []int) int {
	digits := DigitsInto(f, i, buf)
	idx := 0
	stride := 1
	for _, c := range coords {
		idx += digits[c] * stride
		stride *= f.Levels(c)
	}
	return idx
}

// SupportSize returns the number of joint level assignments of the given
// coordinates, Π_j Levels(coords[j]), or an error if it would overflow the
// dense limit (support sub-cubes are materialized densely).
func SupportSize(f Factored, coords []int) (int, error) {
	size := 1
	for _, c := range coords {
		size *= f.Levels(c)
		if size > DenseLimit {
			return 0, fmt.Errorf("universe: support %v of %s has > 2^22 assignments: %w", coords, f.String(), ErrTooLarge)
		}
	}
	return size, nil
}

// SupportIndex composes per-coordinate levels (aligned with coords, which
// must be the same slice an enumeration used) into the sub-cube index, with
// coords[0] fastest-varying — the same mixed-radix convention as the full
// universe.
func SupportIndex(f Factored, coords, levels []int) int {
	idx := 0
	stride := 1
	for j, c := range coords {
		idx += levels[j] * stride
		stride *= f.Levels(c)
	}
	return idx
}

// SupportLevelsInto decodes a sub-cube index (as produced by SupportIndex)
// back into per-coordinate levels aligned with coords.
func SupportLevelsInto(f Factored, coords []int, idx int, buf []int) []int {
	buf = buf[:len(coords)]
	for j, c := range coords {
		l := f.Levels(c)
		buf[j] = idx % l
		idx /= l
	}
	return buf
}

// SupportUniverse materializes the sub-cube of f spanned by the given
// coordinates as an explicit Points universe of full-dimension vectors:
// the support coordinates enumerate all their joint values (coords[0]
// fastest-varying, matching SupportIndex), and every other coordinate is
// pinned at its level-0 value. Losses supported on coords take the same
// values on this embedding as on the full universe, so the dense
// minimization and evaluation machinery runs on it unchanged — that is
// the whole trick of the factored engine.
func SupportUniverse(f Factored, coords []int) (*Points, error) {
	dim := f.Dim()
	seen := make(map[int]bool, len(coords))
	for _, c := range coords {
		if c < 0 || c >= dim {
			return nil, fmt.Errorf("universe: support coordinate %d outside [0,%d)", c, dim)
		}
		if seen[c] {
			return nil, fmt.Errorf("universe: duplicate support coordinate %d", c)
		}
		seen[c] = true
	}
	size, err := SupportSize(f, coords)
	if err != nil {
		return nil, err
	}
	base := make([]float64, dim)
	for j := 0; j < dim; j++ {
		base[j] = f.CoordValue(j, 0)
	}
	flat := make([]float64, size*dim)
	levels := make([]int, len(coords))
	for i := 0; i < size; i++ {
		p := flat[i*dim : (i+1)*dim]
		copy(p, base)
		SupportLevelsInto(f, coords, i, levels)
		for j, c := range coords {
			p[c] = f.CoordValue(c, levels[j])
		}
	}
	return &Points{dim: dim, flat: flat}, nil
}

// nearestFactored minimizes squared distance coordinate by coordinate:
// over a product set, Σ_j (x_j − v_j)² decomposes, and picking the
// smallest level on a per-coordinate tie yields the smallest tied global
// index (levels are index digits with coordinate 0 fastest).
func nearestFactored(f Factored, v []float64) int {
	idx := 0
	stride := 1
	for j := 0; j < f.Dim(); j++ {
		l := f.Levels(j)
		best := math.Inf(1)
		bestLevel := 0
		for lev := 0; lev < l; lev++ {
			diff := f.CoordValue(j, lev) - v[j]
			if d2 := diff * diff; d2 < best {
				best = d2
				bestLevel = lev
			}
		}
		idx += bestLevel * stride
		stride *= l
	}
	return idx
}

// maxNormFactored maximizes Σ_j x_j² term by term: the maximum over a
// product set is the sum of per-coordinate maxima of x_j².
func maxNormFactored(f Factored) float64 {
	var n2 float64
	for j := 0; j < f.Dim(); j++ {
		var m float64
		for lev := 0; lev < f.Levels(j); lev++ {
			v := f.CoordValue(j, lev)
			if v2 := v * v; v2 > m {
				m = v2
			}
		}
		n2 += m
	}
	return math.Sqrt(n2)
}
