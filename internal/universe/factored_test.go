package universe

import (
	"errors"
	"math"
	"testing"
)

// TestProductHypercubeMatchesDense pins the bit-level equivalence of the
// implicit and dense hypercube representations: same index convention,
// same coordinate values, pointwise identical.
func TestProductHypercubeMatchesDense(t *testing.T) {
	for _, d := range []int{1, 3, 7, 12} {
		h, err := NewHypercube(d)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProductHypercube(d)
		if err != nil {
			t.Fatal(err)
		}
		if h.Size() != p.Size() || h.Dim() != p.Dim() {
			t.Fatalf("d=%d: size/dim mismatch %d/%d vs %d/%d", d, h.Size(), h.Dim(), p.Size(), p.Dim())
		}
		buf := make([]float64, d)
		for i := 0; i < h.Size(); i++ {
			hp := h.Point(i)
			pp := p.PointInto(i, buf)
			for j := range hp {
				if hp[j] != pp[j] {
					t.Fatalf("d=%d point %d coord %d: dense %v vs product %v", d, i, j, hp[j], pp[j])
				}
			}
		}
	}
}

func TestProductHypercubeLargeD(t *testing.T) {
	p, err := NewProductHypercube(30)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 1<<30 {
		t.Fatalf("Size = %d, want 2^30", p.Size())
	}
	if err := EnsureDense(p); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("EnsureDense at d=30: err = %v, want ErrTooLarge", err)
	}
	// Point vectors must still decode correctly at indexes past 2^22.
	i := (1 << 29) | 12345
	pt := p.Point(i)
	scale := 1 / math.Sqrt(30)
	for j := 0; j < 30; j++ {
		want := -scale
		if i>>uint(j)&1 == 1 {
			want = scale
		}
		if pt[j] != want {
			t.Fatalf("coord %d of index %d: got %v want %v", j, i, pt[j], want)
		}
	}
	if _, err := NewProductHypercube(53); err == nil {
		t.Error("d=53 accepted")
	}
	if _, err := NewProductHypercube(0); err == nil {
		t.Error("d=0 accepted")
	}
}

func TestNewProductValidation(t *testing.T) {
	if _, err := NewProduct(nil, ""); err == nil {
		t.Error("empty factor list accepted")
	}
	if _, err := NewProduct([][]float64{{1}, {}}, ""); err == nil {
		t.Error("empty factor accepted")
	}
	big := make([]float64, 1<<13)
	if _, err := NewProduct([][]float64{big, big, big, big, big}, ""); err == nil {
		t.Error("2^65-size product accepted")
	}
	p, err := NewProduct([][]float64{{1, 2}, {10, 20, 30}}, "")
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 6 {
		t.Fatalf("Size = %d, want 6", p.Size())
	}
	// Factor slices are copied at construction.
	src := [][]float64{{1, 2}}
	q, _ := NewProduct(src, "")
	src[0][0] = 99
	if q.CoordValue(0, 0) != 1 {
		t.Error("NewProduct aliases caller slices")
	}
}

// TestPointsIntoMatchesPointInto checks the Block bulk accessor against
// per-element decode on all universe kinds, over aligned and unaligned
// ranges.
func TestPointsIntoMatchesPointInto(t *testing.T) {
	h, _ := NewHypercube(4)
	g, _ := NewLabeledGrid(2, 3, 1.0, 2, 1.0)
	pts, _ := NewPoints([][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}})
	prod, _ := NewProduct([][]float64{{-1, 1}, {0, 0.5, 1}, {2, 3}}, "")
	for _, u := range []Block{h, g, pts, prod} {
		d := u.Dim()
		n := u.Size()
		for _, r := range [][2]int{{0, n}, {1, n - 1}, {n / 3, 2*n/3 + 1}, {2, 2}} {
			lo, hi := r[0], r[1]
			buf := make([]float64, (hi-lo)*d)
			u.PointsInto(lo, hi, buf)
			one := make([]float64, d)
			for i := lo; i < hi; i++ {
				want := u.PointInto(i, one)
				got := buf[(i-lo)*d : (i-lo+1)*d]
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("%s: PointsInto(%d,%d) element %d coord %d = %v, want %v", u, lo, hi, i, j, got[j], want[j])
					}
				}
			}
		}
	}
}

func TestDigitsIntoRoundTrip(t *testing.T) {
	g, _ := NewLabeledGrid(3, 3, 1.0, 2, 1.0)
	prod, _ := NewProduct([][]float64{{-1, 1}, {0, 0.5, 1}, {2, 3}}, "")
	for _, f := range []Factored{g, prod} {
		buf := make([]int, f.Dim())
		pbuf := make([]float64, f.Dim())
		for i := 0; i < f.Size(); i++ {
			digits := DigitsInto(f, i, buf)
			// Digits reconstruct the index (coordinate 0 fastest).
			idx := 0
			stride := 1
			for j, lev := range digits {
				if lev < 0 || lev >= f.Levels(j) {
					t.Fatalf("%s: digit %d of %d out of range: %d", f, j, i, lev)
				}
				idx += lev * stride
				stride *= f.Levels(j)
			}
			if idx != i {
				t.Fatalf("%s: digits of %d reconstruct %d", f, i, idx)
			}
			// CoordValue(j, digit_j) is bit-identical to the point vector.
			p := f.PointInto(i, pbuf)
			for j := range digits {
				if v := f.CoordValue(j, digits[j]); v != p[j] {
					t.Fatalf("%s: CoordValue(%d,%d)=%v but point %d coord %d=%v", f, j, digits[j], v, i, j, p[j])
				}
			}
		}
	}
}

func TestHypercubeFactoredContract(t *testing.T) {
	h, _ := NewHypercube(5)
	buf := make([]int, 5)
	pbuf := make([]float64, 5)
	for i := 0; i < h.Size(); i++ {
		digits := DigitsInto(h, i, buf)
		p := h.PointInto(i, pbuf)
		for j := range digits {
			if v := h.CoordValue(j, digits[j]); v != p[j] {
				t.Fatalf("CoordValue(%d,%d)=%v but point %d coord %d=%v", j, digits[j], v, i, j, p[j])
			}
		}
	}
}

func TestSupportSizeAndIndex(t *testing.T) {
	p, _ := NewProductHypercube(40)
	if _, err := SupportSize(p, []int{0, 1, 2}); err != nil {
		t.Fatalf("small support rejected: %v", err)
	}
	coords := make([]int, 30)
	for i := range coords {
		coords[i] = i
	}
	if _, err := SupportSize(p, coords); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("2^30 support: err = %v, want ErrTooLarge", err)
	}
	// SupportIndex / SupportLevelsInto round-trip.
	g, _ := NewLabeledGrid(4, 3, 1.0, 2, 1.0)
	sc := []int{3, 0, 4} // deliberately unsorted, includes label coord
	size, err := SupportSize(g, sc)
	if err != nil {
		t.Fatal(err)
	}
	if size != 3*3*2 {
		t.Fatalf("support size = %d, want 18", size)
	}
	lbuf := make([]int, len(sc))
	for idx := 0; idx < size; idx++ {
		levels := SupportLevelsInto(g, sc, idx, lbuf)
		if got := SupportIndex(g, sc, levels); got != idx {
			t.Fatalf("support index round-trip: %d -> %v -> %d", idx, levels, got)
		}
	}
}

// TestSupportUniverse checks that the embedded sub-cube enumerates all
// joint support values with non-support coordinates pinned at level 0,
// in SupportIndex order.
func TestSupportUniverse(t *testing.T) {
	p, _ := NewProductHypercube(30)
	coords := []int{2, 17, 29}
	sub, err := SupportUniverse(p, coords)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 8 || sub.Dim() != 30 {
		t.Fatalf("sub size/dim = %d/%d, want 8/30", sub.Size(), sub.Dim())
	}
	lbuf := make([]int, len(coords))
	onSupport := map[int]bool{}
	for _, c := range coords {
		onSupport[c] = true
	}
	for i := 0; i < sub.Size(); i++ {
		pt := sub.Point(i)
		levels := SupportLevelsInto(p, coords, i, lbuf)
		for j := 0; j < 30; j++ {
			want := p.CoordValue(j, 0)
			if onSupport[j] {
				for k, c := range coords {
					if c == j {
						want = p.CoordValue(j, levels[k])
					}
				}
			}
			if pt[j] != want {
				t.Fatalf("sub point %d coord %d = %v, want %v", i, j, pt[j], want)
			}
		}
	}
	// Validation.
	if _, err := SupportUniverse(p, []int{0, 0}); err == nil {
		t.Error("duplicate coord accepted")
	}
	if _, err := SupportUniverse(p, []int{30}); err == nil {
		t.Error("out-of-range coord accepted")
	}
	// Empty support: single baseline point.
	sub0, err := SupportUniverse(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sub0.Size() != 1 {
		t.Fatalf("empty support size = %d, want 1", sub0.Size())
	}
}

// TestNearestFactoredMatchesDense compares the per-coordinate fast path
// against the dense sweep on a small product universe where both run.
func TestNearestFactoredMatchesDense(t *testing.T) {
	prod, _ := NewProduct([][]float64{{-1, 0, 1}, {-0.5, 0.5}, {0, 2}}, "")
	queries := [][]float64{
		{0.2, 0.3, 1.5},
		{-2, -2, -2},
		{1, 0.5, 2},
		{0.5, 0, 1},   // per-coordinate ties
		{-0.5, 0, -1}, // more ties
	}
	for _, v := range queries {
		dense := Nearest(prod, v) // size ≤ DenseLimit → dense sweep
		fast := nearestFactored(prod, v)
		if dense != fast {
			t.Errorf("Nearest(%v): dense %d, factored %d", v, dense, fast)
		}
	}
	// Large universe routes through the factored path without sweeping.
	big, _ := NewProductHypercube(40)
	v := make([]float64, 40)
	for j := range v {
		v[j] = float64(j%3-1) * 0.1
	}
	idx := Nearest(big, v)
	scale := 1 / math.Sqrt(40)
	pt := big.Point(idx)
	for j := range v {
		want := -scale
		if v[j] > 0 {
			want = scale
		}
		// v[j] == 0 ties toward level 0 (−scale).
		if pt[j] != want {
			t.Errorf("large Nearest coord %d = %v, want %v (v=%v)", j, pt[j], want, v[j])
		}
	}
}

func TestMaxNormFactored(t *testing.T) {
	prod, _ := NewProduct([][]float64{{-1, 0, 1}, {-0.5, 0.5}, {0, 2}}, "")
	dense := MaxNorm(prod)
	fast := maxNormFactored(prod)
	if math.Abs(dense-fast) > 1e-15 {
		t.Errorf("MaxNorm: dense %v, factored %v", dense, fast)
	}
	big, _ := NewProductHypercube(36)
	if got := MaxNorm(big); math.Abs(got-1) > 1e-12 {
		t.Errorf("product hypercube MaxNorm = %v, want 1", got)
	}
}

func TestEnsureDense(t *testing.T) {
	h, _ := NewHypercube(10)
	if err := EnsureDense(h); err != nil {
		t.Errorf("d=10 hypercube rejected: %v", err)
	}
	big, _ := NewProductHypercube(23)
	err := EnsureDense(big)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("2^23 universe: err = %v, want ErrTooLarge", err)
	}
	if want := "universe too large"; err == nil || !contains(err.Error(), want) {
		t.Errorf("error %q does not contain %q", err, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestLabeledGridFactoredContract verifies the grid's CoordValue tables
// agree bit-for-bit with its stored flat points.
func TestLabeledGridFactoredContract(t *testing.T) {
	g, _ := NewLabeledGrid(3, 4, 0.7, 3, 1.5)
	buf := make([]int, g.Dim())
	pbuf := make([]float64, g.Dim())
	for i := 0; i < g.Size(); i++ {
		digits := DigitsInto(g, i, buf)
		p := g.PointInto(i, pbuf)
		for j := range digits {
			if v := g.CoordValue(j, digits[j]); v != p[j] {
				t.Fatalf("CoordValue(%d,%d)=%v but point %d coord %d=%v", j, digits[j], v, i, j, p[j])
			}
		}
	}
	if g.Levels(0) != 4 || g.Levels(3) != 3 {
		t.Errorf("Levels = %d/%d, want 4/3", g.Levels(0), g.Levels(3))
	}
}
