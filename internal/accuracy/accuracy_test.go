package accuracy

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/histogram"
	"repro/internal/sample"
	"repro/internal/universe"
)

func grid(t *testing.T) *universe.LabeledGrid {
	t.Helper()
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func linQuery(t *testing.T, coord int) convex.Loss {
	t.Helper()
	lq, err := convex.NewLinearQuery(fmt.Sprintf("q%d", coord), func(x []float64) float64 {
		if x[coord] > 0 {
			return 1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	return lq
}

// exactAnswerer answers every linear query exactly on a fixed histogram.
type exactAnswerer struct{ h *histogram.Histogram }

func (a exactAnswerer) Answer(l convex.Loss) ([]float64, error) {
	lq, ok := l.(*convex.LinearQuery)
	if !ok {
		return nil, fmt.Errorf("not a linear query")
	}
	return lq.ExactMinimize(a.h), nil
}

// haltingAnswerer fails after a fixed number of answers.
type haltingAnswerer struct {
	inner Answerer
	limit int
	n     int
}

func (a *haltingAnswerer) Answer(l convex.Loss) ([]float64, error) {
	if a.n >= a.limit {
		return nil, fmt.Errorf("halted")
	}
	a.n++
	return a.inner.Answer(l)
}

func TestFixedAdversary(t *testing.T) {
	losses := []convex.Loss{linQuery(t, 0), linQuery(t, 1)}
	adv := &Fixed{Losses: losses}
	l, ok := adv.Next(nil)
	if !ok || l != losses[0] {
		t.Fatal("first query wrong")
	}
	l, ok = adv.Next(make([]Exchange, 1))
	if !ok || l != losses[1] {
		t.Fatal("second query wrong")
	}
	if _, ok := adv.Next(make([]Exchange, 2)); ok {
		t.Fatal("exhausted adversary kept going")
	}
}

func TestGreedyOrdersByError(t *testing.T) {
	g := grid(t)
	// Dataset concentrated on element 0; the indicator of element 0 has
	// huge error under the uniform reference, generic halfspace queries
	// less so.
	pm, err := dataset.PointMass(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	target := g.Point(0)
	indicator, err := convex.NewLinearQuery("ind", func(x []float64) float64 {
		for i := range target {
			if math.Abs(x[i]-target[i]) > 1e-9 {
				return 0
			}
		}
		return 1
	})
	if err != nil {
		t.Fatal(err)
	}
	constant, err := convex.NewLinearQuery("const", func(x []float64) float64 { return 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	pool := []convex.Loss{constant, indicator}
	adv, err := NewGreedy(pool, pm, histogram.Uniform(g), 200)
	if err != nil {
		t.Fatal(err)
	}
	first, ok := adv.Next(nil)
	if !ok || first != convex.Loss(indicator) {
		t.Errorf("greedy did not front-load the worst query")
	}
	if _, ok := adv.Next(make([]Exchange, 2)); ok {
		t.Error("exhausted greedy kept going")
	}
}

func TestAnswerAndDatabaseErr(t *testing.T) {
	g := grid(t)
	src := sample.New(1)
	pop, err := dataset.Skewed(g, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.SampleFrom(src, pop, 20000)
	d := data.Histogram()
	l := linQuery(t, 0)
	lq := l.(*convex.LinearQuery)
	truth := lq.ExactMinimize(d)[0]

	// AnswerErr at the truth is 0; away from it it is (θ−truth)²/2.
	e, err := AnswerErr(l, d, []float64{truth}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if e > 1e-9 {
		t.Errorf("err at truth = %v", e)
	}
	off := truth + 0.3
	if off > 1 {
		off = truth - 0.3
	}
	e, err = AnswerErr(l, d, []float64{off}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-0.045) > 1e-6 {
		t.Errorf("err at offset = %v, want 0.045", e)
	}

	// DatabaseErr of D against itself is 0; of the uniform prior it equals
	// the answer error of the uniform answer.
	e, err = DatabaseErr(l, d, d, 400)
	if err != nil {
		t.Fatal(err)
	}
	if e > 1e-9 {
		t.Errorf("DatabaseErr self = %v", e)
	}
	uni := histogram.Uniform(g)
	de, err := DatabaseErr(l, d, uni, 400)
	if err != nil {
		t.Fatal(err)
	}
	uniAns := lq.ExactMinimize(uni)
	ae, err := AnswerErr(l, d, uniAns, 400)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(de-ae) > 1e-9 {
		t.Errorf("DatabaseErr %v != AnswerErr of D′ minimizer %v", de, ae)
	}
}

func TestRunGameExactAnswererHasZeroError(t *testing.T) {
	g := grid(t)
	src := sample.New(2)
	pop, _ := dataset.Skewed(g, 1.0)
	data := dataset.SampleFrom(src, pop, 20000)
	pool := []convex.Loss{linQuery(t, 0), linQuery(t, 1), linQuery(t, 2)}
	res, err := RunGame(exactAnswerer{data.Histogram()}, &Fixed{Losses: pool}, data, GameConfig{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transcript) != 3 {
		t.Fatalf("transcript length %d", len(res.Transcript))
	}
	if res.MaxErr > 1e-9 {
		t.Errorf("exact answerer MaxErr = %v", res.MaxErr)
	}
	if res.HaltedEarly {
		t.Error("spurious halt")
	}
	if !math.IsNaN(res.MaxPopErr) {
		t.Error("MaxPopErr set without population")
	}
}

func TestRunGameRespectsK(t *testing.T) {
	g := grid(t)
	src := sample.New(3)
	pop, _ := dataset.Skewed(g, 1.0)
	data := dataset.SampleFrom(src, pop, 5000)
	pool := []convex.Loss{linQuery(t, 0), linQuery(t, 1), linQuery(t, 2)}
	res, err := RunGame(exactAnswerer{data.Histogram()}, &Fixed{Losses: pool}, data, GameConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transcript) != 2 {
		t.Errorf("K not respected: %d answers", len(res.Transcript))
	}
	if _, err := RunGame(exactAnswerer{data.Histogram()}, &Fixed{}, data, GameConfig{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestRunGameRecordsHalt(t *testing.T) {
	g := grid(t)
	src := sample.New(4)
	pop, _ := dataset.Skewed(g, 1.0)
	data := dataset.SampleFrom(src, pop, 5000)
	pool := []convex.Loss{linQuery(t, 0), linQuery(t, 1), linQuery(t, 2)}
	ha := &haltingAnswerer{inner: exactAnswerer{data.Histogram()}, limit: 1}
	res, err := RunGame(ha, &Fixed{Losses: pool}, data, GameConfig{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HaltedEarly {
		t.Error("halt not recorded")
	}
	if len(res.Transcript) != 1 {
		t.Errorf("transcript = %d", len(res.Transcript))
	}
}

// Generalization: answering from the sample, errors measured on the
// population are small when the sample is large (§1.3's premise).
func TestRunGameWithPopulation(t *testing.T) {
	g := grid(t)
	src := sample.New(5)
	pop, _ := dataset.Skewed(g, 1.5)
	data := dataset.SampleFrom(src, pop, 50000)
	pool := []convex.Loss{linQuery(t, 0), linQuery(t, 1)}
	res, err := RunGame(exactAnswerer{data.Histogram()}, &Fixed{Losses: pool}, data, GameConfig{K: 10, Population: pop})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.MaxPopErr) {
		t.Fatal("population error not measured")
	}
	if res.MaxPopErr > 0.01 {
		t.Errorf("generalization error = %v at n=50000", res.MaxPopErr)
	}
	for _, ex := range res.Transcript {
		if math.IsNaN(ex.PopErr) {
			t.Error("exchange missing PopErr")
		}
	}
}

// The DP estimator must (a) report ~ε for randomized response at parameter
// ε, and (b) blow up for a mechanism that ignores its noise.
func TestEstimateDP(t *testing.T) {
	eps := 1.0
	p := math.Exp(eps) / (1 + math.Exp(eps))
	rr := func(bit int) func(int64) string {
		return func(seed int64) string {
			src := sample.New(seed)
			out := bit
			if !src.Bernoulli(p) {
				out = 1 - bit
			}
			return fmt.Sprintf("%d", out)
		}
	}
	est, err := EstimateDP(200000, 0.01, rr(0), rr(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.WorstLogRatio-eps) > 0.1 {
		t.Errorf("randomized response log-ratio = %v, want ~%v", est.WorstLogRatio, eps)
	}
	if est.Outcomes != 2 {
		t.Errorf("outcomes = %d", est.Outcomes)
	}

	// Broken mechanism: deterministic release of the bit.
	broken := func(bit int) func(int64) string {
		return func(int64) string { return fmt.Sprintf("%d", bit) }
	}
	est, err = EstimateDP(1000, 0.01, broken(0), broken(1))
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint supports: no common outcome passes the threshold, so the
	// ratio cannot be certified — but the outcome count exposes it.
	if est.WorstLogRatio != 0 || est.Outcomes != 2 {
		t.Logf("broken-mechanism estimate = %+v (disjoint supports)", est)
	}
}

func TestEstimateDPValidation(t *testing.T) {
	id := func(int64) string { return "x" }
	if _, err := EstimateDP(10, 0.01, id, id); err == nil {
		t.Error("too few runs accepted")
	}
	if _, err := EstimateDP(1000, 0, id, id); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := EstimateDP(1000, 1, id, id); err == nil {
		t.Error("threshold 1 accepted")
	}
}
