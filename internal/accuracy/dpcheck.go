package accuracy

import (
	"fmt"
	"math"
	"sort"
)

// DPEstimate reports an empirical comparison of a mechanism's output
// distribution on two adjacent datasets.
type DPEstimate struct {
	// WorstLogRatio is max over observed outcomes o (with enough mass on
	// both sides) of |log(P_A(o) / P_B(o))| — an empirical lower bound on
	// the privacy loss ε (up to sampling error).
	WorstLogRatio float64
	// Outcomes is the number of distinct outcomes observed.
	Outcomes int
	// Runs is the per-dataset sample count.
	Runs int
}

// EstimateDP runs mechanism `m` many times on two (adjacent) inputs,
// identified only through the seed handed to each run, and compares the
// empirical output distributions. The mechanism must map its output to a
// small discrete label (e.g. the ⊤/⊥ pattern of sparse vector, or the
// index chosen by the exponential mechanism); minThreshold sets the
// minimum per-side probability for an outcome to enter the ratio (rarer
// outcomes have too much sampling error to be meaningful).
//
// This is a *sanity check*, not a proof: it can expose gross privacy bugs
// (a mechanism ignoring its noise shows an infinite ratio) but cannot
// verify δ-tail behaviour.
func EstimateDP(runs int, minThreshold float64, runA, runB func(seed int64) string) (*DPEstimate, error) {
	if runs < 100 {
		return nil, fmt.Errorf("accuracy: need ≥ 100 runs, got %d", runs)
	}
	if minThreshold <= 0 || minThreshold >= 1 {
		return nil, fmt.Errorf("accuracy: minThreshold %v must be in (0,1)", minThreshold)
	}
	countA := map[string]int{}
	countB := map[string]int{}
	for i := 0; i < runs; i++ {
		countA[runA(int64(i))]++
		countB[runB(int64(i))]++
	}
	keys := map[string]bool{}
	for k := range countA {
		keys[k] = true
	}
	for k := range countB {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	worst := 0.0
	for _, k := range sorted {
		pa := float64(countA[k]) / float64(runs)
		pb := float64(countB[k]) / float64(runs)
		if pa < minThreshold || pb < minThreshold {
			continue
		}
		if r := math.Abs(math.Log(pa / pb)); r > worst {
			worst = r
		}
	}
	return &DPEstimate{WorstLogRatio: worst, Outcomes: len(keys), Runs: runs}, nil
}
