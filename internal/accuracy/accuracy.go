// Package accuracy implements the paper's evaluation games and metrics:
//
//   - the Sample Accuracy game Acc (Definition 2.4 / Figure 1) between a
//     mechanism and an adversary that chooses the dataset and an adaptive
//     query sequence;
//   - error metrics err_ℓ(D, θ̂) and err_ℓ(D, D′) (Definitions 2.2/2.3);
//   - adversaries of increasing strength (fixed list, random pool, greedy
//     worst-first ordering);
//   - generalization-error measurement against the population the dataset
//     was sampled from (§1.3's adaptive-data-analysis connection);
//   - an empirical differential-privacy verifier that compares a
//     mechanism's output distribution on adjacent datasets.
package accuracy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/convex"
	"repro/internal/dataset"
	"repro/internal/histogram"
	"repro/internal/optimize"
	"repro/internal/sample"
)

// Answerer is anything that answers an online sequence of CM queries:
// core.Server, a baseline adapter, or a mock.
type Answerer interface {
	Answer(l convex.Loss) ([]float64, error)
}

// Exchange is one query/answer pair of a game transcript.
type Exchange struct {
	Loss   convex.Loss
	Answer []float64
	// Err is err_ℓ(D, θ̂) on the game's dataset.
	Err float64
	// PopErr is err_ℓ(pop, θ̂) when a population was supplied, else NaN.
	PopErr float64
}

// Adversary chooses the next query given the transcript so far. Returning
// ok = false ends the game early.
type Adversary interface {
	Next(history []Exchange) (l convex.Loss, ok bool)
}

// Fixed asks a fixed list of losses in order.
type Fixed struct {
	Losses []convex.Loss
}

// Next implements Adversary.
func (f *Fixed) Next(history []Exchange) (convex.Loss, bool) {
	if len(history) >= len(f.Losses) {
		return nil, false
	}
	return f.Losses[len(history)], true
}

// Greedy asks pool queries in decreasing order of their error on a
// reference histogram (typically the uniform prior — the mechanism's
// initial hypothesis). Front-loading the hardest queries forces the
// maximum number of MW updates as early as possible, the stress pattern
// Claim 3.7 must survive.
type Greedy struct {
	order []convex.Loss
}

// NewGreedy sorts pool by err_ℓ(D, ref) descending. D is the true dataset
// histogram (the adversary chose the dataset, so it knows it).
func NewGreedy(pool []convex.Loss, d, ref *histogram.Histogram, solverIters int) (*Greedy, error) {
	type scored struct {
		l convex.Loss
		e float64
	}
	ss := make([]scored, 0, len(pool))
	for _, l := range pool {
		e, err := DatabaseErr(l, d, ref, solverIters)
		if err != nil {
			return nil, err
		}
		ss = append(ss, scored{l, e})
	}
	sort.SliceStable(ss, func(i, j int) bool { return ss[i].e > ss[j].e })
	g := &Greedy{order: make([]convex.Loss, len(ss))}
	for i, s := range ss {
		g.order[i] = s.l
	}
	return g, nil
}

// Next implements Adversary.
func (g *Greedy) Next(history []Exchange) (convex.Loss, bool) {
	if len(history) >= len(g.order) {
		return nil, false
	}
	return g.order[len(history)], true
}

// RandomPool asks queries drawn uniformly (with replacement) from a pool —
// the "many analysts, uncoordinated questions" traffic pattern.
type RandomPool struct {
	Pool []convex.Loss
	Src  *sample.Source
	// Max caps the number of queries (0 = len(Pool)).
	Max int
}

// Next implements Adversary.
func (r *RandomPool) Next(history []Exchange) (convex.Loss, bool) {
	maxQ := r.Max
	if maxQ <= 0 {
		maxQ = len(r.Pool)
	}
	if len(history) >= maxQ || len(r.Pool) == 0 {
		return nil, false
	}
	return r.Pool[r.Src.Intn(len(r.Pool))], true
}

// AnswerErr returns err_ℓ(D, θ̂) = ℓ(θ̂; D) − min_θ ℓ(θ; D) (Def 2.2).
func AnswerErr(l convex.Loss, d *histogram.Histogram, theta []float64, solverIters int) (float64, error) {
	return optimize.Excess(l, theta, d, optimize.Options{MaxIters: solverIters})
}

// DatabaseErr returns err_ℓ(D, D′) (Def 2.3): evaluate D′'s minimizer on D.
func DatabaseErr(l convex.Loss, d, dPrime *histogram.Histogram, solverIters int) (float64, error) {
	res, err := optimize.Minimize(l, dPrime, optimize.Options{MaxIters: solverIters})
	if err != nil {
		return 0, err
	}
	return AnswerErr(l, d, res.Theta, solverIters)
}

// GameConfig parameterizes RunGame.
type GameConfig struct {
	// K caps the number of queries.
	K int
	// SolverIters bounds the error-measurement solves (default 400).
	SolverIters int
	// Population, when non-nil, additionally measures each answer's
	// excess risk on the population distribution (§1.3).
	Population *histogram.Histogram
}

// GameResult summarizes a completed accuracy game.
type GameResult struct {
	Transcript []Exchange
	// MaxErr is max_j err_ℓⱼ(D, θ̂ʲ) — the quantity Definition 2.4 bounds
	// by α with probability 1−β.
	MaxErr float64
	// MaxPopErr is the corresponding population (generalization) error,
	// NaN when no population was supplied.
	MaxPopErr float64
	// HaltedEarly reports whether the mechanism stopped before the
	// adversary ran out of queries (Claim 3.7 says it should not, at
	// sufficient n).
	HaltedEarly bool
}

// MeanErr returns the average per-query error of the transcript (0 for an
// empty transcript).
func (r *GameResult) MeanErr() float64 {
	if len(r.Transcript) == 0 {
		return 0
	}
	var s float64
	for _, ex := range r.Transcript {
		s += ex.Err
	}
	return s / float64(len(r.Transcript))
}

// QuantileErr returns the q-th error quantile of the transcript (q in
// [0, 1]; nearest-rank). It returns 0 for an empty transcript.
func (r *GameResult) QuantileErr(q float64) float64 {
	n := len(r.Transcript)
	if n == 0 {
		return 0
	}
	errs := make([]float64, n)
	for i, ex := range r.Transcript {
		errs[i] = ex.Err
	}
	sort.Float64s(errs)
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return errs[idx]
}

// RunGame plays the Sample Accuracy game of Figure 1: the adversary picks
// queries (adaptively — it sees the transcript), the answerer answers, and
// every answer is scored against the true dataset.
func RunGame(ans Answerer, adv Adversary, data *dataset.Dataset, cfg GameConfig) (*GameResult, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("accuracy: K %d must be ≥ 1", cfg.K)
	}
	iters := cfg.SolverIters
	if iters <= 0 {
		iters = 400
	}
	d := data.Histogram()
	res := &GameResult{MaxPopErr: math.NaN()}
	for len(res.Transcript) < cfg.K {
		l, ok := adv.Next(res.Transcript)
		if !ok {
			break
		}
		theta, err := ans.Answer(l)
		if err != nil {
			// A halt is a legitimate game outcome, not a test error.
			res.HaltedEarly = true
			break
		}
		e, err := AnswerErr(l, d, theta, iters)
		if err != nil {
			return nil, err
		}
		ex := Exchange{Loss: l, Answer: theta, Err: e, PopErr: math.NaN()}
		if cfg.Population != nil {
			pe, err := AnswerErr(l, cfg.Population, theta, iters)
			if err != nil {
				return nil, err
			}
			ex.PopErr = pe
			if math.IsNaN(res.MaxPopErr) || pe > res.MaxPopErr {
				res.MaxPopErr = pe
			}
		}
		res.Transcript = append(res.Transcript, ex)
		if e > res.MaxErr {
			res.MaxErr = e
		}
	}
	return res, nil
}
