package accuracy

import (
	"math"
	"testing"

	"repro/internal/convex"
	"repro/internal/sample"
)

func TestRandomPool(t *testing.T) {
	pool := []convex.Loss{linQuery(t, 0), linQuery(t, 1), linQuery(t, 2)}
	adv := &RandomPool{Pool: pool, Src: sample.New(1), Max: 10}
	var history []Exchange
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		l, ok := adv.Next(history)
		if !ok {
			t.Fatalf("adversary quit at %d", i)
		}
		seen[l.Name()] = true
		history = append(history, Exchange{Loss: l})
	}
	if _, ok := adv.Next(history); ok {
		t.Error("adversary exceeded Max")
	}
	if len(seen) < 2 {
		t.Errorf("random pool drew only %d distinct queries over 10 draws", len(seen))
	}
	// Max = 0 defaults to pool length.
	adv2 := &RandomPool{Pool: pool, Src: sample.New(2)}
	var h2 []Exchange
	for i := 0; i < 3; i++ {
		l, ok := adv2.Next(h2)
		if !ok {
			t.Fatalf("default-max adversary quit at %d", i)
		}
		h2 = append(h2, Exchange{Loss: l})
	}
	if _, ok := adv2.Next(h2); ok {
		t.Error("default-max adversary exceeded pool size")
	}
	// Empty pool quits immediately.
	empty := &RandomPool{Src: sample.New(3)}
	if _, ok := empty.Next(nil); ok {
		t.Error("empty pool produced a query")
	}
}

func TestGameResultStats(t *testing.T) {
	r := &GameResult{}
	if r.MeanErr() != 0 || r.QuantileErr(0.5) != 0 {
		t.Error("empty stats nonzero")
	}
	r.Transcript = []Exchange{{Err: 0.1}, {Err: 0.3}, {Err: 0.2}, {Err: 0.4}}
	if got := r.MeanErr(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("MeanErr = %v", got)
	}
	if got := r.QuantileErr(0.5); got != 0.2 {
		t.Errorf("median = %v, want 0.2", got)
	}
	if got := r.QuantileErr(1.0); got != 0.4 {
		t.Errorf("max quantile = %v", got)
	}
	if got := r.QuantileErr(0); got != 0.1 {
		t.Errorf("min quantile = %v", got)
	}
	// Out-of-range q values clamp rather than panic.
	if got := r.QuantileErr(2); got != 0.4 {
		t.Errorf("q=2 → %v", got)
	}
}
