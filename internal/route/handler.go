package route

// handler.go is the router's HTTP surface: a thin forwarding layer that
// resolves every session-scoped path to its ring owner and proxies the
// request verbatim. The router holds no session state — it can restart at
// any time, and two routers over the same replica set agree on every
// placement.
//
//	GET    /healthz              — router liveness + per-replica passive health
//	GET    /version              — build identity
//	GET    /metrics              — pmwcm_route_* registry (when configured)
//	GET    /v1/route/{id}        — placement debug: which replica owns id
//	POST   /v1/sessions          — mint (or honor) an id, create on its owner
//	GET    /v1/sessions          — fan-out listing across up replicas
//	*      /v1/sessions/{id}...  — forward to the id's owner
//	GET    /v1/losses, /v1/accountants, /v1/defaults — forward to any up replica
//
// A request pinned to a down replica fails fast with HTTP 503, a typed
// JSON body naming the replica, and a Retry-After header — except
// GET /v1/sessions/{id}/transcript, which falls back to the session's
// last checkpoint in the shared blob store when one is configured.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/obs"
)

// maxBodyBytes caps forwarded request bodies (mirrors the service's own
// cap; the router must not be a wider funnel than its backends).
const maxBodyBytes = 1 << 20

// maxProxyRespBytes caps forwarded response bodies (transcripts grow with
// the interaction but are bounded by session caps well under this).
const maxProxyRespBytes = 64 << 20

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		up := 0
		for _, rep := range rt.replicas {
			if rep.up() {
				up++
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":          true,
			"role":        "router",
			"uptime_sec":  time.Since(rt.started).Seconds(),
			"replicas":    rt.Replicas(),
			"replicas_up": up,
		})
	})

	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, obs.Version())
	})

	if rt.met != nil && rt.met.reg != nil {
		mux.Handle("GET /metrics", obs.MetricsHandler(rt.met.reg))
	}

	mux.HandleFunc("GET /v1/route/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		rep := rt.owner(id)
		writeJSON(w, http.StatusOK, map[string]any{
			"id": id, "replica": rep.name, "url": rep.base.String(), "up": rep.up(),
		})
	})

	mux.HandleFunc("POST /v1/sessions", rt.handleCreate)
	mux.HandleFunc("GET /v1/sessions", rt.handleList)

	byPin := func(w http.ResponseWriter, r *http.Request) {
		rt.forwardTo(w, r, rt.owner(r.PathValue("id")))
	}
	mux.HandleFunc("/v1/sessions/{id}", byPin)
	mux.HandleFunc("/v1/sessions/{id}/query", byPin)
	mux.HandleFunc("/v1/sessions/{id}/queries:batch", byPin)
	mux.HandleFunc("/v1/sessions/{id}/snapshot", byPin)
	mux.HandleFunc("GET /v1/sessions/{id}/transcript", rt.handleTranscript)

	// Replica-agnostic catalog endpoints: any up replica answers.
	anyUp := func(w http.ResponseWriter, r *http.Request) {
		for _, rep := range rt.replicas {
			if rep.up() {
				rt.forwardTo(w, r, rep)
				return
			}
		}
		rt.unavailable(w, rt.replicas[0])
	}
	mux.HandleFunc("GET /v1/losses", anyUp)
	mux.HandleFunc("GET /v1/accountants", anyUp)
	mux.HandleFunc("GET /v1/defaults", anyUp)

	return mux
}

// handleCreate mints the session id (or honors a caller-pinned one),
// injects it into the create body, and forwards to the id's owner — the
// step that makes every later request for the session routable by pure
// hashing.
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("route: reading create body: %w", err))
		return
	}
	params := map[string]any{}
	if len(bytes.TrimSpace(body)) > 0 {
		if err := json.Unmarshal(body, &params); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("route: decoding create body: %w", err))
			return
		}
	}
	var rep *replica
	if id, _ := params["id"].(string); id != "" {
		// A caller-pinned id routes like any other request for it; the
		// caller owns the consequence of pinning onto a down replica.
		rep = rt.owner(id)
	} else {
		var id string
		if id, rep, err = rt.newSessionID(); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		params["id"] = id
	}
	pinned, err := json.Marshal(params)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("route: encoding create body: %w", err))
		return
	}
	r.Header.Set("Content-Type", "application/json")
	rt.proxy(w, r, rep, pinned)
}

// handleList fans the session listing out to every up replica and merges,
// annotating each status with its replica. Down replicas are skipped —
// a partial listing with the reachable shards beats a failed one (their
// absence is visible in /healthz and pmwcm_route_replica_up).
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	var all []map[string]any
	for _, rep := range rt.replicas {
		if !rep.up() {
			continue
		}
		status, body, err := rt.do(r, rep, nil)
		if err != nil || status != http.StatusOK {
			continue
		}
		var doc struct {
			Sessions []map[string]any `json:"sessions"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			continue
		}
		for _, s := range doc.Sessions {
			s["replica"] = rep.name
			all = append(all, s)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, _ := all[i]["id"].(string)
		b, _ := all[j]["id"].(string)
		return a < b
	})
	writeJSON(w, http.StatusOK, map[string]any{"sessions": all})
}

// handleTranscript forwards to the pin, falling back to the shared blob
// store when the owner is down: the audit artifact must outlive any
// single replica.
func (rt *Router) handleTranscript(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rep := rt.owner(id)
	if rep.up() {
		status, body, err := rt.do(r, rep, nil)
		if err == nil {
			copyResponse(w, status, body)
			return
		}
	}
	rec, err := rt.storedTranscript(rep, id)
	if err != nil {
		rt.unavailable(w, rep)
		return
	}
	w.Header().Set("X-Pmwcm-Transcript-Source", "store")
	writeJSON(w, http.StatusOK, rec)
}

// forwardTo proxies the request (body re-read here) to rep.
func (rt *Router) forwardTo(w http.ResponseWriter, r *http.Request, rep *replica) {
	var body []byte
	if r.Body != nil {
		var err error
		if body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes)); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("route: reading request body: %w", err))
			return
		}
	}
	rt.proxy(w, r, rep, body)
}

// proxy is the single forwarding funnel: fail fast on a down replica,
// relay the response verbatim otherwise, and convert transport failures
// into the typed 503 after starting the cool-down.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, rep *replica, body []byte) {
	if !rep.up() {
		rt.unavailable(w, rep)
		return
	}
	status, respBody, err := rt.do(r, rep, body)
	if err != nil {
		rt.unavailable(w, rep)
		return
	}
	copyResponse(w, status, respBody)
}

// do executes one forwarded request against rep and classifies the
// outcome into the router metrics. A transport error marks rep down.
func (rt *Router) do(r *http.Request, rep *replica, body []byte) (int, []byte, error) {
	u := *rep.base
	u.Path = r.URL.Path
	u.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	start := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.markDown(rep)
		rt.met.request(rep.name, "error", time.Since(start).Seconds())
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyRespBytes))
	if err != nil {
		rt.markDown(rep)
		rt.met.request(rep.name, "error", time.Since(start).Seconds())
		return 0, nil, err
	}
	rt.met.request(rep.name, strconv.Itoa(resp.StatusCode/100)+"xx", time.Since(start).Seconds())
	return resp.StatusCode, respBody, nil
}

// unavailable is the typed replica-down reply: 503, Retry-After, and a
// body naming the shard so clients and the fleet CI can distinguish "your
// replica is down" from overload.
func (rt *Router) unavailable(w http.ResponseWriter, rep *replica) {
	w.Header().Set("Retry-After", strconv.Itoa(int((rt.retryAfter+time.Second-1)/time.Second)))
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":   fmt.Sprintf("route: replica %s unavailable", rep.name),
		"replica": rep.name,
	})
}

func copyResponse(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
