package route

// route_test.go drives the router end-to-end against real service
// managers (each over its own namespace of one shared blob store, as the
// fleet deploys them): placement determinism, create pinning, follow-the-
// pin forwarding, typed 503s with Retry-After for down replicas, the
// store-fallback transcript read, and the routing metrics.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/sample"
	"repro/internal/service"
	"repro/internal/universe"
)

// testFleet is a blob store plus N replicas behind one router.
type testFleet struct {
	router   http.Handler
	rt       *Router
	replicas map[string]*httptest.Server
	managers map[string]*service.Manager
	storeURL string
}

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := dataset.Skewed(g, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	return dataset.SampleFrom(sample.New(1), pop, 5000)
}

// seqIDSource replaces crypto randomness with a deterministic counter so
// placement-sensitive tests are reproducible.
func seqIDSource() func(n int) ([]byte, error) {
	var ctr uint64
	return func(n int) ([]byte, error) {
		ctr++
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(ctr >> (8 * (uint(n-1-i) % 8)))
		}
		return b, nil
	}
}

// newFleet stands up a shared blob store, n remote-backed replicas, and a
// router over them. Replica managers checkpoint every session into the
// store under their own namespace — exactly the -store-url deployment.
func newFleet(t *testing.T, n int, reg *obs.Registry) *testFleet {
	t.Helper()
	bs, err := persist.NewBlobServer(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	storeSrv := httptest.NewServer(bs.Handler())
	t.Cleanup(storeSrv.Close)

	f := &testFleet{
		replicas: map[string]*httptest.Server{},
		managers: map[string]*service.Manager{},
		storeURL: storeSrv.URL,
	}
	var reps []Replica
	data := testData(t)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("r%d", i+1)
		remote, err := persist.OpenRemote(storeSrv.URL+"/v1/stores/"+name, persist.RemoteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		mgr, err := service.New(service.Config{
			Data:     data,
			Source:   sample.New(int64(100 + i)),
			Defaults: service.SessionParams{Eps: 1, Delta: 1e-6, Alpha: 0.1, K: 30, TBudget: 6},
			Store:    remote,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(service.NewHandler(mgr))
		t.Cleanup(srv.Close)
		t.Cleanup(mgr.Shutdown)
		f.replicas[name] = srv
		f.managers[name] = mgr
		reps = append(reps, Replica{Name: name, URL: srv.URL})
	}
	rt, err := New(reps, Options{
		RetryAfter: 200 * time.Millisecond,
		CoolDown:   200 * time.Millisecond,
		StoreURL:   storeSrv.URL,
		Metrics:    reg,
		IDSource:   seqIDSource(),
	})
	if err != nil {
		t.Fatal(err)
	}
	f.rt = rt
	f.router = rt.Handler()
	return f
}

// doReq runs one request through the router handler and decodes the JSON
// reply into out (when non-nil).
func doReq(t *testing.T, h http.Handler, method, path string, body any, out any) (*httptest.ResponseRecorder, int) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, path, rd)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code < 500 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec, rec.Code
}

func TestParseReplicas(t *testing.T) {
	reps, err := ParseReplicas("r1=http://h1:8787, r2=http://h2:8787")
	if err != nil || len(reps) != 2 || reps[0].Name != "r1" || reps[1].URL != "http://h2:8787" {
		t.Fatalf("parse: %v %+v", err, reps)
	}
	for _, bad := range []string{"", "r1", "=http://h", "r1=", "r1=:junk", "r1=http://h,r1=http://h2", "a/b=http://h"} {
		if _, err := ParseReplicas(bad); err == nil {
			t.Errorf("spec %q was accepted", bad)
		}
	}
}

// TestRingPlacement pins the placement function: deterministic across
// router instances (the stateless-restart property) and non-degenerate
// (every replica owns a meaningful shard).
func TestRingPlacement(t *testing.T) {
	reps := []Replica{
		{Name: "r1", URL: "http://h1:1"},
		{Name: "r2", URL: "http://h2:1"},
		{Name: "r3", URL: "http://h3:1"},
	}
	a, err := New(reps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(reps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		id := fmt.Sprintf("rt-%012x", i)
		oa, ob := a.owner(id), b.owner(id)
		if oa.name != ob.name {
			t.Fatalf("id %s: router A places on %s, router B on %s", id, oa.name, ob.name)
		}
		counts[oa.name]++
	}
	for _, r := range reps {
		if counts[r.Name] < 300 {
			t.Fatalf("degenerate ring: shard sizes %v", counts)
		}
	}
}

// TestRouterEndToEnd drives a session's whole life through the router:
// create (router-minted id), placement debug, query, status, list,
// transcript, close — each request landing on the session's pinned
// replica.
func TestRouterEndToEnd(t *testing.T) {
	f := newFleet(t, 3, nil)

	var created struct {
		ID string `json:"id"`
	}
	if _, code := doReq(t, f.router, "POST", "/v1/sessions", nil, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if !strings.HasPrefix(created.ID, "rt-") || len(created.ID) != len("rt-")+12 {
		t.Fatalf("router-minted id %q", created.ID)
	}

	var place struct {
		Replica string `json:"replica"`
		Up      bool   `json:"up"`
	}
	if _, code := doReq(t, f.router, "GET", "/v1/route/"+created.ID, nil, &place); code != 200 || !place.Up {
		t.Fatalf("route debug: %d %+v", code, place)
	}
	if f.managers[place.Replica] == nil {
		t.Fatalf("unknown owner %q", place.Replica)
	}
	if got := f.managers[place.Replica].OpenSessions(); got != 1 {
		t.Fatalf("owner %s reports %d open sessions, want 1", place.Replica, got)
	}

	spec := map[string]any{"kind": "positive", "params": map[string]any{"coord": 0}}
	var qres struct {
		Answer []float64 `json:"answer"`
	}
	if _, code := doReq(t, f.router, "POST", "/v1/sessions/"+created.ID+"/query", spec, &qres); code != 200 {
		t.Fatalf("query via router: status %d", code)
	}
	if len(qres.Answer) == 0 {
		t.Fatal("query via router: empty answer")
	}

	var status struct {
		QueriesUsed int `json:"queries_used"`
	}
	if _, code := doReq(t, f.router, "GET", "/v1/sessions/"+created.ID, nil, &status); code != 200 || status.QueriesUsed != 1 {
		t.Fatalf("status via router: %d %+v", code, status)
	}

	var listing struct {
		Sessions []map[string]any `json:"sessions"`
	}
	if _, code := doReq(t, f.router, "GET", "/v1/sessions", nil, &listing); code != 200 {
		t.Fatalf("list via router: %d", code)
	}
	if len(listing.Sessions) != 1 || listing.Sessions[0]["replica"] != place.Replica {
		t.Fatalf("merged listing %+v, want one session annotated with %s", listing.Sessions, place.Replica)
	}

	var tr struct {
		ID   string `json:"id"`
		Tops int    `json:"tops"`
	}
	if _, code := doReq(t, f.router, "GET", "/v1/sessions/"+created.ID+"/transcript", nil, &tr); code != 200 || tr.ID != created.ID {
		t.Fatalf("transcript via router: %d %+v", code, tr)
	}

	if _, code := doReq(t, f.router, "DELETE", "/v1/sessions/"+created.ID, nil, nil); code != 200 {
		t.Fatalf("close via router: %d", code)
	}
	if got := f.managers[place.Replica].OpenSessions(); got != 0 {
		t.Fatalf("owner still reports %d open sessions after close", got)
	}
}

// TestRouterPinnedCreate: a caller-supplied id is honored and placed by
// the same hash every component agrees on.
func TestRouterPinnedCreate(t *testing.T) {
	f := newFleet(t, 3, nil)
	var created struct {
		ID string `json:"id"`
	}
	if _, code := doReq(t, f.router, "POST", "/v1/sessions", map[string]any{"id": "my-pinned-id"}, &created); code != http.StatusCreated {
		t.Fatalf("pinned create: status %d", code)
	}
	if created.ID != "my-pinned-id" {
		t.Fatalf("created id %q, want the pinned one", created.ID)
	}
	owner := f.rt.owner("my-pinned-id").name
	if got := f.managers[owner].OpenSessions(); got != 1 {
		t.Fatalf("hash owner %s reports %d sessions", owner, got)
	}
	// A duplicate pinned create surfaces the replica's 409 verbatim.
	if rec, code := doReq(t, f.router, "POST", "/v1/sessions", map[string]any{"id": "my-pinned-id"}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate pinned create: %d %s", code, rec.Body.String())
	}
}

// TestRouterDownReplica is the failure-domain contract: killing one
// replica 503s exactly its shard (typed body + Retry-After), leaves other
// shards serving, routes new sessions around the hole, and keeps the dead
// shard's transcripts readable from the shared store.
func TestRouterDownReplica(t *testing.T) {
	reg := obs.NewRegistry()
	f := newFleet(t, 3, reg)

	// One session per shard, each with one answered query so transcripts
	// are non-trivial, plus a checkpoint (the remote backend checkpoints
	// on create and on ⊤ answers; a forced snapshot pins the final state
	// regardless of the ⊥/⊤ pattern).
	shardSession := map[string]string{}
	for len(shardSession) < 3 {
		var created struct {
			ID string `json:"id"`
		}
		if _, code := doReq(t, f.router, "POST", "/v1/sessions", nil, &created); code != http.StatusCreated {
			t.Fatalf("create: %d", code)
		}
		spec := map[string]any{"kind": "positive", "params": map[string]any{"coord": 0}}
		if _, code := doReq(t, f.router, "POST", "/v1/sessions/"+created.ID+"/query", spec, nil); code != 200 {
			t.Fatalf("query: %d", code)
		}
		if _, code := doReq(t, f.router, "POST", "/v1/sessions/"+created.ID+"/snapshot", nil, nil); code != 200 {
			t.Fatalf("snapshot: %d", code)
		}
		shardSession[f.rt.owner(created.ID).name] = created.ID
	}

	// Kill r2 the hard way.
	victim := "r2"
	f.replicas[victim].Close()

	// Its shard fails with the typed 503 and Retry-After…
	deadID := shardSession[victim]
	rec, code := doReq(t, f.router, "GET", "/v1/sessions/"+deadID, nil, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("dead shard status: %d, want 503", code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var e struct {
		Error   string `json:"error"`
		Replica string `json:"replica"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Replica != victim || !strings.Contains(e.Error, victim) {
		t.Fatalf("503 body %s, want typed error naming %s", rec.Body.String(), victim)
	}
	// …and the cool-down fails fast without re-dialing.
	if _, code := doReq(t, f.router, "GET", "/v1/sessions/"+deadID, nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("cooled-down shard status: %d, want 503", code)
	}

	// Other shards are untouched.
	for name, id := range shardSession {
		if name == victim {
			continue
		}
		if _, code := doReq(t, f.router, "GET", "/v1/sessions/"+id, nil, nil); code != 200 {
			t.Fatalf("live shard %s: status %d", name, code)
		}
	}

	// New sessions avoid the dead shard (placement stays honest: every
	// minted id's *hash* owner is an up replica).
	for i := 0; i < 20; i++ {
		var created struct {
			ID string `json:"id"`
		}
		if _, code := doReq(t, f.router, "POST", "/v1/sessions", nil, &created); code != http.StatusCreated {
			t.Fatalf("create during outage: %d", code)
		}
		if owner := f.rt.owner(created.ID).name; owner == victim {
			t.Fatalf("new session %s landed on the dead replica", created.ID)
		}
	}

	// The dead shard's transcript is still readable — served from the
	// session's last checkpoint in the shared blob store.
	var tr struct {
		ID       string  `json:"id"`
		Tops     int     `json:"tops"`
		EpsBound float64 `json:"eps_bound"`
	}
	rec, code = doReq(t, f.router, "GET", "/v1/sessions/"+deadID+"/transcript", nil, &tr)
	if code != 200 {
		t.Fatalf("store-fallback transcript: %d %s", code, rec.Body.String())
	}
	if rec.Header().Get("X-Pmwcm-Transcript-Source") != "store" {
		t.Fatal("fallback transcript not marked as store-served")
	}
	if tr.ID != deadID || tr.EpsBound <= 0 {
		t.Fatalf("fallback transcript %+v", tr)
	}

	// Metrics: the victim's up-gauge reads 0, the others 1, and error
	// requests were counted against the victim.
	up := map[string]float64{}
	var errReqs float64
	for _, fam := range reg.Snapshot() {
		for _, s := range fam.Samples {
			switch fam.Name {
			case "pmwcm_route_replica_up":
				up[s.Labels["replica"]] = s.Value
			case "pmwcm_route_requests_total":
				if s.Labels["replica"] == victim && s.Labels["class"] == "error" {
					errReqs = s.Value
				}
			}
		}
	}
	if up[victim] != 0 || up["r1"] != 1 || up["r3"] != 1 {
		t.Fatalf("replica_up gauges %v", up)
	}
	if errReqs == 0 {
		t.Fatal("no transport errors counted against the dead replica")
	}
}

// TestRouterCatalogAndHealth covers the replica-agnostic endpoints and
// the router's own health surface.
func TestRouterCatalogAndHealth(t *testing.T) {
	f := newFleet(t, 2, nil)
	var losses struct {
		Kinds []string `json:"kinds"`
	}
	if _, code := doReq(t, f.router, "GET", "/v1/losses", nil, &losses); code != 200 || len(losses.Kinds) == 0 {
		t.Fatalf("losses via router: %d %+v", code, losses)
	}
	var health struct {
		OK         bool             `json:"ok"`
		Role       string           `json:"role"`
		Replicas   []map[string]any `json:"replicas"`
		ReplicasUp int              `json:"replicas_up"`
	}
	if _, code := doReq(t, f.router, "GET", "/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	if !health.OK || health.Role != "router" || len(health.Replicas) != 2 || health.ReplicasUp != 2 {
		t.Fatalf("healthz %+v", health)
	}
}
