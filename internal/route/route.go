// Package route is the fleet front door: a consistent-hashing session
// router over a set of `pmwcm serve` replicas.
//
// Sessions are sticky by construction, not by bookkeeping: a session id
// hashes onto a replica through a fixed virtual-node ring, so every node
// that knows the replica set — the router, a second router, an operator
// with `pmwcm route`'s /v1/route/{id} debug endpoint — independently
// agrees where a session lives. Creates pin the placement by minting the
// id *before* forwarding (or honoring a caller-pinned one); queries,
// status reads, snapshots, and closes follow the pin; transcripts are
// special-cased to stay readable even while the owning replica is down,
// by falling back to the session's last checkpoint in the shared blob
// store (the fleet runs replicas with -store-url, so a checkpoint is
// always one GET away).
//
// Health is passive: the router never probes. A transport failure marks
// the replica down for a cool-down window, during which requests pinned
// to it fail fast with a typed 503 carrying Retry-After; requests pinned
// to other replicas are unaffected — the failure domain of one replica is
// exactly its hash shard. New sessions route around down replicas by
// rejection-sampling the minted id.
package route

import (
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mech"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/service"
)

// VNodes is the number of ring positions per replica. 128 keeps the
// largest/smallest shard ratio small (≈1.3 at 3 replicas) while the ring
// stays a few KiB.
const VNodes = 128

// Replica names one serve backend.
type Replica struct {
	// Name is the replica's stable identity: its hash-ring key and — in a
	// -store-url fleet — its namespace in the shared blob store. Renaming
	// a replica remaps its shard.
	Name string
	// URL is the replica's base URL (scheme://host:port).
	URL string
}

// ParseReplicas parses the -replicas flag syntax:
// "r1=http://h1:8787,r2=http://h2:8787".
func ParseReplicas(spec string) ([]Replica, error) {
	var reps []Replica
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rawu, ok := strings.Cut(part, "=")
		if !ok || name == "" || rawu == "" {
			return nil, fmt.Errorf("route: replica %q: want name=url", part)
		}
		if err := persist.ValidateID(name); err != nil {
			return nil, fmt.Errorf("route: replica name %q: %w", name, err)
		}
		if seen[name] {
			return nil, fmt.Errorf("route: duplicate replica name %q", name)
		}
		seen[name] = true
		u, err := url.Parse(rawu)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("route: replica %s: invalid url %q", name, rawu)
		}
		reps = append(reps, Replica{Name: name, URL: rawu})
	}
	if len(reps) == 0 {
		return nil, fmt.Errorf("route: no replicas configured")
	}
	return reps, nil
}

// Options tune a Router.
type Options struct {
	// Client overrides the forwarding HTTP client (tests); nil builds one
	// with Timeout.
	Client *http.Client
	// Timeout bounds each forwarded request (0 = 15s). Queries can take
	// real mechanism work, so this is generous by default.
	Timeout time.Duration
	// RetryAfter is the Retry-After value on typed 503s (0 = 2s).
	RetryAfter time.Duration
	// CoolDown is how long a transport failure keeps a replica marked
	// down before the next pinned request probes it again (0 = 2s).
	CoolDown time.Duration
	// StoreURL is the shared blob store base (a `pmwcm store` endpoint,
	// e.g. http://host:9099). When set, transcripts of sessions on down
	// replicas are served from the session's last checkpoint.
	StoreURL string
	// Metrics registers pmwcm_route_* instruments when non-nil.
	Metrics *obs.Registry
	// IDSource overrides random id generation (tests); it must return n
	// random bytes. Nil uses crypto/rand.
	IDSource func(n int) ([]byte, error)
}

// replica is one backend plus its passive-health state.
type replica struct {
	name string
	base *url.URL
	// downUntil is the unix-nano deadline of the current cool-down; zero
	// or past means up. Written on transport failures, read lock-free on
	// every pinned request.
	downUntil atomic.Int64
}

func (rep *replica) up() bool {
	d := rep.downUntil.Load()
	return d == 0 || time.Now().UnixNano() >= d
}

// ringEntry is one virtual node: a hash position owned by a replica.
type ringEntry struct {
	h   uint64
	idx int
}

// routeMetrics are the router's instruments (all nil-safe no-ops when
// metrics are off).
type routeMetrics struct {
	reg     *obs.Registry
	latency *obs.Histogram
}

func (m *routeMetrics) request(replica, class string, seconds float64) {
	if m == nil || m.reg == nil {
		return
	}
	m.reg.Counter("pmwcm_route_requests_total",
		"Requests forwarded through the router, by replica and status class (error = transport failure).",
		obs.Labels{"replica": replica, "class": class}).Inc()
	m.latency.Observe(seconds)
}

// Router is the consistent-hashing front door. All methods are safe for
// concurrent use.
type Router struct {
	replicas   []*replica
	ring       []ringEntry
	client     *http.Client
	retryAfter time.Duration
	coolDown   time.Duration
	storeURL   string
	met        *routeMetrics
	randBytes  func(n int) ([]byte, error)
	started    time.Time

	// stores lazily caches one persist.Remote per replica namespace for
	// the transcript fallback (nil storeURL leaves it empty).
	storeMu sync.Mutex
	stores  map[string]*persist.Remote
}

// New builds a Router over the replica set.
func New(reps []Replica, opts Options) (*Router, error) {
	if len(reps) == 0 {
		return nil, fmt.Errorf("route: no replicas configured")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 15 * time.Second
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = 2 * time.Second
	}
	if opts.CoolDown <= 0 {
		opts.CoolDown = 2 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: opts.Timeout}
	}
	rt := &Router{
		client:     client,
		retryAfter: opts.RetryAfter,
		coolDown:   opts.CoolDown,
		storeURL:   strings.TrimRight(opts.StoreURL, "/"),
		randBytes:  opts.IDSource,
		started:    time.Now(),
		stores:     map[string]*persist.Remote{},
	}
	if rt.randBytes == nil {
		rt.randBytes = cryptoRandBytes
	}
	for i, r := range reps {
		u, err := url.Parse(r.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("route: replica %s: invalid url %q", r.Name, r.URL)
		}
		rt.replicas = append(rt.replicas, &replica{name: r.Name, base: u})
		for v := 0; v < VNodes; v++ {
			rt.ring = append(rt.ring, ringEntry{h: hash64(r.Name + "#" + strconv.Itoa(v)), idx: i})
		}
	}
	sort.Slice(rt.ring, func(i, j int) bool { return rt.ring[i].h < rt.ring[j].h })
	if opts.Metrics != nil {
		rt.met = &routeMetrics{
			reg: opts.Metrics,
			latency: opts.Metrics.Histogram("pmwcm_route_proxy_seconds",
				"Router-observed latency of forwarded requests.", obs.DefBuckets, nil),
		}
		opts.Metrics.RegisterCollector(rt.collect)
	}
	return rt, nil
}

// collect emits the per-replica up/down gauge at scrape time.
func (rt *Router) collect(emit func(obs.Sample)) {
	for _, rep := range rt.replicas {
		v := 0.0
		if rep.up() {
			v = 1
		}
		emit(obs.Sample{Name: "pmwcm_route_replica_up",
			Help:   "1 when the replica accepted its last forwarded request (passive health), 0 during a failure cool-down.",
			Labels: obs.Labels{"replica": rep.name}, Value: v})
	}
}

// hash64 is the ring hash: FNV-1a finished with an avalanche mixer.
// FNV-1a alone leaves sequential inputs ("user-1", "user-2", …) on a
// lattice that can starve whole replicas of their shard; the splitmix64
// finalizer spreads structured caller-pinned ids evenly over the ring.
// Collision resistance is irrelevant here — placement is public.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// owner maps a session id to its replica via the ring.
func (rt *Router) owner(id string) *replica {
	h := hash64(id)
	i := sort.Search(len(rt.ring), func(i int) bool { return rt.ring[i].h >= h })
	if i == len(rt.ring) {
		i = 0
	}
	return rt.replicas[rt.ring[i].idx]
}

// cryptoRandBytes is the production id entropy source.
func cryptoRandBytes(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := crand.Read(b); err != nil {
		return nil, err
	}
	return b, nil
}

// newSessionID mints a router-owned session id ("rt-" + 12 hex chars)
// whose owner is currently up, by rejection sampling: placement must stay
// pure ring-hashing (anyone can recompute it), so the router searches ids
// rather than overriding owners. With any replica up, a draw lands on an
// up shard with probability ≥ 1/len(replicas); 128 tries make a full miss
// astronomically unlikely. When every replica is down the last candidate
// is returned anyway — the forward will produce the typed 503.
func (rt *Router) newSessionID() (string, *replica, error) {
	var id string
	var rep *replica
	for try := 0; try < 128; try++ {
		b, err := rt.randBytes(6)
		if err != nil {
			return "", nil, fmt.Errorf("route: minting session id: %w", err)
		}
		id = "rt-" + hex.EncodeToString(b)
		rep = rt.owner(id)
		if rep.up() {
			return id, rep, nil
		}
	}
	return id, rep, nil
}

// markDown starts rep's failure cool-down.
func (rt *Router) markDown(rep *replica) {
	rep.downUntil.Store(time.Now().Add(rt.coolDown).UnixNano())
}

// storeFor lazily opens the blob-store namespace holding rep's
// checkpoints ("" StoreURL disables the fallback entirely).
func (rt *Router) storeFor(rep *replica) (*persist.Remote, error) {
	if rt.storeURL == "" {
		return nil, fmt.Errorf("route: no -store-url configured, transcript fallback unavailable")
	}
	rt.storeMu.Lock()
	defer rt.storeMu.Unlock()
	if r := rt.stores[rep.name]; r != nil {
		return r, nil
	}
	r, err := persist.OpenRemote(rt.storeURL+"/v1/stores/"+rep.name, persist.RemoteOptions{Client: rt.client})
	if err != nil {
		return nil, err
	}
	rt.stores[rep.name] = r
	return r, nil
}

// storedTranscript rebuilds a session's transcript record from its last
// checkpoint in the shared store — the read path that keeps audits
// available while the owning replica is down. The budget bounds are
// recomputed by replaying the recorded ⊤ spends through a fresh
// accountant, exactly as the service's recovery verification does, so the
// record matches what the replica itself would have served at its last
// checkpoint.
func (rt *Router) storedTranscript(rep *replica, id string) (*service.TranscriptRecord, error) {
	store, err := rt.storeFor(rep)
	if err != nil {
		return nil, err
	}
	st, err := store.LoadSession(id)
	if err != nil {
		return nil, err
	}
	var p service.SessionParams
	if err := json.Unmarshal(st.Params, &p); err != nil {
		return nil, fmt.Errorf("route: session %s params: %w", id, err)
	}
	eps, delta := st.Transcript.SpentOracle()
	rec := &service.TranscriptRecord{
		ID:         st.ID,
		Transcript: st.Transcript,
		Tops:       st.Transcript.Tops(),
		CumEps:     eps,
		CumDelta:   delta,
	}
	acct, err := mech.NewAccountant(p.Accountant, mech.Params{Eps: p.Eps, Delta: p.Delta}, p.AccountantParams)
	if err != nil {
		return nil, fmt.Errorf("route: session %s accountant: %w", id, err)
	}
	if err := acct.Reserve(mech.Params{Eps: p.Eps / 2, Delta: p.Delta / 2}); err != nil {
		return nil, fmt.Errorf("route: session %s reservation: %w", id, err)
	}
	for _, ev := range st.Transcript.Events {
		if !ev.Top {
			continue
		}
		if err := acct.Spend(mech.Cost{Eps: ev.EpsSpent, Delta: ev.DeltaSpent, Rho: ev.RhoSpent}); err != nil {
			return nil, fmt.Errorf("route: session %s: replaying spend %d: %w", id, ev.Index, err)
		}
	}
	tot := acct.Total()
	rec.EpsBound, rec.DeltaBound = tot.Eps, tot.Delta
	return rec, nil
}

// Replicas reports each replica's name, URL, and passive-health state —
// the /healthz payload.
func (rt *Router) Replicas() []map[string]any {
	out := make([]map[string]any, 0, len(rt.replicas))
	for _, rep := range rt.replicas {
		out = append(out, map[string]any{
			"name": rep.name,
			"url":  rep.base.String(),
			"up":   rep.up(),
		})
	}
	return out
}
