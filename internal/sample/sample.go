// Package sample centralizes all randomness used by the library.
//
// Differentially private mechanisms are only as trustworthy as their noise,
// and experiments are only as trustworthy as their reproducibility, so every
// consumer draws from a Source constructed from an explicit seed. A Source
// wraps math/rand and adds the non-uniform samplers the mechanisms need:
// Laplace (the workhorse of pure-DP noise addition), Gaussian, Gumbel (for
// exponential-mechanism sampling via the Gumbel-max trick), and exponential.
//
// A Source's position in its stream is serializable: State captures
// (seed, draws) and FromState replays the generator to the same position,
// so a snapshotted mechanism resumes with bit-identical noise (the
// persistence layer in internal/persist depends on this).
package sample

import (
	"fmt"
	"math"
	"math/rand"
)

// countingSource wraps the standard math/rand generator and counts the
// low-level Int63 draws consumed, making the stream position serializable.
// It deliberately implements only rand.Source (not Source64): rand.Rand's
// Uint64 fallback for plain Sources is the same two-Int63 expression the
// runtime generator's own Uint64 uses, so every variate is bit-identical
// to rand.New(rand.NewSource(seed)) while each draw passes through (and is
// counted by) Int63.
type countingSource struct {
	src   rand.Source
	draws uint64
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// Source is a seeded stream of random variates. It is not safe for
// concurrent use; callers that parallelize must Split first.
type Source struct {
	rng  *rand.Rand
	seed int64
	cnt  *countingSource
}

// New returns a Source seeded with the given value. Equal seeds yield equal
// streams.
func New(seed int64) *Source {
	cnt := &countingSource{src: rand.NewSource(seed)}
	return &Source{rng: rand.New(cnt), seed: seed, cnt: cnt}
}

// State is a serializable snapshot of a Source's position in its stream:
// the seed it was constructed with and the number of low-level draws
// consumed so far. FromState(s.State()) continues s's stream exactly.
type State struct {
	Seed  int64  `json:"seed"`
	Draws uint64 `json:"draws"`
}

// State returns the Source's current stream position.
func (s *Source) State() State {
	return State{Seed: s.seed, Draws: s.cnt.draws}
}

// MaxReplayDraws bounds the stream position FromState will replay. States
// come from files, and replay is O(Draws), so an unchecked corrupt or
// tampered count could hang recovery indefinitely. The bound is far above
// any position a legitimate session reaches (a ⊤ answer draws on the order
// of oracle-iterations × dimension variates, and sessions are capped at
// 100000 queries) while capping worst-case replay at well under a minute.
const MaxReplayDraws = 1 << 34

// FromState reconstructs a Source at the given stream position by
// re-seeding and replaying the recorded number of draws. The cost is
// O(Draws), which for the mechanisms here (a handful of noise draws per
// released answer) is negligible next to a single universe sweep. Positions
// beyond MaxReplayDraws are refused as corrupt.
func FromState(st State) (*Source, error) {
	if st.Draws > MaxReplayDraws {
		return nil, fmt.Errorf("sample: state position %d exceeds the replay bound %d (corrupt state?)", st.Draws, uint64(MaxReplayDraws))
	}
	s := New(st.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		s.cnt.src.Int63()
	}
	s.cnt.draws = st.Draws
	return s, nil
}

// Split derives an independent child Source. The child's stream is a
// deterministic function of the parent's state, so a fixed top-level seed
// still pins down the entire experiment.
func (s *Source) Split() *Source {
	return New(s.rng.Int63())
}

// Float64 returns a uniform variate in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Perm returns a uniform random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Normal returns a standard normal variate.
func (s *Source) Normal() float64 { return s.rng.NormFloat64() }

// Gaussian returns a normal variate with the given mean and standard
// deviation sigma. sigma must be >= 0.
func (s *Source) Gaussian(mean, sigma float64) float64 {
	return mean + sigma*s.rng.NormFloat64()
}

// Laplace returns a Laplace variate with mean 0 and scale b, i.e. density
// (1/2b)·exp(−|x|/b). Scale b must be > 0; b = 0 returns 0 exactly (the
// degenerate noiseless case, used to express non-private baselines).
func (s *Source) Laplace(b float64) float64 {
	if b == 0 {
		return 0
	}
	// Inverse-CDF sampling from u ∈ (−1/2, 1/2).
	u := s.rng.Float64() - 0.5
	if u < 0 {
		return b * math.Log(1+2*u)
	}
	return -b * math.Log(1-2*u)
}

// Exponential returns an exponential variate with mean m (rate 1/m).
func (s *Source) Exponential(m float64) float64 {
	return m * s.rng.ExpFloat64()
}

// Gumbel returns a standard Gumbel variate with scale beta. Adding
// independent Gumbel(β) noise to score/β... more precisely, argmaxᵢ
// (scoreᵢ + Gumbel(β)) samples i with probability ∝ exp(scoreᵢ/β), which is
// exactly the exponential mechanism's distribution. This "Gumbel-max trick"
// is how mech.Exponential is implemented.
func (s *Source) Gumbel(beta float64) float64 {
	// −β·log(−log U), U uniform in (0,1). Guard U = 0.
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	return -beta * math.Log(-math.Log(u))
}

// LaplaceVec returns a vector of n i.i.d. Laplace(b) variates.
func (s *Source) LaplaceVec(n int, b float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Laplace(b)
	}
	return out
}

// GaussianVec returns a vector of n i.i.d. N(0, sigma²) variates.
func (s *Source) GaussianVec(n int, sigma float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Gaussian(0, sigma)
	}
	return out
}

// UnitVec returns a uniform random point on the unit sphere in R^d.
func (s *Source) UnitVec(d int) []float64 {
	v := make([]float64, d)
	for {
		var norm2 float64
		for i := range v {
			v[i] = s.rng.NormFloat64()
			norm2 += v[i] * v[i]
		}
		if norm2 > 0 {
			n := math.Sqrt(norm2)
			for i := range v {
				v[i] /= n
			}
			return v
		}
	}
}

// BallVec returns a uniform random point in the ball of radius r in R^d.
func (s *Source) BallVec(d int, r float64) []float64 {
	v := s.UnitVec(d)
	// Radius ~ r · U^{1/d} gives uniform volume measure.
	scale := r * math.Pow(s.rng.Float64(), 1/float64(d))
	for i := range v {
		v[i] *= scale
	}
	return v
}

// Categorical samples an index from the (unnormalized, non-negative) weight
// vector w. It panics if all weights are zero or any is negative: callers
// own weight validity.
func (s *Source) Categorical(w []float64) int {
	var total float64
	for _, v := range w {
		if v < 0 || math.IsNaN(v) {
			panic("sample: Categorical weight negative or NaN")
		}
		total += v
	}
	if total <= 0 {
		panic("sample: Categorical weights sum to zero")
	}
	u := s.rng.Float64() * total
	var cum float64
	for i, v := range w {
		cum += v
		if u < cum {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] > 0 {
			return i
		}
	}
	return len(w) - 1
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rng.Float64() < p
}
