package sample

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("equal seeds diverged")
		}
	}
	if New(1).Float64() == New(2).Float64() {
		t.Error("different seeds produced identical first draw (suspicious)")
	}
}

func TestSplitIndependentButDeterministic(t *testing.T) {
	a := New(7)
	b := New(7)
	ca := a.Split()
	cb := b.Split()
	for i := 0; i < 50; i++ {
		if ca.Float64() != cb.Float64() {
			t.Fatal("split children of equal parents diverged")
		}
	}
	// Parent stream continues after split, still deterministically.
	if a.Float64() != b.Float64() {
		t.Fatal("parent streams diverged after split")
	}
}

// moments estimates mean and variance of n draws.
func moments(n int, draw func() float64) (mean, variance float64) {
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := draw()
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return
}

func TestLaplaceMoments(t *testing.T) {
	s := New(1)
	b := 2.0
	mean, variance := moments(200000, func() float64 { return s.Laplace(b) })
	if math.Abs(mean) > 0.05 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	// Var = 2b² = 8.
	if math.Abs(variance-8) > 0.3 {
		t.Errorf("Laplace variance = %v, want ~8", variance)
	}
}

func TestLaplaceZeroScale(t *testing.T) {
	s := New(1)
	for i := 0; i < 10; i++ {
		if s.Laplace(0) != 0 {
			t.Fatal("Laplace(0) must be exactly 0")
		}
	}
}

func TestLaplaceTailSymmetry(t *testing.T) {
	s := New(3)
	n := 100000
	var pos, neg int
	for i := 0; i < n; i++ {
		if s.Laplace(1) > 0 {
			pos++
		} else {
			neg++
		}
	}
	ratio := float64(pos) / float64(n)
	if math.Abs(ratio-0.5) > 0.01 {
		t.Errorf("Laplace sign ratio = %v, want ~0.5", ratio)
	}
}

func TestGaussianMoments(t *testing.T) {
	s := New(2)
	mean, variance := moments(200000, func() float64 { return s.Gaussian(3, 2) })
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("Gaussian mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("Gaussian variance = %v, want ~4", variance)
	}
}

func TestExponentialMoments(t *testing.T) {
	s := New(4)
	mean, _ := moments(200000, func() float64 { return s.Exponential(3) })
	if math.Abs(mean-3) > 0.1 {
		t.Errorf("Exponential mean = %v, want ~3", mean)
	}
}

func TestGumbelMaxTrick(t *testing.T) {
	// argmax(score_i + Gumbel(beta)) should sample i w.p. ∝ exp(score_i/beta).
	s := New(5)
	scores := []float64{0, math.Log(2), math.Log(4)} // beta=1 → probs 1/7, 2/7, 4/7
	counts := make([]int, 3)
	n := 140000
	for trial := 0; trial < n; trial++ {
		best, idx := math.Inf(-1), 0
		for i, sc := range scores {
			if v := sc + s.Gumbel(1); v > best {
				best, idx = v, i
			}
		}
		counts[idx]++
	}
	want := []float64{1.0 / 7, 2.0 / 7, 4.0 / 7}
	for i, c := range counts {
		got := float64(c) / float64(n)
		if math.Abs(got-want[i]) > 0.01 {
			t.Errorf("Gumbel-max P(%d) = %v, want %v", i, got, want[i])
		}
	}
}

func TestUnitVec(t *testing.T) {
	s := New(6)
	for i := 0; i < 100; i++ {
		v := s.UnitVec(5)
		var n2 float64
		for _, x := range v {
			n2 += x * x
		}
		if math.Abs(n2-1) > 1e-9 {
			t.Fatalf("UnitVec norm² = %v", n2)
		}
	}
}

func TestBallVec(t *testing.T) {
	s := New(7)
	for i := 0; i < 200; i++ {
		v := s.BallVec(3, 2)
		var n2 float64
		for _, x := range v {
			n2 += x * x
		}
		if n2 > 4+1e-9 {
			t.Fatalf("BallVec outside radius: ‖v‖² = %v", n2)
		}
	}
}

func TestCategorical(t *testing.T) {
	s := New(8)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	n := 80000
	for i := 0; i < n; i++ {
		counts[s.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[1])
	}
	got := float64(counts[2]) / float64(n)
	if math.Abs(got-0.75) > 0.01 {
		t.Errorf("P(2) = %v, want 0.75", got)
	}
}

func TestCategoricalPanics(t *testing.T) {
	s := New(9)
	for _, w := range [][]float64{{0, 0}, {-1, 2}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) did not panic", w)
				}
			}()
			s.Categorical(w)
		}()
	}
}

func TestBernoulli(t *testing.T) {
	s := New(10)
	if s.Bernoulli(0) || !s.Bernoulli(1) {
		t.Fatal("Bernoulli extremes wrong")
	}
	n := 100000
	var hits int
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if got := float64(hits) / float64(n); math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", got)
	}
}

// The Laplace distribution's defining DP property: for |Δ| ≤ sensitivity,
// density ratio at any point is bounded by exp(Δ/b). Verify empirically by
// histogramming two shifted samples.
func TestLaplaceDensityRatio(t *testing.T) {
	s := New(11)
	b := 1.0
	shift := 1.0 // sensitivity
	n := 400000
	bins := 40
	lo, hi := -5.0, 5.0
	width := (hi - lo) / float64(bins)
	h0 := make([]float64, bins)
	h1 := make([]float64, bins)
	for i := 0; i < n; i++ {
		x0 := s.Laplace(b)
		x1 := shift + s.Laplace(b)
		if x0 >= lo && x0 < hi {
			h0[int((x0-lo)/width)]++
		}
		if x1 >= lo && x1 < hi {
			h1[int((x1-lo)/width)]++
		}
	}
	eps := shift / b
	slackFactor := 1.25 // statistical tolerance
	for i := 0; i < bins; i++ {
		if h0[i] < 500 || h1[i] < 500 {
			continue // too few samples for a stable ratio
		}
		ratio := h0[i] / h1[i]
		if ratio > math.Exp(eps)*slackFactor || ratio < math.Exp(-eps)/slackFactor {
			t.Errorf("bin %d density ratio %v outside e^±%v", i, ratio, eps)
		}
	}
}
