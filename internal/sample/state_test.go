package sample

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// TestStreamMatchesStdlib pins the load-bearing property of countingSource:
// wrapping the runtime generator must not change any variate, or every
// seeded experiment and golden test in the repo silently shifts.
func TestStreamMatchesStdlib(t *testing.T) {
	s := New(42)
	ref := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		switch i % 6 {
		case 0:
			if got, want := s.Float64(), ref.Float64(); got != want {
				t.Fatalf("draw %d: Float64 %v != stdlib %v", i, got, want)
			}
		case 1:
			if got, want := s.Int63(), ref.Int63(); got != want {
				t.Fatalf("draw %d: Int63 %v != stdlib %v", i, got, want)
			}
		case 2:
			if got, want := s.Normal(), ref.NormFloat64(); got != want {
				t.Fatalf("draw %d: Normal %v != stdlib %v", i, got, want)
			}
		case 3:
			if got, want := s.Intn(1000), ref.Intn(1000); got != want {
				t.Fatalf("draw %d: Intn %v != stdlib %v", i, got, want)
			}
		case 4:
			if got, want := s.Exponential(1), ref.ExpFloat64(); got != want {
				t.Fatalf("draw %d: Exponential %v != stdlib %v", i, got, want)
			}
		case 5:
			p, q := s.Perm(10), ref.Perm(10)
			for j := range p {
				if p[j] != q[j] {
					t.Fatalf("draw %d: Perm %v != stdlib %v", i, p, q)
				}
			}
		}
	}
}

// TestStateRoundTrip checks FromState continues a stream bit-identically,
// across every sampler, including through a JSON round trip of the state.
func TestStateRoundTrip(t *testing.T) {
	s := New(7)
	// Burn a mixed prefix so the position is nontrivial.
	for i := 0; i < 137; i++ {
		s.Laplace(1.5)
		s.Gaussian(0, 2)
		s.Gumbel(1)
		s.Bernoulli(0.3)
		s.UnitVec(3)
	}
	st := s.State()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back State
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != st {
		t.Fatalf("state JSON round trip changed %+v → %+v", st, back)
	}
	r, err := FromState(back)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if a, b := s.Laplace(0.7), r.Laplace(0.7); a != b {
			t.Fatalf("draw %d after restore: %v != %v", i, a, b)
		}
		if a, b := s.Normal(), r.Normal(); a != b {
			t.Fatalf("draw %d after restore: Normal %v != %v", i, a, b)
		}
		if a, b := s.Split().Int63(), r.Split().Int63(); a != b {
			t.Fatalf("draw %d after restore: Split child diverged", i)
		}
	}
	if s.State() != r.State() {
		t.Fatalf("positions diverged: %+v vs %+v", s.State(), r.State())
	}
}

// TestStateOfFreshSource checks a zero-draw state restores to the seed.
func TestStateOfFreshSource(t *testing.T) {
	st := New(99).State()
	if st.Draws != 0 || st.Seed != 99 {
		t.Fatalf("fresh state %+v", st)
	}
	r, err := FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := r.Float64(), New(99).Float64(); a != b {
		t.Fatalf("restored fresh source diverged: %v != %v", a, b)
	}
}

// TestFromStateRejectsAbsurdPosition checks the replay bound: states come
// from files, and a corrupt draw count must not hang recovery.
func TestFromStateRejectsAbsurdPosition(t *testing.T) {
	if _, err := FromState(State{Seed: 1, Draws: MaxReplayDraws + 1}); err == nil {
		t.Fatal("absurd replay position accepted")
	}
}
