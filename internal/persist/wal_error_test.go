package persist

// wal_error_test.go drives the WAL's error branches through the fault
// seam: every branch here is one a real disk can take (open refused,
// header write torn, truncate failing mid-heal), and each must surface as
// an error the caller can act on — never a silently half-open WAL.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// faultyStore opens a store over dir with the given plan. The MkdirAll of
// OpenFS is op 0; a fresh OpenWAL is then op 1 (open) and op 2 (header
// write).
func faultyStore(t *testing.T, dir string, plan *fault.Plan) *Store {
	t.Helper()
	st, err := OpenFS(dir, fault.Wrap(fault.OS, plan))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// tearWAL appends garbage after the last clean frame, as a crash
// mid-append would.
func tearWAL(t *testing.T, dir, id string) {
	t.Helper()
	path := filepath.Join(dir, sessionPrefix+id+walSuffix)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte{0xFF, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenWALOpenError(t *testing.T) {
	st := faultyStore(t, t.TempDir(), fault.NewPlan(
		fault.Fault{Op: -1, Kind: fault.OpOpen, Mode: fault.ModeErr}))
	if _, err := st.OpenWAL("s-000001"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("OpenWAL under open fault: %v, want injected error", err)
	}
}

func TestOpenWALHeaderWriteError(t *testing.T) {
	st := faultyStore(t, t.TempDir(), fault.NewPlan(
		fault.Fault{Op: -1, Kind: fault.OpWrite, Mode: fault.ModeErr}))
	if _, err := st.OpenWAL("s-000001"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("OpenWAL under header-write fault: %v, want injected error", err)
	}
}

// TestOpenWALHealsTornTail: a torn tail that survived to OpenWAL (no
// LoadWAL first) is truncated there, and a truncate failure during that
// heal refuses the open instead of leaving the cursor mid-frame.
func TestOpenWALHealsTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := st.OpenWAL("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walEvent(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	tearWAL(t, dir, "s-000001")

	// With a truncate fault the heal must fail loudly.
	bad := faultyStore(t, dir, fault.NewPlan(
		fault.Fault{Op: -1, Kind: fault.OpTruncate, Mode: fault.ModeErr}))
	if _, err := bad.OpenWAL("s-000001"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("OpenWAL over torn tail under truncate fault: %v, want injected error", err)
	}

	// Without it the tail truncates and the clean record survives.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := st2.OpenWAL("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Records() != 1 {
		t.Fatalf("healed WAL has %d records, want 1", w2.Records())
	}
}

func TestAppendWriteError(t *testing.T) {
	// Ops: 0 mkdir, 1 open, 2 header write — the fault starts at 3, the
	// first Append.
	st := faultyStore(t, t.TempDir(), fault.NewPlan(
		fault.Fault{Op: -1, Kind: fault.OpWrite, After: 3, Mode: fault.ModeErr}))
	w, err := st.OpenWAL("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(walEvent(1)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Append under write fault: %v, want injected error", err)
	}
}

func TestSyncError(t *testing.T) {
	st := faultyStore(t, t.TempDir(), fault.NewPlan(
		fault.Fault{Op: -1, Kind: fault.OpSync, Mode: fault.ModeErr}))
	w, err := st.OpenWAL("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(walEvent(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Sync under sync fault: %v, want injected error", err)
	}
}

// TestResetErrorPaths targets Reset's three fault-reachable failure
// points by exact op index — ops are deterministic, so the indices are
// part of the contract: 0 mkdir, 1 open, 2 header, 3 append, then Reset
// is 4 truncate, 5 header rewrite, 6 sync.
func TestResetErrorPaths(t *testing.T) {
	for _, tc := range []struct {
		name string
		op   int
	}{
		{"truncate", 4},
		{"header-rewrite", 5},
		{"sync", 6},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := faultyStore(t, t.TempDir(), fault.NewPlan(
				fault.Fault{Op: tc.op, Mode: fault.ModeErr}))
			w, err := st.OpenWAL("s-000001")
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			if err := w.Append(walEvent(1)); err != nil {
				t.Fatal(err)
			}
			if err := w.Reset(); !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("Reset with fault at op %d: %v, want injected error", tc.op, err)
			}
		})
	}
}

// TestLoadWALErrorPaths: open failures that are not "no such file" must
// propagate (a missing WAL is fine, an unreadable one is not), and a torn
// tail whose in-place heal fails must refuse the load.
func TestLoadWALErrorPaths(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := st.OpenWAL("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walEvent(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	openFault := faultyStore(t, dir, fault.NewPlan(
		fault.Fault{Op: -1, Kind: fault.OpOpen, Mode: fault.ModeErr}))
	if _, err := openFault.LoadWAL("s-000001"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("LoadWAL under open fault: %v, want injected error", err)
	}

	tearWAL(t, dir, "s-000001")
	truncFault := faultyStore(t, dir, fault.NewPlan(
		fault.Fault{Op: -1, Kind: fault.OpTruncate, Mode: fault.ModeErr}))
	if _, err := truncFault.LoadWAL("s-000001"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("LoadWAL over torn tail under truncate fault: %v, want injected error", err)
	}

	syncFault := faultyStore(t, dir, fault.NewPlan(
		fault.Fault{Op: -1, Kind: fault.OpSync, Mode: fault.ModeErr}))
	if _, err := syncFault.LoadWAL("s-000001"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("LoadWAL truncation-sync under sync fault: %v, want injected error", err)
	}

	// The clean store still loads the surviving record after all that.
	recs, err := st.LoadWAL("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
}

func TestRemoveWALError(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := st.OpenWAL("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	bad := faultyStore(t, dir, fault.NewPlan(
		fault.Fault{Op: -1, Kind: fault.OpRemove, Mode: fault.ModeErr}))
	if err := bad.RemoveWAL("s-000001"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("RemoveWAL under remove fault: %v, want injected error", err)
	}
	// Idempotence on the clean store: first removal deletes, second is a
	// no-op success.
	if err := st.RemoveWAL("s-000001"); err != nil {
		t.Fatal(err)
	}
	if err := st.RemoveWAL("s-000001"); err != nil {
		t.Fatal(err)
	}
}

// TestWALInvalidIDs: every WAL entry point must refuse a path-traversal
// session id before touching the filesystem.
func TestWALInvalidIDs(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const evil = "../evil"
	if _, err := st.OpenWAL(evil); err == nil {
		t.Fatal("OpenWAL accepted a traversal id")
	}
	if _, err := st.LoadWAL(evil); err == nil {
		t.Fatal("LoadWAL accepted a traversal id")
	}
	if err := st.RemoveWAL(evil); err == nil {
		t.Fatal("RemoveWAL accepted a traversal id")
	}
	if st.HasWAL(evil) {
		t.Fatal("HasWAL reported a traversal id as present")
	}
}
