package persist

// committer_test.go covers the GroupCommitter's error paths: the degrade
// contract after Close, and — via the fault seam — fsync failures reaching
// every waiter whose file failed, with no waiter left blocked.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// TestGroupCommitterClosedDegradesToDirectSync: after Close, Sync must
// keep the durability contract by falling back to a direct fsync.
func TestGroupCommitterClosedDegradesToDirectSync(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := st.OpenWAL("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	c := NewGroupCommitter(0)
	c.Close()
	c.Close() // idempotent

	if err := w.Append(walEvent(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(w); err != nil {
		t.Fatalf("closed-committer Sync: %v", err)
	}
	recs, err := st.LoadWAL("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records after closed-committer sync, want 1", len(recs))
	}

	// A nil committer degrades the same way.
	var nilC *GroupCommitter
	if err := w.Append(walEvent(2)); err != nil {
		t.Fatal(err)
	}
	if err := nilC.Sync(w); err != nil {
		t.Fatalf("nil-committer Sync: %v", err)
	}
	nilC.Close()
}

// TestGroupCommitterFsyncErrorReachesAllWaiters: when a batch's fsyncs
// fail, every waiter whose file failed must get the error — a waiter
// released with a nil error would treat an answer as durable when it is
// not, which breaks the write-ahead rule.
func TestGroupCommitterFsyncErrorReachesAllWaiters(t *testing.T) {
	// Every fsync fails, every other op passes: the WALs open and append
	// normally, then the whole commit batch fails.
	plan := fault.NewPlan(fault.Fault{Op: -1, Kind: fault.OpSync, Mode: fault.ModeErr})
	st, err := OpenFS(t.TempDir(), fault.Wrap(fault.OS, plan))
	if err != nil {
		t.Fatal(err)
	}

	const nWALs, perWAL = 2, 4
	wals := make([]*WAL, nWALs)
	for i := range wals {
		if wals[i], err = st.OpenWAL(fmt.Sprintf("s-%06d", i+1)); err != nil {
			t.Fatal(err)
		}
		defer wals[i].Close()
	}

	c := NewGroupCommitter(2 * time.Millisecond)
	defer c.Close()

	var mu sync.Mutex
	var appendErr error
	errs := make([]error, nWALs*perWAL)
	var wg sync.WaitGroup
	for i := 0; i < nWALs*perWAL; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := wals[i%nWALs]
			mu.Lock()
			err := w.Append(walEvent(i + 1))
			mu.Unlock()
			if err != nil {
				mu.Lock()
				appendErr = err
				mu.Unlock()
				return
			}
			errs[i] = c.Sync(w)
		}(i)
	}
	wg.Wait()
	if appendErr != nil {
		t.Fatalf("append failed under sync-only fault plan: %v", appendErr)
	}
	for i, err := range errs {
		if err == nil {
			t.Fatalf("waiter %d released with nil error from a failed fsync batch", i)
		}
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("waiter %d error = %v, want the injected fsync error", i, err)
		}
	}
	if plan.Fired() == 0 {
		t.Fatal("no fsync fault fired")
	}
}

// TestGroupCommitterPartialBatchFailure: when only one file of a batch
// fails, its waiters get the error and the other file's waiters commit
// cleanly — errors are per-file, never smeared across the batch.
func TestGroupCommitterPartialBatchFailure(t *testing.T) {
	dir := t.TempDir()
	plan := fault.NewPlan()
	st, err := OpenFS(dir, fault.Wrap(fault.OS, plan))
	if err != nil {
		t.Fatal(err)
	}
	good, err := st.OpenWAL("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	bad, err := st.OpenWAL("s-000002")
	if err != nil {
		t.Fatal(err)
	}
	// Closing the file under the WAL makes its fsync fail like a revoked
	// descriptor, without touching the good file's path.
	bad.f.Close()

	if err := good.Append(walEvent(1)); err != nil {
		t.Fatal(err)
	}

	c := NewGroupCommitter(time.Second) // wide window: both requests share one batch
	defer c.Close()
	var wg sync.WaitGroup
	var goodErr, badErr error
	wg.Add(2)
	go func() { defer wg.Done(); goodErr = c.Sync(good) }()
	go func() { defer wg.Done(); badErr = c.Sync(bad) }()
	wg.Wait()

	if goodErr != nil {
		t.Fatalf("healthy file's waiter got its batch-mate's error: %v", goodErr)
	}
	if badErr == nil {
		t.Fatal("failed file's waiter released with nil error")
	}
}
