package persist

// wal.go is the append-only write-ahead log beside each session's snapshot
// file. The snapshot path (persist.go) rewrites the session's complete
// state — MW table, ledger, transcript — on every durable point, which is
// correct but O(state) per ⊤ answer. The WAL makes the common durable
// point O(1): each budget-relevant exchange appends one small
// self-describing record, and recovery is "load the last snapshot, replay
// the WAL tail". Compaction periodically folds the log back into the
// snapshot format and truncates it, so neither file grows without bound.
//
// File layout: session-<id>.wal holds a header record followed by event
// records, each framed as
//
//	[4-byte little-endian payload length]
//	[4-byte little-endian IEEE CRC32 of the payload]
//	[payload: JSON WALRecord]
//
// The frame makes torn tails detectable without trusting file contents: a
// crash mid-append leaves a record whose length field runs past EOF or
// whose CRC disagrees, and LoadWAL truncates the file at the first such
// frame. Truncation is safe by the service's commit discipline — every
// ⊤ record is fsynced before its answer is released, so a torn tail can
// only hold ⊥ records (which spend nothing) or a ⊤ whose answer no
// analyst ever saw.
//
// Unlike snapshots, WAL appends are deliberately not atomic-rename writes:
// the whole point is to pay one small sequential write (plus a batched
// fsync, see committer.go) instead of rewriting a file. The envelope-style
// self-description lives in the header record instead.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/fault"
	"repro/internal/transcript"
)

// FormatWAL is the self-describing format name carried by the first record
// of every WAL file.
const FormatWAL = "pmwcm-wal"

// WAL record kinds.
const (
	// WALHeader is the mandatory first record of a WAL file: format name,
	// schema version, and owning session id.
	WALHeader = "header"
	// WALEvent is one recorded query/answer exchange: the serialized query
	// spec plus the transcript event it produced (answer, disposition,
	// ledger delta). Replay re-executes the spec against the restored state
	// and verifies the produced event matches bit for bit, so a record
	// implicitly carries the RNG positions too — the restored noise stream
	// must be exactly where the original was for the comparison to pass.
	WALEvent = "event"
	// WALClose records an analyst-initiated permanent close.
	WALClose = "close"
)

// KindWAL labels WAL appends on the store's checkpoint counters.
const KindWAL = "wal"

// WALRecord is one framed entry of a session WAL.
type WALRecord struct {
	// Kind is WALHeader, WALEvent, or WALClose.
	Kind string `json:"kind"`
	// Format and Version self-describe the file; set on header records.
	Format  string `json:"format,omitempty"`
	Version int    `json:"version,omitempty"`
	// ID is the owning session id; set on header records so a misplaced or
	// cross-copied WAL file is refused.
	ID string `json:"id,omitempty"`
	// Seq is the transcript index the record corresponds to (event records:
	// the event's 1-based index; close records: the transcript length at
	// close). Replay refuses gaps.
	Seq int `json:"seq,omitempty"`
	// Spec is the serialized convex.Spec of an event record's query, the
	// input replay re-executes.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Event is the transcript event the exchange produced — answer,
	// disposition, ledger delta, cache key — the expected output replay
	// verifies against.
	Event *transcript.Event `json:"event,omitempty"`
}

// walSuffix names WAL files beside their session's snapshot file.
const walSuffix = ".wal"

// walPath maps a session id to its WAL file.
func (s *Store) walPath(id string) string {
	return filepath.Join(s.dir, sessionPrefix+id+walSuffix)
}

// WAL is an open, append-only session log. Append and Sync are not safe
// for concurrent use; the service serializes them behind the session's
// save mutex (Sync additionally funnels through the group committer, which
// may call it from the committer goroutine — the *os.File fsync itself is
// safe to issue from there because appends are quiescent while a commit
// batch holds the waiters).
type WAL struct {
	f       fault.File
	store   *Store
	id      string
	records int   // event/close records in the file (header excluded)
	bytes   int64 // file size including header and framing
}

// frame encodes one record as [len][crc][payload].
func frame(rec *WALRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("persist: encoding wal record: %w", err)
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	return buf, nil
}

// header builds the self-describing first record for id.
func walHeader(id string) *WALRecord {
	return &WALRecord{Kind: WALHeader, Format: FormatWAL, Version: SchemaVersion, ID: id}
}

// OpenWAL opens (creating if needed) the append-only WAL for a session. A
// fresh file gets its self-describing header record; an existing file is
// opened at its current end — callers that need the existing contents
// replayed must LoadWAL first (which also truncates any torn tail, so the
// append position is always a clean frame boundary).
func (s *Store) OpenWAL(id string) (*WAL, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	f, err := s.fsys.OpenFile(s.walPath(id), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: opening wal for %s: %w", id, err)
	}
	w := &WAL{f: f, store: s, id: id}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: stat wal for %s: %w", id, err)
	}
	if info.Size() == 0 {
		if err := w.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return w, nil
	}
	// Existing file: count its records so the compaction thresholds keep
	// working across a reopen, and position the cursor at the end.
	recs, size, _, err := readWAL(f, id)
	if err != nil {
		f.Close()
		return nil, err
	}
	if size != info.Size() {
		// A torn tail survived to OpenWAL (LoadWAL normally truncates it
		// first). Cut it here so appends land on a frame boundary.
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: truncating torn wal tail for %s: %w", id, err)
		}
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: seeking wal for %s: %w", id, err)
	}
	w.records = len(recs)
	w.bytes = size
	return w, nil
}

// writeHeader appends the self-describing header record (file must be
// empty and the cursor at 0).
func (w *WAL) writeHeader() error {
	buf, err := frame(walHeader(w.id))
	if err != nil {
		return err
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("persist: writing wal header for %s: %w", w.id, err)
	}
	w.bytes = int64(len(buf))
	return nil
}

// Append frames and writes one record without syncing; durability comes
// from a later Sync (usually via the group committer). An error leaves the
// file possibly mid-frame — the caller must treat the WAL as broken and
// fall back to snapshot saves until a Reset heals it (replay-side, the
// torn frame truncates harmlessly).
func (w *WAL) Append(rec *WALRecord) error {
	buf, err := frame(rec)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("persist: appending wal record for %s: %w", w.id, err)
	}
	w.records++
	w.bytes += int64(len(buf))
	if m := w.store.met; m != nil {
		m.walRecords.Inc()
		m.walBytes.Add(uint64(len(buf)))
	}
	return nil
}

// Sync fsyncs the file: every record appended before the call is durable
// when it returns. Latency lands in the store's fsync histogram alongside
// snapshot fsyncs.
func (w *WAL) Sync() error {
	err := w.store.timedSync(w.f)
	if err != nil {
		return fmt.Errorf("persist: syncing wal for %s: %w", w.id, err)
	}
	if m := w.store.met; m != nil {
		m.count[KindWAL].Inc()
	}
	return nil
}

// Reset truncates the log back to an empty (header-only) state — the
// compaction step after the snapshot covering its records has been
// written. The truncation is synced so a crash right after compaction
// cannot resurrect pre-compaction records next to the newer snapshot
// (replay would skip them by seq, but an unsynced truncate could also tear
// and leave garbage mid-file).
func (w *WAL) Reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("persist: truncating wal for %s: %w", w.id, err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("persist: rewinding wal for %s: %w", w.id, err)
	}
	w.records = 0
	if err := w.writeHeader(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("persist: syncing truncated wal for %s: %w", w.id, err)
	}
	if m := w.store.met; m != nil {
		m.walCompactions.Inc()
	}
	return nil
}

// Records returns the number of event/close records in the file (header
// excluded) — one of the two compaction-trigger inputs.
func (w *WAL) Records() int { return w.records }

// Bytes returns the file size in bytes — the other compaction trigger.
func (w *WAL) Bytes() int64 { return w.bytes }

// Close closes the underlying file (without syncing; callers sync first
// when the tail matters).
func (w *WAL) Close() error { return w.f.Close() }

// readWAL reads every complete, checksummed record from f, stopping at the
// first torn or corrupt frame. It returns the event/close records (header
// verified and stripped), the byte offset of the clean prefix, and whether
// a torn tail was found after it.
func readWAL(f fault.File, id string) (recs []*WALRecord, clean int64, torn bool, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, false, fmt.Errorf("persist: rewinding wal for %s: %w", id, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, false, fmt.Errorf("persist: reading wal for %s: %w", id, err)
	}
	return parseWAL(data, id)
}

// parseWAL is readWAL's pure frame parser over the raw file bytes — split
// out so the fuzz target can feed it arbitrary inputs without touching
// disk. Every returned record passed its length and CRC checks and
// decoded; clean is always a frame boundary within data.
func parseWAL(data []byte, id string) (recs []*WALRecord, clean int64, torn bool, err error) {
	off := 0
	sawHeader := false
	for {
		if off+8 > len(data) {
			torn = off < len(data)
			break
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n < 0 || off+8+n > len(data) {
			torn = true
			break
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			torn = true
			break
		}
		var rec WALRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// A frame that checksums but does not parse was written torn
			// before its CRC — impossible under this writer — or by a
			// foreign tool. Refuse rather than truncate: unlike a torn
			// tail, mid-file garbage means the file is not ours.
			return nil, 0, false, fmt.Errorf("persist: wal for %s: undecodable record at offset %d: %w", id, off, err)
		}
		if !sawHeader {
			if rec.Kind != WALHeader || rec.Format != FormatWAL {
				return nil, 0, false, fmt.Errorf("persist: wal for %s: missing header record", id)
			}
			if rec.Version < 1 || rec.Version > SchemaVersion {
				return nil, 0, false, fmt.Errorf("persist: wal schema version %d not supported (current %d)", rec.Version, SchemaVersion)
			}
			if rec.ID != id {
				return nil, 0, false, fmt.Errorf("persist: wal file for %s carries id %q", id, rec.ID)
			}
			sawHeader = true
		} else {
			r := rec
			recs = append(recs, &r)
		}
		off += 8 + n
	}
	if !sawHeader && !torn {
		// Zero-length file: treat as empty (fresh) WAL.
		if len(data) != 0 {
			return nil, 0, false, fmt.Errorf("persist: wal for %s: missing header record", id)
		}
	}
	return recs, int64(off), torn, nil
}

// LoadWAL reads a session's WAL tail for replay. A missing file returns
// (nil, nil): no tail to replay. A torn tail — a crash mid-append — is
// truncated in place (and the truncation synced) so subsequent appends
// land on a clean frame boundary; everything before the tear is returned.
// Mid-file corruption (a record that checksums but does not belong) is an
// error, never silently skipped.
func (s *Store) LoadWAL(id string) ([]*WALRecord, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	f, err := s.fsys.OpenFile(s.walPath(id), os.O_RDWR, 0)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: opening wal for %s: %w", id, err)
	}
	defer f.Close()
	recs, clean, torn, err := readWAL(f, id)
	if err != nil {
		return nil, err
	}
	if torn {
		if err := f.Truncate(clean); err != nil {
			return nil, fmt.Errorf("persist: truncating torn wal tail for %s: %w", id, err)
		}
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("persist: syncing truncated wal for %s: %w", id, err)
		}
		if m := s.met; m != nil {
			m.walTruncations.Inc()
		}
	}
	return recs, nil
}

// HasWAL reports whether a WAL file exists for the session.
func (s *Store) HasWAL(id string) bool {
	if validID(id) != nil {
		return false
	}
	_, err := s.fsys.Stat(s.walPath(id))
	return err == nil
}

// RemoveWAL deletes a session's WAL file. Missing files are not an error:
// removal is idempotent cleanup, the same contract as DeleteSession.
func (s *Store) RemoveWAL(id string) error {
	if err := validID(id); err != nil {
		return err
	}
	if err := s.fsys.Remove(s.walPath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("persist: deleting wal for %s: %w", id, err)
	}
	return nil
}
