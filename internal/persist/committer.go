package persist

// committer.go is the manager-level group commit behind session WALs.
//
// The write-ahead rule makes every ⊤ answer wait for its record to be
// durable, and fsync is the expensive part — orders of magnitude over the
// append itself. With p sessions answering misses concurrently, syncing
// each WAL individually costs p fsyncs per round of answers even though
// the drive could have hardened all of them in one. The GroupCommitter
// funnels those waits through one goroutine: requests that arrive together
// are flushed together, one fsync per distinct WAL file per batch, and
// every waiter in the batch is released by the same flush.
//
// Batching policy ("flush-on-idle"): the committer drains whatever
// requests are already queued into the current batch and flushes the
// moment the queue goes idle, so a lone writer pays no added latency. Only
// while requests keep streaming in does the commit window (default ~2ms)
// bound how long a batch stays open — under saturation that is ~one fsync
// per window instead of one per waiting session. The window is a
// latency/throughput dial, never a correctness dial: a Sync call returns
// only after an fsync that covers every byte the caller appended.

import (
	"runtime"
	"sync"
	"time"
)

// DefaultCommitWindow is the default upper bound on how long a group-commit
// batch stays open while requests keep arriving.
const DefaultCommitWindow = 2 * time.Millisecond

// GroupCommitter batches WAL fsyncs across sessions. Create one per
// manager with NewGroupCommitter; Sync is safe for concurrent use. A nil
// *GroupCommitter degrades to per-call direct fsyncs, so callers can hold
// one optionally.
type GroupCommitter struct {
	window time.Duration
	reqs   chan commitReq
	done   chan struct{}

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// commitReq is one session's pending durability wait.
type commitReq struct {
	w    *WAL
	done chan error
}

// NewGroupCommitter starts a committer whose batches stay open at most
// window while requests keep arriving (window <= 0 selects
// DefaultCommitWindow).
func NewGroupCommitter(window time.Duration) *GroupCommitter {
	if window <= 0 {
		window = DefaultCommitWindow
	}
	c := &GroupCommitter{
		window: window,
		reqs:   make(chan commitReq, 64),
		done:   make(chan struct{}),
	}
	go c.run()
	return c
}

// Sync blocks until every record appended to w before the call is durable.
// Concurrent callers syncing any set of WALs share fsyncs. On a nil or
// closed committer it degrades to a direct w.Sync().
func (c *GroupCommitter) Sync(w *WAL) error {
	if c == nil {
		return w.Sync()
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return w.Sync()
	}
	c.wg.Add(1)
	c.mu.Unlock()
	defer c.wg.Done()
	req := commitReq{w: w, done: make(chan error, 1)}
	c.reqs <- req
	return <-req.done
}

// Close stops the committer after completing every in-flight Sync.
// Subsequent Sync calls fall back to direct fsyncs, so closing is safe
// while sessions are still live (shutdown ordering stays simple). A nil
// committer ignores Close.
func (c *GroupCommitter) Close() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.wg.Wait()
	close(c.reqs)
	<-c.done
}

// run is the committer goroutine: collect a batch, flush it, repeat.
func (c *GroupCommitter) run() {
	defer close(c.done)
	for first := range c.reqs {
		batch := c.collect(first)
		flush(batch)
	}
}

// collect builds one batch: everything already queued, then — only while
// more requests keep arriving — up to window longer. A batch closes early
// ("flush-on-idle") once the queue stays empty through a handful of
// scheduler yields: a concurrent committer that was just released is
// already runnable and re-enqueues within the yields, so back-to-back
// writers coalesce, while a lone writer pays microseconds — never the
// window — in added latency. (The grace is yield-based, not timer-based:
// sub-millisecond timers cost ~1ms of scheduling granularity, which would
// dwarf the fsync being amortized.)
func (c *GroupCommitter) collect(first commitReq) []commitReq {
	batch := []commitReq{first}
	deadline := time.NewTimer(c.window)
	defer deadline.Stop()
	for {
		select {
		case r, ok := <-c.reqs:
			if !ok {
				return batch
			}
			batch = append(batch, r)
		case <-deadline.C:
			return batch
		default:
			got := false
			t0 := time.Now()
			for i := 0; i < idleYields && time.Since(t0) < idleGrace && !got; i++ {
				runtime.Gosched()
				select {
				case r, ok := <-c.reqs:
					if !ok {
						return batch
					}
					batch = append(batch, r)
					got = true
				default:
				}
			}
			if !got {
				return batch
			}
		}
	}
}

// idleYields and idleGrace bound the straggler grace collect grants before
// declaring the queue idle and flushing: a handful of scheduler yields,
// but never more wall clock than a fraction of an fsync. The time bound
// matters on small GOMAXPROCS, where a single Gosched can run the whole
// queue of compute-heavy goroutines and would otherwise stretch "a few
// yields" into many milliseconds of commit latency.
const (
	idleYields = 16
	idleGrace  = 200 * time.Microsecond
)

// flush hardens the batch: each distinct WAL is fsynced exactly once, and
// the distinct files sync in parallel, so a batch of p sessions costs ~one
// fsync latency instead of p serialized fsyncs — that parallelism, plus
// the per-file dedup across waiters, is the whole group-commit win. Every
// waiter then receives its own file's result.
func flush(batch []commitReq) {
	errs := make(map[*WAL]error, 1)
	for _, r := range batch {
		errs[r.w] = nil
	}
	if len(errs) == 1 {
		errs[batch[0].w] = batch[0].w.Sync()
	} else {
		files := make([]*WAL, 0, len(errs))
		for w := range errs {
			files = append(files, w)
		}
		res := make([]error, len(files))
		var wg sync.WaitGroup
		for i, w := range files {
			wg.Add(1)
			go func(i int, w *WAL) {
				defer wg.Done()
				res[i] = w.Sync()
			}(i, w)
		}
		wg.Wait()
		for i, w := range files {
			errs[w] = res[i]
		}
	}
	if m := batch[0].w.store.met; m != nil {
		m.walBatch.Observe(float64(len(errs)))
	}
	for _, r := range batch {
		r.done <- errs[r.w]
	}
}
