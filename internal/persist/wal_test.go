package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/transcript"
)

// walEvent builds a representative event record for index i.
func walEvent(i int) *WALRecord {
	return &WALRecord{
		Kind: WALEvent,
		Seq:  i,
		Spec: json.RawMessage(fmt.Sprintf(`{"kind":"logistic","params":{"i":%d}}`, i)),
		Event: &transcript.Event{
			Index:    i,
			Query:    "logistic",
			Answer:   []float64{0.125 * float64(i), -0.25},
			Top:      i%2 == 0,
			EpsSpent: 0.01,
			CumEps:   0.01 * float64(i),
			CacheKey: fmt.Sprintf("key-%d", i),
		},
	}
}

func TestWALAppendLoadRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const id = "s-000001"
	w, err := st.OpenWAL(id)
	if err != nil {
		t.Fatal(err)
	}
	const n = 7
	for i := 1; i <= n; i++ {
		if err := w.Append(walEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Append(&WALRecord{Kind: WALClose, Seq: n}); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != n+1 {
		t.Fatalf("Records() = %d, want %d", w.Records(), n+1)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := st.LoadWAL(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n+1 {
		t.Fatalf("loaded %d records, want %d", len(recs), n+1)
	}
	for i := 0; i < n; i++ {
		r := recs[i]
		want := walEvent(i + 1)
		if r.Kind != WALEvent || r.Seq != want.Seq {
			t.Fatalf("record %d = %+v", i, r)
		}
		if r.Event == nil || r.Event.Answer[0] != want.Event.Answer[0] || r.Event.CacheKey != want.Event.CacheKey {
			t.Fatalf("record %d event did not round-trip: %+v", i, r.Event)
		}
		if string(r.Spec) != string(want.Spec) {
			t.Fatalf("record %d spec = %s", i, r.Spec)
		}
	}
	if recs[n].Kind != WALClose {
		t.Fatalf("last record kind = %q", recs[n].Kind)
	}
}

func TestWALLoadMissingIsEmpty(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := st.LoadWAL("s-000001")
	if err != nil || recs != nil {
		t.Fatalf("missing wal = %v, %v; want nil, nil", recs, err)
	}
	if st.HasWAL("s-000001") {
		t.Fatal("HasWAL true for missing file")
	}
}

// TestWALTornTailTruncation corrupts the last record byte-level (a torn
// write) and checks LoadWAL returns the clean prefix, truncates the file,
// and leaves it appendable.
func TestWALTornTailTruncation(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mangle  func(data []byte) []byte
		surviv  int
		wantErr bool
	}{
		// Cut mid-payload: the length field promises more bytes than exist.
		{name: "short-tail", mangle: func(d []byte) []byte { return d[:len(d)-3] }, surviv: 2},
		// Flip a payload byte: the CRC disagrees.
		{name: "bitflip", mangle: func(d []byte) []byte { d[len(d)-2] ^= 0x40; return d }, surviv: 2},
		// Garbage appended after the last good frame.
		{name: "garbage-tail", mangle: func(d []byte) []byte { return append(d, 0xde, 0xad, 0xbe) }, surviv: 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			const id = "s-000001"
			w, err := st.OpenWAL(id)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 3; i++ {
				if err := w.Append(walEvent(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			path := st.walPath(id)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			recs, err := st.LoadWAL(id)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != tc.surviv {
				t.Fatalf("survived %d records, want %d", len(recs), tc.surviv)
			}
			// The tear is gone from disk: a re-load sees the same prefix and
			// a re-opened WAL appends on a clean boundary.
			w2, err := st.OpenWAL(id)
			if err != nil {
				t.Fatal(err)
			}
			if w2.Records() != tc.surviv {
				t.Fatalf("reopened Records() = %d, want %d", w2.Records(), tc.surviv)
			}
			if err := w2.Append(walEvent(9)); err != nil {
				t.Fatal(err)
			}
			if err := w2.Sync(); err != nil {
				t.Fatal(err)
			}
			w2.Close()
			recs, err = st.LoadWAL(id)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != tc.surviv+1 || recs[len(recs)-1].Seq != 9 {
				t.Fatalf("after reopen+append got %d records, last %+v", len(recs), recs[len(recs)-1])
			}
		})
	}
}

func TestWALRefusesForeignHeader(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := st.OpenWAL("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walEvent(1)); err != nil {
		t.Fatal(err)
	}
	w.Sync()
	w.Close()
	// Copy the file under another session's name: the header id no longer
	// matches and the file must be refused.
	data, err := os.ReadFile(st.walPath("s-000001"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.walPath("s-000002"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadWAL("s-000002"); err == nil {
		t.Fatal("cross-copied wal accepted")
	}
	if _, err := st.OpenWAL("s-000002"); err == nil {
		t.Fatal("cross-copied wal opened for append")
	}
}

func TestWALResetTruncates(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const id = "s-000001"
	w, err := st.OpenWAL(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := w.Append(walEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	headerBytes := func() int64 {
		buf, _ := frame(walHeader(id))
		return int64(len(buf))
	}()
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 || w.Bytes() != headerBytes {
		t.Fatalf("after reset records=%d bytes=%d, want 0, %d", w.Records(), w.Bytes(), headerBytes)
	}
	// The header survives the reset, so the file is still self-describing
	// and appendable.
	if err := w.Append(walEvent(5)); err != nil {
		t.Fatal(err)
	}
	w.Sync()
	w.Close()
	recs, err := st.LoadWAL(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 5 {
		t.Fatalf("post-reset load = %+v", recs)
	}
	if err := st.RemoveWAL(id); err != nil {
		t.Fatal(err)
	}
	if st.HasWAL(id) {
		t.Fatal("RemoveWAL left the file")
	}
	if err := st.RemoveWAL(id); err != nil {
		t.Fatalf("RemoveWAL not idempotent: %v", err)
	}
}

// TestWALFilesInvisibleToSessions checks .wal files never surface as
// session ids in directory discovery.
func TestWALFilesInvisibleToSessions(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := st.OpenWAL("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	ids, err := st.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("wal file surfaced as session: %v", ids)
	}
}

// TestGroupCommitterDurability drives many goroutines over several WALs
// through one committer: every Sync must return nil only after its records
// are on disk, and a closed committer must degrade to direct syncs.
func TestGroupCommitterDurability(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 4
	const perSession = 8
	c := NewGroupCommitter(0)
	wals := make([]*WAL, sessions)
	for i := range wals {
		w, err := st.OpenWAL(fmt.Sprintf("s-%06d", i+1))
		if err != nil {
			t.Fatal(err)
		}
		wals[i] = w
	}
	var wg sync.WaitGroup
	errc := make(chan error, sessions*perSession)
	for i := range wals {
		wg.Add(1)
		go func(w *WAL) {
			defer wg.Done()
			// Each session serializes its own appends, as the service's
			// save mutex does.
			for j := 1; j <= perSession; j++ {
				if err := w.Append(walEvent(j)); err != nil {
					errc <- err
					return
				}
				if err := c.Sync(w); err != nil {
					errc <- err
					return
				}
			}
		}(wals[i])
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	c.Close()
	// Closed committer: Sync still works, directly.
	if err := wals[0].Append(walEvent(99)); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(wals[0]); err != nil {
		t.Fatal(err)
	}
	for i, w := range wals {
		w.Close()
		recs, err := st.LoadWAL(fmt.Sprintf("s-%06d", i+1))
		if err != nil {
			t.Fatal(err)
		}
		want := perSession
		if i == 0 {
			want++
		}
		if len(recs) != want {
			t.Fatalf("wal %d holds %d records, want %d", i, len(recs), want)
		}
	}
	c.Close() // idempotent
	var nilC *GroupCommitter
	nilC.Close() // nil-safe
}
