package persist

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sample"
)

// testBlobServer starts a blob server over a temp tree and returns a
// Remote over one namespace of it.
func testBlobServer(t *testing.T) (*BlobServer, *httptest.Server) {
	t.Helper()
	bs, err := NewBlobServer(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(bs.Handler())
	t.Cleanup(srv.Close)
	return bs, srv
}

func testRemote(t *testing.T, srv *httptest.Server, ns string) *Remote {
	t.Helper()
	r, err := OpenRemote(srv.URL+"/v1/stores/"+ns, RemoteOptions{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func testSessionState(id string) *SessionState {
	return &SessionState{
		ID:      id,
		Created: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC),
		Oracle:  "erm.laplace-linear",
		Params:  json.RawMessage(`{"eps":0.5,"k":100}`),
	}
}

func TestRemoteBackendRoundTrip(t *testing.T) {
	_, srv := testBlobServer(t)
	r := testRemote(t, srv, "r1")

	if !strings.HasSuffix(r.Location(), "/v1/stores/r1") {
		t.Errorf("Location() = %q", r.Location())
	}
	if r.SupportsWAL() {
		t.Error("remote backend claims WAL support")
	}

	// Fresh namespace: no manifest, no sessions.
	if m, err := r.LoadManifest(); err != nil || m != nil {
		t.Fatalf("LoadManifest on empty namespace = %v, %v", m, err)
	}
	if ids, err := r.Sessions(); err != nil || len(ids) != 0 {
		t.Fatalf("Sessions on empty namespace = %v, %v", ids, err)
	}

	man := &Manifest{
		Seq:     7,
		Dataset: DatasetInfo{N: 3, Universe: "u", Hash: "fnv1a64:0000000000000001"},
		Source:  sample.State{},
	}
	if err := r.SaveManifest(man); err != nil {
		t.Fatal(err)
	}
	back, err := r.LoadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if back.Seq != 7 || back.Dataset.Hash != man.Dataset.Hash {
		t.Fatalf("manifest did not round-trip: %+v", back)
	}

	st := testSessionState("s-000001")
	if err := r.SaveSession(st); err != nil {
		t.Fatal(err)
	}
	if err := r.SaveSession(testSessionState("s-000002")); err != nil {
		t.Fatal(err)
	}
	got, err := r.LoadSession("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	var gotParams, wantParams map[string]float64
	if err := json.Unmarshal(got.Params, &gotParams); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(st.Params, &wantParams); err != nil {
		t.Fatal(err)
	}
	if got.ID != st.ID || got.Oracle != st.Oracle || gotParams["eps"] != wantParams["eps"] || gotParams["k"] != wantParams["k"] {
		t.Fatalf("session did not round-trip: %+v", got)
	}
	ids, err := r.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "s-000001" || ids[1] != "s-000002" {
		t.Fatalf("Sessions = %v", ids)
	}

	if err := r.DeleteSession("s-000001"); err != nil {
		t.Fatal(err)
	}
	if err := r.DeleteSession("s-000001"); err != nil {
		t.Fatalf("second delete not idempotent: %v", err)
	}
	if _, err := r.LoadSession("s-000001"); err == nil {
		t.Fatal("loaded a deleted session")
	}

	// WAL facility is stubbed to the no-log shape.
	if _, err := r.OpenWAL("s-000002"); !errors.Is(err, ErrWALUnsupported) {
		t.Errorf("OpenWAL = %v, want ErrWALUnsupported", err)
	}
	if recs, err := r.LoadWAL("s-000002"); err != nil || recs != nil {
		t.Errorf("LoadWAL = %v, %v", recs, err)
	}
	if r.HasWAL("s-000002") {
		t.Error("HasWAL = true")
	}
	if err := r.RemoveWAL("s-000002"); err != nil {
		t.Errorf("RemoveWAL = %v", err)
	}

	// Hostile ids never reach the wire.
	if err := r.SaveSession(testSessionState("../escape")); err == nil {
		t.Error("hostile save id accepted")
	}
	if _, err := r.LoadSession("../escape"); err == nil {
		t.Error("hostile load id accepted")
	}
	if err := r.DeleteSession(""); err == nil {
		t.Error("empty delete id accepted")
	}
}

func TestRemoteNamespacesAreIsolated(t *testing.T) {
	bs, srv := testBlobServer(t)
	r1 := testRemote(t, srv, "r1")
	r2 := testRemote(t, srv, "r2")

	if err := r1.SaveManifest(&Manifest{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r1.SaveSession(testSessionState("s-000001")); err != nil {
		t.Fatal(err)
	}
	if m, err := r2.LoadManifest(); err != nil || m != nil {
		t.Fatalf("namespace r2 sees r1's manifest: %v, %v", m, err)
	}
	if ids, _ := r2.Sessions(); len(ids) != 0 {
		t.Fatalf("namespace r2 sees r1's sessions: %v", ids)
	}
	// The namespace is a plain subdirectory of the root — the state-dir
	// layout, one level down.
	if _, err := os.Stat(filepath.Join(bs.Root(), "r1", "session-s-000001.json")); err != nil {
		t.Errorf("blob not at the state-dir path: %v", err)
	}
}

func TestRemoteRetriesTransientFailures(t *testing.T) {
	bs, err := NewBlobServer(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	inner := bs.Handler()
	var failures atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failures.Load() > 0 {
			failures.Add(-1)
			http.Error(w, "injected outage", http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	r := testRemote(t, srv, "r1")
	reg := obs.NewRegistry()
	r.Instrument(reg)

	failures.Store(2) // both attempts before the last fail
	if err := r.SaveSession(testSessionState("s-000001")); err != nil {
		t.Fatalf("save did not survive transient 5xx: %v", err)
	}
	failures.Store(1)
	if _, err := r.LoadSession("s-000001"); err != nil {
		t.Fatalf("load did not survive transient 5xx: %v", err)
	}

	// Retries exhausted: the last transport error surfaces.
	failures.Store(1000)
	if err := r.SaveSession(testSessionState("s-000002")); err == nil || !strings.Contains(err.Error(), "injected outage") {
		t.Fatalf("exhausted retries error = %v", err)
	}
	failures.Store(0)

	// The shared checkpoint counters and the retry counter moved.
	found := map[string]bool{}
	for _, fam := range reg.Snapshot() {
		for _, s := range fam.Samples {
			if s.Value > 0 || s.Count > 0 {
				found[fam.Name] = true
			}
		}
	}
	for _, want := range []string{"pmwcm_checkpoint_total", "pmwcm_store_retries_total", "pmwcm_store_request_seconds"} {
		if !found[want] {
			t.Errorf("metric %s did not move", want)
		}
	}
}

func TestRemoteVerifiesContentFingerprint(t *testing.T) {
	bs, err := NewBlobServer(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	inner := bs.Handler()
	var mode atomic.Int32 // 0 = honest, 1 = corrupt body, 2 = strip header
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch mode.Load() {
		case 1:
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			for k, vs := range rec.Header() {
				w.Header()[k] = vs
			}
			w.WriteHeader(rec.Code)
			body := rec.Body.Bytes()
			if len(body) > 0 && rec.Code == http.StatusOK {
				body[0] ^= 0xff
			}
			w.Write(body)
		case 2:
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			w.WriteHeader(rec.Code)
			w.Write(rec.Body.Bytes())
		default:
			inner.ServeHTTP(w, r)
		}
	}))
	defer srv.Close()

	r := testRemote(t, srv, "r1")
	if err := r.SaveSession(testSessionState("s-000001")); err != nil {
		t.Fatal(err)
	}

	mode.Store(1)
	if _, err := r.LoadSession("s-000001"); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("corrupted body accepted: %v", err)
	}
	mode.Store(2)
	if _, err := r.LoadSession("s-000001"); err == nil || !strings.Contains(err.Error(), FingerprintHeader) {
		t.Fatalf("missing fingerprint header accepted: %v", err)
	}
	mode.Store(0)
	if _, err := r.LoadSession("s-000001"); err != nil {
		t.Fatalf("honest reload failed: %v", err)
	}
}

func TestOpenRemoteRejectsBadEndpoints(t *testing.T) {
	if _, err := OpenRemote("not a url", RemoteOptions{}); err == nil {
		t.Error("garbage URL accepted")
	}
	if _, err := OpenRemote("/no/host", RemoteOptions{}); err == nil {
		t.Error("hostless URL accepted")
	}
	// A live listener that is not a blob store: probe must fail.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer srv.Close()
	if _, err := OpenRemote(srv.URL+"/v1/stores/r1", RemoteOptions{Backoff: time.Millisecond}); err == nil {
		t.Error("non-store endpoint accepted")
	}
	// A dead endpoint: probe must fail after retries, quickly.
	srv2 := httptest.NewServer(http.NewServeMux())
	srv2.Close()
	if _, err := OpenRemote(srv2.URL+"/v1/stores/r1", RemoteOptions{Backoff: time.Millisecond}); err == nil {
		t.Error("dead endpoint accepted")
	}
}

func TestRemoteRejectsWrongIDBlob(t *testing.T) {
	_, srv := testBlobServer(t)
	r := testRemote(t, srv, "r1")
	// Write a blob whose enclosed state carries a different id than its
	// name — e.g. an operator copying blobs around by hand.
	st := testSessionState("s-000009")
	data, err := Encode(FormatSession, st)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/stores/r1/blobs/session-s-000001.json", strings.NewReader(string(data)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := r.LoadSession("s-000001"); err == nil || !strings.Contains(err.Error(), "carries id") {
		t.Fatalf("mismatched blob id accepted: %v", err)
	}
}

func TestBlobServerValidatesPaths(t *testing.T) {
	_, srv := testBlobServer(t)
	for _, tc := range []struct {
		method, path string
		status       int
	}{
		{http.MethodGet, "/v1/stores/bad%20ns/blobs", http.StatusBadRequest},
		{http.MethodGet, "/v1/stores/r1/blobs/.hidden", http.StatusBadRequest},
		{http.MethodPut, "/v1/stores/r1/blobs/bad%20name", http.StatusBadRequest},
		{http.MethodDelete, "/v1/stores/bad%20ns/blobs/x", http.StatusBadRequest},
		{http.MethodGet, "/v1/stores/r1/blobs/absent.json", http.StatusNotFound},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("%s %s: non-JSON error body: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
		}
		if doc["error"] == "" {
			t.Errorf("%s %s: missing typed error message", tc.method, tc.path)
		}
	}
}

func TestBlobServerListSkipsTempAndDirs(t *testing.T) {
	bs, srv := testBlobServer(t)
	r := testRemote(t, srv, "r1")
	if err := r.SaveManifest(&Manifest{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-PUT (stale temp file) and a nested directory.
	if err := os.WriteFile(filepath.Join(bs.Root(), "r1", tmpPrefix+"zzz"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(bs.Root(), "r1", "nested"), 0o755); err != nil {
		t.Fatal(err)
	}
	names, err := r.list()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != manifestFile {
		t.Fatalf("list = %v, want [%s]", names, manifestFile)
	}
}

func TestFingerprint64(t *testing.T) {
	a := Fingerprint64([]byte("hello"))
	b := Fingerprint64([]byte("hello"))
	c := Fingerprint64([]byte("hello!"))
	if a != b {
		t.Errorf("fingerprint not deterministic: %s != %s", a, b)
	}
	if a == c {
		t.Error("distinct contents share a fingerprint")
	}
	if !strings.HasPrefix(a, "fnv1a64:") || len(a) != len("fnv1a64:")+16 {
		t.Errorf("unexpected fingerprint shape %q", a)
	}
}

func TestValidateIDExport(t *testing.T) {
	if err := ValidateID("s-000001"); err != nil {
		t.Errorf("valid id rejected: %v", err)
	}
	for _, bad := range []string{"", ".dot", "a/b", strings.Repeat("x", 129)} {
		if err := ValidateID(bad); err == nil {
			t.Errorf("ValidateID(%q) accepted", bad)
		}
	}
}

// TestStoreImplementsBackend pins the interface conformance of the
// state-dir store and its adapter methods.
func TestStoreImplementsBackend(t *testing.T) {
	dir := t.TempDir()
	var b Backend
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b = s
	if b.Location() != dir {
		t.Errorf("Location() = %q, want %q", b.Location(), dir)
	}
	if !b.SupportsWAL() {
		t.Error("state-dir store must support WALs")
	}
}
