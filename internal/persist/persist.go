// Package persist is the snapshot/restore persistence layer for the
// serving subsystem: versioned, self-describing codecs for per-session
// mechanism state and an atomic file store for a server's state directory.
//
// Why it exists: every analyst session tracks privacy-budget state that the
// paper's Figure-1 game requires to survive for the lifetime of the
// dataset — MW log weights, sparse-vector epoch counters and the pending
// noisy threshold, the accountant ledger, the noise-stream positions, and
// the audit transcript. Before this package that state lived only in
// process memory, so restarting `pmwcm serve` silently destroyed it.
//
// The format is a JSON envelope carrying a format name, an explicit schema
// version, and the payload. Self-description is deliberate: a state file
// identifies what it is without out-of-band context, decoding verifies
// format and version before touching the payload, and files written by a
// newer schema are refused rather than misread. Floating-point state
// round-trips exactly — encoding/json formats float64 with the shortest
// representation that parses back to the same bits — which the layer's
// central invariant depends on: a session restored from a snapshot
// continues bit-identically to an uninterrupted one (see core.Restore and
// the golden tests in internal/core and internal/service).
//
// A state directory holds one file per session plus a manifest recording
// the session-id sequence and a fingerprint of the private dataset, so a
// restart against the wrong data is detected instead of silently serving a
// different dataset under an old ledger. All writes are atomic
// (temp file + rename in the same directory), so a crash mid-write leaves
// the previous checkpoint intact, never a torn file.
package persist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/transcript"
)

// SchemaVersion is the current on-disk schema. Bump it when a payload
// shape changes incompatibly; Decode refuses files from newer schemas and
// future versions must keep decoding every older one they claim to.
const SchemaVersion = 1

// Format names identify payload types inside envelopes.
const (
	// FormatSession is a serialized SessionState.
	FormatSession = "pmwcm-session"
	// FormatManifest is a serialized Manifest.
	FormatManifest = "pmwcm-manifest"
)

// Envelope is the self-describing frame around every persisted payload.
type Envelope struct {
	// Format names the payload type (FormatSession, FormatManifest).
	Format string `json:"format"`
	// Version is the schema version the payload was written under.
	Version int `json:"version"`
	// SavedAt records the wall-clock write time (informational only; no
	// restored behavior depends on it).
	SavedAt time.Time `json:"saved_at"`
	// Payload is the enclosed document.
	Payload json.RawMessage `json:"payload"`
}

// Encode wraps payload in a current-version envelope.
func Encode(format string, payload any) ([]byte, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("persist: encoding %s payload: %w", format, err)
	}
	data, err := json.MarshalIndent(Envelope{
		Format:  format,
		Version: SchemaVersion,
		SavedAt: time.Now().UTC(),
		Payload: raw,
	}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("persist: encoding %s envelope: %w", format, err)
	}
	return append(data, '\n'), nil
}

// Decode verifies the envelope's format and version, then unmarshals the
// payload into out. Files written by a newer schema are refused: the
// payload may carry state this version does not know how to restore, and
// guessing would corrupt a privacy ledger.
func Decode(data []byte, format string, out any) error {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("persist: decoding envelope: %w", err)
	}
	if env.Format != format {
		return fmt.Errorf("persist: file format %q, want %q", env.Format, format)
	}
	if env.Version < 1 || env.Version > SchemaVersion {
		return fmt.Errorf("persist: %s schema version %d not supported (current %d)", format, env.Version, SchemaVersion)
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		return fmt.Errorf("persist: decoding %s payload: %w", format, err)
	}
	return nil
}

// SessionState is the complete durable state of one analyst session: the
// mechanism snapshot plus the service-level identity and audit record
// around it. Params stays an opaque JSON document at this layer — the
// service owns its parameter schema; persist only guarantees the document
// round-trips.
type SessionState struct {
	// ID is the session identifier (also the state filename key).
	ID string `json:"id"`
	// Created is the session's creation time.
	Created time.Time `json:"created"`
	// Closed records an analyst-initiated permanent close. A graceful
	// server shutdown checkpoints sessions with Closed=false so they
	// resume live after restart.
	Closed bool `json:"closed"`
	// Oracle names the single-query oracle the session was served with.
	// Recovery refuses a mismatch: under some accountants an oracle swap
	// leaves every derived parameter unchanged, yet the continued answers
	// would no longer be the ones the uninterrupted run releases.
	Oracle string `json:"oracle"`
	// Params is the service-level session-parameter document.
	Params json.RawMessage `json:"params"`
	// Core is the mechanism snapshot.
	Core *core.Snapshot `json:"core"`
	// Transcript is the audit transcript up to the checkpoint.
	Transcript *transcript.Transcript `json:"transcript"`
}

// DatasetInfo fingerprints a private dataset for drift detection. The hash
// covers the row indices and the universe description; it is an integrity
// check against operator error (serving old state over different data),
// not a cryptographic commitment.
type DatasetInfo struct {
	N        int    `json:"n"`
	Universe string `json:"universe"`
	Hash     string `json:"hash"`
}

// Fingerprint computes the dataset's identity record.
func Fingerprint(d *dataset.Dataset) DatasetInfo {
	h := fnv.New64a()
	h.Write([]byte(d.U.String()))
	var buf [8]byte
	for _, r := range d.Rows {
		binary.LittleEndian.PutUint64(buf[:], uint64(r))
		h.Write(buf[:])
	}
	return DatasetInfo{
		N:        d.N(),
		Universe: d.U.String(),
		Hash:     fmt.Sprintf("fnv1a64:%016x", h.Sum64()),
	}
}

// Manifest is the state directory's root document.
type Manifest struct {
	// Seq is the highest session sequence number issued, so restarted
	// managers never reuse a session id.
	Seq uint64 `json:"seq"`
	// Dataset fingerprints the private dataset the sessions were served
	// from; opening the store against different data fails.
	Dataset DatasetInfo `json:"dataset"`
	// Source is the manager's root noise-stream position, recorded every
	// time a session source is split off it. Recovery resumes the root
	// stream from here — even if the operator changed the seed flag — so a
	// session created after a restart can never be handed a noise stream a
	// pre-restart session already drew from.
	Source sample.State `json:"source"`
}

// Store is a session state directory. Methods are not safe for concurrent
// use on the same id; the service serializes per-session saves behind the
// session mutex and manifest saves behind the manager mutex.
type Store struct {
	dir  string
	fsys fault.FS
	met  *storeMetrics
}

// storeMetrics holds the store's checkpoint instruments. nil means
// uninstrumented: the write path pays one nil check and no clock reads.
type storeMetrics struct {
	count map[string]*obs.Counter // by checkpoint kind
	bytes map[string]*obs.Counter
	fsync *obs.Histogram
	// WAL instruments (wal.go / committer.go): records and bytes appended,
	// compactions (log folded into a snapshot and truncated), torn-tail
	// truncations found at recovery, and the group-commit batch-size
	// histogram (WAL files made durable per fsync batch).
	walRecords     *obs.Counter
	walBytes       *obs.Counter
	walCompactions *obs.Counter
	walTruncations *obs.Counter
	walBatch       *obs.Histogram
}

// Checkpoint kind labels on the store's counters.
const (
	// KindManifest labels manifest checkpoints.
	KindManifest = "manifest"
	// KindSession labels per-session state checkpoints.
	KindSession = "session"
)

// Instrument attaches checkpoint observability to the store:
// pmwcm_checkpoint_total{kind} and pmwcm_checkpoint_bytes_total{kind}
// counters plus the pmwcm_fsync_seconds latency histogram. Call once,
// before the store is used concurrently; a nil registry is a no-op.
// Instrumentation is timing/volume-only and never alters what is written.
func (s *Store) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	const (
		countHelp = "Durable checkpoints committed, by kind."
		bytesHelp = "Bytes committed to durable checkpoints, by kind."
	)
	m := &storeMetrics{
		count: map[string]*obs.Counter{},
		bytes: map[string]*obs.Counter{},
		fsync: reg.Histogram("pmwcm_fsync_seconds",
			"Checkpoint fsync latency in seconds.", obs.DefBuckets, nil),
		walRecords: reg.Counter("pmwcm_wal_records_total",
			"Records appended to session write-ahead logs.", nil),
		walBytes: reg.Counter("pmwcm_wal_bytes_total",
			"Bytes appended to session write-ahead logs (framing included).", nil),
		walCompactions: reg.Counter("pmwcm_wal_compactions_total",
			"WAL compactions: log folded into a snapshot and truncated.", nil),
		walTruncations: reg.Counter("pmwcm_wal_truncations_total",
			"Torn WAL tails truncated at recovery.", nil),
		walBatch: reg.Histogram("pmwcm_wal_commit_batch",
			"WAL files made durable per group-commit fsync batch.", obs.SizeBuckets, nil),
	}
	for _, kind := range []string{KindManifest, KindSession, KindWAL} {
		m.count[kind] = reg.Counter("pmwcm_checkpoint_total", countHelp, obs.Labels{"kind": kind})
		m.bytes[kind] = reg.Counter("pmwcm_checkpoint_bytes_total", bytesHelp, obs.Labels{"kind": kind})
	}
	s.met = m
}

// Open creates the directory if needed and returns a store over it,
// backed by the real filesystem.
func Open(dir string) (*Store, error) {
	return OpenFS(dir, fault.OS)
}

// OpenFS is Open over an explicit filesystem — the seam fault-injection
// drills use to intercept every durability syscall the store makes.
// Opening also sweeps stale ".tmp-*" files: a crash mid-writeAtomic (after
// the temp file was created, before its rename) leaves one behind, and no
// later write ever reuses or reads it, so the only correct recovery is to
// delete it.
func OpenFS(dir string, fsys fault.FS) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("persist: empty state directory")
	}
	if fsys == nil {
		fsys = fault.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating state directory: %w", err)
	}
	s := &Store{dir: dir, fsys: fsys}
	if err := s.sweepTemp(); err != nil {
		return nil, err
	}
	return s, nil
}

// sweepTemp removes stale temp files left by a crash mid-writeAtomic.
func (s *Store) sweepTemp() error {
	entries, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("persist: listing state directory: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), tmpPrefix) {
			continue
		}
		if err := s.fsys.Remove(filepath.Join(s.dir, e.Name())); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("persist: sweeping stale temp file %s: %w", e.Name(), err)
		}
	}
	return nil
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

const (
	manifestFile  = "manifest.json"
	sessionPrefix = "session-"
	sessionSuffix = ".json"
	tmpPrefix     = ".tmp-"
)

// validID restricts session ids to filename-safe characters so an id can
// never escape the state directory or collide with the manifest.
func validID(id string) error {
	if id == "" || len(id) > 128 {
		return fmt.Errorf("persist: invalid session id %q", id)
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("persist: invalid session id %q", id)
		}
	}
	if strings.HasPrefix(id, ".") {
		return fmt.Errorf("persist: invalid session id %q", id)
	}
	return nil
}

// sessionPath maps an id to its state file.
func (s *Store) sessionPath(id string) string {
	return filepath.Join(s.dir, sessionPrefix+id+sessionSuffix)
}

// timedSync fsyncs f, landing the latency in the fsync histogram when the
// store is instrumented. Snapshot and WAL syncs share the instrument, so
// the histogram stays the one place fsync health is read from.
func (s *Store) timedSync(f fault.File) error {
	var start time.Time
	if s.met != nil {
		start = time.Now()
	}
	err := f.Sync()
	if s.met != nil && err == nil {
		s.met.fsync.Observe(time.Since(start).Seconds())
	}
	return err
}

// writeAtomic writes data to path via a temp file and rename, so readers
// and crash recovery only ever observe complete files. kind labels the
// checkpoint counters when the store is instrumented.
func (s *Store) writeAtomic(path, kind string, data []byte) error {
	tmp, err := s.fsys.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("persist: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	serr := s.timedSync(tmp)
	cerr := tmp.Close()
	for _, err := range []error{werr, serr, cerr} {
		if err != nil {
			s.fsys.Remove(tmpName)
			return fmt.Errorf("persist: writing %s: %w", filepath.Base(path), err)
		}
	}
	if err := s.fsys.Rename(tmpName, path); err != nil {
		s.fsys.Remove(tmpName)
		return fmt.Errorf("persist: committing %s: %w", filepath.Base(path), err)
	}
	if s.met != nil {
		s.met.count[kind].Inc()
		s.met.bytes[kind].Add(uint64(len(data)))
	}
	return nil
}

// SaveManifest atomically writes the manifest.
func (s *Store) SaveManifest(m *Manifest) error {
	data, err := Encode(FormatManifest, m)
	if err != nil {
		return err
	}
	return s.writeAtomic(filepath.Join(s.dir, manifestFile), KindManifest, data)
}

// LoadManifest reads the manifest, returning (nil, nil) when the directory
// has none yet (a fresh state directory).
func (s *Store) LoadManifest() (*Manifest, error) {
	data, err := s.fsys.ReadFile(filepath.Join(s.dir, manifestFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: reading manifest: %w", err)
	}
	var m Manifest
	if err := Decode(data, FormatManifest, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// SaveSession atomically writes one session's state file.
func (s *Store) SaveSession(st *SessionState) error {
	if err := validID(st.ID); err != nil {
		return err
	}
	data, err := Encode(FormatSession, st)
	if err != nil {
		return err
	}
	return s.writeAtomic(s.sessionPath(st.ID), KindSession, data)
}

// LoadSession reads one session's state file.
func (s *Store) LoadSession(id string) (*SessionState, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	data, err := s.fsys.ReadFile(s.sessionPath(id))
	if err != nil {
		return nil, fmt.Errorf("persist: reading session %s: %w", id, err)
	}
	var st SessionState
	if err := Decode(data, FormatSession, &st); err != nil {
		return nil, fmt.Errorf("persist: session %s: %w", id, err)
	}
	if st.ID != id {
		return nil, fmt.Errorf("persist: session file %s carries id %q", id, st.ID)
	}
	return &st, nil
}

// Sessions lists the ids with a state file, sorted. Discovery scans the
// directory rather than trusting the manifest, so a session checkpointed
// right before a crash is recovered even if no manifest write followed.
func (s *Store) Sessions() ([]string, error) {
	entries, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: listing state directory: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, sessionPrefix) || !strings.HasSuffix(name, sessionSuffix) {
			continue
		}
		id := strings.TrimSuffix(strings.TrimPrefix(name, sessionPrefix), sessionSuffix)
		if validID(id) == nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// DeleteSession removes a session's state file. Missing files are not an
// error: deletion is an idempotent cleanup.
func (s *Store) DeleteSession(id string) error {
	if err := validID(id); err != nil {
		return err
	}
	if err := s.fsys.Remove(s.sessionPath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("persist: deleting session %s: %w", id, err)
	}
	return nil
}
