// Backend abstracts the session state store so the serving layer can run
// against more than one durability substrate. Two implementations exist:
//
//   - *Store (persist.go): the original state directory on a local
//     filesystem, reached through the fault.FS seam. Supports per-session
//     WALs, so a serve replica on a state dir gets group-committed
//     appends between snapshots.
//   - *Remote (this file): a thin HTTP client against the blob endpoint
//     a `pmwcm store` process exposes (blobserver.go). The wire format is
//     exactly the state-dir file format — the same envelope bytes land in
//     the same file names, namespaced per replica — so an operator can
//     point a state-dir replica at a copied-down namespace and vice
//     versa. Remote does not support WALs: without a durable append
//     primitive on the far side, the write-ahead rule falls back to
//     snapshot-per-spend, which is the pre-WAL durability contract.
//
// The split the interface draws is deliberate: Manifest and SessionState
// documents are what a Backend stores; WAL lifecycle is an optional
// capability (SupportsWAL) so the service can decide between append and
// snapshot durability at startup rather than failing mid-spend.
package persist

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/obs"
)

// Backend is a session state store: a manifest slot, a keyed set of
// session state documents, and an optional per-session WAL facility.
// Implementations must keep the documents bit-exact across a round trip —
// the bit-identical-restore invariant decodes what Save encoded.
// Like *Store, per-id method calls are serialized by the caller.
type Backend interface {
	// Location names where state lives (directory path or endpoint URL),
	// for logs and the healthz document.
	Location() string
	// Instrument attaches checkpoint observability. nil registry is a
	// no-op; call once before concurrent use.
	Instrument(reg *obs.Registry)

	// SaveManifest durably replaces the manifest.
	SaveManifest(m *Manifest) error
	// LoadManifest reads the manifest, (nil, nil) when none exists yet.
	LoadManifest() (*Manifest, error)

	// SaveSession durably replaces one session's state document.
	SaveSession(st *SessionState) error
	// LoadSession reads one session's state document.
	LoadSession(id string) (*SessionState, error)
	// Sessions lists ids that have a state document, sorted.
	Sessions() ([]string, error)
	// DeleteSession removes a session's state document; idempotent.
	DeleteSession(id string) error

	// SupportsWAL reports whether the WAL lifecycle methods work. When
	// false, OpenWAL fails with ErrWALUnsupported, LoadWAL returns
	// (nil, nil), HasWAL returns false, and RemoveWAL is a no-op — the
	// shape recovery code expects from a store with no log files.
	SupportsWAL() bool
	// OpenWAL opens (creating or resuming) a session's append log.
	OpenWAL(id string) (*WAL, error)
	// LoadWAL parses a session's log, (nil, nil) when there is none.
	LoadWAL(id string) ([]*WALRecord, error)
	// HasWAL reports whether a log file exists for id.
	HasWAL(id string) bool
	// RemoveWAL deletes a session's log; idempotent.
	RemoveWAL(id string) error
}

// ErrWALUnsupported is returned by OpenWAL on backends without a durable
// append primitive. The service treats it as a configuration error at
// startup (refusing -wal), never as a runtime condition.
var ErrWALUnsupported = errors.New("persist: backend does not support write-ahead logs")

// Store implements Backend over a state directory.
var _ Backend = (*Store)(nil)

// Location returns the state directory path.
func (s *Store) Location() string { return s.dir }

// SupportsWAL reports true: state directories get per-session logs.
func (s *Store) SupportsWAL() bool { return true }

// ValidateID reports whether id is usable as a session id: non-empty,
// ≤128 filename-safe characters, no leading dot. Exposed so layers that
// mint or accept ids (the router, the service's requested-id path) agree
// with the store about what can be persisted.
func ValidateID(id string) error { return validID(id) }

// Fingerprint64 is the content fingerprint the blob protocol uses for
// end-to-end verification: fnv1a64 over the raw bytes, formatted like the
// dataset hash. The blob server stamps it on reads and the Remote backend
// recomputes it, so a truncated or corrupted body is detected at load
// time instead of surfacing later as an undecodable envelope or, worse, a
// decodable-but-wrong one.
func Fingerprint64(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("fnv1a64:%016x", h.Sum64())
}

// FingerprintHeader carries the content fingerprint on blob responses.
const FingerprintHeader = "X-Pmwcm-Fingerprint"

// Remote is the Backend over a `pmwcm store` blob endpoint. The base URL
// addresses one namespace (one replica's state), e.g.
// http://host:9099/v1/stores/r1 — blob names inside it mirror the
// state-dir file names. Writes and reads retry transient failures
// (transport errors and 5xx) with backoff; loads verify the server's
// content fingerprint before decoding.
type Remote struct {
	base    string
	client  *http.Client
	retries int
	backoff time.Duration
	met     *remoteMetrics
}

type remoteMetrics struct {
	count   map[string]*obs.Counter // by checkpoint kind, mirrors storeMetrics
	bytes   map[string]*obs.Counter
	rtt     *obs.Histogram
	retried *obs.Counter
}

// RemoteOptions tunes a Remote backend; zero values select defaults.
type RemoteOptions struct {
	// Client is the HTTP client (default: 10 s timeout).
	Client *http.Client
	// Retries is the number of attempts per request (default 3).
	Retries int
	// Backoff is the base delay between attempts, scaled linearly
	// (default 50 ms).
	Backoff time.Duration
}

// OpenRemote validates the namespace URL and probes the endpoint with a
// list request so a misconfigured fleet fails at startup, not at the
// first checkpoint.
func OpenRemote(base string, opts RemoteOptions) (*Remote, error) {
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("persist: invalid store URL %q", base)
	}
	r := &Remote{
		base:    strings.TrimRight(base, "/"),
		client:  opts.Client,
		retries: opts.Retries,
		backoff: opts.Backoff,
	}
	if r.client == nil {
		r.client = &http.Client{Timeout: 10 * time.Second}
	}
	if r.retries <= 0 {
		r.retries = 3
	}
	if r.backoff <= 0 {
		r.backoff = 50 * time.Millisecond
	}
	if _, err := r.list(); err != nil {
		return nil, fmt.Errorf("persist: probing store endpoint: %w", err)
	}
	return r, nil
}

var _ Backend = (*Remote)(nil)

// Location returns the namespace URL.
func (r *Remote) Location() string { return r.base }

// SupportsWAL reports false: the blob protocol has no durable append.
func (r *Remote) SupportsWAL() bool { return false }

// Instrument attaches checkpoint counters (same names and labels as the
// state-dir store, so dashboards are backend-agnostic) plus remote-only
// request-latency and retry instruments.
func (r *Remote) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m := &remoteMetrics{
		count: map[string]*obs.Counter{},
		bytes: map[string]*obs.Counter{},
		rtt: reg.Histogram("pmwcm_store_request_seconds",
			"Remote store request latency in seconds (successful attempts).", obs.DefBuckets, nil),
		retried: reg.Counter("pmwcm_store_retries_total",
			"Remote store attempts retried after a transient failure.", nil),
	}
	const (
		countHelp = "Durable checkpoints committed, by kind."
		bytesHelp = "Bytes committed to durable checkpoints, by kind."
	)
	for _, kind := range []string{KindManifest, KindSession} {
		m.count[kind] = reg.Counter("pmwcm_checkpoint_total", countHelp, obs.Labels{"kind": kind})
		m.bytes[kind] = reg.Counter("pmwcm_checkpoint_bytes_total", bytesHelp, obs.Labels{"kind": kind})
	}
	r.met = m
}

// blobURL maps a blob name into the namespace.
func (r *Remote) blobURL(name string) string { return r.base + "/blobs/" + name }

// errNotFound marks a 404 so loads can distinguish "absent" from broken.
var errNotFound = errors.New("persist: blob not found")

// transient reports whether an attempt is worth retrying: transport
// errors and 5xx responses are; 4xx are contract violations and are not.
func transient(status int, err error) bool {
	if err != nil {
		return true
	}
	return status >= 500
}

// do runs one request with retries, returning the final response body and
// status. verify enables fingerprint checking on 200 bodies (reads); a
// fingerprint mismatch is treated as transient — the blob may have been
// replaced mid-read — and retried.
func (r *Remote) do(method, u string, body []byte, verify bool) ([]byte, int, error) {
	var lastErr error
	for attempt := 0; attempt < r.retries; attempt++ {
		if attempt > 0 {
			if r.met != nil {
				r.met.retried.Inc()
			}
			time.Sleep(r.backoff * time.Duration(attempt))
		}
		var reqBody io.Reader
		if body != nil {
			reqBody = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, u, reqBody)
		if err != nil {
			return nil, 0, fmt.Errorf("persist: building %s %s: %w", method, u, err)
		}
		start := time.Now()
		resp, err := r.client.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("persist: %s %s: %w", method, u, err)
			continue
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxBlobBytes+1))
		resp.Body.Close()
		if rerr != nil {
			lastErr = fmt.Errorf("persist: reading %s %s response: %w", method, u, rerr)
			continue
		}
		if transient(resp.StatusCode, nil) {
			lastErr = fmt.Errorf("persist: %s %s: status %d: %s", method, u, resp.StatusCode, firstLine(data))
			continue
		}
		if r.met != nil {
			r.met.rtt.Observe(time.Since(start).Seconds())
		}
		if resp.StatusCode == http.StatusNotFound {
			return nil, resp.StatusCode, fmt.Errorf("%w: %s", errNotFound, u)
		}
		if resp.StatusCode/100 != 2 {
			return nil, resp.StatusCode, fmt.Errorf("persist: %s %s: status %d: %s", method, u, resp.StatusCode, firstLine(data))
		}
		if verify {
			want := resp.Header.Get(FingerprintHeader)
			if want == "" {
				return nil, resp.StatusCode, fmt.Errorf("persist: %s %s: response missing %s header", method, u, FingerprintHeader)
			}
			if got := Fingerprint64(data); got != want {
				lastErr = fmt.Errorf("persist: %s %s: content fingerprint %s, header says %s", method, u, got, want)
				continue
			}
		}
		return data, resp.StatusCode, nil
	}
	return nil, 0, lastErr
}

// firstLine trims an error body for inclusion in an error message.
func firstLine(data []byte) string {
	s := strings.TrimSpace(string(data))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// put writes one blob and lands the checkpoint metrics.
func (r *Remote) put(name, kind string, data []byte) error {
	if _, _, err := r.do(http.MethodPut, r.blobURL(name), data, false); err != nil {
		return err
	}
	if r.met != nil {
		r.met.count[kind].Inc()
		r.met.bytes[kind].Add(uint64(len(data)))
	}
	return nil
}

// SaveManifest durably replaces the manifest blob.
func (r *Remote) SaveManifest(m *Manifest) error {
	data, err := Encode(FormatManifest, m)
	if err != nil {
		return err
	}
	return r.put(manifestFile, KindManifest, data)
}

// LoadManifest reads and verifies the manifest blob, (nil, nil) when the
// namespace has none yet.
func (r *Remote) LoadManifest() (*Manifest, error) {
	data, _, err := r.do(http.MethodGet, r.blobURL(manifestFile), nil, true)
	if errors.Is(err, errNotFound) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := Decode(data, FormatManifest, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// SaveSession durably replaces one session's state blob.
func (r *Remote) SaveSession(st *SessionState) error {
	if err := validID(st.ID); err != nil {
		return err
	}
	data, err := Encode(FormatSession, st)
	if err != nil {
		return err
	}
	return r.put(sessionPrefix+st.ID+sessionSuffix, KindSession, data)
}

// LoadSession reads and verifies one session's state blob.
func (r *Remote) LoadSession(id string) (*SessionState, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	data, _, err := r.do(http.MethodGet, r.blobURL(sessionPrefix+id+sessionSuffix), nil, true)
	if err != nil {
		return nil, fmt.Errorf("persist: reading session %s: %w", id, err)
	}
	var st SessionState
	if err := Decode(data, FormatSession, &st); err != nil {
		return nil, fmt.Errorf("persist: session %s: %w", id, err)
	}
	if st.ID != id {
		return nil, fmt.Errorf("persist: session blob %s carries id %q", id, st.ID)
	}
	return &st, nil
}

// list fetches the namespace's blob names.
func (r *Remote) list() ([]string, error) {
	data, _, err := r.do(http.MethodGet, r.base+"/blobs", nil, false)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Blobs []string `json:"blobs"`
	}
	if err := decodeJSON(data, &doc); err != nil {
		return nil, fmt.Errorf("persist: decoding blob list: %w", err)
	}
	return doc.Blobs, nil
}

// Sessions lists the ids with a state blob, sorted (the server sorts).
func (r *Remote) Sessions() ([]string, error) {
	names, err := r.list()
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, name := range names {
		if !strings.HasPrefix(name, sessionPrefix) || !strings.HasSuffix(name, sessionSuffix) {
			continue
		}
		id := strings.TrimSuffix(strings.TrimPrefix(name, sessionPrefix), sessionSuffix)
		if validID(id) == nil {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// DeleteSession removes a session's state blob; deleting an absent blob
// succeeds.
func (r *Remote) DeleteSession(id string) error {
	if err := validID(id); err != nil {
		return err
	}
	_, _, err := r.do(http.MethodDelete, r.blobURL(sessionPrefix+id+sessionSuffix), nil, false)
	if errors.Is(err, errNotFound) {
		return nil
	}
	return err
}

// OpenWAL fails: the blob protocol has no durable append primitive.
func (r *Remote) OpenWAL(string) (*WAL, error) { return nil, ErrWALUnsupported }

// LoadWAL reports no log, matching a store that never wrote one.
func (r *Remote) LoadWAL(string) ([]*WALRecord, error) { return nil, nil }

// HasWAL reports false: remote sessions have no log files.
func (r *Remote) HasWAL(string) bool { return false }

// RemoveWAL is a no-op: there is never a log to remove.
func (r *Remote) RemoveWAL(string) error { return nil }
