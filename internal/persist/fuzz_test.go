package persist

// fuzz_test.go fuzzes the WAL frame parser — the one piece of the
// durability stack that must digest arbitrary bytes (a crashed writer can
// leave any tail). The contract under fuzz: never panic, never return a
// record that did not pass its length and CRC checks, always report a
// clean offset that is a real frame boundary, and be idempotent — parsing
// the clean prefix again must yield the same records and no tear, because
// LoadWAL truncates to that offset and the next recovery parses the result.

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzWALBytes builds a valid two-record WAL image for the fuzz corpus.
func fuzzWALBytes(tb testing.TB, id string) []byte {
	tb.Helper()
	var buf bytes.Buffer
	for _, rec := range []*WALRecord{walHeader(id), walEvent(1), walEvent(2)} {
		b, err := frame(rec)
		if err != nil {
			tb.Fatal(err)
		}
		buf.Write(b)
	}
	return buf.Bytes()
}

func FuzzLoadWAL(f *testing.F) {
	const id = "s-000001"
	valid := fuzzWALBytes(f, id)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail mid-frame
	f.Add(valid[:9])            // torn tail mid-header
	f.Add([]byte{})
	bitflip := append([]byte(nil), valid...)
	bitflip[len(bitflip)/2] ^= 0x20
	f.Add(bitflip)
	// Oversized length prefix: claims a payload far past EOF.
	huge := make([]byte, 8)
	binary.LittleEndian.PutUint32(huge[0:4], 0xFFFFFFF0)
	f.Add(huge)
	f.Add(append(append([]byte(nil), valid...), huge...))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, clean, torn, err := parseWAL(data, id)
		if err != nil {
			// Refusal (foreign header, mid-file garbage) is a valid outcome;
			// the file is handed to the operator instead of being replayed.
			return
		}
		if clean < 0 || clean > int64(len(data)) {
			t.Fatalf("clean offset %d outside [0, %d]", clean, len(data))
		}
		if !torn && clean != int64(len(data)) {
			t.Fatalf("no tear reported but clean offset %d < len %d", clean, len(data))
		}
		for i, r := range recs {
			if r == nil {
				t.Fatalf("record %d is nil", i)
			}
			if r.Kind == WALHeader {
				t.Fatalf("header record leaked into the replay stream at %d", i)
			}
		}
		// Idempotence: what LoadWAL would truncate to must re-parse to the
		// same records with no tear — recovery after recovery sees one truth.
		recs2, clean2, torn2, err2 := parseWAL(data[:clean], id)
		if err2 != nil {
			t.Fatalf("clean prefix failed to re-parse: %v", err2)
		}
		if torn2 || clean2 != clean || len(recs2) != len(recs) {
			t.Fatalf("re-parse diverged: torn=%v clean=%d records=%d, want torn=false clean=%d records=%d",
				torn2, clean2, len(recs2), clean, len(recs))
		}
	})
}
