// BlobServer is the serving side of the Remote backend: a small,
// namespace-partitioned blob store over a directory tree, spoken over
// HTTP by `pmwcm store`. One store process holds the state of a whole
// fleet — each serve replica gets its own namespace (a subdirectory), so
// replicas never collide on manifest.json while an operator still backs
// up or inspects one flat tree.
//
// The server reuses the state-dir discipline: writes are atomic
// (temp + fsync + rename through the fault.FS seam), reads stamp a
// content fingerprint header for end-to-end verification, and names are
// validated against the same character set as session ids so a request
// can never escape the root directory.
package persist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/obs"
)

// maxBlobBytes caps a single blob (and a Remote response body). Session
// state grows with the transcript; 64 MiB is ~two orders of magnitude
// above the largest state the load tests produce.
const maxBlobBytes = 64 << 20

// BlobServer serves GET/PUT/DELETE/list over namespaced blobs rooted at a
// directory. Safe for concurrent use: atomic rename is the commit point,
// concurrent writers to one name last-write-win whole files, which is the
// same contract the state dir gives two processes pointed at it.
type BlobServer struct {
	root string
	fsys fault.FS
	met  *blobMetrics
}

type blobMetrics struct {
	reqs  map[string]*obs.Counter // by op: get/put/delete/list
	bytes map[string]*obs.Counter // by op: get/put
}

// NewBlobServer creates the root directory if needed and returns a server
// over it. A nil fsys uses the real filesystem.
func NewBlobServer(root string, fsys fault.FS) (*BlobServer, error) {
	if root == "" {
		return nil, fmt.Errorf("persist: empty blob root")
	}
	if fsys == nil {
		fsys = fault.OS
	}
	if err := fsys.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating blob root: %w", err)
	}
	return &BlobServer{root: root, fsys: fsys}, nil
}

// Root returns the blob root directory.
func (b *BlobServer) Root() string { return b.root }

// Instrument attaches pmwcm_blob_requests_total{op} and
// pmwcm_blob_bytes_total{op} counters. Call once before serving.
func (b *BlobServer) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m := &blobMetrics{reqs: map[string]*obs.Counter{}, bytes: map[string]*obs.Counter{}}
	for _, op := range []string{"get", "put", "delete", "list"} {
		m.reqs[op] = reg.Counter("pmwcm_blob_requests_total",
			"Blob store requests served, by operation.", obs.Labels{"op": op})
	}
	for _, op := range []string{"get", "put"} {
		m.bytes[op] = reg.Counter("pmwcm_blob_bytes_total",
			"Blob bytes transferred, by operation.", obs.Labels{"op": op})
	}
	b.met = m
}

func (b *BlobServer) count(op string, n int) {
	if b.met == nil {
		return
	}
	b.met.reqs[op].Inc()
	if c, ok := b.met.bytes[op]; ok {
		c.Add(uint64(n))
	}
}

// Handler returns the blob API mux:
//
//	GET    /v1/stores/{ns}/blobs        → {"blobs": [names...]}
//	GET    /v1/stores/{ns}/blobs/{name} → blob bytes + fingerprint header
//	PUT    /v1/stores/{ns}/blobs/{name} → atomic durable replace
//	DELETE /v1/stores/{ns}/blobs/{name} → idempotent delete
func (b *BlobServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stores/{ns}/blobs", b.handleList)
	mux.HandleFunc("GET /v1/stores/{ns}/blobs/{name}", b.handleGet)
	mux.HandleFunc("PUT /v1/stores/{ns}/blobs/{name}", b.handlePut)
	mux.HandleFunc("DELETE /v1/stores/{ns}/blobs/{name}", b.handleDelete)
	return mux
}

// blobError is the typed error document blob handlers return.
func blobError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// blobPath validates the namespace and name and maps them under the root.
// Both segments pass the session-id character set (no separators, no
// leading dot), so the join cannot traverse out of root.
func (b *BlobServer) blobPath(ns, name string) (string, error) {
	if err := validID(ns); err != nil {
		return "", fmt.Errorf("invalid namespace %q", ns)
	}
	if err := validID(name); err != nil {
		return "", fmt.Errorf("invalid blob name %q", name)
	}
	return filepath.Join(b.root, ns, name), nil
}

func (b *BlobServer) handleList(w http.ResponseWriter, r *http.Request) {
	ns := r.PathValue("ns")
	if err := validID(ns); err != nil {
		blobError(w, http.StatusBadRequest, fmt.Sprintf("invalid namespace %q", ns))
		return
	}
	entries, err := b.fsys.ReadDir(filepath.Join(b.root, ns))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		blobError(w, http.StatusInternalServerError, err.Error())
		return
	}
	names := []string{}
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), tmpPrefix) {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	b.count("list", 0)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"blobs": names})
}

func (b *BlobServer) handleGet(w http.ResponseWriter, r *http.Request) {
	path, err := b.blobPath(r.PathValue("ns"), r.PathValue("name"))
	if err != nil {
		blobError(w, http.StatusBadRequest, err.Error())
		return
	}
	data, err := b.fsys.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		blobError(w, http.StatusNotFound, "no such blob")
		return
	}
	if err != nil {
		blobError(w, http.StatusInternalServerError, err.Error())
		return
	}
	b.count("get", len(data))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(FingerprintHeader, Fingerprint64(data))
	w.Write(data)
}

func (b *BlobServer) handlePut(w http.ResponseWriter, r *http.Request) {
	ns, name := r.PathValue("ns"), r.PathValue("name")
	path, err := b.blobPath(ns, name)
	if err != nil {
		blobError(w, http.StatusBadRequest, err.Error())
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBlobBytes+1))
	if err != nil {
		blobError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	if len(data) > maxBlobBytes {
		blobError(w, http.StatusRequestEntityTooLarge, "blob exceeds size cap")
		return
	}
	dir := filepath.Dir(path)
	if err := b.fsys.MkdirAll(dir, 0o755); err != nil {
		blobError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if err := writeAtomicFS(b.fsys, dir, path, data); err != nil {
		blobError(w, http.StatusInternalServerError, err.Error())
		return
	}
	b.count("put", len(data))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"saved":       true,
		"bytes":       len(data),
		"fingerprint": Fingerprint64(data),
	})
}

func (b *BlobServer) handleDelete(w http.ResponseWriter, r *http.Request) {
	path, err := b.blobPath(r.PathValue("ns"), r.PathValue("name"))
	if err != nil {
		blobError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := b.fsys.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		blobError(w, http.StatusInternalServerError, err.Error())
		return
	}
	b.count("delete", 0)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"deleted": true})
}

// writeAtomicFS is writeAtomic without a *Store: temp file in the target
// directory, write, fsync, close, rename. The blob server shares the
// crash-safety contract of the state dir.
func writeAtomicFS(fsys fault.FS, dir, path string, data []byte) error {
	tmp, err := fsys.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("persist: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	for _, err := range []error{werr, serr, cerr} {
		if err != nil {
			fsys.Remove(tmpName)
			return fmt.Errorf("persist: writing %s: %w", filepath.Base(path), err)
		}
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("persist: committing %s: %w", filepath.Base(path), err)
	}
	return nil
}

// decodeJSON strictly decodes one JSON document.
func decodeJSON(data []byte, out any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(out); err != nil {
		return err
	}
	return nil
}
