package persist

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/universe"
)

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	u, err := universe.NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dataset.New(u, []int{0, 1, 2, 3, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEnvelopeRoundTrip(t *testing.T) {
	type payload struct {
		X float64 `json:"x"`
	}
	data, err := Encode(FormatManifest, payload{X: 0.1 + 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var back payload
	if err := Decode(data, FormatManifest, &back); err != nil {
		t.Fatal(err)
	}
	if back.X != 0.1+0.2 {
		t.Fatalf("float64 did not round-trip exactly: %x != %x", back.X, 0.1+0.2)
	}
	if err := Decode(data, FormatSession, &back); err == nil {
		t.Error("wrong format accepted")
	}
	// A file from a future schema must be refused.
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	env.Version = SchemaVersion + 1
	future, _ := json.Marshal(env)
	if err := Decode(future, FormatManifest, &back); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future schema accepted: %v", err)
	}
	if err := Decode([]byte("{not json"), FormatManifest, &back); err == nil {
		t.Error("garbage accepted")
	}
}

func TestStoreSessionLifecycle(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if ids, err := st.Sessions(); err != nil || len(ids) != 0 {
		t.Fatalf("fresh dir sessions = %v, %v", ids, err)
	}
	rec := &SessionState{
		ID:      "s-000001",
		Created: time.Now().UTC().Truncate(time.Second),
		Params:  json.RawMessage(`{"k":5}`),
	}
	if err := st.SaveSession(rec); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSession(&SessionState{ID: "s-000002"}); err != nil {
		t.Fatal(err)
	}
	ids, err := st.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "s-000001" || ids[1] != "s-000002" {
		t.Fatalf("sessions = %v", ids)
	}
	back, err := st.LoadSession("s-000001")
	if err != nil {
		t.Fatal(err)
	}
	var params struct {
		K int `json:"k"`
	}
	if err := json.Unmarshal(back.Params, &params); err != nil {
		t.Fatal(err)
	}
	if back.ID != rec.ID || !back.Created.Equal(rec.Created) || params.K != 5 {
		t.Fatalf("loaded %+v", back)
	}
	if err := st.DeleteSession("s-000002"); err != nil {
		t.Fatal(err)
	}
	if err := st.DeleteSession("s-000002"); err != nil {
		t.Errorf("second delete not idempotent: %v", err)
	}
	if ids, _ := st.Sessions(); len(ids) != 1 {
		t.Fatalf("after delete: %v", ids)
	}
}

func TestStoreRejectsHostileIDs(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../evil", "a/b", "a\\b", ".hidden", strings.Repeat("x", 200)} {
		if err := st.SaveSession(&SessionState{ID: id}); err == nil {
			t.Errorf("id %q accepted", id)
		}
		if _, err := st.LoadSession(id); err == nil {
			t.Errorf("load of id %q accepted", id)
		}
	}
}

func TestManifestRoundTripAndFingerprint(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if m, err := st.LoadManifest(); err != nil || m != nil {
		t.Fatalf("fresh manifest = %+v, %v", m, err)
	}
	d := testData(t)
	want := Manifest{Seq: 7, Dataset: Fingerprint(d)}
	if err := st.SaveManifest(&want); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if *got != want {
		t.Fatalf("manifest %+v != %+v", *got, want)
	}

	// The fingerprint must be stable and sensitive to rows and universe.
	if Fingerprint(d) != Fingerprint(d) {
		t.Error("fingerprint not deterministic")
	}
	d2, _ := dataset.New(d.U, []int{0, 1, 2, 3, 3, 2, 2})
	if Fingerprint(d) == Fingerprint(d2) {
		t.Error("row change not detected")
	}
}

func TestAtomicWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSession(&SessionState{ID: "s-1"}); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
	// Overwrite must replace, not append/tear.
	if err := st.SaveSession(&SessionState{ID: "s-1", Closed: true}); err != nil {
		t.Fatal(err)
	}
	back, err := st.LoadSession("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if !back.Closed {
		t.Error("overwrite did not take effect")
	}
	if _, err := os.Stat(filepath.Join(dir, "session-s-1.json")); err != nil {
		t.Error("expected session file name session-s-1.json")
	}
}

// TestOpenSweepsStaleTempFiles plants the artifact a crash mid-writeAtomic
// leaves behind — a temp file that was created but never renamed — and
// asserts the next Open deletes it while leaving real state files alone.
func TestOpenSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSession(&SessionState{ID: "s-1"}); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, ".tmp-1234567890")
	if err := os.WriteFile(stale, []byte("torn checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived reopen: %v", err)
	}
	if _, err := st2.LoadSession("s-1"); err != nil {
		t.Errorf("session file lost to the sweep: %v", err)
	}
	ids, err := st2.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "s-1" {
		t.Errorf("sessions after sweep = %v, want [s-1]", ids)
	}
}

// TestCrashMidWriteAtomicThenSweep drives the real crash path through the
// fault seam: the checkpoint's temp-file write dies (and so does the
// error-path cleanup, as it would with the process), the stale temp stays
// on disk, and a clean reopen sweeps it.
func TestCrashMidWriteAtomicThenSweep(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSession(&SessionState{ID: "s-1"}); err != nil {
		t.Fatal(err)
	}

	// Reopen through an injecting FS that crashes at the temp-file write of
	// the next checkpoint: mkdir(0), create(1), write(2) = crash.
	plan := fault.NewPlan(fault.Fault{Op: 2, Mode: fault.ModeCrash, Bytes: 5})
	ist, err := OpenFS(dir, fault.Wrap(fault.OS, plan))
	if err != nil {
		t.Fatal(err)
	}
	if err := ist.SaveSession(&SessionState{ID: "s-1", Closed: true}); !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("checkpoint error = %v, want ErrCrashed", err)
	}
	var stale []string
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			stale = append(stale, e.Name())
		}
	}
	if len(stale) != 1 {
		t.Fatalf("crashed checkpoint left %d temp files, want 1: %v", len(stale), stale)
	}

	// Restart: clean FS. The sweep removes the orphan and the pre-crash
	// checkpoint is intact.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, _ = os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("stale temp file %s survived reopen", e.Name())
		}
	}
	back, err := st2.LoadSession("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if back.Closed {
		t.Error("torn checkpoint took effect: session marked closed")
	}
}
