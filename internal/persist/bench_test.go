package persist

// bench_test.go measures the write path the WAL exists to fix. The
// baseline (BenchmarkCheckpointPerTop) is what PR 4's durability paid on
// every ⊤ answer: re-serialize the complete session state — MW table and
// full transcript included — and fsync it. BenchmarkWALAppend is the WAL's
// per-event cost, BenchmarkGroupCommit{1,8,64} the durable-commit cost at
// increasing session concurrency (one committer, one fsync per batch), and
// BenchmarkSnapshotVsWALRecovery the recovery-time read cost of the two
// formats. All run under the benchdiff gate (scripts/bench.sh micro).

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mw"
	"repro/internal/transcript"
)

// benchState synthesizes a session state with a universe-sized MW table
// and a grown transcript — the shape the per-⊤ checkpoint path serializes
// mid-interaction.
func benchState(id string, cells, events int) *SessionState {
	logw := make([]float64, cells)
	for i := range logw {
		logw[i] = -0.001 * float64(i%97)
	}
	tr := transcript.New(map[string]float64{"T": 12})
	for i := 1; i <= events; i++ {
		ev := *walEvent(i).Event
		tr.Append(ev)
	}
	return &SessionState{
		ID:         id,
		Params:     []byte(`{"k":100000}`),
		Core:       &core.Snapshot{Answered: events, MW: mw.Export{Eta: 0.1, Scale: 2, LogW: logw}},
		Transcript: tr,
	}
}

// BenchmarkCheckpointPerTop is the pre-WAL baseline: one full-state
// atomic write + fsync per ⊤ answer, O(universe + transcript) each.
func BenchmarkCheckpointPerTop(b *testing.B) {
	st, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	state := benchState("s-000001", 4096, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.SaveSession(state); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppend is the WAL's per-event append cost (no fsync — that
// is the committer's job, measured separately).
func BenchmarkWALAppend(b *testing.B) {
	st, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	w, err := st.OpenWAL("s-000001")
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rec := walEvent(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGroupCommit measures the durable cost of one ⊤ record — append +
// group-committed fsync — with p sessions committing concurrently through
// one committer. b.N counts total commits across sessions, so ns/op is
// directly comparable across the 1/8/64 variants: batching across
// sessions is the only thing that changes.
func benchGroupCommit(b *testing.B, sessions int) {
	st, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	c := NewGroupCommitter(0)
	defer c.Close()
	wals := make([]*WAL, sessions)
	for i := range wals {
		w, err := st.OpenWAL(fmt.Sprintf("s-%06d", i+1))
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		wals[i] = w
	}
	rec := walEvent(1)
	per := b.N / sessions
	extra := b.N % sessions
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	errc := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		n := per
		if i < extra {
			n++
		}
		wg.Add(1)
		go func(w *WAL, n int) {
			defer wg.Done()
			for j := 0; j < n; j++ {
				if err := w.Append(rec); err != nil {
					errc <- err
					return
				}
				if err := c.Sync(w); err != nil {
					errc <- err
					return
				}
			}
		}(wals[i], n)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		b.Fatal(err)
	}
}

// BenchmarkGroupCommit1 is one session alone: every commit pays its own
// fsync (the committer cannot batch a lone writer).
func BenchmarkGroupCommit1(b *testing.B) { benchGroupCommit(b, 1) }

// BenchmarkGroupCommit8 is 8 concurrent sessions sharing fsyncs.
func BenchmarkGroupCommit8(b *testing.B) { benchGroupCommit(b, 8) }

// BenchmarkGroupCommit64 is 64 concurrent sessions sharing fsyncs.
func BenchmarkGroupCommit64(b *testing.B) { benchGroupCommit(b, 64) }

// BenchmarkSnapshotVsWALRecovery compares the recovery-time read cost of
// the two on-disk forms of the same 256-event interaction: one compacted
// snapshot vs a snapshot plus a 256-record WAL tail to load.
func BenchmarkSnapshotVsWALRecovery(b *testing.B) {
	const events = 256
	b.Run("snapshot", func(b *testing.B) {
		st, err := Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if err := st.SaveSession(benchState("s-000001", 4096, events)); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.LoadSession("s-000001"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("snapshot+wal", func(b *testing.B) {
		st, err := Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if err := st.SaveSession(benchState("s-000001", 4096, 0)); err != nil {
			b.Fatal(err)
		}
		w, err := st.OpenWAL("s-000001")
		if err != nil {
			b.Fatal(err)
		}
		for i := 1; i <= events; i++ {
			if err := w.Append(walEvent(i)); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Sync(); err != nil {
			b.Fatal(err)
		}
		w.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.LoadSession("s-000001"); err != nil {
				b.Fatal(err)
			}
			if _, err := st.LoadWAL("s-000001"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
