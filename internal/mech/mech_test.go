package mech

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sample"
)

func TestParamsValidate(t *testing.T) {
	good := []Params{{1, 0}, {0.5, 1e-9}, {2, 0.5}}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", p, err)
		}
	}
	bad := []Params{{0, 0}, {-1, 0}, {1, -0.1}, {1, 1}, {math.NaN(), 0}, {math.Inf(1), 0}, {1, math.NaN()}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v accepted", p)
		}
	}
}

func TestLaplaceMechanism(t *testing.T) {
	src := sample.New(1)
	// Mean of released values concentrates on the true value; spread
	// matches sensitivity/eps.
	n := 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v, err := Laplace(src, 10, 1, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
		sumSq += (v - 10) * (v - 10)
	}
	if mean := sum / float64(n); math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v, want ~10", mean)
	}
	// Var = 2b², b = 2 → 8.
	if v := sumSq / float64(n); math.Abs(v-8) > 0.4 {
		t.Errorf("variance = %v, want ~8", v)
	}
	if _, err := Laplace(src, 0, -1, 1); err == nil {
		t.Error("negative sensitivity accepted")
	}
	if _, err := Laplace(src, 0, 1, 0); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestGaussianSigma(t *testing.T) {
	sigma, err := GaussianSigma(1, 1, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(2 * math.Log(1.25e5))
	if math.Abs(sigma-want) > 1e-12 {
		t.Errorf("sigma = %v, want %v", sigma, want)
	}
	if _, err := GaussianSigma(1, 1, 0); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := GaussianSigma(1, 2, 1e-5); err == nil {
		t.Error("eps>1 accepted by classical bound")
	}
	if _, err := GaussianSigma(-1, 1, 1e-5); err == nil {
		t.Error("negative sensitivity accepted")
	}
}

func TestGaussianMechanism(t *testing.T) {
	src := sample.New(2)
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		v, err := Gaussian(src, 5, 1, 1, 1e-5)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-5) > 0.1 {
		t.Errorf("mean = %v", mean)
	}
}

// The exponential mechanism must sample index i with probability
// ∝ exp(ε·score_i / (2·sens)). Check the empirical distribution.
func TestExponentialDistribution(t *testing.T) {
	src := sample.New(3)
	eps, sens := 2.0, 1.0
	scores := []float64{0, 1, 2}
	// Weights ∝ exp(eps·s/2) = {1, e, e²}.
	w := []float64{1, math.E, math.E * math.E}
	z := w[0] + w[1] + w[2]
	n := 150000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		idx, err := Exponential(src, scores, sens, eps)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	for i := range counts {
		got := float64(counts[i]) / float64(n)
		want := w[i] / z
		if math.Abs(got-want) > 0.01 {
			t.Errorf("P(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestExponentialValidation(t *testing.T) {
	src := sample.New(4)
	if _, err := Exponential(src, nil, 1, 1); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, err := Exponential(src, []float64{1}, 0, 1); err == nil {
		t.Error("sens=0 accepted")
	}
	if _, err := Exponential(src, []float64{1}, 1, 0); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestReportNoisyMaxPrefersLargeScores(t *testing.T) {
	src := sample.New(5)
	scores := []float64{0, 0, 5}
	n := 20000
	var wins int
	for i := 0; i < n; i++ {
		idx, err := ReportNoisyMax(src, scores, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if idx == 2 {
			wins++
		}
	}
	if rate := float64(wins) / float64(n); rate < 0.9 {
		t.Errorf("clear winner selected only %v of the time", rate)
	}
	if _, err := ReportNoisyMax(src, nil, 1, 1); err == nil {
		t.Error("empty accepted")
	}
	if _, err := ReportNoisyMax(src, []float64{1}, -1, 1); err == nil {
		t.Error("bad sens accepted")
	}
}

func TestBasicComposition(t *testing.T) {
	p := BasicComposition(0.1, 1e-6, 10)
	if math.Abs(p.Eps-1) > 1e-12 || math.Abs(p.Delta-1e-5) > 1e-18 {
		t.Errorf("basic = %+v", p)
	}
}

// Theorem 3.10 arithmetic against a hand-computed instance:
// ε₀=0.1, T=100, δ′=1e-6 → ε = √(2·100·ln(1e6))·0.1 + 2·100·0.01.
func TestAdvancedCompositionHandChecked(t *testing.T) {
	p, err := AdvancedComposition(0.1, 1e-8, 100, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	wantEps := math.Sqrt(2*100*math.Log(1e6))*0.1 + 2
	if math.Abs(p.Eps-wantEps) > 1e-9 {
		t.Errorf("eps = %v, want %v", p.Eps, wantEps)
	}
	wantDelta := 1e-6 + 100*1e-8
	if math.Abs(p.Delta-wantDelta) > 1e-18 {
		t.Errorf("delta = %v, want %v", p.Delta, wantDelta)
	}
}

func TestAdvancedCompositionValidation(t *testing.T) {
	if _, err := AdvancedComposition(0.1, 0, 0, 1e-6); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := AdvancedComposition(0.1, 0, 10, 0); err == nil {
		t.Error("delta'=0 accepted")
	}
	if _, err := AdvancedComposition(-0.1, 0, 10, 1e-6); err == nil {
		t.Error("negative eps0 accepted")
	}
}

// Advanced composition beats basic composition for small ε₀ and large T —
// the whole reason the paper can afford T oracle calls.
func TestAdvancedBeatsBasicForManyMechanisms(t *testing.T) {
	eps0 := 0.01
	T := 1000
	adv, err := AdvancedComposition(eps0, 0, T, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	basic := BasicComposition(eps0, 0, T)
	if adv.Eps >= basic.Eps {
		t.Errorf("advanced (%v) not better than basic (%v)", adv.Eps, basic.Eps)
	}
}

// The paper's split schedule must actually satisfy its promise: composing T
// mechanisms at (ε₀, δ₀) = SplitBudget(ε, δ, T) stays within (ε, δ) under
// Theorem 3.10 with δ′ = δ/2. Property-check over a parameter grid.
func TestSplitBudgetRoundTrip(t *testing.T) {
	f := func(rawEps, rawDelta float64, rawT int) bool {
		eps := 0.05 + math.Mod(math.Abs(rawEps), 1.0)      // (0.05, 1.05)
		delta := 1e-9 + math.Mod(math.Abs(rawDelta), 1e-3) // tiny
		T := 1 + rawT%2000
		if T < 1 {
			T = 1
		}
		eps0, delta0, err := SplitBudget(eps, delta, T)
		if err != nil {
			return false
		}
		got, err := AdvancedComposition(eps0, delta0, T, delta/2)
		if err != nil {
			return false
		}
		// ε = √(2T ln(2/δ))·ε₀ + 2T ε₀² = ε/2 + ε²/(4 ln(2/δ)) ≤ ε for ε ≤ 1ish.
		return got.Eps <= eps+1e-9 && got.Delta <= delta+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitBudgetValidation(t *testing.T) {
	if _, _, err := SplitBudget(1, 0, 10); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, _, err := SplitBudget(1, 1e-6, 0); err == nil {
		t.Error("T=0 accepted")
	}
	if _, _, err := SplitBudget(0, 1e-6, 10); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestAccountantTotals(t *testing.T) {
	budget := Params{Eps: 1, Delta: 1e-6}
	basic, err := NewAccountant("basic", budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := NewAccountant("advanced", budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Accountant{basic, adv} {
		if got := a.Total(); got.Eps != 0 || got.Delta != 0 {
			t.Errorf("%s: empty total = %+v", a.Name(), got)
		}
		for i := 0; i < 5; i++ {
			if err := a.Spend(ApproxCost(0.1, 1e-7)); err != nil {
				t.Fatal(err)
			}
		}
		if a.Count() != 5 {
			t.Errorf("%s: Count = %d", a.Name(), a.Count())
		}
	}
	if got := basic.Total(); math.Abs(got.Eps-0.5) > 1e-12 {
		t.Errorf("basic eps = %v", got.Eps)
	}
	want, _ := AdvancedComposition(0.1, 1e-7, 5, budget.Delta/4)
	if got := adv.Total(); math.Abs(got.Eps-want.Eps) > 1e-12 {
		t.Errorf("advanced = %v, want %v", got.Eps, want.Eps)
	}
}

// Empirical DP check of the Laplace mechanism itself: on two adjacent
// values (differing by the sensitivity), output histograms must satisfy
// P₀(S) ≤ e^ε·P₁(S) + slack for interval events S.
func TestLaplaceMechanismEmpiricalDP(t *testing.T) {
	src := sample.New(6)
	eps := 1.0
	n := 300000
	bins := 30
	lo, hi := -6.0, 7.0
	width := (hi - lo) / float64(bins)
	h0 := make([]float64, bins)
	h1 := make([]float64, bins)
	for i := 0; i < n; i++ {
		v0, _ := Laplace(src, 0, 1, eps)
		v1, _ := Laplace(src, 1, 1, eps)
		if v0 >= lo && v0 < hi {
			h0[int((v0-lo)/width)]++
		}
		if v1 >= lo && v1 < hi {
			h1[int((v1-lo)/width)]++
		}
	}
	for i := 0; i < bins; i++ {
		p0 := h0[i] / float64(n)
		p1 := h1[i] / float64(n)
		if p0 < 0.003 || p1 < 0.003 {
			continue
		}
		if p0 > math.Exp(eps)*p1*1.15 || p1 > math.Exp(eps)*p0*1.15 {
			t.Errorf("bin %d violates ε=1 ratio: p0=%v p1=%v", i, p0, p1)
		}
	}
}
