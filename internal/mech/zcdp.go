package mech

import (
	"fmt"
	"math"
	"sync"
)

// Zero-concentrated differential privacy (zCDP, Bun–Steinke 2016) gives a
// tighter composition calculus than Theorem 3.10 for Gaussian-noise
// mechanisms — the noise our gradient-descent oracles add. The paper
// predates zCDP and uses DRV10 strong composition; we provide both so the
// composition experiment can show the gap, and so deployments of the
// oracles can account more tightly.
//
//   - a Gaussian mechanism with L2 sensitivity Δ and noise σ satisfies
//     ρ-zCDP with ρ = Δ²/(2σ²);
//   - ρ values add under (adaptive) composition;
//   - ρ-zCDP implies (ρ + 2·√(ρ·ln(1/δ)), δ)-DP for every δ > 0.

// GaussianRho returns the zCDP parameter of a Gaussian mechanism.
func GaussianRho(sensitivity, sigma float64) (float64, error) {
	if sensitivity < 0 {
		return 0, fmt.Errorf("mech: negative sensitivity %v", sensitivity)
	}
	if sigma <= 0 {
		return 0, fmt.Errorf("mech: sigma %v must be positive", sigma)
	}
	return sensitivity * sensitivity / (2 * sigma * sigma), nil
}

// RhoToDP converts a zCDP guarantee to an (ε, δ)-DP guarantee.
func RhoToDP(rho, delta float64) (Params, error) {
	if rho < 0 {
		return Params{}, fmt.Errorf("mech: negative rho %v", rho)
	}
	if delta <= 0 || delta >= 1 {
		return Params{}, fmt.Errorf("mech: delta %v must be in (0, 1)", delta)
	}
	return Params{Eps: rho + 2*math.Sqrt(rho*math.Log(1/delta)), Delta: delta}, nil
}

// ZCDPAccountant tracks a composition of zCDP mechanisms. Safe for
// concurrent use: long-lived sessions spend while status reads total.
type ZCDPAccountant struct {
	mu  sync.Mutex
	rho float64
	n   int
}

// SpendGaussian records one Gaussian release.
func (a *ZCDPAccountant) SpendGaussian(sensitivity, sigma float64) error {
	rho, err := GaussianRho(sensitivity, sigma)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.rho += rho
	a.n++
	a.mu.Unlock()
	return nil
}

// SpendRho records an arbitrary ρ-zCDP mechanism.
func (a *ZCDPAccountant) SpendRho(rho float64) error {
	if rho < 0 {
		return fmt.Errorf("mech: negative rho %v", rho)
	}
	a.mu.Lock()
	a.rho += rho
	a.n++
	a.mu.Unlock()
	return nil
}

// Rho returns the accumulated zCDP parameter.
func (a *ZCDPAccountant) Rho() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rho
}

// Count returns the number of recorded mechanisms.
func (a *ZCDPAccountant) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// Total converts the accumulated ρ into an (ε, δ)-DP guarantee.
func (a *ZCDPAccountant) Total(delta float64) (Params, error) {
	return RhoToDP(a.Rho(), delta)
}
