package mech

import (
	"encoding/json"
	"testing"
)

// TestAccountantExportRestore drives each registered accountant through a
// mixed spend history, snapshots it, restores into a fresh instance, and
// checks every observable — totals, remaining budget, count, MaxCalls — is
// bit-identical, then that both copies keep agreeing after further spends.
func TestAccountantExportRestore(t *testing.T) {
	budget := Params{Eps: 1, Delta: 1e-6}
	spends := []Cost{
		GaussianCost(1, 30, 0.05, 1e-8),
		PureCost(0.02),
		ApproxCost(0.03, 1e-9),
		GaussianCost(1, 50, 0.01, 1e-8),
	}
	for _, name := range AccountantNames() {
		t.Run(name, func(t *testing.T) {
			a, err := NewAccountant(name, budget, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Reserve(Params{Eps: 0.5, Delta: 5e-7}); err != nil {
				t.Fatal(err)
			}
			for _, c := range spends {
				if err := a.Spend(c); err != nil {
					t.Fatal(err)
				}
			}

			raw, err := json.Marshal(a.Export())
			if err != nil {
				t.Fatal(err)
			}
			var st AccountantState
			if err := json.Unmarshal(raw, &st); err != nil {
				t.Fatal(err)
			}
			b, err := NewAccountant(name, budget, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Restore(st); err != nil {
				t.Fatal(err)
			}

			check := func(stage string) {
				t.Helper()
				if a.Total() != b.Total() {
					t.Fatalf("%s: Total %+v != %+v", stage, a.Total(), b.Total())
				}
				if a.Remaining() != b.Remaining() {
					t.Fatalf("%s: Remaining %+v != %+v", stage, a.Remaining(), b.Remaining())
				}
				if a.Count() != b.Count() {
					t.Fatalf("%s: Count %d != %d", stage, a.Count(), b.Count())
				}
				ma, erra := a.MaxCalls(spends[0])
				mb, errb := b.MaxCalls(spends[0])
				if ma != mb || (erra == nil) != (errb == nil) {
					t.Fatalf("%s: MaxCalls %d/%v != %d/%v", stage, ma, erra, mb, errb)
				}
			}
			check("after restore")
			for _, c := range spends {
				if err := a.Spend(c); err != nil {
					t.Fatal(err)
				}
				if err := b.Spend(c); err != nil {
					t.Fatal(err)
				}
			}
			check("after further spends")
		})
	}
}

// TestAccountantRestoreRejections checks name mismatches, malformed
// ledgers, and configuration drift are refused.
func TestAccountantRestoreRejections(t *testing.T) {
	budget := Params{Eps: 1, Delta: 1e-6}
	adv, _ := NewAccountant("advanced", budget, nil)
	if err := adv.Restore(AccountantState{Name: "zcdp"}); err == nil {
		t.Error("name mismatch accepted")
	}
	if err := adv.Restore(AccountantState{Name: "advanced", Count: -1, DeltaPrime: budget.Delta / 4}); err == nil {
		t.Error("negative count accepted")
	}
	if err := adv.Restore(AccountantState{Name: "advanced", SumEps: -1, DeltaPrime: budget.Delta / 4}); err == nil {
		t.Error("negative ledger field accepted")
	}
	// delta_prime drift: snapshot from an accountant configured differently.
	other, _ := NewAccountant("advanced", budget, json.RawMessage(`{"delta_prime": 1e-9}`))
	if err := adv.Restore(other.Export()); err == nil {
		t.Error("delta_prime drift accepted")
	}
	basic, _ := NewAccountant("basic", budget, nil)
	if err := basic.Restore(basic.Export()); err != nil {
		t.Errorf("identity restore rejected: %v", err)
	}
}
