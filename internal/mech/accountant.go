package mech

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// This file is the pluggable privacy-accounting layer: an Accountant
// interface with a named registry (mirroring the convex loss registry) and
// three certified implementations —
//
//	"basic"    — basic composition: (ε, δ) parameters add up;
//	"advanced" — DRV10 strong composition (paper Theorem 3.10) with the
//	             ε₀/δ₀ budget-splitting schedule; the default, and the
//	             accounting the paper's Theorem 3.9 analysis uses;
//	"zcdp"     — zero-concentrated DP (Bun–Steinke 2016): Gaussian-noise
//	             mechanisms spend ρ, ρ adds under composition, and the
//	             total converts to (ε, δ)-DP once at the end. Strictly
//	             tighter than DRV10 for Gaussian-based oracles.
//
// Every accountant tracks spends in O(1) memory (streaming sums / maxima,
// never a per-spend slice) and is safe for concurrent use: long-lived
// serve sessions spend on every ⊤ answer while status endpoints read
// totals concurrently.

// Cost declares one mechanism invocation's privacy cost in the tightest
// calculus the mechanism certifies. Eps/Delta (the (ε, δ)-DP guarantee) are
// always set; Rho is nonzero only when the mechanism additionally certifies
// a ρ-zCDP bound (Gaussian-noise mechanisms). A pure-DP mechanism
// (Delta == 0) is convertible: ε-DP implies (ε²/2)-zCDP.
type Cost struct {
	Eps   float64 `json:"eps"`
	Delta float64 `json:"delta"`
	Rho   float64 `json:"rho,omitempty"`
}

// Validate rejects negative or non-finite cost components.
func (c Cost) Validate() error {
	for _, v := range []float64{c.Eps, c.Delta, c.Rho} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("mech: invalid cost %+v", c)
		}
	}
	return nil
}

// rho returns the spend's zCDP parameter: the certified Rho when present,
// the pure-DP conversion ε²/2 when Delta == 0, and 0 (no zCDP bound) for
// approximate-DP spends without a certificate.
func (c Cost) rho() float64 {
	if c.Rho > 0 {
		return c.Rho
	}
	if c.Delta == 0 {
		return c.Eps * c.Eps / 2
	}
	return 0
}

// ApproxCost declares a generic (ε, δ)-DP invocation with no tighter
// certificate.
func ApproxCost(eps, delta float64) Cost { return Cost{Eps: eps, Delta: delta} }

// PureCost declares an (ε, 0)-DP invocation (Laplace, exponential
// mechanism); pure DP implies (ε²/2)-zCDP (Bun–Steinke Proposition 1.4).
func PureCost(eps float64) Cost { return Cost{Eps: eps, Rho: eps * eps / 2} }

// GaussianCost declares a Gaussian release of the given L2 sensitivity and
// noise σ under the (ε, δ)-DP guarantee it was calibrated for; the zCDP
// certificate is ρ = Δ²/(2σ²).
func GaussianCost(sensitivity, sigma, eps, delta float64) Cost {
	c := Cost{Eps: eps, Delta: delta}
	if sensitivity >= 0 && sigma > 0 {
		c.Rho = sensitivity * sensitivity / (2 * sigma * sigma)
	}
	return c
}

// Accountant tracks cumulative privacy spend against a total (ε, δ) budget
// under one composition calculus. Implementations are safe for concurrent
// use and store O(1) state regardless of how many spends are recorded.
type Accountant interface {
	// Name returns the registered accountant name.
	Name() string
	// Budget returns the configured total (ε, δ) budget.
	Budget() Params
	// Reserve permanently sets aside an (ε, δ) slice for a sub-mechanism
	// that does its own internal accounting (the sparse-vector algorithm in
	// PMW). Reserved budget is excluded from PerCallBudget/MaxCalls and
	// added linearly to Total.
	Reserve(p Params) error
	// PerCallBudget returns the per-call (ε₀, δ₀) to hand a mechanism so
	// that T calls compose within the unreserved budget under this
	// accountant's calculus.
	PerCallBudget(T int) (eps0, delta0 float64, err error)
	// MaxCalls returns how many calls of the given declared per-call cost
	// the accountant certifies within the unreserved budget (capped at
	// MaxCallsCap). The result is exact at the accountant's own schedule:
	// MaxCalls of a cost at PerCallBudget(T)'s parameters returns ≥ T.
	MaxCalls(c Cost) (int, error)
	// Spend records one mechanism invocation.
	Spend(c Cost) error
	// Count returns the number of recorded spends.
	Count() int
	// Total returns the composed (ε, δ) guarantee of everything recorded:
	// reservations (linear) plus the composed spends.
	Total() Params
	// Remaining returns Budget − Total, clamped at zero componentwise.
	Remaining() Params
	// Export snapshots the ledger for persistence. The streaming state is
	// O(1), so so is the snapshot.
	Export() AccountantState
	// Restore overwrites the ledger with a previously exported snapshot.
	// It fails if the snapshot names a different accountant or carries
	// invalid state; the budget is not part of the snapshot (it is fixed at
	// construction, so restore onto an accountant built from the same
	// configuration). After a successful Restore, Total/Remaining/MaxCalls
	// are bit-identical to the exporting accountant's.
	Restore(st AccountantState) error
}

// AccountantState is the serializable ledger of any registered accountant:
// the shared reservation/count state plus one field set per calculus
// (unused fields stay zero and are omitted from JSON). A single concrete
// struct — rather than per-implementation opaque blobs — keeps snapshots
// self-describing and diffable in audit tooling.
type AccountantState struct {
	// Name is the registered accountant the state belongs to; Restore
	// rejects a mismatch.
	Name string `json:"name"`
	// Reserved is the slice permanently set aside via Reserve.
	Reserved Params `json:"reserved"`
	// Count is the number of recorded spends.
	Count int `json:"count"`
	// SumEps, SumDelta is "basic"'s running parameter sum.
	SumEps   float64 `json:"sum_eps,omitempty"`
	SumDelta float64 `json:"sum_delta,omitempty"`
	// MaxEps, MaxDelta are "advanced"'s per-component spend maxima;
	// DeltaPrime its composition slack (construction-time, recorded so
	// Restore can detect configuration drift).
	MaxEps     float64 `json:"max_eps,omitempty"`
	MaxDelta   float64 `json:"max_delta,omitempty"`
	DeltaPrime float64 `json:"delta_prime,omitempty"`
	// Rho is "zcdp"'s accumulated zCDP parameter; ApproxEps, ApproxDelta
	// its linear side bucket for uncertified approximate-DP spends.
	Rho         float64 `json:"rho,omitempty"`
	ApproxEps   float64 `json:"approx_eps,omitempty"`
	ApproxDelta float64 `json:"approx_delta,omitempty"`
}

// validateState rejects snapshots with the wrong name or malformed shared
// fields; the numeric ledger fields are checked componentwise.
func (st AccountantState) validate(wantName string) error {
	if st.Name != wantName {
		return fmt.Errorf("mech: restoring %q state into %q accountant", st.Name, wantName)
	}
	if st.Count < 0 {
		return fmt.Errorf("mech: snapshot spend count %d is negative", st.Count)
	}
	for _, v := range []float64{
		st.Reserved.Eps, st.Reserved.Delta, st.SumEps, st.SumDelta,
		st.MaxEps, st.MaxDelta, st.Rho, st.ApproxEps, st.ApproxDelta,
	} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("mech: snapshot ledger field %v is negative or not finite", v)
		}
	}
	return nil
}

// MaxCallsCap bounds MaxCalls results: horizons beyond it are
// indistinguishable from "unbounded" for every consumer (the MW update
// budget and session query caps are far smaller).
const MaxCallsCap = 1 << 26

// ErrUnknownAccountant is returned (wrapped) by NewAccountant for an
// unregistered name. The HTTP layer maps it to 400.
var ErrUnknownAccountant = errors.New("mech: unknown accountant")

// DefaultAccountant is the accountant used when no name is given: the
// paper's own DRV10 strong-composition accounting.
const DefaultAccountant = "advanced"

// AccountantBuilder constructs an accountant over a validated budget from
// optional JSON parameters.
type AccountantBuilder func(budget Params, params json.RawMessage) (Accountant, error)

var (
	acctMu       sync.RWMutex
	acctRegistry = map[string]AccountantBuilder{}
)

// RegisterAccountant adds an accountant kind to the registry. It fails on
// duplicate or empty names; safe for concurrent use.
func RegisterAccountant(name string, b AccountantBuilder) error {
	if name == "" || b == nil {
		return fmt.Errorf("mech: RegisterAccountant needs a name and a builder")
	}
	acctMu.Lock()
	defer acctMu.Unlock()
	if _, dup := acctRegistry[name]; dup {
		return fmt.Errorf("mech: accountant %q already registered", name)
	}
	acctRegistry[name] = b
	return nil
}

// AccountantNames returns the registered accountant names, sorted.
func AccountantNames() []string {
	acctMu.RLock()
	defer acctMu.RUnlock()
	out := make([]string, 0, len(acctRegistry))
	for k := range acctRegistry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NewAccountant constructs the named accountant over the given total
// budget; the empty name selects DefaultAccountant.
func NewAccountant(name string, budget Params, params json.RawMessage) (Accountant, error) {
	if name == "" {
		name = DefaultAccountant
	}
	acctMu.RLock()
	b, ok := acctRegistry[name]
	acctMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (have %v)", ErrUnknownAccountant, name, AccountantNames())
	}
	if err := budget.Validate(); err != nil {
		return nil, err
	}
	a, err := b(budget, params)
	if err != nil {
		return nil, fmt.Errorf("mech: building accountant %q: %w", name, err)
	}
	return a, nil
}

// decodeAcctParams strictly decodes raw into v, treating empty params as
// the zero value; unknown fields are rejected so API typos surface.
func decodeAcctParams(raw json.RawMessage, v any) error {
	if len(raw) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// acctBase carries the state every accountant shares: the budget, the
// reserved slice, and the spend counter, behind one mutex.
type acctBase struct {
	mu       sync.Mutex
	budget   Params
	reserved Params
	n        int
}

func (b *acctBase) Budget() Params { return b.budget }

func (b *acctBase) Count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// reserve is Reserve's shared implementation (called under b.mu).
func (b *acctBase) reserveLocked(p Params) error {
	if p.Eps < 0 || p.Delta < 0 || math.IsNaN(p.Eps) || math.IsNaN(p.Delta) {
		return fmt.Errorf("mech: invalid reservation %+v", p)
	}
	if b.reserved.Eps+p.Eps > b.budget.Eps || b.reserved.Delta+p.Delta > b.budget.Delta {
		return fmt.Errorf("mech: reservation (%v, %v) exceeds budget %+v", p.Eps, p.Delta, b.budget)
	}
	b.reserved.Eps += p.Eps
	b.reserved.Delta += p.Delta
	return nil
}

// slice returns the unreserved budget (called under b.mu or before sharing).
func (b *acctBase) sliceLocked() Params {
	return Params{Eps: b.budget.Eps - b.reserved.Eps, Delta: b.budget.Delta - b.reserved.Delta}
}

// remainingOf clamps budget − total at zero componentwise.
func remainingOf(budget, total Params) Params {
	r := Params{Eps: budget.Eps - total.Eps, Delta: budget.Delta - total.Delta}
	if r.Eps < 0 {
		r.Eps = 0
	}
	if r.Delta < 0 {
		r.Delta = 0
	}
	return r
}

// maxCallsBySchedule inverts a monotone per-call schedule: the largest T
// (≤ MaxCallsCap) with perCall(T) ≥ (eps0, delta0) componentwise. Exact at
// the schedule's own points because the comparison re-evaluates the same
// floating-point computation.
func maxCallsBySchedule(perCall func(T int) (float64, float64, error), eps0, delta0 float64) (int, error) {
	if eps0 <= 0 || math.IsNaN(eps0) || delta0 < 0 || math.IsNaN(delta0) {
		return 0, fmt.Errorf("mech: invalid per-call budget (%v, %v)", eps0, delta0)
	}
	fits := func(T int) bool {
		e, d, err := perCall(T)
		return err == nil && e >= eps0 && d >= delta0
	}
	if !fits(1) {
		return 0, fmt.Errorf("mech: budget affords no (%v, %v)-DP call", eps0, delta0)
	}
	lo := 1 // invariant: fits(lo)
	hi := 2
	for hi <= MaxCallsCap && fits(hi) {
		lo = hi
		hi *= 2
	}
	if hi > MaxCallsCap {
		hi = MaxCallsCap + 1
	}
	// Binary search in (lo, hi): fits(lo), !fits(hi).
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// ---------------------------------------------------------------------------
// basic

// basicAccountant composes by parameter addition, the only rule valid for
// arbitrary heterogeneous approximate-DP spends.
type basicAccountant struct {
	acctBase
	sumEps, sumDelta float64
}

func (a *basicAccountant) Name() string { return "basic" }

func (a *basicAccountant) Reserve(p Params) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reserveLocked(p)
}

func (a *basicAccountant) PerCallBudget(T int) (float64, float64, error) {
	if T < 1 {
		return 0, 0, fmt.Errorf("mech: composition length %d < 1", T)
	}
	a.mu.Lock()
	s := a.sliceLocked()
	a.mu.Unlock()
	return s.Eps / float64(T), s.Delta / float64(T), nil
}

func (a *basicAccountant) MaxCalls(c Cost) (int, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	return maxCallsBySchedule(a.PerCallBudget, c.Eps, c.Delta)
}

func (a *basicAccountant) Spend(c Cost) error {
	if err := c.Validate(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sumEps += c.Eps
	a.sumDelta += c.Delta
	a.n++
	return nil
}

func (a *basicAccountant) Total() Params {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Params{Eps: a.reserved.Eps + a.sumEps, Delta: a.reserved.Delta + a.sumDelta}
}

func (a *basicAccountant) Remaining() Params { return remainingOf(a.Budget(), a.Total()) }

func (a *basicAccountant) Export() AccountantState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AccountantState{
		Name:     "basic",
		Reserved: a.reserved,
		Count:    a.n,
		SumEps:   a.sumEps,
		SumDelta: a.sumDelta,
	}
}

func (a *basicAccountant) Restore(st AccountantState) error {
	if err := st.validate("basic"); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.reserved = st.Reserved
	a.n = st.Count
	a.sumEps = st.SumEps
	a.sumDelta = st.SumDelta
	return nil
}

// ---------------------------------------------------------------------------
// advanced (DRV10, paper Theorem 3.10)

// advancedAccountant composes homogeneous spends under the strong
// composition theorem; heterogeneous spends are bounded by their maxima
// (Theorem 3.10 is stated for homogeneous compositions). Streaming state:
// only the spend count and the per-component maxima are kept.
type advancedAccountant struct {
	acctBase
	deltaPrime       float64 // composition slack δ′ used by Total
	maxEps, maxDelta float64
}

func (a *advancedAccountant) Name() string { return "advanced" }

func (a *advancedAccountant) Reserve(p Params) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reserveLocked(p)
}

func (a *advancedAccountant) PerCallBudget(T int) (float64, float64, error) {
	a.mu.Lock()
	s := a.sliceLocked()
	a.mu.Unlock()
	return SplitBudget(s.Eps, s.Delta, T)
}

func (a *advancedAccountant) MaxCalls(c Cost) (int, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	return maxCallsBySchedule(a.PerCallBudget, c.Eps, c.Delta)
}

func (a *advancedAccountant) Spend(c Cost) error {
	if err := c.Validate(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if c.Eps > a.maxEps {
		a.maxEps = c.Eps
	}
	if c.Delta > a.maxDelta {
		a.maxDelta = c.Delta
	}
	a.n++
	return nil
}

func (a *advancedAccountant) Total() Params {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.reserved
	if a.n == 0 {
		return t
	}
	adv, err := AdvancedComposition(a.maxEps, a.maxDelta, a.n, a.deltaPrime)
	if err != nil {
		// Fall back to the schedule's worst case: the whole unreserved slice.
		s := a.sliceLocked()
		t.Eps += s.Eps
		t.Delta += s.Delta
		return t
	}
	t.Eps += adv.Eps
	t.Delta += adv.Delta
	return t
}

func (a *advancedAccountant) Remaining() Params { return remainingOf(a.Budget(), a.Total()) }

func (a *advancedAccountant) Export() AccountantState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AccountantState{
		Name:       "advanced",
		Reserved:   a.reserved,
		Count:      a.n,
		MaxEps:     a.maxEps,
		MaxDelta:   a.maxDelta,
		DeltaPrime: a.deltaPrime,
	}
}

func (a *advancedAccountant) Restore(st AccountantState) error {
	if err := st.validate("advanced"); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// δ′ is fixed at construction; a mismatch means the snapshot was taken
	// under different accountant parameters, so Total would silently change
	// meaning. Refuse rather than adopt either value.
	if st.DeltaPrime != a.deltaPrime {
		return fmt.Errorf("mech: snapshot delta_prime %v != configured %v", st.DeltaPrime, a.deltaPrime)
	}
	a.reserved = st.Reserved
	a.n = st.Count
	a.maxEps = st.MaxEps
	a.maxDelta = st.MaxDelta
	return nil
}

// ---------------------------------------------------------------------------
// zcdp (Bun–Steinke 2016)

// zcdpAccountant composes in ρ: every spend that certifies a zCDP bound
// (Gaussian Rho, or pure-DP ε → ε²/2) adds its ρ, and Total converts the
// accumulated ρ to (ε, δ)-DP once, at the conversion δ — the whole
// unreserved δ slice, since exact zCDP mechanisms consume no δ themselves.
// Approximate-DP spends with no certificate (rho() == 0) cannot ride the ρ
// calculus; they fall into a linear side bucket composed basically.
type zcdpAccountant struct {
	acctBase
	rho                    float64 // accumulated zCDP parameter
	approxEps, approxDelta float64 // linear bucket for uncertified spends
}

func (a *zcdpAccountant) Name() string { return "zcdp" }

func (a *zcdpAccountant) Reserve(p Params) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reserveLocked(p)
}

// convDelta is the δ dedicated to the single ρ→DP conversion (called under
// a.mu): the unreserved δ slice, halved when uncertified spends also need δ.
func (a *zcdpAccountant) convDeltaLocked() float64 {
	d := a.sliceLocked().Delta
	if a.approxDelta > 0 {
		d /= 2
	}
	return d
}

// rhoMaxLocked returns the ρ budget of the unreserved slice: the largest ρ
// with ρ + 2√(ρ·ln(1/δ)) ≤ ε (solving RhoToDP's bound as an equality),
// i.e. ρ = (√(L + ε) − √L)² with L = ln(1/δ).
func (a *zcdpAccountant) rhoMaxLocked() float64 {
	s := a.sliceLocked()
	if s.Delta <= 0 || s.Eps <= 0 {
		return 0
	}
	l := math.Log(1 / s.Delta)
	r := math.Sqrt(l+s.Eps) - math.Sqrt(l)
	return r * r
}

func (a *zcdpAccountant) PerCallBudget(T int) (float64, float64, error) {
	if T < 1 {
		return 0, 0, fmt.Errorf("mech: composition length %d < 1", T)
	}
	a.mu.Lock()
	rhoMax := a.rhoMaxLocked()
	s := a.sliceLocked()
	a.mu.Unlock()
	if rhoMax <= 0 {
		return 0, 0, fmt.Errorf("mech: zcdp accounting requires positive (ε, δ) slice, have %+v", s)
	}
	rho0 := rhoMax / float64(T)
	// δ₀ is only a calibration knob handed to Gaussian oracles (zCDP itself
	// consumes no per-call δ); the δ/(2T) schedule keeps it comparable to
	// the DRV10 split. ε₀ inverts the canonical Gaussian cost
	// ρ = ε₀²/(4·ln(1.25/δ₀)), capped at 1 where the classical calibration
	// bound is valid — spending below the ρ budget is always sound.
	delta0 := s.Delta / (2 * float64(T))
	eps0 := 2 * math.Sqrt(rho0*math.Log(1.25/delta0))
	if eps0 > 1 {
		eps0 = 1
	}
	return eps0, delta0, nil
}

func (a *zcdpAccountant) MaxCalls(c Cost) (int, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	a.mu.Lock()
	rhoMax := a.rhoMaxLocked()
	s := a.sliceLocked()
	a.mu.Unlock()
	if rho := c.rho(); rho > 0 {
		if rhoMax <= 0 {
			return 0, fmt.Errorf("mech: zcdp accounting requires positive (ε, δ) slice, have %+v", s)
		}
		if t := rhoMax / rho; t < float64(MaxCallsCap) {
			if t < 1 {
				return 0, fmt.Errorf("mech: ρ budget %v affords no ρ = %v call", rhoMax, rho)
			}
			return int(t), nil
		}
		return MaxCallsCap, nil
	}
	// Uncertified approximate-DP cost: linear against the slice, keeping
	// half the δ for the conversion of any certified spends.
	t := float64(MaxCallsCap)
	if c.Eps > 0 {
		t = math.Min(t, s.Eps/c.Eps)
	}
	if c.Delta > 0 {
		t = math.Min(t, s.Delta/2/c.Delta)
	}
	if t < 1 {
		return 0, fmt.Errorf("mech: slice %+v affords no (%v, %v)-DP call", s, c.Eps, c.Delta)
	}
	return int(t), nil
}

func (a *zcdpAccountant) Spend(c Cost) error {
	if err := c.Validate(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if rho := c.rho(); rho > 0 {
		a.rho += rho
	} else {
		a.approxEps += c.Eps
		a.approxDelta += c.Delta
	}
	a.n++
	return nil
}

func (a *zcdpAccountant) Total() Params {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := Params{
		Eps:   a.reserved.Eps + a.approxEps,
		Delta: a.reserved.Delta + a.approxDelta,
	}
	if a.rho > 0 {
		conv := a.convDeltaLocked()
		dp, err := RhoToDP(a.rho, conv)
		if err != nil {
			// No usable conversion δ: report the loose pure-DP-style bound.
			dp = Params{Eps: a.rho + 2*math.Sqrt(a.rho*math.Log(1/a.budget.Delta))}
		}
		t.Eps += dp.Eps
		t.Delta += dp.Delta
	}
	return t
}

func (a *zcdpAccountant) Remaining() Params { return remainingOf(a.Budget(), a.Total()) }

func (a *zcdpAccountant) Export() AccountantState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AccountantState{
		Name:        "zcdp",
		Reserved:    a.reserved,
		Count:       a.n,
		Rho:         a.rho,
		ApproxEps:   a.approxEps,
		ApproxDelta: a.approxDelta,
	}
}

func (a *zcdpAccountant) Restore(st AccountantState) error {
	if err := st.validate("zcdp"); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.reserved = st.Reserved
	a.n = st.Count
	a.rho = st.Rho
	a.approxEps = st.ApproxEps
	a.approxDelta = st.ApproxDelta
	return nil
}

// The built-in accountants. init registration cannot fail: the table above
// is empty and every name is distinct.
func init() {
	mustRegister := func(name string, b AccountantBuilder) {
		if err := RegisterAccountant(name, b); err != nil {
			panic(err)
		}
	}
	mustRegister("basic", func(budget Params, raw json.RawMessage) (Accountant, error) {
		var p struct{}
		if err := decodeAcctParams(raw, &p); err != nil {
			return nil, err
		}
		return &basicAccountant{acctBase: acctBase{budget: budget}}, nil
	})
	mustRegister("advanced", func(budget Params, raw json.RawMessage) (Accountant, error) {
		p := struct {
			// DeltaPrime is the composition slack δ′ of Theorem 3.10 used
			// when reporting totals; default δ/4, matching Theorem 3.9's
			// analysis of the oracle slice.
			DeltaPrime float64 `json:"delta_prime"`
		}{DeltaPrime: budget.Delta / 4}
		if err := decodeAcctParams(raw, &p); err != nil {
			return nil, err
		}
		if p.DeltaPrime <= 0 || p.DeltaPrime >= 1 {
			return nil, fmt.Errorf("delta_prime %v must be in (0, 1)", p.DeltaPrime)
		}
		return &advancedAccountant{acctBase: acctBase{budget: budget}, deltaPrime: p.DeltaPrime}, nil
	})
	mustRegister("zcdp", func(budget Params, raw json.RawMessage) (Accountant, error) {
		var p struct{}
		if err := decodeAcctParams(raw, &p); err != nil {
			return nil, err
		}
		if budget.Delta == 0 {
			return nil, fmt.Errorf("zcdp accounting requires delta > 0 (the ρ→DP conversion)")
		}
		return &zcdpAccountant{acctBase: acctBase{budget: budget}}, nil
	})
}
