package mech

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGaussianRho(t *testing.T) {
	// Δ=1, σ=2 → ρ = 1/8.
	rho, err := GaussianRho(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-0.125) > 1e-15 {
		t.Errorf("rho = %v", rho)
	}
	if _, err := GaussianRho(-1, 1); err == nil {
		t.Error("negative sensitivity accepted")
	}
	if _, err := GaussianRho(1, 0); err == nil {
		t.Error("sigma=0 accepted")
	}
}

func TestRhoToDPHandChecked(t *testing.T) {
	// ρ = 0.1, δ = 1e-6 → ε = 0.1 + 2√(0.1·ln 1e6).
	p, err := RhoToDP(0.1, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.1 + 2*math.Sqrt(0.1*math.Log(1e6))
	if math.Abs(p.Eps-want) > 1e-12 {
		t.Errorf("eps = %v, want %v", p.Eps, want)
	}
	if p.Delta != 1e-6 {
		t.Errorf("delta = %v", p.Delta)
	}
	if _, err := RhoToDP(-0.1, 1e-6); err == nil {
		t.Error("negative rho accepted")
	}
	if _, err := RhoToDP(0.1, 0); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := RhoToDP(0.1, 1); err == nil {
		t.Error("delta=1 accepted")
	}
}

func TestZCDPAccountant(t *testing.T) {
	var a ZCDPAccountant
	if a.Rho() != 0 || a.Count() != 0 {
		t.Fatal("fresh accountant dirty")
	}
	if err := a.SpendGaussian(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.SpendRho(0.375); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Rho()-0.5) > 1e-15 {
		t.Errorf("rho = %v", a.Rho())
	}
	if a.Count() != 2 {
		t.Errorf("count = %d", a.Count())
	}
	if err := a.SpendRho(-1); err == nil {
		t.Error("negative rho accepted")
	}
	if err := a.SpendGaussian(1, 0); err == nil {
		t.Error("bad gaussian accepted")
	}
	if _, err := a.Total(1e-6); err != nil {
		t.Fatal(err)
	}
}

// For a homogeneous chain of T Gaussian mechanisms each calibrated by the
// classical bound at (ε₀, δ₀), the zCDP total must be at least as tight as
// DRV10 strong composition once T is large — zCDP's advantage is the point
// of including it.
func TestZCDPTighterThanDRV10ForLongGaussianChains(t *testing.T) {
	T := 500
	eps0, delta0 := 0.01, 1e-9
	sigma, err := GaussianSigma(1, eps0, delta0)
	if err != nil {
		t.Fatal(err)
	}
	var a ZCDPAccountant
	for i := 0; i < T; i++ {
		if err := a.SpendGaussian(1, sigma); err != nil {
			t.Fatal(err)
		}
	}
	zc, err := a.Total(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	drv, err := AdvancedComposition(eps0, delta0, T, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if zc.Eps >= drv.Eps {
		t.Errorf("zCDP (%v) not tighter than DRV10 (%v) for T=%d Gaussians", zc.Eps, drv.Eps, T)
	}
}

// zCDP composition is additive: combining two accountants equals one
// accountant with all spends.
func TestZCDPAdditivity(t *testing.T) {
	f := func(rawA, rawB float64) bool {
		ra := math.Abs(math.Mod(rawA, 10))
		rb := math.Abs(math.Mod(rawB, 10))
		var a, b, c ZCDPAccountant
		if a.SpendRho(ra) != nil || b.SpendRho(rb) != nil {
			return true
		}
		if c.SpendRho(ra) != nil || c.SpendRho(rb) != nil {
			return true
		}
		return math.Abs(a.Rho()+b.Rho()-c.Rho()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
