package mech

import (
	"fmt"
	"testing"
)

// Accountant micro-benchmarks: Spend sits on the serving hot path (one per
// ⊤ answer) and Total behind every status read, so per-call overhead and
// allocation behavior are tracked in BENCH_<date>.json alongside the xeval
// numbers. All implementations are streaming; none may allocate per spend.

func benchCost() Cost { return Cost{Eps: 1e-4, Delta: 1e-10, Rho: 1e-9} }

func BenchmarkAccountantSpend(b *testing.B) {
	for _, name := range AccountantNames() {
		b.Run(name, func(b *testing.B) {
			a, err := NewAccountant(name, Params{Eps: 1, Delta: 1e-6}, nil)
			if err != nil {
				b.Fatal(err)
			}
			c := benchCost()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.Spend(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAccountantTotal(b *testing.B) {
	for _, name := range AccountantNames() {
		for _, spends := range []int{16, 4096} {
			b.Run(fmt.Sprintf("%s/spends=%d", name, spends), func(b *testing.B) {
				a, err := NewAccountant(name, Params{Eps: 1, Delta: 1e-6}, nil)
				if err != nil {
					b.Fatal(err)
				}
				c := benchCost()
				for i := 0; i < spends; i++ {
					if err := a.Spend(c); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = a.Total()
				}
			})
		}
	}
}

func BenchmarkAccountantMaxCalls(b *testing.B) {
	for _, name := range AccountantNames() {
		b.Run(name, func(b *testing.B) {
			a, err := NewAccountant(name, Params{Eps: 1, Delta: 1e-6}, nil)
			if err != nil {
				b.Fatal(err)
			}
			c := benchCost()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.MaxCalls(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
