package mech

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
)

func mustAcct(t *testing.T, name string, budget Params) Accountant {
	t.Helper()
	a, err := NewAccountant(name, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// canonicalGaussian is the declared cost of one (ε₀, δ₀)-calibrated
// Gaussian release: ρ = ε₀²/(4·ln(1.25/δ₀)), the quantity GaussianCost
// computes from (Δ, σ) after the calibration cancels Δ.
func canonicalGaussian(eps0, delta0 float64) Cost {
	return Cost{Eps: eps0, Delta: delta0, Rho: eps0 * eps0 / (4 * math.Log(1.25/delta0))}
}

func TestAccountantRegistry(t *testing.T) {
	names := AccountantNames()
	want := []string{"advanced", "basic", "zcdp"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	if _, err := NewAccountant("nonsense", Params{Eps: 1, Delta: 1e-6}, nil); !errors.Is(err, ErrUnknownAccountant) {
		t.Errorf("unknown name error = %v, want ErrUnknownAccountant", err)
	}
	// The empty name selects the default.
	a, err := NewAccountant("", Params{Eps: 1, Delta: 1e-6}, nil)
	if err != nil || a.Name() != DefaultAccountant {
		t.Errorf("default accountant = %v, %v", a, err)
	}
	// Unknown JSON parameters are rejected, not silently ignored.
	if _, err := NewAccountant("advanced", Params{Eps: 1, Delta: 1e-6}, json.RawMessage(`{"nope": 1}`)); err == nil {
		t.Error("unknown accountant param accepted")
	}
	// The zcdp accountant needs a δ to convert through.
	if _, err := NewAccountant("zcdp", Params{Eps: 1, Delta: 0}, nil); err == nil {
		t.Error("zcdp with delta = 0 accepted")
	}
}

func TestAccountantReserveAndRemaining(t *testing.T) {
	for _, name := range AccountantNames() {
		budget := Params{Eps: 1, Delta: 1e-6}
		a := mustAcct(t, name, budget)
		if err := a.Reserve(Params{Eps: 0.5, Delta: 5e-7}); err != nil {
			t.Fatalf("%s: reserve: %v", name, err)
		}
		if got := a.Total(); got.Eps != 0.5 || got.Delta != 5e-7 {
			t.Errorf("%s: total after reserve = %+v", name, got)
		}
		if got := a.Remaining(); math.Abs(got.Eps-0.5) > 1e-15 {
			t.Errorf("%s: remaining = %+v", name, got)
		}
		if err := a.Reserve(Params{Eps: 0.6}); err == nil {
			t.Errorf("%s: over-reservation accepted", name)
		}
		if err := a.Spend(Cost{Eps: -1}); err == nil {
			t.Errorf("%s: negative cost accepted", name)
		}
		// Remaining clamps at zero once spends exceed the budget.
		for i := 0; i < 64; i++ {
			if err := a.Spend(ApproxCost(0.25, 1e-7)); err != nil {
				t.Fatal(err)
			}
		}
		rem := a.Remaining()
		if rem.Eps < 0 || rem.Delta < 0 {
			t.Errorf("%s: remaining went negative: %+v", name, rem)
		}
		if a.Count() != 64 {
			t.Errorf("%s: count = %d", name, a.Count())
		}
	}
}

// TestAccountantScheduleInversion checks MaxCalls is exact at each
// accountant's own schedule: for a cost declared at PerCallBudget(T)'s
// parameters, the accountant certifies at least T calls — and for the
// schedule-based accountants, exactly T.
func TestAccountantScheduleInversion(t *testing.T) {
	budget := Params{Eps: 1, Delta: 1e-6}
	for _, name := range []string{"basic", "advanced"} {
		for _, T := range []int{1, 7, 12, 200, 4096} {
			a := mustAcct(t, name, budget)
			e0, d0, err := a.PerCallBudget(T)
			if err != nil {
				t.Fatal(err)
			}
			got, err := a.MaxCalls(ApproxCost(e0, d0))
			if err != nil {
				t.Fatal(err)
			}
			if got != T {
				t.Errorf("%s: MaxCalls(PerCallBudget(%d)) = %d", name, T, got)
			}
		}
	}
	// zcdp: the schedule inverts through the canonical Gaussian cost.
	for _, T := range []int{1, 12, 200} {
		a := mustAcct(t, "zcdp", budget)
		e0, d0, err := a.PerCallBudget(T)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.MaxCalls(canonicalGaussian(e0, d0))
		if err != nil {
			t.Fatal(err)
		}
		// The ε₀ ≤ 1 cap can leave headroom, so ≥ rather than ==.
		if got < T {
			t.Errorf("zcdp: MaxCalls(PerCallBudget(%d)) = %d", T, got)
		}
	}
}

// TestAccountantTightnessGrid is the accounting-tightness table: over a
// grid of (ε, δ, T), spending T Gaussian-calibrated calls at the DRV10
// schedule's per-call budget must yield composed ε totals ordered
//
//	zCDP ≤ DRV10 advanced ≤ basic,
//
// with every reported δ within the budget. The grid stays in the
// T ≳ 8·ln(2/δ) regime where strong composition's √T advantage over basic
// is in force (below it the DRV10 schedule is conservative and basic is
// incomparable).
func TestAccountantTightnessGrid(t *testing.T) {
	for _, eps := range []float64{0.5, 1} {
		for _, delta := range []float64{1e-6, 1e-9} {
			for _, T := range []int{200, 1000, 5000} {
				budget := Params{Eps: eps, Delta: delta}
				basic := mustAcct(t, "basic", budget)
				adv := mustAcct(t, "advanced", budget)
				zcdp := mustAcct(t, "zcdp", budget)

				e0, d0, err := adv.PerCallBudget(T)
				if err != nil {
					t.Fatal(err)
				}
				cost := canonicalGaussian(e0, d0)
				for i := 0; i < T; i++ {
					for _, a := range []Accountant{basic, adv, zcdp} {
						if err := a.Spend(cost); err != nil {
							t.Fatal(err)
						}
					}
				}
				eb, ea, ez := basic.Total().Eps, adv.Total().Eps, zcdp.Total().Eps
				if !(ez < ea && ea < eb) {
					t.Errorf("(ε=%g δ=%g T=%d): want zcdp < advanced < basic, got %.4g %.4g %.4g",
						eps, delta, T, ez, ea, eb)
				}
				// The schedule was built so T calls fit the budget: the
				// sound accountants must agree.
				if ea > eps*(1+1e-9) {
					t.Errorf("(ε=%g δ=%g T=%d): advanced total %.4g exceeds budget", eps, delta, T, ea)
				}
				if ez > eps*(1+1e-9) {
					t.Errorf("(ε=%g δ=%g T=%d): zcdp total %.4g exceeds budget", eps, delta, T, ez)
				}
				for _, a := range []Accountant{adv, zcdp} {
					if d := a.Total().Delta; d > delta*(1+1e-9) {
						t.Errorf("(ε=%g δ=%g T=%d): %s delta total %.4g exceeds budget", eps, delta, T, a.Name(), d)
					}
				}
				// MaxCalls tells the same story prospectively: at this
				// per-call cost, zcdp affords more calls than the schedule's
				// T and basic fewer.
				nz, err := mustAcct(t, "zcdp", budget).MaxCalls(cost)
				if err != nil {
					t.Fatal(err)
				}
				nb, err := mustAcct(t, "basic", budget).MaxCalls(cost)
				if err != nil {
					t.Fatal(err)
				}
				if !(nb < T && T < nz) {
					t.Errorf("(ε=%g δ=%g T=%d): MaxCalls basic=%d zcdp=%d, want basic < T < zcdp", eps, delta, T, nb, nz)
				}
			}
		}
	}
}

// TestZCDPCostConversion checks the zcdp accountant's cost triage: Gaussian
// ρ rides the ρ calculus, pure DP converts via ε²/2, and uncertified
// approximate-DP costs land in the linear bucket.
func TestZCDPCostConversion(t *testing.T) {
	budget := Params{Eps: 1, Delta: 1e-6}
	a := mustAcct(t, "zcdp", budget)
	if err := a.Spend(PureCost(0.1)); err != nil {
		t.Fatal(err)
	}
	afterPure := a.Total()
	wantRho := 0.1 * 0.1 / 2
	wantDP, err := RhoToDP(wantRho, budget.Delta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(afterPure.Eps-wantDP.Eps) > 1e-12 {
		t.Errorf("pure conversion eps = %v, want %v", afterPure.Eps, wantDP.Eps)
	}
	// An uncertified approximate spend adds linearly and halves the
	// conversion δ.
	if err := a.Spend(ApproxCost(0.2, 1e-8)); err != nil {
		t.Fatal(err)
	}
	mixed := a.Total()
	conv, err := RhoToDP(wantRho, budget.Delta/2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mixed.Eps-(conv.Eps+0.2)) > 1e-12 {
		t.Errorf("mixed eps = %v, want %v", mixed.Eps, conv.Eps+0.2)
	}
	if math.Abs(mixed.Delta-(conv.Delta+1e-8)) > 1e-20 {
		t.Errorf("mixed delta = %v", mixed.Delta)
	}
}

// TestAccountantStreaming spends a serve-scale number of times and checks
// the composed totals stay exact — the implementations keep running
// aggregates, not a per-spend slice, so this is fast and O(1) in memory.
func TestAccountantStreaming(t *testing.T) {
	const n = 200000
	budget := Params{Eps: 1, Delta: 1e-6}
	basic := mustAcct(t, "basic", budget)
	adv := mustAcct(t, "advanced", budget)
	zcdp := mustAcct(t, "zcdp", budget)
	c := Cost{Eps: 1e-6, Delta: 1e-12, Rho: 1e-12}
	for i := 0; i < n; i++ {
		for _, a := range []Accountant{basic, adv, zcdp} {
			if err := a.Spend(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := basic.Total().Eps; math.Abs(got-n*1e-6) > 1e-9 {
		t.Errorf("basic streaming eps = %v", got)
	}
	wantAdv, err := AdvancedComposition(1e-6, 1e-12, n, budget.Delta/4)
	if err != nil {
		t.Fatal(err)
	}
	if got := adv.Total().Eps; got != wantAdv.Eps {
		t.Errorf("advanced streaming eps = %v, want %v", got, wantAdv.Eps)
	}
	wantZ, err := RhoToDP(n*1e-12, budget.Delta)
	if err != nil {
		t.Fatal(err)
	}
	if got := zcdp.Total().Eps; math.Abs(got-wantZ.Eps) > 1e-9 {
		t.Errorf("zcdp streaming eps = %v, want %v", got, wantZ.Eps)
	}
	for _, a := range []Accountant{basic, adv, zcdp} {
		if a.Count() != n {
			t.Errorf("%s count = %d", a.Name(), a.Count())
		}
	}
}

// TestAccountantConcurrency hammers each accountant from concurrent
// spenders and readers; run with -race (the CI default) it proves the
// implementations are safe without external serialization.
func TestAccountantConcurrency(t *testing.T) {
	for _, name := range AccountantNames() {
		a := mustAcct(t, name, Params{Eps: 1, Delta: 1e-6})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(2)
			go func() {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					if err := a.Spend(canonicalGaussian(1e-4, 1e-10)); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					_ = a.Total()
					_ = a.Remaining()
					_ = a.Count()
				}
			}()
		}
		wg.Wait()
		if a.Count() != 2000 {
			t.Errorf("%s: count = %d after concurrent spends", name, a.Count())
		}
	}
}

// ExampleNewAccountant shows the registry round trip.
func ExampleNewAccountant() {
	a, _ := NewAccountant("zcdp", Params{Eps: 1, Delta: 1e-6}, nil)
	_ = a.Spend(GaussianCost(1, 10, 0.3, 1e-7))
	fmt.Printf("%s spends=%d\n", a.Name(), a.Count())
	// Output: zcdp spends=1
}
