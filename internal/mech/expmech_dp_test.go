package mech

import (
	"math"
	"testing"

	"repro/internal/sample"
)

// Empirical DP check of the exponential mechanism: on two adjacent score
// vectors (differing by the sensitivity in one entry), the selection
// distribution's log-ratio must stay within ε up to sampling error. This
// is the selection primitive PMW's offline variant relies on.
func TestExponentialEmpiricalDP(t *testing.T) {
	eps := 1.0
	sens := 0.1
	scoresA := []float64{0.1, 0.25, 0.4}
	scoresB := []float64{0.1, 0.25 + sens, 0.4} // one entry shifted by Δ
	n := 200000
	countA := map[int]int{}
	countB := map[int]int{}
	srcA := sample.New(1)
	srcB := sample.New(2)
	for i := 0; i < n; i++ {
		a, err := Exponential(srcA, scoresA, sens, eps)
		if err != nil {
			t.Fatal(err)
		}
		countA[a]++
		b, err := Exponential(srcB, scoresB, sens, eps)
		if err != nil {
			t.Fatal(err)
		}
		countB[b]++
	}
	for idx := 0; idx < 3; idx++ {
		pa := float64(countA[idx]) / float64(n)
		pb := float64(countB[idx]) / float64(n)
		if pa < 0.01 || pb < 0.01 {
			continue
		}
		if r := math.Abs(math.Log(pa / pb)); r > eps+0.1 {
			t.Errorf("outcome %d log-ratio %v exceeds ε=%v", idx, r, eps)
		}
	}
	// Sanity on the harness itself: the shifted entry must actually be
	// selected more often under B.
	if countB[1] <= countA[1] {
		t.Errorf("shifted entry not preferred: %d vs %d", countB[1], countA[1])
	}
}
