// Package mech implements the differential-privacy primitives the paper
// builds on: the Laplace and Gaussian mechanisms, the exponential mechanism
// of McSherry–Talwar (used by PMW to select maximally-inaccurate queries),
// report-noisy-max, and the composition calculus — basic composition and the
// strong composition theorem of Dwork–Rothblum–Vadhan (paper Theorem 3.10),
// including the paper's ε₀/δ₀ budget-splitting schedule.
package mech

import (
	"fmt"
	"math"

	"repro/internal/sample"
)

// Params is an (ε, δ) differential-privacy guarantee.
type Params struct {
	Eps   float64 `json:"eps"`
	Delta float64 `json:"delta"`
}

// Validate rejects non-positive ε and δ outside [0, 1).
func (p Params) Validate() error {
	if p.Eps <= 0 || math.IsNaN(p.Eps) || math.IsInf(p.Eps, 0) {
		return fmt.Errorf("mech: epsilon %v must be positive and finite", p.Eps)
	}
	if p.Delta < 0 || p.Delta >= 1 || math.IsNaN(p.Delta) {
		return fmt.Errorf("mech: delta %v must be in [0, 1)", p.Delta)
	}
	return nil
}

// Laplace releases value + Lap(sensitivity/eps), the (ε, 0)-DP Laplace
// mechanism of Dwork–McSherry–Nissim–Smith for a query of the given L1
// sensitivity.
func Laplace(src *sample.Source, value, sensitivity, eps float64) (float64, error) {
	if sensitivity < 0 {
		return 0, fmt.Errorf("mech: negative sensitivity %v", sensitivity)
	}
	if err := (Params{Eps: eps}).Validate(); err != nil {
		return 0, err
	}
	return value + src.Laplace(sensitivity/eps), nil
}

// GaussianSigma returns the noise standard deviation of the classical
// (ε, δ)-DP Gaussian mechanism: σ = sensitivity·√(2 ln(1.25/δ))/ε.
// Requires δ > 0 and ε ≤ 1 (the regime where the classical bound is valid).
func GaussianSigma(sensitivity, eps, delta float64) (float64, error) {
	if sensitivity < 0 {
		return 0, fmt.Errorf("mech: negative sensitivity %v", sensitivity)
	}
	if err := (Params{Eps: eps, Delta: delta}).Validate(); err != nil {
		return 0, err
	}
	if delta == 0 {
		return 0, fmt.Errorf("mech: gaussian mechanism requires delta > 0")
	}
	if eps > 1 {
		return 0, fmt.Errorf("mech: classical gaussian bound requires eps ≤ 1, got %v", eps)
	}
	return sensitivity * math.Sqrt(2*math.Log(1.25/delta)) / eps, nil
}

// Gaussian releases value + N(0, σ²) with σ from GaussianSigma.
func Gaussian(src *sample.Source, value, sensitivity, eps, delta float64) (float64, error) {
	sigma, err := GaussianSigma(sensitivity, eps, delta)
	if err != nil {
		return 0, err
	}
	return value + src.Gaussian(0, sigma), nil
}

// Exponential samples an index with probability ∝ exp(ε·scoreᵢ/(2·sens)),
// the exponential mechanism for a score function of the given sensitivity.
// Sampling uses the Gumbel-max trick, which is exact and avoids normalizing
// potentially huge exponentials.
func Exponential(src *sample.Source, scores []float64, sens, eps float64) (int, error) {
	if len(scores) == 0 {
		return 0, fmt.Errorf("mech: no candidates")
	}
	if sens <= 0 {
		return 0, fmt.Errorf("mech: score sensitivity %v must be positive", sens)
	}
	if err := (Params{Eps: eps}).Validate(); err != nil {
		return 0, err
	}
	beta := 2 * sens / eps
	best := math.Inf(-1)
	bestIdx := 0
	for i, s := range scores {
		if v := s + src.Gumbel(beta); v > best {
			best = v
			bestIdx = i
		}
	}
	return bestIdx, nil
}

// ReportNoisyMax returns argmaxᵢ (scoreᵢ + Lap(2·sens/ε)), the (ε, 0)-DP
// noisy-max selection mechanism.
func ReportNoisyMax(src *sample.Source, scores []float64, sens, eps float64) (int, error) {
	if len(scores) == 0 {
		return 0, fmt.Errorf("mech: no candidates")
	}
	if sens <= 0 {
		return 0, fmt.Errorf("mech: score sensitivity %v must be positive", sens)
	}
	if err := (Params{Eps: eps}).Validate(); err != nil {
		return 0, err
	}
	b := 2 * sens / eps
	best := math.Inf(-1)
	bestIdx := 0
	for i, s := range scores {
		if v := s + src.Laplace(b); v > best {
			best = v
			bestIdx = i
		}
	}
	return bestIdx, nil
}

// BasicComposition returns the privacy of running T mechanisms that are each
// (ε₀, δ₀)-DP: parameters add up.
func BasicComposition(eps0, delta0 float64, T int) Params {
	return Params{Eps: float64(T) * eps0, Delta: float64(T) * delta0}
}

// AdvancedComposition returns the strong-composition guarantee of paper
// Theorem 3.10 (Dwork–Rothblum–Vadhan): a T-fold adaptive composition of
// (ε₀, δ₀)-DP mechanisms is (ε, δ′ + T·δ₀)-DP with
//
//	ε = √(2T·ln(1/δ′))·ε₀ + 2T·ε₀².
func AdvancedComposition(eps0, delta0 float64, T int, deltaPrime float64) (Params, error) {
	if T < 1 {
		return Params{}, fmt.Errorf("mech: composition length %d < 1", T)
	}
	if deltaPrime <= 0 || deltaPrime >= 1 {
		return Params{}, fmt.Errorf("mech: delta' %v must be in (0, 1)", deltaPrime)
	}
	if eps0 < 0 || delta0 < 0 {
		return Params{}, fmt.Errorf("mech: negative per-mechanism parameters")
	}
	tf := float64(T)
	eps := math.Sqrt(2*tf*math.Log(1/deltaPrime))*eps0 + 2*tf*eps0*eps0
	return Params{Eps: eps, Delta: deltaPrime + tf*delta0}, nil
}

// SplitBudget returns the per-mechanism (ε₀, δ₀) schedule the paper uses
// inside Theorem 3.10's "in particular" clause:
//
//	ε₀ = ε / √(8T·ln(2/δ)),   δ₀ = δ / (2T),
//
// which guarantees the T-fold composition is (ε, δ)-DP for ε ≤ 1.
func SplitBudget(eps, delta float64, T int) (eps0, delta0 float64, err error) {
	if err := (Params{Eps: eps, Delta: delta}).Validate(); err != nil {
		return 0, 0, err
	}
	if delta == 0 {
		return 0, 0, fmt.Errorf("mech: budget splitting requires delta > 0")
	}
	if T < 1 {
		return 0, 0, fmt.Errorf("mech: composition length %d < 1", T)
	}
	tf := float64(T)
	return eps / math.Sqrt(8*tf*math.Log(2/delta)), delta / (2 * tf), nil
}

// The sequence-of-spends ledger that used to live here (a struct appending
// every Params to a slice) has been replaced by the pluggable Accountant
// interface in accountant.go: streaming O(1) implementations of basic,
// DRV10-advanced, and zCDP composition behind a named registry.
