package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// decileBounds makes quantiles exactly computable: observing 1..100
// puts ten observations in each bucket, and linear interpolation
// recovers the true percentile.
var decileBounds = []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

func TestQuantileKnownDistribution(t *testing.T) {
	h := newHistogram(decileBounds)
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50}, {0.90, 90}, {0.99, 99}, {1.0, 100}, {0.01, 1},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if want := 100.0 * 101 / 2; h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
}

func TestQuantileOverflowClampsToLargestBound(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1000)
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %v, want clamp to 2", got)
	}
}

func TestQuantileEmptyWindow(t *testing.T) {
	h := newHistogram(decileBounds)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestWindowRotationExpiresOldObservations(t *testing.T) {
	h := newHistogram(decileBounds)
	clock := time.Unix(1_000_000, 0)
	h.now = func() time.Time { return clock }

	h.Observe(50)
	if got := h.Quantile(1.0); got != 50 {
		t.Fatalf("in-window quantile = %v, want 50", got)
	}

	// One slot later the observation is still inside the rolling window.
	clock = clock.Add(histSlotDur)
	h.Observe(30)
	if got := h.Quantile(1.0); got != 50 {
		t.Fatalf("quantile after one slot = %v, want 50 (both visible)", got)
	}

	// Past the full window the old slots expire; the quantile readout
	// forgets them but the lifetime view never does.
	clock = clock.Add(histSlots * histSlotDur)
	h.Observe(10)
	if got := h.Quantile(1.0); got != 10 {
		t.Fatalf("quantile after window rollover = %v, want 10", got)
	}
	if h.Count() != 3 {
		t.Fatalf("lifetime count = %d, want 3", h.Count())
	}
	snap := h.snapshot()
	if snap.Count != 3 || snap.Buckets[len(snap.Buckets)-1].Count != 3 {
		t.Fatalf("lifetime buckets forgot expired observations: %+v", snap)
	}
}

func TestSlotReuseZeroesStaleCounts(t *testing.T) {
	h := newHistogram(decileBounds)
	clock := time.Unix(1_000_000, 0)
	h.now = func() time.Time { return clock }

	h.Observe(50)
	// Land on the same slot index one full rotation later: the writer
	// must zero the stale counts before recording.
	clock = clock.Add(histSlots * histSlotDur)
	h.Observe(20)
	if got := h.Quantile(1.0); got != 20 {
		t.Fatalf("stale slot counts leaked into window: max = %v, want 20", got)
	}
}

func TestSnapshotCumulativeBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3})
	for _, v := range []float64{0.5, 1.5, 1.7, 2.5, 99} {
		h.Observe(v)
	}
	s := h.snapshot()
	wantCum := []uint64{1, 3, 4, 5}
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(wantCum))
	}
	for i, want := range wantCum {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket[%d] = %d, want %d", i, s.Buckets[i].Count, want)
		}
	}
	if s.Count != 5 || s.Value != 5 {
		t.Fatalf("snapshot count = %d value = %v, want 5", s.Count, s.Value)
	}
}

func TestObserveSince(t *testing.T) {
	h := newHistogram(DefBuckets)
	clock := time.Unix(1_000_000, 0)
	h.now = func() time.Time { return clock }
	t0 := clock.Add(-3 * time.Millisecond)
	h.ObserveSince(t0)
	if h.Count() != 1 || math.Abs(h.Sum()-0.003) > 1e-12 {
		t.Fatalf("ObserveSince recorded count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(decileBounds)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100 + 1))
				if i%100 == 0 {
					h.snapshot()
					h.Quantile(0.99)
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	s := h.snapshot()
	if s.Buckets[len(s.Buckets)-1].Count != workers*per {
		t.Fatalf("+Inf bucket = %d, want %d", s.Buckets[len(s.Buckets)-1].Count, workers*per)
	}
}
