package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// testMux mirrors the service's route shapes: a collection route, a
// session-scoped route with an {id} path value, and an error route.
func testMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/ping", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("pong"))
	})
	mux.HandleFunc("POST /v1/sessions/{id}/query", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("GET /v1/fail", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	return mux
}

func TestMiddlewareMetricsByRouteAndClass(t *testing.T) {
	reg := NewRegistry()
	h := Middleware(reg, testMux(), MiddlewareOptions{})

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/ping", nil))
		if rec.Code != 200 {
			t.Fatalf("ping code %d", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/fail", nil))
	if rec.Code != 500 {
		t.Fatalf("fail code %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/no/such/route", nil))

	count := func(route, class string) uint64 {
		return reg.Counter("pmwcm_http_requests_total", "",
			Labels{"route": route, "class": class}).Value()
	}
	if got := count("GET /v1/ping", "2xx"); got != 3 {
		t.Errorf("ping 2xx = %d, want 3", got)
	}
	if got := count("GET /v1/fail", "5xx"); got != 1 {
		t.Errorf("fail 5xx = %d, want 1", got)
	}
	if got := count("unmatched", "4xx"); got != 1 {
		t.Errorf("unmatched 4xx = %d, want 1", got)
	}
	// The latency histogram recorded each routed request under its
	// pattern, not its raw URL.
	hist := reg.Histogram("pmwcm_http_request_seconds", "", DefBuckets,
		Labels{"route": "GET /v1/ping"})
	if hist.Count() != 3 {
		t.Errorf("ping latency count = %d, want 3", hist.Count())
	}
}

func TestMiddlewareRequestIDs(t *testing.T) {
	h := Middleware(NewRegistry(), testMux(), MiddlewareOptions{})

	// A well-formed incoming id is echoed.
	req := httptest.NewRequest("GET", "/v1/ping", nil)
	req.Header.Set(RequestIDHeader, "client-id_1.a")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "client-id_1.a" {
		t.Errorf("valid id not echoed: %q", got)
	}

	// Malformed ids are replaced, and generated ids are unique.
	seen := map[string]bool{}
	for _, bad := range []string{"", "has space", "ünicode", strings.Repeat("x", 65), "semi;colon"} {
		req := httptest.NewRequest("GET", "/v1/ping", nil)
		if bad != "" {
			req.Header.Set(RequestIDHeader, bad)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		got := rec.Header().Get(RequestIDHeader)
		if got == bad || got == "" || !validRequestID(got) {
			t.Errorf("bad id %q passed through as %q", bad, got)
		}
		if seen[got] {
			t.Errorf("generated id %q repeated", got)
		}
		seen[got] = true
	}
}

func TestMiddlewareStructuredLogs(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	reg := NewRegistry()
	h := Middleware(reg, testMux(), MiddlewareOptions{
		Logger: logger,
		SessionInfo: func(id string) (string, bool) {
			if id == "s-000001" {
				return "advanced", true
			}
			return "", false
		},
	})

	req := httptest.NewRequest("POST", "/v1/sessions/s-000001/query", nil)
	req.Header.Set(RequestIDHeader, "req-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line not JSON: %v (%q)", err, buf.String())
	}
	for key, want := range map[string]any{
		"level":      "INFO",
		"msg":        "request",
		"method":     "POST",
		"route":      "POST /v1/sessions/{id}/query",
		"status":     float64(201),
		"request_id": "req-42",
		"session":    "s-000001",
		"accountant": "advanced",
	} {
		if got := line[key]; got != want {
			t.Errorf("log[%q] = %v, want %v", key, got, want)
		}
	}
	if _, ok := line["duration_ms"]; !ok {
		t.Error("log line missing duration_ms")
	}

	// 5xx logs at error level.
	buf.Reset()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/fail", nil))
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatal(err)
	}
	if line["level"] != "ERROR" {
		t.Errorf("5xx logged at %v, want ERROR", line["level"])
	}

	// A logger above the line's level suppresses the log but not the
	// metrics.
	quiet := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelError}))
	h = Middleware(reg, testMux(), MiddlewareOptions{Logger: quiet})
	buf.Reset()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/ping", nil))
	if buf.Len() != 0 {
		t.Errorf("info line logged at error level: %q", buf.String())
	}
}

func TestStatusWriterDefaultsTo200(t *testing.T) {
	reg := NewRegistry()
	silent := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	h := Middleware(reg, silent, MiddlewareOptions{})
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if got := reg.Counter("pmwcm_http_requests_total", "",
		Labels{"route": "unmatched", "class": "2xx"}).Value(); got != 1 {
		t.Fatalf("silent handler class counter = %d, want 1 under 2xx", got)
	}
}
