package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Default bucket bounds, in seconds, for latency histograms: sub-100µs
// cache hits through multi-second universe sweeps.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are power-of-two bounds for count-valued histograms (batch
// sizes); the top bound matches the service's MaxBatchSize.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// The rolling window a histogram's quantile readout covers: histSlots
// slots of histSlotDur each. A slot whose epoch has passed out of the
// window is lazily zeroed by the next writer that lands on it, so idle
// histograms cost nothing.
const (
	histSlots   = 4
	histSlotDur = 15 * time.Second
)

// Histogram is a fixed-bucket histogram with two synchronized views:
// lifetime cumulative buckets (Prometheus semantics — monotone
// _bucket/_sum/_count series) and a rolling ~60s window from which
// Quantile computes p50/p90/p99 for the JSON readout. Observations are
// lock-free: one atomic add per view plus an epoch check. All methods
// no-op (or return 0) on a nil receiver.
//
// The window is approximate by design: slot rotation may race an
// in-flight observation and drop it from the window (never from the
// lifetime view), which is acceptable for telemetry and keeps the hot
// path free of locks.
type Histogram struct {
	bounds []float64 // sorted upper bounds; implicit +Inf overflow bucket

	count   atomic.Uint64
	sumBits atomic.Uint64
	life    []atomic.Uint64 // len(bounds)+1, lifetime per-bucket counts

	slots [histSlots]histSlot
	now   func() time.Time // injectable for window tests
}

// histSlot is one window slot: an epoch stamp and per-bucket counts.
type histSlot struct {
	epoch   atomic.Int64
	buckets []atomic.Uint64
}

// newHistogram builds a histogram over the given bounds (copied, sorted).
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, life: make([]atomic.Uint64, len(bs)+1), now: time.Now}
	for i := range h.slots {
		h.slots[i].buckets = make([]atomic.Uint64, len(bs)+1)
		h.slots[i].epoch.Store(-1)
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	b := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = overflow
	h.life[b].Add(1)
	h.count.Add(1)
	addFloatBits(&h.sumBits, v)
	h.slot(h.epoch()).buckets[b].Add(1)
}

// ObserveSince records the elapsed seconds since t0 — the common latency
// call shape.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(h.now().Sub(t0).Seconds())
}

// epoch returns the current slot epoch (monotone wall-clock counter).
func (h *Histogram) epoch() int64 {
	return h.now().UnixNano() / int64(histSlotDur)
}

// slot returns the window slot for epoch e, zeroing it first if a prior
// epoch's counts are still resident. The CAS makes exactly one writer
// responsible for the reset.
func (h *Histogram) slot(e int64) *histSlot {
	s := &h.slots[int(e%histSlots)]
	for {
		old := s.epoch.Load()
		if old == e {
			return s
		}
		if s.epoch.CompareAndSwap(old, e) {
			for i := range s.buckets {
				s.buckets[i].Store(0)
			}
			return s
		}
	}
}

// windowCounts merges the per-bucket counts of every slot still inside
// the rolling window.
func (h *Histogram) windowCounts() []uint64 {
	cur := h.epoch()
	counts := make([]uint64, len(h.bounds)+1)
	for i := range h.slots {
		s := &h.slots[i]
		if e := s.epoch.Load(); e <= cur-histSlots || e > cur {
			continue // expired (or clock went backwards); a writer will reset it
		}
		for b := range s.buckets {
			counts[b] += s.buckets[b].Load()
		}
	}
	return counts
}

// Quantile returns the q-quantile (0 < q <= 1) of observations in the
// rolling window, linearly interpolated within the containing bucket.
// Values in the overflow bucket clamp to the largest bound; an empty
// window returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := h.windowCounts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b, c := range counts {
		cum += c
		if cum < target {
			continue
		}
		if b >= len(h.bounds) { // overflow bucket: no finite upper bound
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if b > 0 {
			lo = h.bounds[b-1]
		}
		frac := float64(target-(cum-c)) / float64(c)
		return lo + frac*(h.bounds[b]-lo)
	}
	return h.bounds[len(h.bounds)-1] // unreachable: cum == total >= target
}

// Count returns the lifetime observation count.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the lifetime sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot renders the histogram: lifetime cumulative buckets for the
// Prometheus view plus rolling-window quantiles for the JSON view.
func (h *Histogram) snapshot() SampleSnapshot {
	s := SampleSnapshot{
		Sum: h.Sum(),
		P50: h.Quantile(0.50),
		P90: h.Quantile(0.90),
		P99: h.Quantile(0.99),
	}
	var cum uint64
	s.Buckets = make([]BucketCount, 0, len(h.bounds)+1)
	for b, bound := range h.bounds {
		cum += h.life[b].Load()
		s.Buckets = append(s.Buckets, BucketCount{LE: bound, Count: cum})
	}
	cum += h.life[len(h.bounds)].Load()
	s.Buckets = append(s.Buckets, BucketCount{LE: math.Inf(1), Count: cum})
	// _count renders from the +Inf cumulative bucket so the pair stays
	// consistent under concurrent observation.
	s.Count = cum
	s.Value = float64(cum)
	return s
}
