package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter", nil)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge", nil)
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilRegistryAndInstrumentsNoOp(t *testing.T) {
	var r *Registry
	// Nothing here may panic; every method must be a no-op.
	c := r.Counter("x", "", nil)
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter value != 0")
	}
	g := r.Gauge("x", "", nil)
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value != 0")
	}
	h := r.Histogram("x", "", DefBuckets, nil)
	h.Observe(0.1)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram not a no-op")
	}
	r.RegisterCollector(func(emit func(Sample)) { emit(Sample{Name: "y"}) })
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot != nil")
	}
}

func TestGetOrCreateMemoized(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("n", "", Labels{"k": "v", "j": "w"})
	// Same label set in a different map must address the same instrument.
	b := r.Counter("n", "", Labels{"j": "w", "k": "v"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	other := r.Counter("n", "", Labels{"k": "other"})
	if other == a {
		t.Fatal("distinct label sets shared an instrument")
	}
}

func TestLabelsClonedOnRegister(t *testing.T) {
	r := NewRegistry()
	l := Labels{"k": "v"}
	r.Counter("n", "", l).Inc()
	l["k"] = "mutated"
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Samples[0].Labels["k"] != "v" {
		t.Fatalf("registry labels follow caller mutation: %+v", snap)
	}
}

func TestKindClashReturnsDetachedInstrument(t *testing.T) {
	r := NewRegistry()
	r.Counter("n", "", nil).Inc()
	g := r.Gauge("n", "", nil) // same name, wrong kind
	g.Set(99)                  // must not panic or corrupt the family
	h := r.Histogram("n", "", DefBuckets, nil)
	h.Observe(1)
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != KindCounter || snap[0].Samples[0].Value != 1 {
		t.Fatalf("kind clash corrupted the family: %+v", snap)
	}
}

func TestSnapshotSortedAndCollectorMerge(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "bees", nil).Add(2)
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Name: "a_gauge", Help: "ays", Labels: Labels{"x": "1"}, Value: 7})
		emit(Sample{Name: "b_total", Labels: Labels{"src": "collector"}, Value: 3})
	})
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a_gauge" || snap[1].Name != "b_total" {
		t.Fatalf("snapshot not sorted by name: %+v", snap)
	}
	if snap[0].Kind != KindGauge || snap[0].Samples[0].Value != 7 {
		t.Fatalf("collector-created family wrong: %+v", snap[0])
	}
	// The collector sample merged into the existing counter family.
	if len(snap[1].Samples) != 2 {
		t.Fatalf("collector sample did not merge into b_total: %+v", snap[1])
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests", Labels{"route": "/x", "class": "2xx"}).Add(3)
	r.Gauge("temp", "with\nnewline", nil).Set(1.5)
	r.Histogram("lat_seconds", "latency", []float64{0.1, 1}, nil).Observe(0.05)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE req_total counter",
		`req_total{class="2xx",route="/x"} 3`,
		"# HELP temp with newline",
		"temp 1.5",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_sum 0.05",
		"lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsHandlerFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", nil).Inc()
	h := MetricsHandler(r)

	for _, q := range []string{"", "?format=prom", "?format=prometheus"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics"+q, nil))
		if rec.Code != 200 || !strings.Contains(rec.Body.String(), "c_total 1") {
			t.Fatalf("%q: code %d body %q", q, rec.Code, rec.Body.String())
		}
		if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Fatalf("%q: content-type %q", q, ct)
		}
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if rec.Code != 200 {
		t.Fatalf("json: code %d", rec.Code)
	}
	var snap struct {
		Families []FamilySnapshot `json:"families"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("json: %v", err)
	}
	if len(snap.Families) != 1 || snap.Families[0].Name != "c_total" || snap.Families[0].Samples[0].Value != 1 {
		t.Fatalf("json families = %+v", snap.Families)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=xml", nil))
	if rec.Code != 400 {
		t.Fatalf("unknown format: code %d, want 400", rec.Code)
	}
}

func TestBucketCountJSONInf(t *testing.T) {
	b, err := json.Marshal(BucketCount{LE: 0.5, Count: 2})
	if err != nil || string(b) != `{"le":"0.5","count":2}` {
		t.Fatalf("finite bucket: %s, %v", b, err)
	}
	h := newHistogram([]float64{1})
	h.Observe(5)
	raw, err := json.Marshal(h.snapshot().Buckets)
	if err != nil || !strings.Contains(string(raw), `"le":"+Inf"`) {
		t.Fatalf("overflow bucket JSON: %s, %v", raw, err)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("c_total", "", Labels{"w": "x"}).Inc()
				r.Gauge("g", "", nil).Add(1)
				r.Histogram("h_seconds", "", DefBuckets, nil).Observe(0.001)
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "", Labels{"w": "x"}).Value(); got != 8*200 {
		t.Fatalf("counter = %d, want %d", got, 8*200)
	}
}

func TestVersion(t *testing.T) {
	v := Version()
	if v.GoVersion == "" || v.Version == "" {
		t.Fatalf("version info incomplete: %+v", v)
	}
	if s := v.String(); s == "" {
		t.Fatal("empty version string")
	}
}
