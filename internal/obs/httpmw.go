package obs

import (
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"
)

// RequestIDHeader is the header the middleware reads an incoming request
// id from and writes the effective id to on every response.
const RequestIDHeader = "X-Request-ID"

// MiddlewareOptions configure Middleware beyond its registry.
type MiddlewareOptions struct {
	// Logger receives one structured line per request (method, route,
	// status, duration, request id, and — when resolvable — session and
	// accountant). nil disables logging; metrics still record.
	Logger *slog.Logger
	// SessionInfo resolves a request's session path value to its
	// accountant name for log enrichment. Optional; it must be read-only
	// and cheap, as it runs on every logged session-scoped request.
	SessionInfo func(sessionID string) (accountant string, ok bool)
}

// Middleware wraps next with per-route metrics and structured request
// logging. It records pmwcm_http_requests_total{route,class} and the
// pmwcm_http_request_seconds{route} latency histogram, assigns each
// request an id (echoing a well-formed incoming X-Request-ID, otherwise
// generating one), and logs at Info/Warn/Error for 2xx-3xx/4xx/5xx.
//
// Request ids come from an atomic counter under a start-time-derived
// prefix — never from the mechanism's (or any) RNG, preserving the
// invariant that observability cannot perturb released answers. The
// route label is the mux pattern (Go 1.22+ ServeMux records it on the
// request during dispatch), so label cardinality is bounded by the route
// table, not by raw URLs.
func Middleware(reg *Registry, next http.Handler, opts MiddlewareOptions) http.Handler {
	ids := newRequestIDs()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := ids.assign(r)
		w.Header().Set(RequestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)

		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		status := sw.status()
		class := fmt.Sprintf("%dxx", status/100)
		elapsed := time.Since(start)
		reg.Counter("pmwcm_http_requests_total",
			"HTTP requests served, by route pattern and status class.",
			Labels{"route": route, "class": class}).Inc()
		reg.Histogram("pmwcm_http_request_seconds",
			"HTTP request latency in seconds, by route pattern.",
			DefBuckets, Labels{"route": route}).Observe(elapsed.Seconds())

		if opts.Logger == nil {
			return
		}
		level := slog.LevelInfo
		switch {
		case status >= 500:
			level = slog.LevelError
		case status >= 400:
			level = slog.LevelWarn
		}
		if !opts.Logger.Enabled(r.Context(), level) {
			return
		}
		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Float64("duration_ms", float64(elapsed.Nanoseconds())/1e6),
			slog.String("request_id", id),
		}
		if sid := r.PathValue("id"); sid != "" {
			attrs = append(attrs, slog.String("session", sid))
			if opts.SessionInfo != nil {
				if acct, ok := opts.SessionInfo(sid); ok {
					attrs = append(attrs, slog.String("accountant", acct))
				}
			}
		}
		opts.Logger.LogAttrs(r.Context(), level, "request", attrs...)
	})
}

// requestIDs issues process-unique request ids without randomness: a
// prefix derived from the middleware's construction time plus an atomic
// sequence number.
type requestIDs struct {
	prefix string
	seq    atomic.Uint64
}

func newRequestIDs() *requestIDs {
	return &requestIDs{prefix: fmt.Sprintf("%08x", uint32(time.Now().UnixNano()))}
}

// assign returns the request's effective id: the incoming header when it
// is well-formed, else a freshly generated one.
func (g *requestIDs) assign(r *http.Request) string {
	if id := r.Header.Get(RequestIDHeader); validRequestID(id) {
		return id
	}
	return fmt.Sprintf("%s-%06d", g.prefix, g.seq.Add(1))
}

// validRequestID accepts short printable tokens (letters, digits, and
// -._) so arbitrary client bytes never pass through into logs verbatim.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '.', c == '_':
		default:
			return false
		}
	}
	return true
}

// statusWriter captures the response status code (and whether a write
// happened) for the metrics and log line.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

// WriteHeader records the status before delegating.
func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

// Write implies 200 on first write, matching net/http.
func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer when it supports flushing, so
// wrapping does not break streaming handlers.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// status returns the recorded code, defaulting to 200 for handlers that
// never wrote.
func (w *statusWriter) status() int {
	if !w.wrote {
		return http.StatusOK
	}
	return w.code
}
