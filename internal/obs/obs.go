// Package obs is the observability core of the serving subsystem: a
// small, dependency-free metrics layer (atomic counters, gauges, and
// fixed-bucket rolling latency histograms) plus a registry that renders
// both Prometheus text format and JSON, and an HTTP middleware that adds
// per-route metrics and structured request logging (httpmw.go).
//
// Design constraints, in order:
//
//  1. Metrics must never perturb the mechanism. Instruments draw no
//     randomness, take no mechanism locks, and never touch budget,
//     transcript, or noise-stream state; enabling observability leaves
//     every released answer bit-identical (pinned by a golden test in
//     internal/service). Scrape-time collectors read session state
//     through the same read-only accessors the status endpoints use.
//  2. Hot-path updates are lock-free. Counter/Gauge/Histogram updates
//     are single atomic operations (a CAS loop for float accumulation),
//     safe on the serving fast path; the registry's RWMutex is only
//     taken when an instrument is first created or the registry is
//     rendered.
//  3. Nil is off. A nil *Registry hands out nil instruments and every
//     instrument method no-ops on a nil receiver, so instrumented code
//     needs no "is observability enabled" branches.
//
// The registry renders on demand — GET /metrics (see MetricsHandler)
// returns Prometheus text by default and a structured JSON snapshot with
// ?format=json; the JSON form carries p50/p90/p99 readouts computed from
// each histogram's rolling window and is what `pmwcm loadtest` scrapes
// for its server-vs-client consistency gate.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attach dimensions to an instrument (e.g. route, accountant).
// Instruments with the same name but different label sets are distinct
// samples of one metric family.
type Labels map[string]string

// key renders labels canonically (sorted, escaped) so equal label sets
// always address the same instrument.
func (l Labels) key() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// clone copies labels so a caller mutating its map after registration
// cannot corrupt the registry's sample identity.
func (l Labels) clone() Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// Counter is a monotonically non-decreasing cumulative count. All
// methods are safe for concurrent use and no-op on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time float value. All methods are safe for
// concurrent use and no-op on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add accumulates delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	addFloatBits(&g.bits, delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// addFloatBits atomically adds delta to a float64 stored as bits.
func addFloatBits(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Metric family kinds, as rendered in both output formats.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Sample is one scrape-time metric point emitted by a CollectorFunc.
// Collector samples render as gauges.
type Sample struct {
	// Name is the metric family name.
	Name string
	// Help documents the family (first non-empty wins).
	Help string
	// Labels are the sample's dimensions.
	Labels Labels
	// Value is the sample's current value.
	Value float64
}

// CollectorFunc emits dynamic samples at scrape time — the mechanism for
// metrics whose cardinality changes at runtime (per-session gauges) or
// that are cheaper to compute on demand than to maintain. Collectors run
// while the registry is being rendered; they must be read-only with
// respect to the state they report.
type CollectorFunc func(emit func(Sample))

// family is one named metric with its instruments keyed by label set.
type family struct {
	name, help, kind string
	bounds           []float64 // histogram families only
	inst             map[string]instrumentEntry
}

type instrumentEntry struct {
	labels Labels
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry owns metric families and scrape-time collectors. A nil
// registry is valid and hands out nil (no-op) instruments, so callers
// instrument unconditionally. Instrument creation is memoized: the same
// name and label set always returns the same instrument.
type Registry struct {
	mu         sync.RWMutex
	families   map[string]*family
	collectors []CollectorFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// lookup returns the instrument entry for (name, labels) if present.
func (r *Registry) lookup(name, key string) (instrumentEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.families[name]
	if !ok {
		return instrumentEntry{}, false
	}
	e, ok := f.inst[key]
	return e, ok
}

// register creates (or returns) the family and instrument slot under the
// write lock. A name registered under a different kind returns nil — the
// caller gets a detached no-op instrument rather than a corrupted family.
func (r *Registry) register(name, help, kind string, bounds []float64, labels Labels) *instrumentEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, inst: map[string]instrumentEntry{}}
		r.families[name] = f
	}
	if f.kind != kind {
		return nil
	}
	key := labels.key()
	e, ok := f.inst[key]
	if !ok {
		e = instrumentEntry{labels: labels.clone()}
		switch kind {
		case KindCounter:
			e.c = &Counter{}
		case KindGauge:
			e.g = &Gauge{}
		case KindHistogram:
			e.h = newHistogram(f.bounds)
		}
		f.inst[key] = e
	}
	return &e
}

// Counter returns the named counter for the given label set, creating it
// on first use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	if e, ok := r.lookup(name, labels.key()); ok {
		return e.c
	}
	e := r.register(name, help, KindCounter, nil, labels)
	if e == nil {
		return &Counter{} // kind clash: detached, never rendered
	}
	return e.c
}

// Gauge returns the named gauge for the given label set, creating it on
// first use. A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	if e, ok := r.lookup(name, labels.key()); ok {
		return e.g
	}
	e := r.register(name, help, KindGauge, nil, labels)
	if e == nil {
		return &Gauge{}
	}
	return e.g
}

// Histogram returns the named histogram for the given label set,
// creating it on first use with the given bucket upper bounds (the
// family's first registration fixes the bounds; later calls reuse them).
// A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	if e, ok := r.lookup(name, labels.key()); ok {
		return e.h
	}
	e := r.register(name, help, KindHistogram, bounds, labels)
	if e == nil {
		return nil // kind clash: no-op histogram
	}
	return e.h
}

// RegisterCollector adds a scrape-time collector. No-op on a nil
// registry.
func (r *Registry) RegisterCollector(c CollectorFunc) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// LE is the bucket's inclusive upper bound (+Inf for the overflow
	// bucket, rendered as the JSON string "+Inf").
	LE float64 `json:"le"`
	// Count is the cumulative observation count at or below LE.
	Count uint64 `json:"count"`
}

// MarshalJSON renders +Inf as a string (JSON has no Inf literal).
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.LE, 1) {
		le = fmt.Sprintf("%g", b.LE)
	}
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, le, b.Count)), nil
}

// SampleSnapshot is one rendered metric point. Counters and gauges carry
// Value; histograms carry Count/Sum/Buckets (lifetime, Prometheus
// semantics) plus P50/P90/P99 computed over the rolling window.
type SampleSnapshot struct {
	Labels  Labels        `json:"labels,omitempty"`
	Value   float64       `json:"value"`
	Count   uint64        `json:"count,omitempty"`
	Sum     float64       `json:"sum,omitempty"`
	P50     float64       `json:"p50,omitempty"`
	P90     float64       `json:"p90,omitempty"`
	P99     float64       `json:"p99,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// FamilySnapshot is one rendered metric family.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Kind    string           `json:"kind"`
	Help    string           `json:"help,omitempty"`
	Samples []SampleSnapshot `json:"samples"`
}

// Snapshot renders every family (instruments plus collector output),
// sorted by name with samples sorted by label key. Safe for concurrent
// use with instrument updates; the result is a point-in-time read, not
// an atomic cut across instruments.
func (r *Registry) Snapshot() []FamilySnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	collectors := append([]CollectorFunc(nil), r.collectors...)
	r.mu.RUnlock()

	byName := map[string]*FamilySnapshot{}
	keyed := map[string][]string{} // name → sorted sample keys (for ordering)
	for _, f := range fams {
		fs := &FamilySnapshot{Name: f.name, Kind: f.kind, Help: f.help}
		byName[f.name] = fs
		r.mu.RLock()
		keys := make([]string, 0, len(f.inst))
		entries := make(map[string]instrumentEntry, len(f.inst))
		for k, e := range f.inst {
			keys = append(keys, k)
			entries[k] = e
		}
		r.mu.RUnlock()
		sort.Strings(keys)
		keyed[f.name] = keys
		for _, k := range keys {
			e := entries[k]
			s := SampleSnapshot{Labels: e.labels}
			switch f.kind {
			case KindCounter:
				s.Value = float64(e.c.Value())
			case KindGauge:
				s.Value = e.g.Value()
			case KindHistogram:
				s = e.h.snapshot()
				s.Labels = e.labels
			}
			fs.Samples = append(fs.Samples, s)
		}
	}
	// Collector samples render as gauges, merged into (or creating) their
	// named family.
	for _, c := range collectors {
		c(func(s Sample) {
			fs, ok := byName[s.Name]
			if !ok {
				fs = &FamilySnapshot{Name: s.Name, Kind: KindGauge, Help: s.Help}
				byName[s.Name] = fs
			}
			if fs.Help == "" {
				fs.Help = s.Help
			}
			fs.Samples = append(fs.Samples, SampleSnapshot{Labels: s.Labels.clone(), Value: s.Value})
		})
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]FamilySnapshot, 0, len(names))
	for _, n := range names {
		out = append(out, *byName[n])
	}
	return out
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.Snapshot() {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, strings.ReplaceAll(f.Help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Samples {
			var err error
			if f.Kind == KindHistogram {
				err = writePromHistogram(w, f.Name, s)
			} else {
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.Name, promLabels(s.Labels, "", ""), promFloat(s.Value))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram renders one histogram sample's cumulative buckets,
// sum, and count.
func writePromHistogram(w io.Writer, name string, s SampleSnapshot) error {
	for _, b := range s.Buckets {
		le := "+Inf"
		if !math.IsInf(b.LE, 1) {
			le = fmt.Sprintf("%g", b.LE)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(s.Labels, "le", le), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(s.Labels, "", ""), promFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(s.Labels, "", ""), s.Count)
	return err
}

// promLabels renders a label set (plus an optional extra pair) in
// exposition syntax, or "" when empty.
func promLabels(l Labels, extraKey, extraVal string) string {
	if len(l) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(l)+1)
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, promEscape(l[k]))
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, promEscape(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

// promEscape escapes a label value per the exposition format. %q adds
// quote and backslash escaping; newlines are the remaining hazard.
func promEscape(v string) string {
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promFloat renders a float without Go's %v +Inf/NaN spellings.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return fmt.Sprintf("%g", v)
	}
}

// jsonSnapshot is the JSON exposition envelope.
type jsonSnapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// MetricsHandler serves the registry over HTTP: Prometheus text by
// default, the structured JSON snapshot with ?format=json (the form
// `pmwcm loadtest` scrapes). Rendering is read-only — scrapes can never
// perturb mechanism state.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch f := req.URL.Query().Get("format"); f {
		case "", "prom", "prometheus":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			r.WritePrometheus(w)
		case "json":
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(jsonSnapshot{Families: r.Snapshot()})
		default:
			http.Error(w, fmt.Sprintf(`{"error": "unknown format %q (have prom, json)"}`, f), http.StatusBadRequest)
		}
	})
}

// VersionInfo describes the running build, read from the binary's
// embedded module and VCS metadata.
type VersionInfo struct {
	// Module is the main module path; Version its module version
	// ("(devel)" for non-tagged local builds).
	Module  string `json:"module"`
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision/BuildTime/Modified carry VCS stamping when the build had
	// it (plain `go build` in a git checkout).
	Revision  string `json:"revision,omitempty"`
	BuildTime string `json:"build_time,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// Version reads the build's identity via runtime/debug.ReadBuildInfo.
func Version() VersionInfo {
	v := VersionInfo{GoVersion: runtime.Version(), Version: "(devel)"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.Module = bi.Main.Path
	if bi.Main.Version != "" {
		v.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			v.Revision = s.Value
		case "vcs.time":
			v.BuildTime = s.Value
		case "vcs.modified":
			v.Modified = s.Value == "true"
		}
	}
	return v
}

// String renders a one-line human-readable version, for CLI output and
// startup logs.
func (v VersionInfo) String() string {
	s := fmt.Sprintf("%s %s (%s)", v.Module, v.Version, v.GoVersion)
	if v.Revision != "" {
		rev := v.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if v.Modified {
			s += "+dirty"
		}
	}
	return s
}
