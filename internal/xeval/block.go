package xeval

import (
	"sync"

	"repro/internal/universe"
)

// pointBuf pools the row-major point matrices MaterializePoints hands out.
// Capacity grows to the largest chunk×dim the process sweeps and is then
// reused across chunks and sweeps, so steady-state kernels allocate
// nothing.
var pointBuf = sync.Pool{New: func() any { return new([]float64) }}

// MaterializePoints returns the row-major materialization of universe
// elements [lo, hi): element lo+k occupies rows[k*dim:(k+1)*dim] with
// dim = u.Dim(). The release function returns the backing buffer to an
// internal pool; callers must not touch rows after calling it.
//
// Universes implementing universe.Block fill the whole matrix in one call
// — implicit product universes decode the index once and step an odometer
// instead of doing a full mixed-radix decode per element — and any other
// universe falls back to per-element PointInto. Both paths write exactly
// the universe's point vectors, so kernels that switch from per-element
// PointInto loops to a materialized block read bit-identical inputs in the
// same order.
func MaterializePoints(u universe.Universe, lo, hi int) (rows []float64, release func()) {
	dim := u.Dim()
	n := (hi - lo) * dim
	bp := pointBuf.Get().(*[]float64)
	if cap(*bp) < n {
		*bp = make([]float64, n)
	}
	rows = (*bp)[:n]
	if b, ok := u.(universe.Block); ok {
		b.PointsInto(lo, hi, rows)
	} else {
		for i := lo; i < hi; i++ {
			u.PointInto(i, rows[(i-lo)*dim:(i-lo+1)*dim])
		}
	}
	return rows, func() { pointBuf.Put(bp) }
}
