package xeval

import (
	"math"
	"testing"
)

// benchWork is a per-element cost comparable to a GLM gradient kernel:
// a short dot product plus a transcendental.
func benchWork(vals []float64, lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		s += math.Exp(-vals[i] * vals[i])
	}
	return s
}

func benchSum(b *testing.B, workers int) {
	const n = 1 << 16
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%97) / 97
	}
	e := New(workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Sum(n, func(lo, hi int) float64 { return benchWork(vals, lo, hi) })
	}
}

func BenchmarkEngineSumSerial(b *testing.B)   { benchSum(b, 1) }
func BenchmarkEngineSum4Workers(b *testing.B) { benchSum(b, 4) }
func BenchmarkEngineSum8Workers(b *testing.B) { benchSum(b, 8) }
func BenchmarkEngineSumNumCPU(b *testing.B)   { benchSum(b, 0) }
