// Package xeval is the universe-expectation engine: a chunked, parallel
// map/reduce layer over universe index ranges [0, |X|).
//
// Every hot path in the reproduction — population losses and gradients
// (convex.EvalOn/GradOn), the public argmin solves (optimize), the MW
// histogram materialization (mw), and the Claim-3.5 dual certificate
// (core) — is an expectation or per-element map over the dense universe.
// This package gives all of them one execution substrate with two
// properties the rest of the system relies on:
//
//  1. Determinism. Chunk boundaries depend only on the range length n
//     (fixed chunk size, never the worker count), and reductions combine
//     per-chunk partials with a fixed pairwise tree. The result is
//     bit-identical for every worker count, so "parallel" is a pure
//     speedup knob: privacy-relevant released values do not depend on how
//     many cores the server happens to have.
//
//  2. Zero coordination inside a chunk. Workers claim whole chunks from an
//     atomic counter and touch disjoint index ranges, so kernels may write
//     into disjoint slices of caller-owned buffers without locks.
//
// A nil *Engine is valid everywhere and means "serial": the same chunking
// and the same pairwise reduction run inline on the caller's goroutine.
package xeval

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Observer receives one completed sweep's telemetry: the chunk count, the
// effective worker count, and the wall-clock duration in seconds. It runs
// on the sweeping goroutine after the reduction has completed, so it sees
// timing only — it cannot observe or perturb kernel inputs, partials, or
// the bit-exact result. Observers must be cheap and concurrency-safe.
type Observer func(chunks, workers int, seconds float64)

// observer is the process-wide sweep observer; nil (the default) makes
// instrumentation a single atomic load on the sweep path.
var observer atomic.Pointer[Observer]

// SetObserver installs or (with nil) removes the process-wide sweep
// observer. The serve command uses it to feed the sweep-duration
// histogram; tests and library users normally leave it unset.
func SetObserver(f Observer) {
	if f == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&f)
}

// ChunkSize is the fixed number of universe indices per chunk. It depends
// on nothing but this constant, so chunk boundaries — and therefore the
// reduction tree and the bit-exact result — are a function of n alone.
// 2048 elements amortize goroutine handoff (~µs) against per-chunk kernel
// work (tens of µs for GLM gradients) while still giving 32 chunks at
// |X| = 2^16 for load balancing across 8–16 workers.
const ChunkSize = 2048

// Engine schedules chunked map/reduce calls over index ranges. The zero
// of workers is resolved at construction; a nil *Engine runs serially.
// Engines are stateless between calls and safe for concurrent use.
type Engine struct {
	workers int
}

// New returns an engine with the given worker count. workers <= 0 selects
// runtime.NumCPU().
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Engine{workers: workers}
}

// Workers returns the engine's worker count (1 for a nil engine).
func (e *Engine) Workers() int {
	if e == nil {
		return 1
	}
	return e.workers
}

// Chunks returns the number of chunks an n-element range splits into.
func Chunks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + ChunkSize - 1) / ChunkSize
}

// chunkBounds returns the half-open index range of chunk c.
func chunkBounds(c, n int) (lo, hi int) {
	lo = c * ChunkSize
	hi = lo + ChunkSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// run executes f(c) for every chunk index c in [0, chunks), on the
// caller's goroutine when the engine is serial (or the range is a single
// chunk) and on min(workers, chunks) goroutines otherwise. It returns
// after every chunk has completed.
func (e *Engine) run(chunks int, f func(c int)) {
	if chunks <= 0 {
		return
	}
	w := e.Workers()
	if w > chunks {
		w = chunks
	}
	obs := observer.Load()
	var start time.Time
	if obs != nil {
		start = time.Now()
	}
	if w <= 1 {
		for c := 0; c < chunks; c++ {
			f(c)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(w)
		for i := 0; i < w; i++ {
			go func() {
				defer wg.Done()
				for {
					c := int(next.Add(1)) - 1
					if c >= chunks {
						return
					}
					f(c)
				}
			}()
		}
		wg.Wait()
	}
	if obs != nil {
		(*obs)(chunks, w, time.Since(start).Seconds())
	}
}

// ForEach runs f over every chunk of [0, n). Chunks execute concurrently;
// f must only touch state associated with its own [lo, hi) range.
func (e *Engine) ForEach(n int, f func(lo, hi int)) {
	e.run(Chunks(n), func(c int) {
		lo, hi := chunkBounds(c, n)
		f(lo, hi)
	})
}

// Sum reduces f's per-chunk partial sums over [0, n) with a pairwise tree,
// returning 0 for an empty range. The combination order is fixed by n
// alone, so the result is bit-identical for every worker count.
func (e *Engine) Sum(n int, f func(lo, hi int) float64) float64 {
	chunks := Chunks(n)
	if chunks == 0 {
		return 0
	}
	parts := make([]float64, chunks)
	e.run(chunks, func(c int) {
		lo, hi := chunkBounds(c, n)
		parts[c] = f(lo, hi)
	})
	return pairwiseSum(parts)
}

// Max reduces f's per-chunk partial maxima over [0, n). It returns
// negative infinity semantics via ok=false for an empty range.
func (e *Engine) Max(n int, f func(lo, hi int) float64) (m float64, ok bool) {
	chunks := Chunks(n)
	if chunks == 0 {
		return 0, false
	}
	parts := make([]float64, chunks)
	e.run(chunks, func(c int) {
		lo, hi := chunkBounds(c, n)
		parts[c] = f(lo, hi)
	})
	m = parts[0]
	for _, v := range parts[1:] {
		if v > m {
			m = v
		}
	}
	return m, true
}

// SumVec accumulates per-chunk partial vectors of length dim into dst
// (which it zeroes first) and returns dst. Each chunk receives its own
// zeroed out buffer; partials combine with the same pairwise tree as Sum,
// coordinate by coordinate, so the result is bit-deterministic.
func (e *Engine) SumVec(dst []float64, n int, f func(lo, hi int, out []float64)) []float64 {
	for i := range dst {
		dst[i] = 0
	}
	chunks := Chunks(n)
	if chunks == 0 {
		return dst
	}
	dim := len(dst)
	backing := make([]float64, chunks*dim)
	e.run(chunks, func(c int) {
		lo, hi := chunkBounds(c, n)
		f(lo, hi, backing[c*dim:(c+1)*dim])
	})
	parts := make([][]float64, chunks)
	for c := range parts {
		parts[c] = backing[c*dim : (c+1)*dim]
	}
	acc := pairwiseSumVec(parts)
	copy(dst, acc)
	return dst
}

// pairwiseSum combines partials with a balanced binary tree: split in
// half, sum each half recursively, add. Beyond determinism this bounds
// rounding error growth at O(log n) instead of O(n).
func pairwiseSum(parts []float64) float64 {
	switch len(parts) {
	case 0:
		return 0
	case 1:
		return parts[0]
	case 2:
		return parts[0] + parts[1]
	}
	mid := len(parts) / 2
	return pairwiseSum(parts[:mid]) + pairwiseSum(parts[mid:])
}

// pairwiseSumVec combines partial vectors with the same tree shape as
// pairwiseSum, accumulating the right half into the left in place.
func pairwiseSumVec(parts [][]float64) []float64 {
	switch len(parts) {
	case 1:
		return parts[0]
	case 2:
		a, b := parts[0], parts[1]
		for i := range a {
			a[i] += b[i]
		}
		return a
	}
	mid := len(parts) / 2
	a := pairwiseSumVec(parts[:mid])
	b := pairwiseSumVec(parts[mid:])
	for i := range a {
		a[i] += b[i]
	}
	return a
}
