package xeval

import (
	"math"
	"sync/atomic"
	"testing"
)

// TestChunksBoundaries checks the chunk decomposition covers [0, n)
// exactly once, in order, for awkward sizes.
func TestChunksBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, 2, ChunkSize - 1, ChunkSize, ChunkSize + 1, 3*ChunkSize + 7, 1 << 16} {
		chunks := Chunks(n)
		covered := 0
		prevHi := 0
		for c := 0; c < chunks; c++ {
			lo, hi := chunkBounds(c, n)
			if lo != prevHi {
				t.Fatalf("n=%d chunk %d starts at %d, want %d", n, c, lo, prevHi)
			}
			if hi <= lo {
				t.Fatalf("n=%d chunk %d empty [%d,%d)", n, c, lo, hi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != n {
			t.Fatalf("n=%d chunks cover %d indices", n, covered)
		}
	}
}

// TestSumDeterministicAcrossWorkers asserts the core engine contract:
// Sum/SumVec/Max are bit-identical for every worker count, including the
// nil (serial) engine.
func TestSumDeterministicAcrossWorkers(t *testing.T) {
	const n = 3*ChunkSize + 311
	vals := make([]float64, n)
	for i := range vals {
		// Mix magnitudes so summation order would show up in the low bits.
		vals[i] = math.Sin(float64(i)) * math.Exp(float64(i%37)-18)
	}
	sum := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += vals[i]
		}
		return s
	}
	max := func(lo, hi int) float64 {
		m := math.Inf(-1)
		for i := lo; i < hi; i++ {
			if vals[i] > m {
				m = vals[i]
			}
		}
		return m
	}
	vec := func(lo, hi int, out []float64) {
		for i := lo; i < hi; i++ {
			out[i%7] += vals[i]
		}
	}

	var nilEngine *Engine
	wantSum := nilEngine.Sum(n, sum)
	wantMax, ok := nilEngine.Max(n, max)
	if !ok {
		t.Fatal("Max reported empty range")
	}
	wantVec := nilEngine.SumVec(make([]float64, 7), n, vec)

	for _, w := range []int{1, 2, 3, 4, 8, 16, 33} {
		e := New(w)
		// Several repetitions: scheduling varies, results must not.
		for rep := 0; rep < 3; rep++ {
			if got := e.Sum(n, sum); got != wantSum {
				t.Errorf("workers=%d Sum = %v, want bit-identical %v", w, got, wantSum)
			}
			if got, _ := e.Max(n, max); got != wantMax {
				t.Errorf("workers=%d Max = %v, want %v", w, got, wantMax)
			}
			got := e.SumVec(make([]float64, 7), n, vec)
			for i := range got {
				if got[i] != wantVec[i] {
					t.Errorf("workers=%d SumVec[%d] = %v, want bit-identical %v", w, i, got[i], wantVec[i])
				}
			}
		}
	}
}

// TestForEachCoversAll runs ForEach in parallel and checks every index is
// visited exactly once (atomic counters keep the test race-clean).
func TestForEachCoversAll(t *testing.T) {
	const n = 5*ChunkSize + 13
	e := New(8)
	seen := make([]atomic.Int32, n)
	e.ForEach(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i].Add(1)
		}
	})
	for i := range seen {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

// TestEmptyAndTinyRanges exercises degenerate sizes.
func TestEmptyAndTinyRanges(t *testing.T) {
	e := New(4)
	if got := e.Sum(0, func(lo, hi int) float64 { t.Fatal("called"); return 0 }); got != 0 {
		t.Errorf("empty Sum = %v", got)
	}
	if _, ok := e.Max(0, nil); ok {
		t.Error("empty Max reported ok")
	}
	if got := e.Sum(1, func(lo, hi int) float64 { return float64(hi - lo) }); got != 1 {
		t.Errorf("Sum over one element = %v", got)
	}
	dst := e.SumVec(make([]float64, 2), 0, nil)
	if dst[0] != 0 || dst[1] != 0 {
		t.Errorf("empty SumVec = %v", dst)
	}
}

// TestWorkersResolution checks the worker-count knob semantics.
func TestWorkersResolution(t *testing.T) {
	if w := (*Engine)(nil).Workers(); w != 1 {
		t.Errorf("nil engine workers = %d", w)
	}
	if w := New(3).Workers(); w != 3 {
		t.Errorf("New(3) workers = %d", w)
	}
	if w := New(0).Workers(); w < 1 {
		t.Errorf("New(0) workers = %d, want NumCPU ≥ 1", w)
	}
	if w := New(-5).Workers(); w < 1 {
		t.Errorf("New(-5) workers = %d, want NumCPU ≥ 1", w)
	}
}

// TestPairwiseSumMatchesKahanScale sanity-checks the pairwise tree against
// a widely different summation order on an ill-conditioned input.
func TestPairwiseSumMatchesKahanScale(t *testing.T) {
	const n = 4 * ChunkSize
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1e-8
	}
	vals[0] = 1e8
	e := New(8)
	got := e.Sum(n, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += vals[i]
		}
		return s
	})
	// Within-chunk accumulation next to the 1e8 entry rounds at ~2e-8 per
	// add; the pairwise tree caps the growth at O(log chunks) beyond that.
	want := 1e8 + float64(n-1)*1e-8
	if math.Abs(got-want) > 1e-4 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}
