package dataset

import (
	"math"
	"testing"

	"repro/internal/sample"
	"repro/internal/universe"
)

func grid(t *testing.T) *universe.LabeledGrid {
	t.Helper()
	g, err := universe.NewLabeledGrid(2, 3, 1.0, 5, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	u, _ := universe.NewHypercube(2)
	if _, err := New(u, nil); err == nil {
		t.Error("empty rows accepted")
	}
	if _, err := New(u, []int{0, 4}); err == nil {
		t.Error("out-of-range row accepted")
	}
	d, err := New(u, []int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 3 {
		t.Errorf("N = %d", d.N())
	}
}

func TestHistogramRoundTrip(t *testing.T) {
	u, _ := universe.NewHypercube(2)
	d, _ := New(u, []int{0, 0, 3, 1})
	h := d.Histogram()
	want := []float64{0.5, 0.25, 0, 0.25}
	for i := range want {
		if math.Abs(h.P[i]-want[i]) > 1e-12 {
			t.Errorf("P[%d] = %v, want %v", i, h.P[i], want[i])
		}
	}
}

func TestAdjacent(t *testing.T) {
	u, _ := universe.NewHypercube(2)
	d, _ := New(u, []int{0, 1, 2})
	d2 := d.Adjacent(1, 3)
	if d.Rows[1] != 1 {
		t.Error("original mutated")
	}
	if d2.Rows[1] != 3 || d2.Rows[0] != 0 {
		t.Errorf("adjacent rows = %v", d2.Rows)
	}
	if got := d.Histogram().L1(d2.Histogram()); got > 2.0/3+1e-12 {
		t.Errorf("adjacent L1 = %v", got)
	}
}

func TestSampleFrom(t *testing.T) {
	u, _ := universe.NewHypercube(2)
	pop, err := Skewed(u, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	src := sample.New(1)
	d := SampleFrom(src, pop, 20000)
	if d.N() != 20000 {
		t.Fatalf("N = %d", d.N())
	}
	if got := d.Histogram().L1(pop); got > 0.05 {
		t.Errorf("sample far from population: L1 = %v", got)
	}
}

func TestLinearModel(t *testing.T) {
	g := grid(t)
	src := sample.New(2)
	theta := []float64{1, -0.5}
	pop, err := LinearModel(src, g, theta, 0.1, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if err := pop.Validate(); err != nil {
		t.Fatal(err)
	}
	// The population should correlate labels with ⟨θ*, x⟩: the expected
	// product E[y·⟨θ*,x⟩] must be clearly positive.
	var corr float64
	for i, p := range pop.P {
		if p == 0 {
			continue
		}
		pt := g.Point(i)
		dot := theta[0]*pt[0] + theta[1]*pt[1]
		corr += p * dot * pt[2]
	}
	if corr <= 0.01 {
		t.Errorf("label/model correlation = %v, want clearly positive", corr)
	}
	if _, err := LinearModel(src, g, []float64{1}, 0.1, 10); err == nil {
		t.Error("wrong theta dim accepted")
	}
	if _, err := LinearModel(src, g, theta, 0.1, 0); err == nil {
		t.Error("draws=0 accepted")
	}
}

func TestLogisticModel(t *testing.T) {
	g := grid(t)
	src := sample.New(3)
	theta := []float64{2, 0}
	pop, err := LogisticModel(src, g, theta, 0.25, 30000)
	if err != nil {
		t.Fatal(err)
	}
	// Labels should be extreme grid values only (±labelRadius after
	// rounding of ±huge), and positively correlated with x₀.
	var corr float64
	for i, p := range pop.P {
		if p == 0 {
			continue
		}
		pt := g.Point(i)
		if math.Abs(math.Abs(pt[2])-2.0) > 1e-9 {
			t.Fatalf("logistic label %v not extreme", pt[2])
		}
		corr += p * pt[0] * pt[2]
	}
	if corr <= 0.01 {
		t.Errorf("logistic correlation = %v", corr)
	}
	if _, err := LogisticModel(src, g, theta, 0, 10); err == nil {
		t.Error("temp=0 accepted")
	}
	if _, err := LogisticModel(src, g, []float64{1, 2, 3}, 1, 10); err == nil {
		t.Error("wrong theta dim accepted")
	}
}

func TestSkewed(t *testing.T) {
	u, _ := universe.NewHypercube(3)
	pop, err := Skewed(u, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := pop.Validate(); err != nil {
		t.Fatal(err)
	}
	// Monotone decreasing.
	for i := 1; i < len(pop.P); i++ {
		if pop.P[i] > pop.P[i-1]+1e-15 {
			t.Fatalf("skewed not monotone at %d", i)
		}
	}
	// s=0 is uniform.
	uni, _ := Skewed(u, 0)
	for _, p := range uni.P {
		if math.Abs(p-1.0/8) > 1e-12 {
			t.Errorf("Skewed(0) not uniform: %v", p)
		}
	}
	if _, err := Skewed(u, -1); err == nil {
		t.Error("negative skew accepted")
	}
}

func TestPointMass(t *testing.T) {
	u, _ := universe.NewHypercube(2)
	pm, err := PointMass(u, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pm.P[2] != 1 {
		t.Errorf("P = %v", pm.P)
	}
	if _, err := PointMass(u, 4); err == nil {
		t.Error("bad index accepted")
	}
	if _, err := PointMass(u, -1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestMixture(t *testing.T) {
	u, _ := universe.NewHypercube(2)
	m, err := Mixture(u, []int{0, 3}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.P[0]-0.25) > 1e-12 || math.Abs(m.P[3]-0.75) > 1e-12 {
		t.Errorf("P = %v", m.P)
	}
	// Repeated element accumulates.
	m2, err := Mixture(u, []int{1, 1}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m2.P[1] != 1 {
		t.Errorf("repeated element P = %v", m2.P)
	}
	for _, c := range []struct {
		e []int
		w []float64
	}{
		{nil, nil},
		{[]int{0}, []float64{1, 2}},
		{[]int{9}, []float64{1}},
		{[]int{0}, []float64{-1}},
		{[]int{0}, []float64{0}},
	} {
		if _, err := Mixture(u, c.e, c.w); err == nil {
			t.Errorf("Mixture(%v,%v) accepted", c.e, c.w)
		}
	}
}
