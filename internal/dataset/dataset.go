// Package dataset provides row-level datasets over finite universes and the
// synthetic workload generators used by the experiments.
//
// The paper evaluates nothing empirically, but its introduction motivates
// the query families with concrete analyses — linear regression, logistic
// regression, SVMs — over datasets of n individuals. The generators here
// produce exactly those shapes: ground-truth parameter θ*, features drawn
// from the universe, labels from the corresponding linear/logistic model,
// then rounded back onto the universe grid per §1.1.
package dataset

import (
	"fmt"
	"math"

	"repro/internal/histogram"
	"repro/internal/sample"
	"repro/internal/universe"
)

// Dataset is an ordered collection of rows, each an index into a finite
// universe. Order matters only for defining adjacency (replace row j).
type Dataset struct {
	U    universe.Universe
	Rows []int
}

// New validates row indices and wraps them.
func New(u universe.Universe, rows []int) (*Dataset, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: no rows")
	}
	for j, r := range rows {
		if r < 0 || r >= u.Size() {
			return nil, fmt.Errorf("dataset: row %d index %d outside universe size %d", j, r, u.Size())
		}
	}
	return &Dataset{U: u, Rows: rows}, nil
}

// N returns the number of rows n.
func (d *Dataset) N() int { return len(d.Rows) }

// Histogram returns the histogram representation of the dataset.
func (d *Dataset) Histogram() *histogram.Histogram {
	h, err := histogram.FromRows(d.U, d.Rows)
	if err != nil {
		// Construction validated rows; a failure here is a programmer error.
		panic("dataset: invalid internal state: " + err.Error())
	}
	return h
}

// Adjacent returns the neighbouring dataset with row j replaced by universe
// element v.
func (d *Dataset) Adjacent(j, v int) *Dataset {
	return &Dataset{U: d.U, Rows: histogram.AdjacentRows(d.Rows, j, v)}
}

// SampleFrom draws n i.i.d. rows from the population distribution pop.
// This is the sampling model of §1.3 (generalization error experiments):
// pop is the unknown population, the result is the analyst's sample.
func SampleFrom(src *sample.Source, pop *histogram.Histogram, n int) *Dataset {
	return &Dataset{U: pop.U, Rows: pop.SampleRows(src, n)}
}

// LinearModel generates a linear-regression population over a labeled grid:
// features x are uniform over the feature grid, labels follow
// y = ⟨θ*, x⟩ + N(0, noise²), and the pair (x, y) is rounded to the nearest
// universe element. The returned histogram is the induced population
// distribution; sample from it with SampleFrom.
func LinearModel(src *sample.Source, g *universe.LabeledGrid, theta []float64, noise float64, draws int) (*histogram.Histogram, error) {
	if len(theta) != g.FeatureDim() {
		return nil, fmt.Errorf("dataset: theta dim %d != feature dim %d", len(theta), g.FeatureDim())
	}
	return modelPopulation(src, g, draws, func(x []float64) float64 {
		var dot float64
		for i, ti := range theta {
			dot += ti * x[i]
		}
		return dot + src.Gaussian(0, noise)
	})
}

// LogisticModel generates a binary-classification population: features
// uniform over the grid, label +r with probability sigmoid(⟨θ*,x⟩/temp) and
// −r otherwise, where r is the grid's label radius (recovered by rounding).
func LogisticModel(src *sample.Source, g *universe.LabeledGrid, theta []float64, temp float64, draws int) (*histogram.Histogram, error) {
	if len(theta) != g.FeatureDim() {
		return nil, fmt.Errorf("dataset: theta dim %d != feature dim %d", len(theta), g.FeatureDim())
	}
	if temp <= 0 {
		return nil, fmt.Errorf("dataset: temperature must be positive")
	}
	return modelPopulation(src, g, draws, func(x []float64) float64 {
		var dot float64
		for i, ti := range theta {
			dot += ti * x[i]
		}
		p := 1 / (1 + math.Exp(-dot/temp))
		if src.Bernoulli(p) {
			return math.Inf(1) // rounds to the largest label on the grid
		}
		return math.Inf(-1)
	})
}

// modelPopulation builds a population histogram by Monte-Carlo: draw a
// random universe feature pattern, compute a label, round (x, label) to the
// nearest universe element, and accumulate counts over `draws` repetitions.
func modelPopulation(src *sample.Source, g *universe.LabeledGrid, draws int, label func(x []float64) float64) (*histogram.Histogram, error) {
	if draws < 1 {
		return nil, fmt.Errorf("dataset: draws must be ≥ 1")
	}
	d := g.Dim()
	counts := make([]int, g.Size())
	point := make([]float64, d)
	for i := 0; i < draws; i++ {
		// Uniform universe element supplies the feature pattern; only its
		// label coordinate is replaced by the model's label.
		base := g.Point(src.Intn(g.Size()))
		copy(point, base)
		y := label(base[:d-1])
		// Clamp infinities (used by LogisticModel to mean "extreme label")
		// into values Nearest can round.
		if math.IsInf(y, 1) {
			y = math.MaxFloat64 / 2
		} else if math.IsInf(y, -1) {
			y = -math.MaxFloat64 / 2
		}
		point[d-1] = y
		counts[universe.Nearest(g, point)]++
	}
	return histogram.FromCounts(g, counts)
}

// Skewed returns a Zipf-like population over u: element i gets weight
// 1/(i+1)^s. Skewed populations make the MW update's job non-trivial (the
// uniform prior D̂¹ is far from D in KL), exercising the full T-update
// budget of the algorithm.
func Skewed(u universe.Universe, s float64) (*histogram.Histogram, error) {
	if s < 0 {
		return nil, fmt.Errorf("dataset: skew exponent must be ≥ 0")
	}
	p := make([]float64, u.Size())
	var z float64
	for i := range p {
		p[i] = 1 / math.Pow(float64(i+1), s)
		z += p[i]
	}
	for i := range p {
		p[i] /= z
	}
	return histogram.FromProbs(u, p)
}

// PointMass returns the population concentrated on a single universe
// element — the adversarial extreme for MW (maximal initial KL).
func PointMass(u universe.Universe, idx int) (*histogram.Histogram, error) {
	if idx < 0 || idx >= u.Size() {
		return nil, fmt.Errorf("dataset: point-mass index %d outside universe size %d", idx, u.Size())
	}
	p := make([]float64, u.Size())
	p[idx] = 1
	return histogram.FromProbs(u, p)
}

// Mixture returns a population that is a convex combination of point masses
// at the given universe elements with the given weights (normalized here).
func Mixture(u universe.Universe, elems []int, weights []float64) (*histogram.Histogram, error) {
	if len(elems) == 0 || len(elems) != len(weights) {
		return nil, fmt.Errorf("dataset: mixture needs equal, non-empty elems and weights")
	}
	p := make([]float64, u.Size())
	var z float64
	for i, e := range elems {
		if e < 0 || e >= u.Size() {
			return nil, fmt.Errorf("dataset: mixture element %d outside universe", e)
		}
		if weights[i] < 0 {
			return nil, fmt.Errorf("dataset: negative mixture weight")
		}
		p[e] += weights[i]
		z += weights[i]
	}
	if z == 0 {
		return nil, fmt.Errorf("dataset: mixture weights sum to zero")
	}
	for i := range p {
		p[i] /= z
	}
	return histogram.FromProbs(u, p)
}
