package sparse

import (
	"testing"
	"testing/quick"

	"repro/internal/sample"
)

// Structural invariants of any SV run: Tops ≤ T, Seen ≤ K, and Halted ⇔
// (Tops = T or Seen = K). Checked over random query streams.
func TestSVInvariants(t *testing.T) {
	f := func(seed int64, rawT, rawK uint8) bool {
		T := 1 + int(rawT)%6
		K := 1 + int(rawK)%40
		cfg := Config{T: T, K: K, Alpha: 0.2, Eps: 1, Delta: 1e-6, Sensitivity: 0.01}
		src := sample.New(seed)
		sv, err := New(cfg, src)
		if err != nil {
			return false
		}
		for !sv.Halted() {
			// Random stream straddling the threshold.
			v := src.Float64() * 0.4
			if _, err := sv.Query(v); err != nil {
				return false
			}
			if sv.Tops() > T || sv.Seen() > K {
				return false
			}
		}
		if sv.Tops() != T && sv.Seen() != K {
			return false
		}
		// Post-halt queries always fail.
		if _, err := sv.Query(1); err != ErrHalted {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// SV runs are deterministic given the seed and the query stream.
func TestSVDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Config{T: 4, K: 30, Alpha: 0.2, Eps: 1, Delta: 1e-6, Sensitivity: 0.01}
		run := func() []bool {
			src := sample.New(seed)
			sv, err := New(cfg, src)
			if err != nil {
				return nil
			}
			qsrc := sample.New(seed + 1)
			var out []bool
			for !sv.Halted() {
				top, err := sv.Query(qsrc.Float64() * 0.4)
				if err != nil {
					return nil
				}
				out = append(out, top)
			}
			return out
		}
		a, b := run(), run()
		if a == nil || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
