// Package sparse implements the online sparse vector algorithm SV of paper
// §3.1 (Theorem 3.1, Figure 2's ThresholdGame server side).
//
// SV receives an online stream of up to k sensitive queries and answers
// each with a bit in {⊤, ⊥}. Its contract (Theorem 3.1):
//
//  1. SV is (ε, δ)-differentially private;
//  2. SV halts once T queries have been answered ⊤;
//  3. with probability ≥ 1−β, every query with q(D) ≥ α is answered ⊤ and
//     every query with q(D) ≤ α/2 is answered ⊥, provided n is large enough
//     (n ≳ S·√(T·log(1/δ))·log(k/β)/(εα)).
//
// The implementation is the textbook AboveThreshold construction (Dwork &
// Roth, Algorithmic Foundations of DP, §3.6), run as T sequential epochs:
// each epoch draws fresh threshold noise ρ ~ Lap(2Δ/ε₀) and compares each
// incoming query plus fresh noise ν ~ Lap(4Δ/ε₀) against the noisy
// threshold; the first crossing ends the epoch with a ⊤. Each epoch is
// (ε₀, 0)-DP, and ε₀ is set by the paper's budget-splitting schedule
// (mech.SplitBudget) so the T-fold adaptive composition is (ε, δ)-DP.
//
// The effective threshold is placed at 3α/4, the midpoint of the decision
// gap (α/2, α), so the accuracy condition holds as soon as all noise
// magnitudes stay below α/4.
package sparse

import (
	"fmt"
	"math"

	"repro/internal/mech"
	"repro/internal/sample"
)

// Config parameterizes SV (matching SV(T, k, α, ε, δ) in the paper).
type Config struct {
	// T is the maximum number of ⊤ answers before SV halts.
	T int
	// K is the maximum number of queries SV will consider.
	K int
	// Alpha is the decision threshold: answers should be ⊤ above α and ⊥
	// below α/2.
	Alpha float64
	// Eps, Delta is the total privacy budget of the whole run.
	Eps, Delta float64
	// Sensitivity is the L1 sensitivity Δ of every incoming query; the
	// paper uses Δ = 3S/n.
	Sensitivity float64
	// PureDP switches to basic composition across the T epochs (per-epoch
	// budget ε/T), allowing Delta = 0 at the cost of √T-worse per-epoch
	// noise. The paper's variant uses strong composition (PureDP = false).
	PureDP bool
}

// SV is one run of the online sparse vector algorithm. Not safe for
// concurrent use.
type SV struct {
	cfg         Config
	src         *sample.Source
	epsEpoch    float64
	noisyThresh float64 // current epoch's noisy threshold
	tops        int
	seen        int
	halted      bool
}

// ErrHalted is returned by Query after the T-th ⊤ or the k-th query.
var ErrHalted = fmt.Errorf("sparse: SV has halted")

// New validates the configuration and starts an SV run.
func New(cfg Config, src *sample.Source) (*SV, error) {
	if cfg.T < 1 {
		return nil, fmt.Errorf("sparse: T %d must be ≥ 1", cfg.T)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("sparse: K %d must be ≥ 1", cfg.K)
	}
	if cfg.Alpha <= 0 {
		return nil, fmt.Errorf("sparse: alpha %v must be positive", cfg.Alpha)
	}
	if cfg.Sensitivity <= 0 {
		return nil, fmt.Errorf("sparse: sensitivity %v must be positive", cfg.Sensitivity)
	}
	if err := (mech.Params{Eps: cfg.Eps, Delta: cfg.Delta}).Validate(); err != nil {
		return nil, err
	}
	var eps0 float64
	if cfg.PureDP {
		eps0 = cfg.Eps / float64(cfg.T)
	} else {
		if cfg.Delta == 0 {
			return nil, fmt.Errorf("sparse: delta must be positive (advanced composition); set PureDP for delta = 0")
		}
		var err error
		eps0, _, err = mech.SplitBudget(cfg.Eps, cfg.Delta, cfg.T)
		if err != nil {
			return nil, err
		}
	}
	sv := &SV{cfg: cfg, src: src, epsEpoch: eps0}
	sv.refreshThreshold()
	return sv, nil
}

// refreshThreshold draws the new epoch's noisy threshold: 3α/4 + Lap(2Δ/ε₀).
func (sv *SV) refreshThreshold() {
	sv.noisyThresh = 0.75*sv.cfg.Alpha + sv.src.Laplace(2*sv.cfg.Sensitivity/sv.epsEpoch)
}

// Query consumes the true value q(D) of the next query (the caller computes
// it; SV owns all noise) and returns true for ⊤, false for ⊥. After SV has
// halted it returns ErrHalted; callers of the PMW algorithm treat that as
// the global stop signal.
func (sv *SV) Query(value float64) (bool, error) {
	if sv.halted {
		return false, ErrHalted
	}
	sv.seen++
	nu := sv.src.Laplace(4 * sv.cfg.Sensitivity / sv.epsEpoch)
	top := value+nu >= sv.noisyThresh
	if top {
		sv.tops++
		if sv.tops >= sv.cfg.T {
			sv.halted = true
		} else {
			sv.refreshThreshold()
		}
	}
	if sv.seen >= sv.cfg.K && !sv.halted {
		sv.halted = true
	}
	return top, nil
}

// Export is a serializable snapshot of an SV run: the epoch counters, the
// current epoch's already-drawn noisy threshold, and the position of the
// noise stream. The Config is not part of the snapshot — the owner re-derives
// it from its own restored configuration — so FromExport can verify the two
// agree instead of trusting the file.
type Export struct {
	Tops        int          `json:"tops"`
	Seen        int          `json:"seen"`
	Halted      bool         `json:"halted"`
	NoisyThresh float64      `json:"noisy_thresh"`
	Src         sample.State `json:"src"`
}

// Export snapshots the run. Restoring with FromExport under the same Config
// continues the ⊥/⊤ stream bit-identically: the pending threshold is carried
// over verbatim and future noise replays from the recorded stream position.
func (sv *SV) Export() Export {
	return Export{
		Tops:        sv.tops,
		Seen:        sv.seen,
		Halted:      sv.halted,
		NoisyThresh: sv.noisyThresh,
		Src:         sv.src.State(),
	}
}

// FromExport reconstructs an SV run mid-stream from a snapshot and the same
// Config the original run was created with.
func FromExport(cfg Config, ex Export) (*SV, error) {
	// New validates cfg and derives the per-epoch budget; its construction
	// draw on the throwaway source is discarded along with the source, and
	// the recorded pending threshold + stream position take over.
	sv, err := New(cfg, sample.New(0))
	if err != nil {
		return nil, err
	}
	if ex.Tops < 0 || ex.Tops > cfg.T {
		return nil, fmt.Errorf("sparse: snapshot tops %d outside [0, %d]", ex.Tops, cfg.T)
	}
	if ex.Seen < 0 || ex.Seen > cfg.K {
		return nil, fmt.Errorf("sparse: snapshot seen %d outside [0, %d]", ex.Seen, cfg.K)
	}
	if math.IsNaN(ex.NoisyThresh) || math.IsInf(ex.NoisyThresh, 0) {
		return nil, fmt.Errorf("sparse: snapshot threshold %v is not finite", ex.NoisyThresh)
	}
	if !ex.Halted && (ex.Tops >= cfg.T || ex.Seen >= cfg.K) {
		return nil, fmt.Errorf("sparse: snapshot says live but counters (%d tops, %d seen) exhaust (T=%d, K=%d)", ex.Tops, ex.Seen, cfg.T, cfg.K)
	}
	src, err := sample.FromState(ex.Src)
	if err != nil {
		return nil, err
	}
	sv.src = src
	sv.noisyThresh = ex.NoisyThresh
	sv.tops = ex.Tops
	sv.seen = ex.Seen
	sv.halted = ex.Halted
	return sv, nil
}

// Halted reports whether SV has stopped (T tops reached or k queries seen).
func (sv *SV) Halted() bool { return sv.halted }

// Tops returns the number of ⊤ answers so far.
func (sv *SV) Tops() int { return sv.tops }

// Seen returns the number of queries consumed so far.
func (sv *SV) Seen() int { return sv.seen }

// Privacy returns the total (ε, δ) guarantee of the run.
func (sv *SV) Privacy() mech.Params {
	return mech.Params{Eps: sv.cfg.Eps, Delta: sv.cfg.Delta}
}

// MinDatasetSize returns the sample-size requirement of Theorem 3.1 for the
// given scale parameter S (with Δ = 3S/n the theorem reads
// n ≥ 256·S·√(T·log(2/δ)·log(4k/β)) / (ε·α)); experiments use it to choose
// n so that SV's accuracy guarantee is in force.
func MinDatasetSize(s float64, cfg Config, beta float64) int {
	if beta <= 0 || beta >= 1 {
		beta = 0.05
	}
	t := float64(cfg.T)
	k := float64(cfg.K)
	n := 256 * s * math.Sqrt(t*math.Log(2/cfg.Delta)*math.Log(4*k/beta)) / (cfg.Eps * cfg.Alpha)
	return int(n) + 1
}
