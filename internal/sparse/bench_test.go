package sparse

import (
	"testing"

	"repro/internal/sample"
)

// BenchmarkQuery measures one sparse-vector decision (one per analyst
// query in the online algorithm).
func BenchmarkQuery(b *testing.B) {
	src := sample.New(1)
	cfg := Config{T: 1 << 20, K: 1 << 30, Alpha: 0.2, Eps: 1, Delta: 1e-6, Sensitivity: 1e-6}
	sv, err := New(cfg, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sv.Query(0.01); err != nil {
			b.Fatal(err)
		}
	}
}
