package sparse

import (
	"encoding/json"
	"testing"

	"repro/internal/sample"
)

// TestExportRoundTrip snapshots an SV mid-stream and checks the restored
// run answers an identical remaining stream — the ⊥/⊤ sequence, counters,
// and halt point all match the uninterrupted run bitwise.
func TestExportRoundTrip(t *testing.T) {
	cfg := Config{T: 5, K: 60, Alpha: 0.2, Eps: 1, Delta: 1e-6, Sensitivity: 0.01}
	ref, err := New(cfg, sample.New(11))
	if err != nil {
		t.Fatal(err)
	}
	cut, err := New(cfg, sample.New(11))
	if err != nil {
		t.Fatal(err)
	}
	vals := func(i int) float64 {
		// A stream straddling the 3α/4 threshold so both answers occur.
		if i%4 == 0 {
			return 0.19
		}
		return 0.05
	}
	const splitAt = 17
	for i := 0; i < splitAt; i++ {
		a, err1 := ref.Query(vals(i))
		b, err2 := cut.Query(vals(i))
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("prefix diverged at %d: %v/%v %v/%v", i, a, err1, b, err2)
		}
	}

	raw, err := json.Marshal(cut.Export())
	if err != nil {
		t.Fatal(err)
	}
	var ex Export
	if err := json.Unmarshal(raw, &ex); err != nil {
		t.Fatal(err)
	}
	restored, err := FromExport(cfg, ex)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Tops() != ref.Tops() || restored.Seen() != ref.Seen() || restored.Halted() != ref.Halted() {
		t.Fatalf("restored counters %d/%d/%v != %d/%d/%v",
			restored.Tops(), restored.Seen(), restored.Halted(), ref.Tops(), ref.Seen(), ref.Halted())
	}
	for i := splitAt; ; i++ {
		a, err1 := ref.Query(vals(i))
		b, err2 := restored.Query(vals(i))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("query %d: error mismatch %v vs %v", i, err1, err2)
		}
		if err1 != nil {
			if err1 != ErrHalted || err2 != ErrHalted {
				t.Fatalf("query %d: unexpected errors %v / %v", i, err1, err2)
			}
			break
		}
		if a != b {
			t.Fatalf("query %d: restored answered %v, uninterrupted %v", i, b, a)
		}
	}
}

// TestFromExportValidation checks inconsistent snapshots are rejected.
func TestFromExportValidation(t *testing.T) {
	cfg := Config{T: 3, K: 10, Alpha: 0.2, Eps: 1, Delta: 1e-6, Sensitivity: 0.01}
	src := sample.New(3).State()
	cases := map[string]Export{
		"tops over T":          {Tops: 4, Seen: 5, Halted: true, Src: src},
		"seen over K":          {Tops: 1, Seen: 11, Halted: true, Src: src},
		"negative tops":        {Tops: -1, Src: src},
		"live but exhausted":   {Tops: 3, Seen: 3, Halted: false, Src: src},
		"non-finite threshold": {Tops: 1, Seen: 1, NoisyThresh: nan(), Src: src},
	}
	for name, ex := range cases {
		if _, err := FromExport(cfg, ex); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := FromExport(Config{}, Export{Src: src}); err == nil {
		t.Error("invalid config accepted")
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}
