package sparse

import (
	"testing"

	"repro/internal/sample"
)

func TestPureDPAllowsZeroDelta(t *testing.T) {
	cfg := Config{T: 3, K: 100, Alpha: 0.2, Eps: 1, Delta: 0, Sensitivity: 1e-5, PureDP: true}
	sv, err := New(cfg, sample.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Behaves like SV: clear tops answer ⊤.
	top, err := sv.Query(10 * cfg.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	if !top {
		t.Error("clear top answered ⊥ under pure DP")
	}
	// Without PureDP, delta = 0 is still rejected.
	cfg.PureDP = false
	if _, err := New(cfg, sample.New(1)); err == nil {
		t.Error("delta=0 accepted without PureDP")
	}
}

// Pure DP splits the budget as ε/T per epoch vs strong composition's
// ε/√(8T·ln(2/δ)): for T beyond the crossover (≈ 8·ln(2/δ) ≈ 120), the
// pure split is smaller, so its noise is larger and the error rate near
// the threshold higher.
func TestPureDPNoisierThanApprox(t *testing.T) {
	base := Config{T: 500, K: 5000, Alpha: 0.2, Eps: 0.5, Sensitivity: 0.002}
	mistakes := func(cfg Config) int {
		var wrong int
		for r := 0; r < 150; r++ {
			src := sample.New(int64(1000 + r))
			sv, err := New(cfg, src)
			if err != nil {
				t.Fatal(err)
			}
			for q := 0; q < 10 && !sv.Halted(); q++ {
				top, err := sv.Query(cfg.Alpha * 0.3) // clear ⊥
				if err != nil {
					t.Fatal(err)
				}
				if top {
					wrong++
				}
			}
		}
		return wrong
	}
	pure := base
	pure.PureDP = true
	pure.Delta = 0
	approx := base
	approx.Delta = 1e-6
	mp, ma := mistakes(pure), mistakes(approx)
	if mp <= ma {
		t.Errorf("pure DP (%d mistakes) not noisier than approx DP (%d)", mp, ma)
	}
}
