package sparse

import (
	"math"
	"testing"

	"repro/internal/sample"
)

func TestNewNumericValidation(t *testing.T) {
	if _, err := NewNumeric(validConfig(), nil); err == nil {
		t.Error("nil source accepted")
	}
	cfg := validConfig()
	cfg.T = 0
	if _, err := NewNumeric(cfg, sample.New(1)); err == nil {
		t.Error("T=0 accepted")
	}
}

func TestNumericReleasesOnTop(t *testing.T) {
	cfg := Config{T: 3, K: 100, Alpha: 0.2, Eps: 1, Delta: 1e-6, Sensitivity: 0.0001}
	n, err := NewNumeric(cfg, sample.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Below threshold: no release.
	top, noisy, err := n.Query(0.01, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if top || noisy != 0 {
		t.Fatalf("bottom query released: top=%v noisy=%v", top, noisy)
	}
	// Above threshold: release close to the passed release value.
	top, noisy, err = n.Query(10*cfg.Alpha, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if !top {
		t.Fatal("clear top answered bottom")
	}
	if math.Abs(noisy-0.7) > 0.05 {
		t.Errorf("released %v, want ≈0.7 (tiny sensitivity)", noisy)
	}
	if n.Tops() != 1 || n.Seen() != 2 {
		t.Errorf("Tops/Seen = %d/%d", n.Tops(), n.Seen())
	}
}

func TestNumericReleaseNoiseScalesWithSensitivity(t *testing.T) {
	spread := func(sens float64) float64 {
		cfg := Config{T: 200, K: 10000, Alpha: 0.2, Eps: 1, Delta: 1e-6, Sensitivity: sens}
		n, err := NewNumeric(cfg, sample.New(3))
		if err != nil {
			t.Fatal(err)
		}
		var sumSq float64
		var count int
		for count < 100 {
			top, noisy, err := n.Query(10*cfg.Alpha, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			if top {
				sumSq += (noisy - 0.5) * (noisy - 0.5)
				count++
			}
		}
		return math.Sqrt(sumSq / float64(count))
	}
	small := spread(0.0001)
	big := spread(0.01)
	if big < 10*small {
		t.Errorf("release noise did not scale with sensitivity: %v vs %v", small, big)
	}
}

func TestNumericHalts(t *testing.T) {
	cfg := Config{T: 2, K: 100, Alpha: 0.2, Eps: 1, Delta: 1e-6, Sensitivity: 0.0001}
	n, err := NewNumeric(cfg, sample.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := n.Query(10*cfg.Alpha, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if !n.Halted() {
		t.Fatal("not halted after T tops")
	}
	if _, _, err := n.Query(10*cfg.Alpha, 0.5); err != ErrHalted {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
}
