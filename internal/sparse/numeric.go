package sparse

import (
	"fmt"

	"repro/internal/mech"
	"repro/internal/sample"
)

// NumericSV is the numeric variant of the online sparse vector algorithm
// (Dwork & Roth, "NumericSparse"): like SV it answers a stream of sensitive
// queries with ⊤/⊥, but each ⊤ additionally releases a fresh Laplace
// estimate of the query's value. Hardt–Rothblum's original online PMW for
// linear queries is built on exactly this primitive: the noisy value both
// answers the analyst and drives the multiplicative-weights update.
//
// The budget is split evenly between the threshold side (an SV run at
// ε/2, δ/2) and the T numeric releases (ε/2, δ/2 via the strong-composition
// schedule).
type NumericSV struct {
	sv       *SV
	src      *sample.Source
	epsValue float64 // per-release Laplace budget
	sens     float64
}

// NewNumeric starts a numeric sparse vector run with the given total
// budget. cfg.Sensitivity bounds both the threshold queries and the
// released values.
func NewNumeric(cfg Config, src *sample.Source) (*NumericSV, error) {
	if src == nil {
		return nil, fmt.Errorf("sparse: nil source")
	}
	half := cfg
	half.Eps = cfg.Eps / 2
	half.Delta = cfg.Delta / 2
	sv, err := New(half, src.Split())
	if err != nil {
		return nil, err
	}
	epsValue, _, err := mech.SplitBudget(cfg.Eps/2, cfg.Delta/2, cfg.T)
	if err != nil {
		return nil, err
	}
	return &NumericSV{sv: sv, src: src, epsValue: epsValue, sens: cfg.Sensitivity}, nil
}

// Query consumes the true threshold-query value and, on ⊤, releases a fresh
// (ε₀, 0)-DP Laplace estimate of `release` (which must have the same
// sensitivity bound as the threshold query; online PMW passes the query's
// true answer here while thresholding on the hypothesis discrepancy). On ⊥
// it returns (false, 0).
func (n *NumericSV) Query(value, release float64) (top bool, noisy float64, err error) {
	top, err = n.sv.Query(value)
	if err != nil {
		return false, 0, err
	}
	if !top {
		return false, 0, nil
	}
	noisy, err = mech.Laplace(n.src, release, n.sens, n.epsValue)
	if err != nil {
		return false, 0, err
	}
	return true, noisy, nil
}

// ReleaseEps returns the per-release Laplace budget ε₀ — each ⊤ answer's
// numeric release is (ε₀, 0)-DP, which budget ledgers record as a pure-DP
// spend.
func (n *NumericSV) ReleaseEps() float64 { return n.epsValue }

// Halted reports whether the underlying SV has stopped.
func (n *NumericSV) Halted() bool { return n.sv.Halted() }

// Tops returns the number of ⊤ answers so far.
func (n *NumericSV) Tops() int { return n.sv.Tops() }

// Seen returns the number of queries consumed.
func (n *NumericSV) Seen() int { return n.sv.Seen() }
