package sparse

import (
	"math"
	"testing"

	"repro/internal/sample"
)

func validConfig() Config {
	return Config{T: 3, K: 100, Alpha: 0.2, Eps: 1, Delta: 1e-6, Sensitivity: 0.001}
}

func TestNewValidation(t *testing.T) {
	src := sample.New(1)
	mutations := []func(*Config){
		func(c *Config) { c.T = 0 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Eps = 0 },
		func(c *Config) { c.Delta = 0 },
		func(c *Config) { c.Delta = 1 },
		func(c *Config) { c.Sensitivity = 0 },
	}
	for i, m := range mutations {
		cfg := validConfig()
		m(&cfg)
		if _, err := New(cfg, src); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := New(validConfig(), src); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestHaltsAfterTTops(t *testing.T) {
	src := sample.New(2)
	cfg := validConfig()
	sv, err := New(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	// Feed values far above the threshold: every answer should be ⊤ (noise
	// is tiny relative to the margin) and SV must halt after exactly T.
	var tops int
	for i := 0; i < cfg.T; i++ {
		if sv.Halted() {
			t.Fatalf("halted early after %d tops", tops)
		}
		top, err := sv.Query(10 * cfg.Alpha)
		if err != nil {
			t.Fatal(err)
		}
		if top {
			tops++
		}
	}
	if tops != cfg.T {
		t.Fatalf("tops = %d, want %d", tops, cfg.T)
	}
	if !sv.Halted() {
		t.Fatal("not halted after T tops")
	}
	if _, err := sv.Query(10 * cfg.Alpha); err != ErrHalted {
		t.Fatalf("query after halt: err = %v, want ErrHalted", err)
	}
	if sv.Tops() != cfg.T || sv.Seen() != cfg.T {
		t.Errorf("Tops/Seen = %d/%d", sv.Tops(), sv.Seen())
	}
}

func TestHaltsAfterKQueries(t *testing.T) {
	src := sample.New(3)
	cfg := validConfig()
	cfg.K = 5
	sv, err := New(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.K; i++ {
		if _, err := sv.Query(0); err != nil { // far below threshold
			t.Fatal(err)
		}
	}
	if !sv.Halted() {
		t.Fatal("not halted after K queries")
	}
	if _, err := sv.Query(0); err != ErrHalted {
		t.Fatal("expected ErrHalted")
	}
}

// Theorem 3.1's accuracy contract: with the noise scales used, queries at
// ≥ α answer ⊤ and queries at ≤ α/2 answer ⊥ with high probability, when
// the sensitivity is small enough (i.e. n large enough).
func TestAccuracyContract(t *testing.T) {
	cfg := Config{T: 5, K: 2000, Alpha: 0.2, Eps: 1, Delta: 1e-6, Sensitivity: 0.0001}
	runs := 200
	var wrongTop, wrongBottom, totalTop, totalBottom int
	for r := 0; r < runs; r++ {
		src := sample.New(int64(100 + r))
		sv, err := New(cfg, src)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 50 && !sv.Halted(); q++ {
			// Alternate far-below and occasionally above threshold.
			var value float64
			above := q%10 == 9
			if above {
				value = cfg.Alpha * 1.2
			} else {
				value = cfg.Alpha * 0.3
			}
			top, err := sv.Query(value)
			if err != nil {
				t.Fatal(err)
			}
			if above {
				totalTop++
				if !top {
					wrongTop++
				}
			} else {
				totalBottom++
				if top {
					wrongBottom++
				}
			}
		}
	}
	if rate := float64(wrongTop) / float64(totalTop); rate > 0.02 {
		t.Errorf("above-threshold miss rate = %v", rate)
	}
	if rate := float64(wrongBottom) / float64(totalBottom); rate > 0.02 {
		t.Errorf("below-threshold false-positive rate = %v", rate)
	}
}

// With large sensitivity (small n), the contract must degrade — this guards
// against the test above passing vacuously (e.g. if noise were ignored).
func TestAccuracyDegradesWithSensitivity(t *testing.T) {
	cfg := Config{T: 5, K: 2000, Alpha: 0.2, Eps: 1, Delta: 1e-6, Sensitivity: 0.05}
	var mistakes, total int
	for r := 0; r < 100; r++ {
		src := sample.New(int64(500 + r))
		sv, err := New(cfg, src)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 20 && !sv.Halted(); q++ {
			top, err := sv.Query(cfg.Alpha * 0.3) // should be ⊥
			if err != nil {
				t.Fatal(err)
			}
			total++
			if top {
				mistakes++
			}
		}
	}
	if mistakes == 0 {
		t.Errorf("no mistakes over %d noisy queries at huge sensitivity — noise seems unused", total)
	}
}

// Privacy smoke test: the sequence of answers on adjacent inputs (query
// streams differing by the sensitivity) should have similar distributions.
// We check the probability of "first answer is ⊤" for borderline queries.
func TestAnswerDistributionStableUnderAdjacency(t *testing.T) {
	cfg := Config{T: 1, K: 1, Alpha: 0.2, Eps: 0.5, Delta: 1e-6, Sensitivity: 0.01}
	n := 40000
	count := func(value float64, seedBase int64) int {
		tops := 0
		for i := 0; i < n; i++ {
			src := sample.New(seedBase + int64(i))
			sv, err := New(cfg, src)
			if err != nil {
				t.Fatal(err)
			}
			top, err := sv.Query(value)
			if err != nil {
				t.Fatal(err)
			}
			if top {
				tops++
			}
		}
		return tops
	}
	// Borderline value: exactly at the effective threshold 3α/4.
	v := 0.75 * cfg.Alpha
	p0 := float64(count(v, 1_000_000)) / float64(n)
	p1 := float64(count(v+cfg.Sensitivity, 2_000_000)) / float64(n)
	// For an (ε,δ)-DP bit with these parameters the ratio is bounded by
	// e^{ε₀·...}; we assert a loose multiplicative bound that a broken
	// (noiseless) implementation would violate wildly (it would give 0/1).
	if p0 == 0 || p1 == 0 || p0 == 1 || p1 == 1 {
		t.Fatalf("degenerate probabilities p0=%v p1=%v — mechanism looks deterministic", p0, p1)
	}
	ratio := p1 / p0
	if ratio > math.Exp(cfg.Eps)*1.3 || ratio < math.Exp(-cfg.Eps)/1.3 {
		t.Errorf("adjacent-input top rates differ too much: p0=%v p1=%v", p0, p1)
	}
}

func TestMinDatasetSizeShape(t *testing.T) {
	cfg := validConfig()
	n1 := MinDatasetSize(1, cfg, 0.05)
	if n1 <= 0 {
		t.Fatalf("n = %d", n1)
	}
	// Doubling T multiplies n by ~√2.
	cfg2 := cfg
	cfg2.T = 4 * cfg.T
	n2 := MinDatasetSize(1, cfg2, 0.05)
	ratio := float64(n2) / float64(n1)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("n scaling with 4×T = %v, want ~2", ratio)
	}
	// Halving alpha doubles n.
	cfg3 := cfg
	cfg3.Alpha = cfg.Alpha / 2
	n3 := MinDatasetSize(1, cfg3, 0.05)
	ratio = float64(n3) / float64(n1)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("n scaling with α/2 = %v, want ~2", ratio)
	}
	// Invalid beta falls back rather than exploding.
	if got := MinDatasetSize(1, cfg, -1); got <= 0 {
		t.Errorf("fallback beta n = %d", got)
	}
}

func TestPrivacyAccessor(t *testing.T) {
	src := sample.New(4)
	sv, err := New(validConfig(), src)
	if err != nil {
		t.Fatal(err)
	}
	p := sv.Privacy()
	if p.Eps != 1 || p.Delta != 1e-6 {
		t.Errorf("Privacy = %+v", p)
	}
}
