// Inlined four-lane exponential for the hot softmax kernels.
//
// The histogram-materialization loop (ExpShiftedSum) spends nearly all its
// time in math.Exp, and the released values of fixed-seed runs are pinned
// bit-for-bit by golden tests — so a faster exponential is only usable if
// it reproduces math.Exp exactly. This file carries a pure-Go translation
// of the Go runtime's amd64 exp kernel (a simplified form of the SLEEF
// scalar method of Naoki Shibata, "Efficient evaluation methods of
// elementary functions suitable for SIMD computation", ISC'10), in both
// its plain-SSE and FMA variants, restricted to arguments where the kernel
// has no overflow/denormal branches.
//
// At package init the two variants are probed against math.Exp over a
// dense deterministic grid; a variant is installed only if it matches
// bit-for-bit on every probe. On platforms (or future Go versions) where
// neither matches, exp4 stays nil and callers fall back to math.Exp —
// slower, but always exactly the library function.
package vecmath

import "math"

const (
	expLog2e = 1.4426950408889634073599246810018920                  // 1/ln 2
	expLn2u  = 0.69314718055966295651160180568695068359375           // upper half of ln 2
	expLn2l  = 0.28235290563031577122588448175013436025525412068e-12 // lower half of ln 2

	// Taylor coefficients of the reduced-argument series.
	expC2 = 0.5
	expC3 = 1.6666666666666666667e-1
	expC4 = 4.1666666666666666667e-2
	expC5 = 8.3333333333333333333e-3
	expC6 = 1.3888888888888888889e-3
	expC7 = 1.9841269841269841270e-4
	expC8 = 2.4801587301587301587e-5

	// expFastLo/Hi bound the arguments the inlined kernel accepts:
	// comfortably inside the overflow threshold (709.78) and above the
	// region where 2^k leaves the normal range (≈ −709.09), so the
	// translation needs none of the denormal/overflow branches. NaN fails
	// both comparisons and routes to the fallback.
	expFastLo = -708.0
	expFastHi = 709.0
)

// exp4 evaluates exp on four arguments, each inside (expFastLo, expFastHi),
// bit-identically to math.Exp. It is nil when no verified kernel exists on
// this platform; callers must then use math.Exp.
var exp4 func(x0, x1, x2, x3 float64) (float64, float64, float64, float64)

func init() {
	for _, cand := range expKernelCandidates() {
		if expProbe(cand) {
			exp4 = cand
			break
		}
	}
}

// expProbe reports whether f agrees bit-for-bit with math.Exp on a dense
// deterministic grid over the fast-path domain plus exact and small-
// magnitude probes. A kernel is installed only on a perfect score.
func expProbe(f func(x0, x1, x2, x3 float64) (float64, float64, float64, float64)) bool {
	check := func(x float64) bool {
		got, _, _, _ := f(x, x, x, x)
		return math.Float64bits(got) == math.Float64bits(math.Exp(x))
	}
	// Exact and structurally interesting points.
	for _, x := range []float64{0, 1, -1, math.Ln2, -math.Ln2, 0.5, -0.5,
		expFastLo, expFastHi, -707.999, 708.999, 1e-30, -1e-30, 1e-300, -1e-300} {
		if !check(x) {
			return false
		}
	}
	// Dense grid across the domain (irrational step to avoid hitting only
	// round numbers) and a fine grid across the softmax-typical range.
	for i := 0; i < 8192; i++ {
		if !check(expFastLo + (expFastHi-expFastLo)*float64(i)/8191.0*0.9999) {
			return false
		}
	}
	for i := 0; i < 8192; i++ {
		if !check(-50 * float64(i) / 8191.0) {
			return false
		}
	}
	return true
}

// expFMA4 is the FMA variant (matches math.Exp on amd64 CPUs with AVX+FMA).
// The four lanes are independent, letting the CPU overlap their latency
// chains; math.FMA compiles to the hardware instruction where available
// and to an exact softfloat elsewhere, so the arithmetic is identical
// either way.
func expFMA4(x0, x1, x2, x3 float64) (y0, y1, y2, y3 float64) {
	k0 := int32(math.RoundToEven(expLog2e * x0))
	k1 := int32(math.RoundToEven(expLog2e * x1))
	k2 := int32(math.RoundToEven(expLog2e * x2))
	k3 := int32(math.RoundToEven(expLog2e * x3))
	kf0, kf1, kf2, kf3 := float64(k0), float64(k1), float64(k2), float64(k3)

	r0 := math.FMA(-kf0, expLn2u, x0)
	r1 := math.FMA(-kf1, expLn2u, x1)
	r2 := math.FMA(-kf2, expLn2u, x2)
	r3 := math.FMA(-kf3, expLn2u, x3)
	r0 = math.FMA(-kf0, expLn2l, r0) * 0.0625
	r1 = math.FMA(-kf1, expLn2l, r1) * 0.0625
	r2 = math.FMA(-kf2, expLn2l, r2) * 0.0625
	r3 = math.FMA(-kf3, expLn2l, r3) * 0.0625

	p0 := math.FMA(expC8, r0, expC7)
	p1 := math.FMA(expC8, r1, expC7)
	p2 := math.FMA(expC8, r2, expC7)
	p3 := math.FMA(expC8, r3, expC7)
	p0 = math.FMA(p0, r0, expC6)
	p1 = math.FMA(p1, r1, expC6)
	p2 = math.FMA(p2, r2, expC6)
	p3 = math.FMA(p3, r3, expC6)
	p0 = math.FMA(p0, r0, expC5)
	p1 = math.FMA(p1, r1, expC5)
	p2 = math.FMA(p2, r2, expC5)
	p3 = math.FMA(p3, r3, expC5)
	p0 = math.FMA(p0, r0, expC4)
	p1 = math.FMA(p1, r1, expC4)
	p2 = math.FMA(p2, r2, expC4)
	p3 = math.FMA(p3, r3, expC4)
	p0 = math.FMA(p0, r0, expC3)
	p1 = math.FMA(p1, r1, expC3)
	p2 = math.FMA(p2, r2, expC3)
	p3 = math.FMA(p3, r3, expC3)
	p0 = math.FMA(p0, r0, expC2)
	p1 = math.FMA(p1, r1, expC2)
	p2 = math.FMA(p2, r2, expC2)
	p3 = math.FMA(p3, r3, expC2)
	p0 = math.FMA(p0, r0, 1)
	p1 = math.FMA(p1, r1, 1)
	p2 = math.FMA(p2, r2, 1)
	p3 = math.FMA(p3, r3, 1)

	r0 *= p0
	r1 *= p1
	r2 *= p2
	r3 *= p3
	r0 = r0 * (2 + r0)
	r1 = r1 * (2 + r1)
	r2 = r2 * (2 + r2)
	r3 = r3 * (2 + r3)
	r0 = r0 * (2 + r0)
	r1 = r1 * (2 + r1)
	r2 = r2 * (2 + r2)
	r3 = r3 * (2 + r3)
	r0 = r0 * (2 + r0)
	r1 = r1 * (2 + r1)
	r2 = r2 * (2 + r2)
	r3 = r3 * (2 + r3)
	r0 = math.FMA(r0, 2+r0, 1)
	r1 = math.FMA(r1, 2+r1, 1)
	r2 = math.FMA(r2, 2+r2, 1)
	r3 = math.FMA(r3, 2+r3, 1)

	y0 = r0 * math.Float64frombits(uint64(k0+1023)<<52)
	y1 = r1 * math.Float64frombits(uint64(k1+1023)<<52)
	y2 = r2 * math.Float64frombits(uint64(k2+1023)<<52)
	y3 = r3 * math.Float64frombits(uint64(k3+1023)<<52)
	return
}

// expSSE4 is the plain-SSE variant (matches math.Exp on amd64 CPUs without
// AVX+FMA): every multiply and add rounds individually, exactly as the
// non-FMA assembly path does.
func expSSE4(x0, x1, x2, x3 float64) (y0, y1, y2, y3 float64) {
	k0 := int32(math.RoundToEven(expLog2e * x0))
	k1 := int32(math.RoundToEven(expLog2e * x1))
	k2 := int32(math.RoundToEven(expLog2e * x2))
	k3 := int32(math.RoundToEven(expLog2e * x3))
	kf0, kf1, kf2, kf3 := float64(k0), float64(k1), float64(k2), float64(k3)

	r0 := x0 - kf0*expLn2u
	r1 := x1 - kf1*expLn2u
	r2 := x2 - kf2*expLn2u
	r3 := x3 - kf3*expLn2u
	r0 = (r0 - kf0*expLn2l) * 0.0625
	r1 = (r1 - kf1*expLn2l) * 0.0625
	r2 = (r2 - kf2*expLn2l) * 0.0625
	r3 = (r3 - kf3*expLn2l) * 0.0625

	p0 := expC8*r0 + expC7
	p1 := expC8*r1 + expC7
	p2 := expC8*r2 + expC7
	p3 := expC8*r3 + expC7
	p0 = p0*r0 + expC6
	p1 = p1*r1 + expC6
	p2 = p2*r2 + expC6
	p3 = p3*r3 + expC6
	p0 = p0*r0 + expC5
	p1 = p1*r1 + expC5
	p2 = p2*r2 + expC5
	p3 = p3*r3 + expC5
	p0 = p0*r0 + expC4
	p1 = p1*r1 + expC4
	p2 = p2*r2 + expC4
	p3 = p3*r3 + expC4
	p0 = p0*r0 + expC3
	p1 = p1*r1 + expC3
	p2 = p2*r2 + expC3
	p3 = p3*r3 + expC3
	p0 = p0*r0 + expC2
	p1 = p1*r1 + expC2
	p2 = p2*r2 + expC2
	p3 = p3*r3 + expC2
	p0 = p0*r0 + 1
	p1 = p1*r1 + 1
	p2 = p2*r2 + 1
	p3 = p3*r3 + 1

	r0 *= p0
	r1 *= p1
	r2 *= p2
	r3 *= p3
	r0 = r0 * (2 + r0)
	r1 = r1 * (2 + r1)
	r2 = r2 * (2 + r2)
	r3 = r3 * (2 + r3)
	r0 = r0 * (2 + r0)
	r1 = r1 * (2 + r1)
	r2 = r2 * (2 + r2)
	r3 = r3 * (2 + r3)
	r0 = r0 * (2 + r0)
	r1 = r1 * (2 + r1)
	r2 = r2 * (2 + r2)
	r3 = r3 * (2 + r3)
	r0 = r0 * (2 + r0)
	r1 = r1 * (2 + r1)
	r2 = r2 * (2 + r2)
	r3 = r3 * (2 + r3)
	r0++
	r1++
	r2++
	r3++

	y0 = r0 * math.Float64frombits(uint64(k0+1023)<<52)
	y1 = r1 * math.Float64frombits(uint64(k1+1023)<<52)
	y2 = r2 * math.Float64frombits(uint64(k2+1023)<<52)
	y3 = r3 * math.Float64frombits(uint64(k3+1023)<<52)
	return
}
