package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if got := Norm2(v); !almostEq(got, 5, 1e-12) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm1(v); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := NormInf(v); got != 4 {
		t.Errorf("NormInf = %v, want 4", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %v, want 0", got)
	}
}

func TestNorm2Overflow(t *testing.T) {
	// Naive sum-of-squares overflows; scaled computation must not.
	v := []float64{1e200, 1e200}
	want := 1e200 * math.Sqrt2
	if got := Norm2(v); math.IsInf(got, 0) || !almostEq(got/want, 1, 1e-12) {
		t.Fatalf("Norm2 overflow-guard failed: got %v want %v", got, want)
	}
}

func TestDistances(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{4, 6}
	if got := Dist2(a, b); !almostEq(got, 5, 1e-12) {
		t.Errorf("Dist2 = %v, want 5", got)
	}
	if got := Dist1(a, b); got != 7 {
		t.Errorf("Dist1 = %v, want 7", got)
	}
}

func TestArithmetic(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	if got := Add(a, b); !ApproxEqual(got, []float64{4, 7}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); !ApproxEqual(got, []float64{2, 3}, 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(2, a); !ApproxEqual(got, []float64{2, 4}, 0) {
		t.Errorf("Scale = %v", got)
	}
	dst := Copy(a)
	AddScaled(dst, 10, b)
	if !ApproxEqual(dst, []float64{31, 52}, 0) {
		t.Errorf("AddScaled = %v", dst)
	}
	// Add must not alias its inputs.
	if &a[0] == &Add(a, b)[0] {
		t.Error("Add aliased input")
	}
}

func TestSumKahan(t *testing.T) {
	// 1 followed by 1e8 copies of 1e-8 sums to 2 with compensation.
	n := 100000
	v := make([]float64, n+1)
	v[0] = 1
	for i := 1; i <= n; i++ {
		v[i] = 1e-5
	}
	if got := Sum(v); !almostEq(got, 2, 1e-9) {
		t.Fatalf("Sum = %v, want 2", got)
	}
}

func TestMeanMaxMin(t *testing.T) {
	v := []float64{2, -1, 5, 3}
	if got := Mean(v); !almostEq(got, 2.25, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if m, i := Max(v); m != 5 || i != 2 {
		t.Errorf("Max = %v,%d", m, i)
	}
	if m, i := Min(v); m != -1 || i != 1 {
		t.Errorf("Min = %v,%d", m, i)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestMaxFirstOfTies(t *testing.T) {
	if _, i := Max([]float64{1, 3, 3}); i != 1 {
		t.Errorf("Max tie index = %d, want first occurrence 1", i)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 1, 1}, {-5, 0, 1, 0}, {0.5, 0, 1, 0.5},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	v := []float64{math.Log(1), math.Log(2), math.Log(3)}
	if got := LogSumExp(v); !almostEq(got, math.Log(6), 1e-12) {
		t.Errorf("LogSumExp = %v, want log 6", got)
	}
	// Large shifts must not overflow.
	v = []float64{1000, 1000}
	if got := LogSumExp(v); !almostEq(got, 1000+math.Log(2), 1e-9) {
		t.Errorf("LogSumExp big = %v", got)
	}
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(nil) = %v, want -Inf", got)
	}
	if got := LogSumExp([]float64{math.Inf(-1), math.Inf(-1)}); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(-Inf...) = %v, want -Inf", got)
	}
}

func TestSoftmax(t *testing.T) {
	got := Softmax(nil, []float64{0, 0, 0})
	want := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	if !ApproxEqual(got, want, 1e-12) {
		t.Errorf("Softmax uniform = %v", got)
	}
	// Shift invariance.
	a := []float64{1, 2, 3}
	b := []float64{101, 102, 103}
	if !ApproxEqual(Softmax(nil, a), Softmax(nil, b), 1e-12) {
		t.Error("Softmax not shift invariant")
	}
	if got := Sum(Softmax(nil, []float64{-3, 9, 0.4})); !almostEq(got, 1, 1e-12) {
		t.Errorf("Softmax does not normalize: sum=%v", got)
	}
}

func TestProjectL2Ball(t *testing.T) {
	inside := []float64{0.1, 0.2}
	if got := ProjectL2Ball(inside, 1); !ApproxEqual(got, inside, 0) {
		t.Errorf("interior point moved: %v", got)
	}
	out := ProjectL2Ball([]float64{3, 4}, 1)
	if !almostEq(Norm2(out), 1, 1e-12) {
		t.Errorf("projection norm = %v, want 1", Norm2(out))
	}
	if !ApproxEqual(out, []float64{0.6, 0.8}, 1e-12) {
		t.Errorf("projection direction wrong: %v", out)
	}
	if got := ProjectL2Ball([]float64{1, 1}, 0); !ApproxEqual(got, []float64{0, 0}, 0) {
		t.Errorf("r=0 projection = %v", got)
	}
}

func TestProjectBox(t *testing.T) {
	got := ProjectBox([]float64{-2, 0.5, 2}, 0, 1)
	if !ApproxEqual(got, []float64{0, 0.5, 1}, 0) {
		t.Errorf("ProjectBox = %v", got)
	}
}

func TestProjectSimplex(t *testing.T) {
	cases := [][]float64{
		{0.2, 0.3, 0.5},      // already on simplex
		{1, 0, 0},            // vertex
		{5, 0, 0},            // projects to vertex
		{-1, -1, -1},         // all negative -> uniform
		{0.5, 0.5, 0.5, 0.5}, // symmetric
	}
	for _, c := range cases {
		p := ProjectSimplex(c)
		if !almostEq(Sum(p), 1, 1e-9) {
			t.Errorf("ProjectSimplex(%v) sums to %v", c, Sum(p))
		}
		for _, v := range p {
			if v < 0 {
				t.Errorf("ProjectSimplex(%v) has negative entry %v", c, v)
			}
		}
	}
	// Fixed point: a simplex point projects to itself.
	p := ProjectSimplex([]float64{0.2, 0.3, 0.5})
	if !ApproxEqual(p, []float64{0.2, 0.3, 0.5}, 1e-9) {
		t.Errorf("simplex point moved: %v", p)
	}
	if got := ProjectSimplex(nil); got != nil {
		t.Errorf("ProjectSimplex(nil) = %v", got)
	}
}

// Property: the simplex projection is the nearest simplex point — it must be
// at least as close to the input as a bunch of random simplex points.
func TestProjectSimplexIsNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		d := 2 + rng.Intn(6)
		a := make([]float64, d)
		for i := range a {
			a[i] = rng.NormFloat64() * 2
		}
		p := ProjectSimplex(a)
		dp := Dist2(a, p)
		for probe := 0; probe < 20; probe++ {
			q := make([]float64, d)
			var s float64
			for i := range q {
				q[i] = rng.ExpFloat64()
				s += q[i]
			}
			for i := range q {
				q[i] /= s
			}
			if Dist2(a, q) < dp-1e-9 {
				t.Fatalf("found simplex point closer than projection: a=%v p=%v q=%v", a, p, q)
			}
		}
	}
}

// Property: projection onto the L2 ball is a contraction toward every ball
// point, and idempotent.
func TestProjectL2BallProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		a := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			a[i] = math.Mod(v, 100)
		}
		p := ProjectL2Ball(a, 1)
		if Norm2(p) > 1+1e-9 {
			return false
		}
		pp := ProjectL2Ball(p, 1)
		return ApproxEqual(p, pp, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLogSumExpMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(10)
		a := make([]float64, n)
		var naive float64
		for i := range a {
			a[i] = rng.NormFloat64() * 3
			naive += math.Exp(a[i])
		}
		if got := LogSumExp(a); !almostEq(got, math.Log(naive), 1e-9) {
			t.Fatalf("LogSumExp mismatch: got %v want %v (a=%v)", got, math.Log(naive), a)
		}
	}
}

func TestFillZerosCopy(t *testing.T) {
	z := Zeros(3)
	if !ApproxEqual(z, []float64{0, 0, 0}, 0) {
		t.Errorf("Zeros = %v", z)
	}
	Fill(z, 2)
	if !ApproxEqual(z, []float64{2, 2, 2}, 0) {
		t.Errorf("Fill = %v", z)
	}
	c := Copy(z)
	c[0] = 99
	if z[0] != 2 {
		t.Error("Copy aliased input")
	}
}

func TestScaleInPlaceAndAddConst(t *testing.T) {
	a := []float64{1, -2, 3}
	ScaleInPlace(a, 2)
	if a[0] != 2 || a[1] != -4 || a[2] != 6 {
		t.Errorf("ScaleInPlace = %v", a)
	}
	AddConst(a, -1)
	if a[0] != 1 || a[1] != -5 || a[2] != 5 {
		t.Errorf("AddConst = %v", a)
	}
}

func TestExpShiftedSumMatchesSoftmax(t *testing.T) {
	a := []float64{0.5, -1.25, 3, 0, -7}
	m, _ := Max(a)
	dst := make([]float64, len(a))
	z := ExpShiftedSum(dst, a, m)
	ScaleInPlace(dst, 1/z)
	want := Softmax(nil, a)
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-15 {
			t.Errorf("fused softmax[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestAddScaledMax(t *testing.T) {
	dst := []float64{1, 2, 3}
	a := []float64{10, -1, 0}
	m := AddScaledMax(dst, 0.5, a)
	if dst[0] != 6 || dst[1] != 1.5 || dst[2] != 3 {
		t.Errorf("AddScaledMax dst = %v", dst)
	}
	if m != 6 {
		t.Errorf("AddScaledMax max = %v, want 6", m)
	}
	if m := AddScaledMax(nil, 1, nil); !math.IsInf(m, -1) {
		t.Errorf("empty AddScaledMax = %v, want -Inf", m)
	}
}
