// Package vecmath provides small dense-vector numeric helpers used across
// the library: inner products, norms, in-place arithmetic, and numerically
// careful reductions (log-sum-exp, Kahan summation).
//
// All functions treat a vector as a []float64 and panic on length mismatch:
// a mismatch is always a programmer error, never a data-dependent condition.
package vecmath

import (
	"fmt"
	"math"
)

// checkLen panics if two vectors that must be conformant are not.
func checkLen(op string, a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: %s: length mismatch %d != %d", op, len(a), len(b)))
	}
}

// Dot returns the inner product ⟨a, b⟩, accumulated in index order (the
// result is bit-reproducible, so the unroll below must not reassociate the
// sum — only the four products per block compute independently).
func Dot(a, b []float64) float64 {
	checkLen("Dot", a, b)
	var s float64
	n := len(a)
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		m0 := a[i] * b[i]
		m1 := a[i+1] * b[i+1]
		m2 := a[i+2] * b[i+2]
		m3 := a[i+3] * b[i+3]
		s += m0
		s += m1
		s += m2
		s += m3
	}
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm ‖a‖₂, guarding against overflow by
// scaling with the largest absolute entry.
func Norm2(a []float64) float64 {
	var maxAbs float64
	for _, v := range a {
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	if maxAbs == 0 {
		return 0
	}
	var s float64
	for _, v := range a {
		r := v / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// Norm1 returns the L1 norm Σ|aᵢ|.
func Norm1(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns the L∞ norm max|aᵢ|.
func NormInf(a []float64) float64 {
	var m float64
	for _, v := range a {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// Dist2 returns ‖a − b‖₂.
func Dist2(a, b []float64) float64 {
	checkLen("Dist2", a, b)
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Dist1 returns ‖a − b‖₁.
func Dist1(a, b []float64) float64 {
	checkLen("Dist1", a, b)
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Add returns a new vector a + b.
func Add(a, b []float64) []float64 {
	checkLen("Add", a, b)
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a new vector a − b.
func Sub(a, b []float64) []float64 {
	checkLen("Sub", a, b)
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Scale returns a new vector c·a.
func Scale(c float64, a []float64) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = c * v
	}
	return out
}

// AddScaled sets dst = dst + c·a in place and returns dst.
func AddScaled(dst []float64, c float64, a []float64) []float64 {
	checkLen("AddScaled", dst, a)
	for i := range dst {
		dst[i] += c * a[i]
	}
	return dst
}

// Copy returns a fresh copy of a.
func Copy(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// Zeros returns a zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// Fill sets every entry of a to v and returns a.
func Fill(a []float64, v float64) []float64 {
	for i := range a {
		a[i] = v
	}
	return a
}

// Sum returns the Kahan-compensated sum of a. Compensated summation matters
// for histograms over large universes, where naive accumulation of ~|X|
// small probabilities loses relative precision.
func Sum(a []float64) float64 {
	var sum, comp float64
	for _, v := range a {
		y := v - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of a, or 0 for an empty slice.
func Mean(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	return Sum(a) / float64(len(a))
}

// Max returns the maximum entry and its index. It panics on an empty slice.
func Max(a []float64) (float64, int) {
	if len(a) == 0 {
		panic("vecmath: Max of empty slice")
	}
	best, idx := a[0], 0
	for i, v := range a[1:] {
		if v > best {
			best, idx = v, i+1
		}
	}
	return best, idx
}

// Min returns the minimum entry and its index. It panics on an empty slice.
func Min(a []float64) (float64, int) {
	if len(a) == 0 {
		panic("vecmath: Min of empty slice")
	}
	best, idx := a[0], 0
	for i, v := range a[1:] {
		if v < best {
			best, idx = v, i+1
		}
	}
	return best, idx
}

// Clamp returns v restricted to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// LogSumExp returns log Σ exp(aᵢ) computed stably. For an empty slice it
// returns −Inf (the log of an empty sum).
func LogSumExp(a []float64) float64 {
	if len(a) == 0 {
		return math.Inf(-1)
	}
	m, _ := Max(a)
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, v := range a {
		s += math.Exp(v - m)
	}
	return m + math.Log(s)
}

// Softmax writes exp(aᵢ)/Σ exp(aⱼ) into dst (allocating when dst is nil)
// and returns it. Computation is shifted by the max for stability.
func Softmax(dst, a []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(a))
	}
	checkLen("Softmax", dst, a)
	if len(a) == 0 {
		return dst
	}
	m, _ := Max(a)
	z := ExpShiftedSum(dst, a, m)
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] /= z
		dst[i+1] /= z
		dst[i+2] /= z
		dst[i+3] /= z
	}
	for ; i < n; i++ {
		dst[i] /= z
	}
	return dst
}

// ScaleInPlace multiplies every entry of a by c and returns a.
func ScaleInPlace(a []float64, c float64) []float64 {
	for i := range a {
		a[i] *= c
	}
	return a
}

// ExpShiftedSum writes exp(aᵢ − shift) into dst and returns the sum of the
// written entries. It is the fused exp half of a softmax: callers compute
// shift = max(a) for stability, then normalize dst by the returned total.
// Fusing the exponential with its accumulation keeps the multiplicative-
// weights histogram materialization a single pass per chunk.
// The block loop runs four inlined exp lanes (exp.go) per iteration when a
// verified bit-identical kernel is installed; the sum stays in index order
// so the result is unchanged down to the last bit. Blocks containing an
// argument outside the kernel's domain (deep underflow, overflow, NaN) and
// the scalar tail use math.Exp directly.
func ExpShiftedSum(dst, a []float64, shift float64) float64 {
	checkLen("ExpShiftedSum", dst, a)
	var s float64
	n := len(a)
	dst = dst[:n]
	i := 0
	if exp4 != nil {
		for ; i+4 <= n; i += 4 {
			x0 := a[i] - shift
			x1 := a[i+1] - shift
			x2 := a[i+2] - shift
			x3 := a[i+3] - shift
			if x0 > expFastLo && x0 < expFastHi &&
				x1 > expFastLo && x1 < expFastHi &&
				x2 > expFastLo && x2 < expFastHi &&
				x3 > expFastLo && x3 < expFastHi {
				e0, e1, e2, e3 := exp4(x0, x1, x2, x3)
				dst[i], dst[i+1], dst[i+2], dst[i+3] = e0, e1, e2, e3
				s += e0
				s += e1
				s += e2
				s += e3
				continue
			}
			e0 := math.Exp(x0)
			e1 := math.Exp(x1)
			e2 := math.Exp(x2)
			e3 := math.Exp(x3)
			dst[i], dst[i+1], dst[i+2], dst[i+3] = e0, e1, e2, e3
			s += e0
			s += e1
			s += e2
			s += e3
		}
	}
	for ; i < n; i++ {
		e := math.Exp(a[i] - shift)
		dst[i] = e
		s += e
	}
	return s
}

// AddScaledMax sets dst = dst + c·a in place and returns the maximum of
// the updated entries (−Inf for an empty slice). It is the fused
// multiplicative-weights update kernel: one pass applies the log-space
// step and computes the re-centering shift the next softmax needs.
// The four lanes keep independent running maxima (max is order-free under
// the same strict-> comparison, so the blocked reduction returns the same
// value as a sequential scan), removing the serial compare chain from the
// hot loop.
func AddScaledMax(dst []float64, c float64, a []float64) float64 {
	checkLen("AddScaledMax", dst, a)
	n := len(dst)
	a = a[:n]
	m0 := math.Inf(-1)
	m1, m2, m3 := m0, m0, m0
	i := 0
	for ; i+4 <= n; i += 4 {
		v0 := dst[i] + c*a[i]
		v1 := dst[i+1] + c*a[i+1]
		v2 := dst[i+2] + c*a[i+2]
		v3 := dst[i+3] + c*a[i+3]
		dst[i], dst[i+1], dst[i+2], dst[i+3] = v0, v1, v2, v3
		if v0 > m0 {
			m0 = v0
		}
		if v1 > m1 {
			m1 = v1
		}
		if v2 > m2 {
			m2 = v2
		}
		if v3 > m3 {
			m3 = v3
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	for ; i < n; i++ {
		dst[i] += c * a[i]
		if dst[i] > m0 {
			m0 = dst[i]
		}
	}
	return m0
}

// AddConst adds c to every entry of a and returns a.
func AddConst(a []float64, c float64) []float64 {
	for i := range a {
		a[i] += c
	}
	return a
}

// ProjectL2Ball returns the Euclidean projection of a onto the ball
// {θ : ‖θ‖₂ ≤ r}. For r ≤ 0 it returns the origin.
func ProjectL2Ball(a []float64, r float64) []float64 {
	if r <= 0 {
		return Zeros(len(a))
	}
	n := Norm2(a)
	if n <= r {
		return Copy(a)
	}
	return Scale(r/n, a)
}

// ProjectBox returns the entrywise projection of a onto [lo, hi]^d.
func ProjectBox(a []float64, lo, hi float64) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = Clamp(v, lo, hi)
	}
	return out
}

// ProjectSimplex returns the Euclidean projection of a onto the probability
// simplex {p : pᵢ ≥ 0, Σpᵢ = 1}, using the sort-based algorithm of
// Held, Wolfe and Crowder.
func ProjectSimplex(a []float64) []float64 {
	n := len(a)
	if n == 0 {
		return nil
	}
	sorted := Copy(a)
	// Insertion sort descending; universes here are small enough that the
	// O(n²) worst case never dominates, and it avoids an interface shim.
	for i := 1; i < n; i++ {
		v := sorted[i]
		j := i - 1
		for j >= 0 && sorted[j] < v {
			sorted[j+1] = sorted[j]
			j--
		}
		sorted[j+1] = v
	}
	var cum float64
	var rho int
	var theta float64
	for i := 0; i < n; i++ {
		cum += sorted[i]
		t := (cum - 1) / float64(i+1)
		if sorted[i]-t > 0 {
			rho = i
			theta = t
		}
	}
	_ = rho
	out := make([]float64, n)
	for i, v := range a {
		if w := v - theta; w > 0 {
			out[i] = w
		}
	}
	return out
}

// ApproxEqual reports whether |a−b| ≤ tol elementwise.
func ApproxEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}
