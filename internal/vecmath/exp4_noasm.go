//go:build !amd64

package vecmath

// expKernelCandidates lists four-lane exp kernels to probe at init. Off
// amd64 only the portable Go translations are available; on platforms
// where math.Exp uses a different algorithm the probe rejects both and
// ExpShiftedSum stays on the math.Exp fallback.
func expKernelCandidates() []func(x0, x1, x2, x3 float64) (float64, float64, float64, float64) {
	return []func(x0, x1, x2, x3 float64) (float64, float64, float64, float64){expFMA4, expSSE4}
}
