//go:build amd64

package vecmath

// expFMA4Asm is the hand-interleaved four-lane FMA exp kernel
// (exp4_amd64.s), bit-identical to math.Exp's AVX+FMA path on its domain.
func expFMA4Asm(x0, x1, x2, x3 float64) (y0, y1, y2, y3 float64)

// expSSE4Asm is the hand-interleaved four-lane plain-SSE exp kernel
// (exp4_amd64.s), bit-identical to math.Exp's non-FMA path on its domain.
func expSSE4Asm(x0, x1, x2, x3 float64) (y0, y1, y2, y3 float64)

// cpuidVM executes CPUID with the given leaf/subleaf.
func cpuidVM(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbvVM reads XCR0 (only called when CPUID reports OSXSAVE).
func xgetbvVM() (eax, edx uint32)

// haveAVXFMA reports whether the CPU and OS support the VEX-encoded FMA
// instructions used by expFMA4Asm: CPUID.1 ECX bits FMA (12), OSXSAVE (27)
// and AVX (28), plus XCR0 confirming the OS saves XMM+YMM state. This is
// the same predicate the runtime uses to pick math.Exp's FMA path.
func haveAVXFMA() bool {
	maxID, _, _, _ := cpuidVM(0, 0)
	if maxID < 1 {
		return false
	}
	const fma, osxsave, avx = 1 << 12, 1 << 27, 1 << 28
	_, _, ecx, _ := cpuidVM(1, 0)
	if ecx&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	xcr0, _ := xgetbvVM()
	return xcr0&0x6 == 0x6
}

// expKernelCandidates lists four-lane exp kernels to probe at init, fastest
// first: the assembly variants (FMA only when the CPU supports it — probing
// it elsewhere would fault), then the portable Go translations.
func expKernelCandidates() []func(x0, x1, x2, x3 float64) (float64, float64, float64, float64) {
	var c []func(x0, x1, x2, x3 float64) (float64, float64, float64, float64)
	if haveAVXFMA() {
		c = append(c, expFMA4Asm)
	}
	return append(c, expSSE4Asm, expFMA4, expSSE4)
}
