package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

// TestExp4BitIdentical drives the installed inlined kernel over random and
// adversarial arguments and requires bit equality with math.Exp on every
// one — the contract that lets ExpShiftedSum keep golden outputs unchanged.
func TestExp4BitIdentical(t *testing.T) {
	if exp4 == nil {
		t.Skip("no verified exp kernel on this platform; math.Exp fallback in use")
	}
	check := func(x float64) {
		t.Helper()
		got, g1, g2, g3 := exp4(x, x, x, x)
		want := math.Exp(x)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("exp4(%x) = %x, math.Exp = %x", x, got, want)
		}
		if got != g1 || got != g2 || got != g3 {
			t.Fatalf("exp4(%v): lanes disagree: %v %v %v %v", x, got, g1, g2, g3)
		}
	}
	for _, x := range []float64{
		0, math.Copysign(0, -1), 1, -1, 2, -2, math.Ln2, -math.Ln2,
		0.5 * math.Ln2, -0.5 * math.Ln2, 1.5 * math.Ln2, -1.5 * math.Ln2,
		1e-30, -1e-30, 1e-308, -1e-308, 4.9e-324, -4.9e-324,
		expFastLo, expFastHi, math.Nextafter(expFastLo, 0), math.Nextafter(expFastHi, 0),
		-700, 700, -707.99, 708.99, 1.0 / 3, -1.0 / 3, math.Pi, -math.Pi,
	} {
		check(x)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2_000_000; i++ {
		// Mix of softmax-typical, full-domain, and tiny magnitudes.
		var x float64
		switch i % 3 {
		case 0:
			x = -50 * rng.Float64()
		case 1:
			x = expFastLo + (expFastHi-expFastLo)*rng.Float64()
		default:
			x = math.Ldexp(rng.Float64()*2-1, -rng.Intn(1000))
		}
		check(x)
	}
}

// TestExpShiftedSumMatchesReference compares the blocked kernel with a
// plain math.Exp reference loop bit-for-bit, including out-of-domain lanes
// (deep underflow, overflow, ±Inf, NaN) that force the per-block fallback.
func TestExpShiftedSumMatchesReference(t *testing.T) {
	ref := func(dst, a []float64, shift float64) float64 {
		var s float64
		for i, v := range a {
			e := math.Exp(v - shift)
			dst[i] = e
			s += e
		}
		return s
	}
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 255, 1024, 4097} {
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 10
		}
		if n > 16 {
			// Poison some entries so whole blocks fall back.
			a[1] = -1e9
			a[5] = 800
			a[9] = math.Inf(-1)
			a[13] = math.NaN()
		}
		for _, shift := range []float64{0, -3.5, 12.25} {
			got := make([]float64, n)
			want := make([]float64, n)
			gs := ExpShiftedSum(got, a, shift)
			ws := ref(want, a, shift)
			if math.Float64bits(gs) != math.Float64bits(ws) && !(math.IsNaN(gs) && math.IsNaN(ws)) {
				t.Fatalf("n=%d shift=%v: sum %x, want %x", n, shift, gs, ws)
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
					t.Fatalf("n=%d shift=%v dst[%d] = %x, want %x", n, shift, i, got[i], want[i])
				}
			}
		}
	}
}

// TestAddScaledMaxMatchesReference compares the four-accumulator kernel
// with the sequential reference on random data, tail lengths, and NaN/−Inf
// edge cases.
func TestAddScaledMaxMatchesReference(t *testing.T) {
	ref := func(dst []float64, c float64, a []float64) float64 {
		m := math.Inf(-1)
		for i := range dst {
			dst[i] += c * a[i]
			if dst[i] > m {
				m = dst[i]
			}
		}
		return m
	}
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 3, 4, 6, 8, 100, 1023, 1024, 1025} {
		base := make([]float64, n)
		a := make([]float64, n)
		for i := range a {
			base[i] = rng.NormFloat64()
			a[i] = rng.NormFloat64()
		}
		if n >= 8 {
			a[2] = math.NaN()
			base[7] = math.Inf(-1)
		}
		for _, c := range []float64{0, -0.37, 2.5} {
			got := append([]float64(nil), base...)
			want := append([]float64(nil), base...)
			gm := AddScaledMax(got, c, a)
			wm := ref(want, c, a)
			if math.Float64bits(gm) != math.Float64bits(wm) && !(math.IsNaN(gm) && math.IsNaN(wm)) {
				t.Fatalf("n=%d c=%v: max %x, want %x", n, c, gm, wm)
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
					t.Fatalf("n=%d c=%v dst[%d] = %x, want %x", n, c, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDotMatchesReference pins the unrolled Dot to the sequential
// index-order accumulation bit-for-bit.
func TestDotMatchesReference(t *testing.T) {
	ref := func(a, b []float64) float64 {
		var s float64
		for i, ai := range a {
			s += ai * b[i]
		}
		return s
	}
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 8, 9, 1000} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 100
			b[i] = rng.NormFloat64()
		}
		got, want := Dot(a, b), ref(a, b)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d: Dot = %x, want %x", n, got, want)
		}
	}
}

// TestSoftmaxMatchesReference pins the fused Softmax to the original
// exp/accumulate/divide formulation bit-for-bit.
func TestSoftmaxMatchesReference(t *testing.T) {
	ref := func(dst, a []float64) []float64 {
		if len(a) == 0 {
			return dst
		}
		m, _ := Max(a)
		var z float64
		for i, v := range a {
			e := math.Exp(v - m)
			dst[i] = e
			z += e
		}
		for i := range dst {
			dst[i] /= z
		}
		return dst
	}
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 3, 4, 7, 64, 1000} {
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 5
		}
		got := Softmax(nil, a)
		want := ref(make([]float64, n), a)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d dst[%d] = %x, want %x", n, i, got[i], want[i])
			}
		}
	}
}
