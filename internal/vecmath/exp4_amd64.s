// Four-lane exponential kernels for amd64, used by ExpShiftedSum.
//
// Each routine is a straight-line, branch-free 4-way interleaving of the
// scalar exp kernel in the Go runtime (math/exp_amd64.s, a simplified form
// of the SLEEF method of Naoki Shibata, "Efficient evaluation methods of
// elementary functions suitable for SIMD computation", ISC'10). The Go
// callers guarantee every argument lies strictly inside (-708, 709), so
// the overflow / underflow / denormal branches of the scalar original are
// unreachable and omitted; within that domain each lane performs exactly
// the scalar instruction sequence, so results are bit-identical to
// math.Exp (expFMA4Asm matches the FMA path taken on AVX+FMA CPUs,
// expSSE4Asm the plain-SSE path). Package init verifies that equivalence
// against math.Exp before installing either kernel.
//
// The four lanes have no cross dependencies, so out-of-order cores overlap
// their ~20-operation latency chains almost completely — that, plus losing
// the per-element CALL, is the entire speedup.

#include "textflag.h"

#define LOG2E 1.4426950408889634073599246810018920
#define LN2U 0.69314718055966295651160180568695068359375
#define LN2L 0.28235290563031577122588448175013436025525412068e-12

DATA exp4data<>+0(SB)/8, $0.5
DATA exp4data<>+8(SB)/8, $1.0
DATA exp4data<>+16(SB)/8, $2.0
DATA exp4data<>+24(SB)/8, $1.6666666666666666667e-1
DATA exp4data<>+32(SB)/8, $4.1666666666666666667e-2
DATA exp4data<>+40(SB)/8, $8.3333333333333333333e-3
DATA exp4data<>+48(SB)/8, $1.3888888888888888889e-3
DATA exp4data<>+56(SB)/8, $1.9841269841269841270e-4
DATA exp4data<>+64(SB)/8, $2.4801587301587301587e-5
GLOBL exp4data<>+0(SB), RODATA, $72

// func expFMA4Asm(x0, x1, x2, x3 float64) (y0, y1, y2, y3 float64)
TEXT ·expFMA4Asm(SB), NOSPLIT, $0-64
	MOVSD x0+0(FP), X0
	MOVSD x1+8(FP), X1
	MOVSD x2+16(FP), X2
	MOVSD x3+24(FP), X3
	// k = round-to-nearest(x / ln 2); kf = float64(k)
	MOVSD $LOG2E, X12
	VMULSD X12, X0, X8
	VMULSD X12, X1, X9
	VMULSD X12, X2, X10
	VMULSD X12, X3, X11
	CVTSD2SL X8, AX
	CVTSD2SL X9, BX
	CVTSD2SL X10, CX
	CVTSD2SL X11, DX
	CVTSL2SD AX, X8
	CVTSL2SD BX, X9
	CVTSL2SD CX, X10
	CVTSL2SD DX, X11
	// r = x - kf*LN2U - kf*LN2L (each step fused)
	MOVSD $LN2U, X12
	VFNMADD231SD X12, X8, X0
	VFNMADD231SD X12, X9, X1
	VFNMADD231SD X12, X10, X2
	VFNMADD231SD X12, X11, X3
	MOVSD $LN2L, X12
	VFNMADD231SD X12, X8, X0
	VFNMADD231SD X12, X9, X1
	VFNMADD231SD X12, X10, X2
	VFNMADD231SD X12, X11, X3
	MULSD $0.0625, X0
	MULSD $0.0625, X1
	MULSD $0.0625, X2
	MULSD $0.0625, X3
	// Taylor series in r
	MOVSD exp4data<>+64(SB), X4
	MOVAPS X4, X5
	MOVAPS X4, X6
	MOVAPS X4, X7
	VFMADD213SD exp4data<>+56(SB), X0, X4
	VFMADD213SD exp4data<>+56(SB), X1, X5
	VFMADD213SD exp4data<>+56(SB), X2, X6
	VFMADD213SD exp4data<>+56(SB), X3, X7
	VFMADD213SD exp4data<>+48(SB), X0, X4
	VFMADD213SD exp4data<>+48(SB), X1, X5
	VFMADD213SD exp4data<>+48(SB), X2, X6
	VFMADD213SD exp4data<>+48(SB), X3, X7
	VFMADD213SD exp4data<>+40(SB), X0, X4
	VFMADD213SD exp4data<>+40(SB), X1, X5
	VFMADD213SD exp4data<>+40(SB), X2, X6
	VFMADD213SD exp4data<>+40(SB), X3, X7
	VFMADD213SD exp4data<>+32(SB), X0, X4
	VFMADD213SD exp4data<>+32(SB), X1, X5
	VFMADD213SD exp4data<>+32(SB), X2, X6
	VFMADD213SD exp4data<>+32(SB), X3, X7
	VFMADD213SD exp4data<>+24(SB), X0, X4
	VFMADD213SD exp4data<>+24(SB), X1, X5
	VFMADD213SD exp4data<>+24(SB), X2, X6
	VFMADD213SD exp4data<>+24(SB), X3, X7
	VFMADD213SD exp4data<>+0(SB), X0, X4
	VFMADD213SD exp4data<>+0(SB), X1, X5
	VFMADD213SD exp4data<>+0(SB), X2, X6
	VFMADD213SD exp4data<>+0(SB), X3, X7
	VFMADD213SD exp4data<>+8(SB), X0, X4
	VFMADD213SD exp4data<>+8(SB), X1, X5
	VFMADD213SD exp4data<>+8(SB), X2, X6
	VFMADD213SD exp4data<>+8(SB), X3, X7
	MULSD X4, X0
	MULSD X5, X1
	MULSD X6, X2
	MULSD X7, X3
	// undo the 1/16 reduction: x = x*(2+x) three times, then fused +1
	VADDSD exp4data<>+16(SB), X0, X8
	VADDSD exp4data<>+16(SB), X1, X9
	VADDSD exp4data<>+16(SB), X2, X10
	VADDSD exp4data<>+16(SB), X3, X11
	MULSD X8, X0
	MULSD X9, X1
	MULSD X10, X2
	MULSD X11, X3
	VADDSD exp4data<>+16(SB), X0, X8
	VADDSD exp4data<>+16(SB), X1, X9
	VADDSD exp4data<>+16(SB), X2, X10
	VADDSD exp4data<>+16(SB), X3, X11
	MULSD X8, X0
	MULSD X9, X1
	MULSD X10, X2
	MULSD X11, X3
	VADDSD exp4data<>+16(SB), X0, X8
	VADDSD exp4data<>+16(SB), X1, X9
	VADDSD exp4data<>+16(SB), X2, X10
	VADDSD exp4data<>+16(SB), X3, X11
	MULSD X8, X0
	MULSD X9, X1
	MULSD X10, X2
	MULSD X11, X3
	VADDSD exp4data<>+16(SB), X0, X8
	VADDSD exp4data<>+16(SB), X1, X9
	VADDSD exp4data<>+16(SB), X2, X10
	VADDSD exp4data<>+16(SB), X3, X11
	VFMADD213SD exp4data<>+8(SB), X8, X0
	VFMADD213SD exp4data<>+8(SB), X9, X1
	VFMADD213SD exp4data<>+8(SB), X10, X2
	VFMADD213SD exp4data<>+8(SB), X11, X3
	// scale by 2^k (k+1023 is always in (0, 2047) on this domain)
	ADDL $0x3FF, AX
	ADDL $0x3FF, BX
	ADDL $0x3FF, CX
	ADDL $0x3FF, DX
	SHLQ $52, AX
	SHLQ $52, BX
	SHLQ $52, CX
	SHLQ $52, DX
	MOVQ AX, X8
	MOVQ BX, X9
	MOVQ CX, X10
	MOVQ DX, X11
	MULSD X8, X0
	MULSD X9, X1
	MULSD X10, X2
	MULSD X11, X3
	MOVSD X0, y0+32(FP)
	MOVSD X1, y1+40(FP)
	MOVSD X2, y2+48(FP)
	MOVSD X3, y3+56(FP)
	RET

// func expSSE4Asm(x0, x1, x2, x3 float64) (y0, y1, y2, y3 float64)
TEXT ·expSSE4Asm(SB), NOSPLIT, $0-64
	MOVSD x0+0(FP), X0
	MOVSD x1+8(FP), X1
	MOVSD x2+16(FP), X2
	MOVSD x3+24(FP), X3
	// k = round-to-nearest(x / ln 2); kf = float64(k)
	MOVSD $LOG2E, X12
	MOVAPS X0, X8
	MOVAPS X1, X9
	MOVAPS X2, X10
	MOVAPS X3, X11
	MULSD X12, X8
	MULSD X12, X9
	MULSD X12, X10
	MULSD X12, X11
	CVTSD2SL X8, AX
	CVTSD2SL X9, BX
	CVTSD2SL X10, CX
	CVTSD2SL X11, DX
	CVTSL2SD AX, X8
	CVTSL2SD BX, X9
	CVTSL2SD CX, X10
	CVTSL2SD DX, X11
	// r = x - kf*LN2U - kf*LN2L (individually rounded, as in the original)
	MOVSD $LN2U, X12
	MOVAPS X8, X13
	MULSD X12, X13
	SUBSD X13, X0
	MOVAPS X9, X13
	MULSD X12, X13
	SUBSD X13, X1
	MOVAPS X10, X13
	MULSD X12, X13
	SUBSD X13, X2
	MOVAPS X11, X13
	MULSD X12, X13
	SUBSD X13, X3
	MOVSD $LN2L, X12
	MOVAPS X8, X13
	MULSD X12, X13
	SUBSD X13, X0
	MOVAPS X9, X13
	MULSD X12, X13
	SUBSD X13, X1
	MOVAPS X10, X13
	MULSD X12, X13
	SUBSD X13, X2
	MOVAPS X11, X13
	MULSD X12, X13
	SUBSD X13, X3
	MULSD $0.0625, X0
	MULSD $0.0625, X1
	MULSD $0.0625, X2
	MULSD $0.0625, X3
	// Taylor series in r
	MOVSD exp4data<>+64(SB), X4
	MOVAPS X4, X5
	MOVAPS X4, X6
	MOVAPS X4, X7
	MULSD X0, X4
	MULSD X1, X5
	MULSD X2, X6
	MULSD X3, X7
	ADDSD exp4data<>+56(SB), X4
	ADDSD exp4data<>+56(SB), X5
	ADDSD exp4data<>+56(SB), X6
	ADDSD exp4data<>+56(SB), X7
	MULSD X0, X4
	MULSD X1, X5
	MULSD X2, X6
	MULSD X3, X7
	ADDSD exp4data<>+48(SB), X4
	ADDSD exp4data<>+48(SB), X5
	ADDSD exp4data<>+48(SB), X6
	ADDSD exp4data<>+48(SB), X7
	MULSD X0, X4
	MULSD X1, X5
	MULSD X2, X6
	MULSD X3, X7
	ADDSD exp4data<>+40(SB), X4
	ADDSD exp4data<>+40(SB), X5
	ADDSD exp4data<>+40(SB), X6
	ADDSD exp4data<>+40(SB), X7
	MULSD X0, X4
	MULSD X1, X5
	MULSD X2, X6
	MULSD X3, X7
	ADDSD exp4data<>+32(SB), X4
	ADDSD exp4data<>+32(SB), X5
	ADDSD exp4data<>+32(SB), X6
	ADDSD exp4data<>+32(SB), X7
	MULSD X0, X4
	MULSD X1, X5
	MULSD X2, X6
	MULSD X3, X7
	ADDSD exp4data<>+24(SB), X4
	ADDSD exp4data<>+24(SB), X5
	ADDSD exp4data<>+24(SB), X6
	ADDSD exp4data<>+24(SB), X7
	MULSD X0, X4
	MULSD X1, X5
	MULSD X2, X6
	MULSD X3, X7
	ADDSD exp4data<>+0(SB), X4
	ADDSD exp4data<>+0(SB), X5
	ADDSD exp4data<>+0(SB), X6
	ADDSD exp4data<>+0(SB), X7
	MULSD X0, X4
	MULSD X1, X5
	MULSD X2, X6
	MULSD X3, X7
	ADDSD exp4data<>+8(SB), X4
	ADDSD exp4data<>+8(SB), X5
	ADDSD exp4data<>+8(SB), X6
	ADDSD exp4data<>+8(SB), X7
	MULSD X4, X0
	MULSD X5, X1
	MULSD X6, X2
	MULSD X7, X3
	// undo the 1/16 reduction: x = x*(2+x) four times, then +1
	MOVSD exp4data<>+16(SB), X12
	MOVAPS X12, X8
	MOVAPS X12, X9
	MOVAPS X12, X10
	MOVAPS X12, X11
	ADDSD X0, X8
	ADDSD X1, X9
	ADDSD X2, X10
	ADDSD X3, X11
	MULSD X8, X0
	MULSD X9, X1
	MULSD X10, X2
	MULSD X11, X3
	MOVAPS X12, X8
	MOVAPS X12, X9
	MOVAPS X12, X10
	MOVAPS X12, X11
	ADDSD X0, X8
	ADDSD X1, X9
	ADDSD X2, X10
	ADDSD X3, X11
	MULSD X8, X0
	MULSD X9, X1
	MULSD X10, X2
	MULSD X11, X3
	MOVAPS X12, X8
	MOVAPS X12, X9
	MOVAPS X12, X10
	MOVAPS X12, X11
	ADDSD X0, X8
	ADDSD X1, X9
	ADDSD X2, X10
	ADDSD X3, X11
	MULSD X8, X0
	MULSD X9, X1
	MULSD X10, X2
	MULSD X11, X3
	MOVAPS X12, X8
	MOVAPS X12, X9
	MOVAPS X12, X10
	MOVAPS X12, X11
	ADDSD X0, X8
	ADDSD X1, X9
	ADDSD X2, X10
	ADDSD X3, X11
	MULSD X8, X0
	MULSD X9, X1
	MULSD X10, X2
	MULSD X11, X3
	ADDSD exp4data<>+8(SB), X0
	ADDSD exp4data<>+8(SB), X1
	ADDSD exp4data<>+8(SB), X2
	ADDSD exp4data<>+8(SB), X3
	// scale by 2^k (k+1023 is always in (0, 2047) on this domain)
	ADDL $0x3FF, AX
	ADDL $0x3FF, BX
	ADDL $0x3FF, CX
	ADDL $0x3FF, DX
	SHLQ $52, AX
	SHLQ $52, BX
	SHLQ $52, CX
	SHLQ $52, DX
	MOVQ AX, X8
	MOVQ BX, X9
	MOVQ CX, X10
	MOVQ DX, X11
	MULSD X8, X0
	MULSD X9, X1
	MULSD X10, X2
	MULSD X11, X3
	MOVSD X0, y0+32(FP)
	MOVSD X1, y1+40(FP)
	MOVSD X2, y2+48(FP)
	MOVSD X3, y3+56(FP)
	RET

// func cpuidVM(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidVM(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvVM() (eax, edx uint32)
TEXT ·xgetbvVM(SB), NOSPLIT, $0-8
	MOVL $0, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
