package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

// benchSizes are the micro-benchmark vector lengths: L1-resident, L2/L3,
// and memory-bound.
var benchSizes = []struct {
	name string
	n    int
}{
	{"1k", 1 << 10},
	{"64k", 1 << 16},
	{"1M", 1 << 20},
}

func benchVec(n int, seed int64, scale float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64() * scale
	}
	return a
}

// BenchmarkExpShiftedSum measures the blocked softmax-exp kernel (the MW
// histogram materialization inner loop).
func BenchmarkExpShiftedSum(b *testing.B) {
	for _, s := range benchSizes {
		b.Run(s.name, func(b *testing.B) {
			a := benchVec(s.n, 1, 5)
			dst := make([]float64, s.n)
			b.SetBytes(int64(8 * s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkFloat = ExpShiftedSum(dst, a, 2.5)
			}
		})
	}
}

// BenchmarkExpShiftedSumScalar is the pre-optimization reference loop,
// kept so one bench run shows the blocked kernel's speedup directly.
func BenchmarkExpShiftedSumScalar(b *testing.B) {
	for _, s := range benchSizes {
		b.Run(s.name, func(b *testing.B) {
			a := benchVec(s.n, 1, 5)
			dst := make([]float64, s.n)
			b.SetBytes(int64(8 * s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkFloat = expShiftedSumScalar(dst, a, 2.5)
			}
		})
	}
}

// BenchmarkAddScaledMax measures the blocked MW update kernel.
func BenchmarkAddScaledMax(b *testing.B) {
	for _, s := range benchSizes {
		b.Run(s.name, func(b *testing.B) {
			a := benchVec(s.n, 2, 1)
			dst := benchVec(s.n, 3, 1)
			b.SetBytes(int64(8 * s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkFloat = AddScaledMax(dst, -1e-9, a)
			}
		})
	}
}

// BenchmarkAddScaledMaxScalar is the pre-optimization reference loop.
func BenchmarkAddScaledMaxScalar(b *testing.B) {
	for _, s := range benchSizes {
		b.Run(s.name, func(b *testing.B) {
			a := benchVec(s.n, 2, 1)
			dst := benchVec(s.n, 3, 1)
			b.SetBytes(int64(8 * s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkFloat = addScaledMaxScalar(dst, -1e-9, a)
			}
		})
	}
}

// BenchmarkDot measures the order-preserving unrolled inner product.
func BenchmarkDot(b *testing.B) {
	for _, s := range benchSizes {
		b.Run(s.name, func(b *testing.B) {
			a := benchVec(s.n, 4, 1)
			c := benchVec(s.n, 5, 1)
			b.SetBytes(int64(8 * s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkFloat = Dot(a, c)
			}
		})
	}
}

// BenchmarkDotScalar is the pre-optimization reference loop.
func BenchmarkDotScalar(b *testing.B) {
	for _, s := range benchSizes {
		b.Run(s.name, func(b *testing.B) {
			a := benchVec(s.n, 4, 1)
			c := benchVec(s.n, 5, 1)
			b.SetBytes(int64(8 * s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkFloat = dotScalar(a, c)
			}
		})
	}
}

// BenchmarkSoftmax measures the fused softmax (max + blocked exp + divide).
func BenchmarkSoftmax(b *testing.B) {
	for _, s := range benchSizes {
		b.Run(s.name, func(b *testing.B) {
			a := benchVec(s.n, 6, 5)
			dst := make([]float64, s.n)
			b.SetBytes(int64(8 * s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Softmax(dst, a)
			}
		})
	}
}

// BenchmarkSoftmaxScalar is the pre-optimization reference loop.
func BenchmarkSoftmaxScalar(b *testing.B) {
	for _, s := range benchSizes {
		b.Run(s.name, func(b *testing.B) {
			a := benchVec(s.n, 6, 5)
			dst := make([]float64, s.n)
			b.SetBytes(int64(8 * s.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				softmaxScalar(dst, a)
			}
		})
	}
}

// sinkFloat keeps benchmarked results observable so loops aren't elided.
var sinkFloat float64

// Reference (pre-optimization) kernel bodies, preserved verbatim for the
// Scalar benchmarks above and the bit-equality tests in exp_test.go.

func expShiftedSumScalar(dst, a []float64, shift float64) float64 {
	var s float64
	for i, v := range a {
		e := math.Exp(v - shift)
		dst[i] = e
		s += e
	}
	return s
}

func addScaledMaxScalar(dst []float64, c float64, a []float64) float64 {
	m := math.Inf(-1)
	for i := range dst {
		dst[i] += c * a[i]
		if dst[i] > m {
			m = dst[i]
		}
	}
	return m
}

func dotScalar(a, b []float64) float64 {
	var s float64
	for i, ai := range a {
		s += ai * b[i]
	}
	return s
}

func softmaxScalar(dst, a []float64) []float64 {
	if len(a) == 0 {
		return dst
	}
	m, _ := Max(a)
	var z float64
	for i, v := range a {
		e := math.Exp(v - m)
		dst[i] = e
		z += e
	}
	for i := range dst {
		dst[i] /= z
	}
	return dst
}
