package dataio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/universe"
)

func pointsUniverse(t *testing.T) *universe.Points {
	t.Helper()
	u, err := universe.NewPoints([][]float64{
		{0, 0}, {1, 0}, {0, 1}, {1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestLoadCSV(t *testing.T) {
	u := pointsUniverse(t)
	in := "0.1,0.2\n0.9,0.1\n0.2,1.1\n"
	d, err := LoadCSV(strings.NewReader(in), u, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	if d.N() != 3 {
		t.Fatalf("N = %d", d.N())
	}
	for i, r := range d.Rows {
		if r != want[i] {
			t.Errorf("row %d = %d, want %d", i, r, want[i])
		}
	}
}

func TestLoadCSVHeader(t *testing.T) {
	u := pointsUniverse(t)
	in := "x,y\n1.0,1.0\n"
	d, err := LoadCSV(strings.NewReader(in), u, true)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 1 || d.Rows[0] != 3 {
		t.Fatalf("rows = %v", d.Rows)
	}
	// Header parsing without hasHeader fails on the non-numeric cells.
	if _, err := LoadCSV(strings.NewReader(in), u, false); err == nil {
		t.Error("header row parsed as data")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	u := pointsUniverse(t)
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"wrong columns", "1,2,3\n"},
		{"non numeric", "a,b\n"},
		{"short row", "1\n"},
	}
	for _, c := range cases {
		if _, err := LoadCSV(strings.NewReader(c.in), u, false); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	u := pointsUniverse(t)
	d, err := dataset.New(u, []int{3, 0, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := StoreCSV(&buf, d, []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(&buf, u, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != d.N() {
		t.Fatalf("N = %d", back.N())
	}
	for i := range d.Rows {
		if back.Rows[i] != d.Rows[i] {
			t.Errorf("row %d = %d, want %d", i, back.Rows[i], d.Rows[i])
		}
	}
}

func TestStoreCSVHeaderValidation(t *testing.T) {
	u := pointsUniverse(t)
	d, _ := dataset.New(u, []int{0})
	var buf bytes.Buffer
	if err := StoreCSV(&buf, d, []string{"only-one"}); err == nil {
		t.Error("mismatched header accepted")
	}
	// nil header is fine.
	if err := StoreCSV(&buf, d, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "\n") != 1 {
		t.Errorf("output = %q", buf.String())
	}
}

func TestLoadCSVRoundsToNearest(t *testing.T) {
	// Values far from any point still round (§1.1 rounding is total).
	u := pointsUniverse(t)
	d, err := LoadCSV(strings.NewReader("100,100\n"), u, false)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows[0] != 3 { // (1,1) is nearest to (100,100)
		t.Errorf("rounded to %d", d.Rows[0])
	}
}
