// Package dataio loads and stores row-level datasets as CSV, bridging
// external data and the library's finite-universe model.
//
// Loading applies the rounding map of paper §1.1: each numeric CSV row is
// snapped to its nearest universe element before any private computation
// sees it. (Rounding is a per-record, data-independent map, so it composes
// with the mechanisms' privacy guarantees unchanged.) Storing writes a
// dataset's records — e.g. a synthetic dataset released by the server —
// back out as CSV.
package dataio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/dataset"
	"repro/internal/universe"
)

// LoadCSV reads numeric rows (one record per line, Dim() columns, optional
// header) and rounds each onto the universe. Rows with the wrong column
// count or non-numeric cells are rejected with their line number.
func LoadCSV(r io.Reader, u universe.Universe, hasHeader bool) (*dataset.Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = u.Dim()
	var rows []int
	line := 0
	if hasHeader {
		if _, err := cr.Read(); err != nil {
			return nil, fmt.Errorf("dataio: reading header: %w", err)
		}
		line++
	}
	vec := make([]float64, u.Dim())
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("dataio: line %d: %w", line, err)
		}
		for i, cell := range rec {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("dataio: line %d column %d: %w", line, i+1, err)
			}
			vec[i] = v
		}
		rows = append(rows, universe.Nearest(u, vec))
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataio: no data rows")
	}
	return dataset.New(u, rows)
}

// StoreCSV writes the dataset's records as numeric CSV with the given
// column names as header (pass nil for no header). Column count must match
// the universe dimension when a header is given.
func StoreCSV(w io.Writer, d *dataset.Dataset, header []string) error {
	cw := csv.NewWriter(w)
	if header != nil {
		if len(header) != d.U.Dim() {
			return fmt.Errorf("dataio: header has %d columns, universe dim is %d", len(header), d.U.Dim())
		}
		if err := cw.Write(header); err != nil {
			return err
		}
	}
	cells := make([]string, d.U.Dim())
	for _, r := range d.Rows {
		p := d.U.Point(r)
		for i, v := range p {
			cells[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(cells); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
