package histogram

import (
	"math"
	"testing"

	"repro/internal/universe"
)

func TestCoordinateMarginal(t *testing.T) {
	u, err := universe.NewPoints([][]float64{
		{0, 1}, {0, 2}, {1, 1}, {1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := FromProbs(u, []float64{0.1, 0.2, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	vals, probs, err := h.CoordinateMarginal(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 0 || vals[1] != 1 {
		t.Fatalf("vals = %v", vals)
	}
	if math.Abs(probs[0]-0.3) > 1e-12 || math.Abs(probs[1]-0.7) > 1e-12 {
		t.Fatalf("probs = %v", probs)
	}
	// Marginal over the second coordinate.
	vals, probs, err = h.CoordinateMarginal(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(probs[0]-0.4) > 1e-12 || math.Abs(probs[1]-0.6) > 1e-12 {
		t.Fatalf("coord-1 probs = %v (vals %v)", probs, vals)
	}
	// Marginal probabilities always sum to 1.
	var s float64
	for _, p := range probs {
		s += p
	}
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("marginal mass = %v", s)
	}
	if _, _, err := h.CoordinateMarginal(-1); err == nil {
		t.Error("negative coord accepted")
	}
	if _, _, err := h.CoordinateMarginal(2); err == nil {
		t.Error("out-of-range coord accepted")
	}
}

func TestCoordinateMean(t *testing.T) {
	u, err := universe.NewPoints([][]float64{{-1, 5}, {1, 7}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := FromProbs(u, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.CoordinateMean(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-0.5) > 1e-12 {
		t.Errorf("mean = %v, want 0.5", m)
	}
	m, err = h.CoordinateMean(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-6.5) > 1e-12 {
		t.Errorf("mean = %v, want 6.5", m)
	}
	if _, err := h.CoordinateMean(9); err == nil {
		t.Error("bad coord accepted")
	}
}
